// Quickstart: a four-process FBL cluster, one crash, full recovery.
//
// Shows the whole public API surface in ~80 lines:
//   1. write an Application (deterministic message handlers + snapshot),
//   2. build a Cluster around it,
//   3. inject a failure,
//   4. watch the non-blocking recovery algorithm put the process back
//      together from its peers' logs.
//
// Run:  ./examples/quickstart
#include <cstdio>
#include <memory>

#include "app/application.hpp"
#include "runtime/cluster.hpp"

using namespace rr;

namespace {

/// A counter that ping-pongs increments around the cluster. Deterministic:
/// all behaviour is a function of state + delivered messages.
class CounterApp : public app::Application {
 public:
  void on_start(app::AppContext& ctx) override {
    // The lowest pid kicks off one circulating increment token.
    if (ctx.self() == ctx.processes().front()) send_next(ctx);
  }

  void on_message(app::AppContext& ctx, ProcessId from, const Bytes& payload) override {
    (void)from;
    BufReader r(payload);
    counter_ = r.u64() + 1;
    send_next(ctx);
  }

  [[nodiscard]] Bytes snapshot() const override {
    BufWriter w;
    w.u64(counter_);
    return std::move(w).take();
  }
  void restore(const Bytes& state) override { counter_ = BufReader(state).u64(); }
  [[nodiscard]] std::uint64_t state_hash() const override { return counter_; }

  [[nodiscard]] std::uint64_t counter() const { return counter_; }

 private:
  void send_next(app::AppContext& ctx) {
    const auto& ps = ctx.processes();
    std::size_t i = 0;
    while (ps[i] != ctx.self()) ++i;
    BufWriter w;
    w.u64(counter_);
    ctx.send(ps[(i + 1) % ps.size()], std::move(w).take());
  }

  std::uint64_t counter_{0};
};

}  // namespace

int main() {
  runtime::ClusterConfig config;
  config.num_processes = 4;
  config.f = 2;  // tolerate two simultaneous failures
  config.algorithm = recovery::Algorithm::kNonBlocking;

  runtime::Cluster cluster(config, [](ProcessId) { return std::make_unique<CounterApp>(); });
  cluster.start();

  // Let the counter circulate, then kill p2 mid-flight.
  cluster.crash_at(ProcessId{2}, seconds(5));
  cluster.run_until(seconds(20));

  std::printf("cluster idle: %s\n", cluster.all_idle() ? "yes" : "no");
  for (const ProcessId pid : cluster.pids()) {
    const auto& node = cluster.node(pid);
    const auto& app = dynamic_cast<const CounterApp&>(node.application());
    std::printf("  p%u  inc=%u  counter=%llu  blocked=%s  recoveries=%zu\n", pid.value,
                node.incarnation(), static_cast<unsigned long long>(app.counter()),
                format_duration(node.blocked_time()).c_str(), node.recoveries().size());
  }
  for (const auto& t : cluster.all_recoveries()) {
    std::printf("recovery: detect=%s restore=%s gather=%s replay=%s (replayed %zu msgs)\n",
                format_duration(t.detect()).c_str(), format_duration(t.restore()).c_str(),
                format_duration(t.gather()).c_str(), format_duration(t.replay()).c_str(),
                t.replayed);
  }
  return cluster.all_idle() ? 0 : 1;
}
