// Chaos soak: repeated randomized crashes against a gossiping cluster.
//
// Drives many minutes of virtual time with a crash every few seconds
// (never more than f concurrent), verifying after every recovery wave that
// the cluster returns to an idle, gap-free state. A longer-running, noisier
// cousin of the property-test sweep — useful for eyeballing metrics.
//
// Run:  ./examples/chaos_soak [rounds] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "app/workloads.hpp"
#include "common/rng.hpp"
#include "runtime/cluster.hpp"

using namespace rr;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2026;

  runtime::ClusterConfig config;
  config.num_processes = 6;
  config.f = 2;
  config.seed = seed;
  config.algorithm = recovery::Algorithm::kNonBlocking;
  config.supervisor_restart_delay = milliseconds(600);
  config.detector.heartbeat_period = milliseconds(250);
  config.detector.timeout = milliseconds(1000);
  config.storage.seek_latency = milliseconds(2);
  config.checkpoint_period = seconds(2);
  config.recovery.phase_timeout = milliseconds(2500);

  runtime::Cluster cluster(config, [](ProcessId pid) {
    app::GossipConfig g;
    g.tokens_per_process = 1;
    g.seed = 5 + pid.value;
    return std::make_unique<app::GossipApp>(g);
  });
  cluster.start();
  cluster.run_until(seconds(2));

  Rng chaos(seed);
  std::size_t crashes = 0;
  for (int round = 0; round < rounds; ++round) {
    // Up to f crashes, possibly overlapping in their recovery windows.
    const auto count = 1 + chaos.bounded(config.f);
    Time at = cluster.sim().now() + milliseconds(100);
    for (std::uint64_t i = 0; i < count; ++i) {
      const ProcessId victim{static_cast<std::uint32_t>(chaos.bounded(config.num_processes))};
      cluster.crash_at(victim, at);
      ++crashes;
      at += milliseconds(static_cast<std::int64_t>(chaos.bounded(1200)));
    }
    // Let the wave play out and the cluster settle.
    cluster.run_for(seconds(6));
    Time waited = 0;
    while (!cluster.all_idle() && waited < seconds(60)) {
      cluster.run_for(milliseconds(500));
      waited += milliseconds(500);
    }
    if (!cluster.all_idle()) {
      std::printf("round %d: cluster failed to settle!\n", round);
      return 1;
    }
    std::printf("round %2d: t=%7.1fs crashes=%zu recoveries=%zu gaps=%llu delivered=%llu\n",
                round, to_seconds(cluster.sim().now()), crashes,
                cluster.all_recoveries().size(),
                static_cast<unsigned long long>(
                    cluster.metrics().counter_value("recovery.det_gaps")),
                static_cast<unsigned long long>(cluster.total_app_delivered()));
  }

  const auto& m = cluster.metrics();
  std::printf("\nsoak finished: %zu crashes, %zu completed recoveries, %llu abandoned\n",
              crashes, cluster.all_recoveries().size(),
              static_cast<unsigned long long>(m.counter_value("recovery.abandoned")));
  std::printf("determinant gaps: %llu, live blocked: %s, gather restarts: %llu\n",
              static_cast<unsigned long long>(m.counter_value("recovery.det_gaps")),
              format_duration(cluster.total_blocked_time()).c_str(),
              static_cast<unsigned long long>(m.counter_value("recovery.gather_restarts")));
  const bool ok = m.counter_value("recovery.det_gaps") == 0 &&
                  cluster.total_blocked_time() == 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
