// Bank demo: money conservation across crash-recovery.
//
// Eight replicas shuffle transfers with a bounded TTL; two of them crash
// while transfers are in flight. When the system quiesces, the sum of all
// balances must equal the initial total — every in-flight transfer was
// either replayed from logs or retransmitted, never lost or duplicated.
// Runs the same schedule under both recovery algorithms and prints the
// intrusion difference.
//
// Run:  ./examples/bank_demo
#include <cstdio>
#include <memory>

#include "app/workloads.hpp"
#include "runtime/cluster.hpp"

using namespace rr;

namespace {

struct Outcome {
  std::int64_t total{0};
  Duration blocked{0};
  std::size_t recoveries{0};
  bool idle{false};
};

Outcome run(recovery::Algorithm alg) {
  runtime::ClusterConfig config;
  config.num_processes = 8;
  config.f = 2;
  config.algorithm = alg;
  config.supervisor_restart_delay = milliseconds(800);
  config.detector.heartbeat_period = milliseconds(250);
  config.detector.timeout = milliseconds(1000);
  config.storage.seek_latency = milliseconds(3);
  config.checkpoint_period = seconds(2);

  app::BankConfig bank;
  bank.tokens_per_process = 1;
  bank.ttl = 30'000;  // transfers keep flowing through the crash window

  runtime::Cluster cluster(config,
                           [bank](ProcessId) { return std::make_unique<app::BankApp>(bank); });
  cluster.start();
  cluster.crash_at(ProcessId{2}, milliseconds(2'500));
  cluster.crash_at(ProcessId{5}, milliseconds(4'200));
  cluster.run_until(seconds(30));
  while (!cluster.all_idle() && cluster.sim().now() < seconds(90)) {
    cluster.run_for(milliseconds(500));
  }

  Outcome out;
  out.idle = cluster.all_idle();
  out.blocked = cluster.total_blocked_time();
  out.recoveries = cluster.all_recoveries().size();
  for (const ProcessId pid : cluster.pids()) {
    out.total += dynamic_cast<const app::BankApp&>(cluster.node(pid).application()).balance();
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::int64_t kExpected = 8 * 1'000'000;
  bool ok = true;
  for (const auto alg : {recovery::Algorithm::kBlocking, recovery::Algorithm::kNonBlocking}) {
    const Outcome o = run(alg);
    const bool conserved = o.total == kExpected;
    ok = ok && conserved && o.idle && o.recoveries == 2;
    std::printf("%-13s recoveries=%zu  sum(balances)=%lld (%s)  live processes stalled %s\n",
                recovery::to_string(alg), o.recoveries, static_cast<long long>(o.total),
                conserved ? "conserved" : "VIOLATED",
                format_duration(o.blocked).c_str());
  }
  std::printf("\nBoth algorithms preserve every transfer; only the blocking one makes\n"
              "the live replicas pay for the failures with stall time.\n");
  return ok ? 0 : 1;
}
