// Figure 1 from the paper, executed.
//
// Processes p, q, r (p0, p1, p2) plus an injector (p3) that plays the
// unnamed sender of m. The injector sends m to p, p sends m' to q, q sends
// m'' to r. With f = 2 the receipt order of m is logged at p and piggybacked
// to q and r — "the receipt order of m need not be propagated further than
// r" (§2.1). Then the double failure the paper walks through: p and q crash
// back to back. Recovery must find m's receipt order in q-or-r's logs,
// fetch m's data from the injector's send log, and regenerate m'
// deterministically so q can recover — leaving r a non-orphan.
//
// Run:  ./examples/figure1_chain
#include <cstdio>
#include <memory>

#include "app/workloads.hpp"
#include "common/log.hpp"
#include "runtime/cluster.hpp"

using namespace rr;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "-v") logging::set_level(LogLevel::kDebug);

  runtime::ClusterConfig config;
  config.num_processes = 4;  // p, q, r + injector
  config.f = 2;
  config.algorithm = recovery::Algorithm::kNonBlocking;
  config.supervisor_restart_delay = milliseconds(500);
  config.detector.heartbeat_period = milliseconds(200);
  config.detector.timeout = milliseconds(800);
  config.storage.seek_latency = milliseconds(3);

  runtime::Cluster cluster(
      config, [](ProcessId) { return std::make_unique<app::ChainApp>(app::ChainConfig{32}); });
  cluster.start();

  // Boot + the first chains take ~50 ms; crash p and q mid-chain.
  cluster.crash_at(ProcessId{0}, milliseconds(25));  // p
  cluster.crash_at(ProcessId{1}, milliseconds(29));  // q
  cluster.run_until(seconds(10));

  std::printf("Figure 1 scenario: p and q failed mid-chain, r stayed live\n\n");
  const char* names[] = {"p", "q", "r", "injector"};
  for (const ProcessId pid : cluster.pids()) {
    const auto& node = cluster.node(pid);
    const auto& app = dynamic_cast<const app::ChainApp&>(node.application());
    std::printf("  %-8s inc=%u  chain deliveries=%zu  state hash=%016llx\n", names[pid.value],
                node.incarnation(), app.log().size(),
                static_cast<unsigned long long>(app.state_hash()));
  }

  std::printf("\nrecoveries:\n");
  for (const auto& t : cluster.all_recoveries()) {
    std::printf("  inc=%u crashed@%s -> complete@%s, replayed %zu receipts\n", t.inc,
                format_duration(t.crashed_at).c_str(), format_duration(t.completed_at).c_str(),
                t.replayed);
  }

  const auto& m = cluster.metrics();
  std::printf("\ndeterminant gaps: %llu (0 = every antecedent of a visible message "
              "was recovered — paper §4.3)\n",
              static_cast<unsigned long long>(m.counter_value("recovery.det_gaps")));
  std::printf("live blocked time: %s (the new algorithm never stalls r)\n",
              format_duration(cluster.total_blocked_time()).c_str());
  return cluster.all_idle() && m.counter_value("recovery.det_gaps") == 0 ? 0 : 1;
}
