// Output-commit demo: why a recoverable system still can't just print.
//
// A "ticker" process receives updates and wants to publish every tenth one
// to the outside world. Publishing through commit_output() stalls each
// release until the state that produced it is recoverable (determinants at
// f+1 holders); publishing eagerly would risk showing the world output
// from a state a crash then rolls back.
//
// The demo runs the same schedule twice — once with a crash, once without —
// and shows that the *released* output sequence is identical: exactly-once,
// gap-free, crash or no crash.
//
// Run:  ./examples/output_commit_demo
#include <cstdio>
#include <memory>

#include "app/application.hpp"
#include "runtime/cluster.hpp"

using namespace rr;

namespace {

/// Feeds a stream of numbered updates to the ticker.
class FeedApp : public app::Application {
 public:
  void on_start(app::AppContext& ctx) override {
    if (ctx.self() != ctx.processes().front()) return;
    send_update(ctx, 1);
  }

  void on_message(app::AppContext& ctx, ProcessId, const Bytes& payload) override {
    // The ticker echoes each update; keep the stream flowing.
    BufReader r(payload);
    send_update(ctx, r.u64() + 1);
  }

  [[nodiscard]] Bytes snapshot() const override {
    BufWriter w;
    w.u64(next_);
    return std::move(w).take();
  }
  void restore(const Bytes& state) override { next_ = BufReader(state).u64(); }
  [[nodiscard]] std::uint64_t state_hash() const override { return next_; }

 private:
  void send_update(app::AppContext& ctx, std::uint64_t seq) {
    next_ = seq;
    BufWriter w;
    w.u64(seq);
    ctx.send(ctx.processes().back(), std::move(w).take());
  }
  std::uint64_t next_{0};
};

/// Publishes every tenth update through the output-commit barrier.
class TickerApp : public app::Application {
 public:
  void on_message(app::AppContext& ctx, ProcessId from, const Bytes& payload) override {
    BufReader r(payload);
    const std::uint64_t seq = r.u64();
    sum_ += seq;
    if (seq % 10 == 0) {
      BufWriter out;
      out.u64(seq);
      out.u64(sum_);
      ctx.commit_output(std::move(out).take());
    }
    BufWriter echo;
    echo.u64(seq);
    ctx.send(from, std::move(echo).take());
  }

  [[nodiscard]] Bytes snapshot() const override {
    BufWriter w;
    w.u64(sum_);
    return std::move(w).take();
  }
  void restore(const Bytes& state) override { sum_ = BufReader(state).u64(); }
  [[nodiscard]] std::uint64_t state_hash() const override { return sum_; }

 private:
  std::uint64_t sum_{0};
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> run(bool with_crash) {
  runtime::ClusterConfig config;
  config.num_processes = 4;  // feed, two bystanders (determinant holders), ticker
  config.f = 2;
  config.supervisor_restart_delay = milliseconds(500);
  config.detector.heartbeat_period = milliseconds(200);
  config.detector.timeout = milliseconds(800);
  config.storage.seek_latency = milliseconds(2);
  config.checkpoint_period = seconds(2);

  runtime::Cluster cluster(config, [](ProcessId pid) -> std::unique_ptr<app::Application> {
    if (pid == ProcessId{3}) return std::make_unique<TickerApp>();
    return std::make_unique<FeedApp>();
  });
  cluster.start();
  if (with_crash) cluster.crash_at(ProcessId{3}, milliseconds(1'500));
  cluster.run_until(seconds(8));

  std::vector<std::pair<std::uint64_t, std::uint64_t>> published;
  for (const auto& [id, payload] : cluster.node(3u).released_outputs()) {
    BufReader r(payload);
    const auto seq = r.u64();
    published.emplace_back(seq, r.u64());
  }
  return published;
}

}  // namespace

int main() {
  const auto clean = run(false);
  const auto crashed = run(true);

  std::printf("published outputs (seq, running sum):\n");
  const std::size_t common = std::min(clean.size(), crashed.size());
  bool identical_prefix = true;
  for (std::size_t i = 0; i < common; ++i) {
    identical_prefix = identical_prefix && clean[i] == crashed[i];
  }
  std::printf("  failure-free run: %zu outputs, last = (%llu, %llu)\n", clean.size(),
              static_cast<unsigned long long>(clean.back().first),
              static_cast<unsigned long long>(clean.back().second));
  std::printf("  crash-at-1.5s run: %zu outputs, last = (%llu, %llu)\n", crashed.size(),
              static_cast<unsigned long long>(crashed.back().first),
              static_cast<unsigned long long>(crashed.back().second));
  std::printf("  common prefix identical: %s\n", identical_prefix ? "yes" : "NO");

  // Gap-free and duplicate-free published sequence despite the crash.
  bool gap_free = true;
  for (std::size_t i = 0; i < crashed.size(); ++i) {
    gap_free = gap_free && crashed[i].first == 10 * (i + 1);
  }
  std::printf("  crash-run sequence gap/duplicate free: %s\n", gap_free ? "yes" : "NO");
  std::printf("\nThe external world cannot tell the ticker ever crashed — outputs were\n"
              "withheld until recoverable, regenerated deterministically, and deduped\n"
              "by their deterministic ids.\n");
  return identical_prefix && gap_free ? 0 : 1;
}
