// Tree-structured gather at scale: relay crashes mid-round must trigger
// subtree re-parenting (never a lost contribution), leader crashes must
// still fail over, and the whole run must satisfy the V1-V9 oracles — over
// a grid of cluster sizes and fan-outs. Plus the n=256 single-failure
// smoke that keeps tier-1 honest about cluster sizes beyond the paper's
// testbed.
#include <gtest/gtest.h>

#include "check/explorer.hpp"
#include "check/schedule.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using check::FaultSchedule;
using check::Injection;
using check::ScheduleExplorer;
using recovery::PhaseId;

Injection crash(std::uint32_t pid, Time at) {
  Injection inj;
  inj.kind = Injection::Kind::kCrashAt;
  inj.victim = ProcessId{pid};
  inj.at = at;
  return inj;
}

Injection treecrash(std::uint64_t index, std::uint32_t occurrence) {
  Injection inj;
  inj.kind = Injection::Kind::kTreeCrash;
  inj.index = index;
  inj.occurrence = occurrence;
  return inj;
}

struct TreeParam {
  std::uint32_t n;
  std::uint32_t arity;
};

std::string param_name(const ::testing::TestParamInfo<TreeParam>& info) {
  return "n" + std::to_string(info.param.n) + "_arity" + std::to_string(info.param.arity);
}

class TreeGatherGrid : public ::testing::TestWithParam<TreeParam> {};

// Crash the leader's first relay (participant 0 = tree index 1, an interior
// node whenever participants > arity) at the first gather start, with the
// supervisor delay stretched past the detector timeout so the relay is
// *suspected* mid-round: the leader must re-parent the orphaned subtree to
// itself and the round must still complete with every contribution.
TEST_P(TreeGatherGrid, RelayCrashMidGatherReparentsAndTerminates) {
  const TreeParam p = GetParam();
  ASSERT_GT(p.n - 1, p.arity) << "participant 0 must be interior for this test";
  FaultSchedule s;
  s.n = p.n;
  s.f = 2;
  s.seed = 7;
  s.arity = p.arity;
  s.tokens = 8;  // fixed app load: n = 64 must not cost 8x the n = 16 cell
  s.restart = milliseconds(2500);
  s.injections = {crash(1, seconds(2)), treecrash(0, 1)};

  const check::RunOutcome o = ScheduleExplorer::run(s);
  EXPECT_TRUE(o.ok()) << o.brief();
  EXPECT_GE(o.recoveries, 2u);  // the original victim and the relay
  EXPECT_GT(o.phase_count[static_cast<std::size_t>(PhaseId::kSubtreeReparented)], 0u)
      << s.format();
}

// Crash a second-level relay (participant arity, tree index arity+1 — a
// child of participant 0, not of the leader): the re-parent decision then
// belongs to the *relay* above it, not the leader.
TEST_P(TreeGatherGrid, DeepRelayCrashIsHandledByItsParentRelay) {
  const TreeParam p = GetParam();
  if (p.n - 1 <= 2 * p.arity + 1) GTEST_SKIP() << "tree too shallow for a deep relay";
  FaultSchedule s;
  s.n = p.n;
  s.f = 2;
  s.seed = 11;
  s.arity = p.arity;
  s.tokens = 8;
  s.restart = milliseconds(2500);
  s.injections = {crash(1, seconds(2)), treecrash(p.arity, 1)};

  const check::RunOutcome o = ScheduleExplorer::run(s);
  EXPECT_TRUE(o.ok()) << o.brief();
  EXPECT_GE(o.recoveries, 2u);
}

// The round leader crashes mid-tree-gather: ordinal failover must hand the
// round to the next recoverer exactly as in the flat gather.
TEST_P(TreeGatherGrid, LeaderCrashMidTreeGatherFailsOver) {
  const TreeParam p = GetParam();
  FaultSchedule s;
  s.n = p.n;
  s.f = 2;
  s.seed = 13;
  s.arity = p.arity;
  s.tokens = 8;
  s.restart = milliseconds(2500);
  Injection pcrash;
  pcrash.kind = Injection::Kind::kPhaseCrash;
  pcrash.victim = Injection::kFirer;
  pcrash.phase = PhaseId::kGatherStarted;
  pcrash.occurrence = 1;
  s.injections = {crash(1, seconds(2)), crash(2, milliseconds(2300)), pcrash};

  const check::RunOutcome o = ScheduleExplorer::run(s);
  EXPECT_TRUE(o.ok()) << o.brief();
  EXPECT_GE(o.recoveries, 2u);
}

// Tree and flat gathers must both satisfy every oracle on the same
// schedule, and the tree run must be deterministic (two executions,
// bit-identical state). Note the two *hashes* legitimately differ from
// each other: the gather topology changes control-message timing, which
// shifts when recovery completes and with it the application trajectory —
// the equivalence that does hold (same receipt orders under frozen
// timing) is the pruning property test's job.
TEST_P(TreeGatherGrid, TreeGatherIsDeterministicAndPassesOraclesLikeFlat) {
  const TreeParam p = GetParam();
  FaultSchedule s;
  s.n = p.n;
  s.f = 2;
  s.seed = 17;
  s.tokens = 8;
  s.injections = {crash(1, seconds(2))};

  FaultSchedule tree = s;
  tree.arity = p.arity;
  const check::RunOutcome flat = ScheduleExplorer::run(s);
  const check::RunOutcome once = ScheduleExplorer::run(tree);
  const check::RunOutcome twice = ScheduleExplorer::run(tree);
  EXPECT_TRUE(flat.ok()) << flat.brief();
  EXPECT_TRUE(once.ok()) << once.brief();
  EXPECT_EQ(once.state_hash, twice.state_hash);
  EXPECT_EQ(once.brief(), twice.brief());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeGatherGrid,
                         ::testing::Values(TreeParam{16, 2}, TreeParam{16, 4}, TreeParam{16, 8},
                                           TreeParam{64, 2}, TreeParam{64, 4},
                                           TreeParam{64, 8}),
                         param_name);

// --- n = 256 tier-1 smoke ---------------------------------------------------

// A single failure in a 256-process cluster with a sparse workload (tokens
// only on the first 8 processes; everyone heartbeats): recovery must
// complete, no receipt order may be lost, and the run must stay within a
// modest event budget. Heartbeat cadence is relaxed to keep the O(n^2)
// liveness traffic from dominating the virtual timeline.
TEST(ScaleSmoke, N256SingleFailureRecoversUnderTreeGather) {
  harness::ScenarioConfig sc;
  sc.cluster = test::fast_cluster(256, 1, recovery::Algorithm::kNonBlocking, 3);
  sc.cluster.detector.heartbeat_period = seconds(1);
  sc.cluster.detector.timeout = seconds(3);
  sc.cluster.recovery.gather_arity = 4;
  sc.cluster.recovery.phase_timeout = seconds(5);
  sc.cluster.enable_trace = true;
  sc.factory = [](ProcessId pid) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = pid.value < 8 ? 1 : 0;
    cfg.payload_pad = 32;
    cfg.seed = 100 + pid.value;
    return std::make_unique<app::GossipApp>(cfg);
  };
  sc.crashes = {{ProcessId{2}, seconds(2)}};
  sc.horizon = seconds(8);
  sc.idle_deadline = seconds(120);

  trace::CheckResult history;
  const auto r = harness::run_scenario(
      sc, [&](runtime::Cluster& cluster) { history = cluster.check_history(); });
  EXPECT_TRUE(history.ok) << history.summary()
                          << (history.violations.empty() ? "" : "\n" + history.violations[0]);
  EXPECT_TRUE(r.idle);
  EXPECT_GE(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
  EXPECT_GT(r.app_delivered, 0u);
}

}  // namespace
}  // namespace rr
