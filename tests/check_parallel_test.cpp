// Parallel exploration regression tests.
//
// The work-stealing sweep is only sound if a simulation instance is a pure
// function of its schedule with zero cross-instance state: these tests pin
// (a) that two sims running *concurrently* on different threads produce
// traces identical to back-to-back serial runs (guards the thread-local
// BufferPool, logging clock and any future hidden static), (b) that
// explore() is bit-identical across jobs counts, and (c) that parallel
// speculative shrinking converges to the same minimal repro as serial
// shrinking on the planted seed bug.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "check/explorer.hpp"
#include "check/schedule.hpp"

namespace rr {
namespace {

using check::ExploreOptions;
using check::ExploreResult;
using check::FaultSchedule;
using check::Injection;
using check::RunOutcome;
using check::ScheduleExplorer;

FaultSchedule crash_schedule(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
                             std::uint32_t victim) {
  FaultSchedule s;
  s.n = n;
  s.f = f;
  s.seed = seed;
  Injection inj;
  inj.kind = Injection::Kind::kCrashAt;
  inj.victim = ProcessId{victim};
  inj.at = seconds(2);
  s.injections = {inj};
  return s;
}

/// Everything an outcome exposes that a sweep report is built from.
struct Fingerprint {
  bool terminated;
  bool check_ok;
  Time finished_at;
  std::uint64_t phase_events;
  std::uint64_t injections_applied;
  std::uint64_t state_hash;
  std::string flight_dump;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const RunOutcome& o) {
  return {o.terminated,         o.check.ok,   o.finished_at, o.phase_events,
          o.injections_applied, o.state_hash, o.flight_dump};
}

TEST(ParallelExplorerTest, ConcurrentSimsMatchBackToBackSerialRuns) {
  // Two different clusters with different seeds, so any shared mutable
  // state (a common buffer pool free list, a process-wide clock) would
  // cross-contaminate rather than coincidentally agree.
  const FaultSchedule sa = crash_schedule(4, 2, 11, 0);
  const FaultSchedule sb = crash_schedule(4, 1, 23, 1);

  const Fingerprint serial_a = fingerprint(ScheduleExplorer::run(sa));
  const Fingerprint serial_b = fingerprint(ScheduleExplorer::run(sb));

  Fingerprint conc_a, conc_b;
  {
    std::thread ta([&] { conc_a = fingerprint(ScheduleExplorer::run(sa)); });
    std::thread tb([&] { conc_b = fingerprint(ScheduleExplorer::run(sb)); });
    ta.join();
    tb.join();
  }
  EXPECT_EQ(conc_a, serial_a);
  EXPECT_EQ(conc_b, serial_b);
}

TEST(ParallelExplorerTest, ExploreIsBitIdenticalAcrossJobs) {
  // A small slice of the real matrix; the on_run stream is exactly what the
  // rrcheck sweep report prints, so equality here is report byte-identity.
  auto sweep = [](unsigned jobs) {
    ExploreOptions eo;
    eo.seeds_per_cell = 1;
    eo.max_runs = 6;
    eo.jobs = jobs;
    std::vector<std::string> stream;
    eo.on_run = [&stream](const FaultSchedule& s, const RunOutcome& o) {
      stream.push_back(s.format() + " | " + o.brief() + " | " +
                       std::to_string(o.state_hash) + " | " +
                       std::to_string(o.injections_applied));
    };
    const ExploreResult r = ScheduleExplorer::explore(eo);
    stream.push_back("runs=" + std::to_string(r.runs) +
                     " failures=" + std::to_string(r.failures) +
                     " injections=" + std::to_string(r.injections_applied) +
                     " replay=" + r.replay);
    return stream;
  };
  const auto serial = sweep(1);
  ASSERT_EQ(serial.size(), 7u);  // 6 runs + the summary line
  EXPECT_EQ(sweep(4), serial);
}

TEST(ParallelExplorerTest, LossySliceIsBitIdenticalAcrossJobs) {
  // Same identity check over the unreliable-fabric slice of the matrix: the
  // stateless loss/dup draws and the transport's retransmission timers must
  // not leak any cross-instance or cross-thread state into the report.
  auto sweep = [](unsigned jobs) {
    ExploreOptions eo;
    eo.seeds_per_cell = 1;
    eo.max_runs = 4;
    eo.jobs = jobs;
    eo.unreliable_only = true;
    std::vector<std::string> stream;
    eo.on_run = [&stream](const FaultSchedule& s, const RunOutcome& o) {
      stream.push_back(s.format() + " | " + o.brief() + " | " +
                       std::to_string(o.state_hash) + " | " +
                       std::to_string(o.injections_applied));
    };
    const ExploreResult r = ScheduleExplorer::explore(eo);
    stream.push_back("runs=" + std::to_string(r.runs) +
                     " failures=" + std::to_string(r.failures) +
                     " injections=" + std::to_string(r.injections_applied));
    return stream;
  };
  const auto serial = sweep(1);
  ASSERT_EQ(serial.size(), 5u);  // 4 runs + the summary line
  EXPECT_TRUE(serial.back().find("failures=0") != std::string::npos) << serial.back();
  EXPECT_EQ(sweep(3), serial);
}

TEST(ParallelExplorerTest, ParallelShrinkMatchesSerialOnSeededBug) {
  ExploreOptions eo;
  eo.seed_bug = true;
  eo.seeds_per_cell = 1;
  eo.shrink_budget = 12;
  eo.jobs = 1;
  const ExploreResult serial = ScheduleExplorer::explore(eo);
  ASSERT_GE(serial.failures, 1u) << "seeded bug escaped the serial explorer";

  eo.jobs = 3;
  const ExploreResult parallel = ScheduleExplorer::explore(eo);
  ASSERT_GE(parallel.failures, 1u) << "seeded bug escaped the parallel explorer";

  // Same failing schedule found, shrunk to the same minimal repro, printed
  // as the same --replay line.
  EXPECT_EQ(parallel.first_failure, serial.first_failure);
  EXPECT_EQ(parallel.shrunk, serial.shrunk);
  EXPECT_EQ(parallel.replay, serial.replay);
  EXPECT_EQ(fingerprint(parallel.shrunk_outcome), fingerprint(serial.shrunk_outcome));

  // And the direct shrink entry point agrees for a spread of job counts.
  const FaultSchedule direct = ScheduleExplorer::shrink(serial.first_failure, 12, 2);
  EXPECT_EQ(direct, serial.shrunk);
}

}  // namespace
}  // namespace rr
