// ReplayEngine: schedule installation, ordered paced delivery, payload
// sourcing, gap truncation and repeated installs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "recovery/replay.hpp"

namespace rr::recovery {
namespace {

constexpr ProcessId kSelf{1};

fbl::HeldDeterminant het(std::uint32_t src, Ssn ssn, Rsn rsn) {
  return {fbl::Determinant{ProcessId{src}, ssn, kSelf, rsn}, 0x2};
}

struct ReplayFixture : ::testing::Test {
  sim::Simulator sim;
  std::vector<fbl::Determinant> delivered;
  std::vector<Time> delivered_at;
  std::map<ProcessId, std::vector<Ssn>> requested;
  int completions = 0;
  Duration per_delivery = microseconds(10);
  std::unique_ptr<ReplayEngine> engine_;

  ReplayEngine& make() {
    engine_ = std::make_unique<ReplayEngine>(
        sim, kSelf, per_delivery,
        ReplayEngine::Hooks{
            .deliver =
                [this](const fbl::HeldDeterminant& h, const Bytes&) {
                  delivered.push_back(h.det);
                  delivered_at.push_back(sim.now());
                },
            .request_payloads =
                [this](ProcessId source, std::vector<Ssn> ssns) {
                  auto& v = requested[source];
                  v.insert(v.end(), ssns.begin(), ssns.end());
                },
            .on_complete = [this] { ++completions; },
        });
    return *engine_;
  }
};

TEST_F(ReplayFixture, EmptyScheduleCompletesImmediately) {
  auto& e = make();
  e.install({}, 0, {});
  EXPECT_TRUE(e.complete());
  EXPECT_EQ(completions, 1);
}

TEST_F(ReplayFixture, RequestsMissingPayloadsBatchedBySource) {
  auto& e = make();
  e.install({het(0, 1, 1), het(2, 1, 2), het(0, 2, 3)}, 0, {});
  EXPECT_EQ(requested[ProcessId{0}], (std::vector<Ssn>{1, 2}));
  EXPECT_EQ(requested[ProcessId{2}], (std::vector<Ssn>{1}));
}

TEST_F(ReplayFixture, RecoveringSourcesNotRequested) {
  auto& e = make();
  e.install({het(0, 1, 1), het(2, 1, 2)}, 0, {ProcessId{2}});
  EXPECT_TRUE(requested[ProcessId{2}].empty());
  EXPECT_EQ(requested[ProcessId{0}].size(), 1u);
}

TEST_F(ReplayFixture, DeliversInRsnOrderWithPacing) {
  auto& e = make();
  e.install({het(0, 1, 1), het(2, 1, 2), het(0, 2, 3)}, 0, {});
  // Payloads arrive out of order; delivery must follow rsn order.
  e.offer(ProcessId{0}, 2, to_bytes("c"));
  e.offer(ProcessId{2}, 1, to_bytes("b"));
  e.offer(ProcessId{0}, 1, to_bytes("a"));
  sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].rsn, 1u);
  EXPECT_EQ(delivered[1].rsn, 2u);
  EXPECT_EQ(delivered[2].rsn, 3u);
  // Each delivery consumed one per-delivery CPU slot.
  EXPECT_EQ(delivered_at[0], per_delivery);
  EXPECT_EQ(delivered_at[1], 2 * per_delivery);
  EXPECT_EQ(delivered_at[2], 3 * per_delivery);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(e.delivered(), 3u);
}

TEST_F(ReplayFixture, StallsUntilMissingPayloadArrives) {
  auto& e = make();
  e.install({het(0, 1, 1), het(0, 2, 2)}, 0, {});
  e.offer(ProcessId{0}, 2, to_bytes("later"));
  sim.run();
  EXPECT_TRUE(delivered.empty());  // rsn 1 still missing
  e.offer(ProcessId{0}, 1, to_bytes("first"));
  sim.run();
  EXPECT_EQ(delivered.size(), 2u);
}

TEST_F(ReplayFixture, ScheduleStartsAfterCheckpointRsn) {
  auto& e = make();
  e.install({het(0, 1, 1), het(0, 2, 2), het(0, 3, 3)}, 2, {});
  EXPECT_EQ(e.pending(), 1u);
  e.offer(ProcessId{0}, 3, Bytes{});
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].rsn, 3u);
}

TEST_F(ReplayFixture, GapTruncatesSuffix) {
  auto& e = make();
  e.install({het(0, 1, 1), het(0, 3, 3)}, 0, {});  // rsn 2 missing
  EXPECT_EQ(e.gaps_detected(), 1u);
  EXPECT_EQ(e.pending(), 1u);
  e.offer(ProcessId{0}, 1, Bytes{});
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(completions, 1);
}

TEST_F(ReplayFixture, UnneededOffersIgnored) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  e.offer(ProcessId{9}, 1, Bytes{});
  e.offer(ProcessId{0}, 99, Bytes{});
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_FALSE(e.complete());
}

TEST_F(ReplayFixture, DuplicateOffersHarmless) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  e.offer(ProcessId{0}, 1, to_bytes("one"));
  e.offer(ProcessId{0}, 1, to_bytes("two"));
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(completions, 1);
}

TEST_F(ReplayFixture, SecondInstallExtendsSchedule) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  e.offer(ProcessId{0}, 1, Bytes{});
  // Before the first delivery lands, a fail-over leader installs more.
  e.install({het(0, 1, 1), het(2, 1, 2)}, 0, {});
  e.offer(ProcessId{2}, 1, Bytes{});
  sim.run();
  EXPECT_EQ(delivered.size(), 2u);
  EXPECT_EQ(completions, 1);
}

TEST_F(ReplayFixture, SecondInstallDoesNotReRequest) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  e.install({het(0, 1, 1)}, 0, {});
  EXPECT_EQ(requested[ProcessId{0}].size(), 1u);
}

TEST_F(ReplayFixture, OnSourceRecoveredReRequestsPending) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {ProcessId{0}});  // source recovering: no request
  EXPECT_TRUE(requested[ProcessId{0}].empty());
  e.on_source_recovered(ProcessId{0});
  EXPECT_EQ(requested[ProcessId{0}], (std::vector<Ssn>{1}));
}

TEST_F(ReplayFixture, NeedsReflectsPendingOnly) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  EXPECT_TRUE(e.needs(ProcessId{0}, 1));
  EXPECT_FALSE(e.needs(ProcessId{0}, 2));
  e.offer(ProcessId{0}, 1, Bytes{});
  sim.run();
  EXPECT_FALSE(e.needs(ProcessId{0}, 1));
}

TEST_F(ReplayFixture, ResetClearsState) {
  auto& e = make();
  e.install({het(0, 1, 1)}, 0, {});
  e.reset();
  EXPECT_FALSE(e.installed());
  EXPECT_EQ(e.pending(), 0u);
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(completions, 0);
}

TEST_F(ReplayFixture, ZeroCostDeliveryStillOrdered) {
  per_delivery = 0;
  auto& e = make();
  e.install({het(0, 1, 1), het(0, 2, 2)}, 0, {});
  e.offer(ProcessId{0}, 1, Bytes{});
  e.offer(ProcessId{0}, 2, Bytes{});
  sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].rsn, 1u);
}

}  // namespace
}  // namespace rr::recovery
