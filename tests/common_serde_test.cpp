// BufWriter/BufReader: encode/decode fidelity, bounds checking and error
// behaviour for every primitive the wire formats use.
#include <gtest/gtest.h>

#include <limits>

#include "common/serde.hpp"

namespace rr {
namespace {

TEST(Serde, U8RoundTrip) {
  BufWriter w;
  w.u8(0);
  w.u8(127);
  w.u8(255);
  BufReader r(w.view());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 127u);
  EXPECT_EQ(r.u8(), 255u);
  EXPECT_TRUE(r.done());
}

TEST(Serde, U16RoundTrip) {
  BufWriter w;
  w.u16(0);
  w.u16(0xBEEF);
  w.u16(std::numeric_limits<std::uint16_t>::max());
  BufReader r(w.view());
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_EQ(r.u16(), 0xBEEFu);
  EXPECT_EQ(r.u16(), std::numeric_limits<std::uint16_t>::max());
}

TEST(Serde, U32RoundTrip) {
  BufWriter w;
  w.u32(0xDEADBEEF);
  BufReader r(w.view());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
}

TEST(Serde, U64RoundTrip) {
  BufWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.u64(1);
  BufReader r(w.view());
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.u64(), 1u);
}

TEST(Serde, I64RoundTripNegative) {
  BufWriter w;
  w.i64(-1);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());
  BufReader r(w.view());
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
}

TEST(Serde, F64RoundTrip) {
  BufWriter w;
  w.f64(3.14159265358979);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  BufReader r(w.view());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(Serde, BooleanRoundTrip) {
  BufWriter w;
  w.boolean(true);
  w.boolean(false);
  BufReader r(w.view());
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
}

TEST(Serde, BooleanRejectsMalformed) {
  BufWriter w;
  w.u8(2);
  BufReader r(w.view());
  EXPECT_THROW((void)r.boolean(), SerdeError);
}

TEST(Serde, VarintSmallValuesAreOneByte) {
  for (std::uint64_t v : {0ull, 1ull, 127ull}) {
    BufWriter w;
    w.varint(v);
    EXPECT_EQ(w.size(), 1u) << v;
    BufReader r(w.view());
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Serde, VarintBoundaries) {
  const std::uint64_t cases[] = {128, 16383, 16384, std::uint64_t{1} << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    BufWriter w;
    w.varint(v);
    BufReader r(w.view());
    EXPECT_EQ(r.varint(), v) << v;
  }
}

TEST(Serde, VarintMaxUsesTenBytes) {
  BufWriter w;
  w.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 10u);
}

TEST(Serde, VarintRejectsOverlong) {
  Bytes evil(11, std::byte{0x80});
  BufReader r(evil);
  EXPECT_THROW((void)r.varint(), SerdeError);
}

TEST(Serde, VarintRejectsOverflow) {
  // 10 bytes whose top byte pushes past 64 bits.
  Bytes evil(9, std::byte{0x80});
  evil.push_back(std::byte{0x7f});
  BufReader r(evil);
  EXPECT_THROW((void)r.varint(), SerdeError);
}

TEST(Serde, BytesRoundTrip) {
  Bytes payload = to_bytes("hello wire");
  BufWriter w;
  w.bytes(payload);
  BufReader r(w.view());
  EXPECT_EQ(r.bytes(), payload);
}

TEST(Serde, EmptyBytesRoundTrip) {
  BufWriter w;
  w.bytes(Bytes{});
  BufReader r(w.view());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, StringRoundTrip) {
  BufWriter w;
  w.str("");
  w.str("abc");
  w.str(std::string(1000, 'x'));
  BufReader r(w.view());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "abc");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Serde, ProcessIdRoundTrip) {
  BufWriter w;
  w.process_id(ProcessId{42});
  BufReader r(w.view());
  EXPECT_EQ(r.process_id(), ProcessId{42});
}

TEST(Serde, RawPreservesFraming) {
  BufWriter inner;
  inner.u32(7);
  BufWriter w;
  w.raw(inner.view());
  BufReader r(w.view());
  EXPECT_EQ(r.u32(), 7u);
}

TEST(Serde, TruncatedReadThrows) {
  BufWriter w;
  w.u16(99);
  BufReader r(w.view());
  EXPECT_THROW((void)r.u32(), SerdeError);
}

TEST(Serde, TruncatedBytesThrows) {
  BufWriter w;
  w.varint(100);  // claims 100 bytes follow
  w.u8(1);
  BufReader r(w.view());
  EXPECT_THROW((void)r.bytes(), SerdeError);
}

TEST(Serde, ExpectDoneThrowsOnTrailingGarbage) {
  BufWriter w;
  w.u8(1);
  w.u8(2);
  BufReader r(w.view());
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serde, RemainingTracksPosition) {
  BufWriter w;
  w.u64(1);
  BufReader r(w.view());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Serde, ReaderRawBoundsChecked) {
  BufWriter w;
  w.u8(1);
  BufReader r(w.view());
  EXPECT_THROW((void)r.raw(2), SerdeError);
}

TEST(Serde, TakeMovesBuffer) {
  BufWriter w;
  w.u32(5);
  Bytes b = std::move(w).take();
  EXPECT_EQ(b.size(), 4u);
}

TEST(Serde, TextHelpersRoundTrip) {
  const std::string s = "determinant";
  EXPECT_EQ(to_text(to_bytes(s)), s);
}

TEST(Serde, DeterministicEncoding) {
  auto enc = [] {
    BufWriter w;
    w.u32(1);
    w.varint(300);
    w.str("abc");
    return std::move(w).take();
  };
  EXPECT_EQ(enc(), enc());
}

TEST(Serde, ReserveDoesNotAffectContent) {
  BufWriter a(1024);
  BufWriter b;
  a.u64(77);
  b.u64(77);
  EXPECT_EQ(a.view(), b.view());
}

}  // namespace
}  // namespace rr
