// Edge-timing scenarios: crashes landing inside other mechanisms' windows —
// mid-checkpoint, while blocked by someone else's recovery, while deferring
// unsafe messages, mid-determinant-flush, and during the boot sequence.
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using harness::ScenarioConfig;
using recovery::Algorithm;
using test::fast_cluster;

TEST(EdgeTiming, CrashDuringCheckpointWriteRestoresPreviousImage) {
  // Checkpoints commit on the device even if the node dies first (queued
  // writes complete); either way a loadable image exists. Crash right at a
  // checkpoint boundary and verify recovery proceeds from *some* committed
  // checkpoint without gaps.
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kNonBlocking, 41);
  sc.factory = test::gossip_factory();
  // First periodic checkpoints initiate at 2s + 37ms*(pid+1); p1's write is
  // in flight right after 2.074s.
  sc.crashes = {{ProcessId{1}, milliseconds(2'080)}};
  sc.horizon = seconds(8);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(EdgeTiming, BlockedLiveProcessCrashesWhileBlocked) {
  // Under the blocking baseline, p2 stalls for p1's recovery and then
  // crashes itself mid-stall. Its buffered frames die with it; both
  // recoveries must complete and the survivors unblock for both.
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kBlocking, 42);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{2}, milliseconds(3'660)}};  // inside p1's replay window
  sc.horizon = seconds(10);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
  // The surviving pair blocked at least once and is unblocked at the end.
  EXPECT_GE(r.counter("recovery.block_episodes"), 2u);
}

TEST(EdgeTiming, DeferringProcessCrashesWhileDeferring) {
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kDeferUnsafe, 43);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{3}, milliseconds(3'660)}};
  sc.horizon = seconds(10);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
  EXPECT_GE(r.counter("recovery.live_sync_writes"), 3u);
}

TEST(EdgeTiming, CrashDuringDetFlushOnStableInstance) {
  // f = n: determinant blocks stream to stable storage; crash with a flush
  // in flight. Restore must merge whatever blocks committed and recover
  // gap-free.
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 4, Algorithm::kNonBlocking, 44);
  sc.cluster.det_flush_period = milliseconds(100);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{2}, milliseconds(3'050)}};  // flush cadence boundary
  sc.horizon = seconds(8);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
  EXPECT_GT(r.counter("fbl.dets_flushed"), 0u);
}

TEST(EdgeTiming, CrashDuringBootRecoversFromPreStartCheckpoint) {
  // Crash before the first periodic checkpoint: restore uses the pre-start
  // boot image and must re-execute on_start deterministically (the test
  // oracle is simply full recovery + no receipt-order gaps).
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kNonBlocking, 45);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{0}, milliseconds(120)}};  // soon after on_start ran
  sc.horizon = seconds(8);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
  // Gossip keeps flowing (the launcher's tokens were regenerated).
  EXPECT_GT(r.app_delivered, 1000u);
}

TEST(EdgeTiming, BackToBackCrashOfEveryProcessSequentially) {
  // Rolling failures: each process crashes in turn, recoveries overlapping
  // with normal traffic. The system must end idle with one recovery per
  // crash and monotone incarnations everywhere.
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kNonBlocking, 46);
  sc.factory = test::gossip_factory();
  for (std::uint32_t i = 0; i < 4; ++i) {
    sc.crashes.push_back({ProcessId{i}, seconds(2) + seconds(2) * i});
  }
  sc.horizon = seconds(14);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 4u);
  EXPECT_EQ(r.det_gaps, 0u);
  for (const auto& t : r.recoveries) EXPECT_EQ(t.inc, 2u);
}

TEST(EdgeTiming, TwoCrashesSameInstant) {
  ScenarioConfig sc;
  sc.cluster = fast_cluster(5, 2, Algorithm::kNonBlocking, 47);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, seconds(3)}};  // same tick
  sc.horizon = seconds(10);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
  // One batch: a single leader round covered both (no restart needed when
  // both register before the gather).
  EXPECT_LE(r.gather_restarts, 1u);
}

TEST(EdgeTiming, CrashImmediatelyAfterRecoveryCompletes) {
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kNonBlocking, 48);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{1}, milliseconds(3'900)}};  // right after completion (~3.75s)
  sc.horizon = seconds(10);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size() + r.counter("recovery.abandoned"), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
}

}  // namespace
}  // namespace rr
