// TraceLog formatting and the HistoryChecker: synthetic traces that violate
// each property, plus real end-to-end traces from crash-recovery runs that
// must pass every check.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "trace/history_checker.hpp"
#include "trace/trace.hpp"

namespace rr::trace {
namespace {

constexpr ProcessId kA{0};
constexpr ProcessId kB{1};

// --- synthetic traces --------------------------------------------------------

struct SyntheticTrace {
  TraceLog log;
  Time t{0};

  SyntheticTrace& send(ProcessId src, ProcessId dst, Ssn ssn, Incarnation inc = 1,
                       bool transmitted = true) {
    log.record(++t, SendEvent{src, dst, ssn, inc, transmitted});
    return *this;
  }
  SyntheticTrace& deliver(ProcessId dst, ProcessId src, Ssn ssn, Rsn rsn,
                          Incarnation inc = 1, bool replayed = false,
                          Incarnation src_inc = 0) {
    log.record(++t, DeliverEvent{dst, src, ssn, rsn, inc, replayed, src_inc});
    return *this;
  }
  SyntheticTrace& crash(ProcessId pid, Incarnation inc) {
    log.record(++t, CrashEvent{pid, inc});
    return *this;
  }
  SyntheticTrace& restore(ProcessId pid, Incarnation inc, Rsn ckpt_rsn) {
    log.record(++t, RestoreEvent{pid, inc, ckpt_rsn});
    return *this;
  }
  SyntheticTrace& ckpt(ProcessId pid, Rsn rsn) {
    log.record(++t, CheckpointEvent{pid, rsn});
    return *this;
  }
  SyntheticTrace& floor(ProcessId pid, ProcessId about, Incarnation inc) {
    log.record(++t, FloorEvent{pid, about, inc});
    return *this;
  }
  SyntheticTrace& suspect(ProcessId observer, ProcessId peer, bool suspected = true) {
    log.record(++t, SuspectEvent{observer, peer, suspected});
    return *this;
  }
  SyntheticTrace& phase(ProcessId pid, recovery::PhaseId id, recovery::Ord ord,
                        ProcessId subject, std::uint64_t round = 1) {
    log.record(++t, PhaseEvent{pid, id, round, ord, subject});
    return *this;
  }
};

bool mentions(const CheckResult& r, const char* tag) {
  for (const auto& v : r.violations) {
    if (v.find(tag) != std::string::npos) return true;
  }
  return false;
}

TEST(HistoryChecker, EmptyTraceIsOk) {
  TraceLog log;
  const auto r = check_history(log);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.deliveries, 0u);
}

TEST(HistoryChecker, CleanExchangePasses) {
  SyntheticTrace t;
  t.ckpt(kA, 0).ckpt(kB, 0);
  t.send(kA, kB, 1).deliver(kB, kA, 1, 1);
  t.send(kB, kA, 1).deliver(kA, kB, 1, 1);
  t.send(kA, kB, 2).deliver(kB, kA, 2, 2);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.sends, 3u);
  EXPECT_EQ(r.deliveries, 3u);
}

TEST(HistoryChecker, DetectsDeliveryWithoutSend) {
  SyntheticTrace t;
  t.deliver(kB, kA, 1, 1);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("V1"), std::string::npos);
}

TEST(HistoryChecker, DetectsDeliveryBeforeSend) {
  SyntheticTrace t;
  t.deliver(kB, kA, 1, 1).send(kA, kB, 1);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("V1"), std::string::npos);
}

TEST(HistoryChecker, DetectsReceiptOrderJump) {
  SyntheticTrace t;
  t.send(kA, kB, 1).send(kA, kB, 2);
  t.deliver(kB, kA, 1, 1).deliver(kB, kA, 2, 3);  // rsn 2 skipped
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("V2"), std::string::npos);
}

TEST(HistoryChecker, DetectsChannelSsnRegression) {
  SyntheticTrace t;
  t.send(kA, kB, 1).send(kA, kB, 2);
  t.deliver(kB, kA, 2, 1).deliver(kB, kA, 1, 2);  // ssn going backwards
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("V3"), std::string::npos);
}

TEST(HistoryChecker, DetectsReplayDivergence) {
  SyntheticTrace t;
  t.ckpt(kB, 0);
  t.send(kA, kB, 1).send(kA, kB, 2);
  t.deliver(kB, kA, 1, 1);
  t.crash(kB, 1).restore(kB, 2, 0);
  t.deliver(kB, kA, 2, 1, 2, /*replayed=*/true);  // should have been ssn 1
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("V4"), std::string::npos);
}

TEST(HistoryChecker, FaithfulReplayPasses) {
  SyntheticTrace t;
  t.ckpt(kB, 0);
  t.send(kA, kB, 1);
  t.deliver(kB, kA, 1, 1);
  t.crash(kB, 1).restore(kB, 2, 0);
  t.deliver(kB, kA, 1, 1, 2, /*replayed=*/true);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.replayed, 1u);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_EQ(r.executions, 3u);  // A boot + B boot + B restore
}

TEST(HistoryChecker, CountsRollbacksWithoutFailing) {
  SyntheticTrace t;
  t.ckpt(kB, 0);
  t.send(kA, kB, 1).send(kA, kB, 2);
  t.deliver(kB, kA, 1, 1);  // lost receipt: never replayed after the crash
  t.crash(kB, 1).restore(kB, 2, 0);
  t.deliver(kB, kA, 1, 1, 2, /*replayed=*/false);  // fresh redelivery, same value
  t.deliver(kB, kA, 2, 2, 2, /*replayed=*/false);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.rollbacks, 0u);  // same (src, ssn) at rsn 1: not a divergence
}

TEST(HistoryChecker, DetectsOrphanedDelivery) {
  // B consumed A's message, then A crashed and its surviving execution
  // never (re)produced that send: B's state is orphaned.
  SyntheticTrace t;
  t.ckpt(kA, 0);
  t.send(kA, kB, 1);
  t.deliver(kB, kA, 1, 1);
  t.crash(kA, 1).restore(kA, 2, 0);
  // A's new incarnation sends nothing (no regeneration of ssn 1).
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  bool saw_v5 = false;
  for (const auto& v : r.violations) saw_v5 = saw_v5 || v.find("V5") != std::string::npos;
  EXPECT_TRUE(saw_v5);
}

TEST(HistoryChecker, RegeneratedSendCuresOrphan) {
  SyntheticTrace t;
  t.ckpt(kA, 0);
  t.send(kA, kB, 1);
  t.deliver(kB, kA, 1, 1);
  t.crash(kA, 1).restore(kA, 2, 0);
  t.send(kA, kB, 1, 2, /*transmitted=*/false);  // suppressed regeneration
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, CheckpointPreservesPreCutSends) {
  SyntheticTrace t;
  t.send(kA, kB, 1);
  t.ckpt(kA, 0);  // checkpoint cut after the send: the send log survives
  t.deliver(kB, kA, 1, 1);
  t.crash(kA, 1).restore(kA, 2, 0);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, DetectsLifecycleViolations) {
  SyntheticTrace t;
  t.crash(kA, 1).crash(kA, 1);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("V6"), std::string::npos);
}

TEST(HistoryChecker, DetectsNonMonotonicIncarnation) {
  SyntheticTrace t;
  t.crash(kA, 1).restore(kA, 1, 0);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
}

// --- V7: incvector stale rejection ------------------------------------------

TEST(HistoryChecker, DetectsFreshDeliveryBelowIncvectorFloor) {
  SyntheticTrace t;
  t.send(kA, kB, 1);
  t.floor(kB, kA, 2);  // B learned (via DepInstall) that A restarted at inc 2
  t.deliver(kB, kA, 1, 1, 1, /*replayed=*/false, /*src_inc=*/1);  // stale straggler
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V7")) << r.summary();
}

TEST(HistoryChecker, DeliveryAtTheFloorIncarnationPasses) {
  SyntheticTrace t;
  t.floor(kB, kA, 2);
  t.send(kA, kB, 1, 2);
  t.deliver(kB, kA, 1, 1, 1, /*replayed=*/false, /*src_inc=*/2);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, ReplayedDeliveriesAreExemptFromTheFloor) {
  // Replay re-consumes pre-recovery frames by construction; V7 only guards
  // fresh wire traffic.
  SyntheticTrace t;
  t.ckpt(kB, 0);
  t.send(kA, kB, 1);
  t.deliver(kB, kA, 1, 1);
  t.crash(kB, 1).restore(kB, 2, 0);
  t.floor(kB, kA, 5);
  t.deliver(kB, kA, 1, 1, 2, /*replayed=*/true, /*src_inc=*/1);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, CrashResetsTheVolatileFloor) {
  // Floors live in volatile memory: after B itself crashes, its old floor
  // for A is gone until recovery re-installs one.
  SyntheticTrace t;
  t.ckpt(kB, 0);
  t.floor(kB, kA, 2);
  t.crash(kB, 1).restore(kB, 2, 0);
  t.send(kA, kB, 1);
  t.deliver(kB, kA, 1, 1, 2, /*replayed=*/false, /*src_inc=*/1);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- V8: leader-ordinal monotonicity ----------------------------------------

constexpr ProcessId kSvc{9};  // the ord service's host in these traces

TEST(HistoryChecker, DetectsLeaderWithoutOrdinalRegistration) {
  SyntheticTrace t;
  t.phase(kA, recovery::PhaseId::kLeaderElected, 1, kA);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V8")) << r.summary();
}

TEST(HistoryChecker, DetectsLeaderAtMismatchedOrdinal) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kA, recovery::PhaseId::kLeaderElected, 5, kA);  // claims ord 5, holds 1
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V8")) << r.summary();
}

TEST(HistoryChecker, DetectsLeadershipSkippingLiveLowerOrdinal) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 2, kB);
  t.phase(kB, recovery::PhaseId::kLeaderElected, 2, kB);  // A (ord 1) is alive
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V8")) << r.summary();
}

TEST(HistoryChecker, FailoverOverACrashedLowerOrdinalPasses) {
  // The paper's next-ordinal failover: A registered at ord 1, then crashed
  // again; B may take over at ord 2.
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.crash(kA, 1);
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 2, kB);
  t.phase(kB, recovery::PhaseId::kLeaderFailover, 2, kB);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, SuspectedLowerOrdinalExcusesFailover) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 2, kB);
  t.suspect(kB, kA);
  t.phase(kB, recovery::PhaseId::kLeaderFailover, 2, kB);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, RetractedSuspicionRevokesTheFailoverExcuse) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 2, kB);
  t.suspect(kB, kA);
  t.suspect(kB, kA, /*suspected=*/false);  // detector changed its mind
  t.phase(kB, recovery::PhaseId::kLeaderFailover, 2, kB);
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V8")) << r.summary();
}

TEST(HistoryChecker, RetiredOrdinalNoLongerConstrainsLeadership) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kA, recovery::PhaseId::kLeaderElected, 1, kA);  // legitimate reign
  t.phase(kSvc, recovery::PhaseId::kOrdRetired, 1, kA);   // RecoveryComplete
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 2, kB);
  t.phase(kB, recovery::PhaseId::kLeaderElected, 2, kB);
  const auto r = check_history(t.log);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(HistoryChecker, DetectsLeadershipOnARetiredRegistration) {
  SyntheticTrace t;
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.phase(kSvc, recovery::PhaseId::kOrdRetired, 1, kA);
  t.phase(kA, recovery::PhaseId::kLeaderElected, 1, kA);  // reign after release
  const auto r = check_history(t.log);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(mentions(r, "V8")) << r.summary();
}

TEST(TraceLogTest, DumpRendersEveryKind) {
  SyntheticTrace t;
  t.send(kA, kB, 1).deliver(kB, kA, 1, 1).crash(kA, 1).restore(kA, 2, 0).ckpt(kB, 1);
  t.log.record(99, CompleteEvent{kA, 2, 5});
  t.phase(kSvc, recovery::PhaseId::kOrdAssigned, 1, kA);
  t.suspect(kB, kA);
  t.floor(kB, kA, 2);
  const std::string dump = t.log.dump();
  for (const char* token :
       {"send", "deliver", "crash", "restore", "ckpt", "complete", "phase", "suspect", "floor"}) {
    EXPECT_NE(dump.find(token), std::string::npos) << token;
  }
  EXPECT_EQ(t.log.dump(2).find("more events") != std::string::npos, true);
}

// --- end-to-end: real traces from the runtime --------------------------------

TEST(HistoryCheckerE2E, FailureFreeRunPasses) {
  harness::ScenarioConfig sc;
  sc.cluster = test::fast_cluster(3, 1, recovery::Algorithm::kNonBlocking);
  sc.cluster.enable_trace = true;
  sc.factory = test::gossip_factory();
  sc.horizon = seconds(3);
  trace::CheckResult check;
  harness::run_scenario(sc, [&](runtime::Cluster& c) { check = c.check_history(); });
  EXPECT_TRUE(check.ok) << check.summary();
  EXPECT_GT(check.deliveries, 100u);
  EXPECT_EQ(check.rollbacks, 0u);
}

TEST(HistoryCheckerE2E, SingleFailurePasses) {
  for (const auto alg : {recovery::Algorithm::kNonBlocking, recovery::Algorithm::kBlocking,
                         recovery::Algorithm::kDeferUnsafe}) {
    harness::ScenarioConfig sc;
    sc.cluster = test::fast_cluster(4, 2, alg, 21);
    sc.cluster.enable_trace = true;
    sc.factory = test::gossip_factory();
    sc.crashes = {{ProcessId{1}, seconds(3)}};
    sc.horizon = seconds(8);
    trace::CheckResult check;
    harness::run_scenario(sc, [&](runtime::Cluster& c) { check = c.check_history(); });
    EXPECT_TRUE(check.ok) << recovery::to_string(alg) << ": " << check.summary()
                          << (check.violations.empty() ? "" : "\n" + check.violations[0]);
    EXPECT_GT(check.replayed, 0u);
    EXPECT_EQ(check.rollbacks, 0u);  // within the f budget nothing rolls back
  }
}

TEST(HistoryCheckerE2E, DoubleFailureDuringRecoveryPasses) {
  harness::ScenarioConfig sc;
  sc.cluster = test::fast_cluster(4, 2, recovery::Algorithm::kNonBlocking, 22);
  sc.cluster.enable_trace = true;
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'700)}};
  sc.horizon = seconds(9);
  trace::CheckResult check;
  harness::run_scenario(sc, [&](runtime::Cluster& c) { check = c.check_history(); });
  EXPECT_TRUE(check.ok) << check.summary()
                        << (check.violations.empty() ? "" : "\n" + check.violations[0]);
  EXPECT_GE(check.executions, 6u);  // 4 boots + 2 restores
  EXPECT_EQ(check.rollbacks, 0u);
}

TEST(HistoryCheckerE2E, RepeatedCrashesOfSameProcessPass) {
  harness::ScenarioConfig sc;
  sc.cluster = test::fast_cluster(3, 1, recovery::Algorithm::kNonBlocking, 23);
  sc.cluster.enable_trace = true;
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{0}, seconds(2)}, {ProcessId{0}, seconds(5)}};
  sc.horizon = seconds(9);
  trace::CheckResult check;
  harness::run_scenario(sc, [&](runtime::Cluster& c) { check = c.check_history(); });
  EXPECT_TRUE(check.ok) << check.summary()
                        << (check.violations.empty() ? "" : "\n" + check.violations[0]);
}

}  // namespace
}  // namespace rr::trace
