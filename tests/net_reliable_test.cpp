// Reliable-delivery transport: exactly-once under loss/dup/reorder,
// retransmission with backoff, bounded-retry escalation to peer-unreachable,
// epoch/stream restarts across incarnation bumps, and passthrough fidelity
// when disabled.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace rr::net {
namespace {

Bytes indexed(std::uint32_t i) {
  BufWriter w;
  w.u32(i);
  return std::move(w).take();
}

std::uint32_t index_of(const Bytes& payload) {
  BufReader r(payload);
  return r.u32();
}

/// One endpoint with a transport bolted on: the wire tap routes every
/// delivery through on_wire, exactly as the node runtime does.
struct Peer : Endpoint {
  ReliableTransport transport;
  std::vector<std::pair<ProcessId, Bytes>> delivered;
  std::vector<std::pair<ProcessId, bool>> signals;

  Peer(sim::Simulator& sim, Network& net, ProcessId id, const TransportConfig& cfg,
       metrics::Registry& metrics)
      : transport(sim, net, id, cfg, metrics) {
    transport.set_deliver([this](ProcessId src, const Bytes& payload, std::size_t offset) {
      delivered.emplace_back(
          src, Bytes(payload.begin() + static_cast<std::ptrdiff_t>(offset), payload.end()));
    });
    transport.set_peer_signal([this](ProcessId peer, bool unreachable) {
      signals.emplace_back(peer, unreachable);
    });
    net.attach(id, *this);
    transport.reset(1);
  }

  void deliver(ProcessId src, Bytes payload) override {
    transport.on_wire(src, std::move(payload));
  }
};

struct ReliableTransportTest : ::testing::Test {
  sim::Simulator sim{5};
  metrics::Registry metrics;
  NetworkConfig net_config;
  TransportConfig tp_config;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Peer> a_, b_;

  static constexpr ProcessId kA{0};
  static constexpr ProcessId kB{1};

  void make() {
    tp_config.enabled = true;
    net_ = std::make_unique<Network>(sim, net_config, metrics);
    a_ = std::make_unique<Peer>(sim, *net_, kA, tp_config, metrics);
    b_ = std::make_unique<Peer>(sim, *net_, kB, tp_config, metrics);
  }
};

TEST_F(ReliableTransportTest, DeliversInOrderOnCleanFabric) {
  make();
  for (std::uint32_t i = 0; i < 20; ++i) a_->transport.send(kB, indexed(i));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(index_of(b_->delivered[i].second), i);
  EXPECT_EQ(metrics.counter_value("net.retransmit"), 0u);
  // Fully acked: nothing outstanding, no unreachable edges.
  EXPECT_EQ(a_->transport.send_audit(kB).baseline_or_outstanding, 0u);
  EXPECT_EQ(a_->transport.send_audit(kB).progress, 20u);
  EXPECT_TRUE(a_->signals.empty());
}

TEST_F(ReliableTransportTest, ExactlyOnceUnderHeavyLoss) {
  net_config.faults.loss = 0.3;
  make();
  net_->set_fault_exempt(ProcessId{99});  // unrelated; loss hits kA<->kB only
  for (std::uint32_t i = 0; i < 100; ++i) a_->transport.send(kB, indexed(i));
  sim.run();
  // Every payload arrives exactly once, in order, despite ~30% link loss in
  // both directions (acks die too) — the V9 guarantee at unit scale.
  ASSERT_EQ(b_->delivered.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(index_of(b_->delivered[i].second), i);
  EXPECT_GT(metrics.counter_value("net.retransmit"), 0u);
  EXPECT_GT(metrics.counter_value("net.retransmit_bytes"), 0u);
  EXPECT_EQ(a_->transport.send_audit(kB).progress, 100u);
  EXPECT_EQ(b_->transport.recv_audit(kA).progress, 100u);
  EXPECT_EQ(b_->transport.recv_audit(kA).baseline_or_outstanding, 0u);
}

TEST_F(ReliableTransportTest, FabricDuplicatesAreSuppressed) {
  net_config.faults.dup = 0.5;
  make();
  for (std::uint32_t i = 0; i < 50; ++i) a_->transport.send(kB, indexed(i));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(index_of(b_->delivered[i].second), i);
  EXPECT_GT(metrics.counter_value("net.dup_suppressed"), 0u);
}

TEST_F(ReliableTransportTest, ReorderWindowIsResequenced) {
  net_config.jitter_max = 0;
  net_config.faults.reorder_window = milliseconds(2);
  make();
  for (std::uint32_t i = 0; i < 40; ++i) a_->transport.send(kB, indexed(i));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 40u);
  for (std::uint32_t i = 0; i < 40; ++i) EXPECT_EQ(index_of(b_->delivered[i].second), i);
  EXPECT_GT(metrics.counter_value("transport.held"), 0u);  // stash did work
}

TEST_F(ReliableTransportTest, BoundedRetryEscalatesThenRecovers) {
  tp_config.rto_initial = milliseconds(10);
  tp_config.rto_max = milliseconds(40);
  tp_config.rto_jitter = 0;
  tp_config.max_retries = 3;
  tp_config.probe_period = milliseconds(50);
  make();
  net_->set_partitioned(kB, true);
  a_->transport.send(kB, indexed(7));
  sim.run_until(seconds(1));
  // 3 back-to-back timeouts -> unreachable, reported exactly once.
  EXPECT_TRUE(a_->transport.unreachable(kB));
  ASSERT_EQ(a_->signals.size(), 1u);
  EXPECT_EQ(a_->signals[0], (std::pair{kB, true}));
  EXPECT_EQ(metrics.counter_value("transport.peer_unreachable"), 1u);
  EXPECT_TRUE(b_->delivered.empty());

  // Heal: the probe gets through, the backlog drains, the edge flips back.
  net_->set_partitioned(kB, false);
  a_->transport.send(kB, indexed(8));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 2u);
  EXPECT_EQ(index_of(b_->delivered[0].second), 7u);
  EXPECT_EQ(index_of(b_->delivered[1].second), 8u);
  EXPECT_FALSE(a_->transport.unreachable(kB));
  ASSERT_EQ(a_->signals.size(), 2u);
  EXPECT_EQ(a_->signals[1], (std::pair{kB, false}));
}

TEST_F(ReliableTransportTest, ReceiverRestartRestartsTheStream) {
  make();
  for (std::uint32_t i = 0; i < 5; ++i) a_->transport.send(kB, indexed(i));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 5u);

  // B restarts with a higher incarnation and speaks first. A's old stream
  // state is useless to the new B; on seeing epoch 2 traffic, A re-keys its
  // own sequence space (stream 2) so later sends are accepted from seq 1.
  b_->transport.reset(2);
  b_->transport.send(kA, indexed(100));
  sim.run();
  ASSERT_EQ(a_->delivered.size(), 1u);
  EXPECT_EQ(index_of(a_->delivered[0].second), 100u);

  a_->transport.send(kB, indexed(6));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 6u);
  EXPECT_EQ(index_of(b_->delivered[5].second), 6u);
  EXPECT_EQ(metrics.counter_value("transport.stream_restarts"), 1u);
  EXPECT_EQ(a_->transport.send_audit(kB).stream, 2u);
}

TEST_F(ReliableTransportTest, StaleEpochTrafficIsDropped) {
  make();
  a_->transport.send(kB, indexed(0));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 1u);

  // A frame hand-built from a *lower* epoch must be discarded, not applied.
  BufWriter w;
  w.u8(ReliableTransport::kDataByte);
  w.u32(0);      // epoch below the live channel's
  w.varint(1);   // stream
  w.varint(2);   // seq
  w.raw(indexed(13));
  net_->inject(kA, kB, std::move(w).take(), milliseconds(1));
  sim.run();
  EXPECT_EQ(b_->delivered.size(), 1u);
  EXPECT_EQ(metrics.counter_value("transport.stale_epoch"), 1u);
}

TEST_F(ReliableTransportTest, DisabledTransportIsExactPassthrough) {
  tp_config.enabled = false;
  net_ = std::make_unique<Network>(sim, net_config, metrics);
  a_ = std::make_unique<Peer>(sim, *net_, kA, tp_config, metrics);
  b_ = std::make_unique<Peer>(sim, *net_, kB, tp_config, metrics);
  const Bytes payload = indexed(42);
  a_->transport.send(kB, BufferPool::global().copy_of(payload));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 1u);
  EXPECT_EQ(b_->delivered[0].second, payload);  // byte-identical, no header
  EXPECT_EQ(metrics.counter_value("transport.acks"), 0u);
}

TEST_F(ReliableTransportTest, RawPeersBypassWrapping) {
  make();
  a_->transport.set_raw_peer(kB);
  a_->transport.send(kB, indexed(3));
  sim.run();
  ASSERT_EQ(b_->delivered.size(), 1u);
  EXPECT_EQ(index_of(b_->delivered[0].second), 3u);
  EXPECT_EQ(metrics.counter_value("transport.acks"), 0u);  // nothing to ack
}

TEST_F(ReliableTransportTest, MalformedTransportFrameIsCounted) {
  make();
  BufWriter w;
  w.u8(ReliableTransport::kDataByte);  // header truncated after the marker
  net_->inject(kA, kB, std::move(w).take(), milliseconds(1));
  sim.run();
  EXPECT_TRUE(b_->delivered.empty());
  EXPECT_EQ(metrics.counter_value("transport.malformed"), 1u);
}

TEST_F(ReliableTransportTest, LossyRunReplaysByteIdentically) {
  net_config.faults.loss = 0.25;
  net_config.faults.dup = 0.2;
  auto run_once = [&] {
    sim::Simulator s(17);
    metrics::Registry reg;
    Network net(s, net_config, reg);
    TransportConfig cfg = tp_config;
    cfg.enabled = true;
    Peer x(s, net, kA, cfg, reg);
    Peer y(s, net, kB, cfg, reg);
    for (std::uint32_t i = 0; i < 60; ++i) x.transport.send(kB, indexed(i));
    s.run();
    std::vector<std::uint32_t> got;
    for (const auto& [src, payload] : y.delivered) got.push_back(index_of(payload));
    return std::pair{got, reg.counter_value("net.retransmit")};
  };
  const auto first = run_once();
  ASSERT_EQ(first.first.size(), 60u);
  EXPECT_GT(first.second, 0u);
  EXPECT_EQ(first, run_once());  // retransmit schedule included
}

}  // namespace
}  // namespace rr::net
