// Workload applications: determinism, snapshot fidelity, and the traffic
// contracts the recovery tests rely on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "app/workloads.hpp"

namespace rr::app {
namespace {

/// Minimal in-memory harness implementing AppContext: captures sends and
/// can deliver them manually.
class FakeContext : public AppContext {
 public:
  FakeContext(ProcessId self, std::vector<ProcessId> processes)
      : self_(self), processes_(std::move(processes)) {}

  void send(ProcessId to, Bytes payload) override { outbox.emplace_back(to, std::move(payload)); }
  std::uint64_t commit_output(Bytes payload) override {
    outputs.push_back(std::move(payload));
    return outputs.size();
  }
  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] const std::vector<ProcessId>& processes() const override { return processes_; }

  std::vector<std::pair<ProcessId, Bytes>> outbox;
  std::vector<Bytes> outputs;

 private:
  ProcessId self_;
  std::vector<ProcessId> processes_;
};

const std::vector<ProcessId> kFour{ProcessId{0}, ProcessId{1}, ProcessId{2}, ProcessId{3}};

TEST(RingTokenApp, OnlyLowestPidLaunchesTokens) {
  RingConfig cfg;
  cfg.tokens = 3;
  RingTokenApp leader(cfg), follower(cfg);
  FakeContext c0(ProcessId{0}, kFour), c1(ProcessId{1}, kFour);
  leader.on_start(c0);
  follower.on_start(c1);
  EXPECT_EQ(c0.outbox.size(), 3u);
  EXPECT_TRUE(c1.outbox.empty());
  // Tokens go to the successor.
  for (const auto& [to, payload] : c0.outbox) EXPECT_EQ(to, ProcessId{1});
}

TEST(RingTokenApp, ForwardsWithIncrementedHopCount) {
  RingTokenApp a{RingConfig{1, 8}};
  FakeContext start(ProcessId{0}, kFour);
  a.on_start(start);
  ASSERT_EQ(start.outbox.size(), 1u);

  RingTokenApp b{RingConfig{1, 8}};
  FakeContext c1(ProcessId{1}, kFour);
  b.on_message(c1, ProcessId{0}, start.outbox[0].second);
  ASSERT_EQ(c1.outbox.size(), 1u);
  EXPECT_EQ(c1.outbox[0].first, ProcessId{2});
  BufReader r(c1.outbox[0].second);
  EXPECT_EQ(r.u32(), 0u);  // token id
  EXPECT_EQ(r.u64(), 1u);  // hops incremented
  EXPECT_EQ(b.tokens_seen(), 1u);
}

TEST(RingTokenApp, SnapshotRoundTrip) {
  RingTokenApp a{RingConfig{}};
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.u32(0);
  w.u64(5);
  w.bytes(Bytes(4));
  a.on_message(ctx, ProcessId{0}, std::move(w).take());

  RingTokenApp b{RingConfig{}};
  b.restore(a.snapshot());
  EXPECT_EQ(b.tokens_seen(), a.tokens_seen());
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(b.state_hash(), a.state_hash());
}

TEST(GossipApp, LaunchesConfiguredTokens) {
  GossipApp a{GossipConfig{3, 16, 9}};
  FakeContext ctx(ProcessId{2}, kFour);
  a.on_start(ctx);
  EXPECT_EQ(ctx.outbox.size(), 3u);
  for (const auto& [to, payload] : ctx.outbox) EXPECT_NE(to, ProcessId{2});  // never self
}

TEST(GossipApp, EveryDeliveryForwardsExactlyOnce) {
  GossipApp a{GossipConfig{1, 16, 9}};
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.u64(7);
  w.u64(0xabc);
  w.bytes(Bytes(16));
  a.on_message(ctx, ProcessId{3}, std::move(w).take());
  EXPECT_EQ(ctx.outbox.size(), 1u);
  EXPECT_EQ(a.received(), 1u);
}

TEST(GossipApp, DeterministicGivenSnapshot) {
  // Same state + same delivery => same forwarding decision: the replay
  // contract. Run one delivery, then restore a copy and re-run.
  GossipApp original{GossipConfig{1, 8, 42}};
  GossipApp replayed{GossipConfig{1, 8, 42}};
  replayed.restore(original.snapshot());

  BufWriter w;
  w.u64(1);
  w.u64(99);
  w.bytes(Bytes(8));
  const Bytes payload = std::move(w).take();

  FakeContext c1(ProcessId{0}, kFour), c2(ProcessId{0}, kFour);
  original.on_message(c1, ProcessId{2}, payload);
  replayed.on_message(c2, ProcessId{2}, payload);
  ASSERT_EQ(c1.outbox.size(), c2.outbox.size());
  EXPECT_EQ(c1.outbox[0].first, c2.outbox[0].first);
  EXPECT_EQ(c1.outbox[0].second, c2.outbox[0].second);
  EXPECT_EQ(original.state_hash(), replayed.state_hash());
}

TEST(BankApp, StartMovesMoneyIntoFlight) {
  BankApp a{BankConfig{1000, 2, 8, 5}};
  FakeContext ctx(ProcessId{0}, kFour);
  a.on_start(ctx);
  EXPECT_EQ(ctx.outbox.size(), 2u);
  std::int64_t in_flight = 0;
  for (const auto& [to, payload] : ctx.outbox) {
    BufReader r(payload);
    in_flight += r.i64();
  }
  EXPECT_EQ(a.balance() + in_flight, 1000);
}

TEST(BankApp, TtlZeroAbsorbsWithoutForwarding) {
  BankApp a{BankConfig{}};
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.i64(50);
  w.u32(0);  // dead token
  a.on_message(ctx, ProcessId{0}, std::move(w).take());
  EXPECT_TRUE(ctx.outbox.empty());
  EXPECT_EQ(a.balance(), BankConfig{}.initial_balance + 50);
}

TEST(BankApp, ForwardingConservesLocally) {
  BankApp a{BankConfig{}};
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.i64(100);
  w.u32(3);
  a.on_message(ctx, ProcessId{0}, std::move(w).take());
  ASSERT_EQ(ctx.outbox.size(), 1u);
  BufReader r(ctx.outbox[0].second);
  const std::int64_t forwarded = r.i64();
  EXPECT_EQ(r.u32(), 2u);  // ttl decremented
  EXPECT_EQ(a.balance() + forwarded, BankConfig{}.initial_balance + 100);
}

TEST(BankApp, SnapshotRoundTrip) {
  BankApp a{BankConfig{}};
  FakeContext ctx(ProcessId{0}, kFour);
  a.on_start(ctx);
  BankApp b{BankConfig{}};
  b.restore(a.snapshot());
  EXPECT_EQ(b.balance(), a.balance());
  EXPECT_EQ(b.state_hash(), a.state_hash());
}

TEST(ChainApp, InjectorLaunchesAllRounds) {
  ChainApp injector{ChainConfig{5}};
  FakeContext ctx(ProcessId{3}, kFour);
  injector.on_start(ctx);
  EXPECT_EQ(ctx.outbox.size(), 5u);
  for (const auto& [to, payload] : ctx.outbox) EXPECT_EQ(to, ProcessId{0});
}

TEST(ChainApp, ForwardsDownChainAndLogs) {
  ChainApp p0{ChainConfig{}};
  FakeContext c0(ProcessId{0}, kFour);
  BufWriter w;
  w.u32(2);  // round
  w.u32(0);  // position
  p0.on_message(c0, ProcessId{3}, std::move(w).take());
  ASSERT_EQ(c0.outbox.size(), 1u);
  EXPECT_EQ(c0.outbox[0].first, ProcessId{1});
  ASSERT_EQ(p0.log().size(), 1u);
  EXPECT_EQ(p0.log()[0], (std::uint64_t{2} << 32) | 0);

  // The penultimate process (r) terminates the chain.
  ChainApp p2{ChainConfig{}};
  FakeContext c2(ProcessId{2}, kFour);
  BufWriter w2;
  w2.u32(2);
  w2.u32(2);
  p2.on_message(c2, ProcessId{1}, std::move(w2).take());
  EXPECT_TRUE(c2.outbox.empty());
}

TEST(ChainApp, SnapshotRoundTrip) {
  ChainApp a{ChainConfig{}};
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.u32(1);
  w.u32(1);
  a.on_message(ctx, ProcessId{0}, std::move(w).take());
  ChainApp b{ChainConfig{}};
  b.restore(a.snapshot());
  EXPECT_EQ(b.log(), a.log());
  EXPECT_EQ(b.state_hash(), a.state_hash());
}

TEST(PaddedApp, InflatesSnapshotAndDelegates) {
  auto padded = std::make_unique<PaddedApp>(std::make_unique<ChainApp>(ChainConfig{}), 4096);
  EXPECT_GE(padded->snapshot().size(), 4096u);

  FakeContext ctx(ProcessId{0}, kFour);
  BufWriter w;
  w.u32(1);
  w.u32(0);
  padded->on_message(ctx, ProcessId{3}, std::move(w).take());
  EXPECT_EQ(ctx.outbox.size(), 1u);  // delegated to the inner chain app
}

TEST(PaddedApp, RestoreRoundTripsInnerAndPad) {
  PaddedApp a(std::make_unique<ChainApp>(ChainConfig{}), 1024);
  FakeContext ctx(ProcessId{1}, kFour);
  BufWriter w;
  w.u32(1);
  w.u32(1);
  a.on_message(ctx, ProcessId{0}, std::move(w).take());

  PaddedApp b(std::make_unique<ChainApp>(ChainConfig{}), 1024);
  b.restore(a.snapshot());
  EXPECT_EQ(b.state_hash(), a.state_hash());
  EXPECT_EQ(b.snapshot(), a.snapshot());
}

TEST(PaddedApp, UnwrapReachesInnerType) {
  PaddedApp padded(std::make_unique<BankApp>(BankConfig{}), 64);
  EXPECT_EQ(unwrap<BankApp>(padded).balance(), BankConfig{}.initial_balance);
  BankApp bare{BankConfig{}};
  EXPECT_EQ(unwrap<BankApp>(bare).balance(), BankConfig{}.initial_balance);
}

}  // namespace
}  // namespace rr::app
