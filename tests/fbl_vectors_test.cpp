// IncVector and Watermarks: the two little maps that carry the protocol's
// rejection and dedup decisions.
#include <gtest/gtest.h>

#include "fbl/inc_vector.hpp"
#include "fbl/watermarks.hpp"

namespace rr::fbl {
namespace {

TEST(IncVectorTest, DefaultFloorIsOne) {
  IncVector v;
  EXPECT_EQ(incarnation_of(v, ProcessId{3}), 1u);
  EXPECT_FALSE(is_stale(v, ProcessId{3}, 1));
  EXPECT_TRUE(is_stale(v, ProcessId{3}, 0));
}

TEST(IncVectorTest, RaiseIsMonotone) {
  IncVector v;
  raise_incarnation(v, ProcessId{1}, 4);
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 4u);
  raise_incarnation(v, ProcessId{1}, 2);  // lower: ignored
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 4u);
  raise_incarnation(v, ProcessId{1}, 9);
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 9u);
}

TEST(IncVectorTest, StaleRule) {
  IncVector v;
  raise_incarnation(v, ProcessId{2}, 3);
  EXPECT_TRUE(is_stale(v, ProcessId{2}, 2));
  EXPECT_FALSE(is_stale(v, ProcessId{2}, 3));
  EXPECT_FALSE(is_stale(v, ProcessId{2}, 4));
  // Other processes unaffected.
  EXPECT_FALSE(is_stale(v, ProcessId{1}, 1));
}

TEST(IncVectorTest, MergeMaxIsEntrywise) {
  IncVector a, b;
  raise_incarnation(a, ProcessId{0}, 5);
  raise_incarnation(a, ProcessId{1}, 2);
  raise_incarnation(b, ProcessId{1}, 7);
  raise_incarnation(b, ProcessId{2}, 3);
  merge_max(a, b);
  EXPECT_EQ(incarnation_of(a, ProcessId{0}), 5u);
  EXPECT_EQ(incarnation_of(a, ProcessId{1}), 7u);
  EXPECT_EQ(incarnation_of(a, ProcessId{2}), 3u);
}

TEST(IncVectorTest, SerdeRoundTrip) {
  IncVector v;
  raise_incarnation(v, ProcessId{0}, 2);
  raise_incarnation(v, ProcessId{7}, 9);
  BufWriter w;
  encode_inc_vector(w, v);
  BufReader r(w.view());
  EXPECT_EQ(decode_inc_vector(r), v);
  r.expect_done();
}

TEST(IncDeltaTest, FullSnapshotRoundTrip) {
  IncDelta d;
  d.base_version = 0;
  d.version = 4;
  d.full = true;
  raise_incarnation(d.entries, ProcessId{0}, 2);
  raise_incarnation(d.entries, ProcessId{3}, 7);
  BufWriter w;
  encode_inc_delta(w, d);
  BufReader r(w.view());
  EXPECT_EQ(decode_inc_delta(r), d);
  r.expect_done();
}

TEST(IncDeltaTest, SparseDeltaRoundTrip) {
  IncDelta d;
  d.base_version = 9;
  d.version = 12;
  d.full = false;
  raise_incarnation(d.entries, ProcessId{1023}, 5);
  BufWriter w;
  encode_inc_delta(w, d);
  BufReader r(w.view());
  const IncDelta back = decode_inc_delta(r);
  EXPECT_EQ(back, d);
  EXPECT_FALSE(back.full);
  EXPECT_EQ(incarnation_of(back.entries, ProcessId{1023}), 5u);
  r.expect_done();
}

TEST(IncDeltaTest, EmptyDeltaRoundTrip) {
  // The blocking baseline sends an empty full delta; it must survive the
  // wire as exactly that.
  IncDelta d;
  BufWriter w;
  encode_inc_delta(w, d);
  BufReader r(w.view());
  const IncDelta back = decode_inc_delta(r);
  EXPECT_TRUE(back.full);
  EXPECT_TRUE(back.entries.empty());
  r.expect_done();
}

TEST(IncDeltaTest, ApplyingEntriesIsMergeMaxSafeRegardlessOfBaseline) {
  // The delta-apply rule is plain merge_max, so applying a delta whose
  // baseline the receiver never held can raise floors but never lower one —
  // the receiver flags the gap (resync) rather than rejecting the floors.
  IncVector held;
  raise_incarnation(held, ProcessId{1}, 6);
  raise_incarnation(held, ProcessId{2}, 3);
  IncDelta d;
  d.base_version = 40;  // receiver holds nothing near this
  d.version = 41;
  d.full = false;
  raise_incarnation(d.entries, ProcessId{1}, 4);  // older than held: no-op
  raise_incarnation(d.entries, ProcessId{5}, 8);  // fresh floor: adopted
  merge_max(held, d.entries);
  EXPECT_EQ(incarnation_of(held, ProcessId{1}), 6u);
  EXPECT_EQ(incarnation_of(held, ProcessId{2}), 3u);
  EXPECT_EQ(incarnation_of(held, ProcessId{5}), 8u);
}

TEST(WatermarksTest, DefaultIsZero) {
  Watermarks m;
  EXPECT_EQ(watermark_of(m, ProcessId{5}), 0u);
}

TEST(WatermarksTest, RaiseIsMonotone) {
  Watermarks m;
  raise_watermark(m, ProcessId{1}, 10);
  raise_watermark(m, ProcessId{1}, 4);
  EXPECT_EQ(watermark_of(m, ProcessId{1}), 10u);
  raise_watermark(m, ProcessId{1}, 11);
  EXPECT_EQ(watermark_of(m, ProcessId{1}), 11u);
}

TEST(WatermarksTest, SerdeRoundTrip) {
  Watermarks m;
  m[ProcessId{0}] = 42;
  m[ProcessId{9}] = 1;
  BufWriter w;
  encode_watermarks(w, m);
  BufReader r(w.view());
  EXPECT_EQ(decode_watermarks(r), m);
}

TEST(WatermarksTest, EmptySerde) {
  BufWriter w;
  encode_watermarks(w, Watermarks{});
  BufReader r(w.view());
  EXPECT_TRUE(decode_watermarks(r).empty());
  r.expect_done();
}

}  // namespace
}  // namespace rr::fbl
