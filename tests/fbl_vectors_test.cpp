// IncVector and Watermarks: the two little maps that carry the protocol's
// rejection and dedup decisions.
#include <gtest/gtest.h>

#include "fbl/inc_vector.hpp"
#include "fbl/watermarks.hpp"

namespace rr::fbl {
namespace {

TEST(IncVectorTest, DefaultFloorIsOne) {
  IncVector v;
  EXPECT_EQ(incarnation_of(v, ProcessId{3}), 1u);
  EXPECT_FALSE(is_stale(v, ProcessId{3}, 1));
  EXPECT_TRUE(is_stale(v, ProcessId{3}, 0));
}

TEST(IncVectorTest, RaiseIsMonotone) {
  IncVector v;
  raise_incarnation(v, ProcessId{1}, 4);
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 4u);
  raise_incarnation(v, ProcessId{1}, 2);  // lower: ignored
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 4u);
  raise_incarnation(v, ProcessId{1}, 9);
  EXPECT_EQ(incarnation_of(v, ProcessId{1}), 9u);
}

TEST(IncVectorTest, StaleRule) {
  IncVector v;
  raise_incarnation(v, ProcessId{2}, 3);
  EXPECT_TRUE(is_stale(v, ProcessId{2}, 2));
  EXPECT_FALSE(is_stale(v, ProcessId{2}, 3));
  EXPECT_FALSE(is_stale(v, ProcessId{2}, 4));
  // Other processes unaffected.
  EXPECT_FALSE(is_stale(v, ProcessId{1}, 1));
}

TEST(IncVectorTest, MergeMaxIsEntrywise) {
  IncVector a, b;
  raise_incarnation(a, ProcessId{0}, 5);
  raise_incarnation(a, ProcessId{1}, 2);
  raise_incarnation(b, ProcessId{1}, 7);
  raise_incarnation(b, ProcessId{2}, 3);
  merge_max(a, b);
  EXPECT_EQ(incarnation_of(a, ProcessId{0}), 5u);
  EXPECT_EQ(incarnation_of(a, ProcessId{1}), 7u);
  EXPECT_EQ(incarnation_of(a, ProcessId{2}), 3u);
}

TEST(IncVectorTest, SerdeRoundTrip) {
  IncVector v;
  raise_incarnation(v, ProcessId{0}, 2);
  raise_incarnation(v, ProcessId{7}, 9);
  BufWriter w;
  encode(w, v);
  BufReader r(w.view());
  EXPECT_EQ(decode_inc_vector(r), v);
  r.expect_done();
}

TEST(WatermarksTest, DefaultIsZero) {
  Watermarks m;
  EXPECT_EQ(watermark_of(m, ProcessId{5}), 0u);
}

TEST(WatermarksTest, RaiseIsMonotone) {
  Watermarks m;
  raise_watermark(m, ProcessId{1}, 10);
  raise_watermark(m, ProcessId{1}, 4);
  EXPECT_EQ(watermark_of(m, ProcessId{1}), 10u);
  raise_watermark(m, ProcessId{1}, 11);
  EXPECT_EQ(watermark_of(m, ProcessId{1}), 11u);
}

TEST(WatermarksTest, SerdeRoundTrip) {
  Watermarks m;
  m[ProcessId{0}] = 42;
  m[ProcessId{9}] = 1;
  BufWriter w;
  encode(w, m);
  BufReader r(w.view());
  EXPECT_EQ(decode_watermarks(r), m);
}

TEST(WatermarksTest, EmptySerde) {
  BufWriter w;
  encode(w, Watermarks{});
  BufReader r(w.view());
  EXPECT_TRUE(decode_watermarks(r).empty());
  r.expect_done();
}

}  // namespace
}  // namespace rr::fbl
