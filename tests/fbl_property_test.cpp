// Engine-level property sweeps: k engines exchanging random traffic by
// direct frame relay (no simulator, synchronous delivery). With no frames
// ever in flight, the optimistic holder marking must be *exact*: every
// holder bit any engine believes corresponds to a real copy in that
// engine's log. On top of that, propagation must stop at f+1 and the
// union-of-survivors property behind the paper's safety theorem becomes
// directly checkable for every f-subset of crashes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fbl/engine.hpp"
#include "fbl/frame.hpp"

namespace rr::fbl {
namespace {

struct GridParam {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
};

std::string param_name(const ::testing::TestParamInfo<GridParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" + std::to_string(info.param.n) +
         "_f" + std::to_string(info.param.f);
}

class EngineMesh {
 public:
  EngineMesh(std::uint32_t n, std::uint32_t f) {
    for (std::uint32_t i = 0; i < n; ++i) {
      engines_.push_back(std::make_unique<LoggingEngine>(EngineConfig{ProcessId{i}, n, f}));
    }
  }

  /// Send one message a -> b with synchronous delivery.
  void relay(std::uint32_t a, std::uint32_t b, Bytes payload = Bytes(8)) {
    auto out = engines_[a]->make_frame(ProcessId{b}, std::move(payload), 1);
    BufReader r(out.frame);
    EXPECT_EQ(decode_kind(r), FrameKind::kApp);
    const auto res = engines_[b]->accept(ProcessId{a}, AppFrame::decode(r), incs_);
    EXPECT_EQ(res.verdict, LoggingEngine::Verdict::kDeliver);
  }

  [[nodiscard]] LoggingEngine& at(std::uint32_t i) { return *engines_[i]; }
  [[nodiscard]] std::size_t size() const { return engines_.size(); }

  /// Does engine i actually hold determinant d?
  [[nodiscard]] bool actually_holds(std::uint32_t i, const Determinant& d) const {
    const auto* h = engines_[i]->det_log().find(d.dest, d.rsn);
    return h != nullptr && h->det == d;
  }

 private:
  std::vector<std::unique_ptr<LoggingEngine>> engines_;
  IncVector incs_;
};

class EngineGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(EngineGrid, HolderMasksAreExactUnderSynchronousDelivery) {
  const auto p = GetParam();
  EngineMesh mesh(p.n, p.f);
  Rng rng(p.seed);
  for (int msg = 0; msg < 600; ++msg) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(p.n));
    auto b = static_cast<std::uint32_t>(rng.bounded(p.n - 1));
    if (b >= a) ++b;
    mesh.relay(a, b);
  }

  // Every believed holder bit is a real copy.
  for (std::uint32_t i = 0; i < p.n; ++i) {
    for (const auto& h : mesh.at(i).det_log().slice_for(~HolderMask{0})) {
      for (std::uint32_t j = 0; j < p.n; ++j) {
        if (!holds(h.holders, ProcessId{j})) continue;
        EXPECT_TRUE(mesh.actually_holds(j, h.det))
            << to_string(h.det) << " believed at p" << j << " by p" << i;
      }
    }
  }
}

TEST_P(EngineGrid, PropagationStopsAtFPlusOne) {
  const auto p = GetParam();
  EngineMesh mesh(p.n, p.f);
  Rng rng(p.seed * 13 + 1);
  for (int msg = 0; msg < 600; ++msg) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(p.n));
    auto b = static_cast<std::uint32_t>(rng.bounded(p.n - 1));
    if (b >= a) ++b;
    mesh.relay(a, b);
  }
  // No engine's piggyback candidates include a determinant already known
  // at f+1 holders, for any destination.
  for (std::uint32_t i = 0; i < p.n; ++i) {
    for (std::uint32_t to = 0; to < p.n; ++to) {
      if (to == i) continue;
      for (const auto& h : mesh.at(i).det_log().piggyback_for(ProcessId{to})) {
        EXPECT_LT(holder_count(h.holders), static_cast<int>(p.f) + 1) << to_string(h.det);
        EXPECT_FALSE(holds(h.holders, ProcessId{to}));
      }
    }
  }
}

TEST_P(EngineGrid, StableDeterminantsSurviveEveryFSubset) {
  const auto p = GetParam();
  if (p.f >= p.n) GTEST_SKIP() << "f = n stability comes from stable storage, not peers";
  EngineMesh mesh(p.n, p.f);
  Rng rng(p.seed * 29 + 5);
  for (int msg = 0; msg < 600; ++msg) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(p.n));
    auto b = static_cast<std::uint32_t>(rng.bounded(p.n - 1));
    if (b >= a) ++b;
    mesh.relay(a, b);
  }

  // For every determinant some engine believes saturated (>= f+1 holders),
  // every f-subset of crashes leaves at least one real copy. With exact
  // holder masks this reduces to |actual holders| >= f+1, which we verify
  // by brute force over subsets for small n anyway.
  for (std::uint32_t i = 0; i < p.n; ++i) {
    for (const auto& h : mesh.at(i).det_log().slice_for(~HolderMask{0})) {
      if (holder_count(h.holders) < static_cast<int>(p.f) + 1) continue;
      int actual = 0;
      for (std::uint32_t j = 0; j < p.n; ++j) actual += mesh.actually_holds(j, h.det);
      EXPECT_GE(actual, static_cast<int>(p.f) + 1) << to_string(h.det);
    }
  }
}

TEST_P(EngineGrid, CheckpointRestoreIsLossless) {
  const auto p = GetParam();
  EngineMesh mesh(p.n, p.f);
  Rng rng(p.seed * 53 + 11);
  for (int msg = 0; msg < 300; ++msg) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(p.n));
    auto b = static_cast<std::uint32_t>(rng.bounded(p.n - 1));
    if (b >= a) ++b;
    mesh.relay(a, b);
  }
  for (std::uint32_t i = 0; i < p.n; ++i) {
    const Checkpoint cp = mesh.at(i).make_checkpoint(Bytes(16));
    const Bytes blob = cp.encode();
    LoggingEngine restored(EngineConfig{ProcessId{i}, p.n, p.f});
    restored.load(Checkpoint::decode(blob));
    EXPECT_EQ(restored.rsn(), mesh.at(i).rsn());
    EXPECT_EQ(restored.recv_marks(), mesh.at(i).recv_marks());
    EXPECT_EQ(restored.send_seq(), mesh.at(i).send_seq());
    EXPECT_EQ(restored.det_log().size(), mesh.at(i).det_log().size());
    EXPECT_EQ(restored.det_log().active_size(), mesh.at(i).det_log().active_size());
    EXPECT_EQ(restored.send_log().size(), mesh.at(i).send_log().size());
  }
}

TEST_P(EngineGrid, IncvectorStaleRejectionIsExactPerProcess) {
  const auto p = GetParam();
  EngineMesh mesh(p.n, p.f);
  Rng rng(p.seed * 71 + 3);
  for (int msg = 0; msg < 300; ++msg) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(p.n));
    auto b = static_cast<std::uint32_t>(rng.bounded(p.n - 1));
    if (b >= a) ++b;
    mesh.relay(a, b);
  }

  // One in-flight frame per process, stamped with the current (first)
  // incarnation but not yet delivered — the stale straggler population.
  struct InFlight {
    std::uint32_t from, to;
    Bytes bytes;
  };
  std::vector<InFlight> in_flight;
  for (std::uint32_t a = 0; a < p.n; ++a) {
    const std::uint32_t b = (a + 1) % p.n;
    in_flight.push_back({a, b, mesh.at(a).make_frame(ProcessId{b}, Bytes(8), 1).frame});
  }

  // A subset of processes "recovers": their incvector floor rises to 2.
  // (At least one process stays at the old incarnation.)
  IncVector incs;
  std::vector<bool> recovered(p.n, false);
  const std::uint32_t victims = std::min(p.f, p.n - 1);
  for (std::uint32_t i = 0; i < victims; ++i) {
    const auto v = static_cast<std::uint32_t>((p.seed + i) % p.n);
    recovered[v] = true;
    raise_incarnation(incs, ProcessId{v}, 2);
  }

  // Rejection is exact per process: every pre-raise frame from a recovered
  // sender is kStale at its destination; frames from senders whose floor
  // did not move still deliver.
  for (const InFlight& msg : in_flight) {
    BufReader r(msg.bytes);
    ASSERT_EQ(decode_kind(r), FrameKind::kApp);
    const auto res = mesh.at(msg.to).accept(ProcessId{msg.from}, AppFrame::decode(r), incs);
    if (recovered[msg.from]) {
      EXPECT_EQ(res.verdict, LoggingEngine::Verdict::kStale)
          << "pre-raise frame p" << msg.from << " -> p" << msg.to << " leaked through";
    } else {
      EXPECT_EQ(res.verdict, LoggingEngine::Verdict::kDeliver)
          << "live sender p" << msg.from << " rejected by an unrelated floor raise";
    }
  }

  // Post-recovery frames stamped with the new incarnation pass the raised
  // floor (on a channel whose in-flight straggler was not consumed above,
  // so the ssn chain is intact; needs a third process to exist).
  if (p.n >= 3) {
    for (std::uint32_t v = 0; v < p.n; ++v) {
      if (!recovered[v]) continue;
      const std::uint32_t b = (v + 2) % p.n;
      Bytes fresh = mesh.at(v).make_frame(ProcessId{b}, Bytes(8), 2).frame;
      BufReader r(fresh);
      ASSERT_EQ(decode_kind(r), FrameKind::kApp);
      const auto res = mesh.at(b).accept(ProcessId{v}, AppFrame::decode(r), incs);
      EXPECT_EQ(res.verdict, LoggingEngine::Verdict::kDeliver)
          << "post-recovery frame from p" << v << " at incarnation 2 rejected";
    }
  }
}

std::vector<GridParam> grid() {
  std::vector<GridParam> out;
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const auto& [n, f] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
             {2, 1}, {3, 1}, {4, 2}, {5, 3}, {6, 2}, {8, 4}, {4, 4}}) {
      out.push_back({seed, n, f});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineGrid, ::testing::ValuesIn(grid()), param_name);

}  // namespace
}  // namespace rr::fbl
