// Decoder robustness: every wire decoder must reject arbitrary and mutated
// bytes with SerdeError — never crash, never read out of bounds. Seeded
// pseudo-fuzz, deterministic per seed (TEST_P sweep).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fbl/checkpoint.hpp"
#include "fbl/frame.hpp"
#include "recovery/messages.hpp"

namespace rr {
namespace {

/// Try every decoder on `bytes`; throwing SerdeError is the expected
/// rejection path, returning normally means the input happened to parse —
/// both fine, anything else is a bug caught by the test harness (crash,
/// sanitizer, uncaught foreign exception).
void poke_all_decoders(const Bytes& bytes) {
  try {
    BufReader r(bytes);
    switch (fbl::decode_kind(r)) {
      case fbl::FrameKind::kApp:
        (void)fbl::AppFrame::decode(r);
        break;
      case fbl::FrameKind::kHeartbeat:
        (void)fbl::HeartbeatFrame::decode(r);
        break;
      case fbl::FrameKind::kCkptNotice:
        (void)fbl::CkptNoticeFrame::decode(r);
        break;
      case fbl::FrameKind::kControl:
        (void)recovery::decode_control(r);
        break;
      case fbl::FrameKind::kSnapshot:
        break;  // snapshot decode lives inside its manager
    }
  } catch (const SerdeError&) {
  }
  try {
    (void)fbl::Checkpoint::decode(bytes);
  } catch (const SerdeError&) {
  }
}

/// A genuinely valid encoding of every one of the 14 control-message
/// kinds, so mutation and truncation sweeps exercise each codec.
std::vector<Bytes> control_seeds() {
  using namespace recovery;
  std::vector<Bytes> out;
  const std::vector<RMember> rset = {{ProcessId{1}, 7, 2}, {ProcessId{3}, 9, 1}};
  const std::vector<fbl::HeldDeterminant> dets = {
      {fbl::Determinant{ProcessId{0}, 1, ProcessId{1}, 1}, 0x3},
      {fbl::Determinant{ProcessId{2}, 5, ProcessId{3}, 8}, 0x7}};

  out.push_back(encode_control(OrdRequest{2}));
  OrdReply ord_reply;
  ord_reply.ord = 7;
  ord_reply.rset = rset;
  out.push_back(encode_control(ord_reply));
  out.push_back(encode_control(RSetRequest{}));
  RSetReply rset_reply;
  rset_reply.rset = rset;
  out.push_back(encode_control(rset_reply));
  out.push_back(encode_control(IncRequest{4}));
  out.push_back(encode_control(IncReply{4, 3}));
  DepRequest dep_request;
  dep_request.round = 5;
  dep_request.block = true;
  dep_request.leader = ProcessId{1};
  dep_request.leader_inc = 2;
  dep_request.arity = 4;
  dep_request.delta.base_version = 3;
  dep_request.delta.version = 9;
  dep_request.delta.full = false;
  dep_request.delta.entries[ProcessId{1}] = 2;
  dep_request.recovering = {ProcessId{1}, ProcessId{2}};
  out.push_back(encode_control(dep_request));
  DepReply dep_reply;
  dep_reply.round = 5;
  dep_reply.dets = dets;
  DepContribution contrib;
  contrib.pid = ProcessId{1};
  contrib.inc = 3;
  contrib.incv_version = 9;
  contrib.incv_resync = true;
  contrib.marks[ProcessId{1}] = 11;
  dep_reply.contribs = {contrib};
  out.push_back(encode_control(dep_reply));
  DepInstall install;
  install.round = 5;
  install.incvector[ProcessId{1}] = 2;
  install.dets = dets;
  install.live_marks[ProcessId{2}][ProcessId{1}] = 6;
  out.push_back(encode_control(install));
  RecoveryComplete complete;
  complete.inc = 2;
  complete.recv_marks[ProcessId{0}] = 3;
  complete.rsn = 17;
  out.push_back(encode_control(complete));
  ReplayRequest replay_request;
  replay_request.ssns = {3, 4, 9};
  out.push_back(encode_control(replay_request));
  ReplayData replay_data;
  replay_data.items.push_back({1, to_bytes("x")});
  replay_data.items.push_back({2, to_bytes("yz")});
  out.push_back(encode_control(replay_data));
  DetPush push;
  push.seq = 8;
  push.dets = dets;
  out.push_back(encode_control(push));
  out.push_back(encode_control(DetAck{8}));
  return out;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int round = 0; round < 400; ++round) {
    Bytes bytes(rng.bounded(200));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.bounded(256));
    poke_all_decoders(bytes);
  }
}

TEST_P(DecoderFuzz, MutatedValidFramesNeverCrashDecoders) {
  Rng rng(GetParam() * 31 + 7);

  // Start from genuinely valid frames of each kind.
  std::vector<Bytes> seeds;
  fbl::AppFrame app;
  app.inc = 1;
  app.ssn = 5;
  app.dets.push_back({fbl::Determinant{ProcessId{1}, 2, ProcessId{3}, 4}, 0x7});
  app.payload = to_bytes("payload");
  seeds.push_back(app.encode());
  seeds.push_back(fbl::HeartbeatFrame{2}.encode());
  fbl::CkptNoticeFrame notice;
  notice.rsn = 9;
  notice.recv_marks[ProcessId{0}] = 4;
  seeds.push_back(notice.encode());
  // ...plus every recovery control-message kind.
  for (Bytes& ctrl : control_seeds()) seeds.push_back(std::move(ctrl));

  for (int round = 0; round < 400; ++round) {
    Bytes bytes = seeds[rng.bounded(seeds.size())];
    // Mutate: flip bytes, truncate, or extend.
    const auto mutations = 1 + rng.bounded(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.bounded(3)) {
        case 0:
          if (!bytes.empty()) {
            bytes[rng.bounded(bytes.size())] = static_cast<std::byte>(rng.bounded(256));
          }
          break;
        case 1:
          bytes.resize(rng.bounded(bytes.size() + 1));
          break;
        case 2:
          bytes.push_back(static_cast<std::byte>(rng.bounded(256)));
          break;
      }
    }
    poke_all_decoders(bytes);
  }
}

TEST_P(DecoderFuzz, BitFlippedControlMessagesNeverCrashDecoders) {
  Rng rng(GetParam() * 101 + 13);
  const std::vector<Bytes> seeds = control_seeds();
  for (int round = 0; round < 600; ++round) {
    Bytes bytes = seeds[rng.bounded(seeds.size())];
    const auto flips = 1 + rng.bounded(8);
    for (std::uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
      const auto pos = rng.bounded(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1u << rng.bounded(8));
    }
    poke_all_decoders(bytes);
  }
}

// Every strict prefix of every valid control message must decode cleanly
// or throw SerdeError — never crash or read past the buffer.
TEST(DecoderHardening, TruncatedControlMessagesAreRejectedCleanly) {
  for (const Bytes& full : control_seeds()) {
    for (std::size_t len = 0; len < full.size(); ++len) {
      poke_all_decoders(Bytes(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)));
    }
  }
}

// Buffers whose element counts claim more than the bytes remaining could
// ever hold must throw SerdeError *before* any reservation: a length-lying
// packet is malformed input, not a request to allocate gigabytes.
TEST(DecoderHardening, LengthLyingCountsAreRejectedNotAllocated) {
  const std::uint64_t kHugeCount = std::uint64_t{1} << 40;
  auto control = [&](auto&& fill) {
    BufWriter w;
    w.u8(static_cast<std::uint8_t>(fbl::FrameKind::kControl));
    fill(w);
    return std::move(w).take();
  };

  std::vector<Bytes> liars;
  // RSetReply (tag 4): huge member count, no members.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(4);
    w.varint(kHugeCount);
  }));
  // DepRequest (tag 7): valid header + empty incvector delta, huge
  // recovering list.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(7);
    w.u64(1);         // round
    w.boolean(false); // block
    w.boolean(false); // defer
    w.u32(0);         // leader
    w.u32(1);         // leader_inc
    w.varint(0);      // arity
    w.varint(0);      // delta.base_version
    w.varint(0);      // delta.version
    w.boolean(true);  // delta.full
    w.varint(0);      // empty delta entries
    w.varint(kHugeCount);
  }));
  // DepReply (tag 8): no determinants, huge contribution count.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(8);
    w.u64(1);    // round
    w.varint(0); // no determinants
    w.varint(kHugeCount);
  }));
  // ReplayRequest (tag 11): huge ssn count.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(11);
    w.varint(kHugeCount);
  }));
  // ReplayData (tag 12): huge item count.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(12);
    w.varint(kHugeCount);
  }));
  // DetPush (tag 13): huge determinant count.
  liars.push_back(control([&](BufWriter& w) {
    w.u8(13);
    w.u64(1);
    w.varint(kHugeCount);
  }));

  for (const Bytes& bytes : liars) {
    BufReader r(bytes);
    ASSERT_EQ(fbl::decode_kind(r), fbl::FrameKind::kControl);
    EXPECT_THROW((void)recovery::decode_control(r), SerdeError);
  }

  // AppFrame piggyback list lies about its determinant count.
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(fbl::FrameKind::kApp));
  w.u32(1);   // inc
  w.u64(5);   // ssn
  w.varint(kHugeCount);
  const Bytes app = std::move(w).take();
  BufReader r(app);
  ASSERT_EQ(fbl::decode_kind(r), fbl::FrameKind::kApp);
  EXPECT_THROW((void)fbl::AppFrame::decode(r), SerdeError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace rr
