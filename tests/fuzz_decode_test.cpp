// Decoder robustness: every wire decoder must reject arbitrary and mutated
// bytes with SerdeError — never crash, never read out of bounds. Seeded
// pseudo-fuzz, deterministic per seed (TEST_P sweep).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fbl/checkpoint.hpp"
#include "fbl/frame.hpp"
#include "recovery/messages.hpp"

namespace rr {
namespace {

/// Try every decoder on `bytes`; throwing SerdeError is the expected
/// rejection path, returning normally means the input happened to parse —
/// both fine, anything else is a bug caught by the test harness (crash,
/// sanitizer, uncaught foreign exception).
void poke_all_decoders(const Bytes& bytes) {
  try {
    BufReader r(bytes);
    switch (fbl::decode_kind(r)) {
      case fbl::FrameKind::kApp:
        (void)fbl::AppFrame::decode(r);
        break;
      case fbl::FrameKind::kHeartbeat:
        (void)fbl::HeartbeatFrame::decode(r);
        break;
      case fbl::FrameKind::kCkptNotice:
        (void)fbl::CkptNoticeFrame::decode(r);
        break;
      case fbl::FrameKind::kControl:
        (void)recovery::decode_control(r);
        break;
      case fbl::FrameKind::kSnapshot:
        break;  // snapshot decode lives inside its manager
    }
  } catch (const SerdeError&) {
  }
  try {
    (void)fbl::Checkpoint::decode(bytes);
  } catch (const SerdeError&) {
  }
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int round = 0; round < 400; ++round) {
    Bytes bytes(rng.bounded(200));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.bounded(256));
    poke_all_decoders(bytes);
  }
}

TEST_P(DecoderFuzz, MutatedValidFramesNeverCrashDecoders) {
  Rng rng(GetParam() * 31 + 7);

  // Start from genuinely valid frames of each kind.
  std::vector<Bytes> seeds;
  fbl::AppFrame app;
  app.inc = 1;
  app.ssn = 5;
  app.dets.push_back({fbl::Determinant{ProcessId{1}, 2, ProcessId{3}, 4}, 0x7});
  app.payload = to_bytes("payload");
  seeds.push_back(app.encode());
  seeds.push_back(fbl::HeartbeatFrame{2}.encode());
  fbl::CkptNoticeFrame notice;
  notice.rsn = 9;
  notice.recv_marks[ProcessId{0}] = 4;
  seeds.push_back(notice.encode());
  recovery::DepInstall install;
  install.round = 3;
  install.dets.push_back({fbl::Determinant{ProcessId{0}, 1, ProcessId{1}, 1}, 0x3});
  install.live_marks[ProcessId{2}][ProcessId{1}] = 6;
  seeds.push_back(recovery::encode_control(install));
  recovery::ReplayData data;
  data.items.push_back({1, to_bytes("x")});
  seeds.push_back(recovery::encode_control(data));

  for (int round = 0; round < 400; ++round) {
    Bytes bytes = seeds[rng.bounded(seeds.size())];
    // Mutate: flip bytes, truncate, or extend.
    const auto mutations = 1 + rng.bounded(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.bounded(3)) {
        case 0:
          if (!bytes.empty()) {
            bytes[rng.bounded(bytes.size())] = static_cast<std::byte>(rng.bounded(256));
          }
          break;
        case 1:
          bytes.resize(rng.bounded(bytes.size() + 1));
          break;
        case 2:
          bytes.push_back(static_cast<std::byte>(rng.bounded(256)));
          break;
      }
    }
    poke_all_decoders(bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace rr
