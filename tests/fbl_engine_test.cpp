// LoggingEngine: the failure-free FBL state machine, driven as a pure value
// by pairs/triples of engines exchanging frames.
#include <gtest/gtest.h>

#include "fbl/checkpoint.hpp"
#include "fbl/engine.hpp"
#include "fbl/frame.hpp"

namespace rr::fbl {
namespace {

AppFrame decode_frame(const Bytes& wire) {
  BufReader r(wire);
  EXPECT_EQ(decode_kind(r), FrameKind::kApp);
  return AppFrame::decode(r);
}

struct EngineFixture : ::testing::Test {
  static constexpr std::uint32_t kN = 4;
  LoggingEngine p{EngineConfig{ProcessId{0}, kN, 2}};
  LoggingEngine q{EngineConfig{ProcessId{1}, kN, 2}};
  LoggingEngine r{EngineConfig{ProcessId{2}, kN, 2}};
  IncVector incs;

  /// Send from `a` to `b` and deliver; returns the accept result.
  LoggingEngine::AcceptResult relay(LoggingEngine& a, LoggingEngine& b, const char* text) {
    auto out = a.make_frame(b.self(), to_bytes(text), 1);
    return b.accept(a.self(), decode_frame(out.frame), incs);
  }
};

TEST_F(EngineFixture, SsnIsPerChannel) {
  EXPECT_EQ(p.make_frame(ProcessId{1}, Bytes{}, 1).ssn, 1u);
  EXPECT_EQ(p.make_frame(ProcessId{2}, Bytes{}, 1).ssn, 1u);  // separate channel
  EXPECT_EQ(p.make_frame(ProcessId{1}, Bytes{}, 1).ssn, 2u);
}

TEST_F(EngineFixture, SelfSendAborts) {
  EXPECT_DEATH((void)p.make_frame(ProcessId{0}, Bytes{}, 1), "self-sends");
}

TEST_F(EngineFixture, DeliveryAssignsSequentialRsn) {
  EXPECT_EQ(relay(p, q, "a").rsn, 1u);
  EXPECT_EQ(relay(r, q, "b").rsn, 2u);
  EXPECT_EQ(relay(p, q, "c").rsn, 3u);
  EXPECT_EQ(q.rsn(), 3u);
}

TEST_F(EngineFixture, DeliveryMintsOwnDeterminant) {
  relay(p, q, "a");
  const auto* h = q.det_log().find(ProcessId{1}, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->det.source, ProcessId{0});
  EXPECT_EQ(h->det.ssn, 1u);
  EXPECT_EQ(h->holders, holder_bit(ProcessId{1}));
}

TEST_F(EngineFixture, DuplicateRejectedButKnowledgeKept) {
  auto out = p.make_frame(ProcessId{1}, to_bytes("x"), 1);
  const AppFrame frame = decode_frame(out.frame);
  EXPECT_EQ(q.accept(ProcessId{0}, frame, incs).verdict, LoggingEngine::Verdict::kDeliver);
  EXPECT_EQ(q.accept(ProcessId{0}, frame, incs).verdict, LoggingEngine::Verdict::kDuplicate);
  EXPECT_EQ(q.rsn(), 1u);
}

TEST_F(EngineFixture, GapHeldAsOutOfOrder) {
  auto m1 = p.make_frame(ProcessId{1}, to_bytes("1"), 1);
  auto m2 = p.make_frame(ProcessId{1}, to_bytes("2"), 1);
  EXPECT_EQ(q.accept(ProcessId{0}, decode_frame(m2.frame), incs).verdict,
            LoggingEngine::Verdict::kOutOfOrder);
  EXPECT_EQ(q.accept(ProcessId{0}, decode_frame(m1.frame), incs).verdict,
            LoggingEngine::Verdict::kDeliver);
  EXPECT_EQ(q.accept(ProcessId{0}, decode_frame(m2.frame), incs).verdict,
            LoggingEngine::Verdict::kDeliver);
}

TEST_F(EngineFixture, StaleIncarnationRejectedEntirely) {
  raise_incarnation(incs, ProcessId{0}, 2);
  auto out = p.make_frame(ProcessId{1}, to_bytes("old"), 1);  // inc 1 < floor 2
  const auto res = q.accept(ProcessId{0}, decode_frame(out.frame), incs);
  EXPECT_EQ(res.verdict, LoggingEngine::Verdict::kStale);
  EXPECT_EQ(q.rsn(), 0u);
  EXPECT_EQ(q.det_log().size(), 0u);  // no knowledge absorbed from stale frames
}

TEST_F(EngineFixture, CurrentIncarnationAccepted) {
  raise_incarnation(incs, ProcessId{0}, 2);
  auto out = p.make_frame(ProcessId{1}, to_bytes("new"), 2);
  EXPECT_EQ(q.accept(ProcessId{0}, decode_frame(out.frame), incs).verdict,
            LoggingEngine::Verdict::kDeliver);
}

TEST_F(EngineFixture, SendLogsPayload) {
  (void)p.make_frame(ProcessId{1}, to_bytes("logged"), 1);
  ASSERT_NE(p.send_log().find(ProcessId{1}, 1), nullptr);
  EXPECT_EQ(to_text(*p.send_log().find(ProcessId{1}, 1)), "logged");
}

TEST_F(EngineFixture, PiggybackCarriesReceiptOrdersDownstream) {
  relay(p, q, "m");                                       // q now holds det(m)
  auto out = q.make_frame(ProcessId{2}, to_bytes("m'"), 1);
  const AppFrame frame = decode_frame(out.frame);
  ASSERT_EQ(frame.dets.size(), 1u);
  EXPECT_EQ(frame.dets[0].det.dest, ProcessId{1});
  // q optimistically counts r as holder now.
  EXPECT_TRUE(holds(frame.dets[0].holders, ProcessId{2}));
  const auto res = r.accept(ProcessId{1}, frame, incs);
  EXPECT_EQ(res.dets_learned, 1u);
  EXPECT_TRUE(r.det_log().contains(ProcessId{1}, 1));
}

TEST_F(EngineFixture, PropagationStopsAtFPlusOneHolders) {
  relay(p, q, "m");  // holders of det(m): {q}
  // q -> r: det piggybacked, holders {q, r}.
  auto to_r = q.make_frame(ProcessId{2}, Bytes{}, 1);
  (void)r.accept(ProcessId{1}, decode_frame(to_r.frame), incs);
  // q -> p: holders {q, r, p} = f+1 = 3 from q's view.
  auto to_p = q.make_frame(ProcessId{0}, Bytes{}, 1);
  EXPECT_EQ(decode_frame(to_p.frame).dets.size(), 1u);
  // Now propagation stops: q's next frame carries nothing.
  auto again = q.make_frame(ProcessId{2}, Bytes{}, 1);
  EXPECT_EQ(decode_frame(again.frame).dets.size(), 0u);
}

TEST_F(EngineFixture, PiggybackNotRepeatedToSameDestination) {
  relay(p, q, "m");
  auto first = q.make_frame(ProcessId{2}, Bytes{}, 1);
  EXPECT_EQ(decode_frame(first.frame).dets.size(), 1u);
  auto second = q.make_frame(ProcessId{2}, Bytes{}, 1);
  EXPECT_EQ(decode_frame(second.frame).dets.size(), 0u);
}

TEST_F(EngineFixture, CheckpointRoundTripRestoresEverything) {
  relay(p, q, "a");
  relay(q, p, "b");
  (void)p.make_frame(ProcessId{2}, to_bytes("c"), 1);
  const Checkpoint cp = p.make_checkpoint(to_bytes("appstate"));
  const Bytes blob = cp.encode();

  LoggingEngine restored{EngineConfig{ProcessId{0}, kN, 2}};
  restored.load(Checkpoint::decode(blob));
  EXPECT_EQ(restored.rsn(), p.rsn());
  EXPECT_EQ(restored.send_seq(), p.send_seq());
  EXPECT_EQ(restored.recv_marks(), p.recv_marks());
  EXPECT_EQ(restored.send_log().size(), p.send_log().size());
  EXPECT_EQ(restored.det_log().size(), p.det_log().size());
  // Next send continues the ssn sequence.
  EXPECT_EQ(restored.make_frame(ProcessId{1}, Bytes{}, 2).ssn, 2u);
}

TEST_F(EngineFixture, CheckpointDecodeRejectsGarbage) {
  EXPECT_THROW((void)Checkpoint::decode(to_bytes("not a checkpoint")), SerdeError);
}

TEST_F(EngineFixture, CkptNoticePrunesSendLogAndDets) {
  relay(p, q, "a");
  relay(p, q, "b");
  relay(p, q, "c");
  // q checkpoints having delivered everything (rsn 3, mark 3).
  CkptNoticeFrame notice;
  notice.rsn = q.rsn();
  notice.recv_marks = q.recv_marks();
  const auto gc = p.on_ckpt_notice(ProcessId{1}, notice);
  EXPECT_EQ(gc.send_entries, 3u);
  EXPECT_EQ(p.send_log().size(), 0u);
  // p held no dets destined to q beyond its own piggyback knowledge.
  (void)gc.determinants;
}

TEST_F(EngineFixture, CkptNoticeKeepsUncoveredEntries) {
  relay(p, q, "a");
  auto late = p.make_frame(ProcessId{1}, to_bytes("late"), 1);  // never delivered
  (void)late;
  CkptNoticeFrame notice;
  notice.rsn = q.rsn();
  notice.recv_marks = q.recv_marks();  // mark = 1
  const auto gc = p.on_ckpt_notice(ProcessId{1}, notice);
  EXPECT_EQ(gc.send_entries, 1u);
  ASSERT_NE(p.send_log().find(ProcessId{1}, 2), nullptr);
}

TEST_F(EngineFixture, DeliverReplayedReproducesSequence) {
  // Original run: q receives three messages.
  auto m1 = p.make_frame(ProcessId{1}, to_bytes("1"), 1);
  auto m2 = r.make_frame(ProcessId{1}, to_bytes("2"), 1);
  auto m3 = p.make_frame(ProcessId{1}, to_bytes("3"), 1);
  (void)q.accept(ProcessId{0}, decode_frame(m1.frame), incs);
  (void)q.accept(ProcessId{2}, decode_frame(m2.frame), incs);
  (void)q.accept(ProcessId{0}, decode_frame(m3.frame), incs);

  // Replay into a fresh engine.
  LoggingEngine fresh{EngineConfig{ProcessId{1}, kN, 2}};
  fresh.deliver_replayed(Determinant{ProcessId{0}, 1, ProcessId{1}, 1}, 0);
  fresh.deliver_replayed(Determinant{ProcessId{2}, 1, ProcessId{1}, 2}, 0);
  fresh.deliver_replayed(Determinant{ProcessId{0}, 2, ProcessId{1}, 3}, 0);
  EXPECT_EQ(fresh.rsn(), 3u);
  EXPECT_EQ(fresh.recv_marks(), q.recv_marks());
}

TEST_F(EngineFixture, DeliverReplayedEnforcesOrder) {
  LoggingEngine fresh{EngineConfig{ProcessId{1}, kN, 2}};
  EXPECT_DEATH(fresh.deliver_replayed(Determinant{ProcessId{0}, 1, ProcessId{1}, 2}, 0),
               "receipt order");
}

TEST_F(EngineFixture, DeliverReplayedEnforcesChannelContinuity) {
  LoggingEngine fresh{EngineConfig{ProcessId{1}, kN, 2}};
  EXPECT_DEATH(fresh.deliver_replayed(Determinant{ProcessId{0}, 5, ProcessId{1}, 1}, 0),
               "gap-free");
}

TEST_F(EngineFixture, RetransmitFrameKeepsSsnAndPayload) {
  (void)p.make_frame(ProcessId{1}, to_bytes("keep"), 1);
  auto rt = p.retransmit_frame(ProcessId{1}, 1, 3);
  ASSERT_TRUE(rt.has_value());
  const AppFrame frame = decode_frame(rt->frame);
  EXPECT_EQ(frame.ssn, 1u);
  EXPECT_EQ(frame.inc, 3u);
  EXPECT_EQ(to_text(frame.payload), "keep");
}

TEST_F(EngineFixture, RetransmitFrameMissingEntryReturnsNullopt) {
  EXPECT_FALSE(p.retransmit_frame(ProcessId{1}, 7, 1).has_value());
}

TEST_F(EngineFixture, ForgetHolderDropsCrashedPeersKnowledge) {
  relay(p, q, "m");  // det(m) dest=q
  // p learns the det via q's next message.
  auto out = q.make_frame(ProcessId{0}, Bytes{}, 1);
  (void)p.accept(ProcessId{1}, decode_frame(out.frame), incs);
  const auto* before = p.det_log().find(ProcessId{1}, 1);
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(holds(before->holders, ProcessId{1}));

  // q crashed and recovered only up to rsn 0: its copy is gone.
  p.forget_holder(ProcessId{1}, 0);
  const auto* after = p.det_log().find(ProcessId{1}, 1);
  ASSERT_NE(after, nullptr);
  EXPECT_FALSE(holds(after->holders, ProcessId{1}));
}

TEST_F(EngineFixture, ForgetHolderKeepsReestablishedReceipts) {
  relay(p, q, "m");
  auto out = q.make_frame(ProcessId{0}, Bytes{}, 1);
  (void)p.accept(ProcessId{1}, decode_frame(out.frame), incs);
  // q recovered past rsn 1: it re-learned its own receipt.
  p.forget_holder(ProcessId{1}, 1);
  const auto* h = p.det_log().find(ProcessId{1}, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(holds(h->holders, ProcessId{1}));
}

TEST_F(EngineFixture, StableInstanceFlag) {
  EXPECT_FALSE(p.stable_instance());
  LoggingEngine manetho{EngineConfig{ProcessId{0}, 4, 4}};
  EXPECT_TRUE(manetho.stable_instance());
}

TEST_F(EngineFixture, ConfigValidation) {
  EXPECT_DEATH(LoggingEngine(EngineConfig{ProcessId{0}, 4, 0}), "f must be at least 1");
  EXPECT_DEATH(LoggingEngine(EngineConfig{ProcessId{0}, 4, 5}), "f cannot exceed n");
  EXPECT_DEATH(LoggingEngine(EngineConfig{ProcessId{0}, 1, 1}), "at least two");
}

}  // namespace
}  // namespace rr::fbl
