// OrdService: monotonic ordinals, R-set bookkeeping, re-registration and
// completion retirement.
#include <gtest/gtest.h>

#include <vector>

#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "fbl/frame.hpp"
#include "recovery/ord_service.hpp"
#include "sim/simulator.hpp"

namespace rr::recovery {
namespace {

struct Capture : net::Endpoint {
  std::vector<ControlMessage> messages;

  void deliver(ProcessId, Bytes payload) override {
    BufReader r(payload);
    (void)fbl::decode_kind(r);
    messages.push_back(decode_control(r));
  }
};

struct OrdFixture : ::testing::Test {
  sim::Simulator sim;
  metrics::Registry metrics;
  net::NetworkConfig config;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<OrdService> ord;
  Capture p1, p2;
  static constexpr ProcessId kOrd{99};

  void SetUp() override {
    net = std::make_unique<net::Network>(sim, config, metrics);
    ord = std::make_unique<OrdService>(kOrd, *net, metrics);
    net->attach(kOrd, *ord);
    net->attach(ProcessId{1}, p1);
    net->attach(ProcessId{2}, p2);
  }

  void send(ProcessId from, const ControlMessage& m) {
    net->send(from, kOrd, encode_control(m));
    sim.run();
  }
};

TEST_F(OrdFixture, AssignsMonotonicOrdinals) {
  send(ProcessId{1}, OrdRequest{2});
  send(ProcessId{2}, OrdRequest{2});
  ASSERT_EQ(p1.messages.size(), 1u);
  ASSERT_EQ(p2.messages.size(), 1u);
  EXPECT_EQ(std::get<OrdReply>(p1.messages[0]).ord, 1u);
  EXPECT_EQ(std::get<OrdReply>(p2.messages[0]).ord, 2u);
  EXPECT_EQ(ord->last_ord(), 2u);
}

TEST_F(OrdFixture, ReplyCarriesCurrentRSet) {
  send(ProcessId{1}, OrdRequest{2});
  send(ProcessId{2}, OrdRequest{3});
  const auto& reply = std::get<OrdReply>(p2.messages[0]);
  ASSERT_EQ(reply.rset.size(), 2u);
  EXPECT_EQ(reply.rset[0].pid, ProcessId{1});
  EXPECT_EQ(reply.rset[0].inc, 2u);
  EXPECT_EQ(reply.rset[1].pid, ProcessId{2});
  EXPECT_EQ(reply.rset[1].inc, 3u);
}

TEST_F(OrdFixture, RSetRequestAnswered) {
  send(ProcessId{1}, OrdRequest{2});
  send(ProcessId{2}, RSetRequest{});
  ASSERT_EQ(p2.messages.size(), 1u);
  const auto& reply = std::get<RSetReply>(p2.messages[0]);
  ASSERT_EQ(reply.rset.size(), 1u);
  EXPECT_EQ(reply.rset[0].pid, ProcessId{1});
}

TEST_F(OrdFixture, CompletionRetiresEntry) {
  send(ProcessId{1}, OrdRequest{2});
  send(ProcessId{1}, RecoveryComplete{2, {}, 0});
  EXPECT_TRUE(ord->rset().empty());
  // Completing twice is harmless.
  send(ProcessId{1}, RecoveryComplete{2, {}, 0});
  EXPECT_TRUE(ord->rset().empty());
}

TEST_F(OrdFixture, ReRegistrationSupersedesWithHigherOrd) {
  send(ProcessId{1}, OrdRequest{2});
  send(ProcessId{2}, OrdRequest{2});
  // p1 crashes again mid-recovery and re-registers.
  send(ProcessId{1}, OrdRequest{3});
  const auto rset = ord->rset();
  ASSERT_EQ(rset.size(), 2u);
  // Sorted by ord: p2 (ord 2) now leads p1 (ord 3).
  EXPECT_EQ(rset[0].pid, ProcessId{2});
  EXPECT_EQ(rset[1].pid, ProcessId{1});
  EXPECT_EQ(rset[1].ord, 3u);
  EXPECT_EQ(rset[1].inc, 3u);
}

TEST_F(OrdFixture, IgnoresNonControlFrames) {
  net->send(ProcessId{1}, kOrd, fbl::HeartbeatFrame{1}.encode());
  sim.run();
  EXPECT_TRUE(ord->rset().empty());
}

TEST_F(OrdFixture, IgnoresUnrelatedControl) {
  send(ProcessId{1}, IncReply{1, 1});
  EXPECT_TRUE(ord->rset().empty());
  EXPECT_TRUE(p1.messages.empty());
}

TEST_F(OrdFixture, CountsControlTraffic) {
  send(ProcessId{1}, OrdRequest{2});
  EXPECT_EQ(metrics.counter_value("ord.registrations"), 1u);
  EXPECT_GE(metrics.counter_value("recovery.ctrl_msgs"), 1u);
}

}  // namespace
}  // namespace rr::recovery
