// End-to-end recovery scenarios on the full runtime: every failure pattern
// the paper discusses, under both algorithms, checked against the paper's
// correctness properties (safety §4.3, liveness §4.4, termination §4.2,
// non-intrusion §3).
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using harness::CrashEvent;
using harness::ScenarioConfig;
using recovery::Algorithm;
using test::fast_cluster;

using test::base_scenario;

TEST(Recovery, SingleFailureCompletesAndReplays) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_GT(r.recoveries[0].replayed, 0u);
  EXPECT_EQ(r.recoveries[0].inc, 2u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, NonBlockingNeverStallsLiveProcesses) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, seconds(5)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.total_blocked(), 0);
  for (const auto& b : r.blocked) EXPECT_EQ(b.episodes, 0u);
}

TEST(Recovery, BlockingStallsEveryLiveProcess) {
  auto sc = base_scenario(Algorithm::kBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  for (const auto& b : r.blocked) {
    if (b.pid == ProcessId{1}) continue;
    EXPECT_GT(b.blocked, 0) << "p" << b.pid.value;
    EXPECT_GE(b.episodes, 1u);
  }
}

TEST(Recovery, RecoveryTimeEqualAcrossAlgorithms) {
  auto go = [](Algorithm alg) {
    auto sc = base_scenario(alg);
    sc.crashes = {{ProcessId{1}, seconds(3)}};
    const auto r = harness::run_scenario(sc);
    EXPECT_EQ(r.recoveries.size(), 1u);
    return r.recoveries[0].total();
  };
  const Duration blocking = go(Algorithm::kBlocking);
  const Duration nonblocking = go(Algorithm::kNonBlocking);
  // The paper: "the recovering process took the same time to recover under
  // both algorithms". Allow 10% slack for control-traffic jitter.
  EXPECT_NEAR(static_cast<double>(blocking), static_cast<double>(nonblocking),
              0.1 * static_cast<double>(blocking));
}

TEST(Recovery, DoubleFailureDuringRecovery) {
  for (const Algorithm alg : {Algorithm::kBlocking, Algorithm::kNonBlocking}) {
    auto sc = base_scenario(alg);
    // Second crash lands while the first process is restoring.
    sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'700)}};
    const auto r = harness::run_scenario(sc);
    EXPECT_TRUE(r.idle) << to_string(alg);
    EXPECT_EQ(r.recoveries.size(), 2u) << to_string(alg);
    EXPECT_EQ(r.det_gaps, 0u) << to_string(alg);
    EXPECT_GE(r.gather_restarts, 1u) << to_string(alg);
  }
}

TEST(Recovery, TerminationGatherRestartsBounded) {
  // Paper §4.2: the algorithm cannot restart more than f times per episode.
  auto sc = base_scenario(Algorithm::kNonBlocking, 5, 3);
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{2}, milliseconds(3'400)},
                {ProcessId{3}, milliseconds(3'800)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 3u);
  // Restarts are bounded by the number of failures hitting the gathers.
  EXPECT_LE(r.gather_restarts, 3u);
}

TEST(Recovery, RepeatedFailureOfSameProcess) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{1}, seconds(6)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.recoveries[0].inc, 2u);
  EXPECT_EQ(r.recoveries[1].inc, 3u);
}

TEST(Recovery, CrashWhileRecoveringRestartsWithHigherIncarnation) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  // Second crash of the same process ~50 ms after its restore began.
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{1}, milliseconds(3'650)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  // Only the second attempt completes; the first was abandoned.
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.recoveries[0].inc, 3u);
  EXPECT_EQ(r.counter("recovery.abandoned"), 1u);
}

TEST(Recovery, LeaderFailureFailsOverToNextOrdinal) {
  // p1 crashes first (becomes leader), then crashes again mid-recovery
  // while p2 is also recovering; p2 (next ordinal) must take over.
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{2}, milliseconds(3'100)},
                {ProcessId{1}, milliseconds(3'700)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, StaleMessagesRejectedAfterRecovery) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  // In-flight frames from p1's dead incarnation arriving after the crash
  // are either dropped by the network (receiver down) or rejected as stale
  // once the incvector has circulated; either way none is delivered twice.
  EXPECT_EQ(r.duplicates + r.stale_rejected, r.counter("app.duplicates") +
                                                 r.counter("app.stale_rejected"));
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, FEquals1SenderBasedInstance) {
  auto sc = base_scenario(Algorithm::kNonBlocking, 4, 1);
  sc.crashes = {{ProcessId{2}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, FEqualsNManethoInstanceFlushesDeterminants) {
  auto sc = base_scenario(Algorithm::kNonBlocking, 4, 4);
  sc.crashes = {{ProcessId{2}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 1u);
  EXPECT_GT(r.counter("fbl.dets_flushed"), 0u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, SimultaneousFailuresUpToF) {
  auto sc = base_scenario(Algorithm::kNonBlocking, 6, 3);
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{2}, milliseconds(3'002)},
                {ProcessId{3}, milliseconds(3'004)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 3u);
  EXPECT_EQ(r.det_gaps, 0u);
}

TEST(Recovery, RingWorkloadStateMatchesFailureFreeRun) {
  // Fully ordered workload: the recovered execution must be bit-identical
  // to a failure-free one once every token has made the same progress.
  // RingTokenApp state depends only on per-token hop sequences, which
  // crash-recovery must not disturb (liveness §4.4).
  auto reference = base_scenario(Algorithm::kNonBlocking);
  reference.factory = test::ring_factory(1);
  reference.horizon = seconds(8);
  const auto ref = harness::run_scenario(reference);

  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.factory = test::ring_factory(1);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  sc.horizon = seconds(8);
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  // Token conservation: exactly one token still circulates, having visited
  // every process in order. Compare total deliveries modulo ring position
  // via the per-process monotone counters instead of wall-clock counts.
  EXPECT_EQ(r.det_gaps, 0u);
  EXPECT_GT(r.app_delivered, 0u);
  (void)ref;
}

TEST(Recovery, BankConservationAcrossFailures) {
  for (const Algorithm alg : {Algorithm::kBlocking, Algorithm::kNonBlocking}) {
    ScenarioConfig sc;
    sc.cluster = fast_cluster(4, 2, alg, 33);
    sc.factory = test::bank_factory(1, 25'000);
    sc.crashes = {{ProcessId{0}, seconds(2)}, {ProcessId{3}, seconds(4)}};
    sc.horizon = seconds(12);
    sc.idle_deadline = seconds(90);

    std::int64_t total = 0;
    std::uint64_t tokens_alive = 1;  // anything nonzero
    harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
      total = 0;
      tokens_alive = cluster.sim().pending_events();
      for (const ProcessId pid : cluster.pids()) {
        total += app::unwrap<app::BankApp>(cluster.node(pid).application()).balance();
      }
    });
    // All transfer tokens have expired (ttl-bounded), so no money is in
    // flight: conservation must hold exactly.
    EXPECT_EQ(total, 4 * 1'000'000) << to_string(alg);
  }
}

TEST(Recovery, CheckpointGcKeepsLogsBounded) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.horizon = seconds(10);
  std::size_t send_log_entries = 0;
  const auto r = harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    for (const ProcessId pid : cluster.pids()) {
      send_log_entries += cluster.node(pid).engine().send_log().size();
    }
  });
  // Without GC the send logs would hold every message ever sent; checkpoint
  // notices must prune everything up to the last checkpoints, leaving only
  // the post-checkpoint tail (at most ~2 checkpoint periods of traffic).
  EXPECT_GT(r.counter("fbl.gc.send_entries"), 0u);
  EXPECT_LT(send_log_entries, r.app_sent / 3);
}

TEST(Recovery, DeterministicUnderCrashSchedule) {
  auto go = [] {
    auto sc = base_scenario(Algorithm::kNonBlocking, 4, 2, 77);
    sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'600)}};
    const auto r = harness::run_scenario(sc);
    return std::tuple{r.state_hash, r.app_delivered, r.ctrl_msgs};
  };
  EXPECT_EQ(go(), go());
}

TEST(Recovery, RetransmissionsCoverInFlightLosses) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  // Messages dropped while p1 was down are re-driven from send logs.
  EXPECT_GT(r.retransmits, 0u);
  // Gossip tokens survive: traffic continues after recovery.
  EXPECT_GT(r.app_delivered, 0u);
}

TEST(Recovery, ControlTrafficSplitByKind) {
  auto sc = base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_GE(r.counter("recovery.msg.ord_request"), 1u);
  EXPECT_GE(r.counter("recovery.msg.ord_reply"), 1u);
  EXPECT_GE(r.counter("recovery.msg.dep_request"), 3u);
  EXPECT_GE(r.counter("recovery.msg.dep_reply"), 3u);
  EXPECT_GE(r.counter("recovery.msg.recovery_complete"), 1u);
}

TEST(Recovery, DeferUnsafeRecoversWithoutFullBlocking) {
  auto sc = base_scenario(Algorithm::kDeferUnsafe);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.det_gaps, 0u);
  // No full blocking...
  EXPECT_EQ(r.total_blocked(), 0);
  // ...but the Manetho-style costs are paid: synchronous stable writes on
  // the gather path by every live replier.
  EXPECT_EQ(r.counter("recovery.live_sync_writes"), 3u);
}

TEST(Recovery, DeferUnsafeHoldsOnlyReferencingFrames) {
  auto sc = base_scenario(Algorithm::kDeferUnsafe);
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'700)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size(), 2u);
  EXPECT_EQ(r.det_gaps, 0u);
  // Deferred frames are a strict subset of traffic (most messages carry no
  // determinants destined to the recovering set and flow freely).
  EXPECT_LT(r.counter("recovery.frames_deferred"), r.app_sent / 4);
}

TEST(Recovery, DeferUnsafeBankConservation) {
  ScenarioConfig sc;
  sc.cluster = fast_cluster(4, 2, Algorithm::kDeferUnsafe, 55);
  sc.factory = test::bank_factory(1, 25'000);
  sc.crashes = {{ProcessId{0}, seconds(2)}, {ProcessId{3}, seconds(4)}};
  sc.horizon = seconds(12);
  sc.idle_deadline = seconds(90);
  std::int64_t total = 0;
  const auto r = harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    for (const ProcessId pid : cluster.pids()) {
      total += app::unwrap<app::BankApp>(cluster.node(pid).application()).balance();
    }
  });
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(total, 4 * 1'000'000);
}

TEST(Recovery, BlockedEpisodesAccountedPerProcess) {
  auto sc = base_scenario(Algorithm::kBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc);
  EXPECT_EQ(r.counter("recovery.block_episodes"), 3u);  // the three survivors
}

}  // namespace
}  // namespace rr
