// Cost-ledger tests.
//
// The classifier in obs/ledger.cpp hand-parses wire layouts it cannot
// include (obs sits below recovery and net in the layering) — the unit
// tests here pin its byte-for-byte agreement with recovery::encode_control
// and the fbl frame codecs over every control kind, the app/piggyback
// split, reliable-transport unwrapping and the retransmit hint. The
// cluster-level tests cover the V10 conservation oracle, the sampled
// timeline's determinism across runs, and the Perfetto counter-track
// export.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "app/workloads.hpp"
#include "common/serde.hpp"
#include "fbl/frame.hpp"
#include "metrics/registry.hpp"
#include "obs/ledger.hpp"
#include "obs/perfetto.hpp"
#include "recovery/messages.hpp"
#include "runtime/cluster.hpp"

namespace rr {
namespace {

using obs::CostCategory;
using obs::CostLedger;
using obs::CostLedgerConfig;

constexpr std::size_t kHeader = 32;  // mirrors net::Network::kHeaderBytes

CostLedgerConfig unit_config() {
  CostLedgerConfig cfg;
  cfg.num_nodes = 4;
  cfg.transport_data_byte = 0xD7;  // net::ReliableTransport::kDataByte
  cfg.transport_ack_byte = 0xA7;   // net::ReliableTransport::kAckByte
  return cfg;
}

fbl::HeldDeterminant held_det(std::uint32_t source, std::uint64_t ssn) {
  fbl::HeldDeterminant d;
  d.det = fbl::Determinant{ProcessId{source}, ssn, ProcessId{source + 1}, ssn + 1};
  d.holders = 0b101;
  return d;
}

TEST(CostLedgerClassifier, EveryControlKindAgreesWithRecoveryCodec) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  // Variant order == CtrlKind wire order == the ledger's ctrl category
  // order; one frame of each kind, in order.
  const std::vector<recovery::ControlMessage> kinds = {
      recovery::OrdRequest{},       recovery::OrdReply{},
      recovery::RSetRequest{},      recovery::RSetReply{},
      recovery::IncRequest{},       recovery::IncReply{},
      recovery::DepRequest{},       recovery::DepReply{},
      recovery::DepInstall{},       recovery::RecoveryComplete{},
      recovery::ReplayRequest{},    recovery::ReplayData{},
      recovery::DetPush{},          recovery::DetAck{},
  };
  std::uint64_t expected_total = 0;
  for (const auto& msg : kinds) {
    const Bytes wire = recovery::encode_control(msg);
    ledger.on_wire(0, wire, kHeader, false);
    expected_total += wire.size() + kHeader;
  }
  for (std::size_t k = 0; k < obs::kCtrlCategoryCount; ++k) {
    const auto cat = static_cast<CostCategory>(obs::kFirstCtrlCategory + k);
    EXPECT_EQ(ledger.frames(cat), 1u)
        << "ctrl kind " << k + 1 << " (" << obs::to_string(cat)
        << ") not classified from its encoded bytes";
  }
  // Every byte of every frame landed somewhere (the default DepRequest's
  // incvector region splits into incvector_full, nothing is lost).
  EXPECT_EQ(ledger.total_bytes(), expected_total);
  EXPECT_EQ(ledger.frames(CostCategory::kOther), 0u);
}

TEST(CostLedgerClassifier, AppFrameSplitsPiggybackFromPayload) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  fbl::AppFrame frame;
  frame.inc = 1;
  frame.ssn = 7;
  frame.dets = {held_det(1, 5), held_det(2, 9)};
  frame.payload = Bytes(100, std::byte{0x42});
  const Bytes wire = frame.encode();
  ledger.on_wire(1, wire, kHeader, false);

  const std::uint64_t total = wire.size() + kHeader;
  EXPECT_EQ(ledger.bytes(CostCategory::kPiggybackPruned), frame.piggyback_bytes());
  EXPECT_EQ(ledger.bytes(CostCategory::kAppPayload), total - frame.piggyback_bytes());
  // One frame, counted once, under its primary category.
  EXPECT_EQ(ledger.frames(CostCategory::kAppPayload), 1u);
  EXPECT_EQ(ledger.frames(CostCategory::kPiggybackPruned), 0u);
  EXPECT_EQ(ledger.node_total_bytes(1), total);
  EXPECT_EQ(ledger.node_total_bytes(2), 0u);
}

TEST(CostLedgerClassifier, ReshipModeRecategorizesPiggyback) {
  metrics::Registry m;
  CostLedgerConfig cfg = unit_config();
  cfg.prune_piggyback = false;
  CostLedger ledger(cfg, m);

  fbl::AppFrame frame;
  frame.dets = {held_det(1, 5)};
  frame.payload = Bytes(10, std::byte{0x01});
  ledger.on_wire(0, frame.encode(), kHeader, false);
  EXPECT_EQ(ledger.bytes(CostCategory::kPiggybackReship), frame.piggyback_bytes());
  EXPECT_EQ(ledger.bytes(CostCategory::kPiggybackPruned), 0u);
}

TEST(CostLedgerClassifier, DepRequestCarvesIncvectorAndRelayBytes) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  recovery::DepRequest dep;
  dep.leader = ProcessId{2};
  dep.delta.full = false;
  dep.delta.version = 3;
  dep.delta.entries[ProcessId{1}] = 2;
  const Bytes wire = recovery::encode_control(recovery::ControlMessage{dep});

  // Sent by the leader itself: remainder stays under ctrl.dep_request.
  ledger.on_wire(2, wire, kHeader, false);
  const std::uint64_t inc_bytes = ledger.bytes(CostCategory::kIncVectorDelta);
  EXPECT_GT(inc_bytes, 0u);
  EXPECT_EQ(ledger.bytes(CostCategory::kGatherRelay), 0u);
  EXPECT_EQ(ledger.bytes(CostCategory::kCtrlDepRequest),
            wire.size() + kHeader - inc_bytes);

  // Relayed by a non-leader: the non-incvector remainder is fan-out cost.
  ledger.on_wire(0, wire, kHeader, false);
  EXPECT_EQ(ledger.bytes(CostCategory::kGatherRelay),
            wire.size() + kHeader - inc_bytes);
  EXPECT_EQ(ledger.frames(CostCategory::kCtrlDepRequest), 2u);
}

TEST(CostLedgerClassifier, UnwrapsReliableTransportFraming) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  const Bytes inner = fbl::HeartbeatFrame{3}.encode();
  BufWriter w;
  w.u8(0xD7);       // data magic
  w.u32(1);         // epoch
  w.varint(9);      // stream
  w.varint(4);      // seq
  w.raw(inner);
  const Bytes wire = std::move(w).take();
  ledger.on_wire(0, wire, kHeader, false);
  // The whole packet (wrapper included) lands under the inner frame's
  // category — the wrapper never smears the attribution.
  EXPECT_EQ(ledger.bytes(CostCategory::kHeartbeat), wire.size() + kHeader);

  BufWriter ack;
  ack.u8(0xA7);
  ack.u32(1);
  ledger.on_wire(0, std::move(ack).take(), kHeader, false);
  EXPECT_EQ(ledger.frames(CostCategory::kTransportAck), 1u);
}

TEST(CostLedgerClassifier, RetransmitHintIsOneShotAndOverridesContent) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  ledger.note_retransmit(3);
  EXPECT_TRUE(ledger.take_retransmit_hint(3));
  EXPECT_FALSE(ledger.take_retransmit_hint(3));  // consumed

  const Bytes wire = fbl::HeartbeatFrame{1}.encode();
  ledger.on_wire(3, wire, kHeader, true);
  EXPECT_EQ(ledger.bytes(CostCategory::kTransportRetransmit), wire.size() + kHeader);
  EXPECT_EQ(ledger.bytes(CostCategory::kHeartbeat), 0u);
}

TEST(CostLedgerClassifier, MalformedFramesFallBackToOther) {
  metrics::Registry m;
  CostLedger ledger(unit_config(), m);

  ledger.on_wire(0, Bytes{}, kHeader, false);                  // empty
  ledger.on_wire(0, Bytes{std::byte{0xEE}}, kHeader, false);   // unknown kind
  ledger.on_wire(0, Bytes{std::byte{4}}, kHeader, false);      // truncated control
  EXPECT_EQ(ledger.frames(CostCategory::kOther), 3u);
  EXPECT_EQ(ledger.total_bytes(), 3 * kHeader + 2);
}

// ------------------------------------------------------------- cluster level

runtime::ClusterConfig ledger_cluster(Duration sample_every = 0) {
  runtime::ClusterConfig cfg;
  cfg.num_processes = 4;
  cfg.f = 2;
  cfg.seed = 11;
  cfg.enable_ledger = true;
  cfg.ledger_sample_every = sample_every;
  return cfg;
}

app::AppFactory gossip_factory() {
  return [](ProcessId pid) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = pid.value < 2 ? 1 : 0;
    cfg.seed = 42 + pid.value;
    return std::make_unique<app::GossipApp>(cfg);
  };
}

TEST(CostLedgerCluster, V10ConservesBytesAcrossARecovery) {
  runtime::Cluster cluster(ledger_cluster(), gossip_factory());
  cluster.start();
  cluster.crash_at(ProcessId{1}, seconds(5));
  cluster.run_until(seconds(20));
  ASSERT_TRUE(cluster.all_idle());

  const obs::CostLedger* ledger = cluster.ledger();
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->audit(cluster.metrics()), std::vector<std::string>{});
  EXPECT_EQ(ledger->total_bytes(), cluster.metrics().counter_value("net.bytes"));
  // A recovery happened, so control categories saw real traffic.
  EXPECT_GT(ledger->frames(CostCategory::kCtrlDepRequest), 0u);
  EXPECT_GT(ledger->bytes(CostCategory::kAppPayload), 0u);
}

TEST(CostLedgerCluster, TimelineAndExportAreDeterministicAcrossRuns) {
  auto run = [] {
    runtime::Cluster cluster(ledger_cluster(milliseconds(100)), gossip_factory());
    cluster.start();
    cluster.crash_at(ProcessId{1}, seconds(5));
    cluster.run_until(seconds(12));
    cluster.sample_ledger_now();
    return obs::export_metrics_json(cluster.metrics(), cluster.ledger());
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"timeline\""), std::string::npos);
  EXPECT_NE(a.find("\"ledger\""), std::string::npos);
}

TEST(CostLedgerCluster, FinalSampleMatchesScalarBlockedTime) {
  runtime::ClusterConfig cfg = ledger_cluster(milliseconds(50));
  cfg.algorithm = recovery::Algorithm::kBlocking;  // guarantees blocked > 0
  runtime::Cluster cluster(cfg, gossip_factory());
  cluster.start();
  cluster.crash_at(ProcessId{1}, seconds(5));
  cluster.run_until(seconds(20));
  cluster.sample_ledger_now();

  const obs::CostLedger* ledger = cluster.ledger();
  ASSERT_GT(ledger->sample_count(), 0u);
  const std::size_t last = ledger->sample_count() - 1;
  std::uint64_t timeline_blocked = 0;
  std::uint64_t timeline_sent = 0;
  for (std::uint32_t i = 0; i < ledger->num_nodes(); ++i) {
    timeline_blocked += ledger->sample_node(last, i).blocked_ns;
    timeline_sent += ledger->sample_node(last, i).sent_bytes;
  }
  EXPECT_EQ(timeline_blocked,
            static_cast<std::uint64_t>(cluster.total_blocked_time()));
  EXPECT_GT(timeline_blocked, 0u);
  // Per-node cumulative sent bytes cover everything except the service slot.
  EXPECT_EQ(timeline_sent + ledger->node_total_bytes(ledger->num_nodes()),
            ledger->sample_header(last).net_bytes);
}

TEST(CostLedgerCluster, PerfettoCounterTracksValidate) {
  runtime::ClusterConfig cfg = ledger_cluster(milliseconds(100));
  cfg.enable_spans = true;
  runtime::Cluster cluster(cfg, gossip_factory());
  cluster.start();
  cluster.crash_at(ProcessId{1}, seconds(5));
  cluster.run_until(seconds(12));
  cluster.sample_ledger_now();

  const std::string json =
      obs::export_trace_event_json(*cluster.spans(), cluster.ledger());
  std::string error;
  EXPECT_TRUE(obs::validate_trace_event_json(json, &error)) << error;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("net_kb"), std::string::npos);
  EXPECT_NE(json.find("blocked_ms"), std::string::npos);
}

}  // namespace
}  // namespace rr
