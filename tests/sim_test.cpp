// Simulation kernel: event ordering, cancellation, run_until semantics and
// the repeating timer.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace rr::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kTimeZero);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelReturnsFalseWhenAlreadyRan) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kNoEvent));
  EXPECT_FALSE(sim.cancel(EventId{12345}));
}

TEST(Simulator, PendingEventsTracksCancellation) {
  Simulator sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilExecutesInclusiveBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(21, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, RunUntilKeepsFutureEventPending) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(100, [&] { ran = true; });
  sim.run_until(50);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9);
}

TEST(Simulator, RngIsSeedDeterministic) {
  Simulator a(42), b(42), c(43);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  (void)c;
}

TEST(RepeatingTimer, FiresPeriodically) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] { ++ticks; });
  t.start();
  sim.run_until(35);
  EXPECT_EQ(ticks, 3);  // at 10, 20, 30
}

TEST(RepeatingTimer, StartAfterCustomDelay) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start_after(3);
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<Time>{3, 13, 23}));
}

TEST(RepeatingTimer, StopIsIdempotentAndHalts) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] { ++ticks; });
  t.start();
  sim.run_until(15);
  t.stop();
  t.stop();
  sim.run_until(100);
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(t.running());
}

TEST(RepeatingTimer, CallbackMayStopTimer) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  sim.run_until(100);
  EXPECT_EQ(ticks, 2);
}

TEST(RepeatingTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start();
  sim.run_until(12);
  t.start();  // re-arm at t=12
  sim.run_until(30);
  EXPECT_EQ(fired, (std::vector<Time>{10, 22}));
}

TEST(RepeatingTimer, SetPeriodAppliesFromNextArm) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start();
  sim.run_until(12);         // fired at 10, re-armed for 20
  t.set_period(5);           // affects arms made after the pending one
  sim.run_until(31);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 25, 30}));
  EXPECT_EQ(t.period(), 5);
}

}  // namespace
}  // namespace rr::sim
