// Simulation kernel: event ordering, cancellation, run_until semantics and
// the repeating timer.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace rr::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kTimeZero);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelReturnsFalseWhenAlreadyRan) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kNoEvent));
  EXPECT_FALSE(sim.cancel(EventId{12345}));      // unknown slot, gen 0
  EXPECT_FALSE(sim.cancel(EventId{12345, 7}));   // unknown slot, bogus gen
}

TEST(Simulator, CancelThenRescheduleReusesSlotAndRejectsStaleId) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventId a = sim.schedule_at(10, [&] { first = true; });
  EXPECT_TRUE(sim.cancel(a));
  const EventId b = sim.schedule_at(20, [&] { second = true; });
  // The arena reuses the freed slot under a new generation; the stale
  // handle must not be able to touch the new occupant.
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Simulator, StaleIdAfterExecutionRejected) {
  Simulator sim;
  const EventId a = sim.schedule_at(5, [] {});
  sim.run();
  bool ran = false;
  const EventId b = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_EQ(b.slot, a.slot);  // slot freed by execution, reused
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, ManyCancelRescheduleCyclesStayConsistent) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.schedule_at(1, [&] { ++fired; });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
    id = sim.schedule_at(1 + i % 3, [&] { ++fired; });
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, PendingEventsTracksCancellation) {
  Simulator sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilExecutesInclusiveBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(21, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, RunUntilKeepsFutureEventPending) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(100, [&] { ran = true; });
  sim.run_until(50);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStoppedMidRunStillAdvancesClockToTarget) {
  Simulator sim;
  std::vector<Time> fired;
  sim.schedule_at(5, [&] {
    fired.push_back(sim.now());
    sim.stop();
  });
  sim.schedule_at(7, [&] { fired.push_back(sim.now()); });
  sim.run_until(10);
  // stop() halts processing after the current event, but run_until's
  // contract is that the clock lands on exactly t.
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(fired, (std::vector<Time>{5}));
  EXPECT_EQ(sim.pending_events(), 1u);
  // The skipped event is overdue; it runs late at the current time and the
  // clock never moves backwards.
  sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{5, 10}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9);
}

TEST(Simulator, RngIsSeedDeterministic) {
  Simulator a(42), b(42), c(43);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  (void)c;
}

TEST(RepeatingTimer, FiresPeriodically) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] { ++ticks; });
  t.start();
  sim.run_until(35);
  EXPECT_EQ(ticks, 3);  // at 10, 20, 30
}

TEST(RepeatingTimer, StartAfterCustomDelay) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start_after(3);
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<Time>{3, 13, 23}));
}

TEST(RepeatingTimer, StopIsIdempotentAndHalts) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] { ++ticks; });
  t.start();
  sim.run_until(15);
  t.stop();
  t.stop();
  sim.run_until(100);
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(t.running());
}

TEST(RepeatingTimer, CallbackMayStopTimer) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  sim.run_until(100);
  EXPECT_EQ(ticks, 2);
}

TEST(RepeatingTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start();
  sim.run_until(12);
  t.start();  // re-arm at t=12
  sim.run_until(30);
  EXPECT_EQ(fired, (std::vector<Time>{10, 22}));
}

TEST(RepeatingTimer, SetPeriodInsideTickAppliesToNextArm) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] {
    fired.push_back(sim.now());
    if (fired.size() == 1) t.set_period(3);
  });
  t.start();
  sim.run_until(30);
  // The tick at 10 had already re-armed for 20 before the callback ran, so
  // the new period takes effect only from the arm made at 20.
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 23, 26, 29}));
}

TEST(RepeatingTimer, StopInsideFirstTickHaltsImmediately) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer t(sim, 10, [&] {
    ++ticks;
    t.stop();
  });
  t.start();
  sim.run_until(100);
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(t.running());
  EXPECT_EQ(sim.pending_events(), 0u);  // the re-arm was cancelled cleanly
}

TEST(RepeatingTimer, StopThenRestartInsideTickRearmsFromNow) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] {
    fired.push_back(sim.now());
    if (fired.size() == 1) {
      t.stop();
      t.start_after(5);
    }
  });
  t.start();
  sim.run_until(40);
  EXPECT_EQ(fired, (std::vector<Time>{10, 15, 25, 35}));
}

TEST(RepeatingTimer, SetPeriodAppliesFromNextArm) {
  Simulator sim;
  std::vector<Time> fired;
  RepeatingTimer t(sim, 10, [&] { fired.push_back(sim.now()); });
  t.start();
  sim.run_until(12);         // fired at 10, re-armed for 20
  t.set_period(5);           // affects arms made after the pending one
  sim.run_until(31);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 25, 30}));
  EXPECT_EQ(t.period(), 5);
}

}  // namespace
}  // namespace rr::sim
