// RecoveryManager driven by scripted hooks: leader election by ordinal,
// gather phases, restart triggers, blocking semantics and incvector
// construction — all without a live cluster.
#include <gtest/gtest.h>

#include <vector>

#include "recovery/recovery_manager.hpp"

namespace rr::recovery {
namespace {

constexpr ProcessId kSelf{0};
constexpr ProcessId kOrd{99};

/// A minimal self-contribution: the leader retires a gather target only
/// when some reply carries its contribution (flat replies carry exactly
/// the sender's own; tree relays aggregate many).
DepContribution contrib(std::uint32_t pid) {
  DepContribution c;
  c.pid = ProcessId{pid};
  return c;
}

struct Harness {
  sim::Simulator sim;
  metrics::Registry metrics;
  RecoveryConfig config;

  std::vector<std::pair<ProcessId, ControlMessage>> sent;
  std::vector<ControlMessage> broadcasts;
  std::vector<DepInstall> installs;
  std::vector<std::pair<ProcessId, RecoveryComplete>> recovered_peers;
  bool blocked = false;
  std::set<ProcessId> deferring;
  int sync_logged = 0;
  Incarnation inc = 2;
  std::set<ProcessId> suspected;
  std::vector<fbl::HeldDeterminant> slice;
  std::vector<ProcessId> processes{ProcessId{0}, ProcessId{1}, ProcessId{2}, ProcessId{3}};

  std::unique_ptr<RecoveryManager> mgr;

  explicit Harness(Algorithm alg = Algorithm::kNonBlocking) {
    config.algorithm = alg;
    config.progress_period = milliseconds(200);
    config.phase_timeout = seconds(2);
    mgr = std::make_unique<RecoveryManager>(
        sim, kSelf, kOrd, config,
        RecoveryManager::Hooks{
            .send_ctrl = [this](ProcessId to,
                                const ControlMessage& m) { sent.emplace_back(to, m); },
            .broadcast_ctrl = [this](const ControlMessage& m) { broadcasts.push_back(m); },
            .my_incarnation = [this] { return inc; },
            .all_processes = [this] { return processes; },
            .is_suspected = [this](ProcessId p) { return suspected.contains(p); },
            .depinfo_slice = [this](const std::vector<ProcessId>&) { return slice; },
            .marks_for =
                [](const std::vector<ProcessId>& rset) {
                  fbl::Watermarks marks;
                  for (const ProcessId p : rset) marks[p] = 7;
                  return marks;
                },
            .set_delivery_blocked = [this](bool b) { blocked = b; },
            .set_defer_unsafe =
                [this](const std::set<ProcessId>& rset) { deferring = rset; },
            .sync_log_then_send =
                [this](ProcessId to, const ControlMessage& m) {
                  ++sync_logged;
                  sent.emplace_back(to, m);
                },
            .install = [this](const DepInstall& i) { installs.push_back(i); },
            .peer_recovered =
                [this](ProcessId p, const RecoveryComplete& m) {
                  recovered_peers.emplace_back(p, m);
                },
        },
        metrics);
  }

  /// All captured messages of type M sent to `to`.
  template <typename M>
  std::vector<M> sent_to(ProcessId to) const {
    std::vector<M> out;
    for (const auto& [dst, m] : sent) {
      if (dst == to && std::holds_alternative<M>(m)) out.push_back(std::get<M>(m));
    }
    return out;
  }

  template <typename M>
  std::size_t count_sent() const {
    std::size_t n = 0;
    for (const auto& [dst, m] : sent) n += std::holds_alternative<M>(m);
    return n;
  }

  /// Walk the manager into a single-member leader round (R = {self}).
  void become_sole_leader() {
    mgr->begin_recovery();
    mgr->on_control(kOrd, OrdReply{1, {{kSelf, 1, inc}}});
    mgr->on_control(kOrd, RSetReply{{{kSelf, 1, inc}}});
  }
};

TEST(RecoveryManager, BeginRecoveryRequestsOrdOnce) {
  Harness h;
  h.mgr->begin_recovery();
  EXPECT_TRUE(h.mgr->recovering());
  ASSERT_EQ(h.sent_to<OrdRequest>(kOrd).size(), 1u);
  EXPECT_EQ(h.sent_to<OrdRequest>(kOrd)[0].inc, 2u);
  // Progress ticks must not re-request the ordinal.
  h.sim.run_until(seconds(1));
  EXPECT_EQ(h.sent_to<OrdRequest>(kOrd).size(), 1u);
}

TEST(RecoveryManager, SoleMemberLeadsAndInstallsFromLiveReplies) {
  Harness h;
  h.become_sole_leader();
  EXPECT_TRUE(h.mgr->leading());
  // Gather targets: all processes except self.
  const auto reqs1 = h.sent_to<DepRequest>(ProcessId{1});
  ASSERT_EQ(reqs1.size(), 1u);
  EXPECT_FALSE(reqs1[0].block);
  EXPECT_EQ(reqs1[0].recovering, std::vector<ProcessId>{kSelf});
  // First round from a fresh leader: nobody has confirmed a baseline, so
  // the incvector travels as a full snapshot.
  EXPECT_TRUE(reqs1[0].delta.full);
  EXPECT_EQ(fbl::incarnation_of(reqs1[0].delta.entries, kSelf), 2u);

  DepReply reply;
  reply.round = reqs1[0].round;
  reply.contribs = {contrib(1)};
  h.mgr->on_control(ProcessId{1}, reply);
  reply.contribs = {contrib(2)};
  h.mgr->on_control(ProcessId{2}, reply);
  EXPECT_TRUE(h.installs.empty());
  reply.contribs = {contrib(3)};
  h.mgr->on_control(ProcessId{3}, reply);
  ASSERT_EQ(h.installs.size(), 1u);  // self-install after the last reply
  EXPECT_TRUE(h.mgr->install_received());
  EXPECT_FALSE(h.mgr->leading());
}

TEST(RecoveryManager, HigherOrdMemberWaitsForLeader) {
  Harness h;
  h.mgr->begin_recovery();
  // Another process (p1) holds ord 1; we got ord 2.
  h.mgr->on_control(kOrd, OrdReply{2, {{ProcessId{1}, 1, 5}, {kSelf, 2, 2}}});
  EXPECT_FALSE(h.mgr->leading());
  EXPECT_EQ(h.count_sent<DepRequest>(), 0u);
}

TEST(RecoveryManager, TakesOverWhenLowerOrdLeaderSuspected) {
  Harness h;
  h.mgr->begin_recovery();
  h.mgr->on_control(kOrd, OrdReply{2, {{ProcessId{1}, 1, 5}, {kSelf, 2, 2}}});
  EXPECT_FALSE(h.mgr->leading());
  h.suspected.insert(ProcessId{1});
  h.mgr->on_suspicion(ProcessId{1}, true);  // prompts an RSet refresh
  ASSERT_GE(h.count_sent<RSetRequest>(), 1u);
  h.mgr->on_control(kOrd, RSetReply{{{ProcessId{1}, 1, 5}, {kSelf, 2, 2}}});
  EXPECT_TRUE(h.mgr->leading());
}

TEST(RecoveryManager, MultiMemberRoundGathersIncarnationsFirst) {
  Harness h;
  h.mgr->begin_recovery();
  const std::vector<RMember> rset{{kSelf, 1, 2}, {ProcessId{2}, 2, 7}};
  h.mgr->on_control(kOrd, OrdReply{1, rset});
  h.mgr->on_control(kOrd, RSetReply{rset});
  // Non-blocking algorithm: IncRequest to the other member, no DepRequest yet.
  ASSERT_EQ(h.sent_to<IncRequest>(ProcessId{2}).size(), 1u);
  EXPECT_EQ(h.count_sent<DepRequest>(), 0u);

  const auto round = h.sent_to<IncRequest>(ProcessId{2})[0].round;
  h.mgr->on_control(ProcessId{2}, IncReply{round, 7});
  // Gather targets: p1 and p3 (p2 is recovering).
  EXPECT_EQ(h.sent_to<DepRequest>(ProcessId{1}).size(), 1u);
  EXPECT_EQ(h.sent_to<DepRequest>(ProcessId{3}).size(), 1u);
  EXPECT_EQ(h.sent_to<DepRequest>(ProcessId{2}).size(), 0u);

  DepReply reply;
  reply.round = h.sent_to<DepRequest>(ProcessId{1})[0].round;
  reply.contribs = {contrib(1)};
  h.mgr->on_control(ProcessId{1}, reply);
  reply.contribs = {contrib(3)};
  h.mgr->on_control(ProcessId{3}, reply);
  // Install goes to the other member and to self.
  EXPECT_EQ(h.sent_to<DepInstall>(ProcessId{2}).size(), 1u);
  ASSERT_EQ(h.installs.size(), 1u);
  // The install's incvector carries both recovering incarnations.
  EXPECT_EQ(fbl::incarnation_of(h.installs[0].incvector, kSelf), 2u);
  EXPECT_EQ(fbl::incarnation_of(h.installs[0].incvector, ProcessId{2}), 7u);
}

TEST(RecoveryManager, BlockingAlgorithmSkipsIncPhaseAndSetsBlockFlag) {
  Harness h(Algorithm::kBlocking);
  h.mgr->begin_recovery();
  const std::vector<RMember> rset{{kSelf, 1, 2}, {ProcessId{2}, 2, 7}};
  h.mgr->on_control(kOrd, OrdReply{1, rset});
  h.mgr->on_control(kOrd, RSetReply{rset});
  EXPECT_EQ(h.count_sent<IncRequest>(), 0u);
  const auto reqs = h.sent_to<DepRequest>(ProcessId{1});
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_TRUE(reqs[0].block);
  EXPECT_TRUE(reqs[0].delta.entries.empty());
}

TEST(RecoveryManager, LiveProcessAnswersDepRequest) {
  Harness h;
  DepRequest req;
  req.round = 9;
  req.recovering = {ProcessId{2}};
  req.leader = ProcessId{2};
  fbl::raise_incarnation(req.delta.entries, ProcessId{2}, 4);
  h.mgr->on_control(ProcessId{2}, req);
  const auto replies = h.sent_to<DepReply>(ProcessId{2});
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].round, 9u);
  ASSERT_EQ(replies[0].contribs.size(), 1u);
  EXPECT_EQ(replies[0].contribs[0].pid, kSelf);
  EXPECT_EQ(fbl::watermark_of(replies[0].contribs[0].marks, ProcessId{2}), 7u);
  // incvector merged; no blocking for the non-blocking algorithm.
  EXPECT_EQ(fbl::incarnation_of(h.mgr->incvector(), ProcessId{2}), 4u);
  EXPECT_FALSE(h.blocked);
}

TEST(RecoveryManager, BlockingDepRequestBlocksUntilAllComplete) {
  Harness h(Algorithm::kBlocking);
  DepRequest req;
  req.block = true;
  req.recovering = {ProcessId{1}, ProcessId{2}};
  h.mgr->on_control(ProcessId{1}, req);
  EXPECT_TRUE(h.blocked);
  EXPECT_EQ(h.mgr->blocked_on().size(), 2u);
  h.mgr->on_control(ProcessId{1}, RecoveryComplete{3, {}, 0});
  EXPECT_TRUE(h.blocked);
  h.mgr->on_control(ProcessId{2}, RecoveryComplete{3, {}, 0});
  EXPECT_FALSE(h.blocked);
  EXPECT_TRUE(h.mgr->blocked_on().empty());
}

TEST(RecoveryManager, DeferUnsafeRequestsDeferAndSyncLogReplies) {
  Harness h(Algorithm::kDeferUnsafe);
  h.mgr->begin_recovery();
  const std::vector<RMember> rset{{kSelf, 1, 2}};
  h.mgr->on_control(kOrd, OrdReply{1, rset});
  h.mgr->on_control(kOrd, RSetReply{rset});
  // Like the blocking baseline, the incarnation round is skipped...
  EXPECT_EQ(h.count_sent<IncRequest>(), 0u);
  const auto reqs = h.sent_to<DepRequest>(ProcessId{1});
  ASSERT_EQ(reqs.size(), 1u);
  // ...but the request asks for deferral, not blocking, and still carries
  // the incvector (live processes keep delivering and need the floor).
  EXPECT_FALSE(reqs[0].block);
  EXPECT_TRUE(reqs[0].defer);
  EXPECT_EQ(fbl::incarnation_of(reqs[0].delta.entries, kSelf), 2u);
}

TEST(RecoveryManager, DeferUnsafeLiveSideDefersAndSyncWrites) {
  Harness h(Algorithm::kDeferUnsafe);
  DepRequest req;
  req.round = 4;
  req.defer = true;
  req.recovering = {ProcessId{2}, ProcessId{3}};
  h.mgr->on_control(ProcessId{2}, req);
  EXPECT_EQ(h.deferring, (std::set<ProcessId>{ProcessId{2}, ProcessId{3}}));
  EXPECT_FALSE(h.blocked);
  // The reply went through the synchronous-logging path.
  EXPECT_EQ(h.sync_logged, 1);
  ASSERT_EQ(h.sent_to<DepReply>(ProcessId{2}).size(), 1u);

  // Completions shrink the deferred set one process at a time.
  h.mgr->on_control(ProcessId{3}, RecoveryComplete{2, {}, 0});
  EXPECT_EQ(h.deferring, std::set<ProcessId>{ProcessId{2}});
  h.mgr->on_control(ProcessId{2}, RecoveryComplete{2, {}, 0});
  EXPECT_TRUE(h.deferring.empty());
}

TEST(RecoveryManager, RecoveryCompleteRaisesIncvectorAndNotifies) {
  Harness h;
  RecoveryComplete done{6, {}, 42};
  h.mgr->on_control(ProcessId{3}, done);
  EXPECT_EQ(fbl::incarnation_of(h.mgr->incvector(), ProcessId{3}), 6u);
  ASSERT_EQ(h.recovered_peers.size(), 1u);
  EXPECT_EQ(h.recovered_peers[0].first, ProcessId{3});
  EXPECT_EQ(h.recovered_peers[0].second.rsn, 42u);
}

TEST(RecoveryManager, IncRequestAnsweredInAnyState) {
  Harness h;
  h.mgr->on_control(ProcessId{2}, IncRequest{5});
  const auto replies = h.sent_to<IncReply>(ProcessId{2});
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].round, 5u);
  EXPECT_EQ(replies[0].inc, 2u);
}

TEST(RecoveryManager, SuspectedGatherTargetRestartsRound) {
  Harness h;
  h.become_sole_leader();
  const auto rounds_before = h.metrics.counter_value("recovery.rounds");
  h.suspected.insert(ProcessId{1});
  h.mgr->on_suspicion(ProcessId{1}, true);
  EXPECT_EQ(h.metrics.counter_value("recovery.gather_restarts"), 1u);
  EXPECT_EQ(h.metrics.counter_value("recovery.rounds"), rounds_before + 1);
}

TEST(RecoveryManager, PhaseTimeoutRestartsRound) {
  Harness h;
  h.become_sole_leader();
  EXPECT_EQ(h.metrics.counter_value("recovery.gather_restarts"), 0u);
  h.sim.run_until(seconds(3));  // > phase_timeout, no replies arrived
  EXPECT_GE(h.metrics.counter_value("recovery.gather_restarts"), 1u);
}

TEST(RecoveryManager, TargetRegisteringAsRecoveringRestartsRound) {
  Harness h;
  h.become_sole_leader();
  // Mid-gather R refresh reveals p1 (a gather target) crashed into R.
  h.mgr->on_control(kOrd, RSetReply{{{kSelf, 1, 2}, {ProcessId{1}, 2, 9}}});
  EXPECT_EQ(h.metrics.counter_value("recovery.gather_restarts"), 1u);
}

TEST(RecoveryManager, StaleRoundRepliesIgnored) {
  Harness h;
  h.become_sole_leader();
  const auto round = h.sent_to<DepRequest>(ProcessId{1})[0].round;
  DepReply stale;
  stale.round = round + 100;
  h.mgr->on_control(ProcessId{1}, stale);
  h.mgr->on_control(ProcessId{2}, stale);
  h.mgr->on_control(ProcessId{3}, stale);
  EXPECT_TRUE(h.installs.empty());
}

TEST(RecoveryManager, MemberInstallAppliedOnlyWhileRecovering) {
  Harness h;
  DepInstall install;
  h.mgr->on_control(ProcessId{1}, install);  // not recovering: ignored
  EXPECT_TRUE(h.installs.empty());
  h.mgr->begin_recovery();
  fbl::raise_incarnation(install.incvector, ProcessId{1}, 8);
  h.mgr->on_control(ProcessId{1}, install);
  ASSERT_EQ(h.installs.size(), 1u);
  EXPECT_TRUE(h.mgr->install_received());
  EXPECT_EQ(fbl::incarnation_of(h.mgr->incvector(), ProcessId{1}), 8u);
}

TEST(RecoveryManager, ReplayCompleteEndsRecovery) {
  Harness h;
  h.become_sole_leader();
  DepReply reply;
  reply.round = h.sent_to<DepRequest>(ProcessId{1})[0].round;
  reply.contribs = {contrib(1)};
  h.mgr->on_control(ProcessId{1}, reply);
  reply.contribs = {contrib(2)};
  h.mgr->on_control(ProcessId{2}, reply);
  reply.contribs = {contrib(3)};
  h.mgr->on_control(ProcessId{3}, reply);
  ASSERT_TRUE(h.mgr->install_received());
  h.mgr->on_replay_complete();
  EXPECT_FALSE(h.mgr->recovering());
  EXPECT_EQ(h.metrics.counter_value("recovery.completed"), 1u);
}

TEST(RecoveryManager, ResetForRestartClearsVolatileState) {
  Harness h;
  h.become_sole_leader();
  h.mgr->reset_for_restart();
  EXPECT_FALSE(h.mgr->recovering());
  EXPECT_FALSE(h.mgr->leading());
  EXPECT_EQ(h.mgr->ord(), 0u);
  EXPECT_TRUE(h.mgr->incvector().empty());
  // A fresh recovery may acquire a new ordinal.
  h.mgr->begin_recovery();
  EXPECT_EQ(h.sent_to<OrdRequest>(kOrd).size(), 2u);
}

TEST(RecoveryManager, StandsDownWhenLowerOrdResurfaces) {
  Harness h;
  h.become_sole_leader();
  ASSERT_TRUE(h.mgr->leading());
  // Next tick's RSet refresh (mid-round) reveals a lower-ord, unsuspected
  // member... delivered as a kRefreshR-phase reply after a restart:
  h.suspected.insert(ProcessId{1});
  h.mgr->on_suspicion(ProcessId{1}, true);  // forces a round restart
  h.suspected.clear();
  // The restarted round's RSetReply shows p1 with ord 0 < ours, alive.
  h.mgr->on_control(kOrd,
                    RSetReply{{{ProcessId{1}, 0, 3}, {kSelf, 1, 2}}});
  EXPECT_FALSE(h.mgr->leading());
}

TEST(RecoveryManager, AbandonsRoundWhenNotInRset) {
  Harness h;
  h.become_sole_leader();
  h.suspected.insert(ProcessId{1});
  h.mgr->on_suspicion(ProcessId{1}, true);  // restart into kRefreshR
  h.mgr->on_control(kOrd, RSetReply{{}});   // we are gone from R
  EXPECT_FALSE(h.mgr->leading());
}

}  // namespace
}  // namespace rr::recovery
