// Rng, Hasher, time helpers and identifier types.
#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace rr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformCoversClosedRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialPositiveWithRoughMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.exponential(10.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(Rng, ForkIsUseIndependent) {
  Rng a(9);
  Rng fork_before = a.fork("stream");
  (void)a.next_u64();
  (void)a.next_u64();
  Rng fork_after = a.fork("stream");
  EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
}

TEST(Rng, ForksByLabelAreIndependent) {
  Rng a(9);
  Rng x = a.fork("x");
  Rng y = a.fork("y");
  EXPECT_NE(x.next_u64(), y.next_u64());
}

TEST(Rng, ForkByIdDiffers) {
  Rng a(9);
  EXPECT_NE(a.fork(std::uint64_t{1}).next_u64(), a.fork(std::uint64_t{2}).next_u64());
}

TEST(Hash, EmptyIsFnvOffset) {
  EXPECT_EQ(Hasher{}.digest(), 0xcbf29ce484222325ULL);
}

TEST(Hash, OrderSensitive) {
  EXPECT_NE(Hasher{}.mix_u64(1).mix_u64(2).digest(), Hasher{}.mix_u64(2).mix_u64(1).digest());
}

TEST(Hash, StringAndBytesAgree) {
  const std::string s = "abc";
  EXPECT_EQ(Hasher{}.mix(s).digest(), hash_bytes(to_bytes(s)));
}

TEST(Hash, Deterministic) {
  auto go = [] { return Hasher{}.mix("x").mix_u64(42).mix_i64(-1).digest(); };
  EXPECT_EQ(go(), go());
}

TEST(Time, UnitHelpers) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(5)), 5.0);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_duration(seconds(2)), "2.000s");
  EXPECT_EQ(format_duration(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_duration(microseconds(4)), "4.000us");
  EXPECT_EQ(format_duration(500), "500ns");
}

TEST(ProcessId, ValidityAndOrdering) {
  EXPECT_FALSE(kNoProcess.valid());
  EXPECT_TRUE(ProcessId{0}.valid());
  EXPECT_LT(ProcessId{1}, ProcessId{2});
  EXPECT_EQ(ProcessId{3}, ProcessId{3});
}

TEST(ProcessId, ToString) {
  EXPECT_EQ(to_string(ProcessId{5}), "p5");
  EXPECT_EQ(to_string(kNoProcess), "p?");
}

TEST(ProcessId, HashUsableInUnorderedContainers) {
  std::hash<ProcessId> h;
  EXPECT_NE(h(ProcessId{1}), h(ProcessId{2}));
}

}  // namespace
}  // namespace rr
