// InlineFn: the kernel's allocation-free callable. Exercises inline vs heap
// placement, move semantics, destruction counts and the size budget that
// keeps every kernel callback allocation-free.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr {
namespace {

TEST(InlineFn, DefaultIsEmpty) {
  InlineFn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  InlineFn g = nullptr;
  EXPECT_TRUE(g == nullptr);
}

TEST(InlineFn, InvokesSmallLambdaInline) {
  int hits = 0;
  InlineFn f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, KernelShapedCapturesStayInline) {
  // The shapes the simulator actually schedules: network delivery
  // (this + src + dst + Bytes) and storage completion (this only).
  struct Fake {
    void deliver(ProcessId, const Bytes&) {}
  } fake;
  Bytes payload(128);
  ProcessId src{1}, dst{2};
  InlineFn net = [&fake, src, dst, payload = std::move(payload)]() mutable {
    fake.deliver(src, payload);
  };
  EXPECT_TRUE(net.is_inline());
  net();

  InlineFn storage = [&fake] { (void)fake; };
  EXPECT_TRUE(storage.is_inline());
}

TEST(InlineFn, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineBytes
  big[7] = 42;
  std::uint64_t seen = 0;
  InlineFn f = [big, &seen] { seen = big[7]; };
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  InlineFn a = [&hits] { ++hits; };
  InlineFn b = std::move(a);
  EXPECT_TRUE(a == nullptr);
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineFn c;
  c = std::move(b);
  EXPECT_TRUE(b == nullptr);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFn a = [token] { (void)*token; };
  token.reset();
  EXPECT_FALSE(watch.expired());  // alive inside a
  a = [] {};
  EXPECT_TRUE(watch.expired());  // previous callable destroyed
}

TEST(InlineFn, ResetDestroysCapturesInlineAndHeap) {
  auto small = std::make_shared<int>(1);
  std::weak_ptr<int> small_watch = small;
  InlineFn f = [small] {};
  small.reset();
  EXPECT_TRUE(f.is_inline());
  f.reset();
  EXPECT_TRUE(small_watch.expired());
  EXPECT_TRUE(f == nullptr);

  auto big_token = std::make_shared<int>(2);
  std::weak_ptr<int> big_watch = big_token;
  std::array<std::uint64_t, 16> pad{};
  InlineFn g = [big_token, pad] { (void)pad; };
  big_token.reset();
  EXPECT_FALSE(g.is_inline());
  g = nullptr;
  EXPECT_TRUE(big_watch.expired());
}

TEST(InlineFn, DestructorReleasesCaptures) {
  auto token = std::make_shared<int>(3);
  std::weak_ptr<int> watch = token;
  {
    InlineFn f = [token] {};
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, MovedFromIsReusable) {
  int hits = 0;
  InlineFn a = [&hits] { ++hits; };
  InlineFn b = std::move(a);
  a = [&hits] { hits += 10; };
  a();
  b();
  EXPECT_EQ(hits, 11);
}

TEST(InlineFn, SelfMoveAssignIsSafe) {
  int hits = 0;
  InlineFn f = [&hits] { ++hits; };
  InlineFn& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, WrapsStdFunctionAndFunctionPointers) {
  std::function<void()> fn = [] {};
  InlineFn a = fn;  // copy from lvalue
  EXPECT_TRUE(static_cast<bool>(a));
  a();

  static int calls = 0;
  InlineFn b = +[] { ++calls; };
  EXPECT_TRUE(b.is_inline());
  b();
  EXPECT_EQ(calls, 1);
}

TEST(BufferPool, RecyclesCapacity) {
  BufferPool pool;
  Bytes b = pool.acquire(256);
  EXPECT_EQ(pool.misses(), 1u);
  b.resize(200);
  const auto* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  Bytes c = pool.acquire(64);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(c.empty());           // capacity-only: content never leaks
  EXPECT_GE(c.capacity(), 200u);    // same backing storage
  EXPECT_EQ(c.data(), data);
}

TEST(BufferPool, DropsOversizedAndTinyBuffers) {
  BufferPool pool;
  Bytes tiny;  // zero capacity
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.pooled(), 0u);

  Bytes huge;
  huge.reserve(BufferPool::kMaxRetainBytes + 1);
  pool.release(std::move(huge));
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, CopyOfMatchesSource) {
  BufferPool pool;
  const Bytes src = to_bytes("pooled fan-out copy");
  Bytes dup = pool.copy_of(src);
  EXPECT_EQ(dup, src);
  pool.release(std::move(dup));
  Bytes again = pool.copy_of(src);
  EXPECT_EQ(again, src);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, BoundedRetention) {
  BufferPool pool;
  for (std::size_t i = 0; i < BufferPool::kMaxBuffers + 10; ++i) {
    Bytes b;
    b.reserve(64);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.pooled(), BufferPool::kMaxBuffers);
}

}  // namespace
}  // namespace rr
