// StableStorage device model and the two-slot CheckpointStore.
#include <gtest/gtest.h>

#include "metrics/registry.hpp"
#include "sim/simulator.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/stable_storage.hpp"

namespace rr::storage {
namespace {

struct StorageFixture : ::testing::Test {
  sim::Simulator sim;
  metrics::Registry metrics;
  StorageConfig config{milliseconds(10), 1e6};  // 10 ms seek, 1 MB/s
  std::unique_ptr<StableStorage> dev_;

  StableStorage& make() {
    dev_ = std::make_unique<StableStorage>(sim, config, metrics);
    return *dev_;
  }
};

TEST_F(StorageFixture, WriteThenReadRoundTrips) {
  auto& dev = make();
  std::optional<Bytes> got;
  dev.write("k", to_bytes("value"), nullptr);
  dev.read("k", [&](std::optional<Bytes> b) { got = std::move(b); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_text(*got), "value");
}

TEST_F(StorageFixture, MissingKeyReadsNullopt) {
  auto& dev = make();
  bool called = false;
  dev.read("absent", [&](std::optional<Bytes> b) {
    called = true;
    EXPECT_FALSE(b.has_value());
  });
  sim.run();
  EXPECT_TRUE(called);
}

TEST_F(StorageFixture, WritePaysSeekPlusTransfer) {
  auto& dev = make();
  Time done_at = 0;
  dev.write("k", Bytes(100'000), [&] { done_at = sim.now(); });
  sim.run();
  // 10 ms seek + 100 KB at 1 MB/s = 100 ms.
  EXPECT_EQ(done_at, milliseconds(110));
}

TEST_F(StorageFixture, DeviceIsSerial) {
  auto& dev = make();
  Time first = 0, second = 0;
  dev.write("a", Bytes(0), [&] { first = sim.now(); });
  dev.write("b", Bytes(0), [&] { second = sim.now(); });
  sim.run();
  EXPECT_EQ(first, milliseconds(10));
  EXPECT_EQ(second, milliseconds(20));  // queued behind the first
}

TEST_F(StorageFixture, WriteCommitsOnlyAtCompletion) {
  auto& dev = make();
  dev.write("k", to_bytes("v"), nullptr);
  EXPECT_FALSE(dev.contains("k"));  // still in flight
  sim.run();
  EXPECT_TRUE(dev.contains("k"));
}

TEST_F(StorageFixture, EraseRemovesKey) {
  auto& dev = make();
  dev.write("k", to_bytes("v"), nullptr);
  sim.run();
  dev.erase("k", nullptr);
  sim.run();
  EXPECT_FALSE(dev.contains("k"));
}

TEST_F(StorageFixture, OverwriteReplacesContent) {
  auto& dev = make();
  dev.write("k", to_bytes("one"), nullptr);
  dev.write("k", to_bytes("two"), nullptr);
  std::optional<Bytes> got;
  dev.read("k", [&](std::optional<Bytes> b) { got = std::move(b); });
  sim.run();
  EXPECT_EQ(to_text(*got), "two");
}

TEST_F(StorageFixture, KeysWithPrefix) {
  auto& dev = make();
  dev.write("a/1", Bytes(1), nullptr);
  dev.write("a/2", Bytes(1), nullptr);
  dev.write("b/1", Bytes(1), nullptr);
  sim.run();
  EXPECT_EQ(dev.keys_with_prefix("a/"), (std::vector<std::string>{"a/1", "a/2"}));
  EXPECT_TRUE(dev.keys_with_prefix("z/").empty());
}

TEST_F(StorageFixture, SizeOfReportsStoredBytes) {
  auto& dev = make();
  dev.write("k", Bytes(123), nullptr);
  sim.run();
  EXPECT_EQ(dev.size_of("k"), 123u);
  EXPECT_EQ(dev.size_of("missing"), 0u);
}

TEST_F(StorageFixture, MetricsAccounting) {
  auto& dev = make();
  dev.write("k", Bytes(10), nullptr);
  sim.run();
  dev.read("k", [](std::optional<Bytes>) {});
  sim.run();
  EXPECT_EQ(metrics.counter_value("storage.writes"), 1u);
  EXPECT_EQ(metrics.counter_value("storage.reads"), 1u);
  EXPECT_EQ(metrics.counter_value("storage.bytes_written"), 10u);
  EXPECT_EQ(metrics.counter_value("storage.bytes_read"), 10u);
}

struct CkptFixture : StorageFixture {
  std::unique_ptr<CheckpointStore> store_;

  CheckpointStore& make_store() {
    make();
    store_ = std::make_unique<CheckpointStore>(*dev_, ProcessId{3});
    return *store_;
  }
};

TEST_F(CkptFixture, SaveThenLoadLatest) {
  auto& store = make_store();
  std::uint64_t saved_version = 0;
  store.save(to_bytes("cp1"), [&](std::uint64_t v) { saved_version = v; });
  sim.run();
  EXPECT_EQ(saved_version, 1u);
  EXPECT_EQ(store.committed_version(), 1u);

  std::optional<Bytes> got;
  std::uint64_t loaded_version = 0;
  store.load_latest([&](std::optional<Bytes> b, std::uint64_t v) {
    got = std::move(b);
    loaded_version = v;
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_text(*got), "cp1");
  EXPECT_EQ(loaded_version, 1u);
}

TEST_F(CkptFixture, LoadWithoutSaveReturnsNullopt) {
  auto& store = make_store();
  bool called = false;
  store.load_latest([&](std::optional<Bytes> b, std::uint64_t v) {
    called = true;
    EXPECT_FALSE(b.has_value());
    EXPECT_EQ(v, 0u);
  });
  sim.run();
  EXPECT_TRUE(called);
}

TEST_F(CkptFixture, NewerCheckpointWins) {
  auto& store = make_store();
  store.save(to_bytes("old"), nullptr);
  store.save(to_bytes("new"), nullptr);
  sim.run();
  std::optional<Bytes> got;
  store.load_latest([&](std::optional<Bytes> b, std::uint64_t) { got = std::move(b); });
  sim.run();
  EXPECT_EQ(to_text(*got), "new");
}

TEST_F(CkptFixture, OldBlockErasedAfterFlip) {
  auto& store = make_store();
  store.save(to_bytes("old"), nullptr);
  store.save(to_bytes("new"), nullptr);
  sim.run();
  // Only the latest block plus the pointer should remain.
  EXPECT_EQ(dev_->keys_with_prefix("ckpt/3/").size(), 2u);
}

TEST_F(CkptFixture, CrashDuringSaveLeavesPreviousLoadable) {
  auto& store = make_store();
  store.save(to_bytes("stable"), nullptr);
  sim.run();
  // Start a second save but "crash" before the device finishes: simply stop
  // the simulation mid-flight and rebuild the store (the device survives).
  store.save(to_bytes("torn"), nullptr);
  sim.run_until(sim.now() + milliseconds(5));  // block write still in flight

  CheckpointStore rebuilt(*dev_, ProcessId{3});
  std::optional<Bytes> got;
  rebuilt.load_latest([&](std::optional<Bytes> b, std::uint64_t) { got = std::move(b); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  // The pointer flip never committed, so the previous checkpoint is served.
  EXPECT_EQ(to_text(*got), "stable");
}

TEST_F(CkptFixture, RebuiltStoreContinuesVersionSequence) {
  auto& store = make_store();
  store.save(to_bytes("v1"), nullptr);
  store.save(to_bytes("v2"), nullptr);
  sim.run();

  CheckpointStore rebuilt(*dev_, ProcessId{3});
  rebuilt.load_latest([](std::optional<Bytes>, std::uint64_t) {});
  sim.run();
  std::uint64_t v = 0;
  rebuilt.save(to_bytes("v3"), [&](std::uint64_t version) { v = version; });
  sim.run();
  EXPECT_EQ(v, 3u);
  std::optional<Bytes> got;
  rebuilt.load_latest([&](std::optional<Bytes> b, std::uint64_t) { got = std::move(b); });
  sim.run();
  EXPECT_EQ(to_text(*got), "v3");
}

TEST_F(CkptFixture, StoresArePerProcess) {
  make();
  CheckpointStore s1(*dev_, ProcessId{1});
  CheckpointStore s2(*dev_, ProcessId{2});
  s1.save(to_bytes("one"), nullptr);
  s2.save(to_bytes("two"), nullptr);
  sim.run();
  std::optional<Bytes> got;
  s1.load_latest([&](std::optional<Bytes> b, std::uint64_t) { got = std::move(b); });
  sim.run();
  EXPECT_EQ(to_text(*got), "one");
}

}  // namespace
}  // namespace rr::storage
