// Simulated network: latency model, per-channel FIFO, crash-drop semantics
// and byte accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rr::net {
namespace {

struct Sink : Endpoint {
  std::vector<std::pair<ProcessId, Bytes>> received;
  std::vector<Time> at;
  sim::Simulator* sim{nullptr};

  void deliver(ProcessId src, Bytes payload) override {
    received.emplace_back(src, std::move(payload));
    if (sim != nullptr) at.push_back(sim->now());
  }
};

struct NetFixture : ::testing::Test {
  sim::Simulator sim{7};
  metrics::Registry metrics;
  NetworkConfig config;
  Sink a, b, c;
  std::unique_ptr<Network> net_;

  Network& make() {
    net_ = std::make_unique<Network>(sim, config, metrics);
    net_->attach(ProcessId{0}, a);
    net_->attach(ProcessId{1}, b);
    net_->attach(ProcessId{2}, c);
    a.sim = b.sim = c.sim = &sim;
    return *net_;
  }
};

TEST_F(NetFixture, DeliversPayloadVerbatim) {
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, to_bytes("ping"));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ProcessId{0});
  EXPECT_EQ(to_text(b.received[0].second), "ping");
}

TEST_F(NetFixture, LatencyAtLeastBase) {
  config.jitter_max = 0;
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(100));
  sim.run();
  ASSERT_EQ(b.at.size(), 1u);
  EXPECT_GE(b.at[0], config.base_latency);
}

TEST_F(NetFixture, BandwidthAddsSerializationDelay) {
  config.jitter_max = 0;
  config.bytes_per_second = 1e6;  // 1 MB/s
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(100'000));
  sim.run();
  ASSERT_EQ(b.at.size(), 1u);
  // 100 KB at 1 MB/s = 100 ms of serialization on top of base latency.
  EXPECT_GE(b.at[0], config.base_latency + milliseconds(100));
}

TEST_F(NetFixture, FifoPerChannelDespiteJitter) {
  config.jitter_max = milliseconds(5);  // large jitter vs 250us base
  auto& net = make();
  for (int i = 0; i < 50; ++i) {
    BufWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    net.send(ProcessId{0}, ProcessId{1}, std::move(w).take());
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    BufReader r(b.received[i].second);
    EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  }
}

TEST_F(NetFixture, SendFromDownEndpointIsDropped) {
  auto& net = make();
  net.set_up(ProcessId{0}, false);
  EXPECT_EQ(net.send(ProcessId{0}, ProcessId{1}, Bytes(10)), 0u);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.drop.down"), 1u);
}

TEST_F(NetFixture, InFlightToDownEndpointIsDropped) {
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(10));
  net.set_up(ProcessId{1}, false);  // crashes before delivery
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.drop.down"), 1u);
}

TEST_F(NetFixture, InFlightFromCrashedSenderStillArrives) {
  // The stale-message hazard: packets survive their sender's crash.
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, to_bytes("ghost"));
  net.set_up(ProcessId{0}, false);
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(to_text(b.received[0].second), "ghost");
}

TEST_F(NetFixture, RecoveredEndpointReceivesAgain) {
  auto& net = make();
  net.set_up(ProcessId{1}, false);
  net.send(ProcessId{0}, ProcessId{1}, Bytes(1));
  sim.run();
  net.set_up(ProcessId{1}, true);
  net.send(ProcessId{0}, ProcessId{1}, Bytes(2));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second.size(), 2u);
}

TEST_F(NetFixture, BroadcastReachesAllButSender) {
  auto& net = make();
  net.broadcast(ProcessId{0}, to_bytes("hi"));
  sim.run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(NetFixture, BytesChargedIncludeHeader) {
  auto& net = make();
  const std::size_t charged = net.send(ProcessId{0}, ProcessId{1}, Bytes(100));
  EXPECT_EQ(charged, 100u + Network::kHeaderBytes);
  EXPECT_EQ(metrics.counter_value("net.bytes"), charged);
  EXPECT_EQ(metrics.counter_value("net.packets"), 1u);
}

TEST_F(NetFixture, AttachedListsSorted) {
  auto& net = make();
  const auto ids = net.attached();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ProcessId{0});
  EXPECT_EQ(ids[2], ProcessId{2});
}

TEST_F(NetFixture, DetachRemovesEndpoint) {
  auto& net = make();
  net.detach(ProcessId{2});
  EXPECT_EQ(net.attached().size(), 2u);
  EXPECT_FALSE(net.is_up(ProcessId{2}));
}

TEST_F(NetFixture, IndependentChannelsDoNotSerializeEachOther) {
  config.jitter_max = 0;
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(10));
  net.send(ProcessId{2}, ProcessId{1}, Bytes(10));
  sim.run();
  ASSERT_EQ(b.at.size(), 2u);
  // Both arrive at the same base-latency time (different channels).
  EXPECT_EQ(b.at[0], b.at[1]);
}

// --- lossy-fabric semantics -----------------------------------------------

namespace {
Bytes indexed(std::uint32_t i) {
  BufWriter w;
  w.u32(i);
  return std::move(w).take();
}

std::uint32_t index_of(const Bytes& payload) {
  BufReader r(payload);
  return r.u32();
}
}  // namespace

TEST_F(NetFixture, LossProfileDropsSomeAndCountsThem) {
  config.faults.loss = 0.3;
  auto& net = make();
  for (std::uint32_t i = 0; i < 200; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
  sim.run();
  const auto lost = metrics.counter_value("net.drop.loss");
  EXPECT_GT(lost, 0u);
  EXPECT_LT(b.received.size(), 200u);
  EXPECT_EQ(b.received.size() + lost, 200u);
  // Survivors still arrive in FIFO order (loss never reorders a channel).
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& [src, payload] : b.received) {
    const std::uint32_t idx = index_of(payload);
    if (!first) EXPECT_GT(idx, prev);
    prev = idx;
    first = false;
  }
}

TEST_F(NetFixture, ChanIndexStaysStableUnderLossAndDup) {
  // The fault hook's channel coordinate counts *sends*, not deliveries:
  // lost packets and injected duplicates must not shift later indices, or
  // schedule coordinates would drift on lossy runs.
  config.faults.loss = 0.4;
  config.faults.dup = 0.4;
  auto& net = make();
  std::vector<std::uint64_t> seen;
  net.set_fault_hook([&](ProcessId, ProcessId, const Bytes&, std::uint64_t chan_index) {
    seen.push_back(chan_index);
    return FaultDecision{};
  });
  for (std::uint32_t i = 0; i < 50; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
  sim.run();
  ASSERT_EQ(seen.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(NetFixture, BurstLossKeepsDrawsDeterministic) {
  config.faults.loss = 0.3;
  config.faults.loss_burst = 4;
  auto run_once = [&](std::uint64_t seed) {
    sim::Simulator s(seed);
    metrics::Registry reg;
    Network net(s, config, reg);
    Sink x, y;
    x.sim = y.sim = &s;
    net.attach(ProcessId{0}, x);
    net.attach(ProcessId{1}, y);
    for (std::uint32_t i = 0; i < 300; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
    s.run();
    std::vector<std::uint32_t> got;
    got.reserve(y.received.size());
    for (const auto& [src, payload] : y.received) got.push_back(index_of(payload));
    return got;
  };
  const auto first = run_once(21);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 300u);       // bursts did kill something
  EXPECT_EQ(first, run_once(21));      // fates replay byte-identically
  EXPECT_NE(first, run_once(22));      // and actually depend on the seed
}

TEST_F(NetFixture, DupProfileDeliversCopiesAndCounts) {
  config.faults.dup = 0.5;
  auto& net = make();
  for (std::uint32_t i = 0; i < 50; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
  sim.run();
  const auto dups = metrics.counter_value("net.dup_injected");
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(b.received.size(), 50u + dups);
  // Every delivered payload (copy or original) is one of the sent values.
  for (const auto& [src, payload] : b.received) EXPECT_LT(index_of(payload), 50u);
}

TEST_F(NetFixture, ReorderWindowSwapsButLosesNothing) {
  config.jitter_max = 0;
  config.faults.reorder_window = milliseconds(2);  // >> base latency spacing
  auto& net = make();
  for (std::uint32_t i = 0; i < 40; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
  sim.run();
  ASSERT_EQ(b.received.size(), 40u);
  std::vector<std::uint32_t> got;
  for (const auto& [src, payload] : b.received) got.push_back(index_of(payload));
  std::vector<std::uint32_t> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 40; ++i) EXPECT_EQ(sorted[i], i);  // exactly once each
  EXPECT_NE(got, sorted);  // the window actually produced an inversion
  // Delivery *times* stay monotone per the horizon high-water mark; only
  // packet identity swaps.
  for (std::size_t i = 1; i < b.at.size(); ++i) EXPECT_GE(b.at[i], b.at[i - 1]);
}

TEST_F(NetFixture, PartitionCutsBothDirectionsAndHeals) {
  auto& net = make();
  net.set_partitioned(ProcessId{1}, true);
  EXPECT_TRUE(net.is_partitioned(ProcessId{1}));
  EXPECT_EQ(net.send(ProcessId{0}, ProcessId{1}, Bytes(4)), 0u);
  EXPECT_EQ(net.send(ProcessId{1}, ProcessId{0}, Bytes(4)), 0u);
  sim.run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.drop.partition"), 2u);
  net.set_partitioned(ProcessId{1}, false);
  EXPECT_GT(net.send(ProcessId{0}, ProcessId{1}, Bytes(4)), 0u);
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetFixture, InFlightPacketSwallowedWhenWallGoesUp) {
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(8));
  net.set_partitioned(ProcessId{1}, true);  // wall rises mid-flight
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.drop.partition"), 1u);
}

TEST_F(NetFixture, InjectTowardPartitionedEndpointIsSwallowed) {
  auto& net = make();
  net.set_partitioned(ProcessId{1}, true);
  net.inject(ProcessId{0}, ProcessId{1}, to_bytes("ghost"), milliseconds(1));
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.drop.partition"), 1u);
}

TEST_F(NetFixture, FaultExemptLinkIgnoresLossProfile) {
  config.faults.loss = 0.95;
  auto& net = make();
  net.set_fault_exempt(ProcessId{2});
  for (std::uint32_t i = 0; i < 30; ++i) {
    net.send(ProcessId{0}, ProcessId{2}, indexed(i));  // exempt link
    net.send(ProcessId{0}, ProcessId{1}, indexed(i));  // lossy link
  }
  sim.run();
  EXPECT_EQ(c.received.size(), 30u);     // infrastructure link untouched
  EXPECT_LT(b.received.size(), 30u);     // the lossy one actually lost
  // But partitions still cut exempt links.
  net.set_partitioned(ProcessId{2}, true);
  EXPECT_EQ(net.send(ProcessId{0}, ProcessId{2}, Bytes(4)), 0u);
}

TEST_F(NetFixture, LossDrawsReplayIdenticallyAcrossInstances) {
  config.faults.loss = 0.25;
  config.faults.dup = 0.2;
  config.faults.reorder_window = microseconds(600);
  auto run_once = [&] {
    sim::Simulator s(33);
    metrics::Registry reg;
    Network net(s, config, reg);
    Sink x, y;
    x.sim = y.sim = &s;
    net.attach(ProcessId{0}, x);
    net.attach(ProcessId{1}, y);
    for (std::uint32_t i = 0; i < 120; ++i) net.send(ProcessId{0}, ProcessId{1}, indexed(i));
    s.run();
    std::vector<std::pair<Time, std::uint32_t>> got;
    for (std::size_t i = 0; i < y.received.size(); ++i) {
      got.emplace_back(y.at[i], index_of(y.received[i].second));
    }
    return got;
  };
  // Same seed, fresh simulator and network: every fate — loss, dup, reorder
  // placement, delivery timestamp — must be byte-identical.
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(NetFixture, DeterministicDeliveryTimes) {
  std::vector<Time> first_run;
  {
    sim::Simulator s1(11);
    Network net(s1, config, metrics);
    Sink x, y;
    x.sim = y.sim = &s1;
    net.attach(ProcessId{0}, x);
    net.attach(ProcessId{1}, y);
    for (int i = 0; i < 10; ++i) net.send(ProcessId{0}, ProcessId{1}, Bytes(i));
    s1.run();
    first_run = y.at;
  }
  sim::Simulator s2(11);
  Network net(s2, config, metrics);
  Sink x, y;
  x.sim = y.sim = &s2;
  net.attach(ProcessId{0}, x);
  net.attach(ProcessId{1}, y);
  for (int i = 0; i < 10; ++i) net.send(ProcessId{0}, ProcessId{1}, Bytes(i));
  s2.run();
  EXPECT_EQ(first_run, y.at);
}

}  // namespace
}  // namespace rr::net
