// Simulated network: latency model, per-channel FIFO, crash-drop semantics
// and byte accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rr::net {
namespace {

struct Sink : Endpoint {
  std::vector<std::pair<ProcessId, Bytes>> received;
  std::vector<Time> at;
  sim::Simulator* sim{nullptr};

  void deliver(ProcessId src, Bytes payload) override {
    received.emplace_back(src, std::move(payload));
    if (sim != nullptr) at.push_back(sim->now());
  }
};

struct NetFixture : ::testing::Test {
  sim::Simulator sim{7};
  metrics::Registry metrics;
  NetworkConfig config;
  Sink a, b, c;
  std::unique_ptr<Network> net_;

  Network& make() {
    net_ = std::make_unique<Network>(sim, config, metrics);
    net_->attach(ProcessId{0}, a);
    net_->attach(ProcessId{1}, b);
    net_->attach(ProcessId{2}, c);
    a.sim = b.sim = c.sim = &sim;
    return *net_;
  }
};

TEST_F(NetFixture, DeliversPayloadVerbatim) {
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, to_bytes("ping"));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ProcessId{0});
  EXPECT_EQ(to_text(b.received[0].second), "ping");
}

TEST_F(NetFixture, LatencyAtLeastBase) {
  config.jitter_max = 0;
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(100));
  sim.run();
  ASSERT_EQ(b.at.size(), 1u);
  EXPECT_GE(b.at[0], config.base_latency);
}

TEST_F(NetFixture, BandwidthAddsSerializationDelay) {
  config.jitter_max = 0;
  config.bytes_per_second = 1e6;  // 1 MB/s
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(100'000));
  sim.run();
  ASSERT_EQ(b.at.size(), 1u);
  // 100 KB at 1 MB/s = 100 ms of serialization on top of base latency.
  EXPECT_GE(b.at[0], config.base_latency + milliseconds(100));
}

TEST_F(NetFixture, FifoPerChannelDespiteJitter) {
  config.jitter_max = milliseconds(5);  // large jitter vs 250us base
  auto& net = make();
  for (int i = 0; i < 50; ++i) {
    BufWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    net.send(ProcessId{0}, ProcessId{1}, std::move(w).take());
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    BufReader r(b.received[i].second);
    EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  }
}

TEST_F(NetFixture, SendFromDownEndpointIsDropped) {
  auto& net = make();
  net.set_up(ProcessId{0}, false);
  EXPECT_EQ(net.send(ProcessId{0}, ProcessId{1}, Bytes(10)), 0u);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.dropped_at_send"), 1u);
}

TEST_F(NetFixture, InFlightToDownEndpointIsDropped) {
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(10));
  net.set_up(ProcessId{1}, false);  // crashes before delivery
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(metrics.counter_value("net.dropped_at_delivery"), 1u);
}

TEST_F(NetFixture, InFlightFromCrashedSenderStillArrives) {
  // The stale-message hazard: packets survive their sender's crash.
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, to_bytes("ghost"));
  net.set_up(ProcessId{0}, false);
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(to_text(b.received[0].second), "ghost");
}

TEST_F(NetFixture, RecoveredEndpointReceivesAgain) {
  auto& net = make();
  net.set_up(ProcessId{1}, false);
  net.send(ProcessId{0}, ProcessId{1}, Bytes(1));
  sim.run();
  net.set_up(ProcessId{1}, true);
  net.send(ProcessId{0}, ProcessId{1}, Bytes(2));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second.size(), 2u);
}

TEST_F(NetFixture, BroadcastReachesAllButSender) {
  auto& net = make();
  net.broadcast(ProcessId{0}, to_bytes("hi"));
  sim.run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(NetFixture, BytesChargedIncludeHeader) {
  auto& net = make();
  const std::size_t charged = net.send(ProcessId{0}, ProcessId{1}, Bytes(100));
  EXPECT_EQ(charged, 100u + Network::kHeaderBytes);
  EXPECT_EQ(metrics.counter_value("net.bytes"), charged);
  EXPECT_EQ(metrics.counter_value("net.packets"), 1u);
}

TEST_F(NetFixture, AttachedListsSorted) {
  auto& net = make();
  const auto ids = net.attached();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ProcessId{0});
  EXPECT_EQ(ids[2], ProcessId{2});
}

TEST_F(NetFixture, DetachRemovesEndpoint) {
  auto& net = make();
  net.detach(ProcessId{2});
  EXPECT_EQ(net.attached().size(), 2u);
  EXPECT_FALSE(net.is_up(ProcessId{2}));
}

TEST_F(NetFixture, IndependentChannelsDoNotSerializeEachOther) {
  config.jitter_max = 0;
  auto& net = make();
  net.send(ProcessId{0}, ProcessId{1}, Bytes(10));
  net.send(ProcessId{2}, ProcessId{1}, Bytes(10));
  sim.run();
  ASSERT_EQ(b.at.size(), 2u);
  // Both arrive at the same base-latency time (different channels).
  EXPECT_EQ(b.at[0], b.at[1]);
}

TEST_F(NetFixture, DeterministicDeliveryTimes) {
  std::vector<Time> first_run;
  {
    sim::Simulator s1(11);
    Network net(s1, config, metrics);
    Sink x, y;
    x.sim = y.sim = &s1;
    net.attach(ProcessId{0}, x);
    net.attach(ProcessId{1}, y);
    for (int i = 0; i < 10; ++i) net.send(ProcessId{0}, ProcessId{1}, Bytes(i));
    s1.run();
    first_run = y.at;
  }
  sim::Simulator s2(11);
  Network net(s2, config, metrics);
  Sink x, y;
  x.sim = y.sim = &s2;
  net.attach(ProcessId{0}, x);
  net.attach(ProcessId{1}, y);
  for (int i = 0; i < 10; ++i) net.send(ProcessId{0}, ProcessId{1}, Bytes(i));
  s2.run();
  EXPECT_EQ(first_run, y.at);
}

}  // namespace
}  // namespace rr::net
