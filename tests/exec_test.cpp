// Work-stealing pool unit tests: full coverage of the index space, stealing
// under skew, cancellation semantics, and parallel_for equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/work_steal.hpp"

namespace rr {
namespace {

TEST(WorkStealTest, ExecutesEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  exec::WorkStealingPool pool(4);
  pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  pool.join();
  EXPECT_EQ(pool.executed(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkStealTest, StealingDrainsASkewedLoad) {
  // One slow index per worker shard 0 (round-robin puts 0, J, 2J, ... there);
  // the other workers must steal the rest of shard 0's indices to finish.
  constexpr std::size_t kN = 64;
  constexpr unsigned kJobs = 4;
  std::vector<std::atomic<int>> hits(kN);
  exec::WorkStealingPool pool(kJobs);
  pool.run(kN, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    hits[i].fetch_add(1);
  });
  pool.join();
  EXPECT_EQ(pool.executed(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkStealTest, CancelStopsDispensingButFinishesInFlight) {
  constexpr std::size_t kN = 10000;
  std::atomic<std::size_t> started{0};
  exec::WorkStealingPool pool(2);
  pool.run(kN, [&](std::size_t) {
    started.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  // Let a few tasks through, then cut the feed.
  while (started.load() == 0) std::this_thread::yield();
  pool.cancel();
  pool.join();
  EXPECT_GE(pool.executed(), 1u);
  EXPECT_LT(pool.executed(), kN);
  EXPECT_EQ(pool.executed(), started.load());
}

TEST(WorkStealTest, ParallelForMatchesSerialForAnyJobs) {
  constexpr std::size_t kN = 257;
  std::vector<std::uint64_t> serial(kN, 0);
  for (std::size_t i = 0; i < kN; ++i) serial[i] = i * i + 7;
  for (const unsigned jobs : {1u, 2u, 5u}) {
    std::vector<std::uint64_t> out(kN, 0);
    exec::parallel_for(jobs, kN, [&](std::size_t i) { out[i] = i * i + 7; });
    EXPECT_EQ(out, serial) << "jobs=" << jobs;
  }
}

TEST(WorkStealTest, DefaultJobsIsPositive) { EXPECT_GE(exec::default_jobs(), 1u); }

}  // namespace
}  // namespace rr
