// Counter, Accumulator, IntervalTracker and the Registry.
#include <gtest/gtest.h>

#include <cstring>

#include "metrics/counters.hpp"
#include "metrics/registry.hpp"

namespace rr::metrics {
namespace {

TEST(Counter, StartsAtZeroAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZeroed) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, TracksMoments) {
  Accumulator a;
  a.record(2.0);
  a.record(4.0);
  a.record(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Accumulator, RecordDuration) {
  Accumulator a;
  a.record_duration(milliseconds(3));
  EXPECT_DOUBLE_EQ(a.mean(), 3e6);
}

TEST(IntervalTracker, AccumulatesClosedIntervals) {
  IntervalTracker t;
  t.begin(100);
  t.end(150);
  t.begin(200);
  t.end(230);
  EXPECT_EQ(t.total(1000), 80);
  EXPECT_EQ(t.episodes(), 2u);
  EXPECT_FALSE(t.open());
}

TEST(IntervalTracker, OpenIntervalCountsUpToNow) {
  IntervalTracker t;
  t.begin(100);
  EXPECT_TRUE(t.open());
  EXPECT_EQ(t.total(180), 80);
  EXPECT_EQ(t.total_closed(), 0);
}

TEST(IntervalTracker, NestedBeginsCollapse) {
  IntervalTracker t;
  t.begin(10);
  t.begin(20);  // no-op
  t.end(30);
  EXPECT_EQ(t.total(100), 20);
  EXPECT_EQ(t.episodes(), 1u);
}

TEST(IntervalTracker, EndWithoutBeginIsNoop) {
  IntervalTracker t;
  t.end(50);
  EXPECT_EQ(t.total(100), 0);
  EXPECT_EQ(t.episodes(), 0u);
}

// A crash closes the victim's open interval at the crash instant (see
// Node::crash): the blocked time charged is exactly [begin, crash), and the
// tracker is reusable for the next incarnation without carrying the old
// open state.
TEST(IntervalTracker, IntervalOpenAtCrashTimeChargesUpToCrash) {
  IntervalTracker t;
  t.begin(100);
  t.end(140);  // crash at t=140 while blocked
  EXPECT_FALSE(t.open());
  EXPECT_EQ(t.total_closed(), 40);
  // Post-restart queries must not keep accruing.
  EXPECT_EQ(t.total(10'000), 40);
  t.begin(200);  // next incarnation blocks again
  EXPECT_EQ(t.total(250), 90);
  EXPECT_EQ(t.episodes(), 2u);
}

TEST(IntervalTracker, ZeroLengthIntervalCountsEpisodeNotTime) {
  IntervalTracker t;
  t.begin(70);
  t.end(70);
  EXPECT_EQ(t.total(100), 0);
  EXPECT_EQ(t.total_closed(), 0);
  EXPECT_EQ(t.episodes(), 1u);
  EXPECT_FALSE(t.open());
}

TEST(IntervalTracker, ResetWhileOpenDropsTheOpenInterval) {
  IntervalTracker t;
  t.begin(10);
  t.end(30);
  t.begin(50);
  EXPECT_TRUE(t.open());
  t.reset();
  EXPECT_FALSE(t.open());
  EXPECT_EQ(t.total(100), 0);
  EXPECT_EQ(t.episodes(), 0u);
  // end() after reset is a plain no-op, not a resurrection of the dropped
  // interval.
  t.end(90);
  EXPECT_EQ(t.total(100), 0);
  EXPECT_EQ(t.episodes(), 0u);
}

TEST(Histogram, EmptyIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(Histogram, QuantilesBoundValuesWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(1000.0);  // all in [512, 1024) ... bucket of 1000
  // p50/p99 report the bucket's upper bound: within 2x of the true value.
  EXPECT_GE(h.p50(), 1000.0);
  EXPECT_LE(h.p50(), 2048.0);
  EXPECT_EQ(h.p50(), h.p99());
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
}

TEST(Histogram, TailQuantileSeparatesFromMedian) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(100.0);
  for (int i = 0; i < 10; ++i) h.record(1'000'000.0);
  EXPECT_LT(h.p50(), 300.0);
  EXPECT_GT(h.p99(), 500'000.0);
  EXPECT_LT(h.p90(), h.p99() + 1);  // monotone
}

TEST(Histogram, SubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.record(0.0);
  h.record(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.p99(), 2.0);
}

TEST(Histogram, RecordDurationMatchesRecord) {
  Histogram a, b;
  a.record_duration(milliseconds(3));
  b.record(3e6);
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
}

TEST(Histogram, MergeAddsCountsAndBuckets) {
  Histogram a, b;
  for (int i = 0; i < 90; ++i) a.record(100.0);
  for (int i = 0; i < 10; ++i) b.record(1'000'000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), (90 * 100.0 + 10 * 1'000'000.0) / 100.0);
  // The merged distribution has b's values as its tail.
  EXPECT_LT(a.p50(), 300.0);
  EXPECT_GT(a.p99(), 500'000.0);
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a, empty;
  a.record(42.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Histogram fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_DOUBLE_EQ(fresh.p50(), a.p50());
}

// Merging the same parts in the same (canonical) order twice is
// bit-identical — the guarantee harness::merge_histograms relies on for
// jobs-parity of the parallel bench path.
TEST(Histogram, MergeInCanonicalOrderIsDeterministic) {
  Histogram parts[3];
  parts[0].record(0.1);
  parts[0].record(7.0);
  parts[1].record(1e9);
  parts[2].record(3.5);
  Histogram x, y;
  for (const auto& p : parts) x.merge(p);
  for (const auto& p : parts) y.merge(p);
  EXPECT_EQ(x.count(), y.count());
  EXPECT_EQ(std::memcmp(&x, &y, sizeof(Histogram)), 0);
}

TEST(Registry, HistogramsCreatedOnFirstUse) {
  Registry r;
  EXPECT_EQ(r.find_histogram("missing"), nullptr);
  r.histogram("lat").record(100.0);
  ASSERT_NE(r.find_histogram("lat"), nullptr);
  EXPECT_EQ(r.find_histogram("lat")->count(), 1u);
  EXPECT_EQ(r.histogram_names(), std::vector<std::string>{"lat"});
  EXPECT_NE(r.dump().find("p99"), std::string::npos);
}

TEST(Registry, CountersCreatedOnFirstUse) {
  Registry r;
  EXPECT_EQ(r.counter_value("never.touched"), 0u);
  r.counter("a.b").add(3);
  EXPECT_EQ(r.counter_value("a.b"), 3u);
}

TEST(Registry, AccumulatorLookup) {
  Registry r;
  EXPECT_EQ(r.find_accum("missing"), nullptr);
  r.accum("lat").record(5.0);
  ASSERT_NE(r.find_accum("lat"), nullptr);
  EXPECT_DOUBLE_EQ(r.find_accum("lat")->mean(), 5.0);
}

TEST(Registry, FindCounterDoesNotCreate) {
  Registry r;
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_TRUE(r.counter_names().empty());
  r.counter("hits").add(3);
  const Counter* c = r.find_counter("hits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(r.counter_value("hits"), 3u);
  EXPECT_EQ(r.counter_value("missing"), 0u);
  EXPECT_EQ(r.counter_names(), std::vector<std::string>{"hits"});
}

TEST(Registry, NamesSorted) {
  Registry r;
  r.counter("z");
  r.counter("a");
  r.counter("m");
  EXPECT_EQ(r.counter_names(), (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Registry, ResetClearsEverything) {
  Registry r;
  r.counter("x").add();
  r.accum("y").record(1);
  r.reset();
  EXPECT_TRUE(r.counter_names().empty());
  EXPECT_TRUE(r.accum_names().empty());
}

TEST(Registry, DumpMentionsEveryName) {
  Registry r;
  r.counter("net.bytes").add(10);
  r.accum("lat.ns").record(2.5);
  const std::string dump = r.dump();
  EXPECT_NE(dump.find("net.bytes"), std::string::npos);
  EXPECT_NE(dump.find("lat.ns"), std::string::npos);
}

}  // namespace
}  // namespace rr::metrics
