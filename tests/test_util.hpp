// Shared helpers for the test suite: a compressed-timescale cluster
// configuration (fast storage, short detection timeouts, small images) so
// crash-recovery scenarios settle within a few hundred thousand simulated
// events, plus workload factories.
#pragma once

#include <memory>

#include "app/workloads.hpp"
#include "harness/scenario.hpp"
#include "runtime/cluster.hpp"

namespace rr::test {

/// Cluster config with time constants compressed ~4-10x relative to the
/// paper testbed; recovery completes ~1.5 s of virtual time after a crash.
inline runtime::ClusterConfig fast_cluster(std::uint32_t n, std::uint32_t f,
                                           recovery::Algorithm alg,
                                           std::uint64_t seed = 1) {
  runtime::ClusterConfig cfg;
  cfg.num_processes = n;
  cfg.f = f;
  cfg.algorithm = alg;
  cfg.seed = seed;
  cfg.net.base_latency = microseconds(200);
  cfg.net.jitter_max = microseconds(40);
  cfg.storage.seek_latency = milliseconds(2);
  cfg.storage.bytes_per_second = 8.0 * 1024 * 1024;
  cfg.detector.heartbeat_period = milliseconds(250);
  cfg.detector.timeout = milliseconds(1000);
  cfg.supervisor_restart_delay = milliseconds(600);
  cfg.checkpoint_period = seconds(2);
  cfg.replay_delivery_cost = microseconds(10);
  cfg.recovery.progress_period = milliseconds(200);
  cfg.recovery.phase_timeout = milliseconds(2500);
  return cfg;
}

inline app::AppFactory gossip_factory(std::uint32_t tokens_per_process = 1,
                                      std::uint32_t payload_pad = 32) {
  return [=](ProcessId pid) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = tokens_per_process;
    cfg.payload_pad = payload_pad;
    cfg.seed = 100 + pid.value;
    return std::make_unique<app::GossipApp>(cfg);
  };
}

/// Exact-config overload: every process gets a copy of `cfg` verbatim
/// (no per-pid seed derivation).
inline app::AppFactory gossip_factory(app::GossipConfig cfg) {
  return [cfg](ProcessId) { return std::make_unique<app::GossipApp>(cfg); };
}

inline app::AppFactory ring_factory(std::uint32_t tokens = 2) {
  return [=](ProcessId) {
    app::RingConfig cfg;
    cfg.tokens = tokens;
    cfg.payload_pad = 16;
    return std::make_unique<app::RingTokenApp>(cfg);
  };
}

/// Exact-config overload, mirroring gossip_factory(GossipConfig).
inline app::AppFactory ring_factory(app::RingConfig cfg) {
  return [cfg](ProcessId) { return std::make_unique<app::RingTokenApp>(cfg); };
}

inline app::AppFactory bank_factory(std::uint32_t tokens = 1, std::uint32_t ttl = 2000) {
  return [=](ProcessId) {
    app::BankConfig cfg;
    cfg.tokens_per_process = tokens;
    cfg.ttl = ttl;
    return std::make_unique<app::BankApp>(cfg);
  };
}

/// The canonical crash-recovery scenario skeleton: fast cluster, gossip
/// workload, 8 s horizon. Tests add crashes and tweak fields from here.
inline harness::ScenarioConfig base_scenario(recovery::Algorithm alg, std::uint32_t n = 4,
                                             std::uint32_t f = 2, std::uint64_t seed = 1) {
  harness::ScenarioConfig sc;
  sc.cluster = fast_cluster(n, f, alg, seed);
  sc.factory = gossip_factory();
  sc.horizon = seconds(8);
  sc.idle_deadline = seconds(60);
  return sc;
}

/// Run a fast-cluster scenario until idle (or the deadline).
inline harness::ScenarioResult run_fast(harness::ScenarioConfig sc) {
  if (sc.horizon == 0) sc.horizon = seconds(10);
  if (sc.idle_deadline == 0) sc.idle_deadline = seconds(60);
  return harness::run_scenario(sc);
}

}  // namespace rr::test
