// Analytical models: closed-form properties plus a live crosscheck against
// a simulated clean episode.
#include <gtest/gtest.h>

#include "analysis/complexity.hpp"
#include "test_util.hpp"

namespace rr::analysis {
namespace {

using recovery::Algorithm;

TEST(MessageModel, CleanSingleFailureCounts) {
  MessageModelInputs in;
  in.algorithm = Algorithm::kNonBlocking;
  in.n = 8;
  in.k = 1;
  const auto p = predict_messages(in);
  EXPECT_EQ(p.ord_request, 1u);
  EXPECT_EQ(p.inc_request, 0u);  // a sole member has nobody to ask
  EXPECT_EQ(p.dep_request, 7u);
  EXPECT_EQ(p.dep_install, 0u);
  EXPECT_EQ(p.recovery_complete, 8u);
  EXPECT_EQ(p.total(), 1 + 1 + 1 + 1 + 7 + 7 + 8u);
}

TEST(MessageModel, IncPhaseOnlyForNonBlockingBatches) {
  MessageModelInputs in;
  in.n = 8;
  in.k = 3;
  in.algorithm = Algorithm::kNonBlocking;
  EXPECT_EQ(predict_messages(in).inc_request, 2u);
  in.algorithm = Algorithm::kBlocking;
  EXPECT_EQ(predict_messages(in).inc_request, 0u);
  in.algorithm = Algorithm::kDeferUnsafe;
  EXPECT_EQ(predict_messages(in).inc_request, 0u);
}

TEST(MessageModel, RestartsMultiplyGatherPhases) {
  MessageModelInputs in;
  in.algorithm = Algorithm::kNonBlocking;
  in.n = 6;
  in.k = 2;
  in.rounds = 3;
  const auto p = predict_messages(in);
  EXPECT_EQ(p.rset_request, 3u);
  EXPECT_EQ(p.inc_request, 3u * 1);
  EXPECT_EQ(p.dep_request, 3u * 4);
  EXPECT_EQ(p.dep_install, 1u);  // only the completing round installs
}

TEST(MessageModel, PollsAreAdditive) {
  MessageModelInputs in;
  in.n = 4;
  in.progress_polls = 5;
  const auto p = predict_messages(in);
  EXPECT_EQ(p.rset_request, 6u);
  EXPECT_EQ(p.rset_reply, 6u);
}

TEST(MessageModel, NonBlockingCostsMoreThanBlockingForBatches) {
  // The paper's stated trade: the new algorithm pays extra messages.
  for (std::uint32_t k = 2; k <= 4; ++k) {
    MessageModelInputs nb{Algorithm::kNonBlocking, 8, k, 1, 0};
    MessageModelInputs bl{Algorithm::kBlocking, 8, k, 1, 0};
    EXPECT_GT(predict_messages(nb).total(), predict_messages(bl).total()) << k;
  }
}

TEST(MessageModel, BreakdownRendersTotal) {
  MessageModelInputs in;
  const auto p = predict_messages(in);
  EXPECT_NE(p.to_string().find("total"), std::string::npos);
}

TEST(LatencyModel, TermsCompose) {
  LatencyModelInputs in;
  const auto p = predict_latency(in);
  EXPECT_EQ(p.total(), p.detect + p.restore + p.gather + p.replay);
  EXPECT_GT(p.restore, 4 * in.storage_seek);
  EXPECT_EQ(p.detect, in.supervisor_delay);
}

TEST(LatencyModel, StorageDominatesOnThePaperTestbed) {
  LatencyModelInputs in;  // defaults = paper testbed, 1 MB image
  const auto p = predict_latency(in);
  EXPECT_GT(p.restore, 100 * p.gather);
  EXPECT_LT(p.communication_share(), 0.01);
}

TEST(LatencyModel, CommunicationShareGrowsWithLatencyButSlowly) {
  LatencyModelInputs lan;
  LatencyModelInputs wan;
  wan.hop_latency = milliseconds(50);  // 200x the testbed
  const double lan_share = predict_latency(lan).communication_share();
  const double wan_share = predict_latency(wan).communication_share();
  EXPECT_GT(wan_share, lan_share);
  EXPECT_LT(wan_share, 0.25);  // still a minority share even at WAN latency
}

TEST(LatencyModel, BatchAddsIncRoundTripOnlyForNonBlocking) {
  LatencyModelInputs solo;
  LatencyModelInputs batch;
  batch.k = 3;
  EXPECT_EQ(predict_latency(batch).gather - predict_latency(solo).gather,
            2 * solo.hop_latency);
  batch.algorithm = recovery::Algorithm::kBlocking;
  EXPECT_EQ(predict_latency(batch).gather, predict_latency(solo).gather);
}

TEST(ModelCrosscheck, CleanEpisodeOnFastCluster) {
  harness::ScenarioConfig sc;
  sc.cluster = test::fast_cluster(4, 2, Algorithm::kNonBlocking, 31);
  sc.factory = test::gossip_factory();
  sc.crashes = {{ProcessId{2}, seconds(3)}};
  sc.horizon = seconds(8);
  const auto r = harness::run_scenario(sc);
  ASSERT_EQ(r.recoveries.size(), 1u);

  MessageModelInputs in;
  in.algorithm = Algorithm::kNonBlocking;
  in.n = 4;
  in.k = 1;
  in.progress_polls =
      static_cast<std::uint32_t>(r.counter("recovery.msg.rset_request")) - 1;
  const auto p = predict_messages(in);
  EXPECT_EQ(p.ord_request, r.counter("recovery.msg.ord_request"));
  EXPECT_EQ(p.dep_request, r.counter("recovery.msg.dep_request"));
  EXPECT_EQ(p.dep_reply, r.counter("recovery.msg.dep_reply"));
  EXPECT_EQ(p.dep_install, r.counter("recovery.msg.dep_install"));
  EXPECT_EQ(p.recovery_complete, r.counter("recovery.msg.recovery_complete"));

  LatencyModelInputs lin;
  lin.supervisor_delay = sc.cluster.supervisor_restart_delay;
  lin.storage_seek = sc.cluster.storage.seek_latency;
  lin.storage_bytes_per_second = sc.cluster.storage.bytes_per_second;
  lin.hop_latency = sc.cluster.net.base_latency;
  lin.replay_messages = r.recoveries[0].replayed;
  lin.replay_cost_per_message = sc.cluster.replay_delivery_cost;
  lin.checkpoint_bytes = 0;  // tiny images on the fast cluster
  const auto lat = predict_latency(lin);
  EXPECT_EQ(lat.detect, r.recoveries[0].detect());
  // Replay prediction within 35% (payload fetches overlap the CPU cost).
  EXPECT_NEAR(static_cast<double>(lat.replay), static_cast<double>(r.recoveries[0].replay()),
              0.35 * static_cast<double>(r.recoveries[0].replay()));
}

}  // namespace
}  // namespace rr::analysis
