// Determinants, holder masks, the determinant log (piggyback selection,
// GC, indices) and the sender-based send log.
#include <gtest/gtest.h>

#include "fbl/determinant.hpp"
#include "fbl/determinant_log.hpp"
#include "fbl/send_log.hpp"

namespace rr::fbl {
namespace {

Determinant det(std::uint32_t src, Ssn ssn, std::uint32_t dst, Rsn rsn) {
  return Determinant{ProcessId{src}, ssn, ProcessId{dst}, rsn};
}

TEST(HolderMask, BitHelpers) {
  HolderMask m = holder_bit(ProcessId{0}) | holder_bit(ProcessId{5});
  EXPECT_TRUE(holds(m, ProcessId{0}));
  EXPECT_TRUE(holds(m, ProcessId{5}));
  EXPECT_FALSE(holds(m, ProcessId{1}));
  EXPECT_EQ(holder_count(m), 2);
  EXPECT_EQ(holder_count(m | kStableHolder), 3);
}

TEST(Determinant, SerdeRoundTrip) {
  const Determinant d = det(1, 42, 2, 7);
  BufWriter w;
  d.encode(w);
  EXPECT_EQ(w.size(), Determinant::kWireBytes);
  BufReader r(w.view());
  EXPECT_EQ(Determinant::decode(r), d);
}

TEST(Determinant, HeldSerdeRoundTrip) {
  const HeldDeterminant h{det(1, 42, 2, 7), 0xDEADULL};
  BufWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), h.wire_bytes());
  EXPECT_GE(w.size(), HeldDeterminant::kMinWireBytes);
  BufReader r(w.view());
  EXPECT_EQ(HeldDeterminant::decode(r), h);
}

TEST(Determinant, ToStringMentionsAllParts) {
  const auto s = to_string(det(1, 42, 2, 7));
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("p2"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

struct DetLogFixture : ::testing::Test {
  DeterminantLog log;
  void SetUp() override { log.set_propagation_threshold(3); }  // f = 2
};

TEST_F(DetLogFixture, RecordReturnsTrueOnlyForNew) {
  EXPECT_TRUE(log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})}));
  EXPECT_FALSE(log.record({det(1, 1, 2, 1), holder_bit(ProcessId{3})}));
  EXPECT_EQ(log.size(), 1u);
}

TEST_F(DetLogFixture, RecordMergesHolders) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{3})});
  const auto* h = log.find(ProcessId{2}, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(holder_count(h->holders), 2);
}

TEST_F(DetLogFixture, AddHoldersIgnoresUnknown) {
  log.add_holders(det(1, 1, 2, 1), holder_bit(ProcessId{4}));
  EXPECT_EQ(log.size(), 0u);
}

TEST_F(DetLogFixture, PiggybackSkipsKnownHolders) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2}) | holder_bit(ProcessId{4})});
  EXPECT_EQ(log.piggyback_for(ProcessId{4}).size(), 0u);
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 1u);
}

TEST_F(DetLogFixture, PiggybackStopsAtThreshold) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 1u);
  log.add_holders(det(1, 1, 2, 1), holder_bit(ProcessId{6}) | holder_bit(ProcessId{7}));
  // Three holders known = f+1: propagation stops.
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 0u);
  EXPECT_EQ(log.active_size(), 0u);
}

TEST_F(DetLogFixture, StableHolderStopsPropagation) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.add_holders(det(1, 1, 2, 1), kStableHolder);
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 0u);
}

TEST_F(DetLogFixture, RemoveHolderReactivatesPropagation) {
  log.record(
      {det(1, 1, 2, 1),
       holder_bit(ProcessId{2}) | holder_bit(ProcessId{3}) | holder_bit(ProcessId{4})});
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 0u);
  log.remove_holder(det(1, 1, 2, 1), ProcessId{3});
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 1u);
}

TEST_F(DetLogFixture, PendingIndexDrainsOnHolderMark) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  ASSERT_EQ(log.piggyback_for(ProcessId{5}).size(), 1u);
  // Sender marks 5 as holder after piggybacking (the engine's optimistic
  // rule): the next piggyback to 5 must be empty.
  log.add_holders(det(1, 1, 2, 1), holder_bit(ProcessId{5}));
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 0u);
  // Other destinations still see it.
  EXPECT_EQ(log.piggyback_for(ProcessId{6}).size(), 1u);
}

TEST_F(DetLogFixture, SliceForFiltersByDestination) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(1, 2, 3, 1), holder_bit(ProcessId{3})});
  log.record({det(1, 3, 2, 2), holder_bit(ProcessId{2})});
  EXPECT_EQ(log.slice_for(holder_bit(ProcessId{2})).size(), 2u);
  EXPECT_EQ(log.slice_for(holder_bit(ProcessId{3})).size(), 1u);
  EXPECT_EQ(log.slice_for(holder_bit(ProcessId{2}) | holder_bit(ProcessId{3})).size(), 3u);
}

TEST_F(DetLogFixture, ReplayScheduleOrderedAndFiltered) {
  log.record({det(1, 3, 2, 3), holder_bit(ProcessId{2})});
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(4, 1, 2, 2), holder_bit(ProcessId{2})});
  const auto sched = log.replay_schedule(ProcessId{2}, 1);
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched[0].rsn, 2u);
  EXPECT_EQ(sched[1].rsn, 3u);
}

TEST_F(DetLogFixture, MaxSsnPerChannel) {
  log.record({det(1, 5, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(1, 9, 2, 2), holder_bit(ProcessId{2})});
  log.record({det(4, 100, 2, 3), holder_bit(ProcessId{2})});
  EXPECT_EQ(log.max_ssn(ProcessId{1}, ProcessId{2}), 9u);
  EXPECT_EQ(log.max_ssn(ProcessId{4}, ProcessId{2}), 100u);
  EXPECT_EQ(log.max_ssn(ProcessId{7}, ProcessId{2}), 0u);
}

TEST_F(DetLogFixture, PruneDestDropsCoveredReceipts) {
  for (Rsn i = 1; i <= 10; ++i) log.record({det(1, i, 2, i), holder_bit(ProcessId{2})});
  EXPECT_EQ(log.prune_dest(ProcessId{2}, 7), 7u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_FALSE(log.contains(ProcessId{2}, 7));
  EXPECT_TRUE(log.contains(ProcessId{2}, 8));
  // Pruned determinants leave the piggyback path too.
  EXPECT_EQ(log.piggyback_for(ProcessId{5}).size(), 3u);
}

TEST_F(DetLogFixture, UnstableTracksStableFlag) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(1, 2, 2, 2), holder_bit(ProcessId{2}) | kStableHolder});
  const auto u = log.unstable();
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0].rsn, 1u);
  log.add_holders(det(1, 1, 2, 1), kStableHolder);
  EXPECT_TRUE(log.unstable().empty());
}

TEST_F(DetLogFixture, EncodeDecodePreservesEverything) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  log.record({det(3, 4, 5, 6), holder_bit(ProcessId{5}) | kStableHolder});
  BufWriter w;
  log.encode(w);
  BufReader r(w.view());
  DeterminantLog copy = DeterminantLog::decode(r);
  copy.set_propagation_threshold(3);
  EXPECT_EQ(copy.size(), 2u);
  const auto* h = copy.find(ProcessId{5}, 6);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE((h->holders & kStableHolder) != 0);
  EXPECT_EQ(copy.piggyback_for(ProcessId{9}).size(), 1u);  // stable one excluded
}

TEST_F(DetLogFixture, ConflictingDeterminantAborts) {
  log.record({det(1, 1, 2, 1), holder_bit(ProcessId{2})});
  EXPECT_DEATH(log.record({det(9, 9, 2, 1), holder_bit(ProcessId{2})}),
               "conflicting determinants");
}

TEST(SendLogTest, RecordAndFind) {
  SendLog log;
  log.record(ProcessId{1}, 1, to_bytes("a"));
  log.record(ProcessId{1}, 2, to_bytes("b"));
  log.record(ProcessId{2}, 1, to_bytes("c"));
  ASSERT_NE(log.find(ProcessId{1}, 2), nullptr);
  EXPECT_EQ(to_text(*log.find(ProcessId{1}, 2)), "b");
  EXPECT_EQ(log.find(ProcessId{1}, 3), nullptr);
  EXPECT_EQ(log.find(ProcessId{9}, 1), nullptr);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.bytes(), 3u);
}

TEST(SendLogTest, EntriesAfterWatermark) {
  SendLog log;
  for (Ssn s = 1; s <= 5; ++s) log.record(ProcessId{1}, s, Bytes(1));
  const auto entries = log.entries_after(ProcessId{1}, 3);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].ssn, 4u);
  EXPECT_EQ(entries[1].ssn, 5u);
  EXPECT_TRUE(log.entries_after(ProcessId{1}, 5).empty());
  EXPECT_TRUE(log.entries_after(ProcessId{2}, 0).empty());
}

TEST(SendLogTest, PruneDropsCoveredEntries) {
  SendLog log;
  for (Ssn s = 1; s <= 10; ++s) log.record(ProcessId{1}, s, Bytes(2));
  EXPECT_EQ(log.prune(ProcessId{1}, 6), 6u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.bytes(), 8u);
  EXPECT_EQ(log.find(ProcessId{1}, 6), nullptr);
  ASSERT_NE(log.find(ProcessId{1}, 7), nullptr);
  EXPECT_EQ(log.prune(ProcessId{1}, 100), 4u);
  EXPECT_EQ(log.prune(ProcessId{1}, 100), 0u);
}

TEST(SendLogTest, SerdeRoundTrip) {
  SendLog log;
  log.record(ProcessId{1}, 3, to_bytes("x"));
  log.record(ProcessId{2}, 1, to_bytes("yy"));
  BufWriter w;
  log.encode(w);
  BufReader r(w.view());
  const SendLog copy = SendLog::decode(r);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(to_text(*copy.find(ProcessId{2}, 1)), "yy");
}

TEST(SendLogTest, NonMonotonicSsnAborts) {
  SendLog log;
  log.record(ProcessId{1}, 5, Bytes(1));
  EXPECT_DEATH(log.record(ProcessId{1}, 5, Bytes(1)), "strictly increasing");
}

TEST(SendLogTest, ClearResets) {
  SendLog log;
  log.record(ProcessId{1}, 1, Bytes(4));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.bytes(), 0u);
  EXPECT_EQ(log.find(ProcessId{1}, 1), nullptr);
}

}  // namespace
}  // namespace rr::fbl
