// Experiment harness: table formatting and scenario-result plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiments.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "test_util.hpp"

namespace rr::harness {
namespace {

TEST(Table, FormatsAlignedGrid) {
  Table t("demo", {"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| col    | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  // Exactly 3 rule lines: top, below header, bottom.
  std::size_t rules = 0;
  std::istringstream lines(out);
  for (std::string line; std::getline(lines, line);) rules += line.starts_with("+-");
  EXPECT_EQ(rules, 3u);
}

TEST(Table, RowWidthMismatchAborts) {
  Table t("demo", {"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "row width");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::ms(milliseconds(5), 1), "5.0 ms");
  EXPECT_EQ(Table::secs(milliseconds(2500), 2), "2.50 s");
}

TEST(Scenario, FailureFreeRunReportsIdleAndTraffic) {
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(3, 1, recovery::Algorithm::kNonBlocking);
  sc.factory = test::gossip_factory();
  sc.horizon = seconds(3);
  const auto r = run_scenario(sc);
  EXPECT_TRUE(r.idle);
  EXPECT_GT(r.app_delivered, 100u);
  EXPECT_GT(r.app_sent, 100u);
  EXPECT_TRUE(r.recoveries.empty());
  EXPECT_EQ(r.blocked.size(), 3u);
  EXPECT_EQ(r.total_blocked(), 0);
}

TEST(Scenario, CounterAccessorOutlivesCluster) {
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(3, 1, recovery::Algorithm::kNonBlocking);
  sc.factory = test::gossip_factory();
  sc.horizon = seconds(2);
  const auto r = run_scenario(sc);
  EXPECT_GT(r.counter("app.sent"), 0u);
  EXPECT_EQ(r.counter("no.such.counter"), 0u);
}

TEST(Scenario, InspectHookSeesLiveCluster) {
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(3, 1, recovery::Algorithm::kNonBlocking);
  sc.factory = test::gossip_factory();
  sc.horizon = seconds(2);
  bool inspected = false;
  run_scenario(sc, [&](runtime::Cluster& cluster) {
    inspected = true;
    EXPECT_EQ(cluster.pids().size(), 3u);
  });
  EXPECT_TRUE(inspected);
}

TEST(Scenario, MeanLiveBlockedExcludesCrashedProcesses) {
  ScenarioResult r;
  r.blocked = {{ProcessId{0}, milliseconds(10), 1},
               {ProcessId{1}, milliseconds(90), 1},
               {ProcessId{2}, milliseconds(20), 1}};
  const std::vector<CrashEvent> crashes = {{ProcessId{1}, seconds(1)}};
  EXPECT_EQ(r.mean_live_blocked(crashes), milliseconds(15));
  EXPECT_EQ(r.max_blocked(), milliseconds(90));
  EXPECT_EQ(r.total_blocked(), milliseconds(120));
}

TEST(PaperSetupTest, TestbedMatchesCalibration) {
  const auto cfg = PaperSetup::testbed(recovery::Algorithm::kBlocking);
  EXPECT_EQ(cfg.num_processes, 8u);
  EXPECT_EQ(cfg.f, 2u);
  EXPECT_EQ(cfg.algorithm, recovery::Algorithm::kBlocking);
  EXPECT_EQ(cfg.net.base_latency, microseconds(250));
  EXPECT_NEAR(cfg.net.bytes_per_second, 155e6 / 8.0, 1.0);
  EXPECT_EQ(cfg.storage.seek_latency, milliseconds(12));
  EXPECT_EQ(cfg.supervisor_restart_delay, seconds(2));
}

TEST(PaperSetupTest, WorkloadLaunchesOnlyFromSources) {
  const auto factory = PaperSetup::workload(1024, 2);
  auto p0 = factory(ProcessId{0});
  auto p5 = factory(ProcessId{5});
  // Padded snapshots regardless of role.
  EXPECT_GE(p0->snapshot().size(), 1024u);
  EXPECT_GE(p5->snapshot().size(), 1024u);
}

}  // namespace
}  // namespace rr::harness
