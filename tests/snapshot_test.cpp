// Chandy-Lamport snapshots: the algorithm over live clusters, the
// flow-conservation consistency validator, and failure handling.
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "snapshot/snapshot.hpp"
#include "test_util.hpp"

namespace rr::snapshot {
namespace {

using recovery::Algorithm;
using runtime::Cluster;

struct SnapshotFixture : ::testing::Test {
  std::unique_ptr<Cluster> cluster;

  Cluster& make(std::uint32_t n = 4, app::AppFactory factory = test::gossip_factory(),
                std::uint64_t seed = 77) {
    cluster = std::make_unique<Cluster>(
        test::fast_cluster(n, 2, Algorithm::kNonBlocking, seed), std::move(factory));
    cluster->start();
    cluster->run_until(seconds(1));
    return *cluster;
  }

  GlobalSnapshot snap(Cluster& c, ProcessId initiator, std::uint64_t id,
                      Duration patience = seconds(1)) {
    c.node(initiator).start_snapshot(id);
    const Time deadline = c.sim().now() + patience;
    while (c.sim().now() < deadline) {
      c.run_for(milliseconds(5));
      if (auto got = c.node(initiator).take_completed_snapshot()) return *got;
    }
    ADD_FAILURE() << "snapshot did not complete";
    return {};
  }
};

TEST_F(SnapshotFixture, CompletesUnderSteadyTraffic) {
  auto& c = make();
  const auto s = snap(c, ProcessId{0}, 1);
  EXPECT_EQ(s.id, 1u);
  EXPECT_EQ(s.initiator, ProcessId{0});
  EXPECT_EQ(s.cuts.size(), 4u);
  // n(n-1) channels reported (some may be zero and absent from the map).
  EXPECT_LE(s.channels.size(), 12u);
}

TEST_F(SnapshotFixture, SnapshotIsConsistentUnderLoad) {
  auto& c = make(6);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto s = snap(c, ProcessId{static_cast<std::uint32_t>(id % 6)}, id);
    const auto v = s.violations();
    EXPECT_TRUE(v.empty()) << v.front();
    c.run_for(milliseconds(200));
  }
}

TEST_F(SnapshotFixture, CapturesInFlightMessages) {
  // With tokens bouncing constantly, repeated cuts should catch at least
  // one message inside a channel at least once.
  auto& c = make(4, test::gossip_factory(2));
  std::uint64_t captured = 0;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    captured += snap(c, ProcessId{0}, id).in_flight();
    c.run_for(milliseconds(50));
  }
  EXPECT_GT(captured, 0u);
}

TEST_F(SnapshotFixture, QuiescentSystemHasEmptyChannels) {
  auto& c = make(4, test::bank_factory(1, 0));  // tokens die instantly
  c.run_for(seconds(1));
  const auto s = snap(c, ProcessId{2}, 9);
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_TRUE(s.consistent());
}

TEST_F(SnapshotFixture, AnyProcessMayInitiate) {
  auto& c = make();
  const auto s1 = snap(c, ProcessId{3}, 11);
  EXPECT_TRUE(s1.consistent());
  c.run_for(milliseconds(100));
  const auto s2 = snap(c, ProcessId{1}, 12);
  EXPECT_TRUE(s2.consistent());
}

TEST_F(SnapshotFixture, ValidatorDetectsTamperedCut) {
  auto& c = make();
  auto s = snap(c, ProcessId{0}, 13);
  ASSERT_TRUE(s.consistent());
  // Forge one send counter: conservation must break.
  s.cuts[ProcessId{0}].send_seq[ProcessId{1}] += 3;
  EXPECT_FALSE(s.consistent());
  EXPECT_NE(s.violations().front().find("p0->p1"), std::string::npos);
}

TEST_F(SnapshotFixture, SnapshotDuringRecoveryIsRefused) {
  auto& c = make();
  c.node(1u).crash();
  c.run_for(milliseconds(700));  // restored, still recovering
  if (c.node(1u).recovering()) {
    EXPECT_DEATH(c.node(1u).start_snapshot(21), "failure-free");
  }
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
}

TEST_F(SnapshotFixture, CrashOfParticipantAbortsAssembly) {
  auto& c = make();
  c.node(0u).start_snapshot(31);
  c.node(2u).crash();  // participant dies with markers in flight
  c.run_for(seconds(2));
  EXPECT_FALSE(c.node(0u).take_completed_snapshot().has_value());
  // The system itself recovers fine; snapshots are just best-effort.
  c.run_until(seconds(10));
  EXPECT_TRUE(c.all_idle());
  // A fresh snapshot afterwards completes again.
  const auto s = snap(c, ProcessId{0}, 32);
  EXPECT_TRUE(s.consistent());
}

TEST(SnapshotUnit, LocalCutSerdeRoundTrip) {
  LocalCut cut;
  cut.app_hash = 0xfeed;
  cut.rsn = 42;
  cut.send_seq[ProcessId{1}] = 7;
  cut.recv_marks[ProcessId{2}] = 9;
  BufWriter w;
  cut.encode(w);
  BufReader r(w.view());
  const LocalCut back = LocalCut::decode(r);
  EXPECT_EQ(back.app_hash, cut.app_hash);
  EXPECT_EQ(back.rsn, cut.rsn);
  EXPECT_EQ(back.send_seq, cut.send_seq);
  EXPECT_EQ(back.recv_marks, cut.recv_marks);
}

TEST(SnapshotUnit, ConsistencyEquationPerChannel) {
  GlobalSnapshot s;
  s.cuts[ProcessId{0}].send_seq[ProcessId{1}] = 10;
  s.cuts[ProcessId{1}].recv_marks[ProcessId{0}] = 8;
  s.channels[{ProcessId{0}, ProcessId{1}}] = 2;
  EXPECT_TRUE(s.consistent());
  s.channels[{ProcessId{0}, ProcessId{1}}] = 1;
  EXPECT_FALSE(s.consistent());
}

}  // namespace
}  // namespace rr::snapshot
