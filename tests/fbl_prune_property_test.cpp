// Piggyback-pruning equivalence property (DESIGN.md §9): pruning changes
// which determinant *copies* travel, never which receipt orders exist. With
// transit and storage costs made size-independent, a run with pruning on
// and the same run with the un-pruned baseline must produce bit-identical
// delivery sequences and application states — including across crashes and
// recoveries — while the pruned run ships strictly fewer piggyback bytes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "test_util.hpp"
#include "trace/trace.hpp"

namespace rr {
namespace {

using harness::CrashEvent;
using harness::ScenarioConfig;
using recovery::Algorithm;

struct PruneParam {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
  Algorithm alg;
  std::vector<CrashEvent> crashes;
  const char* tag;
};

std::string param_name(const ::testing::TestParamInfo<PruneParam>& info) {
  const auto& p = info.param;
  return std::string(p.tag) + "_seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
         "_f" + std::to_string(p.f) + "_" +
         (p.alg == Algorithm::kNonBlocking ? "nonblocking" : "blocking");
}

/// One (dst, src, ssn, rsn, replayed) tuple per application delivery, in
/// global trace order — the run's observable delivery history.
using Delivery = std::tuple<std::uint32_t, std::uint32_t, Ssn, Rsn, bool>;

struct RunDigest {
  std::vector<Delivery> deliveries;
  std::uint64_t state_hash{0};
  std::uint64_t piggyback_bytes{0};
  std::uint64_t piggyback_dets{0};
  bool history_ok{false};
  bool idle{false};
};

RunDigest run_once(const PruneParam& p, bool prune) {
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(p.n, p.f, p.alg, p.seed);
  sc.cluster.prune_piggyback = prune;
  sc.cluster.enable_trace = true;
  // Equivalence holds for the *order* of events, so make every cost that
  // scales with frame or checkpoint size vanish: a byte then costs < 1 ns
  // of transit and the two runs see identical timings everywhere.
  sc.cluster.net.bytes_per_second = 1e15;
  sc.cluster.storage.bytes_per_second = 1e15;
  sc.factory = test::gossip_factory();
  sc.crashes = p.crashes;
  sc.horizon = seconds(8);
  sc.idle_deadline = seconds(60);

  RunDigest out;
  const auto r = harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    out.history_ok = cluster.check_history().ok;
    for (const auto& te : cluster.trace()->events()) {
      if (const auto* d = std::get_if<trace::DeliverEvent>(&te.event)) {
        out.deliveries.emplace_back(d->dst.value, d->src.value, d->ssn, d->rsn, d->replayed);
      }
    }
  });
  out.state_hash = r.state_hash;
  out.piggyback_bytes = r.piggyback_bytes;
  out.piggyback_dets = r.piggyback_dets;
  out.idle = r.idle;
  return out;
}

class PruneEquivalence : public ::testing::TestWithParam<PruneParam> {};

TEST_P(PruneEquivalence, DeliveredHistoryIsBitIdenticalWithPruningOnAndOff) {
  const PruneParam& p = GetParam();
  const RunDigest pruned = run_once(p, /*prune=*/true);
  const RunDigest unpruned = run_once(p, /*prune=*/false);

  ASSERT_TRUE(pruned.idle);
  ASSERT_TRUE(unpruned.idle);
  EXPECT_TRUE(pruned.history_ok);
  EXPECT_TRUE(unpruned.history_ok);

  // The property itself: same receipt orders, same application outcome.
  EXPECT_EQ(pruned.deliveries, unpruned.deliveries);
  EXPECT_EQ(pruned.state_hash, unpruned.state_hash);

  // Pruning must only ever remove copies. At f = 1 the stability threshold
  // is 2, so a determinant retires from the active set the moment its first
  // piggyback is marked — both modes then ship each copy exactly once and
  // the byte counts coincide. From f >= 2 a determinant stays active across
  // several sends and the un-pruned baseline re-ships it to peers that
  // already hold it, so there the reduction must be strict.
  EXPECT_LE(pruned.piggyback_dets, unpruned.piggyback_dets);
  EXPECT_LE(pruned.piggyback_bytes, unpruned.piggyback_bytes);
  if (p.f >= 2) {
    EXPECT_LT(pruned.piggyback_bytes, unpruned.piggyback_bytes);
  }
}

std::vector<PruneParam> make_grid() {
  std::vector<PruneParam> grid;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Algorithm alg : {Algorithm::kNonBlocking, Algorithm::kBlocking}) {
      grid.push_back({seed, 4, 1, alg, {}, "quiet"});
      grid.push_back({seed,
                      4,
                      1,
                      alg,
                      {{ProcessId{1}, seconds(2) + milliseconds(100 * seed)}},
                      "crash"});
    }
    // f=2 cells: only here does pruning bite (see the test body), and two
    // overlapping crashes make piggyback contents diverge the most — a
    // recovery gathers mid-stream, so equivalence across it is the
    // strongest form of the property.
    for (const Algorithm alg : {Algorithm::kNonBlocking, Algorithm::kBlocking}) {
      grid.push_back({seed, 6, 2, alg, {}, "quiet"});
      grid.push_back({seed,
                      6,
                      2,
                      alg,
                      {{ProcessId{1}, seconds(2)}, {ProcessId{3}, seconds(2) + milliseconds(400)}},
                      "twocrash"});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PruneEquivalence, ::testing::ValuesIn(make_grid()), param_name);

}  // namespace
}  // namespace rr
