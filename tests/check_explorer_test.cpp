// Fault-schedule explorer tests: schedule grammar round-trips, the
// leader-crash-mid-gather scenario across the (n, f) grid, the seeded-bug
// acceptance loop (catch -> shrink -> replay), and matrix coverage.
#include <gtest/gtest.h>

#include "check/explorer.hpp"
#include "check/schedule.hpp"

namespace rr {
namespace {

using check::FaultSchedule;
using check::Injection;
using check::ScheduleExplorer;
using recovery::PhaseId;

Injection crash(std::uint32_t pid, Time at) {
  Injection inj;
  inj.kind = Injection::Kind::kCrashAt;
  inj.victim = ProcessId{pid};
  inj.at = at;
  return inj;
}

Injection pcrash_leader(PhaseId phase, std::uint32_t k) {
  Injection inj;
  inj.kind = Injection::Kind::kPhaseCrash;
  inj.victim = Injection::kFirer;
  inj.phase = phase;
  inj.occurrence = k;
  return inj;
}

// --- schedule grammar ------------------------------------------------------

TEST(FaultScheduleTest, InjectionGrammarRoundTrips) {
  const char* lines[] = {
      "crash:3@2000000000",
      "pcrash:L@gather-started#1",
      "pcrash:2@leader-failover#3+1500000",
      "drop:0-1@4x3",
      "delay:2-3@7x2+400000000",
      "stale:1-2@5+3000000000",
      "sstall:1@2x3+150000000",
      "sstall:0@0x1+40000000",
      "loss:0-1@10000",
      "loss:2-3@1000000",
      "lossburst:1-2@4x5",
      "dup:0-3@2x6",
      "partition:2@1000000000+1500000000",
      "flap:1@1500000000+400000000x3",
      "treecrash:0@1",
      "treecrash:2@1+10000000",
  };
  for (const char* line : lines) {
    Injection inj;
    ASSERT_TRUE(check::parse_injection(line, inj)) << line;
    EXPECT_EQ(check::to_string(inj), line);
  }
}

TEST(FaultScheduleTest, RejectsMalformedInjections) {
  const char* lines[] = {
      "",  "crash:@2",          "crash:1",       "pcrash:L@no-such-phase#1",
      "pcrash:L@gather-started", "drop:0-1@4",   "delay:2-3@7x2",
      "stale:1-2@5",            "crash:1@2extra", "nonsense:1@2",
      "loss:0-1@0",             "loss:0-1@1000001",  // ppm out of range
      "lossburst:1-2@4",        "dup:0-3@2",         // missing window count
      "partition:2@1000",       "partition:2@1000+0",  // missing/zero width
      "flap:1@1500+400",        "flap:1@1500+400x0",   // missing/zero cycles
      "treecrash:@1",           "treecrash:0",         // missing index/occurrence
  };
  for (const char* line : lines) {
    Injection inj;
    EXPECT_FALSE(check::parse_injection(line, inj)) << line;
  }
}

TEST(FaultScheduleTest, NeedsReliableIffFabricDegrading) {
  FaultSchedule s;
  Injection inj;
  ASSERT_TRUE(check::parse_injection("crash:1@2000000000", inj));
  s.injections = {inj};
  EXPECT_FALSE(s.needs_reliable());
  ASSERT_TRUE(check::parse_injection("drop:0-1@4x3", inj));
  s.injections.push_back(inj);
  EXPECT_FALSE(s.needs_reliable());  // schedule drops are the perfect-fabric kind
  for (const char* line : {"loss:0-1@10000", "lossburst:1-2@4x5", "dup:0-3@2x6",
                           "partition:2@1000000000+1500000000",
                           "flap:1@1500000000+400000000x3"}) {
    ASSERT_TRUE(check::parse_injection(line, inj));
    FaultSchedule lossy;
    lossy.injections = {inj};
    EXPECT_TRUE(lossy.needs_reliable()) << line;
  }
}

TEST(FaultScheduleTest, ScheduleLineRoundTrips) {
  FaultSchedule s;
  s.n = 8;
  s.f = 2;
  s.algorithm = recovery::Algorithm::kBlocking;
  s.seed = 42;
  s.horizon = seconds(7);
  s.idle_deadline = seconds(55);
  s.restart = milliseconds(2500);
  s.seeded_bug = true;
  s.arity = 4;
  s.tokens = 8;
  s.injections = {crash(1, seconds(2)), pcrash_leader(PhaseId::kGatherStarted, 1)};

  FaultSchedule parsed;
  ASSERT_TRUE(FaultSchedule::parse(s.format(), parsed)) << s.format();
  EXPECT_EQ(parsed, s);
  EXPECT_EQ(parsed.arity, 4u);
  EXPECT_EQ(parsed.tokens, 8u);

  // The printed repro line (with the --replay prefix) parses back too.
  ASSERT_TRUE(FaultSchedule::parse(s.replay_line(), parsed));
  EXPECT_EQ(parsed, s);
}

TEST(FaultScheduleTest, ParseRejectsGarbage) {
  FaultSchedule s;
  EXPECT_FALSE(FaultSchedule::parse("", s));
  EXPECT_FALSE(FaultSchedule::parse("seed=1,n=4,f=2", s));  // no schedule=
  EXPECT_FALSE(FaultSchedule::parse("seed=1,n=2,f=4,alg=nonblocking,schedule=", s));
  EXPECT_FALSE(FaultSchedule::parse("seed=1,n=4,f=2,alg=quantum,schedule=", s));
  EXPECT_FALSE(FaultSchedule::parse("seed=1,n=4,f=2,alg=nonblocking,schedule=bogus:1", s));
}

// --- leader crash mid-gather across the grid -------------------------------

struct GridParam {
  std::uint32_t n;
  std::uint32_t f;
};

class LeaderCrashGrid : public ::testing::TestWithParam<GridParam> {};

// The round leader crashes mid-gather. With f == 1 it is killed at its
// first gather start and simply re-elects itself at a higher ordinal after
// restarting. With f >= 2 a concurrent crash rides along: the first gather
// awaits the concurrently-dead process, whose re-registration forces a
// gather restart; the restarted gather's leader is then killed and — with
// the restart delay stretched past the detector timeout so its silence is
// long enough to be *suspected* — the surviving recoverer takes over at
// the next ordinal (leader-failover). Either way recovery terminates and
// the full trace satisfies V1-V8.
TEST_P(LeaderCrashGrid, MidGatherLeaderCrashFailsOverAndTerminates) {
  const GridParam p = GetParam();
  FaultSchedule s;
  s.n = p.n;
  s.f = p.f;
  s.seed = 7;
  s.injections.push_back(crash(1, seconds(2)));
  if (p.f >= 2) {
    s.restart = milliseconds(2500);  // > detector timeout: suspicion possible
    s.injections.push_back(crash(2, milliseconds(2300)));
    s.injections.push_back(pcrash_leader(PhaseId::kGatherStarted, 2));
  } else {
    s.injections.push_back(pcrash_leader(PhaseId::kGatherStarted, 1));
  }

  const check::RunOutcome o = ScheduleExplorer::run(s);
  EXPECT_TRUE(o.terminated) << o.brief();
  EXPECT_TRUE(o.check.ok) << o.brief();
  EXPECT_GE(o.recoveries, 1u);

  const auto count = [&o](PhaseId id) {
    return o.phase_count[static_cast<std::size_t>(id)];
  };
  // The gather that was cut short ran again: at least two gather starts.
  EXPECT_GE(count(PhaseId::kGatherStarted), 2u);
  // Leadership was re-established after the crash (self re-election at a
  // higher ordinal, or a failover takeover by the concurrent recoverer).
  EXPECT_GE(count(PhaseId::kLeaderElected) + count(PhaseId::kLeaderFailover), 2u);
  if (p.f >= 2) {
    // The survivor stepped over the dead leader's live lower ordinal.
    EXPECT_GE(count(PhaseId::kLeaderFailover), 1u);
    // And the concurrent failure forced at least one gather restart.
    EXPECT_GE(o.gather_restarts, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeaderCrashGrid,
                         ::testing::Values(GridParam{4, 1}, GridParam{4, 2},
                                           GridParam{8, 1}, GridParam{8, 2}),
                         [](const ::testing::TestParamInfo<GridParam>& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.f);
                         });

// --- determinism & the seeded-bug acceptance loop --------------------------

TEST(ScheduleExplorerTest, RunIsDeterministicInTheSchedule) {
  FaultSchedule s;
  s.n = 4;
  s.f = 2;
  s.seed = 11;
  s.injections = {crash(0, seconds(2)), pcrash_leader(PhaseId::kIncVectorBuilt, 1)};
  const check::RunOutcome a = ScheduleExplorer::run(s);
  const check::RunOutcome b = ScheduleExplorer::run(s);
  EXPECT_EQ(a.state_hash, b.state_hash);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.phase_events, b.phase_events);
  EXPECT_EQ(a.check.ok, b.check.ok);
}

TEST(ScheduleExplorerTest, SeededBugIsCaughtShrunkAndReplayable) {
  check::ExploreOptions opt;
  opt.seed_bug = true;
  opt.seeds_per_cell = 2;
  opt.shrink_budget = 16;
  const check::ExploreResult r = ScheduleExplorer::explore(opt);

  ASSERT_GE(r.failures, 1u) << "seeded skip-gather-restart bug escaped the explorer";
  EXPECT_FALSE(r.first_outcome.ok());

  // The shrunk schedule still fails, is no bigger than the original, and
  // its printed --replay line round-trips to the identical schedule.
  EXPECT_FALSE(r.shrunk_outcome.ok()) << r.shrunk_outcome.brief();
  EXPECT_LE(r.shrunk.injections.size(), r.first_failure.injections.size());
  FaultSchedule replayed;
  ASSERT_TRUE(FaultSchedule::parse(r.replay, replayed)) << r.replay;
  EXPECT_EQ(replayed, r.shrunk);
  // Re-executing the parsed line reproduces the failure bit-identically.
  const check::RunOutcome again = ScheduleExplorer::run(replayed);
  EXPECT_EQ(again.ok(), r.shrunk_outcome.ok());
  EXPECT_EQ(again.state_hash, r.shrunk_outcome.state_hash);

  // The same minimal schedule with the bug disarmed passes: the failure is
  // the bug's, not the schedule's.
  FaultSchedule healthy = r.shrunk;
  healthy.seeded_bug = false;
  EXPECT_TRUE(ScheduleExplorer::run(healthy).ok());
}

TEST(ScheduleExplorerTest, MatrixCoversAtLeastTenThousandSchedules) {
  const auto schedules = ScheduleExplorer::matrix(check::ExploreOptions{});
  EXPECT_GE(schedules.size(), 10000u);
  // The grown matrix must exercise the new fault coordinates: correlated
  // multi-node crashes (two crash injections in one schedule), cascading
  // leader failovers (pcrash depth >= 2), storage stalls, and the
  // unreliable-fabric families (loss/partition/flap).
  std::size_t correlated = 0, cascading = 0, storage = 0, unreliable = 0;
  for (const auto& s : schedules) {
    std::size_t crashes = 0, failovers = 0;
    for (const auto& inj : s.injections) {
      if (inj.kind == Injection::Kind::kCrashAt) ++crashes;
      if (inj.kind == Injection::Kind::kPhaseCrash) ++failovers;
      if (inj.kind == Injection::Kind::kStall) ++storage;
    }
    if (crashes >= 2) ++correlated;
    if (failovers >= 2) ++cascading;
    if (s.needs_reliable()) ++unreliable;
  }
  EXPECT_GT(correlated, 0u);
  EXPECT_GT(cascading, 0u);
  EXPECT_GT(storage, 0u);
  EXPECT_GT(unreliable, 0u);
  // Every generated schedule round-trips through its replay line.
  for (std::size_t i = 0; i < schedules.size(); i += 97) {
    FaultSchedule parsed;
    ASSERT_TRUE(FaultSchedule::parse(schedules[i].format(), parsed));
    EXPECT_EQ(parsed, schedules[i]);
  }
}

TEST(ScheduleExplorerTest, UnreliableFilterSelectsOnlyLossySchedules) {
  check::ExploreOptions opt;
  opt.unreliable_only = true;
  opt.seeds_per_cell = 1;
  const auto schedules = ScheduleExplorer::matrix(opt);
  ASSERT_GT(schedules.size(), 0u);
  for (const auto& s : schedules) EXPECT_TRUE(s.needs_reliable()) << s.format();
}

TEST(ScheduleExplorerTest, ScaleFilterSelectsOnlyGatherTreeSchedules) {
  check::ExploreOptions opt;
  opt.scale_only = true;
  opt.seeds_per_cell = 1;
  const auto schedules = ScheduleExplorer::matrix(opt);
  ASSERT_GT(schedules.size(), 0u);
  std::size_t with_treecrash = 0;
  for (const auto& s : schedules) {
    EXPECT_GT(s.arity, 0u) << s.format();
    for (const auto& inj : s.injections) {
      if (inj.kind == Injection::Kind::kTreeCrash) ++with_treecrash;
    }
  }
  // The slice must actually hit relay nodes, not just set an arity.
  EXPECT_GT(with_treecrash, 0u);
}

// --- unreliable fabric end-to-end ------------------------------------------

// A crash under 10% bystander link loss: the reliable transport must mask
// the loss (no V9 duplicate/gap), recovery must terminate, and the run must
// replay bit-identically — retransmission timers included.
TEST(ScheduleExplorerTest, CrashUnderLinkLossPassesAllOraclesDeterministically) {
  FaultSchedule s;
  s.n = 4;
  s.f = 1;
  s.seed = 3;
  Injection crash_inj = crash(1, seconds(2));
  Injection loss_inj;
  ASSERT_TRUE(check::parse_injection("loss:2-3@100000", loss_inj));
  s.injections = {crash_inj, loss_inj};
  ASSERT_TRUE(s.needs_reliable());

  const check::RunOutcome a = ScheduleExplorer::run(s);
  EXPECT_TRUE(a.ok()) << a.brief();
  EXPECT_EQ(a.recoveries, 1u);
  EXPECT_GT(a.injections_applied, 1u);  // the loss draws actually fired
  const check::RunOutcome b = ScheduleExplorer::run(s);
  EXPECT_EQ(a.state_hash, b.state_hash);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.injections_applied, b.injections_applied);
}

// A partition that rises while the victim's peer is recovering: the gather
// round stalls (it must await the partitioned determinant holder, not skip
// it) and completes after the heal, within the idle deadline.
TEST(ScheduleExplorerTest, PartitionDuringRecoveryHealsAndTerminates) {
  FaultSchedule s;
  s.n = 4;
  s.f = 1;
  s.seed = 5;
  Injection part;
  ASSERT_TRUE(check::parse_injection("partition:2@2200000000+1500000000", part));
  s.injections = {crash(1, seconds(2)), part};
  const check::RunOutcome o = ScheduleExplorer::run(s);
  EXPECT_TRUE(o.ok()) << o.brief();
  EXPECT_EQ(o.recoveries, 1u);
}

}  // namespace
}  // namespace rr
