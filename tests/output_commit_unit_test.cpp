// OutputCommitManager driven by scripted hooks: barrier computation, push
// targeting, ack handling, ordering and crash semantics — without a
// cluster.
#include <gtest/gtest.h>

#include <vector>

#include "recovery/output_commit.hpp"

namespace rr::recovery {
namespace {

constexpr ProcessId kSelf{0};

struct Harness {
  sim::Simulator sim;
  metrics::Registry metrics;
  fbl::DeterminantLog log;
  std::vector<std::pair<ProcessId, DetPush>> pushes;
  std::vector<std::pair<std::uint64_t, Bytes>> released;
  int flushes = 0;
  std::set<ProcessId> suspected;
  std::unique_ptr<OutputCommitManager> mgr;

  explicit Harness(std::uint32_t f = 2, bool stable = false) {
    log.set_propagation_threshold(static_cast<int>(f) + 1);
    mgr = std::make_unique<OutputCommitManager>(
        sim, kSelf, f, stable,
        OutputCommitManager::Hooks{
            .send_ctrl =
                [this](ProcessId to, const ControlMessage& m) {
                  if (const auto* p = std::get_if<DetPush>(&m)) pushes.emplace_back(to, *p);
                },
            .det_log = [this]() -> const fbl::DeterminantLog& { return log; },
            .add_holders =
                [this](const fbl::Determinant& d, fbl::HolderMask extra) {
                  log.add_holders(d, extra);
                },
            .peers =
                [] {
                  return std::vector<ProcessId>{ProcessId{1}, ProcessId{2}, ProcessId{3},
                                                ProcessId{4}};
                },
            .is_suspected = [this](ProcessId p) { return suspected.contains(p); },
            .force_flush = [this] { ++flushes; },
            .release =
                [this](std::uint64_t id, const Bytes& payload) {
                  released.emplace_back(id, payload);
                },
        },
        metrics);
  }

  fbl::Determinant my_receipt(Rsn rsn) {
    fbl::Determinant d{ProcessId{1}, rsn, kSelf, rsn};
    log.record({d, fbl::holder_bit(kSelf)});
    return d;
  }
};

TEST(OutputCommitUnit, EmptyBarrierReleasesSynchronously) {
  Harness h;
  const auto id = h.mgr->commit(to_bytes("free"));
  EXPECT_EQ(id, 1u);
  ASSERT_EQ(h.released.size(), 1u);
  EXPECT_EQ(h.released[0].first, 1u);
  EXPECT_TRUE(h.pushes.empty());
}

TEST(OutputCommitUnit, PushesToExactlyMissingHolders) {
  Harness h(2);
  (void)h.my_receipt(1);  // holders: {self} -> needs 2 more for f+1 = 3
  h.mgr->commit(to_bytes("guarded"));
  EXPECT_TRUE(h.released.empty());
  ASSERT_EQ(h.pushes.size(), 2u);
  EXPECT_EQ(h.pushes[0].first, ProcessId{1});
  EXPECT_EQ(h.pushes[1].first, ProcessId{2});
}

TEST(OutputCommitUnit, ReleasesAfterAllAcks) {
  Harness h(2);
  (void)h.my_receipt(1);
  h.mgr->commit(to_bytes("guarded"));
  h.mgr->on_ack(h.pushes[0].first, DetAck{h.pushes[0].second.seq});
  EXPECT_TRUE(h.released.empty());  // 2 of 3 holders so far
  h.mgr->on_ack(h.pushes[1].first, DetAck{h.pushes[1].second.seq});
  ASSERT_EQ(h.released.size(), 1u);
  EXPECT_EQ(to_text(h.released[0].second), "guarded");
  EXPECT_EQ(h.mgr->pending(), 0u);
}

TEST(OutputCommitUnit, BogusAcksIgnored) {
  Harness h(2);
  (void)h.my_receipt(1);
  h.mgr->commit(to_bytes("guarded"));
  h.mgr->on_ack(ProcessId{9}, DetAck{h.pushes[0].second.seq});  // wrong peer
  h.mgr->on_ack(h.pushes[0].first, DetAck{999});                // wrong seq
  EXPECT_TRUE(h.released.empty());
}

TEST(OutputCommitUnit, SuspectedPeersSkipped) {
  Harness h(2);
  h.suspected = {ProcessId{1}, ProcessId{2}};
  (void)h.my_receipt(1);
  h.mgr->commit(to_bytes("guarded"));
  ASSERT_EQ(h.pushes.size(), 2u);
  EXPECT_EQ(h.pushes[0].first, ProcessId{3});
  EXPECT_EQ(h.pushes[1].first, ProcessId{4});
}

TEST(OutputCommitUnit, OutputsReleaseInCommitOrder) {
  Harness h(2);
  (void)h.my_receipt(1);
  h.mgr->commit(to_bytes("first"));
  h.mgr->commit(to_bytes("second"));  // barrier already satisfied? no: same det
  h.mgr->on_ack(h.pushes[0].first, DetAck{h.pushes[0].second.seq});
  h.mgr->on_ack(h.pushes[1].first, DetAck{h.pushes[1].second.seq});
  ASSERT_EQ(h.released.size(), 2u);
  EXPECT_EQ(to_text(h.released[0].second), "first");
  EXPECT_EQ(to_text(h.released[1].second), "second");
}

TEST(OutputCommitUnit, RetryTimerRepushesAfterSilence) {
  Harness h(2);
  (void)h.my_receipt(1);
  h.mgr->commit(to_bytes("guarded"));
  const auto first_targets = h.pushes.size();
  ASSERT_EQ(first_targets, 2u);
  // Nobody acks; mark the original targets suspected so the retry pivots.
  h.suspected = {h.pushes[0].first, h.pushes[1].first};
  h.sim.run_until(milliseconds(250));
  // Two replacement holders recruited from the remaining peers.
  ASSERT_EQ(h.pushes.size(), first_targets + 2);
  EXPECT_EQ(h.pushes[first_targets].first, ProcessId{3});
  EXPECT_EQ(h.pushes[first_targets + 1].first, ProcessId{4});
}

TEST(OutputCommitUnit, StableInstanceUsesFlush) {
  Harness h(4, /*stable=*/true);
  const auto d = h.my_receipt(1);
  h.mgr->commit(to_bytes("durable"));
  EXPECT_GE(h.flushes, 1);
  EXPECT_TRUE(h.pushes.empty());
  // Flush completion marks the determinant stable; the manager re-pumps.
  h.log.add_holders(d, fbl::kStableHolder);
  h.mgr->on_stability_changed();
  ASSERT_EQ(h.released.size(), 1u);
}

TEST(OutputCommitUnit, ResetDropsQueueAndRestartsIds) {
  Harness h(2);
  (void)h.my_receipt(1);
  EXPECT_EQ(h.mgr->commit(to_bytes("doomed")), 1u);
  EXPECT_EQ(h.mgr->pending(), 1u);
  h.mgr->reset();
  EXPECT_EQ(h.mgr->pending(), 0u);
  EXPECT_TRUE(h.released.empty());
  EXPECT_EQ(h.metrics.counter_value("output.lost_to_crash"), 1u);
  // Deterministic regeneration re-assigns the same id.
  EXPECT_EQ(h.mgr->commit(to_bytes("doomed")), 1u);
}

TEST(OutputCommitUnit, PrunedBarrierCountsAsStable) {
  Harness h(2);
  const auto d = h.my_receipt(1);
  h.mgr->commit(to_bytes("guarded"));
  EXPECT_TRUE(h.released.empty());
  // The destination (self) checkpoints past the receipt: pruned = durable.
  h.log.prune_dest(kSelf, d.rsn);
  h.mgr->on_stability_changed();
  EXPECT_EQ(h.released.size(), 1u);
}

}  // namespace
}  // namespace rr::recovery
