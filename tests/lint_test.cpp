// rrlint rule coverage: one positive (fires) and one negative (stays quiet)
// fixture per rule id, suppression semantics, and a self-check that the
// analyzer parses and passes the real tree it polices.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"

#ifndef RR_SOURCE_ROOT
#error "lint_test needs RR_SOURCE_ROOT pointing at the repo checkout"
#endif

namespace rr::lint {
namespace {

using Fixture = std::pair<std::string, std::string>;

std::vector<Diagnostic> lint_files(std::vector<Fixture> files) {
  Linter l;
  for (auto& [path, content] : files) l.add_file(path, std::move(content));
  return l.run();
}

std::size_t count_rule(const std::vector<Diagnostic>& ds, RuleId id) {
  return static_cast<std::size_t>(
      std::count_if(ds.begin(), ds.end(), [&](const Diagnostic& d) { return d.rule == id; }));
}

// ---------------------------------------------------------------- D rules

TEST(LintD1, FlagsBannedPrimitive) {
  const auto ds = lint_files({{"src/sim/fix.cpp",
                               "#include <random>\n"
                               "int roll() { std::mt19937 gen(7); return (int)gen(); }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD1BannedCall), 1u);
}

TEST(LintD1, FlagsCallFormOnlyWhenCalled) {
  const auto pos = lint_files(
      {{"src/sim/fix.cpp", "#include <ctime>\nlong now() { return std::time(nullptr); }\n"}});
  EXPECT_EQ(count_rule(pos, RuleId::kD1BannedCall), 1u);
  // `time` as a plain variable name is not a call of the banned primitive.
  const auto neg = lint_files({{"src/sim/fix.cpp", "long f(long time) { return time + 1; }\n"}});
  EXPECT_EQ(count_rule(neg, RuleId::kD1BannedCall), 0u);
}

TEST(LintD1, RngWhitelistIsExempt) {
  const auto ds = lint_files({{"src/common/rng.hpp",
                               "#include <random>\n"
                               "struct Rng { std::mt19937_64 engine; };\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD1BannedCall), 0u);
}

TEST(LintD2, FlagsUnorderedIterationInSimVisibleModule) {
  const auto ds = lint_files({{"src/net/fix.hpp",
                               "#include <unordered_map>\n"
                               "struct S {\n"
                               "  std::unordered_map<int, int> m_;\n"
                               "  int sum() { int t = 0; for (auto& kv : m_) t += kv.second;"
                               " return t; }\n"
                               "};\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD2UnorderedIteration), 1u);
}

TEST(LintD2, OrderedMapAndHarnessModulesAreQuiet) {
  // std::map iterates deterministically: no diagnostic.
  const auto ordered = lint_files({{"src/net/fix.hpp",
                                    "#include <map>\n"
                                    "struct S {\n"
                                    "  std::map<int, int> m_;\n"
                                    "  int sum() { int t = 0; for (auto& kv : m_)"
                                    " t += kv.second; return t; }\n"
                                    "};\n"}});
  EXPECT_EQ(count_rule(ordered, RuleId::kD2UnorderedIteration), 0u);
  // check/ reconciles results deterministically itself; out of D2 scope.
  const auto harness = lint_files({{"src/check/fix.hpp",
                                    "#include <unordered_map>\n"
                                    "struct S {\n"
                                    "  std::unordered_map<int, int> m_;\n"
                                    "  int sum() { int t = 0; for (auto& kv : m_)"
                                    " t += kv.second; return t; }\n"
                                    "};\n"}});
  EXPECT_EQ(count_rule(harness, RuleId::kD2UnorderedIteration), 0u);
}

TEST(LintD3, FlagsPointerKeyedContainer) {
  const auto ds = lint_files(
      {{"src/fbl/fix.hpp", "#include <map>\nstruct W;\nstd::map<W*, int> g_by_ptr;\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD3PointerKeyedContainer), 1u);
}

TEST(LintD3, PointerValuesAreFine) {
  const auto ds = lint_files(
      {{"src/fbl/fix.hpp", "#include <map>\nstruct W;\nconst std::map<int, W*> g_by_id;\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD3PointerKeyedContainer), 0u);
}

TEST(LintD4, FlagsAddressAsValue) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <cstdint>\n"
                               "std::uintptr_t tag(void* p) { return (std::uintptr_t)p; }\n"}});
  EXPECT_GE(count_rule(ds, RuleId::kD4AddressAsValue), 1u);
}

TEST(LintD4, PlainIntegersAreFine) {
  const auto ds = lint_files(
      {{"src/fbl/fix.cpp", "#include <cstdint>\nstd::uint64_t twice(std::uint64_t x)"
                           " { return 2 * x; }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kD4AddressAsValue), 0u);
}

// ---------------------------------------------------------------- G rules

TEST(LintG1, FlagsNamespaceScopeMutable) {
  const auto ds =
      lint_files({{"src/fbl/fix.cpp", "namespace rr {\nint g_counter = 0;\n}  // namespace rr\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kG1GlobalMutable), 1u);
}

TEST(LintG1, ConstAtomicThreadLocalAreExempt) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <atomic>\n"
                               "namespace rr {\n"
                               "constexpr int kMax = 4;\n"
                               "const char* const kName = \"rr\";\n"
                               "std::atomic<int> g_level{0};\n"
                               "thread_local int g_depth = 0;\n"
                               "}  // namespace rr\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kG1GlobalMutable), 0u);
}

TEST(LintG2, FlagsFunctionLocalStaticMutable) {
  const auto ds =
      lint_files({{"src/fbl/fix.cpp", "int next() {\n  static int n = 0;\n  return ++n;\n}\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kG2LocalStaticMutable), 1u);
}

TEST(LintG2, LocalStaticConstIsExempt) {
  const auto ds = lint_files(
      {{"src/fbl/fix.cpp", "int pick() {\n  static const int k = 3;\n  return k;\n}\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kG2LocalStaticMutable), 0u);
}

// ---------------------------------------------------------------- S rules

TEST(LintS1, FlagsUnpairedCodec) {
  const auto ds = lint_files(
      {{"src/fbl/fix.hpp", "struct BufWriter;\ninline void encode_foo(BufWriter& w) {}\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS1UnpairedCodec), 1u);
}

TEST(LintS1, PairedCodecIsQuiet) {
  const auto ds = lint_files({{"src/fbl/fix.hpp",
                               "struct BufWriter;\nstruct BufReader;\n"
                               "inline void encode_foo(BufWriter& w) {}\n"
                               "inline int decode_foo(BufReader& r) { return 0; }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS1UnpairedCodec), 0u);
}

TEST(LintS2, FlagsRawMemoryInCodecBody) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <cstring>\n"
                               "struct BufWriter;\nstruct BufReader;\n"
                               "void encode_foo(BufWriter& w, const int& x) {\n"
                               "  char buf[4];\n"
                               "  std::memcpy(buf, &x, 4);\n"
                               "}\n"
                               "int decode_foo(BufReader& r) { return 0; }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS2RawMemoryInCodec), 1u);
}

TEST(LintS2, RawMemoryOutsideCodecsIsQuiet) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <cstring>\n"
                               "void blank(char* dst) { std::memset(dst, 0, 8); }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS2RawMemoryInCodec), 0u);
}

TEST(LintS3, FlagsDecodeWithoutBufReader) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "struct BufWriter;\n"
                               "void encode_foo(BufWriter& w) {}\n"
                               "int decode_foo(const char* raw) { return raw[0]; }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS3UnguardedDecode), 1u);
}

TEST(LintS3, BufReaderDecodeIsQuiet) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "struct BufWriter;\nstruct BufReader;\n"
                               "void encode_foo(BufWriter& w) {}\n"
                               "int decode_foo(BufReader& r) { return 0; }\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kS3UnguardedDecode), 0u);
}

// ---------------------------------------------------------------- L rules

TEST(LintL1, FlagsUpwardInclude) {
  // common (rank 0) reaching up into sim (rank 1).
  const auto ds =
      lint_files({{"src/common/fix.hpp", "#include \"sim/simulator.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL1UpwardInclude), 1u);
}

TEST(LintL1, DownwardIncludeIsQuiet) {
  const auto ds = lint_files({{"src/sim/fix.hpp", "#include \"common/types.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL1UpwardInclude), 0u);
}

TEST(LintL1, FlagsObsReachingIntoRecoveryOrNet) {
  // The cost ledger's layering contract: obs (rank 3) parses recovery's
  // wire formats but must never include recovery (rank 5) or net (rank 4).
  const auto ds = lint_files({{"src/obs/fix.hpp",
                               "#include \"recovery/messages.hpp\"\n"
                               "#include \"net/reliable.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL1UpwardInclude), 2u);
}

TEST(LintL1, ObsUsingFblAndMetricsIsQuiet) {
  const auto ds = lint_files({{"src/obs/fix.hpp",
                               "#include \"fbl/frame.hpp\"\n"
                               "#include \"metrics/registry.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL1UpwardInclude), 0u);
}

TEST(LintL2, FlagsIncludeCycle) {
  const auto ds = lint_files({{"src/fbl/a.hpp", "#include \"fbl/b.hpp\"\nstruct A {};\n"},
                              {"src/fbl/b.hpp", "#include \"fbl/a.hpp\"\nstruct B {};\n"}});
  EXPECT_GE(count_rule(ds, RuleId::kL2IncludeCycle), 1u);
}

TEST(LintL2, AcyclicIncludesAreQuiet) {
  const auto ds = lint_files({{"src/fbl/a.hpp", "#include \"fbl/b.hpp\"\nstruct A {};\n"},
                              {"src/fbl/b.hpp", "struct B {};\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL2IncludeCycle), 0u);
}

TEST(LintL3, FlagsUnknownModule) {
  const auto ds = lint_files({{"src/fbl/fix.hpp", "#include \"plasma/widget.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL3UnknownModule), 1u);
}

TEST(LintL3, KnownModulesAreQuiet) {
  const auto ds = lint_files({{"src/fbl/fix.hpp", "#include \"common/types.hpp\"\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kL3UnknownModule), 0u);
}

// ------------------------------------------------------------- suppressions

TEST(LintA1, FlagsUnjustifiedSuppression) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <cstdint>\n"
                               "// rrlint: allow(D4)\n"
                               "std::uintptr_t g_tag = 0;\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kA1BadSuppression), 1u);
  // The unjustified allow silences nothing.
  EXPECT_GE(count_rule(ds, RuleId::kD4AddressAsValue), 1u);
}

TEST(LintA1, FlagsUnknownRuleName) {
  const auto ds = lint_files(
      {{"src/fbl/fix.cpp", "// rrlint: allow(Z9): there is no rule Z9\nint f();\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kA1BadSuppression), 1u);
}

TEST(LintA1, JustifiedSuppressionIsQuiet) {
  const auto ds = lint_files(
      {{"src/fbl/fix.cpp", "int f();  // rrlint: allow(D4): nothing here anyway\n"}});
  EXPECT_EQ(count_rule(ds, RuleId::kA1BadSuppression), 0u);
}

TEST(LintSuppression, JustifiedAllowSilencesOwnAndNextLine) {
  Linter inline_form;
  inline_form.add_file("src/fbl/fix.cpp",
                       "#include <cstdint>\n"
                       "std::uintptr_t g_a = 0;  // rrlint: allow(D4,G1): interop tag for mmap\n");
  EXPECT_EQ(count_rule(inline_form.run(), RuleId::kD4AddressAsValue), 0u);
  EXPECT_GE(inline_form.stats().suppressed, 1u);

  Linter own_line;
  own_line.add_file("src/fbl/fix.cpp",
                    "#include <cstdint>\n"
                    "// rrlint: allow(D4,G1): interop tag for mmap\n"
                    "std::uintptr_t g_b = 0;\n");
  EXPECT_EQ(count_rule(own_line.run(), RuleId::kD4AddressAsValue), 0u);
  EXPECT_GE(own_line.stats().suppressed, 1u);
}

TEST(LintSuppression, AllowDoesNotReachPastNextLine) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "#include <cstdint>\n"
                               "// rrlint: allow(D4): too far away\n"
                               "int unrelated;\n"
                               "std::uintptr_t g_c = 0;\n"}});
  EXPECT_GE(count_rule(ds, RuleId::kD4AddressAsValue), 1u);
}

TEST(LintSuppression, A1IsNeverSuppressible) {
  const auto ds = lint_files({{"src/fbl/fix.cpp",
                               "// rrlint: allow(A1): trying to hide the next line\n"
                               "// rrlint: allow(D4)\n"
                               "int f();\n"}});
  EXPECT_GE(count_rule(ds, RuleId::kA1BadSuppression), 1u);
}

// ------------------------------------------------------------- rule table

TEST(LintRules, TableAndParserRoundTrip) {
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const auto id = static_cast<RuleId>(i);
    const RuleInfo& info = rule_info(id);
    ASSERT_NE(info.id, nullptr);
    RuleId parsed{};
    EXPECT_TRUE(parse_rule_id(info.id, parsed)) << info.id;
    EXPECT_EQ(parsed, id) << info.id;
  }
  RuleId out{};
  EXPECT_FALSE(parse_rule_id("Z9", out));
}

// ------------------------------------------------------------- self-check

TEST(LintSelfCheck, RealTreeScansWithoutTokenizerErrors) {
  Linter l;
  ASSERT_TRUE(l.add_tree(RR_SOURCE_ROOT, {"src", "tools"}))
      << (l.io_errors().empty() ? "?" : l.io_errors().front());
  const auto ds = l.run();
  for (const FileScan& f : l.files()) {
    EXPECT_TRUE(f.errors.empty()) << f.path << ": " << f.errors.front();
  }
  for (const Diagnostic& d : ds) ADD_FAILURE() << format_diagnostic(d);
  EXPECT_GT(l.stats().files, 50u);  // the walk really found the tree
}

TEST(LintSelfCheck, GraphDotListsModules) {
  Linter l;
  ASSERT_TRUE(l.add_tree(RR_SOURCE_ROOT, {"src"}));
  (void)l.run();
  const std::string dot = l.graph_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("common"), std::string::npos);
  EXPECT_NE(dot.find("recovery"), std::string::npos);
}

}  // namespace
}  // namespace rr::lint
