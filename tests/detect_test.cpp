// Heartbeat failure detector: detection latency bounds, absence of false
// positives under regular heartbeats, and un-suspicion.
#include <gtest/gtest.h>

#include <vector>

#include "detect/failure_detector.hpp"

namespace rr::detect {
namespace {

struct DetectorFixture : ::testing::Test {
  sim::Simulator sim;
  DetectorConfig config{milliseconds(100), milliseconds(500)};
  int beats_sent = 0;
  std::vector<std::pair<ProcessId, bool>> changes;
  std::unique_ptr<FailureDetector> det_;

  FailureDetector& make(ProcessId self = ProcessId{0}) {
    det_ = std::make_unique<FailureDetector>(
        sim, self, config, [this] { ++beats_sent; },
        [this](ProcessId p, bool s) { changes.emplace_back(p, s); });
    det_->set_peers({ProcessId{0}, ProcessId{1}, ProcessId{2}});
    return *det_;
  }
};

TEST_F(DetectorFixture, SendsImmediateAndPeriodicHeartbeats) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(350));
  // t=0 (immediate) plus t=100,200,300.
  EXPECT_EQ(beats_sent, 4);
}

TEST_F(DetectorFixture, SilentPeerSuspectedAfterTimeout) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(1000));
  EXPECT_TRUE(det.suspects(ProcessId{1}));
  EXPECT_TRUE(det.suspects(ProcessId{2}));
  // Suspicion fires after timeout (500 ms), at a sweep boundary.
  ASSERT_FALSE(changes.empty());
  EXPECT_TRUE(changes[0].second);
}

TEST_F(DetectorFixture, HeartbeatsPreventSuspicion) {
  auto& det = make();
  det.start();
  for (int t = 100; t <= 2000; t += 100) {
    sim.schedule_at(milliseconds(t), [&] { det.on_heartbeat(ProcessId{1}); });
  }
  sim.run_until(milliseconds(2000));
  EXPECT_FALSE(det.suspects(ProcessId{1}));
  EXPECT_TRUE(det.suspects(ProcessId{2}));  // p2 stayed silent
}

TEST_F(DetectorFixture, HeartbeatUnsuspects) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(1000));
  ASSERT_TRUE(det.suspects(ProcessId{1}));
  det.on_heartbeat(ProcessId{1});
  EXPECT_FALSE(det.suspects(ProcessId{1}));
  // The change log saw suspect-then-clear for p1.
  bool saw_clear = false;
  for (const auto& [p, s] : changes) {
    if (p == ProcessId{1} && !s) saw_clear = true;
  }
  EXPECT_TRUE(saw_clear);
}

TEST_F(DetectorFixture, SelfIsNeverMonitored) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(2000));
  EXPECT_FALSE(det.suspects(ProcessId{0}));
}

TEST_F(DetectorFixture, UnknownPeerNotSuspected) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(2000));
  EXPECT_FALSE(det.suspects(ProcessId{99}));
  det.on_heartbeat(ProcessId{99});  // ignored, no crash
}

TEST_F(DetectorFixture, SuspectedListSorted) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(1000));
  const auto s = det.suspected();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], ProcessId{1});
  EXPECT_EQ(s[1], ProcessId{2});
}

TEST_F(DetectorFixture, StopFreezesDetection) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(200));
  det.stop();
  sim.run_until(milliseconds(5000));
  EXPECT_FALSE(det.suspects(ProcessId{1}));
  EXPECT_EQ(beats_sent, 3);  // 0, 100, 200
}

TEST_F(DetectorFixture, RestartResetsLivenessClock) {
  auto& det = make();
  det.start();
  sim.run_until(milliseconds(1000));
  EXPECT_TRUE(det.suspects(ProcessId{1}));
  det.stop();
  det.set_peers({ProcessId{0}, ProcessId{1}, ProcessId{2}});
  det.start();
  EXPECT_FALSE(det.suspects(ProcessId{1}));
  sim.run_until(milliseconds(1300));
  EXPECT_FALSE(det.suspects(ProcessId{1}));  // grace period restarted
}

TEST_F(DetectorFixture, DetectionLatencyWithinTimeoutPlusSweep) {
  auto& det = make();
  det.start();
  Time suspected_at = 0;
  // Heartbeats until t=500, then silence.
  for (int t = 100; t <= 500; t += 100) {
    sim.schedule_at(milliseconds(t), [&] { det.on_heartbeat(ProcessId{1}); });
  }
  while (sim.now() < milliseconds(3000) && !det.suspects(ProcessId{1})) {
    sim.run_until(sim.now() + milliseconds(10));
  }
  suspected_at = sim.now();
  // Silence began at 500; suspicion must land in (500+timeout, +sweep].
  EXPECT_GT(suspected_at, milliseconds(1000));
  EXPECT_LE(suspected_at, milliseconds(1000) + config.heartbeat_period + milliseconds(10));
}

}  // namespace
}  // namespace rr::detect
