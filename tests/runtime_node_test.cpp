// Node lifecycle details observed through a live cluster: boot sequencing,
// incarnation persistence, checkpoint machinery, delivery gating and the
// per-recovery timeline bookkeeping.
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "test_util.hpp"

namespace rr::runtime {
namespace {

using recovery::Algorithm;

struct NodeFixture : ::testing::Test {
  std::unique_ptr<Cluster> cluster;

  Cluster& make(std::uint32_t n = 3, std::uint32_t f = 1, std::uint64_t seed = 5,
                Algorithm alg = Algorithm::kNonBlocking) {
    cluster = std::make_unique<Cluster>(test::fast_cluster(n, f, alg, seed),
                                        test::gossip_factory());
    return *cluster;
  }
};

TEST_F(NodeFixture, BootSequencePersistsIncarnationAndCheckpoint) {
  auto& c = make();
  c.start();
  // Before the simulation runs, nodes are alive but not yet started (the
  // initial stable writes are in flight).
  EXPECT_TRUE(c.node(0u).alive());
  EXPECT_FALSE(c.node(0u).started());
  c.run_until(milliseconds(200));
  EXPECT_TRUE(c.node(0u).started());
  EXPECT_EQ(c.node(0u).incarnation(), 1u);
  auto& storage = c.node(0u).stable_storage();
  EXPECT_TRUE(storage.contains("inc/0"));
  EXPECT_FALSE(storage.keys_with_prefix("ckpt/0/").empty());
}

TEST_F(NodeFixture, StartIsBootOnly) {
  auto& c = make();
  c.start();
  c.run_until(milliseconds(200));
  EXPECT_DEATH(c.node(0u).start(), "initial boot");
}

TEST_F(NodeFixture, CrashTakesNodeDarkAndSupervisorRestarts) {
  auto& c = make();
  c.start();
  c.run_until(seconds(2));
  c.node(1u).crash();
  EXPECT_FALSE(c.node(1u).alive());
  EXPECT_FALSE(c.network().is_up(ProcessId{1}));
  // Supervisor delay (600 ms) + restore brings it back as incarnation 2
  // (recovery may already have completed — the backlog is small).
  c.run_until(seconds(2) + milliseconds(900));
  EXPECT_TRUE(c.node(1u).alive());
  EXPECT_TRUE(c.network().is_up(ProcessId{1}));
  EXPECT_EQ(c.node(1u).incarnation(), 2u);
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
  EXPECT_EQ(c.node(1u).recoveries().size(), 1u);
}

TEST_F(NodeFixture, IncarnationSurvivesRepeatedCrashes) {
  auto& c = make();
  c.start();
  for (int round = 0; round < 3; ++round) {
    c.run_for(seconds(3));
    c.node(2u).crash();
  }
  c.run_for(seconds(5));
  EXPECT_EQ(c.node(2u).incarnation(), 4u);  // 1 + three crashes
  EXPECT_TRUE(c.all_idle());
}

TEST_F(NodeFixture, TimelineRecordsAllPhases) {
  auto& c = make();
  c.start();
  c.crash_at(ProcessId{1}, seconds(2));
  c.run_until(seconds(8));
  ASSERT_EQ(c.node(1u).recoveries().size(), 1u);
  const auto& t = c.node(1u).recoveries()[0];
  EXPECT_EQ(t.crashed_at, seconds(2));
  EXPECT_EQ(t.detect(), milliseconds(600));  // supervisor delay
  EXPECT_GT(t.restore(), 0);
  EXPECT_GT(t.gather(), 0);
  EXPECT_GE(t.replay(), 0);
  EXPECT_EQ(t.total(), t.detect() + t.restore() + t.gather() + t.replay());
  EXPECT_GT(t.replayed, 0u);
}

TEST_F(NodeFixture, CheckpointsAreTakenPeriodicallyAndPruned) {
  auto& c = make();
  c.start();
  c.run_until(seconds(9));  // several 2 s checkpoint periods
  EXPECT_GE(c.metrics().counter_value("ckpt.taken"), 6u);
  // The two-slot store keeps one block + pointer per node.
  for (const ProcessId pid : c.pids()) {
    const auto keys =
        c.node(pid).stable_storage().keys_with_prefix("ckpt/" + std::to_string(pid.value));
    EXPECT_LE(keys.size(), 3u);  // block + latest pointer (+ one in flight)
  }
}

TEST_F(NodeFixture, AppSendRequiresStartedProcess) {
  auto& c = make();
  c.start();
  // Still booting (storage writes in flight).
  EXPECT_DEATH(c.node(0u).app_send(ProcessId{1}, Bytes(1)), "started");
}

TEST_F(NodeFixture, ManualAppSendDeliversThroughFullStack) {
  // A quiet workload (bank tokens with ttl 0 die immediately) so the
  // manual injection is the only traffic.
  cluster = std::make_unique<Cluster>(
      test::fast_cluster(3, 1, Algorithm::kNonBlocking, 5), test::bank_factory(1, 0));
  auto& c = *cluster;
  c.start();
  c.run_until(seconds(1));
  const auto before = c.node(1u).app_delivered();
  BufWriter w;
  w.i64(25);  // a bank transfer payload with ttl 0
  w.u32(0);
  c.node(0u).app_send(ProcessId{1}, std::move(w).take());
  c.run_for(milliseconds(50));
  EXPECT_EQ(c.node(1u).app_delivered(), before + 1);
}

TEST_F(NodeFixture, HeartbeatsFlowBetweenNodes) {
  auto& c = make();
  c.start();
  c.run_until(seconds(2));
  // 250 ms heartbeat period, 3 nodes broadcasting for ~1.8 s.
  EXPECT_GT(c.metrics().counter_value("net.packets"), 40u);
  // No one is suspected in a healthy cluster.
  for (const ProcessId pid : c.pids()) {
    EXPECT_FALSE(c.node(pid).recovering());
  }
}

TEST_F(NodeFixture, MalformedFrameCountedNotFatal) {
  auto& c = make();
  c.start();
  c.run_until(milliseconds(200));
  c.network().send(ProcessId{0}, ProcessId{1}, to_bytes("garbage frame"));
  c.run_for(milliseconds(50));
  EXPECT_EQ(c.metrics().counter_value("node.malformed_frames"), 1u);
  EXPECT_TRUE(c.node(1u).alive());
}

TEST_F(NodeFixture, OrdServiceRegistryDrainsAfterRecovery) {
  auto& c = make();
  c.start();
  c.crash_at(ProcessId{1}, seconds(2));
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
  EXPECT_TRUE(c.ord_service().rset().empty());
  EXPECT_EQ(c.ord_service().last_ord(), 1u);
}

TEST_F(NodeFixture, ClusterValidationRejectsBadConfig) {
  ClusterConfig bad = test::fast_cluster(1, 1, Algorithm::kNonBlocking);
  EXPECT_DEATH(Cluster(bad, test::gossip_factory()), "at least two");
  ClusterConfig bad_f = test::fast_cluster(4, 1, Algorithm::kNonBlocking);
  bad_f.f = 5;
  EXPECT_DEATH(Cluster(bad_f, test::gossip_factory()), "f <= n");
}

TEST_F(NodeFixture, StateHashCombinesAllProcesses) {
  auto& c1 = make(3, 1, 5);
  c1.start();
  c1.run_until(seconds(2));
  const auto h1 = c1.state_hash();
  auto& c2 = make(3, 1, 6);  // different seed
  c2.start();
  c2.run_until(seconds(2));
  EXPECT_NE(h1, c2.state_hash());
}

TEST_F(NodeFixture, BlockedTimeVisibleMidRecovery) {
  auto& c = make(3, 1, 5, Algorithm::kBlocking);
  c.start();
  c.crash_at(ProcessId{1}, seconds(2));
  // Stop the clock mid-replay (restore ends ~2.61 s, replay runs ~65 ms):
  // the survivors must be stalled right now.
  c.run_until(seconds(2) + milliseconds(640));
  bool someone_blocked = false;
  for (const ProcessId pid : c.pids()) {
    someone_blocked = someone_blocked || c.node(pid).delivery_blocked();
  }
  EXPECT_TRUE(someone_blocked);
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
  EXPECT_GT(c.total_blocked_time(), 0);
}

}  // namespace
}  // namespace rr::runtime
