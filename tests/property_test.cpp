// Property-based sweeps: randomized crash schedules over a grid of
// (seed, n, f, algorithm), each run checked against the protocol-level
// invariants from DESIGN.md §6 — recovery completes, no receipt order is
// lost within the f budget, the new algorithm never blocks anyone, bank
// conservation holds, and every run is reproducible.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using harness::CrashEvent;
using harness::ScenarioConfig;
using recovery::Algorithm;

struct GridParam {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t f;
  Algorithm alg;
};

std::string param_name(const ::testing::TestParamInfo<GridParam>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) + "_f" +
         std::to_string(p.f) + "_" +
         (p.alg == Algorithm::kNonBlocking ? "nonblocking" : "blocking");
}

/// Deterministic random crash schedule: up to f crashes of distinct
/// processes spread over (2 s, 5 s), sometimes clustered to land inside
/// one another's recovery window.
std::vector<CrashEvent> random_crashes(const GridParam& p) {
  Rng rng(p.seed * 7919 + p.n * 131 + p.f);
  const auto count = 1 + rng.bounded(p.f);
  std::vector<CrashEvent> crashes;
  std::set<std::uint32_t> used;
  Time base = seconds(2) + milliseconds(rng.bounded(1000));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t pid = static_cast<std::uint32_t>(rng.bounded(p.n));
    while (used.contains(pid)) pid = (pid + 1) % p.n;
    used.insert(pid);
    crashes.push_back({ProcessId{pid}, base});
    base += rng.chance(0.5) ? milliseconds(static_cast<std::int64_t>(rng.bounded(900)))
                            : seconds(1) + milliseconds(static_cast<std::int64_t>(
                                               rng.bounded(1500)));
  }
  return crashes;
}

class RecoveryGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(RecoveryGrid, InvariantsHoldUnderRandomCrashSchedule) {
  const GridParam p = GetParam();
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(p.n, p.f, p.alg, p.seed);
  sc.cluster.enable_trace = true;
  sc.factory = test::gossip_factory();
  sc.crashes = random_crashes(p);
  sc.horizon = seconds(10);
  sc.idle_deadline = seconds(120);
  trace::CheckResult history;
  const auto r = harness::run_scenario(
      sc, [&](runtime::Cluster& cluster) { history = cluster.check_history(); });

  // The global history checker validates the paper's §4 properties over
  // the complete execution: send-before-deliver, contiguous receipt
  // orders, exact replay fidelity, and orphan freedom.
  EXPECT_TRUE(history.ok) << history.summary()
                          << (history.violations.empty() ? "" : "\n" + history.violations[0]);
  // Rolling back an *invisible* suffix (receipts whose determinants never
  // left the dead process) is legal — the paper's guarantee covers visible
  // messages only, and V5 above proves no orphan resulted. It should be
  // rare: a handful of receipts in the crash instant, never a storm.
  EXPECT_LE(history.rollbacks, 8u);

  // Liveness: every crash leads to a completed recovery and the system
  // quiesces (abandoned attempts are re-run under a higher incarnation).
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(r.recoveries.size() + r.counter("recovery.abandoned"), sc.crashes.size());

  // Safety: no receipt order was lost (crash count never exceeds f).
  EXPECT_EQ(r.det_gaps, 0u);

  // Non-intrusion: the paper's algorithm never stalls live processes.
  if (p.alg == Algorithm::kNonBlocking) {
    EXPECT_EQ(r.total_blocked(), 0);
  }

  // The workload survives: tokens keep circulating after recovery.
  EXPECT_GT(r.app_delivered, 0u);
}

TEST_P(RecoveryGrid, RunsAreReproducible) {
  const GridParam p = GetParam();
  auto go = [&] {
    ScenarioConfig sc;
    sc.cluster = test::fast_cluster(p.n, p.f, p.alg, p.seed);
    sc.factory = test::gossip_factory();
    sc.crashes = random_crashes(p);
    sc.horizon = seconds(6);
    sc.idle_deadline = seconds(60);
    const auto r = harness::run_scenario(sc);
    return std::tuple{r.state_hash, r.app_delivered, r.ctrl_msgs, r.ctrl_bytes,
                      r.recoveries.size()};
  };
  EXPECT_EQ(go(), go());
}

std::vector<GridParam> make_grid() {
  std::vector<GridParam> grid;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const auto& [n, f] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
             {3, 1}, {4, 2}, {6, 3}}) {
      for (const Algorithm alg : {Algorithm::kNonBlocking, Algorithm::kBlocking}) {
        grid.push_back({seed, n, f, alg});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecoveryGrid, ::testing::ValuesIn(make_grid()), param_name);

// --- bank conservation sweep -------------------------------------------------

class BankGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(BankGrid, ConservationUnderRandomCrashes) {
  const GridParam p = GetParam();
  ScenarioConfig sc;
  sc.cluster = test::fast_cluster(p.n, p.f, p.alg, p.seed);
  sc.factory = test::bank_factory(1, 18'000);
  sc.crashes = random_crashes(p);
  sc.horizon = seconds(10);
  sc.idle_deadline = seconds(120);

  std::int64_t total = 0;
  const auto r = harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    for (const ProcessId pid : cluster.pids()) {
      total += app::unwrap<app::BankApp>(cluster.node(pid).application()).balance();
    }
  });
  EXPECT_TRUE(r.idle);
  EXPECT_EQ(total, static_cast<std::int64_t>(p.n) * 1'000'000);
  EXPECT_EQ(r.det_gaps, 0u);
}

std::vector<GridParam> bank_grid() {
  std::vector<GridParam> grid;
  for (const std::uint64_t seed : {11ull, 12ull}) {
    for (const Algorithm alg : {Algorithm::kNonBlocking, Algorithm::kBlocking}) {
      grid.push_back({seed, 4, 2, alg});
      grid.push_back({seed, 5, 3, alg});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BankGrid, ::testing::ValuesIn(bank_grid()), param_name);

}  // namespace
}  // namespace rr
