// Output commit: outputs are released only once the producing state is
// recoverable, survive nothing they shouldn't, and regenerate exactly once.
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using recovery::Algorithm;
using runtime::Cluster;

struct OutputFixture : ::testing::Test {
  std::unique_ptr<Cluster> cluster;

  Cluster& make(std::uint32_t n = 4, std::uint32_t f = 2, std::uint64_t seed = 9) {
    auto cfg = test::fast_cluster(n, f, Algorithm::kNonBlocking, seed);
    // Quiet workload so holder counts only move when the test moves them.
    cluster = std::make_unique<Cluster>(cfg, test::bank_factory(1, 0));
    cluster->start();
    cluster->run_until(seconds(1));
    return *cluster;
  }
};

TEST_F(OutputFixture, OutputWithEmptyBarrierReleasesImmediately) {
  auto& c = make();
  // No deliveries yet beyond the boot transfers, whose determinants have
  // had ample time to stabilize... commit before any new receipt:
  const std::size_t before = c.node(0u).released_outputs().size();
  c.node(0u).commit_output(to_bytes("hello world"));
  c.run_for(milliseconds(300));
  ASSERT_EQ(c.node(0u).released_outputs().size(), before + 1);
  EXPECT_EQ(to_text(c.node(0u).released_outputs().back().second), "hello world");
}

TEST_F(OutputFixture, UnstableReceiptHoldsOutputUntilPushesAck) {
  auto& c = make();
  // Create a fresh receipt at p0 whose determinant is held only by p0.
  BufWriter w;
  w.i64(5);
  w.u32(0);
  c.node(1u).app_send(ProcessId{0}, std::move(w).take());
  c.run_for(milliseconds(5));

  const auto active_before = c.node(0u).engine().det_log().active_size();
  ASSERT_GT(active_before, 0u);

  c.node(0u).commit_output(to_bytes("guarded"));
  // Not released synchronously: pushes must be acknowledged first.
  EXPECT_EQ(c.node(0u).outputs_pending(), 1u);
  c.run_for(milliseconds(50));
  EXPECT_EQ(c.node(0u).outputs_pending(), 0u);
  EXPECT_EQ(to_text(c.node(0u).released_outputs().back().second), "guarded");
  // Stabilization pushed determinants and got acks.
  EXPECT_GT(c.metrics().counter_value("output.det_pushes"), 0u);
  EXPECT_GT(c.metrics().counter_value("output.det_pushes_served"), 0u);
  // The barrier determinants now sit at f+1 = 3 holders.
  EXPECT_LT(c.node(0u).engine().det_log().active_size(), active_before);
}

TEST_F(OutputFixture, OutputsReleaseInOrder) {
  auto& c = make();
  BufWriter w;
  w.i64(5);
  w.u32(0);
  c.node(1u).app_send(ProcessId{0}, std::move(w).take());
  c.run_for(milliseconds(5));

  c.node(0u).commit_output(to_bytes("first"));   // guarded by the receipt
  c.node(0u).commit_output(to_bytes("second"));  // queued behind it
  c.run_for(milliseconds(100));
  const auto& out = c.node(0u).released_outputs();
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(to_text(out[out.size() - 2].second), "first");
  EXPECT_EQ(to_text(out[out.size() - 1].second), "second");
  EXPECT_LT(out[out.size() - 2].first, out[out.size() - 1].first);
}

TEST_F(OutputFixture, CrashBeforeReleaseDiscardsPendingOutput) {
  auto& c = make();
  BufWriter w;
  w.i64(5);
  w.u32(0);
  c.node(1u).app_send(ProcessId{0}, std::move(w).take());
  c.run_for(milliseconds(5));

  const std::size_t released_before = c.node(0u).released_outputs().size();
  c.node(0u).commit_output(to_bytes("doomed"));
  EXPECT_EQ(c.node(0u).outputs_pending(), 1u);
  c.node(0u).crash();  // before any ack round-trip completes
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
  // The world never saw it; only a re-commit (which this test driver does
  // not perform) would release it.
  EXPECT_EQ(c.node(0u).released_outputs().size(), released_before);
  EXPECT_EQ(c.metrics().counter_value("output.lost_to_crash"), 1u);
}

TEST_F(OutputFixture, StableInstanceReleasesViaFlush) {
  auto& c = make(4, 4);  // f = n: stabilization = stable-storage flush
  BufWriter w;
  w.i64(5);
  w.u32(0);
  c.node(1u).app_send(ProcessId{0}, std::move(w).take());
  c.run_for(milliseconds(2));

  c.node(0u).commit_output(to_bytes("durable"));
  c.run_for(milliseconds(400));  // flush: seek + transfer, then release
  EXPECT_EQ(c.node(0u).outputs_pending(), 0u);
  EXPECT_EQ(to_text(c.node(0u).released_outputs().back().second), "durable");
  EXPECT_GT(c.metrics().counter_value("fbl.dets_flushed"), 0u);
  EXPECT_EQ(c.metrics().counter_value("output.det_pushes"), 0u);  // no push path
}

TEST_F(OutputFixture, ExternalWorldDedupsByOutputId) {
  auto& c = make();
  c.node(0u).commit_output(to_bytes("once"));
  c.run_for(milliseconds(100));
  const std::size_t released = c.node(0u).released_outputs().size();
  // Simulate a deterministic re-commit after a crash: same id again.
  c.node(0u).crash();
  c.run_until(seconds(8));
  EXPECT_TRUE(c.all_idle());
  c.node(0u).commit_output(to_bytes("once"));  // regenerated with id 1
  c.run_for(milliseconds(100));
  EXPECT_EQ(c.node(0u).released_outputs().size(), released);
  EXPECT_EQ(c.metrics().counter_value("output.duplicates_suppressed"), 1u);
}

TEST_F(OutputFixture, PushTargetCrashRetriesElsewhere) {
  auto& c = make(5, 2);
  BufWriter w;
  w.i64(5);
  w.u32(0);
  c.node(1u).app_send(ProcessId{0}, std::move(w).take());
  c.run_for(milliseconds(5));
  // Kill the first push candidate just before the commit so its ack never
  // comes; the retry timer must stabilize through other peers.
  c.node(1u).crash();
  c.node(0u).commit_output(to_bytes("persistent"));
  c.run_until(seconds(10));
  EXPECT_TRUE(c.all_idle());
  EXPECT_EQ(c.node(0u).outputs_pending(), 0u);
  EXPECT_EQ(to_text(c.node(0u).released_outputs().back().second), "persistent");
}

}  // namespace
}  // namespace rr
