// Round-trips generated Perfetto trace_event JSON through the built-in
// structural validator, and exercises the validator's failure modes on
// hand-crafted documents.
#include <gtest/gtest.h>

#include <string>

#include "harness/scenario.hpp"
#include "obs/perfetto.hpp"
#include "obs/span.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using recovery::Algorithm;

std::string traced_scenario_json(std::vector<harness::CrashEvent> crashes) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.cluster.enable_spans = true;
  sc.crashes = std::move(crashes);
  std::string json;
  harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    ASSERT_NE(cluster.spans(), nullptr);
    json = obs::export_trace_event_json(*cluster.spans());
  });
  return json;
}

TEST(ObsPerfetto, GeneratedTraceValidates) {
  const std::string json = traced_scenario_json({{ProcessId{1}, seconds(3)}});
  ASSERT_FALSE(json.empty());
  std::string error;
  EXPECT_TRUE(obs::validate_trace_event_json(json, &error)) << error;
  // The protocol content is present: a recovery slice and per-node
  // metadata records.
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsPerfetto, DoubleFailureTraceValidates) {
  const std::string json = traced_scenario_json(
      {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'700)}});
  std::string error;
  EXPECT_TRUE(obs::validate_trace_event_json(json, &error)) << error;
  EXPECT_NE(json.find("\"regather\""), std::string::npos);
}

TEST(ObsPerfetto, ValidatorAcceptsMinimalDocument) {
  std::string error;
  EXPECT_TRUE(obs::validate_trace_event_json(R"({"traceEvents":[]})", &error)) << error;
  EXPECT_TRUE(obs::validate_trace_event_json(
      R"({"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":1,"ts":0.5,"dur":2,"cat":"p"}]})",
      &error))
      << error;
}

TEST(ObsPerfetto, ValidatorRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(obs::validate_trace_event_json("", &error));
  EXPECT_FALSE(obs::validate_trace_event_json("[1,2,3]", &error));  // not an object
  EXPECT_FALSE(obs::validate_trace_event_json(R"({"traceEvents":[)", &error));
  EXPECT_FALSE(obs::validate_trace_event_json(R"({"traceEvents":[]} trailing)", &error));
  EXPECT_FALSE(obs::validate_trace_event_json(R"({"traceEvents":[{"ph":"X"}]})", &error));
  EXPECT_FALSE(error.empty());
}

TEST(ObsPerfetto, ValidatorRejectsSchemaViolations) {
  std::string error;
  // "X" event without a duration.
  EXPECT_FALSE(obs::validate_trace_event_json(
      R"({"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1,"cat":"p"}]})", &error));
  // Negative duration.
  EXPECT_FALSE(obs::validate_trace_event_json(
      R"({"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1,"dur":-2,"cat":"p"}]})",
      &error));
  // Non-numeric pid.
  EXPECT_FALSE(obs::validate_trace_event_json(
      R"({"traceEvents":[{"name":"a","ph":"X","pid":"x","tid":0,"ts":1,"dur":1,"cat":"p"}]})",
      &error));
  // Metadata event without args.name.
  EXPECT_FALSE(obs::validate_trace_event_json(
      R"({"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,"ts":0,"args":{}}]})",
      &error));
  EXPECT_NE(error.find("args"), std::string::npos);
}

TEST(ObsPerfetto, OpenSpansAreTaggedAndExtended) {
  // Stop at the horizon while a recovery is still in flight: crash late so
  // the run ends mid-recovery and the root stays open.
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.cluster.enable_spans = true;
  sc.crashes = {{ProcessId{1}, milliseconds(7'800)}};
  sc.horizon = seconds(8);
  sc.idle_deadline = seconds(8);
  std::string json;
  bool has_open = false;
  harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    json = obs::export_trace_event_json(*cluster.spans());
    has_open = !cluster.spans()->open_spans(1).empty();
  });
  ASSERT_TRUE(has_open);
  std::string error;
  EXPECT_TRUE(obs::validate_trace_event_json(json, &error)) << error;
  EXPECT_NE(json.find("\"open\":true"), std::string::npos);
}

}  // namespace
}  // namespace rr
