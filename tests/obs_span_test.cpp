// Span-tracer semantics on full cluster runs: phase nesting, restart and
// failover attribution, flight-recorder dumps, and the "span.<name>"
// latency metrics the bench tables read.
#include <gtest/gtest.h>

#include <vector>

#include "harness/scenario.hpp"
#include "obs/span.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using obs::SpanName;
using obs::SpanRecord;
using obs::SpanTracer;
using recovery::Algorithm;

/// Copy out every span record so assertions can run after cluster teardown.
std::vector<SpanRecord> snapshot(const SpanTracer& tracer) {
  std::vector<SpanRecord> out;
  out.reserve(tracer.span_count());
  for (obs::SpanId id = 1; id <= tracer.span_count(); ++id) out.push_back(tracer.span(id));
  return out;
}

struct TracedRun {
  harness::ScenarioResult result;
  std::vector<SpanRecord> spans;
  std::string flight_dump;
};

TracedRun run_traced(harness::ScenarioConfig sc) {
  sc.cluster.enable_spans = true;
  TracedRun run;
  run.result = harness::run_scenario(sc, [&](runtime::Cluster& cluster) {
    ASSERT_NE(cluster.spans(), nullptr);
    run.spans = snapshot(*cluster.spans());
    run.flight_dump = cluster.spans()->dump_all_flights();
  });
  return run;
}

/// Index (into `spans`) of the unique span matching, or -1.
int find_one(const std::vector<SpanRecord>& spans, SpanName name, std::uint32_t node) {
  int found = -1;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name != name || spans[i].node != node) continue;
    if (found >= 0) return -2;  // not unique
    found = static_cast<int>(i);
  }
  return found;
}

TEST(ObsSpan, SingleFailurePhasesNestUnderRecoveryRoot) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const TracedRun run = run_traced(sc);
  ASSERT_EQ(run.result.recoveries.size(), 1u);
  const auto& t = run.result.recoveries[0];

  const int root = find_one(run.spans, SpanName::kRecovery, 1);
  ASSERT_GE(root, 0);
  const SpanRecord& rec = run.spans[static_cast<std::size_t>(root)];
  EXPECT_EQ(rec.begin, t.crashed_at);
  EXPECT_EQ(rec.end, t.completed_at);
  EXPECT_EQ(rec.inc, t.inc);
  EXPECT_FALSE(rec.aborted());
  EXPECT_EQ(rec.parent, obs::kNoSpan);

  // Every protocol phase ran exactly once, closed cleanly, as a child of
  // the root (gather/replay/...), matching the timeline's boundaries.
  const obs::SpanId root_id = static_cast<obs::SpanId>(root) + 1;
  for (const SpanName phase : {SpanName::kDetect, SpanName::kRestore, SpanName::kElection,
                               SpanName::kGather, SpanName::kReplay}) {
    const int i = find_one(run.spans, phase, 1);
    ASSERT_GE(i, 0) << obs::to_string(phase);
    const SpanRecord& p = run.spans[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.parent, root_id) << obs::to_string(phase);
    EXPECT_FALSE(p.open()) << obs::to_string(phase);
    EXPECT_FALSE(p.aborted()) << obs::to_string(phase);
  }
  const int detect = find_one(run.spans, SpanName::kDetect, 1);
  EXPECT_EQ(run.spans[static_cast<std::size_t>(detect)].end, t.restore_started);
  const int restore = find_one(run.spans, SpanName::kRestore, 1);
  EXPECT_EQ(run.spans[static_cast<std::size_t>(restore)].end, t.restored_at);
}

TEST(ObsSpan, InfrastructureSpansRecorded) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const TracedRun run = run_traced(sc);

  std::size_t transits = 0, storage = 0;
  for (const SpanRecord& s : run.spans) {
    if (s.name == SpanName::kCtrlTransit) {
      ++transits;
      EXPECT_FALSE(s.open());
      EXPECT_GT(s.detail, 0u);  // payload bytes
    }
    if (s.name == SpanName::kStorageWrite || s.name == SpanName::kStorageRead) ++storage;
  }
  // Control traffic of the episode (ord/dep requests + replies) and the
  // restore's checkpoint read must all leave closed infra spans.
  EXPECT_GE(transits, run.result.ctrl_msgs / 2);
  EXPECT_GT(storage, 0u);
}

TEST(ObsSpan, GatherRestartOpensSiblingRegatherUnderSameRoot) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  // Second crash lands mid-gather of the first recovery (same schedule as
  // Recovery.DoubleFailureDuringRecovery, which asserts gather_restarts).
  sc.crashes = {{ProcessId{1}, seconds(3)}, {ProcessId{2}, milliseconds(3'700)}};
  const TracedRun run = run_traced(sc);
  ASSERT_GE(run.result.gather_restarts, 1u);

  // Find the restarted round: an aborted gather and a regather on the same
  // leader, siblings under one recovery root.
  const SpanRecord* aborted_gather = nullptr;
  const SpanRecord* regather = nullptr;
  for (const SpanRecord& s : run.spans) {
    if (s.name == SpanName::kGather && s.aborted()) aborted_gather = &s;
    if (s.name == SpanName::kRegather) regather = &s;
  }
  ASSERT_NE(aborted_gather, nullptr);
  ASSERT_NE(regather, nullptr);
  EXPECT_EQ(regather->node, aborted_gather->node);
  EXPECT_EQ(regather->parent, aborted_gather->parent);
  ASSERT_NE(regather->parent, obs::kNoSpan);
  EXPECT_EQ(run.spans[regather->parent - 1].name, SpanName::kRecovery);
  // The regather belongs to a later round, begun after the abort, and is
  // attributed to the leader's incarnation at restart time.
  EXPECT_GE(regather->begin, aborted_gather->end);
  EXPECT_GT(regather->detail, aborted_gather->detail);
  EXPECT_EQ(regather->inc, run.spans[regather->parent - 1].inc);
  EXPECT_FALSE(regather->aborted());
}

TEST(ObsSpan, CrashMidRecoveryClosesOldSpansAtCrashTime) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  // p1 crashes again mid-recovery while p2 also recovers: the failover
  // schedule of Recovery.LeaderFailureFailsOverToNextOrdinal.
  const Time recrash = milliseconds(3'700);
  sc.crashes = {{ProcessId{1}, seconds(3)},
                {ProcessId{2}, milliseconds(3'100)},
                {ProcessId{1}, recrash}};
  const TracedRun run = run_traced(sc);
  EXPECT_EQ(run.result.recoveries.size(), 2u);

  // p1 has two recovery roots: the abandoned attempt (inc 2) must end
  // exactly at the second crash, aborted, along with every child it still
  // had open; the succeeding attempt (inc 3) begins right there.
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : run.spans) {
    if (s.name == SpanName::kRecovery && s.node == 1) roots.push_back(&s);
  }
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0]->inc, 2u);
  EXPECT_TRUE(roots[0]->aborted());
  EXPECT_EQ(roots[0]->end, recrash);
  EXPECT_EQ(roots[1]->inc, 3u);
  EXPECT_EQ(roots[1]->begin, recrash);
  EXPECT_FALSE(roots[1]->aborted());

  const obs::SpanId old_root = static_cast<obs::SpanId>(roots[0] - run.spans.data()) + 1;
  for (const SpanRecord& s : run.spans) {
    if (s.parent != old_root) continue;
    EXPECT_FALSE(s.open()) << obs::to_string(s.name);
    EXPECT_LE(s.end, recrash) << obs::to_string(s.name);
    if (s.end == recrash) EXPECT_TRUE(s.aborted()) << obs::to_string(s.name);
  }
}

TEST(ObsSpan, FlightRecorderDumpsEveryInvolvedNode) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  sc.cluster.flight_capacity = 8;
  const TracedRun run = run_traced(sc);

  EXPECT_NE(run.flight_dump.find("flight recorder, p1:"), std::string::npos);
  EXPECT_NE(run.flight_dump.find("recovery"), std::string::npos);
  EXPECT_NE(run.flight_dump.find("replay"), std::string::npos);
  // Live nodes saw control traffic, so they are involved too.
  EXPECT_NE(run.flight_dump.find("flight recorder, p0:"), std::string::npos);
}

TEST(ObsSpan, SpanMetricsFeedTheRegistry) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  sc.cluster.enable_spans = true;
  const auto r = harness::run_scenario(sc);

  // The scenario distilled "span.<name>" histograms into span_latency, in
  // taxonomy order, with p50 <= p95 <= max.
  ASSERT_FALSE(r.span_latency.empty());
  bool saw_recovery = false;
  for (const auto& p : r.span_latency) {
    EXPECT_GT(p.count, 0u) << p.name;
    EXPECT_LE(p.p50_ns, p.p95_ns) << p.name;
    EXPECT_LE(p.p95_ns, p.max_ns + 1.0) << p.name;
    if (p.name == "recovery") {
      saw_recovery = true;
      EXPECT_EQ(p.count, 1u);
      EXPECT_DOUBLE_EQ(p.max_ns, static_cast<double>(r.recoveries.at(0).total()));
    }
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(ObsSpan, DisabledByDefaultCostsNothing) {
  auto sc = test::base_scenario(Algorithm::kNonBlocking);
  sc.crashes = {{ProcessId{1}, seconds(3)}};
  const auto r = harness::run_scenario(sc, [](runtime::Cluster& cluster) {
    EXPECT_EQ(cluster.spans(), nullptr);
  });
  EXPECT_TRUE(r.span_latency.empty());
}

}  // namespace
}  // namespace rr
