// End-to-end smoke tests: boot a cluster, push traffic, crash processes,
// and check that recovery completes and the paper's headline properties
// hold (no blocking under the new algorithm, blocking under the baseline,
// conservation, determinism).
#include <gtest/gtest.h>

#include "app/workloads.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace rr {
namespace {

using app::GossipConfig;
using app::RingConfig;
using recovery::Algorithm;
using runtime::Cluster;
using runtime::ClusterConfig;

// Exact-config factories shared with the rest of the suite; the default
// GossipConfig/RingConfig here reproduces the original smoke workloads.
app::AppFactory ring_factory(RingConfig cfg = {}) { return test::ring_factory(cfg); }

app::AppFactory gossip_factory(GossipConfig cfg = {}) { return test::gossip_factory(cfg); }

TEST(SmokeTest, FailureFreeRingRuns) {
  ClusterConfig cfg;
  cfg.num_processes = 4;
  cfg.f = 2;
  Cluster cluster(cfg, ring_factory());
  cluster.start();
  cluster.run_until(seconds(5));
  EXPECT_TRUE(cluster.all_idle());
  EXPECT_GT(cluster.total_app_delivered(), 1000u);
  EXPECT_EQ(cluster.metrics().counter_value("app.stale_rejected"), 0u);
  EXPECT_EQ(cluster.metrics().counter_value("node.crashes"), 0u);
}

TEST(SmokeTest, SingleFailureRecoversNonBlocking) {
  ClusterConfig cfg;
  cfg.num_processes = 4;
  cfg.f = 2;
  cfg.algorithm = Algorithm::kNonBlocking;
  Cluster cluster(cfg, gossip_factory());
  cluster.start();
  cluster.crash_at(ProcessId{1}, seconds(5));
  cluster.run_until(seconds(20));

  EXPECT_TRUE(cluster.all_idle());
  const auto recoveries = cluster.all_recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_GT(recoveries[0].replayed, 0u);
  // The new algorithm never stalls live processes.
  EXPECT_EQ(cluster.total_blocked_time(), 0);
  EXPECT_EQ(cluster.metrics().counter_value("recovery.det_gaps"), 0u);
}

TEST(SmokeTest, SingleFailureRecoversBlocking) {
  ClusterConfig cfg;
  cfg.num_processes = 4;
  cfg.f = 2;
  cfg.algorithm = Algorithm::kBlocking;
  Cluster cluster(cfg, gossip_factory());
  cluster.start();
  cluster.crash_at(ProcessId{1}, seconds(5));
  cluster.run_until(seconds(20));

  EXPECT_TRUE(cluster.all_idle());
  ASSERT_EQ(cluster.all_recoveries().size(), 1u);
  // The baseline stalls every live process for some measurable time.
  EXPECT_GT(cluster.total_blocked_time(), 0);
  EXPECT_GE(cluster.metrics().counter_value("recovery.block_episodes"), 3u);
}

TEST(SmokeTest, DeterministicAcrossRuns) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.num_processes = 4;
    cfg.f = 2;
    cfg.seed = 99;
    Cluster cluster(cfg, gossip_factory());
    cluster.start();
    cluster.crash_at(ProcessId{2}, seconds(4));
    cluster.run_until(seconds(15));
    return std::pair{cluster.state_hash(), cluster.total_app_delivered()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace rr
