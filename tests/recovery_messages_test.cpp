// Wire round-trips for every recovery control message.
#include <gtest/gtest.h>

#include "fbl/frame.hpp"
#include "recovery/messages.hpp"

namespace rr::recovery {
namespace {

ControlMessage round_trip(const ControlMessage& m) {
  const Bytes wire = encode_control(m);
  BufReader r(wire);
  EXPECT_EQ(fbl::decode_kind(r), fbl::FrameKind::kControl);
  ControlMessage out = decode_control(r);
  r.expect_done();
  return out;
}

fbl::HeldDeterminant held(std::uint32_t src, Ssn ssn, std::uint32_t dst, Rsn rsn,
                          fbl::HolderMask holders) {
  return {fbl::Determinant{ProcessId{src}, ssn, ProcessId{dst}, rsn}, holders};
}

TEST(ControlMessages, OrdRequestRoundTrip) {
  const auto out = round_trip(OrdRequest{7});
  ASSERT_TRUE(std::holds_alternative<OrdRequest>(out));
  EXPECT_EQ(std::get<OrdRequest>(out).inc, 7u);
}

TEST(ControlMessages, OrdReplyRoundTrip) {
  OrdReply m;
  m.ord = 42;
  m.rset = {{ProcessId{1}, 42, 3}, {ProcessId{2}, 43, 2}};
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<OrdReply>(out));
  EXPECT_EQ(std::get<OrdReply>(out).ord, 42u);
  EXPECT_EQ(std::get<OrdReply>(out).rset, m.rset);
}

TEST(ControlMessages, RSetRequestRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<RSetRequest>(round_trip(RSetRequest{})));
}

TEST(ControlMessages, RSetReplyRoundTrip) {
  RSetReply m;
  m.rset = {{ProcessId{5}, 9, 1}};
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<RSetReply>(out));
  EXPECT_EQ(std::get<RSetReply>(out).rset, m.rset);
}

TEST(ControlMessages, IncRequestReplyRoundTrip) {
  const auto req = round_trip(IncRequest{11});
  ASSERT_TRUE(std::holds_alternative<IncRequest>(req));
  EXPECT_EQ(std::get<IncRequest>(req).round, 11u);

  const auto rep = round_trip(IncReply{11, 4});
  ASSERT_TRUE(std::holds_alternative<IncReply>(rep));
  EXPECT_EQ(std::get<IncReply>(rep).round, 11u);
  EXPECT_EQ(std::get<IncReply>(rep).inc, 4u);
}

TEST(ControlMessages, DepRequestRoundTrip) {
  DepRequest m;
  m.round = 3;
  m.block = true;
  m.leader = ProcessId{4};
  m.leader_inc = 6;
  m.arity = 4;
  m.delta.base_version = 2;
  m.delta.version = 5;
  m.delta.full = false;
  m.delta.entries[ProcessId{1}] = 2;
  m.delta.entries[ProcessId{4}] = 9;
  m.recovering = {ProcessId{1}, ProcessId{4}};
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<DepRequest>(out));
  const auto& got = std::get<DepRequest>(out);
  EXPECT_EQ(got.round, 3u);
  EXPECT_TRUE(got.block);
  EXPECT_EQ(got.leader, m.leader);
  EXPECT_EQ(got.leader_inc, m.leader_inc);
  EXPECT_EQ(got.arity, m.arity);
  EXPECT_EQ(got.delta, m.delta);
  EXPECT_EQ(got.recovering, m.recovering);
}

TEST(ControlMessages, DepReplyRoundTrip) {
  DepReply m;
  m.round = 3;
  m.dets = {held(0, 1, 1, 1, 0x3), held(2, 5, 1, 2, 0x7)};
  DepContribution c;
  c.pid = ProcessId{2};
  c.inc = 3;
  c.incv_version = 7;
  c.incv_resync = true;
  c.marks[ProcessId{1}] = 17;
  m.contribs = {c};
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<DepReply>(out));
  const auto& got = std::get<DepReply>(out);
  EXPECT_EQ(got.dets, m.dets);
  EXPECT_EQ(got.contribs, m.contribs);
}

TEST(ControlMessages, DepInstallRoundTrip) {
  DepInstall m;
  m.round = 8;
  m.incvector[ProcessId{1}] = 2;
  m.dets = {held(0, 1, 1, 1, 0x3)};
  m.live_marks[ProcessId{0}][ProcessId{1}] = 5;
  m.live_marks[ProcessId{3}][ProcessId{1}] = 7;
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<DepInstall>(out));
  const auto& got = std::get<DepInstall>(out);
  EXPECT_EQ(got.incvector, m.incvector);
  EXPECT_EQ(got.dets, m.dets);
  EXPECT_EQ(got.live_marks, m.live_marks);
}

TEST(ControlMessages, RecoveryCompleteRoundTrip) {
  RecoveryComplete m;
  m.inc = 5;
  m.recv_marks[ProcessId{0}] = 100;
  m.rsn = 321;
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<RecoveryComplete>(out));
  const auto& got = std::get<RecoveryComplete>(out);
  EXPECT_EQ(got.inc, 5u);
  EXPECT_EQ(got.recv_marks, m.recv_marks);
  EXPECT_EQ(got.rsn, 321u);
}

TEST(ControlMessages, ReplayRequestRoundTrip) {
  ReplayRequest m;
  m.ssns = {1, 5, 9};
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<ReplayRequest>(out));
  EXPECT_EQ(std::get<ReplayRequest>(out).ssns, m.ssns);
}

TEST(ControlMessages, ReplayDataRoundTrip) {
  ReplayData m;
  m.items.push_back({3, to_bytes("abc")});
  m.items.push_back({4, Bytes{}});
  const auto out = round_trip(m);
  ASSERT_TRUE(std::holds_alternative<ReplayData>(out));
  const auto& got = std::get<ReplayData>(out);
  ASSERT_EQ(got.items.size(), 2u);
  EXPECT_EQ(got.items[0].ssn, 3u);
  EXPECT_EQ(to_text(got.items[0].payload), "abc");
  EXPECT_TRUE(got.items[1].payload.empty());
}

TEST(ControlMessages, NamesAreStable) {
  EXPECT_STREQ(control_name(OrdRequest{}), "ord_request");
  EXPECT_STREQ(control_name(DepRequest{}), "dep_request");
  EXPECT_STREQ(control_name(DepInstall{}), "dep_install");
  EXPECT_STREQ(control_name(RecoveryComplete{}), "recovery_complete");
  EXPECT_STREQ(control_name(ReplayData{}), "replay_data");
}

TEST(ControlMessages, UnknownKindThrows) {
  BufWriter w;
  w.u8(99);
  BufReader r(w.view());
  EXPECT_THROW((void)decode_control(r), SerdeError);
}

TEST(ControlMessages, TruncatedBodyThrows) {
  DepReply m;
  m.dets = {held(0, 1, 1, 1, 0x3)};
  Bytes wire = encode_control(m);
  wire.resize(wire.size() / 2);
  BufReader r(wire);
  (void)r.u8();  // frame kind
  EXPECT_THROW((void)decode_control(r), SerdeError);
}

}  // namespace
}  // namespace rr::recovery
