// Named protocol phase boundaries — the coordinate system for fault
// injection and for the V8 leadership oracle.
//
// The recovery state machine (recovery_manager) and the ord service fire a
// PhaseHook at every semantically meaningful transition: leadership
// decisions, gather phase starts/restarts, incvector construction, depinfo
// collection, replay start, and ordinal assignment/retirement. The hook is
// a pure tap — it must not re-enter the manager synchronously (schedule
// through the simulator instead); the check/ explorer uses it to place
// crashes at exact protocol states ("kill the leader between gather-start
// and depinfo-collect") instead of guessing wall-clock offsets, and the
// trace layer records the firings so the history checker can validate that
// leadership followed ordinal order.
//
// The taxonomy lives here in trace/ — the lowest layer that consumes it —
// rather than in recovery/, so that obs/ and trace/ can see the phase ids
// without including upward (rrlint L1); recovery/phase_hook.hpp re-exports
// the names into rr::recovery for the layers above that fire the hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/types.hpp"

namespace rr::trace {

/// Recovery ordinal (matches recovery::Ord in recovery/messages.hpp).
using Ord = std::uint64_t;

enum class PhaseId : std::uint8_t {
  kLeaderElected = 1,   ///< a recovering process starts leading a round
  kLeaderFailover = 2,  ///< ...after a lower-ordinal leader died/was suspected
  kGatherStarted = 3,   ///< R refreshed; gather (inc or dep) begins
  kIncVectorBuilt = 4,  ///< incarnation round complete, incvector assembled
  kDepinfoCollected = 5,///< every depinfo reply arrived; install being built
  kGatherRestarted = 6, ///< round abandoned (target died / phase timeout)
  kReplayStarted = 7,   ///< install applied; replay engine begins delivery
  kOrdAssigned = 8,     ///< ord service registered `subject` (fired by the ord service)
  kOrdRetired = 9,      ///< ord service retired `subject`'s registration
  /// Tree gather only: a relay (or the leader) lost a child to suspicion
  /// and re-attached the child's subtree directly under itself; `subject`
  /// is the suspected child. The round itself survives — a genuinely
  /// crashed child still forces kGatherRestarted when it re-registers.
  kSubtreeReparented = 10,
};

[[nodiscard]] const char* to_string(PhaseId id);
/// Parses the to_string() name; returns false on unknown input.
[[nodiscard]] bool parse_phase(const char* name, PhaseId& out);

struct PhaseEventInfo {
  ProcessId pid;       ///< process the state machine runs on (kOrdServiceId = ord svc)
  PhaseId phase{PhaseId::kLeaderElected};
  std::uint64_t round{0};  ///< leader round id (0 when not round-scoped)
  Ord ord{0};              ///< firing process's ordinal (or assigned ord)
  ProcessId subject;       ///< who the event is about (== pid unless ord svc)
};

using PhaseHook = std::function<void(const PhaseEventInfo&)>;

inline const char* to_string(PhaseId id) {
  switch (id) {
    case PhaseId::kLeaderElected: return "leader-elected";
    case PhaseId::kLeaderFailover: return "leader-failover";
    case PhaseId::kGatherStarted: return "gather-started";
    case PhaseId::kIncVectorBuilt: return "incvector-built";
    case PhaseId::kDepinfoCollected: return "depinfo-collected";
    case PhaseId::kGatherRestarted: return "gather-restarted";
    case PhaseId::kReplayStarted: return "replay-started";
    case PhaseId::kOrdAssigned: return "ord-assigned";
    case PhaseId::kOrdRetired: return "ord-retired";
    case PhaseId::kSubtreeReparented: return "subtree-reparented";
  }
  return "?";
}

inline bool parse_phase(const char* name, PhaseId& out) {
  for (const PhaseId id :
       {PhaseId::kLeaderElected, PhaseId::kLeaderFailover, PhaseId::kGatherStarted,
        PhaseId::kIncVectorBuilt, PhaseId::kDepinfoCollected, PhaseId::kGatherRestarted,
        PhaseId::kReplayStarted, PhaseId::kOrdAssigned, PhaseId::kOrdRetired,
        PhaseId::kSubtreeReparented}) {
    if (std::string_view{name} == to_string(id)) {
      out = id;
      return true;
    }
  }
  return false;
}

}  // namespace rr::trace
