#include "trace/history_checker.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace rr::trace {

namespace {

/// One execution of a process: boot, or restore-to-crash (or to trace end).
struct Execution {
  Incarnation inc{1};
  Rsn start_rsn{0};  ///< restored checkpoint rsn (0 at boot)
  Time began{0};
  std::vector<const TimedEvent*> events;  // sends, delivers, ckpts of this execution
};

struct ProcessTimeline {
  std::vector<Execution> executions;
  std::vector<std::string>* violations{nullptr};
};

struct Checker {
  const TraceLog& log;
  std::size_t max_violations;
  bool reliable_fabric;
  CheckResult result;
  std::map<ProcessId, ProcessTimeline> timelines;

  void violate(std::string msg) {
    result.ok = false;
    if (result.violations.size() < max_violations) result.violations.push_back(std::move(msg));
  }

  void build_timelines() {
    std::map<ProcessId, bool> down;  // crashed, not yet restored
    for (const auto& ev : log.events()) {
      if (const auto* s = std::get_if<SendEvent>(&ev.event)) {
        auto& tl = timelines[s->src];
        if (tl.executions.empty()) tl.executions.push_back(Execution{});
        tl.executions.back().events.push_back(&ev);
        ++result.sends;
      } else if (const auto* d = std::get_if<DeliverEvent>(&ev.event)) {
        auto& tl = timelines[d->dst];
        if (tl.executions.empty()) tl.executions.push_back(Execution{});
        tl.executions.back().events.push_back(&ev);
        ++result.deliveries;
        result.replayed += d->replayed;
      } else if (const auto* c = std::get_if<trace::CrashEvent>(&ev.event)) {
        if (down[c->pid]) violate("V6: double crash without restore at " + rr::to_string(c->pid));
        down[c->pid] = true;
      } else if (const auto* r = std::get_if<RestoreEvent>(&ev.event)) {
        auto& tl = timelines[r->pid];
        if (tl.executions.empty()) tl.executions.push_back(Execution{});
        const Incarnation prev = tl.executions.back().inc;
        if (r->inc <= prev) {
          violate("V6: non-increasing incarnation " + std::to_string(r->inc) + " after " +
                  std::to_string(prev) + " at " + rr::to_string(r->pid));
        }
        if (!down[r->pid]) violate("V6: restore without crash at " + rr::to_string(r->pid));
        down[r->pid] = false;
        Execution e;
        e.inc = r->inc;
        e.start_rsn = r->checkpoint_rsn;
        e.began = ev.at;
        tl.executions.push_back(std::move(e));
      } else if (const auto* k = std::get_if<CheckpointEvent>(&ev.event)) {
        auto& tl = timelines[k->pid];
        if (tl.executions.empty()) tl.executions.push_back(Execution{});
        tl.executions.back().events.push_back(&ev);
      }
      // CompleteEvent / PhaseEvent / SuspectEvent / FloorEvent feed the
      // dedicated V7/V8 passes below, not the timeline reconstruction.
    }
    for (const auto& [pid, tl] : timelines) result.executions += tl.executions.size();
  }

  /// V1: deliveries must be preceded (or accompanied) by a matching send.
  void check_send_before_deliver() {
    // (src, dst, ssn) -> earliest send time.
    std::map<std::tuple<ProcessId, ProcessId, Ssn>, Time> first_send;
    for (const auto& ev : log.events()) {
      if (const auto* s = std::get_if<SendEvent>(&ev.event)) {
        const auto key = std::tuple{s->src, s->dst, s->ssn};
        const auto it = first_send.find(key);
        if (it == first_send.end()) first_send[key] = ev.at;
      }
    }
    for (const auto& ev : log.events()) {
      if (const auto* d = std::get_if<DeliverEvent>(&ev.event)) {
        const auto it = first_send.find(std::tuple{d->src, d->dst, d->ssn});
        if (it == first_send.end()) {
          violate("V1: delivery without send: " + to_string(ev));
        } else if (it->second > ev.at) {
          violate("V1: delivery precedes send: " + to_string(ev));
        }
      }
    }
  }

  /// V2 + V3: intra-execution ordering.
  void check_execution_ordering() {
    for (const auto& [pid, tl] : timelines) {
      for (const auto& exec : tl.executions) {
        Rsn expect = exec.start_rsn + 1;
        std::map<ProcessId, Ssn> chan;
        for (const TimedEvent* ev : exec.events) {
          const auto* d = std::get_if<DeliverEvent>(&ev->event);
          if (d == nullptr) continue;
          if (d->rsn != expect) {
            violate("V2: receipt order jump (expected rsn " + std::to_string(expect) + "): " +
                    to_string(*ev));
          }
          expect = d->rsn + 1;
          auto& mark = chan[d->src];
          if (d->ssn <= mark) {
            violate("V3: channel ssn not increasing: " + to_string(*ev));
          }
          mark = d->ssn;
        }
      }
    }
  }

  /// V4 + V5 + rollback accounting, via surviving-history reconstruction.
  void check_surviving_history() {
    struct Final {
      // receiver -> rsn -> (src, ssn)
      std::map<ProcessId, std::map<Rsn, std::pair<ProcessId, Ssn>>> history;
      // sender -> dst -> surviving ssn set
      std::map<ProcessId, std::map<ProcessId, std::set<Ssn>>> sends;
    } final;

    for (const auto& [pid, tl] : timelines) {
      std::map<Rsn, std::pair<ProcessId, Ssn>> history;
      // Accumulates across executions WITHOUT checkpoint truncation: what
      // any earlier execution delivered at each receipt order — the value a
      // replay must reproduce (V4) and a fresh redelivery may replace only
      // as a rollback.
      std::map<Rsn, std::pair<ProcessId, Ssn>> last_seen;
      std::map<ProcessId, std::set<Ssn>> sends;

      for (const auto& exec : tl.executions) {
        // Restoring from a checkpoint at rsn c truncates the visible
        // history to rsn <= c and the send set to sends issued before that
        // checkpoint committed (the checkpointed send log preserves them).
        if (&exec != &tl.executions.front()) {
          // Find the commit time of the restored checkpoint: the last
          // CheckpointEvent with the matching rsn in any earlier execution
          // (version bookkeeping guarantees it exists; rsn 0 = boot image).
          Time cut = 0;
          for (const auto& prev : tl.executions) {
            if (&prev == &exec) break;
            for (const TimedEvent* ev : prev.events) {
              if (const auto* k = std::get_if<CheckpointEvent>(&ev->event)) {
                if (k->rsn == exec.start_rsn) cut = std::max(cut, ev->at);
              }
            }
          }
          history.erase(history.upper_bound(exec.start_rsn), history.end());
          // The restored image preserves exactly the sends issued before
          // the checkpoint committed (they live in its send log); later
          // sends must be regenerated. Rebuild the surviving set by time.
          sends.clear();
          for (const auto& prev : tl.executions) {
            if (&prev == &exec) break;
            for (const TimedEvent* ev : prev.events) {
              if (const auto* s = std::get_if<SendEvent>(&ev->event)) {
                if (ev->at <= cut) sends[s->dst].insert(s->ssn);
              }
            }
          }
        }

        for (const TimedEvent* ev : exec.events) {
          if (const auto* d = std::get_if<DeliverEvent>(&ev->event)) {
            const auto value = std::pair{d->src, d->ssn};
            const auto it = last_seen.find(d->rsn);
            if (it != last_seen.end() && it->second != value) {
              if (d->replayed) {
                violate("V4: replay diverged from prior execution: " + to_string(*ev));
              } else {
                ++result.rollbacks;  // dead suffix replaced by fresh traffic
              }
            }
            last_seen[d->rsn] = value;
            history[d->rsn] = value;
          } else if (const auto* s = std::get_if<SendEvent>(&ev->event)) {
            sends[s->dst].insert(s->ssn);
          }
        }
      }
      final.history[pid] = std::move(history);
      final.sends[pid] = std::move(sends);
    }

    // V5: every surviving delivery is covered by the sender's surviving
    // send set.
    for (const auto& [dst, history] : final.history) {
      for (const auto& [rsn, value] : history) {
        const auto& [src, ssn] = value;
        const auto sit = final.sends.find(src);
        const bool covered = sit != final.sends.end() &&
                             sit->second.contains(dst) && sit->second.at(dst).contains(ssn);
        if (!covered) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "V5: orphaned delivery at %s: rsn=%llu from %s ssn=%llu not in "
                        "sender's surviving history",
                        rr::to_string(dst).c_str(), static_cast<unsigned long long>(rsn),
                        rr::to_string(src).c_str(), static_cast<unsigned long long>(ssn));
          violate(buf);
        }
      }
    }
  }

  /// V7: stale rejection. Replays the per-process incvector floors
  /// (FloorEvent) and flags any fresh delivery whose sender-incarnation
  /// stamp lies below the destination's floor for that sender at delivery
  /// time. Floors are volatile state, so a crash resets the destination's
  /// knowledge; replayed deliveries carry no stamp (src_inc == 0) and are
  /// covered by V4 instead.
  void check_stale_rejection() {
    std::map<ProcessId, std::map<ProcessId, Incarnation>> floor;  // dst -> src -> floor
    for (const auto& ev : log.events()) {
      if (const auto* f = std::get_if<FloorEvent>(&ev.event)) {
        auto& fl = floor[f->pid][f->about];
        fl = std::max(fl, f->inc);
      } else if (const auto* c = std::get_if<CrashEvent>(&ev.event)) {
        floor.erase(c->pid);
      } else if (const auto* d = std::get_if<DeliverEvent>(&ev.event)) {
        if (d->replayed || d->src_inc == 0) continue;
        const auto dst_it = floor.find(d->dst);
        if (dst_it == floor.end()) continue;
        const auto src_it = dst_it->second.find(d->src);
        if (src_it != dst_it->second.end() && d->src_inc < src_it->second) {
          violate("V7: pre-incvector incarnation delivered (floor " +
                  std::to_string(src_it->second) + "): " + to_string(ev));
        }
      }
    }
  }

  /// V8: leader-ordinal monotonicity. Recovery leadership must follow the
  /// ord service's assignment order: a process may lead at ordinal o only
  /// while its own registration at o is live, and only if every live
  /// lower-ordinal registration is excused — its owner crashed again after
  /// registering (the paper's next-ordinal failover) or is currently
  /// suspected by the would-be leader.
  void check_leader_ordinals() {
    struct Reg {
      std::uint64_t ord{0};
      bool retired{false};
      bool crashed_since{false};  ///< owner crashed after this registration
    };
    std::map<ProcessId, Reg> reg;                      // latest registration
    std::map<ProcessId, std::set<ProcessId>> suspects; // observer -> peers
    for (const auto& ev : log.events()) {
      if (const auto* p = std::get_if<PhaseEvent>(&ev.event)) {
        switch (p->phase) {
          case PhaseId::kOrdAssigned:
            reg[p->subject] = Reg{p->ord, false, false};
            break;
          case PhaseId::kOrdRetired: {
            const auto it = reg.find(p->subject);
            if (it != reg.end() && it->second.ord == p->ord) it->second.retired = true;
            break;
          }
          case PhaseId::kLeaderElected:
          case PhaseId::kLeaderFailover: {
            const auto self = reg.find(p->pid);
            if (self == reg.end() || self->second.retired || self->second.ord != p->ord) {
              violate("V8: leader without a live ordinal registration: " + to_string(ev));
              break;
            }
            for (const auto& [q, r] : reg) {
              if (q == p->pid || r.retired || r.ord >= p->ord) continue;
              if (r.crashed_since || suspects[p->pid].contains(q)) continue;
              violate("V8: leadership skipped live lower ordinal " + std::to_string(r.ord) +
                      " (" + rr::to_string(q) + "): " + to_string(ev));
            }
            break;
          }
          default:
            break;
        }
      } else if (const auto* s = std::get_if<SuspectEvent>(&ev.event)) {
        if (s->suspected) {
          suspects[s->observer].insert(s->peer);
        } else {
          suspects[s->observer].erase(s->peer);
        }
      } else if (const auto* c = std::get_if<CrashEvent>(&ev.event)) {
        const auto it = reg.find(c->pid);
        if (it != reg.end()) it->second.crashed_since = true;
        suspects.erase(c->pid);  // detector state is volatile
      }
    }
  }
  /// V9: exactly-once application delivery under retransmission. Armed only
  /// for reliable-fabric runs: there a schedule-dropped frame is
  /// retransmitted rather than lost, so within each destination execution a
  /// channel's fresh deliveries must advance in strictly consecutive ssn
  /// steps. A repeat means receive-side dedup failed; a gap means a message
  /// the transport accepted was lost. Replayed deliveries are covered by V4
  /// and skipped here; the first fresh delivery of each execution sets the
  /// baseline (the watermark continues from the restored checkpoint).
  void check_exactly_once() {
    if (!reliable_fabric) return;
    for (const auto& [pid, tl] : timelines) {
      for (const auto& exec : tl.executions) {
        std::map<ProcessId, Ssn> chan;  // src -> last fresh ssn delivered
        for (const TimedEvent* ev : exec.events) {
          const auto* d = std::get_if<DeliverEvent>(&ev->event);
          if (d == nullptr || d->replayed) continue;
          const auto it = chan.find(d->src);
          if (it != chan.end()) {
            if (d->ssn <= it->second) {
              violate("V9: duplicate fresh delivery: " + to_string(*ev));
            } else if (d->ssn != it->second + 1) {
              violate("V9: channel gap (lost message after ssn " +
                      std::to_string(it->second) + "): " + to_string(*ev));
            }
          }
          chan[d->src] = std::max(chan[d->src], d->ssn);
        }
      }
    }
  }
};

}  // namespace

std::string CheckResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: %zu sends, %zu deliveries (%zu replayed), %zu executions, %zu rollbacks, "
                "%zu violations",
                ok ? "OK" : "VIOLATED", sends, deliveries, replayed, executions, rollbacks,
                violations.size());
  return buf;
}

CheckResult check_history(const TraceLog& log, std::size_t max_violations,
                          bool reliable_fabric) {
  Checker checker{log, max_violations, reliable_fabric, {}, {}};
  checker.build_timelines();
  checker.check_send_before_deliver();
  checker.check_execution_ordering();
  checker.check_surviving_history();
  checker.check_stale_rejection();
  checker.check_leader_ordinals();
  checker.check_exactly_once();
  return std::move(checker.result);
}

}  // namespace rr::trace
