// Structured protocol trace.
//
// When enabled, every node records the events that define the global
// history of an execution: application sends and deliveries (original and
// replayed), crashes, restores, recovery completions and checkpoint
// commits. The trace is the input to the HistoryChecker, which turns the
// paper's §4 correctness properties into an assertion over the whole run,
// and to human debugging (dump() renders a readable timeline).
//
// The trace is append-only and owned by the Cluster; recording is off by
// default (ClusterConfig::enable_trace) because a long run generates
// millions of events.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "trace/phase_hook.hpp"

namespace rr::trace {

struct SendEvent {
  ProcessId src;
  ProcessId dst;
  Ssn ssn{0};
  Incarnation inc{0};
  bool transmitted{true};  ///< false: regenerated during replay, suppressed
};

struct DeliverEvent {
  ProcessId dst;
  ProcessId src;
  Ssn ssn{0};
  Rsn rsn{0};
  Incarnation dst_inc{0};
  bool replayed{false};
  /// Sender incarnation stamped on the frame (stale-rejection tag). 0 for
  /// replayed deliveries: determinants do not record it, and the stale
  /// check (V7) applies to fresh wire traffic only.
  Incarnation src_inc{0};
};

struct CrashEvent {
  ProcessId pid;
  Incarnation inc{0};  ///< incarnation that died
};

struct RestoreEvent {
  ProcessId pid;
  Incarnation inc{0};  ///< new incarnation
  Rsn checkpoint_rsn{0};
};

struct CompleteEvent {
  ProcessId pid;
  Incarnation inc{0};
  Rsn rsn{0};
};

struct CheckpointEvent {
  ProcessId pid;
  Rsn rsn{0};
};

/// A named protocol phase boundary fired by the recovery state machine or
/// the ord service (see recovery/phase_hook.hpp). Input to V8.
struct PhaseEvent {
  ProcessId pid;  ///< firing process (ord service for assignment events)
  PhaseId phase{PhaseId::kLeaderElected};
  std::uint64_t round{0};
  Ord ord{0};
  ProcessId subject;  ///< who the event is about (== pid unless ord svc)
};

/// A failure-detector suspicion edge at `observer`. Input to V8 (a leader
/// may step over a lower ordinal only if it suspects that process).
struct SuspectEvent {
  ProcessId observer;
  ProcessId peer;
  bool suspected{true};
};

/// `pid`'s incvector floor for `about` rose to `inc`. Input to V7: any
/// later fresh delivery at `pid` from `about` stamped below the floor is a
/// stale-rejection failure.
struct FloorEvent {
  ProcessId pid;
  ProcessId about;
  Incarnation inc{0};
};

using Event =
    std::variant<SendEvent, DeliverEvent, CrashEvent, RestoreEvent, CompleteEvent,
                 CheckpointEvent, PhaseEvent, SuspectEvent, FloorEvent>;

struct TimedEvent {
  Time at{0};
  Event event;
};

class TraceLog {
 public:
  void record(Time at, Event event) { events_.push_back(TimedEvent{at, std::move(event)}); }

  [[nodiscard]] const std::vector<TimedEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

  /// Human-readable timeline (bounded by `limit` lines; 0 = everything).
  [[nodiscard]] std::string dump(std::size_t limit = 0) const;

 private:
  std::vector<TimedEvent> events_;
};

[[nodiscard]] std::string to_string(const TimedEvent& ev);

}  // namespace rr::trace
