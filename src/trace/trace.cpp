#include "trace/trace.hpp"

#include <cstdio>

namespace rr::trace {

namespace {

struct Formatter {
  char* buf;
  std::size_t n;

  void operator()(const SendEvent& e) const {
    std::snprintf(buf, n, "send     %s -> %s ssn=%llu inc=%u%s", rr::to_string(e.src).c_str(),
                  rr::to_string(e.dst).c_str(), static_cast<unsigned long long>(e.ssn), e.inc,
                  e.transmitted ? "" : " (suppressed)");
  }
  void operator()(const DeliverEvent& e) const {
    std::snprintf(buf, n, "deliver  %s <- %s ssn=%llu rsn=%llu inc=%u src_inc=%u%s",
                  rr::to_string(e.dst).c_str(), rr::to_string(e.src).c_str(),
                  static_cast<unsigned long long>(e.ssn),
                  static_cast<unsigned long long>(e.rsn), e.dst_inc, e.src_inc,
                  e.replayed ? " (replayed)" : "");
  }
  void operator()(const CrashEvent& e) const {
    std::snprintf(buf, n, "crash    %s inc=%u", rr::to_string(e.pid).c_str(), e.inc);
  }
  void operator()(const RestoreEvent& e) const {
    std::snprintf(buf, n, "restore  %s inc=%u from ckpt rsn=%llu",
                  rr::to_string(e.pid).c_str(), e.inc,
                  static_cast<unsigned long long>(e.checkpoint_rsn));
  }
  void operator()(const CompleteEvent& e) const {
    std::snprintf(buf, n, "complete %s inc=%u rsn=%llu", rr::to_string(e.pid).c_str(), e.inc,
                  static_cast<unsigned long long>(e.rsn));
  }
  void operator()(const CheckpointEvent& e) const {
    std::snprintf(buf, n, "ckpt     %s rsn=%llu", rr::to_string(e.pid).c_str(),
                  static_cast<unsigned long long>(e.rsn));
  }
  void operator()(const PhaseEvent& e) const {
    std::snprintf(buf, n, "phase    %s %s round=%llu ord=%llu subject=%s",
                  rr::to_string(e.pid).c_str(), to_string(e.phase),
                  static_cast<unsigned long long>(e.round),
                  static_cast<unsigned long long>(e.ord), rr::to_string(e.subject).c_str());
  }
  void operator()(const SuspectEvent& e) const {
    std::snprintf(buf, n, "suspect  %s %s %s", rr::to_string(e.observer).c_str(),
                  e.suspected ? "suspects" : "clears", rr::to_string(e.peer).c_str());
  }
  void operator()(const FloorEvent& e) const {
    std::snprintf(buf, n, "floor    %s raises floor[%s]=%u", rr::to_string(e.pid).c_str(),
                  rr::to_string(e.about).c_str(), e.inc);
  }
};

}  // namespace

std::string to_string(const TimedEvent& ev) {
  char body[160];
  std::visit(Formatter{body, sizeof body}, ev.event);
  return "[" + format_duration(ev.at) + "] " + body;
}

std::string TraceLog::dump(std::size_t limit) const {
  std::string out;
  const std::size_t n = limit == 0 ? events_.size() : std::min(limit, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out += to_string(events_[i]);
    out += '\n';
  }
  if (n < events_.size()) {
    out += "... (" + std::to_string(events_.size() - n) + " more events)\n";
  }
  return out;
}

}  // namespace rr::trace
