// Global history checker — the paper's §4 theorems as an executable oracle.
//
// Given a full protocol trace, the checker reconstructs every process's
// *surviving* history — the application-visible prefix that the sequence of
// checkpoints, crashes and replays actually preserved — and validates:
//
//  V1  send-before-deliver: every delivered (src, ssn) was sent on that
//      channel no later than it was delivered;
//  V2  receipt orders are contiguous within each execution, starting right
//      after the restored checkpoint;
//  V3  per-channel ssns increase strictly within each execution;
//  V4  replay fidelity: a replayed delivery reproduces exactly the
//      (src, ssn) the previous execution delivered at that receipt order;
//  V5  orphan freedom (paper §4.3 operationally): every delivery in a
//      process's final surviving history was sent by the sender's own
//      final surviving execution — i.e. no surviving state depends on a
//      message the rest of the system can no longer account for;
//  V6  lifecycle sanity: incarnations increase by one per restore, crash /
//      restore events alternate;
//  V7  stale rejection: no process delivers a fresh message stamped with a
//      sender incarnation below its own incvector floor for that sender
//      (floors replayed from FloorEvents; the closing of the paper's
//      stale-message hazard);
//  V8  leader-ordinal monotonicity: recovery leadership follows the ord
//      service's assignment order — a leader steps over a lower ordinal
//      only when that registration's owner crashed again after registering
//      (next-ordinal failover) or is suspected by the leader;
//  V9  exactly-once application delivery under retransmission (only with
//      reliable_fabric set — i.e. the run routed traffic through the
//      reliable transport over lossy links): within each destination
//      execution every channel's fresh deliveries advance in strictly
//      consecutive ssn steps — a repeat means receive-side dedup failed,
//      a gap means a message the transport acked was lost. On the perfect
//      fabric the pass is off: there, drop: injections legitimately leave
//      gaps, because nothing retransmits.
//
// Rollbacks — fresh deliveries replacing a dead execution's suffix at the
// same receipt orders — are legal exactly when the replaced suffix was
// invisible (beyond f failures they may also lose visible work); the
// checker counts them so tests can assert zero within the f budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace rr::trace {

struct CheckResult {
  bool ok{true};
  /// First violations found (bounded; empty iff ok).
  std::vector<std::string> violations;

  std::size_t sends{0};
  std::size_t deliveries{0};
  std::size_t replayed{0};
  std::size_t executions{0};
  /// Receipt orders where a later execution diverged from a dead one
  /// (rolled-back suffix). Zero whenever failures stayed within f.
  std::size_t rollbacks{0};

  [[nodiscard]] std::string summary() const;
};

/// Validate an execution trace. `max_violations` bounds the report;
/// `reliable_fabric` arms the V9 exactly-once pass (set it iff the run
/// routed protocol traffic through the reliable transport).
[[nodiscard]] CheckResult check_history(const TraceLog& log, std::size_t max_violations = 16,
                                        bool reliable_fabric = false);

}  // namespace rr::trace
