#include "obs/perfetto.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace rr::obs {

namespace {

/// Track (Perfetto tid) per span kind; see the header comment for why
/// storage/net intervals get their own tracks.
enum : int { kTrackProtocol = 0, kTrackStorage = 1, kTrackNet = 2 };

int track_of(SpanName name) {
  switch (name) {
    case SpanName::kStorageWrite:
    case SpanName::kStorageRead:
    case SpanName::kStorageErase:
      return kTrackStorage;
    case SpanName::kCtrlTransit:
      return kTrackNet;
    default:
      return kTrackProtocol;
  }
}

const char* category_of(int track) {
  switch (track) {
    case kTrackStorage: return "storage";
    case kTrackNet: return "net";
    default: return "protocol";
  }
}

void append_us(std::string& out, Time ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  out += buf;
}

void append_meta(std::string& out, int pid, int tid, const char* key,
                 const std::string& value, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\":\"";
  out += key;
  out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"" + value + "\"}}";
}

/// One counter ("C") sample: a single-series args object. Perfetto draws
/// one stacked-area track per (pid, name).
void append_counter(std::string& out, const char* name, Time ts, std::uint32_t pid,
                    const char* series, double value, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\":\"";
  out += name;
  out += "\",\"ph\":\"C\",\"ts\":";
  append_us(out, ts);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":0,\"args\":{\"";
  out += series;
  out += "\":";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  out += buf;
  out += "}}";
}

}  // namespace

std::string export_trace_event_json(const SpanTracer& tracer, const CostLedger* ledger) {
  // Open spans are drawn up to the latest timestamp the arena knows about.
  Time horizon = 0;
  for (SpanId id = 1; id <= tracer.span_count(); ++id) {
    const SpanRecord& rec = tracer.span(id);
    horizon = std::max(horizon, rec.open() ? rec.begin : rec.end);
  }

  std::string out = "{\n\"traceEvents\":[\n";
  bool first = true;
  for (std::uint32_t slot = 0; slot <= tracer.num_nodes(); ++slot) {
    const std::string pname =
        slot == tracer.service_slot() ? "ord-service" : "p" + std::to_string(slot);
    append_meta(out, static_cast<int>(slot), 0, "process_name", pname, first);
    append_meta(out, static_cast<int>(slot), kTrackProtocol, "thread_name", "protocol", first);
    append_meta(out, static_cast<int>(slot), kTrackStorage, "thread_name", "storage", first);
    append_meta(out, static_cast<int>(slot), kTrackNet, "thread_name", "net", first);
  }

  for (SpanId id = 1; id <= tracer.span_count(); ++id) {
    const SpanRecord& rec = tracer.span(id);
    const int track = track_of(rec.name);
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\":\"";
    out += to_string(rec.name);
    out += "\",\"cat\":\"";
    out += category_of(track);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, rec.begin);
    out += ",\"dur\":";
    append_us(out, rec.duration(horizon));
    out += ",\"pid\":";
    out += std::to_string(rec.node);
    out += ",\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"id\":";
    out += std::to_string(id);
    out += ",\"parent\":";
    out += std::to_string(rec.parent);
    out += ",\"inc\":";
    out += std::to_string(rec.inc);
    if (rec.detail != 0) out += ",\"detail\":" + std::to_string(rec.detail);
    if (rec.aborted()) out += ",\"aborted\":true";
    if (rec.open()) out += ",\"open\":true";
    out += "}}";
  }

  if (ledger != nullptr) {
    for (std::size_t s = 0; s < ledger->sample_count(); ++s) {
      const LedgerSampleHeader& h = ledger->sample_header(s);
      append_counter(out, "net_kb", h.at, tracer.service_slot(), "kb",
                     static_cast<double>(h.net_bytes) / 1024.0, first);
      append_counter(out, "ctrl_kb", h.at, tracer.service_slot(), "kb",
                     static_cast<double>(h.ctrl_bytes) / 1024.0, first);
      for (std::uint32_t n = 0; n < ledger->num_nodes(); ++n) {
        const LedgerNodeSample& row = ledger->sample_node(s, n);
        append_counter(out, "blocked_ms", h.at, n, "ms",
                       static_cast<double>(row.blocked_ns) / 1e6, first);
        append_counter(out, "sent_kb", h.at, n, "kb",
                       static_cast<double>(row.sent_bytes) / 1024.0, first);
      }
    }
  }

  out += "\n],\n\"displayTimeUnit\":\"ms\"\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser + trace_event schema check. Validation only: the tree
// it builds is a throwaway, so simplicity beats speed here.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind{Kind::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out)) {
      error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out += '?';  // codepoint value irrelevant for validation
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue element;
      if (!value(element)) return false;
      out.object.emplace_back(std::move(key), std::move(element));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

bool schema_fail(std::string* error, std::size_t index, const char* what) {
  if (error) *error = "traceEvents[" + std::to_string(index) + "]: " + what;
  return false;
}

}  // namespace

bool validate_trace_event_json(std::string_view json, std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!JsonParser(json).parse(root, parse_error)) {
    if (error) *error = "parse error: " + parse_error;
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (error) *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error) *error = "missing \"traceEvents\" array";
    return false;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (ev.kind != JsonValue::Kind::kObject) return schema_fail(error, i, "not an object");
    const JsonValue* name = ev.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return schema_fail(error, i, "missing string \"name\"");
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string.size() != 1) {
      return schema_fail(error, i, "missing one-char string \"ph\"");
    }
    for (const char* key : {"pid", "tid", "ts"}) {
      const JsonValue* v = ev.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        return schema_fail(error, i, "missing numeric pid/tid/ts");
      }
    }
    const JsonValue* args = ev.find("args");
    if (args != nullptr && args->kind != JsonValue::Kind::kObject) {
      return schema_fail(error, i, "\"args\" is not an object");
    }
    if (ph->string == "X") {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber || dur->number < 0) {
        return schema_fail(error, i, "\"X\" event without non-negative \"dur\"");
      }
      const JsonValue* cat = ev.find("cat");
      if (cat == nullptr || cat->kind != JsonValue::Kind::kString) {
        return schema_fail(error, i, "\"X\" event without string \"cat\"");
      }
    } else if (ph->string == "M") {
      if (args == nullptr || args->find("name") == nullptr) {
        return schema_fail(error, i, "metadata event without args.name");
      }
    } else if (ph->string == "C") {
      // Counter samples carry one or more numeric series in args.
      if (args == nullptr || args->object.empty()) {
        return schema_fail(error, i, "\"C\" event without args series");
      }
      for (const auto& [key, v] : args->object) {
        if (v.kind != JsonValue::Kind::kNumber) {
          return schema_fail(error, i, "\"C\" event with non-numeric series");
        }
      }
    }
  }
  return true;
}

}  // namespace rr::obs
