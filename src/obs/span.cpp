#include "obs/span.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rr::obs {

const char* to_string(SpanName name) {
  switch (name) {
    case SpanName::kRecovery: return "recovery";
    case SpanName::kDetect: return "detect";
    case SpanName::kRestore: return "restore";
    case SpanName::kElection: return "election";
    case SpanName::kGather: return "gather";
    case SpanName::kRegather: return "regather";
    case SpanName::kIncVector: return "incvector";
    case SpanName::kReplay: return "replay";
    case SpanName::kCtrlTransit: return "ctrl_transit";
    case SpanName::kStorageWrite: return "storage_write";
    case SpanName::kStorageRead: return "storage_read";
    case SpanName::kStorageErase: return "storage_erase";
  }
  return "?";
}

SpanTracer::SpanTracer(SpanTracerConfig config, metrics::Registry& metrics)
    : config_(config), metrics_(metrics) {
  RR_CHECK(config_.num_nodes > 0);
  RR_CHECK(config_.flight_capacity > 0);
  nodes_.resize(config_.num_nodes + 1);
  rings_.resize(config_.num_nodes + 1);
  for (auto& ring : rings_) ring.slots.resize(config_.flight_capacity);
  // Resolve every metric handle once; map references are stable, so the
  // hot path is pure index math from here on.
  for (std::size_t i = 0; i < kSpanNameCount; ++i) {
    const std::string name = std::string("span.") + to_string(static_cast<SpanName>(i));
    hist_[i] = &metrics_.histogram(name);
    accum_[i] = &metrics_.accum(name);
  }
}

SpanRecord& SpanTracer::record(SpanId id) {
  return const_cast<SpanRecord&>(static_cast<const SpanTracer*>(this)->span(id));
}

const SpanRecord& SpanTracer::span(SpanId id) const {
  RR_CHECK(id != kNoSpan && id <= count_);
  const std::size_t index = id - 1;
  return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
}

SpanId SpanTracer::begin_span(Time now, SpanName name, std::uint32_t node, SpanId parent,
                              std::uint64_t detail) {
  if (count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<SpanRecord[]>(kChunkSize));
  }
  const std::size_t index = count_++;
  SpanRecord& rec = chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  rec = SpanRecord{};
  rec.begin = now;
  rec.parent = parent;
  rec.node = node;
  rec.inc = node < nodes_.size() ? nodes_[node].inc : 0;
  rec.detail = detail;
  rec.name = name;
  return static_cast<SpanId>(index + 1);
}

void SpanTracer::end_span(Time now, SpanId id, bool aborted) {
  if (id == kNoSpan) return;
  SpanRecord& rec = record(id);
  if (!rec.open()) return;
  rec.end = now;
  if (aborted) rec.flags |= SpanRecord::kAborted;
  push_flight(rec);
  if (!aborted) record_latency(rec);
}

SpanId SpanTracer::complete_span(Time begin, Time end, SpanName name, std::uint32_t node,
                                 SpanId parent, std::uint64_t detail) {
  const SpanId id = begin_span(begin, name, node, parent, detail);
  SpanRecord& rec = record(id);
  rec.end = end;
  push_flight(rec);
  record_latency(rec);
  return id;
}

SpanId SpanTracer::active_of(const NodeState& st) const {
  if (st.incvec != kNoSpan) return st.incvec;
  // A leader can gather for a later round while its own replay runs; the
  // innermost open span is whichever began last.
  if (st.gather != kNoSpan && st.phase != kNoSpan) {
    return span(st.gather).begin >= span(st.phase).begin ? st.gather : st.phase;
  }
  if (st.gather != kNoSpan) return st.gather;
  if (st.phase != kNoSpan) return st.phase;
  return st.recovery;
}

void SpanTracer::push_flight(const SpanRecord& rec) {
  if (rec.node >= rings_.size()) return;
  FlightRing& ring = rings_[rec.node];
  ring.slots[ring.next] =
      FlightRecord{rec.begin, rec.end, rec.inc, rec.detail, rec.name, rec.flags};
  ring.next = (ring.next + 1) % ring.slots.size();
  ++ring.count;
}

void SpanTracer::record_latency(const SpanRecord& rec) {
  const auto slot = static_cast<std::size_t>(rec.name);
  const auto d = static_cast<double>(rec.end - rec.begin);
  hist_[slot]->record(d);
  accum_[slot]->record(d);
}

// --- node lifecycle --------------------------------------------------------

void SpanTracer::on_crash(Time now, std::uint32_t node, Incarnation inc) {
  if (node >= nodes_.size()) return;
  NodeState& st = nodes_[node];
  // Whatever the node was doing dies with it — a failed leader's gather
  // ends here, not at some later timeout on a survivor.
  end_span(now, st.incvec, /*aborted=*/true);
  end_span(now, st.gather, /*aborted=*/true);
  end_span(now, st.phase, /*aborted=*/true);
  end_span(now, st.recovery, /*aborted=*/true);
  st = NodeState{};
  // Until the restore reads stable storage the next incarnation is only
  // provisional; on_restored() patches the open records with the real one.
  st.inc = inc + 1;
  st.recovery = begin_span(now, SpanName::kRecovery, node, kNoSpan);
  st.phase = begin_span(now, SpanName::kDetect, node, st.recovery);
}

void SpanTracer::on_restore_begin(Time now, std::uint32_t node) {
  if (node >= nodes_.size()) return;
  NodeState& st = nodes_[node];
  end_span(now, st.phase);
  st.phase = begin_span(now, SpanName::kRestore, node, st.recovery);
}

void SpanTracer::on_restored(Time now, std::uint32_t node, Incarnation inc) {
  if (node >= nodes_.size()) return;
  NodeState& st = nodes_[node];
  st.inc = inc;
  if (st.recovery != kNoSpan) record(st.recovery).inc = inc;
  if (st.phase != kNoSpan) record(st.phase).inc = inc;
  end_span(now, st.phase);
  st.phase = begin_span(now, SpanName::kElection, node, st.recovery);
}

void SpanTracer::on_recovery_complete(Time now, std::uint32_t node) {
  if (node >= nodes_.size()) return;
  NodeState& st = nodes_[node];
  // A completing leader abandons any round still in flight.
  end_span(now, st.incvec, /*aborted=*/true);
  end_span(now, st.gather, /*aborted=*/true);
  end_span(now, st.phase);
  end_span(now, st.recovery);
  const Incarnation inc = st.inc;
  st = NodeState{};
  st.inc = inc;
}

// --- protocol phases -------------------------------------------------------

void SpanTracer::on_phase(Time now, const trace::PhaseEventInfo& info) {
  const std::uint32_t node = slot_of(info.pid);
  if (node >= nodes_.size()) return;
  NodeState& st = nodes_[node];
  switch (info.phase) {
    case trace::PhaseId::kLeaderElected:
    case trace::PhaseId::kLeaderFailover:
      // Leadership decided: the election phase of this node is over.
      if (st.phase != kNoSpan && span(st.phase).name == SpanName::kElection) {
        end_span(now, st.phase);
        st.phase = kNoSpan;
      }
      break;
    case trace::PhaseId::kGatherStarted: {
      // A silent stand-down can leave the previous round's span open; the
      // new round's start is the latest moment it can have ended.
      end_span(now, st.incvec, /*aborted=*/true);
      end_span(now, st.gather, /*aborted=*/true);
      const SpanName name = st.regather_next ? SpanName::kRegather : SpanName::kGather;
      st.regather_next = false;
      st.gather = begin_span(now, name, node, st.recovery, info.round);
      st.incvec = begin_span(now, SpanName::kIncVector, node, st.gather, info.round);
      break;
    }
    case trace::PhaseId::kIncVectorBuilt:
      end_span(now, st.incvec);
      st.incvec = kNoSpan;
      break;
    case trace::PhaseId::kDepinfoCollected:
      end_span(now, st.incvec, /*aborted=*/true);
      st.incvec = kNoSpan;
      end_span(now, st.gather);
      st.gather = kNoSpan;
      break;
    case trace::PhaseId::kGatherRestarted:
      end_span(now, st.incvec, /*aborted=*/true);
      st.incvec = kNoSpan;
      end_span(now, st.gather, /*aborted=*/true);
      st.gather = kNoSpan;
      st.regather_next = true;
      break;
    case trace::PhaseId::kReplayStarted:
      // Followers learn leadership implicitly from the install.
      if (st.phase != kNoSpan && span(st.phase).name == SpanName::kElection) {
        end_span(now, st.phase);
        st.phase = kNoSpan;
      }
      if (st.phase == kNoSpan && st.recovery != kNoSpan) {
        st.phase = begin_span(now, SpanName::kReplay, node, st.recovery, info.round);
      }
      break;
    case trace::PhaseId::kOrdAssigned:
    case trace::PhaseId::kOrdRetired:
    case trace::PhaseId::kSubtreeReparented:
      // Registry instants, not intervals; V8 consumes them from the trace.
      break;
  }
}

// --- infrastructure --------------------------------------------------------

void SpanTracer::on_packet(Time sent, Time deliver_at, std::uint32_t src,
                           std::uint32_t dst, std::size_t bytes, std::uint32_t first_byte) {
  if (first_byte != config_.ctrl_frame_byte) return;
  const std::uint32_t node = dst < config_.num_nodes ? dst : service_slot();
  const SpanId parent = active_of(nodes_[node]);
  (void)src;
  complete_span(sent, deliver_at, SpanName::kCtrlTransit, node, parent, bytes);
}

void SpanTracer::on_storage_op(Time issued, Time completes, std::uint32_t node, SpanName op,
                               std::size_t bytes) {
  RR_CHECK(op == SpanName::kStorageWrite || op == SpanName::kStorageRead ||
           op == SpanName::kStorageErase);
  const std::uint32_t slot = node < config_.num_nodes ? node : service_slot();
  complete_span(issued, completes, op, slot, active_of(nodes_[slot]), bytes);
}

// --- introspection ---------------------------------------------------------

std::vector<SpanId> SpanTracer::open_spans(std::uint32_t node) const {
  std::vector<SpanId> out;
  if (node >= nodes_.size()) return out;
  const NodeState& st = nodes_[node];
  for (const SpanId id : {st.recovery, st.phase, st.gather, st.incvec}) {
    if (id != kNoSpan) out.push_back(id);
  }
  std::sort(out.begin(), out.end());  // outermost (oldest) first
  return out;
}

bool SpanTracer::flight_empty(std::uint32_t node) const {
  if (node >= rings_.size()) return true;
  return rings_[node].count == 0 && open_spans(node).empty();
}

std::vector<std::uint32_t> SpanTracer::involved_nodes() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t n = 0; n < rings_.size(); ++n) {
    if (!flight_empty(n)) out.push_back(n);
  }
  return out;
}

std::string to_string(const SpanRecord& rec) {
  std::string out = "[";
  out += format_duration(rec.begin);
  out += " .. ";
  out += rec.open() ? "open" : format_duration(rec.end);
  out += "] ";
  out += to_string(rec.name);
  if (!rec.open()) {
    out += " ";
    out += format_duration(rec.end - rec.begin);
  }
  out += " inc=" + std::to_string(rec.inc);
  if (rec.detail != 0) out += " detail=" + std::to_string(rec.detail);
  if (rec.aborted()) out += " (aborted)";
  return out;
}

std::string SpanTracer::dump_flight(std::uint32_t node, std::size_t limit) const {
  std::string out;
  if (node >= rings_.size()) return out;
  const FlightRing& ring = rings_[node];
  const std::size_t have = std::min(ring.count, ring.slots.size());
  const std::size_t take = std::min(limit, have);
  // Oldest-first over the last `take` completed spans.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t pos =
        (ring.next + ring.slots.size() - take + i) % ring.slots.size();
    const FlightRecord& fr = ring.slots[pos];
    SpanRecord rec;
    rec.begin = fr.begin;
    rec.end = fr.end;
    rec.inc = fr.inc;
    rec.detail = fr.detail;
    rec.name = fr.name;
    rec.flags = fr.flags;
    out += "  " + to_string(rec) + "\n";
  }
  for (const SpanId id : open_spans(node)) {
    out += "  " + to_string(span(id)) + "  <-- still open\n";
  }
  return out;
}

std::string SpanTracer::dump_all_flights(std::size_t limit) const {
  std::string out;
  for (const std::uint32_t node : involved_nodes()) {
    out += node == service_slot() ? "flight recorder, ord service:\n"
                                  : "flight recorder, p" + std::to_string(node) + ":\n";
    out += dump_flight(node, limit);
  }
  return out;
}

}  // namespace rr::obs
