// Communication-cost ledger — per-category byte attribution + deterministic
// counter time-series.
//
// The paper's argument is about *communication costs*, but scalar counters
// ("net.bytes", "recovery.ctrl_bytes") cannot say which protocol component
// the bytes belong to, nor how cost and live-process intrusion evolve
// during a run. The ledger closes both gaps:
//
//   * Byte attribution: every packet accepted by net::Network::send is
//     classified — at the exact site where "net.bytes" is charged — into a
//     fixed category taxonomy: application payload, piggybacked
//     determinants (pruned vs the paper's re-ship-everything mode),
//     incvector full snapshots vs deltas, gather-tree relay fan-out,
//     recovery control per kind (mirroring analysis::MessageBreakdown),
//     reliable-transport acks and retransmissions, heartbeats, checkpoint
//     notices and Chandy-Lamport snapshot frames. Reliable-transport
//     framing ([0xD7]...) is unwrapped before classification so the
//     wrapper never smears the inner frame's category. Category totals are
//     mirrored into metrics::Registry as "ledger.bytes.<cat>" and
//     "ledger.frames.<cat>"; the per-(node, category) breakdown lives in
//     dense arrays here and is exported via export_metrics_json().
//
//   * Timeline: a sampler driven purely by sim time (fixed sample_every
//     period, no wall clock) snapshots the wire totals and every node's
//     IntervalTracker blocked time into a chunked-arena series, giving
//     bytes-over-time and intrusion-over-time curves that are bit-identical
//     across --jobs values. The series renders as Perfetto counter tracks
//     next to the span flame chart (obs/perfetto.hpp) and as JSON via
//     rrsim/rrcheck --metrics-out.
//
//   * V10 oracle (audit()): the category byte totals must sum exactly to
//     "net.bytes", and the per-kind control-frame counts seen on the wire
//     must equal the sender-side "recovery.msg.<kind>" counters — the
//     wire-sniffed attribution and the protocol's own intent bookkeeping
//     are two independent derivations of the same quantity.
//
// Layering: obs (rank 3) may include fbl (rank 2) for the frame codecs but
// never recovery (rank 5) or net (rank 4). Control-frame sub-structure is
// therefore parsed here against the wire layout recovery/messages.cpp
// defines (the agreement is pinned by tests/obs_ledger_test.cpp), and the
// transport's magic bytes arrive via CostLedgerConfig instead of an
// include. net and recovery sit above obs, so their attribution hooks call
// *into* the ledger (Network::set_ledger, ReliableTransport retransmit
// hints).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "common/time.hpp"
#include "metrics/registry.hpp"

namespace rr::obs {

/// Fixed cost taxonomy. Every wire byte accepted by the network lands in
/// exactly one category; every packet counts one frame under its primary
/// category. See DESIGN.md §11 for the attribution rules.
enum class CostCategory : std::uint8_t {
  kAppPayload = 0,       ///< app frames minus their piggybacked determinants
  kPiggybackPruned,      ///< determinants piggybacked under per-dest pruning
  kPiggybackReship,      ///< determinants under the paper's re-ship-all mode
  kHeartbeat,            ///< failure-detector liveness frames
  kCkptNotice,           ///< checkpoint GC notices
  kSnapshot,             ///< Chandy-Lamport markers/reports
  kIncVectorFull,        ///< full incvector snapshots inside DepRequests
  kIncVectorDelta,       ///< versioned incvector deltas inside DepRequests
  kGatherRelay,          ///< DepRequest fan-out forwarded by a tree relay
  kTransportAck,         ///< reliable-transport cumulative acks (0xA7)
  kTransportRetransmit,  ///< retransmitted reliable-transport data frames
  kOther,                ///< unparseable / unknown leading byte
  // Control frames per kind, in recovery's CtrlKind wire order (1..14);
  // the first ten mirror analysis::MessageBreakdown.
  kCtrlOrdRequest,
  kCtrlOrdReply,
  kCtrlRSetRequest,
  kCtrlRSetReply,
  kCtrlIncRequest,
  kCtrlIncReply,
  kCtrlDepRequest,
  kCtrlDepReply,
  kCtrlDepInstall,
  kCtrlRecoveryComplete,
  kCtrlReplayRequest,
  kCtrlReplayData,
  kCtrlDetPush,
  kCtrlDetAck,
};
inline constexpr std::size_t kCostCategoryCount = 26;
inline constexpr std::size_t kFirstCtrlCategory =
    static_cast<std::size_t>(CostCategory::kCtrlOrdRequest);
inline constexpr std::size_t kCtrlCategoryCount = 14;

/// Stable metric suffix ("app_payload", "ctrl.dep_request", ...). The
/// ctrl.<kind> suffixes match recovery::control_name().
[[nodiscard]] const char* to_string(CostCategory c);

struct CostLedgerConfig {
  /// Application processes; the ledger adds one slot for services (ord).
  std::uint32_t num_nodes{0};
  /// Attributes piggybacked determinant bytes to the pruned vs the
  /// re-ship-everything category (mirrors ClusterConfig::prune_piggyback).
  bool prune_piggyback{true};
  /// Timeline sampling period; 0 disables the sampler (the byte ledger
  /// itself is always on).
  Duration sample_every{0};
  /// Reliable-transport magic bytes (net::ReliableTransport::kDataByte /
  /// kAckByte), passed by the owner because obs must not include net.
  /// 0x100 disables transport unwrapping.
  std::uint32_t transport_data_byte{0x100};
  std::uint32_t transport_ack_byte{0x100};
};

/// One timeline sample of one node.
struct LedgerNodeSample {
  std::uint64_t blocked_ns{0};  ///< cumulative IntervalTracker blocked time
  std::uint64_t sent_bytes{0};  ///< cumulative wire bytes sent by the node
};

/// Per-sample global header (node rows live in the chunked arena).
struct LedgerSampleHeader {
  Time at{0};
  std::uint64_t net_bytes{0};   ///< "net.bytes" at the sample instant
  std::uint64_t ctrl_bytes{0};  ///< "recovery.ctrl_bytes" ditto
};

class CostLedger {
 public:
  CostLedger(CostLedgerConfig config, metrics::Registry& metrics);

  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  // --- wire tap (net::Network::send, at the "net.bytes" charge site) ------

  /// Classify and record one accepted packet. `header_bytes` is the framing
  /// charged on top of the payload (net::Network::kHeaderBytes);
  /// `retransmit` marks a reliable-transport re-send (the wire bytes are
  /// identical to the first transmission, so the transport must say so).
  void on_wire(std::uint32_t src, std::span<const std::byte> payload,
               std::size_t header_bytes, bool retransmit);

  /// One-shot hint set by net::ReliableTransport immediately before it
  /// re-sends a frame; Network::send consumes it (take_retransmit_hint) on
  /// every path, so a dropped retransmission cannot mislabel the next
  /// packet.
  void note_retransmit(std::uint32_t src);
  [[nodiscard]] bool take_retransmit_hint(std::uint32_t src);

  // --- timeline -----------------------------------------------------------

  /// Append one sample: `blocked_ns[i]` is node i's cumulative blocked
  /// time. Driven by the owner on a fixed sim-time cadence (and once more
  /// at run end, so the final sample equals the scalar metric exactly).
  void take_sample(Time now, std::span<const std::uint64_t> blocked_ns);

  [[nodiscard]] Duration sample_every() const noexcept { return config_.sample_every; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return headers_.size(); }
  [[nodiscard]] const LedgerSampleHeader& sample_header(std::size_t i) const {
    return headers_[i];
  }
  /// Node row of sample i (node in [0, num_nodes), app processes only).
  [[nodiscard]] const LedgerNodeSample& sample_node(std::size_t i,
                                                    std::uint32_t node) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return config_.num_nodes; }
  [[nodiscard]] std::uint64_t bytes(CostCategory c) const noexcept {
    return bytes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t frames(CostCategory c) const noexcept {
    return frames_[static_cast<std::size_t>(c)];
  }
  /// Sum of bytes over all categories (== "net.bytes" when V10 holds).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  /// Per-(node, category) bytes; node == num_nodes() is the service slot.
  [[nodiscard]] std::uint64_t node_bytes(std::uint32_t node, CostCategory c) const;
  /// All wire bytes sent by `node`, across categories.
  [[nodiscard]] std::uint64_t node_total_bytes(std::uint32_t node) const;

  // --- V10 cost-conservation oracle --------------------------------------

  /// Empty when the ledger agrees with the registry: (a) category bytes sum
  /// exactly to "net.bytes"; (b) for each control kind, wire-classified
  /// frame counts equal the sender-side "recovery.msg.<kind>" counters.
  [[nodiscard]] std::vector<std::string> audit(const metrics::Registry& m) const;

 private:
  static constexpr std::size_t kChunkShift = 10;  // 1024 node rows per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  void record(std::uint32_t slot, CostCategory c, std::uint64_t bytes,
              std::uint64_t frames);
  /// Classify `payload` (transport framing already unwrapped) and record
  /// its categories; `total` is the full charge for the packet.
  void classify_frame(std::uint32_t slot, std::span<const std::byte> payload,
                      std::uint64_t total);
  void classify_control(std::uint32_t slot, BufReader& r, std::uint64_t total);
  [[nodiscard]] LedgerNodeSample& sample_slot(std::size_t flat);

  CostLedgerConfig config_;
  metrics::Registry& metrics_;
  std::array<std::uint64_t, kCostCategoryCount> bytes_{};
  std::array<std::uint64_t, kCostCategoryCount> frames_{};
  /// "ledger.bytes.<cat>" / "ledger.frames.<cat>" handles, resolved once.
  std::array<metrics::Counter*, kCostCategoryCount> bytes_counter_{};
  std::array<metrics::Counter*, kCostCategoryCount> frames_counter_{};
  /// (num_nodes + 1) x kCostCategoryCount, node-major.
  std::vector<std::uint64_t> per_node_;
  std::vector<std::uint8_t> retransmit_hint_;  // per slot, one-shot
  /// Timeline: headers plus a chunked arena of node rows (sample-major:
  /// sample s, node i lives at flat index s * num_nodes + i). Chunks never
  /// move, so appending a sample never invalidates earlier rows.
  std::vector<LedgerSampleHeader> headers_;
  std::vector<std::unique_ptr<LedgerNodeSample[]>> chunks_;
  std::size_t node_rows_{0};
};

/// Deterministic metrics JSON: every registry counter (sorted), the
/// ledger's category/per-node breakdown and the sampled timeline. Byte
/// identical across --jobs values for identical runs; `ledger` may be null
/// (counters only).
[[nodiscard]] std::string export_metrics_json(const metrics::Registry& metrics,
                                              const CostLedger* ledger);

}  // namespace rr::obs
