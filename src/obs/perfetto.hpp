// Chrome/Perfetto trace_event export for the span tracer, plus a
// dependency-free structural validator used by tier-1 tests.
//
// The emitted file is the JSON object form of the trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a top-level object with a "traceEvents" array of complete ("X") events.
// Load it at https://ui.perfetto.dev or chrome://tracing. One Perfetto
// "process" per simulated node (pid == node slot) with three named tracks:
// protocol spans (tid 0), stable-storage intervals (tid 1) and control
// packet transit (tid 2) — storage/net intervals routinely outlive the
// protocol phase that issued them, so they cannot share the protocol track
// without breaking trace_event's stack-nesting rule.
#pragma once

#include <string>
#include <string_view>

#include "obs/ledger.hpp"
#include "obs/span.hpp"

namespace rr::obs {

/// Render the tracer's whole arena as trace_event JSON. Spans still open
/// are extended to the latest timestamp in the arena and tagged
/// "open": true in their args. When a CostLedger with a sampled timeline is
/// given, its series are merged into the same stream as counter ("C")
/// tracks on the same timebase: per-node blocked_ms and sent_bytes, plus
/// the cluster-wide net_bytes/ctrl_bytes curves on the service process —
/// so span flame charts and cost curves line up in the Perfetto UI.
[[nodiscard]] std::string export_trace_event_json(const SpanTracer& tracer,
                                                  const CostLedger* ledger = nullptr);

/// Structural check of trace_event JSON: parses the document with a small
/// built-in JSON parser (no external deps) and verifies the trace_event
/// schema subset this repo emits — top-level object, "traceEvents" array,
/// every event an object with string "name"/"ph"/"cat", numeric
/// "pid"/"tid"/"ts", non-negative "dur" on "X" events, object "args".
/// Returns true on success; on failure fills `error` (if non-null) with a
/// description including the offending position.
[[nodiscard]] bool validate_trace_event_json(std::string_view json, std::string* error);

}  // namespace rr::obs
