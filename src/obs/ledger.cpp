#include "obs/ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rr::obs {
namespace {

// Wire constants this classifier parses against. The frame kinds come from
// fbl/frame.hpp; the control sub-kinds mirror recovery/messages.cpp's
// CtrlKind (obs cannot include recovery — tests/obs_ledger_test.cpp pins
// the agreement byte-for-byte against recovery::encode_control).
constexpr std::uint8_t kFrameApp = 1;
constexpr std::uint8_t kFrameHeartbeat = 2;
constexpr std::uint8_t kFrameCkptNotice = 3;
constexpr std::uint8_t kFrameControl = 4;
constexpr std::uint8_t kFrameSnapshot = 5;
constexpr std::uint8_t kCtrlDepRequest = 7;

constexpr const char* kCategoryNames[kCostCategoryCount] = {
    "app_payload",
    "piggyback_pruned",
    "piggyback_reship",
    "heartbeat",
    "ckpt_notice",
    "snapshot",
    "incvector_full",
    "incvector_delta",
    "gather_relay",
    "transport_ack",
    "transport_retransmit",
    "other",
    // The ctrl.<kind> tail matches recovery::control_name() order.
    "ctrl.ord_request",
    "ctrl.ord_reply",
    "ctrl.rset_request",
    "ctrl.rset_reply",
    "ctrl.inc_request",
    "ctrl.inc_reply",
    "ctrl.dep_request",
    "ctrl.dep_reply",
    "ctrl.dep_install",
    "ctrl.recovery_complete",
    "ctrl.replay_request",
    "ctrl.replay_data",
    "ctrl.det_push",
    "ctrl.det_ack",
};

/// Skip one encoded HeldDeterminant: Determinant (u32 source, u64 ssn,
/// u32 dest, u64 rsn) + sparse holder list (varint count + varint bits).
void skip_held_determinant(BufReader& r) {
  (void)r.u32();
  (void)r.u64();
  (void)r.u32();
  (void)r.u64();
  const auto holders = r.count(1);
  for (std::uint64_t i = 0; i < holders; ++i) (void)r.varint();
}

}  // namespace

const char* to_string(CostCategory c) {
  return kCategoryNames[static_cast<std::size_t>(c)];
}

CostLedger::CostLedger(CostLedgerConfig config, metrics::Registry& metrics)
    : config_(config), metrics_(metrics) {
  for (std::size_t i = 0; i < kCostCategoryCount; ++i) {
    const std::string suffix = kCategoryNames[i];
    bytes_counter_[i] = &metrics_.counter("ledger.bytes." + suffix);
    frames_counter_[i] = &metrics_.counter("ledger.frames." + suffix);
  }
  per_node_.assign((config_.num_nodes + std::size_t{1}) * kCostCategoryCount, 0);
  retransmit_hint_.assign(config_.num_nodes + std::size_t{1}, 0);
}

void CostLedger::record(std::uint32_t slot, CostCategory c, std::uint64_t bytes,
                        std::uint64_t frames) {
  const auto i = static_cast<std::size_t>(c);
  bytes_[i] += bytes;
  frames_[i] += frames;
  bytes_counter_[i]->add(bytes);
  frames_counter_[i]->add(frames);
  per_node_[slot * kCostCategoryCount + i] += bytes;
}

void CostLedger::on_wire(std::uint32_t src, std::span<const std::byte> payload,
                         std::size_t header_bytes, bool retransmit) {
  const std::uint32_t slot = std::min(src, config_.num_nodes);
  const std::uint64_t total = payload.size() + header_bytes;
  if (retransmit) {
    record(slot, CostCategory::kTransportRetransmit, total, 1);
    return;
  }
  if (payload.empty()) {
    record(slot, CostCategory::kOther, total, 1);
    return;
  }
  const auto lead = static_cast<std::uint32_t>(payload[0]);
  try {
    if (lead == config_.transport_ack_byte) {
      record(slot, CostCategory::kTransportAck, total, 1);
      return;
    }
    if (lead == config_.transport_data_byte) {
      // Strip the reliable-transport header ([magic][u32 epoch]
      // [varint stream][varint seq]) so the wrapper never smears the inner
      // frame's category; the wrapper bytes stay charged with the frame.
      BufReader r(payload);
      (void)r.u8();
      (void)r.u32();
      (void)r.varint();
      (void)r.varint();
      classify_frame(slot, r.raw(r.remaining()), total);
      return;
    }
    classify_frame(slot, payload, total);
  } catch (const SerdeError&) {
    record(slot, CostCategory::kOther, total, 1);
  }
}

void CostLedger::classify_frame(std::uint32_t slot,
                                std::span<const std::byte> payload,
                                std::uint64_t total) {
  BufReader r(payload);
  switch (r.u8()) {
    case kFrameApp: {
      // u32 inc, u64 ssn, varint n, n HeldDeterminants, bytes payload. The
      // piggybacked determinant region is carved out of the app charge; the
      // frame itself counts once, under app_payload.
      (void)r.u32();
      (void)r.u64();
      const auto n = r.count(1);
      const std::size_t before = r.remaining();
      for (std::uint64_t i = 0; i < n; ++i) skip_held_determinant(r);
      const std::uint64_t piggyback = before - r.remaining();
      const CostCategory pb_cat = config_.prune_piggyback
                                      ? CostCategory::kPiggybackPruned
                                      : CostCategory::kPiggybackReship;
      record(slot, CostCategory::kAppPayload, total - piggyback, 1);
      if (piggyback > 0) record(slot, pb_cat, piggyback, 0);
      return;
    }
    case kFrameHeartbeat:
      record(slot, CostCategory::kHeartbeat, total, 1);
      return;
    case kFrameCkptNotice:
      record(slot, CostCategory::kCkptNotice, total, 1);
      return;
    case kFrameControl:
      classify_control(slot, r, total);
      return;
    case kFrameSnapshot:
      record(slot, CostCategory::kSnapshot, total, 1);
      return;
    default:
      record(slot, CostCategory::kOther, total, 1);
      return;
  }
}

void CostLedger::classify_control(std::uint32_t slot, BufReader& r,
                                  std::uint64_t total) {
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > kCtrlCategoryCount) {
    record(slot, CostCategory::kOther, total, 1);
    return;
  }
  const auto cat =
      static_cast<CostCategory>(kFirstCtrlCategory + (kind - 1));
  if (kind != kCtrlDepRequest) {
    record(slot, cat, total, 1);
    return;
  }
  // DepRequest carries the leader's incvector (full snapshot or delta) and
  // may be relayed by gather-tree interior nodes. Carve the incvector bytes
  // into their own categories, and attribute the remainder to gather_relay
  // when the sender is not the leader named in the frame — that remainder
  // is pure fan-out cost the paper's flat O(n) gather would not pay twice.
  // The frame count stays under ctrl.dep_request either way, so the V10
  // per-kind equality with "recovery.msg.dep_request" covers relays too.
  (void)r.u64();                       // round
  (void)r.boolean();                   // block
  (void)r.boolean();                   // defer
  const std::uint32_t leader = r.u32();  // leader pid
  (void)r.u32();                       // leader incarnation
  (void)r.varint();                    // gather arity
  const std::size_t before = r.remaining();
  (void)r.varint();  // delta base_version
  (void)r.varint();  // delta version
  const bool full = r.boolean();
  const auto entries = r.count(8);
  for (std::uint64_t i = 0; i < entries; ++i) {
    (void)r.u32();  // process id
    (void)r.u32();  // incarnation floor
  }
  const std::uint64_t inc_bytes = before - r.remaining();
  const CostCategory inc_cat =
      full ? CostCategory::kIncVectorFull : CostCategory::kIncVectorDelta;
  const CostCategory rest_cat =
      slot != leader ? CostCategory::kGatherRelay : cat;
  record(slot, cat, 0, 1);
  record(slot, inc_cat, inc_bytes, 0);
  record(slot, rest_cat, total - inc_bytes, 0);
}

void CostLedger::note_retransmit(std::uint32_t src) {
  retransmit_hint_[std::min(src, config_.num_nodes)] = 1;
}

bool CostLedger::take_retransmit_hint(std::uint32_t src) {
  std::uint8_t& h = retransmit_hint_[std::min(src, config_.num_nodes)];
  const bool hinted = h != 0;
  h = 0;
  return hinted;
}

LedgerNodeSample& CostLedger::sample_slot(std::size_t flat) {
  const std::size_t chunk = flat >> kChunkShift;
  if (chunk == chunks_.size()) {
    chunks_.push_back(std::make_unique<LedgerNodeSample[]>(kChunkSize));
  }
  return chunks_[chunk][flat & (kChunkSize - 1)];
}

void CostLedger::take_sample(Time now, std::span<const std::uint64_t> blocked_ns) {
  RR_CHECK(blocked_ns.size() == config_.num_nodes);
  headers_.push_back(LedgerSampleHeader{
      .at = now,
      .net_bytes = metrics_.counter_value("net.bytes"),
      .ctrl_bytes = metrics_.counter_value("recovery.ctrl_bytes"),
  });
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    sample_slot(node_rows_ + i) =
        LedgerNodeSample{.blocked_ns = blocked_ns[i],
                         .sent_bytes = node_total_bytes(i)};
  }
  node_rows_ += config_.num_nodes;
}

const LedgerNodeSample& CostLedger::sample_node(std::size_t i,
                                                std::uint32_t node) const {
  RR_CHECK(i < headers_.size() && node < config_.num_nodes);
  const std::size_t flat = i * config_.num_nodes + node;
  return chunks_[flat >> kChunkShift][flat & (kChunkSize - 1)];
}

std::uint64_t CostLedger::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t b : bytes_) sum += b;
  return sum;
}

std::uint64_t CostLedger::node_bytes(std::uint32_t node, CostCategory c) const {
  RR_CHECK(node <= config_.num_nodes);
  return per_node_[node * kCostCategoryCount + static_cast<std::size_t>(c)];
}

std::uint64_t CostLedger::node_total_bytes(std::uint32_t node) const {
  RR_CHECK(node <= config_.num_nodes);
  std::uint64_t sum = 0;
  const std::size_t base = node * kCostCategoryCount;
  for (std::size_t i = 0; i < kCostCategoryCount; ++i) sum += per_node_[base + i];
  return sum;
}

std::vector<std::string> CostLedger::audit(const metrics::Registry& m) const {
  std::vector<std::string> violations;
  char buf[192];
  // V10a — conservation: the category attribution is a partition of every
  // byte the network accepted, no more and no less.
  const std::uint64_t ledger_total = total_bytes();
  const std::uint64_t net_total = m.counter_value("net.bytes");
  if (ledger_total != net_total) {
    std::snprintf(buf, sizeof buf,
                  "V10: ledger category bytes sum to %" PRIu64
                  " but net.bytes counted %" PRIu64,
                  ledger_total, net_total);
    violations.emplace_back(buf);
  }
  // V10b — per-kind agreement: frames classified from the wire equal the
  // sender-side intent counters maintained by the recovery layer.
  for (std::size_t k = 0; k < kCtrlCategoryCount; ++k) {
    const std::size_t cat = kFirstCtrlCategory + k;
    const char* name = kCategoryNames[cat] + 5;  // strip "ctrl."
    const std::uint64_t wire = frames_[cat];
    const std::uint64_t intent = m.counter_value(std::string("recovery.msg.") + name);
    if (wire != intent) {
      std::snprintf(buf, sizeof buf,
                    "V10: wire-classified %s frames %" PRIu64
                    " != recovery.msg.%s %" PRIu64,
                    name, wire, name, intent);
      violations.emplace_back(buf);
    }
  }
  return violations;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string export_metrics_json(const metrics::Registry& metrics,
                                const CostLedger* ledger) {
  std::string out;
  out.reserve(4096);
  out += "{\n\"counters\": {";
  bool first = true;
  for (const std::string& name : metrics.counter_names()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + name + "\": ";
    append_u64(out, metrics.counter_value(name));
  }
  out += "\n}";
  if (ledger != nullptr) {
    out += ",\n\"ledger\": {\n\"categories\": {";
    for (std::size_t i = 0; i < kCostCategoryCount; ++i) {
      const auto c = static_cast<CostCategory>(i);
      out += i == 0 ? "\n" : ",\n";
      out += "  \"";
      out += kCategoryNames[i];
      out += "\": {\"bytes\": ";
      append_u64(out, ledger->bytes(c));
      out += ", \"frames\": ";
      append_u64(out, ledger->frames(c));
      out += "}";
    }
    // Per-node byte rows in category-enum order; the last row is the
    // service slot (ordinal service and any non-node sender).
    out += "\n},\n\"node_bytes\": [";
    for (std::uint32_t n = 0; n <= ledger->num_nodes(); ++n) {
      out += n == 0 ? "\n" : ",\n";
      out += "  [";
      for (std::size_t i = 0; i < kCostCategoryCount; ++i) {
        if (i != 0) out += ", ";
        append_u64(out, ledger->node_bytes(n, static_cast<CostCategory>(i)));
      }
      out += "]";
    }
    out += "\n],\n\"timeline\": {\"sample_every_ns\": ";
    append_i64(out, ledger->sample_every());
    out += ", \"samples\": [";
    for (std::size_t s = 0; s < ledger->sample_count(); ++s) {
      const LedgerSampleHeader& h = ledger->sample_header(s);
      out += s == 0 ? "\n" : ",\n";
      out += "  {\"t_ns\": ";
      append_i64(out, h.at);
      out += ", \"net_bytes\": ";
      append_u64(out, h.net_bytes);
      out += ", \"ctrl_bytes\": ";
      append_u64(out, h.ctrl_bytes);
      out += ", \"nodes\": [";
      for (std::uint32_t n = 0; n < ledger->num_nodes(); ++n) {
        const LedgerNodeSample& row = ledger->sample_node(s, n);
        if (n != 0) out += ", ";
        out += "[";
        append_u64(out, row.blocked_ns);
        out += ", ";
        append_u64(out, row.sent_bytes);
        out += "]";
      }
      out += "]}";
    }
    out += "\n]}\n}";
  }
  out += "\n}\n";
  return out;
}

}  // namespace rr::obs
