// Causal span tracer — the observability layer of the simulator.
//
// The paper's whole argument is about *where time goes* during recovery
// (stable-storage latency, intrusion on live processes), so the repo needs
// more than scalar counters: this module records a tree of timed spans per
// node, each attributed to a (node, incarnation) pair and linked to its
// parent, decomposing every recovery into the phases the protocol actually
// went through — detect, restore, election, gather / regather (with the
// incarnation-round sub-span), replay — plus the infrastructure intervals
// underneath them (control-packet transit, stable-storage operations).
//
// Design constraints:
//   * zero allocation on the hot path: spans live in an arena of
//     fixed-size records, grown in chunks that never move, and every
//     per-span metric handle is resolved once at construction;
//   * bounded post-mortem state: each node owns a flight-recorder ring
//     that retains the last N completed spans, dumped (with any still-open
//     spans) when the history checker reports an oracle violation or the
//     schedule explorer shrinks a repro;
//   * exportable: the whole arena renders as Chrome/Perfetto trace_event
//     JSON (see obs/perfetto.hpp) and feeds per-phase latency histograms
//     into metrics::Registry under "span.<name>" for the bench tables.
//
// The tracer never re-enters the protocol: every entry point only appends
// records. Feed points: runtime::Node (lifecycle), the cluster's PhaseHook
// chain (protocol phases), net::Network (packet transit) and
// storage::StableStorage (device intervals).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "trace/phase_hook.hpp"  // header-only: PhaseId / PhaseEventInfo

namespace rr::obs {

/// Fixed span taxonomy (see DESIGN.md §7 for the opening/closing sites).
enum class SpanName : std::uint8_t {
  kRecovery = 0,   ///< crash → recovery complete (root, per incarnation)
  kDetect,         ///< crash → supervisor starts the restore
  kRestore,        ///< restore start → checkpoint + stable log reloaded
  kElection,       ///< restored → leads a round, or receives an install
  kGather,         ///< round's gather (leader side): started → depinfo done
  kRegather,       ///< a gather begun after a restart of the round
  kIncVector,      ///< incarnation round inside a gather: started → built
  kReplay,         ///< install applied → replay schedule drained
  kCtrlTransit,    ///< one control packet on the wire (send → delivery)
  kStorageWrite,   ///< stable-storage write: issue → device commit
  kStorageRead,    ///< stable-storage read: issue → data returned
  kStorageErase,   ///< stable-storage erase: issue → applied
};
inline constexpr std::size_t kSpanNameCount = 12;

[[nodiscard]] const char* to_string(SpanName name);

/// 1-based arena index; 0 = "no span".
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

/// Node slot used for spans not owned by an application process (the ord
/// service, unknown endpoints). Always the last slot of the tracer.
struct SpanRecord {
  /// Sentinel `end` for spans still open.
  static constexpr Time kOpen = std::numeric_limits<Time>::min();
  /// Flag: closed by a restart/stand-down/crash rather than by finishing.
  static constexpr std::uint8_t kAborted = 0x1;

  Time begin{0};
  Time end{kOpen};
  SpanId parent{kNoSpan};
  std::uint32_t node{0};      ///< tracer slot (== ProcessId value for nodes)
  Incarnation inc{0};
  std::uint64_t detail{0};    ///< round id, payload bytes, ... (name-specific)
  SpanName name{SpanName::kRecovery};
  std::uint8_t flags{0};

  [[nodiscard]] bool open() const noexcept { return end == kOpen; }
  [[nodiscard]] bool aborted() const noexcept { return (flags & kAborted) != 0; }
  [[nodiscard]] Duration duration(Time now) const noexcept {
    return (open() ? now : end) - begin;
  }
};

struct SpanTracerConfig {
  /// Application processes; the tracer adds one extra slot for services.
  std::uint32_t num_nodes{0};
  /// Completed-span records retained per node for post-mortem dumps.
  std::uint32_t flight_capacity{64};
  /// First payload byte that marks a control frame on the wire; packets
  /// with any other leading byte are not traced. 0x100 disables.
  std::uint32_t ctrl_frame_byte{0x100};
};

class SpanTracer {
 public:
  SpanTracer(SpanTracerConfig config, metrics::Registry& metrics);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // --- node lifecycle (runtime::Node) ------------------------------------

  /// Crash of `node` (old incarnation `inc`): closes every span the node
  /// still has open — a failed leader's gather must end at its crash time —
  /// then opens the recovery root and its `detect` child.
  void on_crash(Time now, std::uint32_t node, Incarnation inc);

  /// Supervisor noticed the crash: `detect` closes, `restore` opens.
  void on_restore_begin(Time now, std::uint32_t node);

  /// Checkpoint + stable determinants reloaded as incarnation `inc`:
  /// `restore` closes, `election` opens, and all subsequent spans of the
  /// node are attributed to the new incarnation.
  void on_restored(Time now, std::uint32_t node, Incarnation inc);

  /// Replay drained: closes `replay` (and any still-open led round — a
  /// completing leader abandons an in-flight round) and the recovery root.
  void on_recovery_complete(Time now, std::uint32_t node);

  // --- protocol phases (cluster phase-hook chain) ------------------------

  void on_phase(Time now, const trace::PhaseEventInfo& info);

  // --- infrastructure (both endpoints known at issue time) ---------------

  /// One packet: records a closed kCtrlTransit span on the *destination*
  /// node iff `first_byte` is the configured control-frame marker.
  void on_packet(Time sent, Time deliver_at, std::uint32_t src, std::uint32_t dst,
                 std::size_t bytes, std::uint32_t first_byte);

  /// One stable-storage operation interval (op is one of the kStorage*).
  void on_storage_op(Time issued, Time completes, std::uint32_t node, SpanName op,
                     std::size_t bytes);

  // --- introspection / export --------------------------------------------

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return config_.num_nodes; }
  /// Slot for spans owned by no application process (ord service, ...).
  [[nodiscard]] std::uint32_t service_slot() const noexcept { return config_.num_nodes; }
  [[nodiscard]] std::size_t span_count() const noexcept { return count_; }
  /// Record by 1-based id (id in [1, span_count()]).
  [[nodiscard]] const SpanRecord& span(SpanId id) const;

  /// Ids of all spans of `node` that are still open, outermost first.
  [[nodiscard]] std::vector<SpanId> open_spans(std::uint32_t node) const;

  /// True iff the node has neither ring content nor open spans.
  [[nodiscard]] bool flight_empty(std::uint32_t node) const;

  /// Nodes (slots) with any flight-recorder content, ascending.
  [[nodiscard]] std::vector<std::uint32_t> involved_nodes() const;

  /// Human-readable excerpt: the last `limit` completed spans of `node`
  /// (oldest first) followed by its still-open spans.
  [[nodiscard]] std::string dump_flight(std::uint32_t node, std::size_t limit = 20) const;

  /// dump_flight() for every involved node, prefixed with a per-node
  /// header. Empty string when nothing was recorded.
  [[nodiscard]] std::string dump_all_flights(std::size_t limit = 20) const;

 private:
  /// Compact completed-span record retained by the flight recorder.
  struct FlightRecord {
    Time begin{0};
    Time end{0};
    Incarnation inc{0};
    std::uint64_t detail{0};
    SpanName name{SpanName::kRecovery};
    std::uint8_t flags{0};
  };

  /// Bounded ring of FlightRecords (capacity fixed at construction).
  struct FlightRing {
    std::vector<FlightRecord> slots;
    std::size_t next{0};    ///< insertion cursor
    std::size_t count{0};   ///< total pushes (>= slots.size() once wrapped)
  };

  /// Per-node open-span registry. The protocol's span tree is shallow and
  /// its shape is fixed, so explicit slots beat a generic stack: phases are
  /// sequential under the root, a led gather nests its incvector round.
  struct NodeState {
    Incarnation inc{0};
    SpanId recovery{kNoSpan};
    SpanId phase{kNoSpan};     ///< detect / restore / election / replay
    SpanId gather{kNoSpan};    ///< gather / regather (leader side)
    SpanId incvec{kNoSpan};    ///< incarnation round inside the gather
    bool regather_next{false}; ///< next round of this recovery is a regather
  };

  static constexpr std::size_t kChunkShift = 10;  // 1024 records per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] SpanRecord& record(SpanId id);
  [[nodiscard]] std::uint32_t slot_of(ProcessId pid) const {
    return pid.value < config_.num_nodes ? pid.value : config_.num_nodes;
  }

  SpanId begin_span(Time now, SpanName name, std::uint32_t node, SpanId parent,
                    std::uint64_t detail = 0);
  void end_span(Time now, SpanId id, bool aborted = false);
  /// Arena append of an already-closed interval (net/storage spans).
  SpanId complete_span(Time begin, Time end, SpanName name, std::uint32_t node,
                       SpanId parent, std::uint64_t detail);

  /// Innermost open protocol span of `node` (parent for infra spans).
  [[nodiscard]] SpanId active_of(const NodeState& st) const;

  void push_flight(const SpanRecord& rec);
  void record_latency(const SpanRecord& rec);

  SpanTracerConfig config_;
  metrics::Registry& metrics_;
  std::vector<std::unique_ptr<SpanRecord[]>> chunks_;
  std::size_t count_{0};
  std::vector<NodeState> nodes_;   // num_nodes + 1 (service slot)
  std::vector<FlightRing> rings_;  // parallel to nodes_
  /// "span.<name>" handles resolved once; hot-path records are index math.
  std::array<metrics::Histogram*, kSpanNameCount> hist_{};
  std::array<metrics::Accumulator*, kSpanNameCount> accum_{};
};

[[nodiscard]] std::string to_string(const SpanRecord& rec);

}  // namespace rr::obs
