// Sender-based volatile message-data log.
//
// FBL logs each message's *data* exactly once, in the volatile store of its
// sender (paper §2): recovery fetches payloads from senders' logs and only
// receipt orders need replication. The log is part of the sender's process
// state, so it is included in checkpoints (a sender restored from a
// checkpoint can still serve payloads it sent before checkpointing — it
// cannot regenerate those by re-execution).
//
// Garbage collection: an entry (to, ssn) is needed only while the receiver
// might replay it, i.e. until the receiver commits a checkpoint whose
// receive watermark for this sender reaches ssn. prune() applies such a
// watermark.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

class SendLog {
 public:
  struct Entry {
    Ssn ssn{0};
    Bytes payload;
  };

  /// Record an outgoing message. ssn must be strictly increasing per
  /// destination (one process's sends are totally ordered).
  void record(ProcessId to, Ssn ssn, Bytes payload);

  /// Payload of (to, ssn), or nullptr if absent/pruned.
  [[nodiscard]] const Bytes* find(ProcessId to, Ssn ssn) const;

  /// Entries to `to` with ssn > `after`, ascending — the retransmission set
  /// for a receiver that recovered with receive watermark `after`.
  [[nodiscard]] std::vector<Entry> entries_after(ProcessId to, Ssn after) const;

  /// Drop entries to `to` with ssn <= `upto`. Returns number removed.
  std::size_t prune(ProcessId to, Ssn upto);

  [[nodiscard]] std::size_t size() const noexcept { return total_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return total_bytes_; }

  void clear();

  void encode(BufWriter& w) const;
  [[nodiscard]] static SendLog decode(BufReader& r);

 private:
  std::map<ProcessId, std::map<Ssn, Bytes>> per_dest_;
  std::size_t total_{0};
  std::size_t total_bytes_{0};
};

}  // namespace rr::fbl
