#include "fbl/determinant_log.hpp"

#include "common/assert.hpp"

namespace rr::fbl {

void DeterminantLog::set_propagation_threshold(int holders_needed) {
  RR_CHECK(holders_needed >= 1);
  threshold_ = holders_needed;
  active_.clear();
  unstable_.clear();
  pending_by_dest_.clear();
  for (const auto& [key, h] : by_dest_rsn_) index(key, h);
}

void DeterminantLog::index(const Key& key, const HeldDeterminant& h) {
  if (is_active(h)) {
    active_.insert(key);
    for (auto& [to, pending] : pending_by_dest_) {
      if (holds(h.holders, to)) {
        pending.erase(key);
      } else {
        pending.insert(key);
      }
    }
  } else {
    active_.erase(key);
    for (auto& [to, pending] : pending_by_dest_) pending.erase(key);
  }
  if ((h.holders & kStableHolder) == 0) {
    unstable_.insert(key);
  } else {
    unstable_.erase(key);
  }
}

void DeterminantLog::unindex(const Key& key) {
  active_.erase(key);
  unstable_.erase(key);
  for (auto& [to, pending] : pending_by_dest_) pending.erase(key);
}

std::set<DeterminantLog::Key>& DeterminantLog::pending_for(ProcessId to) const {
  const auto it = pending_by_dest_.find(to);
  if (it != pending_by_dest_.end()) return it->second;
  auto& pending = pending_by_dest_[to];
  for (const Key& key : active_) {
    if (!holds(by_dest_rsn_.at(key).holders, to)) pending.insert(key);
  }
  return pending;
}

bool DeterminantLog::record(const HeldDeterminant& h) {
  const Key key{h.det.dest, h.det.rsn};
  auto [it, inserted] = by_dest_rsn_.try_emplace(key, h);
  if (!inserted) {
    // A receipt order names exactly one message: conflicting knowledge
    // about (dest, rsn) means the logging protocol itself is broken.
    RR_CHECK_MSG(it->second.det == h.det, "conflicting determinants for one receipt order");
    it->second.holders |= h.holders;
  }
  index(key, it->second);
  return inserted;
}

void DeterminantLog::add_holders(const Determinant& d, HolderMask extra) {
  const Key key{d.dest, d.rsn};
  const auto it = by_dest_rsn_.find(key);
  if (it != by_dest_rsn_.end() && it->second.det == d) {
    it->second.holders |= extra;
    index(key, it->second);
  }
}

void DeterminantLog::remove_holder(const Determinant& d, ProcessId peer) {
  const Key key{d.dest, d.rsn};
  const auto it = by_dest_rsn_.find(key);
  if (it != by_dest_rsn_.end() && it->second.det == d) {
    it->second.holders &= ~holder_bit(peer);
    // A determinant may re-enter the active set; the incremental pending
    // indices can't efficiently reflect that, so rebuild them lazily.
    pending_by_dest_.clear();
    index(key, it->second);
  }
}

std::vector<HeldDeterminant> DeterminantLog::piggyback_for(ProcessId to) const {
  const auto& pending = pending_for(to);
  std::vector<HeldDeterminant> out;
  out.reserve(pending.size());
  for (const Key& key : pending) out.push_back(by_dest_rsn_.at(key));
  return out;
}

std::vector<HeldDeterminant> DeterminantLog::piggyback_all() const {
  std::vector<HeldDeterminant> out;
  out.reserve(active_.size());
  for (const Key& key : active_) out.push_back(by_dest_rsn_.at(key));
  return out;
}

std::vector<HeldDeterminant> DeterminantLog::slice_for(const HolderMask& dests) const {
  std::vector<HeldDeterminant> out;
  for (const auto& [key, h] : by_dest_rsn_) {
    if (holds(dests, h.det.dest)) out.push_back(h);
  }
  return out;
}

std::vector<Determinant> DeterminantLog::replay_schedule(ProcessId owner, Rsn after) const {
  std::vector<Determinant> out;
  // by_dest_rsn_ is ordered by (dest, rsn), so the owner's range is already
  // in rsn order.
  for (auto it = by_dest_rsn_.lower_bound(Key{owner, after + 1}); it != by_dest_rsn_.end();
       ++it) {
    if (it->first.first != owner) break;
    out.push_back(it->second.det);
  }
  return out;
}

Ssn DeterminantLog::max_ssn(ProcessId source, ProcessId dest) const {
  Ssn best = 0;
  for (auto it = by_dest_rsn_.lower_bound(Key{dest, 0}); it != by_dest_rsn_.end(); ++it) {
    if (it->first.first != dest) break;
    if (it->second.det.source == source) best = std::max(best, it->second.det.ssn);
  }
  return best;
}

std::size_t DeterminantLog::prune_dest(ProcessId dest, Rsn upto) {
  const auto lo = by_dest_rsn_.lower_bound(Key{dest, 0});
  const auto hi = by_dest_rsn_.upper_bound(Key{dest, upto});
  std::size_t n = 0;
  for (auto it = lo; it != hi; ++it, ++n) unindex(it->first);
  by_dest_rsn_.erase(lo, hi);
  return n;
}

std::vector<Determinant> DeterminantLog::unstable() const {
  std::vector<Determinant> out;
  out.reserve(unstable_.size());
  for (const Key& key : unstable_) out.push_back(by_dest_rsn_.at(key).det);
  return out;
}

bool DeterminantLog::contains(ProcessId dest, Rsn rsn) const {
  return by_dest_rsn_.contains(Key{dest, rsn});
}

const HeldDeterminant* DeterminantLog::find(ProcessId dest, Rsn rsn) const {
  const auto it = by_dest_rsn_.find(Key{dest, rsn});
  return it == by_dest_rsn_.end() ? nullptr : &it->second;
}

void DeterminantLog::clear() {
  by_dest_rsn_.clear();
  active_.clear();
  unstable_.clear();
  pending_by_dest_.clear();
}

void DeterminantLog::encode(BufWriter& w) const {
  w.varint(by_dest_rsn_.size());
  for (const auto& [key, h] : by_dest_rsn_) h.encode(w);
}

DeterminantLog DeterminantLog::decode(BufReader& r) {
  DeterminantLog log;
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) log.record(HeldDeterminant::decode(r));
  return log;
}

}  // namespace rr::fbl
