// Determinants — the receipt orders that message-logging recovery is about.
//
// A determinant records that message (source, ssn) was delivered to `dest`
// as its rsn-th delivery. Replaying a process's post-checkpoint determinants
// in rsn order, with the matching payloads, reproduces its pre-crash
// execution (the system model is piecewise deterministic). FBL's failure-
// free job is to spread each determinant to f+1 hosts; recovery's job is to
// reassemble a consistent snapshot of them — the algorithm this repo
// reproduces.
//
// HolderMask tracks which processes are known to have a determinant in
// their volatile logs, as a bitmask by ProcessId (so n ≤ 63). Bit 63 is the
// stable-storage pseudo-holder used by the f = n instance (Manetho-style):
// the paper models stable storage as "an additional process that never
// fails", and a determinant held there is recoverable under any number of
// crash failures.
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

using HolderMask = std::uint64_t;

/// Stable storage pseudo-holder (never fails).
inline constexpr int kStableHolderBit = 63;
inline constexpr HolderMask kStableHolder = HolderMask{1} << kStableHolderBit;

/// Highest ProcessId usable as a holder bit.
inline constexpr std::uint32_t kMaxProcesses = 63;

[[nodiscard]] constexpr HolderMask holder_bit(ProcessId p) {
  return HolderMask{1} << p.value;
}

[[nodiscard]] constexpr bool holds(HolderMask m, ProcessId p) {
  return (m & holder_bit(p)) != 0;
}

[[nodiscard]] constexpr int holder_count(HolderMask m) {
  return __builtin_popcountll(m);
}

struct Determinant {
  ProcessId source;  ///< sender of the message
  Ssn ssn{0};        ///< per-channel (source -> dest) send sequence number
  ProcessId dest;    ///< receiver
  Rsn rsn{0};        ///< receiver-global receipt order

  friend constexpr auto operator<=>(const Determinant&, const Determinant&) = default;

  void encode(BufWriter& w) const;
  [[nodiscard]] static Determinant decode(BufReader& r);

  /// Wire size of one encoded determinant.
  static constexpr std::size_t kWireBytes = 4 + 8 + 4 + 8;
};

[[nodiscard]] std::string to_string(const Determinant& d);

/// A determinant plus which processes are known to hold it; the unit that
/// gets piggybacked on application messages.
struct HeldDeterminant {
  Determinant det;
  HolderMask holders{0};

  friend constexpr auto operator<=>(const HeldDeterminant&, const HeldDeterminant&) = default;

  void encode(BufWriter& w) const;
  [[nodiscard]] static HeldDeterminant decode(BufReader& r);

  static constexpr std::size_t kWireBytes = Determinant::kWireBytes + 8;
};

}  // namespace rr::fbl
