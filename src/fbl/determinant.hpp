// Determinants — the receipt orders that message-logging recovery is about.
//
// A determinant records that message (source, ssn) was delivered to `dest`
// as its rsn-th delivery. Replaying a process's post-checkpoint determinants
// in rsn order, with the matching payloads, reproduces its pre-crash
// execution (the system model is piecewise deterministic). FBL's failure-
// free job is to spread each determinant to f+1 hosts; recovery's job is to
// reassemble a consistent snapshot of them — the algorithm this repo
// reproduces.
//
// HolderMask tracks which processes are known to have a determinant in
// their volatile logs, as a fixed-width bitset indexed by ProcessId (up to
// kMaxProcesses = 1024, the scale-sweep ceiling). Bit 1024 is the
// stable-storage pseudo-holder used by the f = n instance (Manetho-style):
// the paper models stable storage as "an additional process that never
// fails", and a determinant held there is recoverable under any number of
// crash failures. On the wire a mask travels as a sparse varint list of set
// bit indices — at the f+1 propagation bound a mask has at most f+2 bits,
// so the sparse form stays O(f) however large n grows.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

/// Highest ProcessId usable as a holder bit.
inline constexpr std::uint32_t kMaxProcesses = 1024;

/// Stable storage pseudo-holder (never fails).
inline constexpr std::uint32_t kStableHolderBit = kMaxProcesses;

struct HolderMask {
  static constexpr std::uint32_t kBits = kMaxProcesses + 1;  // + stable bit
  static constexpr std::size_t kWords = (kBits + 63) / 64;
  std::array<std::uint64_t, kWords> w{};

  constexpr HolderMask() = default;
  /// Implicit from an integer low word, so `HolderMask m = 0;` and
  /// comparisons against literal 0 keep working at every call site.
  constexpr HolderMask(std::uint64_t low) { w[0] = low; }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static constexpr HolderMask bit(std::uint32_t i) {
    HolderMask m;
    m.w[i >> 6] = std::uint64_t{1} << (i & 63);
    return m;
  }

  constexpr void set(std::uint32_t i) { w[i >> 6] |= std::uint64_t{1} << (i & 63); }
  [[nodiscard]] constexpr bool test(std::uint32_t i) const {
    return ((w[i >> 6] >> (i & 63)) & 1) != 0;
  }
  [[nodiscard]] constexpr int count() const {
    int c = 0;
    for (const std::uint64_t word : w) c += __builtin_popcountll(word);
    return c;
  }
  [[nodiscard]] constexpr bool any() const {
    for (const std::uint64_t word : w) {
      if (word != 0) return true;
    }
    return false;
  }

  friend constexpr HolderMask operator|(HolderMask a, const HolderMask& b) {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend constexpr HolderMask operator&(HolderMask a, const HolderMask& b) {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend constexpr HolderMask operator~(HolderMask a) {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  constexpr HolderMask& operator|=(const HolderMask& b) {
    for (std::size_t i = 0; i < kWords; ++i) w[i] |= b.w[i];
    return *this;
  }
  constexpr HolderMask& operator&=(const HolderMask& b) {
    for (std::size_t i = 0; i < kWords; ++i) w[i] &= b.w[i];
    return *this;
  }

  friend constexpr auto operator<=>(const HolderMask&, const HolderMask&) = default;
};

inline constexpr HolderMask kStableHolder = HolderMask::bit(kStableHolderBit);

[[nodiscard]] constexpr HolderMask holder_bit(ProcessId p) {
  return HolderMask::bit(p.value);
}

[[nodiscard]] constexpr bool holds(const HolderMask& m, ProcessId p) {
  return m.test(p.value);
}

[[nodiscard]] constexpr int holder_count(const HolderMask& m) { return m.count(); }

struct Determinant {
  ProcessId source;  ///< sender of the message
  Ssn ssn{0};        ///< per-channel (source -> dest) send sequence number
  ProcessId dest;    ///< receiver
  Rsn rsn{0};        ///< receiver-global receipt order

  friend constexpr auto operator<=>(const Determinant&, const Determinant&) = default;

  void encode(BufWriter& w) const;
  [[nodiscard]] static Determinant decode(BufReader& r);

  /// Wire size of one encoded determinant.
  static constexpr std::size_t kWireBytes = 4 + 8 + 4 + 8;
};

[[nodiscard]] std::string to_string(const Determinant& d);

/// A determinant plus which processes are known to hold it; the unit that
/// gets piggybacked on application messages.
struct HeldDeterminant {
  Determinant det;
  HolderMask holders{0};

  friend constexpr auto operator<=>(const HeldDeterminant&, const HeldDeterminant&) = default;

  void encode(BufWriter& w) const;
  [[nodiscard]] static HeldDeterminant decode(BufReader& r);

  /// Exact encoded size (the holder list is sparse, so it varies).
  [[nodiscard]] std::size_t wire_bytes() const;

  /// Smallest possible encoding (empty holder list) — the per-element
  /// bound allocation guards use when decoding counted lists.
  static constexpr std::size_t kMinWireBytes = Determinant::kWireBytes + 1;
};

}  // namespace rr::fbl
