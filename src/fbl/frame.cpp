#include "fbl/frame.hpp"

namespace rr::fbl {

void encode_kind(BufWriter& w, FrameKind k) { w.u8(static_cast<std::uint8_t>(k)); }

FrameKind decode_kind(BufReader& r) {
  const auto k = r.u8();
  if (k < 1 || k > 5) throw SerdeError("unknown frame kind " + std::to_string(k));
  return static_cast<FrameKind>(k);
}

Bytes AppFrame::encode() const {
  BufWriter w(payload.size() + piggyback_bytes() + 32);
  encode_kind(w, FrameKind::kApp);
  w.u32(inc);
  w.u64(ssn);
  w.varint(dets.size());
  for (const auto& d : dets) d.encode(w);
  w.bytes(payload);
  return std::move(w).take();
}

AppFrame AppFrame::decode(BufReader& r) {
  AppFrame f;
  f.inc = r.u32();
  f.ssn = r.u64();
  const auto n = r.count(HeldDeterminant::kMinWireBytes);
  f.dets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) f.dets.push_back(HeldDeterminant::decode(r));
  f.payload = r.bytes();
  return f;
}

Bytes HeartbeatFrame::encode() const {
  BufWriter w(8);
  encode_kind(w, FrameKind::kHeartbeat);
  w.u32(inc);
  return std::move(w).take();
}

HeartbeatFrame HeartbeatFrame::decode(BufReader& r) {
  HeartbeatFrame f;
  f.inc = r.u32();
  return f;
}

Bytes CkptNoticeFrame::encode() const {
  BufWriter w(64);
  encode_kind(w, FrameKind::kCkptNotice);
  w.u64(rsn);
  encode_watermarks(w, recv_marks);
  return std::move(w).take();
}

CkptNoticeFrame CkptNoticeFrame::decode(BufReader& r) {
  CkptNoticeFrame f;
  f.rsn = r.u64();
  f.recv_marks = decode_watermarks(r);
  return f;
}

}  // namespace rr::fbl
