// Failure-free FBL protocol engine — one process's logging state machine.
//
// Pure protocol logic with no I/O or timing: the node runtime feeds frames
// in and transmits the frames this engine produces. Keeping it pure makes
// the protocol unit-testable as a value (tests drive two engines against
// each other and inspect every decision).
//
// Responsibilities (paper §2):
//  * tag outgoing messages with the sender's incarnation and a fresh ssn;
//  * log outgoing payloads in the volatile send log (sender-based logging);
//  * piggyback determinants not yet known at f+1 hosts;
//  * on receipt: reject stale incarnations and duplicates, assign the
//    receipt order (rsn), create the receipt's determinant, and absorb
//    piggybacked determinants;
//  * cut and load checkpoints; garbage-collect logs on peers' checkpoint
//    notices.
//
// Replay mode: during recovery the same engine re-delivers logged receipt
// orders. deliver_replayed() checks that re-execution reproduces exactly
// the logged (source, ssn) at each rsn — the piecewise-deterministic
// contract made executable.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "fbl/checkpoint.hpp"
#include "fbl/determinant_log.hpp"
#include "fbl/frame.hpp"
#include "fbl/inc_vector.hpp"
#include "fbl/send_log.hpp"
#include "fbl/watermarks.hpp"

namespace rr::fbl {

struct EngineConfig {
  ProcessId self;
  std::uint32_t num_processes{0};
  /// Failures to tolerate; 1 <= f <= num_processes. f == num_processes
  /// enables the stable-storage pseudo-holder (Manetho-style instance).
  std::uint32_t f{1};
  /// Piggyback pruning (default on): attach only determinants the
  /// destination is not already known to hold. Off = the un-pruned
  /// baseline — every active determinant rides on every frame — kept as
  /// the O(n) contrast for the scale bench and the equivalence property
  /// test. Pruning changes which *copies* travel, never which receipt
  /// orders exist, so delivered order is bit-identical either way.
  bool prune_piggyback{true};
  /// Set when the reliable transport is in play (lossy fabric): a handed-off
  /// frame is no longer guaranteed to arrive — its retransmission state is
  /// volatile and dies with us — so counting the destination as a
  /// determinant holder at send time would let the f+1 rule be satisfied by
  /// copies that never existed. Deferred mode leaves the local holder mask
  /// untouched at make_frame/retransmit_frame time and reports the attached
  /// determinants in SendResult::attached; the runtime confirms them via
  /// confirm_piggyback() once the transport's cumulative ack covers the
  /// frame. Off (perfect FIFO fabric): first transmission is delivery, the
  /// paper's argument applies, mark immediately.
  bool defer_holder_mark{false};
};

class LoggingEngine {
 public:
  explicit LoggingEngine(EngineConfig config);

  // --- send path -----------------------------------------------------

  struct SendResult {
    Ssn ssn{0};
    Bytes frame;                  ///< encoded AppFrame ready for the wire
    std::size_t piggyback_count{0};
    std::size_t piggyback_bytes{0};
    /// Determinants piggybacked on the frame whose holder marking is
    /// deferred to delivery confirmation (defer_holder_mark only).
    std::vector<Determinant> attached;
  };

  /// Build the frame for an application send and log the payload.
  /// `inc` is the sender's current incarnation.
  [[nodiscard]] SendResult make_frame(ProcessId to, Bytes payload, Incarnation inc);

  /// Rebuild a frame for a payload already in the send log (retransmission
  /// to a recovered peer). Keeps the original ssn — the receiver's channel
  /// stays gap-free — but carries the current incarnation and a fresh
  /// piggyback. Empty result if the entry was garbage-collected.
  [[nodiscard]] std::optional<SendResult> retransmit_frame(ProcessId to, Ssn ssn,
                                                           Incarnation inc);

  // --- receive path ---------------------------------------------------

  enum class Verdict { kDeliver, kStale, kDuplicate, kOutOfOrder };

  struct AcceptResult {
    Verdict verdict{Verdict::kDeliver};
    Rsn rsn{0};                 ///< assigned receipt order (kDeliver only)
    std::size_t dets_learned{0};  ///< piggybacked determinants new to us
  };

  /// Process an incoming frame from `from` under the stale-rejection floor
  /// `incvector`. On kDeliver the caller must hand frame.payload to the
  /// application. kOutOfOrder means a channel gap (ssn beyond watermark+1):
  /// the caller should hold the frame and retry once the gap fills — this
  /// happens only around recovery retransmission, never in failure-free
  /// FIFO operation. Piggybacked determinants are absorbed from everything
  /// except stale frames (the knowledge is valid; only the payload is
  /// redundant or early).
  AcceptResult accept(ProcessId from, const AppFrame& frame, const IncVector& incvector);

  /// Delivery confirmation for a frame that piggybacked `dets` toward `to`
  /// (defer_holder_mark mode): the copies are now logged at the
  /// destination, count it as a holder. Determinants GC'd in the meantime
  /// are skipped.
  void confirm_piggyback(ProcessId to, const std::vector<Determinant>& dets);

  /// Re-deliver a logged receipt during recovery: must reproduce exactly
  /// `det` as the next receipt (aborts otherwise). Records the determinant
  /// as held by self plus `extra_holders` (knowledge from the gather).
  void deliver_replayed(const Determinant& det, HolderMask extra_holders);

  // --- checkpointing and GC -------------------------------------------

  [[nodiscard]] Checkpoint make_checkpoint(Bytes app_state) const;
  void load(const Checkpoint& cp);

  /// Apply a peer's checkpoint notice: prune send-log entries the peer can
  /// never replay and determinants it can never need.
  struct GcResult {
    std::size_t send_entries{0};
    std::size_t determinants{0};
  };
  GcResult on_ckpt_notice(ProcessId peer, const CkptNoticeFrame& notice);

  /// Drop `peer` from holder masks after it recovered (its volatile log
  /// was lost); keeps its own receipts up to `peer_rsn`, which the
  /// recovery re-established at the peer.
  void forget_holder(ProcessId peer, Rsn peer_rsn);

  // --- accessors -------------------------------------------------------

  [[nodiscard]] ProcessId self() const noexcept { return config_.self; }
  [[nodiscard]] std::uint32_t f() const noexcept { return config_.f; }
  [[nodiscard]] bool stable_instance() const noexcept {
    return config_.f >= config_.num_processes;
  }
  [[nodiscard]] Rsn rsn() const noexcept { return rsn_; }
  [[nodiscard]] const Watermarks& send_seq() const noexcept { return send_seq_; }
  [[nodiscard]] const Watermarks& recv_marks() const noexcept { return recv_marks_; }
  [[nodiscard]] const SendLog& send_log() const noexcept { return send_log_; }
  [[nodiscard]] const DeterminantLog& det_log() const noexcept { return det_log_; }
  [[nodiscard]] DeterminantLog& det_log() noexcept { return det_log_; }

 private:
  EngineConfig config_;
  Rsn rsn_{0};
  Watermarks send_seq_;  // per destination, last ssn used
  Watermarks recv_marks_;
  SendLog send_log_;
  DeterminantLog det_log_;
};

}  // namespace rr::fbl
