// Wire frames for the failure-free protocol path.
//
// Every packet starts with a FrameKind byte. The fbl library owns the
// application frame (incarnation tag + ssn + piggybacked determinants +
// payload), the heartbeat and the checkpoint notice; recovery-control
// frames (kind kControl) are encoded/decoded by the recovery library
// behind the same leading byte.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "fbl/determinant.hpp"
#include "fbl/watermarks.hpp"

namespace rr::fbl {

enum class FrameKind : std::uint8_t {
  kApp = 1,
  kHeartbeat = 2,
  kCkptNotice = 3,
  kControl = 4,   // recovery control, see recovery/messages.hpp
  kSnapshot = 5,  // Chandy-Lamport markers/reports, see snapshot/snapshot.hpp
};

/// Writes the leading kind byte.
void encode_kind(BufWriter& w, FrameKind k);
/// Reads and returns the leading kind byte.
[[nodiscard]] FrameKind decode_kind(BufReader& r);

/// Application message as transmitted: the payload plus everything FBL
/// needs for logging and stale-message rejection.
struct AppFrame {
  Incarnation inc{0};  ///< sender's incarnation (stale-rejection tag)
  Ssn ssn{0};          ///< sender-global send sequence number
  std::vector<HeldDeterminant> dets;  ///< piggybacked receipt orders
  Bytes payload;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static AppFrame decode(BufReader& r);  // kind byte consumed

  /// Bytes the piggybacked determinants contribute (overhead accounting).
  [[nodiscard]] std::size_t piggyback_bytes() const {
    std::size_t n = 0;
    for (const HeldDeterminant& d : dets) n += d.wire_bytes();
    return n;
  }
};

struct HeartbeatFrame {
  Incarnation inc{0};

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static HeartbeatFrame decode(BufReader& r);
};

/// Broadcast after a checkpoint commits; lets peers garbage-collect send
/// log entries (via recv_marks) and determinants (via rsn).
struct CkptNoticeFrame {
  Rsn rsn{0};
  Watermarks recv_marks;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static CkptNoticeFrame decode(BufReader& r);
};

}  // namespace rr::fbl
