// Volatile determinant log with holder tracking.
//
// Holds every determinant a process knows — its own receipts plus those
// learned from piggybacks — keyed by (dest, rsn), together with the set of
// processes known to hold each one. Drives three protocol decisions:
//
//  * piggybacking: which determinants to attach to an outgoing message
//    (those not yet known at f+1 holders and not known at the destination);
//  * depinfo: the slice (dest ∈ R) a live process ships to the recovery
//    leader, and the merged slice the leader installs at recovering
//    processes;
//  * garbage collection: determinants whose destination has checkpointed
//    past their rsn can never be replayed and are dropped.
//
// The send path runs per message, so the log maintains two incremental
// indices: `active_` (piggyback candidates — below the propagation
// threshold and not stable) and `unstable_` (not yet flushed to stable
// storage, used by the f = n instance). Gather-time queries (slice_for,
// max_ssn) may scan; they run once per recovery, not per message.
//
// The holder mask a process keeps is its *local knowledge* — possibly
// behind reality, never ahead of it on the conservative side that matters:
// a bit is set only for processes the message carrying the determinant was
// handed to over a reliable channel, so at most the crashed processes
// themselves can be missing holders, which the f+1 rule absorbs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/serde.hpp"
#include "fbl/determinant.hpp"

namespace rr::fbl {

class DeterminantLog {
 public:
  /// Propagation stops once a determinant is known at `holders_needed`
  /// (= f+1) processes. Defaults to "never" until the engine configures it;
  /// the call reindexes, so it is safe after decode()/load.
  void set_propagation_threshold(int holders_needed);

  /// Record `h` (merging holder knowledge if already present). Returns true
  /// if the determinant was new to this log. Two records disagreeing on
  /// (source, ssn) for one (dest, rsn) violate the protocol and abort.
  bool record(const HeldDeterminant& h);

  /// Merge additional holder knowledge for an existing determinant; no-op
  /// if the determinant is unknown.
  void add_holders(const Determinant& d, HolderMask extra);

  /// Retract holder knowledge (a peer's volatile log died with it).
  void remove_holder(const Determinant& d, ProcessId peer);

  /// Determinants to piggyback on a message to `to`: the active set minus
  /// those already known to be held by `to`. Ordered by (dest, rsn).
  [[nodiscard]] std::vector<HeldDeterminant> piggyback_for(ProcessId to) const;

  /// The whole active set, ignoring per-destination knowledge — the
  /// un-pruned baseline the scale bench contrasts against. Ordered by
  /// (dest, rsn).
  [[nodiscard]] std::vector<HeldDeterminant> piggyback_all() const;

  /// All determinants destined to any process in `dests` — the depinfo
  /// slice for a recovery whose recovering set is `dests`.
  [[nodiscard]] std::vector<HeldDeterminant> slice_for(const HolderMask& dests) const;

  /// Determinants destined to this log's owner with rsn > `after`, in rsn
  /// order — the replay schedule.
  [[nodiscard]] std::vector<Determinant> replay_schedule(ProcessId owner, Rsn after) const;

  /// Highest ssn among determinants (source -> dest); 0 if none. Used to
  /// compute post-replay receive watermarks.
  [[nodiscard]] Ssn max_ssn(ProcessId source, ProcessId dest) const;

  /// Drop determinants with dest == `dest` and rsn <= `upto` (dest
  /// checkpointed past them). Returns the number removed.
  std::size_t prune_dest(ProcessId dest, Rsn upto);

  /// Determinants not yet known stable, for the f = n instance's
  /// asynchronous flush; the caller marks them via
  /// add_holders(kStableHolder) on write completion.
  [[nodiscard]] std::vector<Determinant> unstable() const;

  [[nodiscard]] std::size_t size() const noexcept { return by_dest_rsn_.size(); }
  [[nodiscard]] std::size_t active_size() const noexcept { return active_.size(); }
  [[nodiscard]] bool contains(ProcessId dest, Rsn rsn) const;
  [[nodiscard]] const HeldDeterminant* find(ProcessId dest, Rsn rsn) const;

  void clear();

  void encode(BufWriter& w) const;
  [[nodiscard]] static DeterminantLog decode(BufReader& r);

 private:
  using Key = std::pair<ProcessId, Rsn>;

  [[nodiscard]] bool is_active(const HeldDeterminant& h) const {
    return (h.holders & kStableHolder) == 0 && holder_count(h.holders) < threshold_;
  }
  void index(const Key& key, const HeldDeterminant& h);
  void unindex(const Key& key);

  /// Pending piggyback work for one destination, built lazily on the first
  /// send to it and maintained incrementally after that: exactly the active
  /// determinants not known to be held by that destination. make_frame's
  /// optimistic holder marking drains it, so steady-state sends cost
  /// O(newly created determinants), not O(log size).
  std::set<Key>& pending_for(ProcessId to) const;

  int threshold_{64};  // effectively "keep propagating" until configured
  std::map<Key, HeldDeterminant> by_dest_rsn_;
  std::set<Key> active_;    // piggyback candidates
  std::set<Key> unstable_;  // not on stable storage
  mutable std::map<ProcessId, std::set<Key>> pending_by_dest_;
};

}  // namespace rr::fbl
