// Per-channel receive watermarks.
//
// For each sender, the highest ssn this process has delivered from it.
// Channels are FIFO and a sender's ssn is monotone, so "delivered ssn w"
// means "delivered everything from that sender up to w that was addressed
// here". Watermarks drive duplicate suppression on the receive path,
// retransmission decisions after a peer recovers, and send-log GC.
#pragma once

#include <map>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

using Watermarks = std::map<ProcessId, Ssn>;

inline void encode_watermarks(BufWriter& w, const Watermarks& marks) {
  w.varint(marks.size());
  for (const auto& [source, ssn] : marks) {
    w.process_id(source);
    w.u64(ssn);
  }
}

[[nodiscard]] inline Watermarks decode_watermarks(BufReader& r) {
  Watermarks marks;
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ProcessId source = r.process_id();
    marks[source] = r.u64();
  }
  return marks;
}

/// Watermark for `source` (0 if never heard from).
[[nodiscard]] inline Ssn watermark_of(const Watermarks& marks, ProcessId source) {
  const auto it = marks.find(source);
  return it == marks.end() ? 0 : it->second;
}

/// Raise `marks[source]` to at least `ssn`.
inline void raise_watermark(Watermarks& marks, ProcessId source, Ssn ssn) {
  auto& w = marks[source];
  if (ssn > w) w = ssn;
}

}  // namespace rr::fbl
