#include "fbl/determinant.hpp"

namespace rr::fbl {

void Determinant::encode(BufWriter& w) const {
  w.process_id(source);
  w.u64(ssn);
  w.process_id(dest);
  w.u64(rsn);
}

Determinant Determinant::decode(BufReader& r) {
  Determinant d;
  d.source = r.process_id();
  d.ssn = r.u64();
  d.dest = r.process_id();
  d.rsn = r.u64();
  return d;
}

std::string to_string(const Determinant& d) {
  return "det(" + rr::to_string(d.source) + "#" + std::to_string(d.ssn) + " -> " +
         rr::to_string(d.dest) + " @rsn" + std::to_string(d.rsn) + ")";
}

void HeldDeterminant::encode(BufWriter& w) const {
  det.encode(w);
  w.u64(holders);
}

HeldDeterminant HeldDeterminant::decode(BufReader& r) {
  HeldDeterminant h;
  h.det = Determinant::decode(r);
  h.holders = r.u64();
  return h;
}

}  // namespace rr::fbl
