#include "fbl/determinant.hpp"

namespace rr::fbl {

namespace {

constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

void Determinant::encode(BufWriter& w) const {
  w.process_id(source);
  w.u64(ssn);
  w.process_id(dest);
  w.u64(rsn);
}

Determinant Determinant::decode(BufReader& r) {
  Determinant d;
  d.source = r.process_id();
  d.ssn = r.u64();
  d.dest = r.process_id();
  d.rsn = r.u64();
  return d;
}

std::string to_string(const Determinant& d) {
  return "det(" + rr::to_string(d.source) + "#" + std::to_string(d.ssn) + " -> " +
         rr::to_string(d.dest) + " @rsn" + std::to_string(d.rsn) + ")";
}

void HeldDeterminant::encode(BufWriter& w) const {
  det.encode(w);
  w.varint(static_cast<std::uint64_t>(holders.count()));
  for (std::size_t wi = 0; wi < HolderMask::kWords; ++wi) {
    std::uint64_t word = holders.w[wi];
    while (word != 0) {
      w.varint(wi * 64 + static_cast<std::uint64_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

HeldDeterminant HeldDeterminant::decode(BufReader& r) {
  HeldDeterminant h;
  h.det = Determinant::decode(r);
  const std::uint64_t n = r.count(1);
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t i = r.varint();
    if (i >= HolderMask::kBits) throw SerdeError("holder bit out of range");
    h.holders.set(static_cast<std::uint32_t>(i));
  }
  return h;
}

std::size_t HeldDeterminant::wire_bytes() const {
  std::size_t n =
      Determinant::kWireBytes + varint_size(static_cast<std::uint64_t>(holders.count()));
  for (std::size_t wi = 0; wi < HolderMask::kWords; ++wi) {
    std::uint64_t word = holders.w[wi];
    while (word != 0) {
      n += varint_size(wi * 64 + static_cast<std::uint64_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
  return n;
}

}  // namespace rr::fbl
