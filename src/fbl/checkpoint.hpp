// Checkpoint contents.
//
// An FBL checkpoint is the full recoverable image of a process: the
// application snapshot plus the protocol state needed to resume logging
// duties — receive watermarks, sequence counters, and crucially the send
// log and determinant log. Including the logs is what lets a restored
// process keep serving payloads it sent (and determinants it learned)
// *before* the checkpoint, which re-execution from the checkpoint could
// never regenerate. This is ordinary checkpoint content, not extra stable
// logging: FBL's "no stable logging" claim is about the per-message path.
#pragma once

#include <cstdint>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "fbl/determinant_log.hpp"
#include "fbl/send_log.hpp"
#include "fbl/watermarks.hpp"

namespace rr::fbl {

struct Checkpoint {
  /// Whether the application's on_start had already run when the snapshot
  /// was cut. The boot-time checkpoint is cut *before* on_start so that a
  /// recovery from it re-executes on_start deterministically (regenerating
  /// its sends); every later checkpoint has it true.
  bool app_started{false};
  /// Receipt order of the last message delivered before the snapshot.
  Rsn rsn{0};
  /// Per-destination last send sequence numbers used.
  Watermarks send_seq;
  /// Per-sender delivered-ssn watermarks at the snapshot.
  Watermarks recv_marks;
  /// Message-data log (survives for peers' recoveries).
  SendLog send_log;
  /// Determinant log (receipt-order knowledge).
  DeterminantLog det_log;
  /// Opaque application snapshot.
  Bytes app_state;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Checkpoint decode(const Bytes& data);
};

}  // namespace rr::fbl
