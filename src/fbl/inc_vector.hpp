// Incarnation vectors (paper §3.2, `incvector`).
//
// incvector[q] is the lowest incarnation of q from which messages are still
// acceptable; a frame tagged with an older incarnation is *stale* — sent by
// a dead execution of q — and must be rejected, or the receiver could
// acquire a dependency on state the recovery cannot reproduce. The recovery
// leader distributes its incvector with every depinfo request, which is the
// new algorithm's substitute for blocking live processes.
#pragma once

#include <map>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

using IncVector = std::map<ProcessId, Incarnation>;

/// Known incarnation floor for `p`; processes start at incarnation 1.
[[nodiscard]] inline Incarnation incarnation_of(const IncVector& v, ProcessId p) {
  const auto it = v.find(p);
  return it == v.end() ? 1 : it->second;
}

/// Raise `v[p]` to at least `inc`.
inline void raise_incarnation(IncVector& v, ProcessId p, Incarnation inc) {
  auto [it, inserted] = v.try_emplace(p, inc);
  if (!inserted && inc > it->second) it->second = inc;
}

/// Entrywise max merge.
inline void merge_max(IncVector& into, const IncVector& from) {
  for (const auto& [p, inc] : from) raise_incarnation(into, p, inc);
}

/// A frame from `src` tagged `inc` is stale iff it predates the floor.
[[nodiscard]] inline bool is_stale(const IncVector& v, ProcessId src, Incarnation inc) {
  return inc < incarnation_of(v, src);
}

inline void encode_inc_vector(BufWriter& w, const IncVector& v) {
  w.varint(v.size());
  for (const auto& [p, inc] : v) {
    w.process_id(p);
    w.u32(inc);
  }
}

[[nodiscard]] inline IncVector decode_inc_vector(BufReader& r) {
  IncVector v;
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ProcessId p = r.process_id();
    v[p] = r.u32();
  }
  return v;
}

/// Versioned incvector delta. At scale the leader's incvector holds O(n)
/// entries while a round typically raises O(f) floors, so DepRequests carry
/// only the entries changed since `base_version` — the lowest version every
/// targeted participant has confirmed. `full` snapshots reset the version
/// tracking (first contact, incarnation bump on either side, or a receiver
/// that reported a gap). Applying `entries` is merge-max and therefore
/// always safe, even when the receiver's baseline is older than
/// `base_version`; the receiver just flags the gap so the leader falls back
/// to a full snapshot next time.
struct IncDelta {
  std::uint64_t base_version{0};  ///< receiver must hold at least this (unless full)
  std::uint64_t version{0};       ///< version the receiver holds after applying
  bool full{true};                ///< entries are the whole vector
  IncVector entries;
  friend bool operator==(const IncDelta&, const IncDelta&) = default;
};

inline void encode_inc_delta(BufWriter& w, const IncDelta& d) {
  w.varint(d.base_version);
  w.varint(d.version);
  w.boolean(d.full);
  encode_inc_vector(w, d.entries);
}

[[nodiscard]] inline IncDelta decode_inc_delta(BufReader& r) {
  IncDelta d;
  d.base_version = r.varint();
  d.version = r.varint();
  d.full = r.boolean();
  d.entries = decode_inc_vector(r);
  return d;
}

}  // namespace rr::fbl
