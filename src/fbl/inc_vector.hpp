// Incarnation vectors (paper §3.2, `incvector`).
//
// incvector[q] is the lowest incarnation of q from which messages are still
// acceptable; a frame tagged with an older incarnation is *stale* — sent by
// a dead execution of q — and must be rejected, or the receiver could
// acquire a dependency on state the recovery cannot reproduce. The recovery
// leader distributes its incvector with every depinfo request, which is the
// new algorithm's substitute for blocking live processes.
#pragma once

#include <map>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::fbl {

using IncVector = std::map<ProcessId, Incarnation>;

/// Known incarnation floor for `p`; processes start at incarnation 1.
[[nodiscard]] inline Incarnation incarnation_of(const IncVector& v, ProcessId p) {
  const auto it = v.find(p);
  return it == v.end() ? 1 : it->second;
}

/// Raise `v[p]` to at least `inc`.
inline void raise_incarnation(IncVector& v, ProcessId p, Incarnation inc) {
  auto [it, inserted] = v.try_emplace(p, inc);
  if (!inserted && inc > it->second) it->second = inc;
}

/// Entrywise max merge.
inline void merge_max(IncVector& into, const IncVector& from) {
  for (const auto& [p, inc] : from) raise_incarnation(into, p, inc);
}

/// A frame from `src` tagged `inc` is stale iff it predates the floor.
[[nodiscard]] inline bool is_stale(const IncVector& v, ProcessId src, Incarnation inc) {
  return inc < incarnation_of(v, src);
}

inline void encode(BufWriter& w, const IncVector& v) {
  w.varint(v.size());
  for (const auto& [p, inc] : v) {
    w.process_id(p);
    w.u32(inc);
  }
}

[[nodiscard]] inline IncVector decode_inc_vector(BufReader& r) {
  IncVector v;
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ProcessId p = r.process_id();
    v[p] = r.u32();
  }
  return v;
}

}  // namespace rr::fbl
