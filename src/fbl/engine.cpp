#include "fbl/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::fbl {

LoggingEngine::LoggingEngine(EngineConfig config) : config_(config) {
  RR_CHECK_MSG(config_.self.valid(), "engine needs a process id");
  RR_CHECK_MSG(config_.self.value < kMaxProcesses, "process id exceeds holder-mask capacity");
  RR_CHECK_MSG(config_.f >= 1, "f must be at least 1");
  RR_CHECK_MSG(config_.num_processes >= 2, "need at least two processes");
  RR_CHECK_MSG(config_.f <= config_.num_processes, "f cannot exceed n");
  det_log_.set_propagation_threshold(static_cast<int>(config_.f) + 1);
}

LoggingEngine::SendResult LoggingEngine::make_frame(ProcessId to, Bytes payload,
                                                    Incarnation inc) {
  RR_CHECK_MSG(to != config_.self, "self-sends are not part of the model");
  AppFrame frame;
  frame.inc = inc;
  frame.ssn = ++send_seq_[to];
  frame.dets = config_.prune_piggyback ? det_log_.piggyback_for(to) : det_log_.piggyback_all();
  frame.payload = payload;

  // Sender-based logging: the payload lives in our volatile store until the
  // receiver checkpoints past it.
  send_log_.record(to, frame.ssn, std::move(payload));

  SendResult out;

  // Perfect FIFO fabric: once handed over, `to` will log the piggybacked
  // determinants unless it crashes — and a crash consumes one unit of the
  // f-failure budget, which the f+1 rule already covers. So `to` counts as
  // a holder immediately (see determinant_log.hpp). On a lossy fabric that
  // argument fails (a dropped frame's retransmission state is volatile and
  // dies with *us*), so the local mark waits for delivery confirmation.
  // Either way the wire copy may claim the `to` bit: that claim is only
  // ever read by `to` itself, after delivery — at which point it is true.
  for (auto& h : frame.dets) {
    if (config_.defer_holder_mark) {
      out.attached.push_back(h.det);
    } else {
      det_log_.add_holders(h.det, holder_bit(to));
    }
    h.holders |= holder_bit(to);
  }

  out.ssn = frame.ssn;
  out.piggyback_count = frame.dets.size();
  out.piggyback_bytes = frame.piggyback_bytes();
  out.frame = frame.encode();
  return out;
}

std::optional<LoggingEngine::SendResult> LoggingEngine::retransmit_frame(ProcessId to, Ssn ssn,
                                                                         Incarnation inc) {
  const Bytes* payload = send_log_.find(to, ssn);
  if (payload == nullptr) return std::nullopt;
  AppFrame frame;
  frame.inc = inc;
  frame.ssn = ssn;
  frame.dets = config_.prune_piggyback ? det_log_.piggyback_for(to) : det_log_.piggyback_all();
  frame.payload = *payload;
  SendResult out;
  for (auto& h : frame.dets) {
    if (config_.defer_holder_mark) {
      out.attached.push_back(h.det);
    } else {
      det_log_.add_holders(h.det, holder_bit(to));
    }
    h.holders |= holder_bit(to);
  }
  out.ssn = ssn;
  out.piggyback_count = frame.dets.size();
  out.piggyback_bytes = frame.piggyback_bytes();
  out.frame = frame.encode();
  return out;
}

void LoggingEngine::confirm_piggyback(ProcessId to, const std::vector<Determinant>& dets) {
  for (const Determinant& d : dets) det_log_.add_holders(d, holder_bit(to));
}

LoggingEngine::AcceptResult LoggingEngine::accept(ProcessId from, const AppFrame& frame,
                                                  const IncVector& incvector) {
  AcceptResult out;
  if (is_stale(incvector, from, frame.inc)) {
    out.verdict = Verdict::kStale;
    return out;
  }

  // Absorb piggybacked knowledge (valid even on duplicate payloads).
  for (const auto& h : frame.dets) {
    HeldDeterminant mine = h;
    mine.holders |= holder_bit(config_.self);
    if (det_log_.record(mine)) {
      ++out.dets_learned;
    } else {
      det_log_.add_holders(mine.det, mine.holders);
    }
  }

  const Ssn mark = watermark_of(recv_marks_, from);
  if (frame.ssn <= mark) {
    out.verdict = Verdict::kDuplicate;
    return out;
  }
  if (frame.ssn > mark + 1) {
    // Channel gap: an earlier message is still owed (a retransmission in
    // flight around a peer's recovery). Hold, don't skip.
    out.verdict = Verdict::kOutOfOrder;
    return out;
  }

  raise_watermark(recv_marks_, from, frame.ssn);
  out.rsn = ++rsn_;
  out.verdict = Verdict::kDeliver;

  // The receipt order just created — the determinant this delivery mints.
  HeldDeterminant mine;
  mine.det = Determinant{from, frame.ssn, config_.self, out.rsn};
  mine.holders = holder_bit(config_.self);
  RR_CHECK(det_log_.record(mine));
  return out;
}

void LoggingEngine::deliver_replayed(const Determinant& det, HolderMask extra_holders) {
  RR_CHECK_MSG(det.dest == config_.self, "replaying someone else's receipt");
  RR_CHECK_MSG(det.rsn == rsn_ + 1, "replay must proceed in receipt order");
  RR_CHECK_MSG(det.ssn == watermark_of(recv_marks_, det.source) + 1,
               "replayed channel must stay gap-free");
  rsn_ = det.rsn;
  raise_watermark(recv_marks_, det.source, det.ssn);
  HeldDeterminant mine{det, extra_holders | holder_bit(config_.self)};
  if (!det_log_.record(mine)) det_log_.add_holders(det, mine.holders);
}

Checkpoint LoggingEngine::make_checkpoint(Bytes app_state) const {
  Checkpoint cp;
  cp.rsn = rsn_;
  cp.send_seq = send_seq_;
  cp.recv_marks = recv_marks_;
  cp.send_log = send_log_;
  cp.det_log = det_log_;
  cp.app_state = std::move(app_state);
  return cp;
}

void LoggingEngine::load(const Checkpoint& cp) {
  rsn_ = cp.rsn;
  send_seq_ = cp.send_seq;
  recv_marks_ = cp.recv_marks;
  send_log_ = cp.send_log;
  det_log_ = cp.det_log;
  det_log_.set_propagation_threshold(static_cast<int>(config_.f) + 1);
}

LoggingEngine::GcResult LoggingEngine::on_ckpt_notice(ProcessId peer,
                                                      const CkptNoticeFrame& notice) {
  GcResult out;
  // The peer's checkpoint includes every message it delivered up to
  // notice.recv_marks — it will never replay them, so their payloads and
  // receipt orders are dead weight everywhere.
  out.send_entries = send_log_.prune(peer, watermark_of(notice.recv_marks, config_.self));
  out.determinants = det_log_.prune_dest(peer, notice.rsn);
  return out;
}

void LoggingEngine::forget_holder(ProcessId peer, Rsn peer_rsn) {
  // Handled via DeterminantLog internals: rebuild holder bits. A recovered
  // peer kept (re-learned) its own receipts up to peer_rsn; every other
  // holder claim about it refers to volatile state the crash destroyed.
  for (const auto& h : det_log_.slice_for(~HolderMask{0})) {
    if (!holds(h.holders, peer)) continue;
    if (h.det.dest == peer && h.det.rsn <= peer_rsn) continue;
    det_log_.remove_holder(h.det, peer);
  }
}

}  // namespace rr::fbl
