#include "fbl/checkpoint.hpp"

namespace rr::fbl {

namespace {
constexpr std::uint32_t kMagic = 0x46424C43;  // "FBLC"
constexpr std::uint16_t kVersion = 1;
}  // namespace

Bytes Checkpoint::encode() const {
  BufWriter w(app_state.size() + 256);
  w.u32(kMagic);
  w.u16(kVersion);
  w.boolean(app_started);
  w.u64(rsn);
  encode_watermarks(w, send_seq);
  encode_watermarks(w, recv_marks);
  send_log.encode(w);
  det_log.encode(w);
  w.bytes(app_state);
  return std::move(w).take();
}

Checkpoint Checkpoint::decode(const Bytes& data) {
  BufReader r(data);
  if (r.u32() != kMagic) throw SerdeError("bad checkpoint magic");
  if (r.u16() != kVersion) throw SerdeError("unsupported checkpoint version");
  Checkpoint cp;
  cp.app_started = r.boolean();
  cp.rsn = r.u64();
  cp.send_seq = decode_watermarks(r);
  cp.recv_marks = decode_watermarks(r);
  cp.send_log = SendLog::decode(r);
  cp.det_log = DeterminantLog::decode(r);
  cp.app_state = r.bytes();
  r.expect_done();
  return cp;
}

}  // namespace rr::fbl
