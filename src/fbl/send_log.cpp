#include "fbl/send_log.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::fbl {

void SendLog::record(ProcessId to, Ssn ssn, Bytes payload) {
  auto& dest = per_dest_[to];
  RR_CHECK_MSG(dest.empty() || dest.rbegin()->first < ssn,
               "send log ssn must be strictly increasing per destination");
  total_bytes_ += payload.size();
  ++total_;
  dest.emplace(ssn, std::move(payload));
}

const Bytes* SendLog::find(ProcessId to, Ssn ssn) const {
  const auto d = per_dest_.find(to);
  if (d == per_dest_.end()) return nullptr;
  const auto e = d->second.find(ssn);
  return e == d->second.end() ? nullptr : &e->second;
}

std::vector<SendLog::Entry> SendLog::entries_after(ProcessId to, Ssn after) const {
  std::vector<Entry> out;
  const auto d = per_dest_.find(to);
  if (d == per_dest_.end()) return out;
  for (auto it = d->second.upper_bound(after); it != d->second.end(); ++it) {
    out.push_back(Entry{it->first, it->second});
  }
  return out;
}

std::size_t SendLog::prune(ProcessId to, Ssn upto) {
  const auto d = per_dest_.find(to);
  if (d == per_dest_.end()) return 0;
  std::size_t removed = 0;
  auto it = d->second.begin();
  while (it != d->second.end() && it->first <= upto) {
    total_bytes_ -= it->second.size();
    --total_;
    ++removed;
    it = d->second.erase(it);
  }
  if (d->second.empty()) per_dest_.erase(d);
  return removed;
}

void SendLog::clear() {
  per_dest_.clear();
  total_ = 0;
  total_bytes_ = 0;
}

void SendLog::encode(BufWriter& w) const {
  w.varint(per_dest_.size());
  for (const auto& [to, entries] : per_dest_) {
    w.process_id(to);
    w.varint(entries.size());
    for (const auto& [ssn, payload] : entries) {
      w.u64(ssn);
      w.bytes(payload);
    }
  }
}

SendLog SendLog::decode(BufReader& r) {
  SendLog log;
  const auto ndest = r.varint();
  for (std::uint64_t i = 0; i < ndest; ++i) {
    const ProcessId to = r.process_id();
    const auto n = r.varint();
    for (std::uint64_t j = 0; j < n; ++j) {
      const Ssn ssn = r.u64();
      log.record(to, ssn, r.bytes());
    }
  }
  return log;
}

}  // namespace rr::fbl
