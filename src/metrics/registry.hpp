// Named metric registry.
//
// Modules record into dotted names ("net.app.bytes", "recovery.gather.restarts").
// The registry is the bridge between protocol code and the experiment
// harness: benches read whichever names a scenario produced and print the
// paper's tables from them. Names are created on first use; reads of a
// never-written name return zero so table code stays branch-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/counters.hpp"

namespace rr::metrics {

class Registry {
 public:
  /// Counter cell for `name` (created zeroed on first use).
  Counter& counter(const std::string& name);
  /// Accumulator cell for `name` (created empty on first use).
  Accumulator& accum(const std::string& name);
  /// Histogram cell for `name` (created empty on first use).
  Histogram& histogram(const std::string& name);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Lookup without creating: nullptr when `name` was never written. One
  /// accessor per cell kind, all symmetric.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Accumulator* find_accum(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Names in sorted order, for dump/diff in tests.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> accum_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  void reset();

  /// Multi-line human-readable dump (sorted by name).
  [[nodiscard]] std::string dump() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accums_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rr::metrics
