#include "metrics/registry.hpp"

#include <cstdio>

namespace rr::metrics {

namespace {

template <typename Map>
const typename Map::mapped_type* find_in(const Map& map, const std::string& name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

template <typename Map>
std::vector<std::string> names_of(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [k, v] : map) out.push_back(k);
  return out;
}

}  // namespace

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Accumulator& Registry::accum(const std::string& name) { return accums_[name]; }

Histogram& Registry::histogram(const std::string& name) { return histograms_[name]; }

std::uint64_t Registry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

const Counter* Registry::find_counter(const std::string& name) const {
  return find_in(counters_, name);
}

const Accumulator* Registry::find_accum(const std::string& name) const {
  return find_in(accums_, name);
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  return find_in(histograms_, name);
}

std::vector<std::string> Registry::counter_names() const { return names_of(counters_); }

std::vector<std::string> Registry::accum_names() const { return names_of(accums_); }

std::vector<std::string> Registry::histogram_names() const { return names_of(histograms_); }

void Registry::reset() {
  counters_.clear();
  accums_.clear();
  histograms_.clear();
}

std::string Registry::dump() const {
  std::string out;
  char line[256];
  for (const auto& [k, c] : counters_) {
    std::snprintf(line, sizeof line, "%-48s %llu\n", k.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [k, a] : accums_) {
    std::snprintf(line, sizeof line, "%-48s n=%llu mean=%.3f min=%.3f max=%.3f\n", k.c_str(),
                  static_cast<unsigned long long>(a.count()), a.mean(), a.min(), a.max());
    out += line;
  }
  for (const auto& [k, h] : histograms_) {
    std::snprintf(line, sizeof line, "%-48s n=%llu mean=%.3f p50=%.0f p90=%.0f p99=%.0f\n",
                  k.c_str(), static_cast<unsigned long long>(h.count()), h.mean(), h.p50(),
                  h.p90(), h.p99());
    out += line;
  }
  return out;
}

}  // namespace rr::metrics
