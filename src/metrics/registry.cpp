#include "metrics/registry.hpp"

#include <cstdio>

namespace rr::metrics {

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Accumulator& Registry::accum(const std::string& name) { return accums_[name]; }

Histogram& Registry::histogram(const std::string& name) { return histograms_[name]; }

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Accumulator* Registry::find_accum(const std::string& name) const {
  const auto it = accums_.find(name);
  return it == accums_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::string> Registry::accum_names() const {
  std::vector<std::string> out;
  out.reserve(accums_.size());
  for (const auto& [k, v] : accums_) out.push_back(k);
  return out;
}

std::vector<std::string> Registry::histogram_names() const {
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [k, v] : histograms_) out.push_back(k);
  return out;
}

void Registry::reset() {
  counters_.clear();
  accums_.clear();
  histograms_.clear();
}

std::string Registry::dump() const {
  std::string out;
  char line[256];
  for (const auto& [k, c] : counters_) {
    std::snprintf(line, sizeof line, "%-48s %llu\n", k.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [k, a] : accums_) {
    std::snprintf(line, sizeof line, "%-48s n=%llu mean=%.3f min=%.3f max=%.3f\n", k.c_str(),
                  static_cast<unsigned long long>(a.count()), a.mean(), a.min(), a.max());
    out += line;
  }
  for (const auto& [k, h] : histograms_) {
    std::snprintf(line, sizeof line, "%-48s n=%llu mean=%.3f p50=%.0f p90=%.0f p99=%.0f\n",
                  k.c_str(), static_cast<unsigned long long>(h.count()), h.mean(), h.p50(),
                  h.p90(), h.p99());
    out += line;
  }
  return out;
}

}  // namespace rr::metrics
