// Primitive measurement types.
//
// The experiments in this repo measure three things over and over: how many
// times something happened (Counter), a distribution of sampled values
// (Accumulator) and how long processes spent in some state made of
// non-overlapping open/close intervals (IntervalTracker — used for the
// paper's headline "live-process blocked time" metric).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace rr::metrics {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// Streaming count/sum/min/max; mean is derived.
class Accumulator {
 public:
  void record(double v) noexcept {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  void record_duration(Duration d) noexcept { record(static_cast<double>(d)); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / count_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  void reset() noexcept { *this = Accumulator{}; }

 private:
  std::uint64_t count_{0};
  double sum_{0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Log-scale histogram for latency-like values: 64 power-of-two buckets
/// (bucket i holds values in [2^i, 2^(i+1))), so nanosecond durations up to
/// hours fit with ≤ 2x quantile error — plenty for "is this microseconds,
/// milliseconds or seconds" questions, at eight bytes per bucket.
class Histogram {
 public:
  void record(double v) noexcept {
    ++count_;
    sum_ += v;
    ++buckets_[bucket_of(v)];
  }
  void record_duration(Duration d) noexcept { record(static_cast<double>(d)); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket holding quantile q (q in [0, 1]).
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Combine another histogram into this one (bucket-wise addition).
  /// Counts and buckets are exact under any merge order; `sum_` (and hence
  /// mean()) is floating-point, so callers that need bit-identical results
  /// across worker counts must merge in a canonical order — see
  /// harness::merge_histograms, which folds results in input-index order.
  void merge(const Histogram& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  void reset() noexcept { *this = Histogram{}; }

 private:
  static constexpr std::size_t kBuckets = 64;

  [[nodiscard]] static std::size_t bucket_of(double v) noexcept {
    if (v < 1.0) return 0;
    const auto n = static_cast<std::uint64_t>(v);
    return static_cast<std::size_t>(63 - __builtin_clzll(n));
  }
  [[nodiscard]] static double upper_bound(std::size_t bucket) noexcept {
    return bucket >= 63 ? static_cast<double>(~0ULL)
                        : static_cast<double>(std::uint64_t{2} << bucket);
  }

  std::uint64_t count_{0};
  double sum_{0};
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Accumulates total time spent inside begin()/end() intervals. Used to
/// measure how long a live process was prevented from delivering
/// application messages. begin() while already open is a no-op (nested
/// blocking reasons collapse into one interval).
class IntervalTracker {
 public:
  void begin(Time now) noexcept {
    if (open_) return;
    open_ = true;
    opened_at_ = now;
    ++episodes_;
  }

  void end(Time now) noexcept {
    if (!open_) return;
    RR_CHECK(now >= opened_at_);
    total_ += now - opened_at_;
    open_ = false;
  }

  [[nodiscard]] bool open() const noexcept { return open_; }
  [[nodiscard]] std::uint64_t episodes() const noexcept { return episodes_; }

  /// Total closed time; if an interval is open, includes time up to `now`.
  [[nodiscard]] Duration total(Time now) const noexcept {
    return open_ ? total_ + (now - opened_at_) : total_;
  }
  [[nodiscard]] Duration total_closed() const noexcept { return total_; }

  void reset() noexcept { *this = IntervalTracker{}; }

 private:
  bool open_{false};
  Time opened_at_{0};
  Duration total_{0};
  std::uint64_t episodes_{0};
};

}  // namespace rr::metrics
