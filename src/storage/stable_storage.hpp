// Stable storage device model.
//
// A key/value block store whose contents survive crashes (that is the
// definition of "stable"), with the latency profile of a mid-90s disk:
// every operation pays a fixed positioning cost plus size/bandwidth, and
// the device is *serial* — concurrent requests queue behind each other.
// The paper's central argument is that this latency, not message counts,
// dominates recovery; benches F3/F6 sweep exactly these two knobs.
//
// The API is asynchronous: completion callbacks run in virtual time when
// the device finishes. A host crash does not cancel queued operations'
// effects on the medium (a write that had reached the device completes),
// but completion callbacks of a crashed issuer are suppressed by the
// runtime layer, not here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/serde.hpp"
#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace rr::obs {
class SpanTracer;
}

namespace rr::storage {

struct StorageConfig {
  /// Fixed per-operation positioning latency (seek + rotation).
  Duration seek_latency = milliseconds(12);
  /// Sustained transfer bandwidth. ~1995 SCSI disk.
  double bytes_per_second = 2.0 * 1024 * 1024;
};

class StableStorage {
 public:
  using WriteCallback = std::function<void()>;
  using ReadCallback = std::function<void(std::optional<Bytes>)>;

  /// Fault-injection tap: called once per issued operation (write, read or
  /// erase, in issue order) with the device-wide operation index; the
  /// returned duration is added to the operation's device occupancy — a
  /// mechanical stall (retried seek, remapped block, bus contention). Zero
  /// means unaffected. Deterministic replay relies on the hook being a pure
  /// function of the index.
  using FaultHook = std::function<Duration(std::uint64_t op_index)>;

  StableStorage(sim::Simulator& sim, StorageConfig config, metrics::Registry& metrics,
                std::string metric_prefix = "storage");

  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  /// Durably write `data` under `key`; `done` runs when the device commits.
  void write(std::string key, Bytes data, WriteCallback done);

  /// Read `key`; `done` receives nullopt if absent.
  void read(std::string key, ReadCallback done);

  /// Remove `key` (metadata operation: seek cost only, no transfer).
  void erase(std::string key, WriteCallback done);

  /// Synchronous introspection for tests and GC decisions; does not model
  /// latency and must not be used on a protocol's critical path.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size_of(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Attach (or clear, with nullptr) the span tracer tap; `node` is the
  /// tracer slot every operation of this device is attributed to. The device
  /// is serial with completion times computed at issue, so each op reports a
  /// complete interval in one call.
  void set_tracer(obs::SpanTracer* tracer, std::uint32_t node) {
    tracer_ = tracer;
    tracer_node_ = node;
  }

  /// Install (or clear, with nullptr) the per-operation fault hook used by
  /// the schedule explorer's storage-fault coordinates.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Operations issued so far (the next op gets this index).
  [[nodiscard]] std::uint64_t ops_issued() const noexcept { return ops_issued_; }

  /// Time at which the device drains all currently queued work.
  [[nodiscard]] Time busy_until() const noexcept { return busy_until_; }

  [[nodiscard]] const StorageConfig& config() const noexcept { return config_; }

 private:
  /// One queued device operation. The device is serial and reserve() hands
  /// out strictly ordered completion times, so completions fire in exactly
  /// the order ops were issued — a FIFO of parked ops lets the scheduled
  /// event capture nothing but `this`, keeping the kernel hot path free of
  /// per-op closure allocations.
  struct PendingOp {
    enum class Kind : std::uint8_t { kWrite, kRead, kErase };
    Kind kind;
    std::string key;
    Bytes data;           // write payload
    WriteCallback done;   // write / erase completion
    ReadCallback read_done;
  };

  /// Reserve a device slot of length `transfer` (+ any injected stall for
  /// this op index); returns completion time.
  Time reserve(Duration transfer);
  /// Apply the oldest queued op to the medium and run its callback.
  void complete_front();

  sim::Simulator& sim_;
  StorageConfig config_;
  metrics::Registry& metrics_;
  std::string prefix_;
  std::map<std::string, Bytes> blocks_;
  std::deque<PendingOp> queue_;
  FaultHook fault_hook_;
  std::uint64_t ops_issued_{0};
  Time busy_until_{kTimeZero};
  obs::SpanTracer* tracer_{nullptr};
  std::uint32_t tracer_node_{0};
};

}  // namespace rr::storage
