#include "storage/stable_storage.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/span.hpp"

namespace rr::storage {

StableStorage::StableStorage(sim::Simulator& sim, StorageConfig config,
                             metrics::Registry& metrics, std::string metric_prefix)
    : sim_(sim), config_(config), metrics_(metrics), prefix_(std::move(metric_prefix)) {
  RR_CHECK(config_.seek_latency >= 0);
  RR_CHECK(config_.bytes_per_second > 0);
}

Time StableStorage::reserve(Duration transfer) {
  // Fault tap: each issued op consumes one device-wide index; a hit extends
  // the op's occupancy (a mechanical stall), pushing every queued op behind
  // it — exactly how a serial device degrades.
  Duration stall = kDurationZero;
  if (fault_hook_) stall = fault_hook_(ops_issued_);
  ++ops_issued_;
  if (stall > 0) metrics_.counter(prefix_ + ".stalls_injected").add();
  // Serial device: the new operation starts when the queue drains.
  const Time start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + config_.seek_latency + stall + transfer;
  metrics_.accum(prefix_ + ".op_latency_ns").record_duration(busy_until_ - sim_.now());
  return busy_until_;
}

void StableStorage::complete_front() {
  RR_CHECK(!queue_.empty());
  PendingOp op = std::move(queue_.front());
  queue_.pop_front();
  switch (op.kind) {
    case PendingOp::Kind::kWrite:
      // Commit point: the medium is updated only when the transfer finishes,
      // so a crash mid-write loses the write, never torn data.
      blocks_[op.key] = std::move(op.data);
      if (op.done) op.done();
      break;
    case PendingOp::Kind::kRead: {
      const auto found = blocks_.find(op.key);
      if (found == blocks_.end()) {
        op.read_done(std::nullopt);
      } else {
        op.read_done(found->second);
      }
      break;
    }
    case PendingOp::Kind::kErase:
      blocks_.erase(op.key);
      if (op.done) op.done();
      break;
  }
}

void StableStorage::write(std::string key, Bytes data, WriteCallback done) {
  const auto transfer = static_cast<Duration>(
      static_cast<double>(data.size()) / config_.bytes_per_second * 1e9);
  metrics_.counter(prefix_ + ".writes").add();
  metrics_.counter(prefix_ + ".bytes_written").add(data.size());
  const std::size_t bytes = data.size();
  const Time at = reserve(transfer);
  if (tracer_ != nullptr) {
    tracer_->on_storage_op(sim_.now(), at, tracer_node_, obs::SpanName::kStorageWrite, bytes);
  }
  queue_.push_back(PendingOp{PendingOp::Kind::kWrite, std::move(key), std::move(data),
                             std::move(done), nullptr});
  sim_.schedule_at(at, [this] { complete_front(); });
}

void StableStorage::read(std::string key, ReadCallback done) {
  RR_CHECK(done != nullptr);
  // Transfer cost is charged by the *current* size of the block; reading a
  // missing key costs one seek.
  const auto it = blocks_.find(key);
  const std::size_t bytes = it == blocks_.end() ? 0 : it->second.size();
  const auto transfer =
      static_cast<Duration>(static_cast<double>(bytes) / config_.bytes_per_second * 1e9);
  metrics_.counter(prefix_ + ".reads").add();
  metrics_.counter(prefix_ + ".bytes_read").add(bytes);
  const Time at = reserve(transfer);
  if (tracer_ != nullptr) {
    tracer_->on_storage_op(sim_.now(), at, tracer_node_, obs::SpanName::kStorageRead, bytes);
  }
  queue_.push_back(
      PendingOp{PendingOp::Kind::kRead, std::move(key), {}, nullptr, std::move(done)});
  sim_.schedule_at(at, [this] { complete_front(); });
}

void StableStorage::erase(std::string key, WriteCallback done) {
  metrics_.counter(prefix_ + ".erases").add();
  const Time at = reserve(kDurationZero);
  if (tracer_ != nullptr) {
    tracer_->on_storage_op(sim_.now(), at, tracer_node_, obs::SpanName::kStorageErase, 0);
  }
  queue_.push_back(
      PendingOp{PendingOp::Kind::kErase, std::move(key), {}, std::move(done), nullptr});
  sim_.schedule_at(at, [this] { complete_front(); });
}

bool StableStorage::contains(const std::string& key) const { return blocks_.contains(key); }

std::size_t StableStorage::size_of(const std::string& key) const {
  const auto it = blocks_.find(key);
  return it == blocks_.end() ? 0 : it->second.size();
}

std::vector<std::string> StableStorage::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = blocks_.lower_bound(prefix); it != blocks_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace rr::storage
