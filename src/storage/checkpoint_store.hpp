// Versioned checkpoint store on top of StableStorage.
//
// Keeps the latest committed checkpoint per process under a two-slot
// scheme: a new checkpoint is written to a fresh key and only then the
// "latest" pointer record is flipped, so a crash during checkpointing
// always leaves a loadable previous checkpoint (classic atomic-pointer
// technique). Old checkpoint blocks are erased after the flip.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "storage/stable_storage.hpp"

namespace rr::storage {

class CheckpointStore {
 public:
  using SaveCallback = std::function<void(std::uint64_t version)>;
  using LoadCallback = std::function<void(std::optional<Bytes>, std::uint64_t version)>;

  CheckpointStore(StableStorage& device, ProcessId owner);

  /// Persist `snapshot` as the next checkpoint version. `done` runs after
  /// the latest-pointer flip commits (i.e., when the checkpoint is the one
  /// a restart would load).
  void save(Bytes snapshot, SaveCallback done);

  /// Load the latest committed checkpoint (nullopt + version 0 if none).
  void load_latest(LoadCallback done);

  /// Version of the last committed checkpoint (0 = none). Synchronous
  /// metadata for tests/GC; a crashed-and-restarted runtime re-learns this
  /// via load_latest().
  [[nodiscard]] std::uint64_t committed_version() const noexcept { return committed_; }

 private:
  [[nodiscard]] std::string block_key(std::uint64_t version) const;
  [[nodiscard]] std::string pointer_key() const;

  StableStorage& device_;
  ProcessId owner_;
  std::uint64_t next_version_{1};
  std::uint64_t committed_{0};
};

}  // namespace rr::storage
