#include "storage/checkpoint_store.hpp"

#include <algorithm>
#include <utility>

namespace rr::storage {

CheckpointStore::CheckpointStore(StableStorage& device, ProcessId owner)
    : device_(device), owner_(owner) {}

std::string CheckpointStore::block_key(std::uint64_t version) const {
  return "ckpt/" + std::to_string(owner_.value) + "/" + std::to_string(version);
}

std::string CheckpointStore::pointer_key() const {
  return "ckpt/" + std::to_string(owner_.value) + "/latest";
}

void CheckpointStore::save(Bytes snapshot, SaveCallback done) {
  const std::uint64_t version = next_version_++;
  device_.write(block_key(version), std::move(snapshot), [this, version, done = std::move(done)] {
    BufWriter w;
    w.u64(version);
    device_.write(pointer_key(), std::move(w).take(), [this, version, done = std::move(done)] {
      const std::uint64_t previous = committed_;
      committed_ = version;
      if (previous != 0) device_.erase(block_key(previous), nullptr);
      if (done) done(version);
    });
  });
}

void CheckpointStore::load_latest(LoadCallback done) {
  device_.read(pointer_key(), [this, done = std::move(done)](std::optional<Bytes> ptr) {
    if (!ptr) {
      done(std::nullopt, 0);
      return;
    }
    BufReader r(*ptr);
    const std::uint64_t version = r.u64();
    // A store rebuilt after a crash re-learns where the version sequence
    // stands, so later saves never reuse a live block key.
    committed_ = std::max(committed_, version);
    next_version_ = std::max(next_version_, version + 1);
    device_.read(block_key(version), [done = std::move(done), version](std::optional<Bytes> blk) {
      done(std::move(blk), version);
    });
  });
}

}  // namespace rr::storage
