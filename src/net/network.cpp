#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "obs/ledger.hpp"
#include "obs/span.hpp"

namespace rr::net {

namespace {

std::uint64_t channel_key(ProcessId src, ProcessId dst) {
  return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
}

// Fault-draw domains; mixed into the hash so loss, dup and reorder draws
// for the same packet are independent.
constexpr std::uint64_t kTagLoss = 0x6c6f7373;     // "loss"
constexpr std::uint64_t kTagDup = 0x647570;        // "dup"
constexpr std::uint64_t kTagReorder = 0x72656f72;  // "reor"

constexpr std::uint64_t kPpmScale = 1'000'000;

std::uint32_t to_ppm(double p) {
  if (p <= 0.0) return 0;
  const double scaled = std::min(p, 1.0) * static_cast<double>(kPpmScale);
  return static_cast<std::uint32_t>(std::llround(scaled));
}

bool sorted_contains(const std::vector<ProcessId>& v, ProcessId id) {
  return std::binary_search(v.begin(), v.end(), id);
}

}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config, metrics::Registry& metrics)
    : sim_(sim), config_(config), metrics_(metrics), rng_(sim.rng().fork("net")) {
  RR_CHECK(config_.base_latency >= 0);
  RR_CHECK(config_.bytes_per_second > 0);
  RR_CHECK(config_.jitter_max >= 0);
  RR_CHECK(config_.faults.loss >= 0.0 && config_.faults.loss < 1.0);
  RR_CHECK(config_.faults.dup >= 0.0 && config_.faults.dup <= 1.0);
  RR_CHECK(config_.faults.loss_burst >= 1);
  RR_CHECK(config_.faults.reorder_window >= 0);
  // The draw seed comes from a dedicated fork so the fault universe is a
  // function of the sim seed (plus salt) alone — using rng_ itself would
  // couple packet fates to how many jitter values were drawn before.
  draw_seed_ = sim.rng().fork("net.faults").next_u64() ^ config_.faults.salt;
  // Bursts scale the start probability down so the per-packet loss *rate*
  // is preserved: a burst beginning at i kills i..i+burst-1.
  loss_start_ppm_ = to_ppm(config_.faults.loss / config_.faults.loss_burst);
  dup_ppm_ = to_ppm(config_.faults.dup);
}

void Network::attach(ProcessId id, Endpoint& endpoint) {
  auto& st = endpoints_[id];
  RR_CHECK_MSG(st.endpoint == nullptr, "endpoint already attached");
  st.endpoint = &endpoint;
  st.up = true;
}

void Network::detach(ProcessId id) { endpoints_.erase(id); }

void Network::set_up(ProcessId id, bool up) {
  const auto it = endpoints_.find(id);
  RR_CHECK_MSG(it != endpoints_.end(), "unknown endpoint");
  it->second.up = up;
}

bool Network::is_up(ProcessId id) const {
  const auto it = endpoints_.find(id);
  return it != endpoints_.end() && it->second.up;
}

void Network::set_partitioned(ProcessId id, bool isolated) {
  const auto it = std::lower_bound(partitioned_.begin(), partitioned_.end(), id);
  const bool present = it != partitioned_.end() && *it == id;
  if (isolated && !present) {
    partitioned_.insert(it, id);
    RR_TRACE("net", "partition up around %s", to_string(id).c_str());
  } else if (!isolated && present) {
    partitioned_.erase(it);
    RR_TRACE("net", "partition healed around %s", to_string(id).c_str());
  }
}

bool Network::is_partitioned(ProcessId id) const {
  return sorted_contains(partitioned_, id);
}

void Network::set_fault_exempt(ProcessId id) {
  const auto it = std::lower_bound(exempt_.begin(), exempt_.end(), id);
  if (it == exempt_.end() || *it != id) exempt_.insert(it, id);
}

bool Network::link_open(ProcessId src, ProcessId dst) const {
  if (partitioned_.empty()) return true;
  return !sorted_contains(partitioned_, src) && !sorted_contains(partitioned_, dst);
}

bool Network::profile_applies(ProcessId src, ProcessId dst) const {
  if (!config_.faults.any()) return false;
  if (exempt_.empty()) return true;
  return !sorted_contains(exempt_, src) && !sorted_contains(exempt_, dst);
}

Network::ChannelHorizon& Network::channel_for(std::uint64_t key) {
  const auto it = std::lower_bound(
      channel_horizon_.begin(), channel_horizon_.end(), key,
      [](const ChannelHorizon& h, std::uint64_t k) { return h.key < k; });
  if (it != channel_horizon_.end() && it->key == key) return *it;
  // First packet on this channel; O(channels) insert, amortized out since
  // the channel set is bounded by attached pairs.
  return *channel_horizon_.insert(it, ChannelHorizon{key, kTimeZero, 0});
}

Duration Network::transit_time(std::size_t bytes) {
  const auto serialization =
      static_cast<Duration>(static_cast<double>(bytes) / config_.bytes_per_second * 1e9);
  const Duration jitter =
      config_.jitter_max > 0 ? static_cast<Duration>(rng_.bounded(
                                   static_cast<std::uint64_t>(config_.jitter_max) + 1))
                             : 0;
  return config_.base_latency + serialization + jitter;
}

std::uint64_t Network::fault_draw(std::uint64_t tag, std::uint64_t key,
                                  std::uint64_t index) const {
  Hasher h;
  h.mix_u64(draw_seed_).mix_u64(tag).mix_u64(key).mix_u64(index);
  return h.digest();
}

bool Network::loss_verdict(std::uint64_t key, std::uint64_t index) const {
  if (loss_start_ppm_ == 0) return false;
  // Packet i dies if any j in [i-burst+1, i] started a loss run.
  const std::uint64_t burst = config_.faults.loss_burst;
  const std::uint64_t lo = index + 1 >= burst ? index + 1 - burst : 0;
  for (std::uint64_t j = lo; j <= index; ++j) {
    if (fault_draw(kTagLoss, key, j) % kPpmScale < loss_start_ppm_) return true;
  }
  return false;
}

void Network::schedule_delivery(Time at, ProcessId src, ProcessId dst, Bytes payload) {
  sim_.schedule_at(at, [this, src, dst, payload = std::move(payload)]() mutable {
    const auto it = endpoints_.find(dst);
    if (it == endpoints_.end() || !it->second.up) {
      // Receiver crashed (or was removed) while the packet was in flight.
      metrics_.counter("net.drop.down").add();
      RR_TRACE("net", "drop in-flight %s -> %s (down)", to_string(src).c_str(),
               to_string(dst).c_str());
      BufferPool::global().release(std::move(payload));
      return;
    }
    if (!link_open(src, dst)) {
      // The wall went up while the packet was on the wire.
      metrics_.counter("net.drop.partition").add();
      BufferPool::global().release(std::move(payload));
      return;
    }
    it->second.endpoint->deliver(src, std::move(payload));
  });
}

std::size_t Network::send(ProcessId src, ProcessId dst, Bytes payload) {
  // The transport's retransmit hint is one-shot and consumed on *every*
  // path through send(), so a retransmission dropped below cannot mislabel
  // the sender's next packet in the ledger.
  const bool retransmit =
      ledger_ != nullptr && ledger_->take_retransmit_hint(src.value);
  const auto src_it = endpoints_.find(src);
  if (src_it == endpoints_.end() || !src_it->second.up) {
    metrics_.counter("net.drop.down").add();
    return 0;
  }
  RR_CHECK_MSG(endpoints_.contains(dst), "send to unknown endpoint");

  // chan_index advances for every send that passed the liveness check, no
  // matter what kills the packet afterwards — fault coordinates must not
  // shift when an earlier packet is lost.
  ChannelHorizon& chan = channel_for(channel_key(src, dst));
  const std::uint64_t chan_index = chan.sent++;
  Duration extra_delay = 0;
  if (fault_hook_) {
    const FaultDecision fault = fault_hook_(src, dst, payload, chan_index);
    if (fault.drop) {
      metrics_.counter("net.drop.fault").add();
      BufferPool::global().release(std::move(payload));
      return 0;
    }
    if (fault.extra_delay > 0) {
      metrics_.counter("net.injected_delays").add();
      extra_delay = fault.extra_delay;
    }
  }
  if (!link_open(src, dst)) {
    metrics_.counter("net.drop.partition").add();
    BufferPool::global().release(std::move(payload));
    return 0;
  }
  const std::uint64_t key = channel_key(src, dst);
  const bool lossy = profile_applies(src, dst);
  if (lossy && loss_verdict(key, chan_index)) {
    metrics_.counter("net.drop.loss").add();
    RR_TRACE("net", "loss %s -> %s #%llu", to_string(src).c_str(),
             to_string(dst).c_str(), static_cast<unsigned long long>(chan_index));
    BufferPool::global().release(std::move(payload));
    return 0;
  }

  const std::size_t bytes = payload.size() + kHeaderBytes;
  metrics_.counter("net.packets").add();
  metrics_.counter("net.bytes").add(bytes);
  // Classified at the same site "net.bytes" is charged: the ledger's
  // category totals partition that counter exactly (V10). Duplicated
  // copies below bypass both, keeping the two in lockstep.
  if (ledger_ != nullptr) ledger_->on_wire(src.value, payload, kHeaderBytes, retransmit);

  // FIFO: never deliver earlier than the previous packet on this channel.
  // Injected delay is applied before the horizon so it pushes the channel
  // back as a whole instead of reordering it. A reorder window adds its
  // extra *after* the horizon clamp: adjacent packets may then swap, and
  // the horizon degrades into a monotone high-water mark.
  Time deliver_at = sim_.now() + transit_time(bytes) + extra_delay;
  deliver_at = std::max(deliver_at, chan.at + config_.fifo_spacing);
  chan.at = std::max(chan.at, deliver_at);
  if (lossy && config_.faults.reorder_window > 0) {
    // The extra rides on top of the horizon-clamped base and is *not*
    // folded back into chan.at: the horizon stays the monotone base
    // schedule, so two adjacent packets with different extras may swap.
    const auto window = static_cast<std::uint64_t>(config_.faults.reorder_window);
    deliver_at += static_cast<Duration>(
        fault_draw(kTagReorder, key, chan_index) % (window + 1));
  }

  if (tracer_ != nullptr && !payload.empty()) {
    tracer_->on_packet(sim_.now(), deliver_at, src.value, dst.value, bytes,
                       static_cast<std::uint32_t>(payload[0]));
  }

  if (lossy && dup_ppm_ != 0 &&
      fault_draw(kTagDup, key, chan_index) % kPpmScale < dup_ppm_) {
    // The copy trails the original by a deterministic sliver, outside the
    // FIFO horizon — the classic retransmit-ghost a dedup layer must eat.
    metrics_.counter("net.dup_injected").add();
    const auto lag = static_cast<Duration>(
        1 + fault_draw(kTagDup ^ kTagReorder, key, chan_index) %
                (static_cast<std::uint64_t>(config_.jitter_max) + 1));
    schedule_delivery(deliver_at + lag, src, dst,
                      BufferPool::global().copy_of(payload));
  }

  schedule_delivery(deliver_at, src, dst, std::move(payload));
  return bytes;
}

void Network::inject(ProcessId src, ProcessId dst, Bytes payload, Duration delay) {
  RR_CHECK(delay >= 0);
  metrics_.counter("net.injected_stale").add();
  if (tracer_ != nullptr && !payload.empty()) {
    tracer_->on_packet(sim_.now(), sim_.now() + delay, src.value, dst.value,
                       payload.size() + kHeaderBytes,
                       static_cast<std::uint32_t>(payload[0]));
  }
  // Bypasses sender liveness and the FIFO horizon (that is the point of a
  // stale straggler), but not the destination's down/partition wall.
  schedule_delivery(sim_.now() + delay, src, dst, std::move(payload));
}

void Network::broadcast(ProcessId src, const Bytes& payload) {
  // Deterministic fan-out order: sorted destination ids. Each transmission
  // needs its own buffer (independent delivery lifetimes); draw the copies
  // from the pool instead of fresh allocations.
  std::vector<ProcessId> dsts = attached();
  for (const ProcessId dst : dsts) {
    if (dst != src) send(src, dst, BufferPool::global().copy_of(payload));
  }
}

std::vector<ProcessId> Network::attached() const {
  std::vector<ProcessId> out;
  out.reserve(endpoints_.size());
  // endpoints_ stays unordered for the O(1) per-packet lookup in send().
  // rrlint: allow(D2): keys are sorted below before any caller sees them
  for (const auto& [id, st] : endpoints_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rr::net
