#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/span.hpp"

namespace rr::net {

namespace {

std::uint64_t channel_key(ProcessId src, ProcessId dst) {
  return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
}

}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config, metrics::Registry& metrics)
    : sim_(sim), config_(config), metrics_(metrics), rng_(sim.rng().fork("net")) {
  RR_CHECK(config_.base_latency >= 0);
  RR_CHECK(config_.bytes_per_second > 0);
  RR_CHECK(config_.jitter_max >= 0);
}

void Network::attach(ProcessId id, Endpoint& endpoint) {
  auto& st = endpoints_[id];
  RR_CHECK_MSG(st.endpoint == nullptr, "endpoint already attached");
  st.endpoint = &endpoint;
  st.up = true;
}

void Network::detach(ProcessId id) { endpoints_.erase(id); }

void Network::set_up(ProcessId id, bool up) {
  const auto it = endpoints_.find(id);
  RR_CHECK_MSG(it != endpoints_.end(), "unknown endpoint");
  it->second.up = up;
}

bool Network::is_up(ProcessId id) const {
  const auto it = endpoints_.find(id);
  return it != endpoints_.end() && it->second.up;
}

Network::ChannelHorizon& Network::channel_for(std::uint64_t key) {
  const auto it = std::lower_bound(
      channel_horizon_.begin(), channel_horizon_.end(), key,
      [](const ChannelHorizon& h, std::uint64_t k) { return h.key < k; });
  if (it != channel_horizon_.end() && it->key == key) return *it;
  // First packet on this channel; O(channels) insert, amortized out since
  // the channel set is bounded by attached pairs.
  return *channel_horizon_.insert(it, ChannelHorizon{key, kTimeZero, 0});
}

Duration Network::transit_time(std::size_t bytes) {
  const auto serialization =
      static_cast<Duration>(static_cast<double>(bytes) / config_.bytes_per_second * 1e9);
  const Duration jitter =
      config_.jitter_max > 0 ? static_cast<Duration>(rng_.bounded(
                                   static_cast<std::uint64_t>(config_.jitter_max) + 1))
                             : 0;
  return config_.base_latency + serialization + jitter;
}

std::size_t Network::send(ProcessId src, ProcessId dst, Bytes payload) {
  const auto src_it = endpoints_.find(src);
  if (src_it == endpoints_.end() || !src_it->second.up) {
    metrics_.counter("net.dropped_at_send").add();
    return 0;
  }
  RR_CHECK_MSG(endpoints_.contains(dst), "send to unknown endpoint");

  ChannelHorizon& chan = channel_for(channel_key(src, dst));
  const std::uint64_t chan_index = chan.sent++;
  Duration extra_delay = 0;
  if (fault_hook_) {
    const FaultDecision fault = fault_hook_(src, dst, payload, chan_index);
    if (fault.drop) {
      metrics_.counter("net.injected_drops").add();
      BufferPool::global().release(std::move(payload));
      return 0;
    }
    if (fault.extra_delay > 0) {
      metrics_.counter("net.injected_delays").add();
      extra_delay = fault.extra_delay;
    }
  }

  const std::size_t bytes = payload.size() + kHeaderBytes;
  metrics_.counter("net.packets").add();
  metrics_.counter("net.bytes").add(bytes);

  // FIFO: never deliver earlier than the previous packet on this channel.
  // Injected delay is applied before the horizon so it pushes the channel
  // back as a whole instead of reordering it.
  Time deliver_at = sim_.now() + transit_time(bytes) + extra_delay;
  deliver_at = std::max(deliver_at, chan.at + config_.fifo_spacing);
  chan.at = deliver_at;

  if (tracer_ != nullptr && !payload.empty()) {
    tracer_->on_packet(sim_.now(), deliver_at, src.value, dst.value, bytes,
                       static_cast<std::uint32_t>(payload[0]));
  }

  sim_.schedule_at(deliver_at, [this, src, dst, payload = std::move(payload)]() mutable {
    const auto it = endpoints_.find(dst);
    if (it == endpoints_.end() || !it->second.up) {
      // Receiver crashed (or was removed) while the packet was in flight.
      metrics_.counter("net.dropped_at_delivery").add();
      RR_TRACE("net", "drop in-flight %s -> %s (down)", to_string(src).c_str(),
               to_string(dst).c_str());
      BufferPool::global().release(std::move(payload));
      return;
    }
    it->second.endpoint->deliver(src, std::move(payload));
  });
  return bytes;
}

void Network::inject(ProcessId src, ProcessId dst, Bytes payload, Duration delay) {
  RR_CHECK(delay >= 0);
  metrics_.counter("net.injected_stale").add();
  if (tracer_ != nullptr && !payload.empty()) {
    tracer_->on_packet(sim_.now(), sim_.now() + delay, src.value, dst.value,
                       payload.size() + kHeaderBytes,
                       static_cast<std::uint32_t>(payload[0]));
  }
  sim_.schedule_after(delay, [this, src, dst, payload = std::move(payload)]() mutable {
    const auto it = endpoints_.find(dst);
    if (it == endpoints_.end() || !it->second.up) {
      metrics_.counter("net.dropped_at_delivery").add();
      BufferPool::global().release(std::move(payload));
      return;
    }
    it->second.endpoint->deliver(src, std::move(payload));
  });
}

void Network::broadcast(ProcessId src, const Bytes& payload) {
  // Deterministic fan-out order: sorted destination ids. Each transmission
  // needs its own buffer (independent delivery lifetimes); draw the copies
  // from the pool instead of fresh allocations.
  std::vector<ProcessId> dsts = attached();
  for (const ProcessId dst : dsts) {
    if (dst != src) send(src, dst, BufferPool::global().copy_of(payload));
  }
}

std::vector<ProcessId> Network::attached() const {
  std::vector<ProcessId> out;
  out.reserve(endpoints_.size());
  for (const auto& [id, st] : endpoints_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rr::net
