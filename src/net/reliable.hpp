// Reliable-delivery transport over the (possibly lossy) simulated fabric.
//
// The paper assumes TCP underneath: reliable, FIFO, dedup'd channels. Once
// the fabric can lose, duplicate and partition (net/network.hpp), that
// assumption has to be rebuilt here — per-peer sequence numbers with
// cumulative acks, retransmission timers with exponential backoff and
// deterministic jitter, and receive-side resequencing/dedup — so the FBL
// protocol above keeps seeing the channel semantics its proofs require.
//
// Incarnations double as transport epochs. A wire frame carries
// (epoch, stream, seq): `epoch` is the sender's incarnation (bumped by its
// restarts), `stream` restarts the sequence space within an epoch whenever
// the sender observes that the *receiver* restarted (its frames arrive with
// a higher epoch), and `seq` counts data frames in the stream from 1.
// Channels compare (epoch, stream) lexicographically: lower is a stale
// incarnation's traffic and is dropped, higher resets the channel. The
// exactly-once guarantee (V9) is per synced channel — across a crash the
// recovery protocol itself owns redelivery (replay from logs + post-recovery
// retransmission), exactly as in the paper; the transport only has to mask
// *link* faults between two stable incarnations.
//
// Graceful degradation: retries are bounded. After `max_retries` back-to-back
// timeouts on one peer the transport reports the peer unreachable (the node
// feeds this into the failure detector as a suspicion) and drops to a slow
// probe cadence — it never blocks the caller and never gives up the queue,
// so when a partition heals the backlog drains and the peer is un-suspected
// by its own heartbeats. Live processes keep serving throughout, which is
// the paper's never-block discipline applied to the transport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rr::net {

struct TransportConfig {
  /// Off by default: send()/on_wire() are exact passthroughs, bit-identical
  /// to the pre-transport wire format. Enable alongside link faults.
  bool enabled{false};
  /// First retransmission timeout; doubles per back-to-back timeout.
  Duration rto_initial = milliseconds(40);
  /// Backoff ceiling.
  Duration rto_max = seconds(2);
  /// Deterministic jitter in [0, rto_jitter] added to each arm, from a
  /// per-node forked RNG stream (desynchronizes retransmit storms).
  Duration rto_jitter = milliseconds(5);
  /// Back-to-back timeouts on one peer before it is reported unreachable.
  std::uint32_t max_retries{8};
  /// Probe cadence once a peer is unreachable (only the queue head is
  /// retransmitted, to keep the partition-facing traffic bounded).
  Duration probe_period = milliseconds(400);
  /// Out-of-order frames held per peer; beyond this, arrivals are dropped
  /// and recovered by the sender's retransmission.
  std::size_t max_held{1024};
};

class ReliableTransport {
 public:
  /// Upstream delivery: `payload[offset..]` is the inner frame. The buffer
  /// is only valid for the duration of the call (the transport releases it).
  using DeliverFn =
      std::function<void(ProcessId src, const Bytes& payload, std::size_t offset)>;
  /// Reachability edge: `unreachable` flips true after max_retries timeouts
  /// and back to false on the next ack from the peer.
  using PeerSignal = std::function<void(ProcessId peer, bool unreachable)>;
  /// Delivery confirmation: every data frame accepted by send() gets a
  /// per-destination message index (1, 2, ... — stable across stream
  /// restarts, unlike the wire seq). The signal fires when the peer's
  /// cumulative ack newly covers `msg` and everything before it. Note the
  /// confirmation is about the *channel*: a peer that restarts mid-stream
  /// acks the backlog positionally without having delivered it, so
  /// consumers must treat a confirmed-then-crashed peer as lossy (the
  /// recovery protocol's forget-holder pass does exactly that).
  using AckSignal = std::function<void(ProcessId dst, std::uint64_t msg)>;

  /// First wire byte of a transport data / ack frame. Chosen outside the
  /// fbl::FrameKind range so raw (unwrapped) frames pass through untouched.
  static constexpr std::uint8_t kDataByte = 0xD7;
  static constexpr std::uint8_t kAckByte = 0xA7;

  ReliableTransport(sim::Simulator& sim, Network& network, ProcessId self,
                    TransportConfig config, metrics::Registry& metrics);
  ~ReliableTransport();

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_peer_signal(PeerSignal fn) { peer_signal_ = std::move(fn); }
  void set_ack_signal(AckSignal fn) { ack_signal_ = std::move(fn); }

  /// Never wrap traffic to `peer` (infrastructure endpoints like the
  /// ordinal service speak their own raw protocol).
  void set_raw_peer(ProcessId peer);

  /// Reliable send: wraps, tracks, retransmits until cumulatively acked.
  /// Returns the bytes charged for the first transmission attempt (0 if the
  /// fabric swallowed it — the retransmit timer still runs). Passthrough
  /// when disabled or `dst` is a raw peer.
  std::size_t send(ProcessId dst, Bytes payload);

  /// Message index assigned to the most recent send() toward `dst` (the
  /// AckSignal's currency); 0 if nothing was ever channeled that way
  /// (transport disabled, raw peer, or no sends yet).
  [[nodiscard]] std::uint64_t last_sent_msg(ProcessId dst) const;

  /// Unconditional passthrough (heartbeats: retransmitting a liveness
  /// signal would invert its meaning).
  std::size_t send_raw(ProcessId dst, Bytes payload);

  /// Receive tap: Node::deliver routes every packet here. Transport frames
  /// are consumed (resequenced, dedup'd, acked); anything else is handed to
  /// the DeliverFn as-is. Takes ownership of `payload`.
  void on_wire(ProcessId src, Bytes payload);

  /// Forget all channel state and adopt `epoch` as the local incarnation.
  /// Crash passes 0 (a down node has no transport); start/restore pass the
  /// node's incarnation, whose bump is what peers key channel resets on.
  void reset(Incarnation epoch);

  /// End-of-run audit surface for the V9 oracle (see check/explorer.cpp).
  struct ChannelAudit {
    Incarnation epoch{0};
    std::uint64_t stream{0};
    /// Sender side: highest cumulatively acked seq. Receiver side: highest
    /// contiguously delivered seq.
    std::uint64_t progress{0};
    /// Receiver side: seq the stream synced at minus one (nonzero means the
    /// channel attached mid-stream after a restart — outside the
    /// exactly-once domain). Sender side: frames still awaiting ack.
    std::uint64_t baseline_or_outstanding{0};
    bool exists{false};
  };
  [[nodiscard]] ChannelAudit send_audit(ProcessId dst) const;
  [[nodiscard]] ChannelAudit recv_audit(ProcessId src) const;
  [[nodiscard]] bool unreachable(ProcessId peer) const;
  [[nodiscard]] Incarnation epoch() const noexcept { return epoch_; }
  [[nodiscard]] const TransportConfig& config() const noexcept { return config_; }

 private:
  struct Unacked {
    std::uint64_t seq;
    std::uint64_t msg;  // stable per-destination index (survives re-wrapping)
    Bytes wire;         // full transport frame, ready to retransmit
  };
  struct SendChannel {
    std::uint64_t stream{1};
    std::uint64_t next_seq{1};
    std::uint64_t next_msg{1};
    std::uint64_t acked{0};
    /// Highest incarnation this peer has announced in its acks (0 =
    /// unknown). Lets a one-directional channel detect the peer's restart
    /// from its first post-restart data frame.
    Incarnation peer_epoch{0};
    std::deque<Unacked> unacked;
    Duration rto{0};
    std::uint32_t retries{0};
    bool unreachable{false};
    sim::EventId timer{sim::kNoEvent};
  };
  struct RecvChannel {
    Incarnation epoch{0};
    std::uint64_t stream{0};
    std::uint64_t delivered{0};
    std::uint64_t baseline{0};
    bool synced{false};
    std::map<std::uint64_t, Bytes> held;  // out-of-order stash
  };

  [[nodiscard]] bool is_raw_peer(ProcessId peer) const;
  [[nodiscard]] Bytes wrap(const SendChannel& ch, std::uint64_t seq,
                           std::span<const std::byte> inner) const;
  void arm_timer(ProcessId dst, SendChannel& ch, Duration delay);
  void on_timeout(ProcessId dst);
  void on_ack(ProcessId src, const Bytes& payload);
  void on_data(ProcessId src, Bytes payload);
  void send_ack(ProcessId dst, const RecvChannel& ch);
  /// The receiver behind `peer` restarted: restart our sequence space
  /// toward it (stream+1, re-wrap and resend everything unacked).
  void restart_stream(ProcessId peer, SendChannel& ch);
  void deliver_up(ProcessId src, Bytes payload, std::size_t offset);
  void clear_send(SendChannel& ch);
  void clear_recv(RecvChannel& ch);

  sim::Simulator& sim_;
  Network& network_;
  ProcessId self_;
  TransportConfig config_;
  metrics::Registry& metrics_;
  Rng jitter_rng_;
  DeliverFn deliver_;
  PeerSignal peer_signal_;
  AckSignal ack_signal_;
  Incarnation epoch_{0};
  std::vector<ProcessId> raw_peers_;  // sorted
  // Ordered maps: reset() walks the channels on incarnation bumps and the
  // resulting retransmit/ack traffic must be scheduled in peer-id order,
  // not hash order (rrlint D2).
  std::map<ProcessId, SendChannel> send_;
  std::map<ProcessId, RecvChannel> recv_;
};

}  // namespace rr::net
