// Simulated message-passing fabric.
//
// Point-to-point, reliable-unless-crashed, FIFO per (src, dst) channel —
// the TCP-over-ATM transport of the paper's testbed. Latency for a packet
// is base + size/bandwidth + jitter, with per-channel monotonic delivery
// enforcement so jitter never reorders a channel.
//
// Crash semantics: a *down* endpoint neither sends nor receives; packets
// already in flight toward a host that goes down are dropped at delivery
// time (the rebooted process must not see pre-crash traffic for free —
// whatever it needs it must recover via the protocol). Packets in flight
// *from* a host that goes down still arrive: the network keeps no
// affiliation between a packet and the fate of its sender, which is exactly
// what creates the stale-message hazard the recovery algorithm's incvector
// mechanism exists to close.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace rr::obs {
class SpanTracer;
}

namespace rr::net {

/// Delivery callback target, implemented by the node runtime.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called in virtual time when a packet arrives. `payload` is owned; an
  /// implementation that fully consumes it should hand the dead buffer back
  /// via BufferPool::global().release() so the send path can reuse it.
  virtual void deliver(ProcessId src, Bytes payload) = 0;
};

/// Fault-injection verdict for one outgoing packet (see Network::set_fault_hook).
struct FaultDecision {
  bool drop{false};          ///< swallow the packet at send time
  Duration extra_delay{0};   ///< added before the FIFO horizon is applied
};

/// Consulted on every send that passed the liveness checks. `chan_index` is
/// the 0-based count of prior sends on the (src, dst) channel — a stable,
/// deterministic coordinate for schedules ("drop the 4th packet 0→2").
/// The hook must not call Network::send() synchronously (schedule through
/// the simulator instead — e.g. via Network::inject()).
using FaultHook = std::function<FaultDecision(ProcessId src, ProcessId dst,
                                              const Bytes& payload,
                                              std::uint64_t chan_index)>;

struct NetworkConfig {
  /// Fixed one-way propagation + protocol-stack latency per packet.
  Duration base_latency = microseconds(250);
  /// Link bandwidth; 155 Mb/s ATM ≈ 19.4 MB/s.
  double bytes_per_second = 155e6 / 8.0;
  /// Uniform extra delay in [0, jitter_max] (0 disables jitter).
  Duration jitter_max = microseconds(50);
  /// Minimum spacing between consecutive deliveries on one channel.
  Duration fifo_spacing = nanoseconds(1);
};

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config, metrics::Registry& metrics);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the delivery target for `id`. Endpoint must outlive the
  /// network or detach first. Newly attached endpoints start *up*.
  void attach(ProcessId id, Endpoint& endpoint);
  void detach(ProcessId id);

  /// Crash/restart switch. While down, sends from and deliveries to `id`
  /// are dropped.
  void set_up(ProcessId id, bool up);
  [[nodiscard]] bool is_up(ProcessId id) const;

  /// Enqueue a packet. Returns the number of bytes charged (payload +
  /// per-packet header overhead), or 0 if it was dropped at send time.
  std::size_t send(ProcessId src, ProcessId dst, Bytes payload);

  /// send() to every attached endpoint except `src`.
  void broadcast(ProcessId src, const Bytes& payload);

  /// Install (or clear, with nullptr) the span tracer tap. Every accepted
  /// packet reports (send time, delivery time, endpoints, size, first
  /// payload byte) — both endpoints of the interval are known at send time,
  /// so the tap is a single call with no matching state.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Install (or clear, with nullptr) the per-packet fault hook. Applies
  /// extra delay *before* the FIFO horizon, so injected delays push the
  /// whole channel back instead of reordering it.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Schedule a raw payload for delivery to `dst` after `delay`, bypassing
  /// the sender-liveness check and the FIFO horizon. This models the stale
  /// straggler the incvector mechanism exists to reject: a packet from a
  /// dead execution arriving out of band after recovery. The destination's
  /// down-check still applies at delivery time.
  void inject(ProcessId src, ProcessId dst, Bytes payload, Duration delay);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::vector<ProcessId> attached() const;

  /// Bytes of framing charged per packet on top of the payload.
  static constexpr std::size_t kHeaderBytes = 32;

 private:
  struct EndpointState {
    Endpoint* endpoint{nullptr};
    bool up{true};
  };

  /// The monotonic delivery horizon of one (src, dst) channel, keyed by the
  /// packed (src << 32 | dst) id. Kept as a flat vector sorted by key: the
  /// channel set is small and stops growing once every pair has spoken, so
  /// the per-packet lookup is a branch-free binary search over contiguous
  /// memory instead of a hash probe.
  struct ChannelHorizon {
    std::uint64_t key;
    Time at;
    std::uint64_t sent;  ///< packets sent on this channel (fault coordinates)
  };

  [[nodiscard]] Duration transit_time(std::size_t bytes);
  /// Channel slot (horizon + send count), inserted (at kTimeZero) on first use.
  [[nodiscard]] ChannelHorizon& channel_for(std::uint64_t key);

  sim::Simulator& sim_;
  NetworkConfig config_;
  metrics::Registry& metrics_;
  Rng rng_;
  std::unordered_map<ProcessId, EndpointState> endpoints_;
  std::vector<ChannelHorizon> channel_horizon_;  // sorted by key
  FaultHook fault_hook_;
  obs::SpanTracer* tracer_{nullptr};
};

}  // namespace rr::net
