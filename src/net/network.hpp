// Simulated message-passing fabric.
//
// Point-to-point, reliable-unless-crashed, FIFO per (src, dst) channel —
// the TCP-over-ATM transport of the paper's testbed. Latency for a packet
// is base + size/bandwidth + jitter, with per-channel monotonic delivery
// enforcement so jitter never reorders a channel.
//
// Crash semantics: a *down* endpoint neither sends nor receives; packets
// already in flight toward a host that goes down are dropped at delivery
// time (the rebooted process must not see pre-crash traffic for free —
// whatever it needs it must recover via the protocol). Packets in flight
// *from* a host that goes down still arrive: the network keeps no
// affiliation between a packet and the fate of its sender, which is exactly
// what creates the stale-message hazard the recovery algorithm's incvector
// mechanism exists to close.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace rr::net {

/// Delivery callback target, implemented by the node runtime.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called in virtual time when a packet arrives. `payload` is owned; an
  /// implementation that fully consumes it should hand the dead buffer back
  /// via BufferPool::global().release() so the send path can reuse it.
  virtual void deliver(ProcessId src, Bytes payload) = 0;
};

struct NetworkConfig {
  /// Fixed one-way propagation + protocol-stack latency per packet.
  Duration base_latency = microseconds(250);
  /// Link bandwidth; 155 Mb/s ATM ≈ 19.4 MB/s.
  double bytes_per_second = 155e6 / 8.0;
  /// Uniform extra delay in [0, jitter_max] (0 disables jitter).
  Duration jitter_max = microseconds(50);
  /// Minimum spacing between consecutive deliveries on one channel.
  Duration fifo_spacing = nanoseconds(1);
};

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config, metrics::Registry& metrics);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the delivery target for `id`. Endpoint must outlive the
  /// network or detach first. Newly attached endpoints start *up*.
  void attach(ProcessId id, Endpoint& endpoint);
  void detach(ProcessId id);

  /// Crash/restart switch. While down, sends from and deliveries to `id`
  /// are dropped.
  void set_up(ProcessId id, bool up);
  [[nodiscard]] bool is_up(ProcessId id) const;

  /// Enqueue a packet. Returns the number of bytes charged (payload +
  /// per-packet header overhead), or 0 if it was dropped at send time.
  std::size_t send(ProcessId src, ProcessId dst, Bytes payload);

  /// send() to every attached endpoint except `src`.
  void broadcast(ProcessId src, const Bytes& payload);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::vector<ProcessId> attached() const;

  /// Bytes of framing charged per packet on top of the payload.
  static constexpr std::size_t kHeaderBytes = 32;

 private:
  struct EndpointState {
    Endpoint* endpoint{nullptr};
    bool up{true};
  };

  /// The monotonic delivery horizon of one (src, dst) channel, keyed by the
  /// packed (src << 32 | dst) id. Kept as a flat vector sorted by key: the
  /// channel set is small and stops growing once every pair has spoken, so
  /// the per-packet lookup is a branch-free binary search over contiguous
  /// memory instead of a hash probe.
  struct ChannelHorizon {
    std::uint64_t key;
    Time at;
  };

  [[nodiscard]] Duration transit_time(std::size_t bytes);
  /// Horizon slot for the channel, inserted (at kTimeZero) on first use.
  [[nodiscard]] Time& horizon_for(std::uint64_t key);

  sim::Simulator& sim_;
  NetworkConfig config_;
  metrics::Registry& metrics_;
  Rng rng_;
  std::unordered_map<ProcessId, EndpointState> endpoints_;
  std::vector<ChannelHorizon> channel_horizon_;  // sorted by key
};

}  // namespace rr::net
