// Simulated message-passing fabric.
//
// Point-to-point, FIFO per (src, dst) channel — the TCP-over-ATM transport
// of the paper's testbed. Latency for a packet is base + size/bandwidth +
// jitter, with per-channel monotonic delivery enforcement so jitter never
// reorders a channel. By default the fabric is reliable-unless-crashed; a
// LinkFaultConfig profile degrades it into a lossy fabric (per-link loss
// probability with deterministic bursts, duplication, bounded reordering
// windows) and set_partitioned() isolates an endpoint bidirectionally —
// the substrate the reliable transport (net/reliable.hpp) exists to tame.
//
// Every probabilistic fault decision is a pure function of (seed, fault
// kind, channel, chan_index) via FNV hashing — no hidden RNG stream — so a
// packet's fate is identical across reruns and across --jobs worker counts
// regardless of event interleaving.
//
// Crash semantics: a *down* endpoint neither sends nor receives; packets
// already in flight toward a host that goes down are dropped at delivery
// time (the rebooted process must not see pre-crash traffic for free —
// whatever it needs it must recover via the protocol). Packets in flight
// *from* a host that goes down still arrive: the network keeps no
// affiliation between a packet and the fate of its sender, which is exactly
// what creates the stale-message hazard the recovery algorithm's incvector
// mechanism exists to close. A *partitioned* endpoint is different: the
// cut is bidirectional and applies both at send and at delivery time (a
// packet in flight when the wall goes up is swallowed too).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace rr::obs {
class CostLedger;
class SpanTracer;
}

namespace rr::net {

/// Delivery callback target, implemented by the node runtime.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called in virtual time when a packet arrives. `payload` is owned; an
  /// implementation that fully consumes it should hand the dead buffer back
  /// via BufferPool::global().release() so the send path can reuse it.
  virtual void deliver(ProcessId src, Bytes payload) = 0;
};

/// Fault-injection verdict for one outgoing packet (see Network::set_fault_hook).
struct FaultDecision {
  bool drop{false};          ///< swallow the packet at send time
  Duration extra_delay{0};   ///< added before the FIFO horizon is applied
};

/// Consulted on every send that passed the liveness checks. `chan_index` is
/// the 0-based count of prior sends on the (src, dst) channel — a stable,
/// deterministic coordinate for schedules ("drop the 4th packet 0→2").
/// The hook must not call Network::send() synchronously (schedule through
/// the simulator instead — e.g. via Network::inject()).
using FaultHook = std::function<FaultDecision(ProcessId src, ProcessId dst,
                                              const Bytes& payload,
                                              std::uint64_t chan_index)>;

/// Link unreliability profile, applied to every non-exempt (src, dst)
/// channel. All draws are deterministic hashes of (seed ^ salt, kind,
/// channel, chan_index); rerunning the same schedule replays the same
/// fates byte-for-byte.
struct LinkFaultConfig {
  /// Per-packet loss probability in [0, 1). 0 disables loss.
  double loss{0.0};
  /// Losses come in runs of this length: a loss draw at index i kills
  /// packets i..i+burst-1 on that channel. The draw probability is scaled
  /// by 1/burst so the long-run loss *rate* stays `loss`. Must be >= 1.
  std::uint32_t loss_burst{1};
  /// Probability that a delivered packet is also duplicated (the copy
  /// arrives out of band shortly after the original). 0 disables.
  double dup{0.0};
  /// When > 0, each packet gets a deterministic extra delay in
  /// [0, reorder_window] that is *not* clamped to the channel horizon —
  /// adjacent packets may swap. The horizon itself stays monotone (it
  /// becomes a high-water mark). 0 keeps strict FIFO.
  Duration reorder_window{0};
  /// Mixed into every draw; lets two runs with the same sim seed explore
  /// different loss universes.
  std::uint64_t salt{0};

  [[nodiscard]] bool any() const noexcept {
    return loss > 0.0 || dup > 0.0 || reorder_window > 0;
  }
};

struct NetworkConfig {
  /// Fixed one-way propagation + protocol-stack latency per packet.
  Duration base_latency = microseconds(250);
  /// Link bandwidth; 155 Mb/s ATM ≈ 19.4 MB/s.
  double bytes_per_second = 155e6 / 8.0;
  /// Uniform extra delay in [0, jitter_max] (0 disables jitter).
  Duration jitter_max = microseconds(50);
  /// Minimum spacing between consecutive deliveries on one channel.
  Duration fifo_spacing = nanoseconds(1);
  /// Link unreliability; default is the paper's perfect fabric.
  LinkFaultConfig faults{};
};

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config, metrics::Registry& metrics);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the delivery target for `id`. Endpoint must outlive the
  /// network or detach first. Newly attached endpoints start *up*.
  void attach(ProcessId id, Endpoint& endpoint);
  void detach(ProcessId id);

  /// Crash/restart switch. While down, sends from and deliveries to `id`
  /// are dropped.
  void set_up(ProcessId id, bool up);
  [[nodiscard]] bool is_up(ProcessId id) const;

  /// Bidirectional partition switch: while isolated, every link touching
  /// `id` is cut — sends from it, sends toward it, and packets already in
  /// flight toward it (checked again at delivery time). Unlike set_up the
  /// endpoint itself stays alive: timers run, state is kept, and on heal
  /// traffic resumes without a restore. Drops count as net.drop.partition.
  void set_partitioned(ProcessId id, bool isolated);
  [[nodiscard]] bool is_partitioned(ProcessId id) const;

  /// Exempt every link touching `id` from the loss/dup/reorder profile
  /// (partitions still cut it). Used for infrastructure endpoints — the
  /// ordinal service is not a lossy radio hop.
  void set_fault_exempt(ProcessId id);

  /// Enqueue a packet. Returns the number of bytes charged (payload +
  /// per-packet header overhead), or 0 if it was dropped at send time.
  std::size_t send(ProcessId src, ProcessId dst, Bytes payload);

  /// send() to every attached endpoint except `src`.
  void broadcast(ProcessId src, const Bytes& payload);

  /// Install (or clear, with nullptr) the span tracer tap. Every accepted
  /// packet reports (send time, delivery time, endpoints, size, first
  /// payload byte) — both endpoints of the interval are known at send time,
  /// so the tap is a single call with no matching state.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Install (or clear, with nullptr) the cost-attribution ledger. Every
  /// accepted packet is classified at the exact site where "net.bytes" is
  /// charged, so the ledger's category totals partition that counter (the
  /// V10 conservation oracle). The reliable transport marks retransmissions
  /// via ledger()->note_retransmit() just before re-sending.
  void set_ledger(obs::CostLedger* ledger) { ledger_ = ledger; }
  [[nodiscard]] obs::CostLedger* ledger() const noexcept { return ledger_; }

  /// Install (or clear, with nullptr) the per-packet fault hook. Applies
  /// extra delay *before* the FIFO horizon, so injected delays push the
  /// whole channel back instead of reordering it.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Schedule a raw payload for delivery to `dst` after `delay`, bypassing
  /// the sender-liveness check and the FIFO horizon. This models the stale
  /// straggler the incvector mechanism exists to reject: a packet from a
  /// dead execution arriving out of band after recovery. The destination's
  /// down-check still applies at delivery time.
  void inject(ProcessId src, ProcessId dst, Bytes payload, Duration delay);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::vector<ProcessId> attached() const;

  /// Bytes of framing charged per packet on top of the payload.
  static constexpr std::size_t kHeaderBytes = 32;

 private:
  struct EndpointState {
    Endpoint* endpoint{nullptr};
    bool up{true};
  };

  /// The monotonic delivery horizon of one (src, dst) channel, keyed by the
  /// packed (src << 32 | dst) id. Kept as a flat vector sorted by key: the
  /// channel set is small and stops growing once every pair has spoken, so
  /// the per-packet lookup is a branch-free binary search over contiguous
  /// memory instead of a hash probe.
  struct ChannelHorizon {
    std::uint64_t key;
    Time at;
    std::uint64_t sent;  ///< packets sent on this channel (fault coordinates)
  };

  [[nodiscard]] Duration transit_time(std::size_t bytes);
  /// Channel slot (horizon + send count), inserted (at kTimeZero) on first use.
  [[nodiscard]] ChannelHorizon& channel_for(std::uint64_t key);

  /// Stateless fault draw: uniform u64, pure in (draw seed, tag, channel
  /// key, chan_index). Independent of call order and of the jitter RNG.
  [[nodiscard]] std::uint64_t fault_draw(std::uint64_t tag, std::uint64_t key,
                                         std::uint64_t index) const;
  /// True iff the loss profile kills packet `index` on channel `key`
  /// (directly or as part of a burst started by an earlier index).
  [[nodiscard]] bool loss_verdict(std::uint64_t key, std::uint64_t index) const;
  /// Both link ends outside the partition set?
  [[nodiscard]] bool link_open(ProcessId src, ProcessId dst) const;
  /// Loss/dup/reorder apply to this link? (Exempt endpoints opt out.)
  [[nodiscard]] bool profile_applies(ProcessId src, ProcessId dst) const;
  /// Schedule one delivery attempt at `at`, re-checking down/partition then.
  void schedule_delivery(Time at, ProcessId src, ProcessId dst, Bytes payload);

  sim::Simulator& sim_;
  NetworkConfig config_;
  metrics::Registry& metrics_;
  Rng rng_;
  std::unordered_map<ProcessId, EndpointState> endpoints_;
  std::vector<ChannelHorizon> channel_horizon_;  // sorted by key
  FaultHook fault_hook_;
  obs::SpanTracer* tracer_{nullptr};
  obs::CostLedger* ledger_{nullptr};
  std::vector<ProcessId> partitioned_;  // sorted; typically 0-2 entries
  std::vector<ProcessId> exempt_;       // sorted; typically just the ord service
  std::uint64_t draw_seed_{0};          // sim seed fork ^ faults.salt
  std::uint32_t loss_start_ppm_{0};     // P(burst starts at index) in ppm
  std::uint32_t dup_ppm_{0};
};

}  // namespace rr::net
