#include "net/reliable.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/ledger.hpp"

namespace rr::net {

namespace {

/// Mark the next packet from `self` as a retransmission for the cost
/// ledger (one-shot; Network::send consumes it on every path).
void hint_retransmit(Network& network, ProcessId self) {
  if (obs::CostLedger* ledger = network.ledger()) ledger->note_retransmit(self.value);
}

}  // namespace

namespace {

/// Lexicographic (epoch, stream) comparison — the channel freshness order.
int cmp_channel(Incarnation e1, std::uint64_t s1, Incarnation e2, std::uint64_t s2) {
  if (e1 != e2) return e1 < e2 ? -1 : 1;
  if (s1 != s2) return s1 < s2 ? -1 : 1;
  return 0;
}

}  // namespace

ReliableTransport::ReliableTransport(sim::Simulator& sim, Network& network,
                                     ProcessId self, TransportConfig config,
                                     metrics::Registry& metrics)
    : sim_(sim),
      network_(network),
      self_(self),
      config_(config),
      metrics_(metrics),
      jitter_rng_(sim.rng().fork("transport").fork(self.value)) {
  RR_CHECK(config_.rto_initial > 0);
  RR_CHECK(config_.rto_max >= config_.rto_initial);
  RR_CHECK(config_.rto_jitter >= 0);
  RR_CHECK(config_.max_retries >= 1);
  RR_CHECK(config_.probe_period > 0);
}

ReliableTransport::~ReliableTransport() { reset(0); }

void ReliableTransport::set_raw_peer(ProcessId peer) {
  const auto it = std::lower_bound(raw_peers_.begin(), raw_peers_.end(), peer);
  if (it == raw_peers_.end() || *it != peer) raw_peers_.insert(it, peer);
}

bool ReliableTransport::is_raw_peer(ProcessId peer) const {
  return std::binary_search(raw_peers_.begin(), raw_peers_.end(), peer);
}

Bytes ReliableTransport::wrap(const SendChannel& ch, std::uint64_t seq,
                              std::span<const std::byte> inner) const {
  BufWriter w(inner.size() + 32);
  w.u8(kDataByte);
  w.u32(epoch_);
  w.varint(ch.stream);
  w.varint(seq);
  w.raw(inner);
  return std::move(w).take();
}

std::size_t ReliableTransport::send_raw(ProcessId dst, Bytes payload) {
  return network_.send(self_, dst, std::move(payload));
}

std::size_t ReliableTransport::send(ProcessId dst, Bytes payload) {
  if (!config_.enabled || is_raw_peer(dst)) {
    return network_.send(self_, dst, std::move(payload));
  }
  auto [it, created] = send_.try_emplace(dst);
  SendChannel& ch = it->second;
  if (created) ch.rto = config_.rto_initial;

  const std::uint64_t seq = ch.next_seq++;
  const std::uint64_t msg = ch.next_msg++;
  Bytes wire = wrap(ch, seq, payload);
  BufferPool::global().release(std::move(payload));
  ch.unacked.push_back({seq, msg, BufferPool::global().copy_of(wire)});
  // While the peer is unreachable only the queue head probes the link:
  // letting a fresh frame race ahead of the queued backlog would both break
  // the bounded-traffic promise and, on a channel the receiver has no state
  // for yet, let its first-contact baseline adopt a mid-queue position —
  // silently "acking" the older queued frames without ever delivering them.
  std::size_t charged = 0;
  if (ch.unreachable) {
    BufferPool::global().release(std::move(wire));
  } else {
    charged = network_.send(self_, dst, std::move(wire));
  }
  if (!ch.timer.valid()) {
    Duration delay = ch.unreachable ? config_.probe_period : ch.rto;
    if (config_.rto_jitter > 0) {
      delay += static_cast<Duration>(
          jitter_rng_.bounded(static_cast<std::uint64_t>(config_.rto_jitter) + 1));
    }
    arm_timer(dst, ch, delay);
  }
  return charged;
}

void ReliableTransport::arm_timer(ProcessId dst, SendChannel& ch, Duration delay) {
  ch.timer = sim_.schedule_after(delay, [this, dst] { on_timeout(dst); });
}

void ReliableTransport::on_timeout(ProcessId dst) {
  const auto it = send_.find(dst);
  if (it == send_.end()) return;
  SendChannel& ch = it->second;
  ch.timer = sim::kNoEvent;
  if (ch.unacked.empty()) return;

  // Retransmit the outstanding window (head only once the peer is declared
  // unreachable — a partition should not be hammered with the full backlog).
  const std::size_t burst = ch.unreachable ? 1 : ch.unacked.size();
  for (std::size_t i = 0; i < burst; ++i) {
    const Unacked& u = ch.unacked[i];
    metrics_.counter("net.retransmit").add();
    metrics_.counter("net.retransmit_bytes").add(u.wire.size() + Network::kHeaderBytes);
    hint_retransmit(network_, self_);
    network_.send(self_, dst, BufferPool::global().copy_of(u.wire));
  }

  if (ch.retries < config_.max_retries) ++ch.retries;
  if (ch.retries >= config_.max_retries && !ch.unreachable) {
    // Bounded-retry escalation: stop treating this as transient, tell the
    // failure detector, fall back to probing. The queue is kept — if the
    // partition heals, the probe's ack revives the full window.
    ch.unreachable = true;
    metrics_.counter("transport.peer_unreachable").add();
    RR_TRACE("transport", "%s declares %s unreachable after %u retries",
             to_string(self_).c_str(), to_string(dst).c_str(), ch.retries);
    if (peer_signal_) peer_signal_(dst, true);
  }

  Duration delay = ch.unreachable ? config_.probe_period
                                  : std::min(ch.rto * 2, config_.rto_max);
  if (!ch.unreachable) ch.rto = delay;
  if (config_.rto_jitter > 0) {
    delay += static_cast<Duration>(
        jitter_rng_.bounded(static_cast<std::uint64_t>(config_.rto_jitter) + 1));
  }
  arm_timer(dst, ch, delay);
}

void ReliableTransport::restart_stream(ProcessId peer, SendChannel& ch) {
  // The receiver restarted: its receive state for our stream is gone, so
  // re-key the sequence space and resend the backlog from seq 1. Frames
  // that were already acked by the dead incarnation are *not* resent — the
  // recovery protocol redelivers what a rolled-back process needs.
  ++ch.stream;
  ch.acked = 0;
  ch.next_seq = 1;
  ch.retries = 0;
  ch.rto = config_.rto_initial;
  metrics_.counter("transport.stream_restarts").add();
  if (ch.unreachable) {
    ch.unreachable = false;
    if (peer_signal_) peer_signal_(peer, false);
  }
  for (Unacked& u : ch.unacked) {
    BufReader r(u.wire);
    (void)r.u8();
    (void)r.u32();
    (void)r.varint();
    (void)r.varint();
    const std::span<const std::byte> inner = r.raw(r.remaining());
    const std::uint64_t seq = ch.next_seq++;
    Bytes rewrapped = wrap(ch, seq, inner);
    BufferPool::global().release(std::move(u.wire));
    u.seq = seq;
    u.wire = std::move(rewrapped);
    metrics_.counter("net.retransmit").add();
    metrics_.counter("net.retransmit_bytes").add(u.wire.size() + Network::kHeaderBytes);
    hint_retransmit(network_, self_);
    network_.send(self_, peer, BufferPool::global().copy_of(u.wire));
  }
  if (ch.timer.valid()) sim_.cancel(ch.timer);
  ch.timer = sim::kNoEvent;
  if (!ch.unacked.empty()) arm_timer(peer, ch, ch.rto);
}

void ReliableTransport::send_ack(ProcessId dst, const RecvChannel& ch) {
  BufWriter w(32);
  w.u8(kAckByte);
  w.u32(ch.epoch);
  w.varint(ch.stream);
  w.varint(ch.delivered);
  // The acker announces its own incarnation: a sender that only ever hears
  // acks from this peer (one-directional channel) still learns its epoch,
  // so a later epoch bump in the peer's data is recognized as a restart.
  w.u32(epoch_);
  metrics_.counter("transport.acks").add();
  network_.send(self_, dst, std::move(w).take());
}

void ReliableTransport::on_ack(ProcessId src, const Bytes& payload) {
  BufReader r(payload);
  (void)r.u8();
  const Incarnation epoch_echo = r.u32();
  const std::uint64_t stream_echo = r.varint();
  const std::uint64_t cum = r.varint();
  const Incarnation acker_epoch = r.u32();
  r.expect_done();

  const auto it = send_.find(src);
  if (it == send_.end()) return;
  SendChannel& ch = it->second;
  ch.peer_epoch = std::max(ch.peer_epoch, acker_epoch);
  if (epoch_echo != epoch_ || stream_echo != ch.stream) return;  // stale ack
  bool progressed = false;
  std::uint64_t acked_msg = 0;
  while (!ch.unacked.empty() && ch.unacked.front().seq <= cum) {
    acked_msg = ch.unacked.front().msg;
    BufferPool::global().release(std::move(ch.unacked.front().wire));
    ch.unacked.pop_front();
    progressed = true;
  }
  ch.acked = std::max(ch.acked, cum);
  if (!progressed) return;
  ch.retries = 0;
  ch.rto = config_.rto_initial;
  if (ch.unreachable) {
    ch.unreachable = false;
    if (peer_signal_) peer_signal_(src, false);
  }
  if (ch.timer.valid()) sim_.cancel(ch.timer);
  ch.timer = sim::kNoEvent;
  if (!ch.unacked.empty()) arm_timer(src, ch, ch.rto);
  // Last: the upcall may re-enter the transport (confirming delivery can
  // trigger new sends), so no channel references are held across it.
  if (ack_signal_) ack_signal_(src, acked_msg);
}

void ReliableTransport::deliver_up(ProcessId src, Bytes payload, std::size_t offset) {
  if (deliver_) deliver_(src, payload, offset);
  BufferPool::global().release(std::move(payload));
}

void ReliableTransport::on_data(ProcessId src, Bytes payload) {
  BufReader r(payload);
  (void)r.u8();
  const Incarnation e = r.u32();
  const std::uint64_t s = r.varint();
  const std::uint64_t q = r.varint();
  const std::size_t offset = payload.size() - r.remaining();

  RecvChannel& ch = recv_[src];
  const int order = cmp_channel(e, s, ch.epoch, ch.stream);
  if (order < 0) {
    // A dead incarnation's (or superseded stream's) traffic.
    metrics_.counter("transport.stale_epoch").add();
    BufferPool::global().release(std::move(payload));
    return;
  }
  if (order > 0) {
    // A restart is an epoch *bump past something we knew*: either past the
    // epoch this receive channel recorded, or past the epoch the peer
    // announced in its acks (covers one-directional channels, where no
    // earlier data frame ever seeded ch.epoch). First contact with a peer
    // whose history we never saw is NOT a restart — restarting there would
    // re-wrap delivered-but-unacked frames into a fresh stream and
    // duplicate them at the application.
    const auto sit = send_.find(src);
    const bool peer_restarted =
        (ch.epoch != 0 && e > ch.epoch) ||
        (sit != send_.end() && sit->second.peer_epoch != 0 && e > sit->second.peer_epoch);
    clear_recv(ch);
    ch.epoch = e;
    ch.stream = s;
    if (sit != send_.end()) sit->second.peer_epoch = std::max(sit->second.peer_epoch, e);
    if (peer_restarted && sit != send_.end()) {
      // Our own outgoing sequence space toward this peer died with its old
      // incarnation — restart it eagerly instead of waiting for timeouts.
      restart_stream(src, sit->second);
    }
  }
  if (!ch.synced) {
    ch.synced = true;
    if (e < epoch_) {
      // First frame of a stream addressed to our *dead* incarnation (its
      // epoch predates ours): the sender is mid-stream and everything
      // before q went to the old us — adopt its position as the baseline;
      // the recovery protocol, not the transport, redelivers what the
      // rollback needs.
      ch.baseline = q - 1;
      ch.delivered = q - 1;
      if (ch.baseline != 0) metrics_.counter("transport.resync").add();
    }
    // Fresh-world traffic (e >= our epoch) must start at seq 1 — a first
    // *arrival* with q > 1 is just the fabric reordering the stream head,
    // so it is stashed below like any other gap, never adopted.
  }

  if (q <= ch.delivered) {
    // Retransmission of something already delivered (or a fabric-level
    // duplicate): suppress, but re-ack — the sender is missing our ack.
    metrics_.counter("net.dup_suppressed").add();
    send_ack(src, ch);
    BufferPool::global().release(std::move(payload));
    return;
  }
  if (q == ch.delivered + 1) {
    ch.delivered = q;
    deliver_up(src, std::move(payload), offset);
    // Drain the stash. Upcalls can re-enter the transport (a delivered
    // control frame may trigger sends or even a reset), so re-find the
    // channel each round instead of trusting the reference.
    for (;;) {
      const auto cit = recv_.find(src);
      if (cit == recv_.end()) return;  // reset mid-drain
      RecvChannel& cur = cit->second;
      if (cur.epoch != e || cur.stream != s) return;
      const auto h = cur.held.begin();
      if (h == cur.held.end() || h->first != cur.delivered + 1) {
        send_ack(src, cur);
        return;
      }
      Bytes held = std::move(h->second);
      cur.held.erase(h);
      cur.delivered += 1;
      std::size_t held_offset;
      {
        BufReader hr(held);
        (void)hr.u8();
        (void)hr.u32();
        (void)hr.varint();
        (void)hr.varint();
        held_offset = held.size() - hr.remaining();
      }
      deliver_up(src, std::move(held), held_offset);
    }
  }
  // Gap: hold for resequencing (bounded; overflow is recovered by the
  // sender's retransmission) and remind the sender where we are.
  if (ch.held.size() < config_.max_held) {
    metrics_.counter("transport.held").add();
    ch.held.emplace(q, std::move(payload));
  } else {
    metrics_.counter("transport.held_overflow").add();
    BufferPool::global().release(std::move(payload));
  }
  send_ack(src, ch);
}

void ReliableTransport::on_wire(ProcessId src, Bytes payload) {
  if (!config_.enabled || payload.empty()) {
    deliver_up(src, std::move(payload), 0);
    return;
  }
  const auto first = static_cast<std::uint8_t>(payload[0]);
  try {
    if (first == kAckByte) {
      on_ack(src, payload);
      BufferPool::global().release(std::move(payload));
      return;
    }
    if (first == kDataByte) {
      on_data(src, std::move(payload));
      return;
    }
  } catch (const SerdeError&) {
    metrics_.counter("transport.malformed").add();
    BufferPool::global().release(std::move(payload));
    return;
  }
  // Raw frame (heartbeat, ordinal-service protocol, pre-transport sender).
  deliver_up(src, std::move(payload), 0);
}

void ReliableTransport::clear_send(SendChannel& ch) {
  if (ch.timer.valid()) sim_.cancel(ch.timer);
  ch.timer = sim::kNoEvent;
  for (Unacked& u : ch.unacked) BufferPool::global().release(std::move(u.wire));
  ch.unacked.clear();
}

void ReliableTransport::clear_recv(RecvChannel& ch) {
  for (auto& [seq, buf] : ch.held) BufferPool::global().release(std::move(buf));
  ch.held.clear();
  ch.delivered = 0;
  ch.baseline = 0;
  ch.synced = false;
}

void ReliableTransport::reset(Incarnation epoch) {
  for (auto& [peer, ch] : send_) clear_send(ch);
  send_.clear();
  for (auto& [peer, ch] : recv_) clear_recv(ch);
  recv_.clear();
  epoch_ = epoch;
}

std::uint64_t ReliableTransport::last_sent_msg(ProcessId dst) const {
  const auto it = send_.find(dst);
  return it == send_.end() ? 0 : it->second.next_msg - 1;
}

ReliableTransport::ChannelAudit ReliableTransport::send_audit(ProcessId dst) const {
  const auto it = send_.find(dst);
  if (it == send_.end()) return {};
  const SendChannel& ch = it->second;
  return {epoch_, ch.stream, ch.acked, ch.unacked.size(), true};
}

ReliableTransport::ChannelAudit ReliableTransport::recv_audit(ProcessId src) const {
  const auto it = recv_.find(src);
  if (it == recv_.end()) return {};
  const RecvChannel& ch = it->second;
  return {ch.epoch, ch.stream, ch.delivered, ch.baseline, true};
}

bool ReliableTransport::unreachable(ProcessId peer) const {
  const auto it = send_.find(peer);
  return it != send_.end() && it->second.unreachable;
}

}  // namespace rr::net
