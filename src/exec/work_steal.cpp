#include "exec/work_steal.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::exec {

unsigned default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

WorkStealingPool::WorkStealingPool(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs), shards_(jobs_) {}

WorkStealingPool::~WorkStealingPool() { join(); }

void WorkStealingPool::run(std::size_t n, Task body) {
  RR_CHECK(threads_.empty());  // one-shot
  body_ = std::move(body);
  // Round-robin seeding: worker w owns indices w, w+J, w+2J, ... so the
  // lowest outstanding index is always near some deque's front and the
  // canonical-order consumer is never starved behind a pile of high indices.
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i % jobs_].queue.push_back(i);
  }
  threads_.reserve(jobs_);
  for (unsigned w = 0; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void WorkStealingPool::cancel() noexcept {
  cancelled_.store(true, std::memory_order_release);
}

void WorkStealingPool::join() {
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool WorkStealingPool::next_index(unsigned self, std::size_t& out) {
  // Own deque, front first: with round-robin seeding each worker walks its
  // indices in increasing order, so the lowest outstanding index — the one
  // the canonical-order consumer is blocked on — is always being worked.
  {
    Shard& mine = shards_[self];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.queue.empty()) {
      out = mine.queue.front();
      mine.queue.pop_front();
      return true;
    }
  }
  // Steal from the back of each victim in turn — the victim's highest,
  // least-urgent indices — starting after self so thieves spread out
  // instead of mobbing shard 0.
  for (unsigned k = 1; k < jobs_; ++k) {
    Shard& victim = shards_[(self + k) % jobs_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      out = victim.queue.back();
      victim.queue.pop_back();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(unsigned self) {
  std::size_t index = 0;
  while (!cancelled_.load(std::memory_order_acquire) && next_index(self, index)) {
    body_(index);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  WorkStealingPool pool(jobs);
  pool.run(n, [&body](std::size_t i) { body(i); });
  pool.join();
}

}  // namespace rr::exec
