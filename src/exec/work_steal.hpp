// Work-stealing execution pool for embarrassingly parallel sweeps.
//
// The deterministic machinery (rrcheck's schedule explorer, the T/F-series
// bench sweeps) is a set of *fully independent* simulation instances: one
// kernel, RNG stream, metrics registry and span arena per run, zero shared
// mutable state on the hot path (BufferPool and the logging clock are
// thread-local — see common/serde.hpp, common/log.cpp). The pool's only job
// is to hand out task indices: per-worker deques are seeded round-robin so
// low indices finish early (the consumer merges results in canonical index
// order), each worker pops from its own deque bottom and steals from the
// top of a victim's when it runs dry. Deques are sharded-mutex rather than
// lock-free: one lock acquisition per multi-millisecond simulation is
// noise, and the simple structure is trivially ASan/TSan-clean.
//
// Determinism contract: the pool never influences *what* a task computes —
// tasks must be pure functions of their index — only *when* it runs.
// Callers that need ordered output (sweep reports, --replay lines) consume
// a result slot per index in canonical order; see check/explorer.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rr::exec {

/// Worker threads to use when the caller does not say: the hardware
/// concurrency, at least 1.
[[nodiscard]] unsigned default_jobs() noexcept;

/// One-shot pool: construct, run(), optionally cancel(), then join().
/// run() returns immediately; the caller thread is free to consume results
/// while workers drain the deques.
class WorkStealingPool {
 public:
  /// body(index) — must be safe to call concurrently for distinct indices.
  using Task = std::function<void(std::size_t index)>;

  explicit WorkStealingPool(unsigned jobs);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Seed indices [0, n) round-robin across the worker deques and start the
  /// workers. May be called once per pool instance.
  void run(std::size_t n, Task body);

  /// Stop dispensing: indices not yet started will never run. In-flight
  /// tasks complete normally (a simulation is never torn down mid-run).
  void cancel() noexcept;

  /// Block until every worker has drained (or been cancelled) and exited.
  /// Idempotent; the destructor calls it.
  void join();

  /// Tasks actually executed (stable only after join()).
  [[nodiscard]] std::size_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<std::size_t> queue;  // owner pops front, thieves pop back
  };

  /// Pop from own shard, else steal; false when all shards are empty.
  bool next_index(unsigned self, std::size_t& out);
  void worker_loop(unsigned self);

  unsigned jobs_;
  Task body_;
  std::vector<Shard> shards_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> executed_{0};
  std::atomic<bool> cancelled_{false};
  bool joined_{false};
};

/// Blocking helper: run body(i) for every i in [0, n) across `jobs`
/// workers (work-stealing), returning once all have completed. With
/// jobs <= 1 runs inline on the caller thread — bit-identical results
/// either way when `body` is a pure function of its index.
void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace rr::exec
