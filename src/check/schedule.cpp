#include "check/schedule.hpp"

#include <charconv>
#include <cstdio>

namespace rr::check {

namespace {

/// Consume an unsigned integer at the front of `s`; false if none there.
bool eat_u64(std::string_view& s, std::uint64_t& out) {
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr == first) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - first));
  return true;
}

/// Consume the literal `tok` at the front of `s`; false if absent.
bool eat(std::string_view& s, std::string_view tok) {
  if (!s.starts_with(tok)) return false;
  s.remove_prefix(tok.size());
  return true;
}

bool eat_pid(std::string_view& s, ProcessId& out) {
  std::uint64_t v = 0;
  if (!eat_u64(s, v) || v > 0xfffffffeULL) return false;
  out = ProcessId{static_cast<std::uint32_t>(v)};
  return true;
}

std::string_view take_until(std::string_view& s, char sep) {
  const auto pos = s.find(sep);
  std::string_view head = s.substr(0, pos);
  s.remove_prefix(pos == std::string_view::npos ? s.size() : pos + 1);
  return head;
}

}  // namespace

std::string to_string(const Injection& inj) {
  char buf[160];
  switch (inj.kind) {
    case Injection::Kind::kCrashAt:
      std::snprintf(buf, sizeof buf, "crash:%u@%lld", inj.victim.value,
                    static_cast<long long>(inj.at));
      break;
    case Injection::Kind::kPhaseCrash: {
      char victim[16];
      if (inj.victim == Injection::kFirer) {
        std::snprintf(victim, sizeof victim, "L");
      } else {
        std::snprintf(victim, sizeof victim, "%u", inj.victim.value);
      }
      if (inj.delay > 0) {
        std::snprintf(buf, sizeof buf, "pcrash:%s@%s#%u+%lld", victim,
                      recovery::to_string(inj.phase), inj.occurrence,
                      static_cast<long long>(inj.delay));
      } else {
        std::snprintf(buf, sizeof buf, "pcrash:%s@%s#%u", victim,
                      recovery::to_string(inj.phase), inj.occurrence);
      }
      break;
    }
    case Injection::Kind::kDrop:
      std::snprintf(buf, sizeof buf, "drop:%u-%u@%llux%u", inj.src.value, inj.dst.value,
                    static_cast<unsigned long long>(inj.index), inj.count);
      break;
    case Injection::Kind::kDelay:
      std::snprintf(buf, sizeof buf, "delay:%u-%u@%llux%u+%lld", inj.src.value,
                    inj.dst.value, static_cast<unsigned long long>(inj.index), inj.count,
                    static_cast<long long>(inj.delay));
      break;
    case Injection::Kind::kStale:
      std::snprintf(buf, sizeof buf, "stale:%u-%u@%llu+%lld", inj.src.value, inj.dst.value,
                    static_cast<unsigned long long>(inj.index),
                    static_cast<long long>(inj.delay));
      break;
    case Injection::Kind::kStall:
      std::snprintf(buf, sizeof buf, "sstall:%u@%llux%u+%lld", inj.victim.value,
                    static_cast<unsigned long long>(inj.index), inj.count,
                    static_cast<long long>(inj.delay));
      break;
    case Injection::Kind::kLoss:
      std::snprintf(buf, sizeof buf, "loss:%u-%u@%llu", inj.src.value, inj.dst.value,
                    static_cast<unsigned long long>(inj.index));
      break;
    case Injection::Kind::kLossBurst:
      std::snprintf(buf, sizeof buf, "lossburst:%u-%u@%llux%u", inj.src.value, inj.dst.value,
                    static_cast<unsigned long long>(inj.index), inj.count);
      break;
    case Injection::Kind::kDup:
      std::snprintf(buf, sizeof buf, "dup:%u-%u@%llux%u", inj.src.value, inj.dst.value,
                    static_cast<unsigned long long>(inj.index), inj.count);
      break;
    case Injection::Kind::kPartition:
      std::snprintf(buf, sizeof buf, "partition:%u@%lld+%lld", inj.victim.value,
                    static_cast<long long>(inj.at), static_cast<long long>(inj.delay));
      break;
    case Injection::Kind::kFlap:
      std::snprintf(buf, sizeof buf, "flap:%u@%lld+%lldx%u", inj.victim.value,
                    static_cast<long long>(inj.at), static_cast<long long>(inj.delay),
                    inj.count);
      break;
    case Injection::Kind::kTreeCrash:
      if (inj.delay > 0) {
        std::snprintf(buf, sizeof buf, "treecrash:%llu@%u+%lld",
                      static_cast<unsigned long long>(inj.index), inj.occurrence,
                      static_cast<long long>(inj.delay));
      } else {
        std::snprintf(buf, sizeof buf, "treecrash:%llu@%u",
                      static_cast<unsigned long long>(inj.index), inj.occurrence);
      }
      break;
  }
  return buf;
}

bool parse_injection(std::string_view s, Injection& out) {
  Injection inj;
  std::uint64_t v = 0;
  if (eat(s, "crash:")) {
    inj.kind = Injection::Kind::kCrashAt;
    if (!eat_pid(s, inj.victim) || !eat(s, "@") || !eat_u64(s, v)) return false;
    inj.at = static_cast<Time>(v);
  } else if (eat(s, "pcrash:")) {
    inj.kind = Injection::Kind::kPhaseCrash;
    if (eat(s, "L")) {
      inj.victim = Injection::kFirer;
    } else if (!eat_pid(s, inj.victim)) {
      return false;
    }
    if (!eat(s, "@")) return false;
    const auto hash = s.find('#');
    if (hash == std::string_view::npos) return false;
    const std::string phase_name(s.substr(0, hash));
    if (!recovery::parse_phase(phase_name.c_str(), inj.phase)) return false;
    s.remove_prefix(hash + 1);
    if (!eat_u64(s, v) || v == 0 || v > 0xffffffffULL) return false;
    inj.occurrence = static_cast<std::uint32_t>(v);
    if (eat(s, "+")) {
      if (!eat_u64(s, v)) return false;
      inj.delay = static_cast<Duration>(v);
    }
  } else if (s.starts_with("drop:") || s.starts_with("delay:")) {
    inj.kind = eat(s, "drop:") ? Injection::Kind::kDrop
                               : (eat(s, "delay:"), Injection::Kind::kDelay);
    if (!eat_pid(s, inj.src) || !eat(s, "-") || !eat_pid(s, inj.dst) || !eat(s, "@") ||
        !eat_u64(s, inj.index) || !eat(s, "x") || !eat_u64(s, v) || v == 0 ||
        v > 0xffffffffULL) {
      return false;
    }
    inj.count = static_cast<std::uint32_t>(v);
    if (inj.kind == Injection::Kind::kDelay) {
      if (!eat(s, "+") || !eat_u64(s, v)) return false;
      inj.delay = static_cast<Duration>(v);
    }
  } else if (eat(s, "stale:")) {
    inj.kind = Injection::Kind::kStale;
    if (!eat_pid(s, inj.src) || !eat(s, "-") || !eat_pid(s, inj.dst) || !eat(s, "@") ||
        !eat_u64(s, inj.index) || !eat(s, "+") || !eat_u64(s, v)) {
      return false;
    }
    inj.delay = static_cast<Duration>(v);
  } else if (eat(s, "sstall:")) {
    inj.kind = Injection::Kind::kStall;
    if (!eat_pid(s, inj.victim) || !eat(s, "@") || !eat_u64(s, inj.index) ||
        !eat(s, "x") || !eat_u64(s, v) || v == 0 || v > 0xffffffffULL) {
      return false;
    }
    inj.count = static_cast<std::uint32_t>(v);
    if (!eat(s, "+") || !eat_u64(s, v) || v == 0) return false;
    inj.delay = static_cast<Duration>(v);
  } else if (eat(s, "lossburst:")) {
    // Checked before "loss:" for clarity; the trailing ':' already keeps the
    // two prefixes from shadowing each other.
    inj.kind = Injection::Kind::kLossBurst;
    if (!eat_pid(s, inj.src) || !eat(s, "-") || !eat_pid(s, inj.dst) || !eat(s, "@") ||
        !eat_u64(s, inj.index) || !eat(s, "x") || !eat_u64(s, v) || v == 0 ||
        v > 0xffffffffULL) {
      return false;
    }
    inj.count = static_cast<std::uint32_t>(v);
  } else if (eat(s, "loss:")) {
    inj.kind = Injection::Kind::kLoss;
    if (!eat_pid(s, inj.src) || !eat(s, "-") || !eat_pid(s, inj.dst) || !eat(s, "@") ||
        !eat_u64(s, inj.index) || inj.index == 0 || inj.index > 1000000) {
      return false;
    }
  } else if (eat(s, "dup:")) {
    inj.kind = Injection::Kind::kDup;
    if (!eat_pid(s, inj.src) || !eat(s, "-") || !eat_pid(s, inj.dst) || !eat(s, "@") ||
        !eat_u64(s, inj.index) || !eat(s, "x") || !eat_u64(s, v) || v == 0 ||
        v > 0xffffffffULL) {
      return false;
    }
    inj.count = static_cast<std::uint32_t>(v);
  } else if (eat(s, "treecrash:")) {
    inj.kind = Injection::Kind::kTreeCrash;
    if (!eat_u64(s, inj.index) || !eat(s, "@") || !eat_u64(s, v) || v == 0 ||
        v > 0xffffffffULL) {
      return false;
    }
    inj.occurrence = static_cast<std::uint32_t>(v);
    if (eat(s, "+")) {
      if (!eat_u64(s, v)) return false;
      inj.delay = static_cast<Duration>(v);
    }
  } else if (s.starts_with("partition:") || s.starts_with("flap:")) {
    inj.kind = eat(s, "partition:") ? Injection::Kind::kPartition
                                    : (eat(s, "flap:"), Injection::Kind::kFlap);
    if (!eat_pid(s, inj.victim) || !eat(s, "@") || !eat_u64(s, v)) return false;
    inj.at = static_cast<Time>(v);
    if (!eat(s, "+") || !eat_u64(s, v) || v == 0) return false;
    inj.delay = static_cast<Duration>(v);
    if (inj.kind == Injection::Kind::kFlap) {
      if (!eat(s, "x") || !eat_u64(s, v) || v == 0 || v > 0xffffffffULL) return false;
      inj.count = static_cast<std::uint32_t>(v);
    }
  } else {
    return false;
  }
  if (!s.empty()) return false;
  out = inj;
  return true;
}

const char* algorithm_token(recovery::Algorithm a) {
  switch (a) {
    case recovery::Algorithm::kNonBlocking: return "nonblocking";
    case recovery::Algorithm::kBlocking: return "blocking";
    case recovery::Algorithm::kDeferUnsafe: return "defer";
  }
  return "?";
}

bool parse_algorithm(std::string_view token, recovery::Algorithm& out) {
  if (token == "nonblocking" || token == "nb") {
    out = recovery::Algorithm::kNonBlocking;
  } else if (token == "blocking") {
    out = recovery::Algorithm::kBlocking;
  } else if (token == "defer") {
    out = recovery::Algorithm::kDeferUnsafe;
  } else {
    return false;
  }
  return true;
}

bool FaultSchedule::needs_reliable() const {
  for (const Injection& inj : injections) {
    switch (inj.kind) {
      case Injection::Kind::kLoss:
      case Injection::Kind::kLossBurst:
      case Injection::Kind::kDup:
      case Injection::Kind::kPartition:
      case Injection::Kind::kFlap:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::string FaultSchedule::format() const {
  std::string out;
  out.reserve(128);
  char buf[128];
  std::snprintf(buf, sizeof buf, "seed=%llu,n=%u,f=%u,alg=%s,horizon=%lld,idle=%lld",
                static_cast<unsigned long long>(seed), n, f, algorithm_token(algorithm),
                static_cast<long long>(horizon), static_cast<long long>(idle_deadline));
  out += buf;
  if (restart != FaultSchedule{}.restart) {
    std::snprintf(buf, sizeof buf, ",restart=%lld", static_cast<long long>(restart));
    out += buf;
  }
  if (arity != 0) {
    std::snprintf(buf, sizeof buf, ",arity=%u", arity);
    out += buf;
  }
  if (tokens != 0) {
    std::snprintf(buf, sizeof buf, ",tokens=%u", tokens);
    out += buf;
  }
  if (seeded_bug) out += ",bug=skip-gather-restart";
  out += ",schedule=";
  for (std::size_t i = 0; i < injections.size(); ++i) {
    if (i > 0) out += ';';
    out += to_string(injections[i]);
  }
  return out;
}

std::string FaultSchedule::replay_line() const { return "--replay " + format(); }

bool FaultSchedule::parse(std::string_view text, FaultSchedule& out) {
  FaultSchedule s;
  s.injections.clear();
  eat(text, "--replay ");
  bool saw_schedule = false;
  while (!text.empty()) {
    const auto eq = text.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = text.substr(0, eq);
    text.remove_prefix(eq + 1);
    if (key == "schedule") {
      // Everything after "schedule=" is the injection list; must be last.
      saw_schedule = true;
      while (!text.empty()) {
        const std::string_view item = take_until(text, ';');
        if (item.empty()) continue;
        Injection inj;
        if (!parse_injection(item, inj)) return false;
        s.injections.push_back(inj);
      }
      break;
    }
    const std::string_view value = take_until(text, ',');
    std::string_view rest = value;
    std::uint64_t v = 0;
    if (key == "seed") {
      if (!eat_u64(rest, v) || !rest.empty()) return false;
      s.seed = v;
    } else if (key == "n") {
      if (!eat_u64(rest, v) || !rest.empty() || v == 0 || v > 1024) return false;
      s.n = static_cast<std::uint32_t>(v);
    } else if (key == "f") {
      if (!eat_u64(rest, v) || !rest.empty() || v == 0 || v > 1024) return false;
      s.f = static_cast<std::uint32_t>(v);
    } else if (key == "alg") {
      if (!parse_algorithm(value, s.algorithm)) return false;
    } else if (key == "horizon") {
      if (!eat_u64(rest, v) || !rest.empty()) return false;
      s.horizon = static_cast<Time>(v);
    } else if (key == "idle") {
      if (!eat_u64(rest, v) || !rest.empty()) return false;
      s.idle_deadline = static_cast<Time>(v);
    } else if (key == "restart") {
      if (!eat_u64(rest, v) || !rest.empty() || v == 0) return false;
      s.restart = static_cast<Duration>(v);
    } else if (key == "arity") {
      if (!eat_u64(rest, v) || !rest.empty() || v == 0 || v > 1024) return false;
      s.arity = static_cast<std::uint32_t>(v);
    } else if (key == "tokens") {
      if (!eat_u64(rest, v) || !rest.empty() || v == 0 || v > 1024) return false;
      s.tokens = static_cast<std::uint32_t>(v);
    } else if (key == "bug") {
      if (value != "skip-gather-restart") return false;
      s.seeded_bug = true;
    } else {
      return false;
    }
  }
  if (!saw_schedule || s.f > s.n) return false;
  out = std::move(s);
  return true;
}

}  // namespace rr::check
