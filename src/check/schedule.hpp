// Fault schedules: the deterministic coordinate system of the explorer.
//
// A FaultSchedule names one complete experiment — cluster shape, seed,
// horizon and a list of injections — such that executing it twice yields
// bit-identical simulations. Injections are addressed by coordinates that
// survive re-execution: absolute virtual time for plain crashes, *protocol
// phase occurrences* for phase crashes (see recovery/phase_hook.hpp), and
// per-channel send indices for packet faults (see net::FaultHook).
//
// The whole schedule round-trips through a single `--replay` line, so a
// failing run shrunk by the explorer can be handed around as one string:
//
//   --replay seed=7,n=4,f=2,alg=nonblocking,
//            schedule=crash:1@2000000000;pcrash:L@gather-started#1
//
// Injection grammar (all times/durations in integer nanoseconds):
//   crash:<pid>@<ns>                  crash <pid> at absolute time <ns>
//   pcrash:<pid|L>@<phase>#<k>[+<d>]  crash <pid> (or L = whichever process
//                                     fired the event) <d> after the k-th
//                                     global occurrence of <phase>
//   drop:<src>-<dst>@<i>x<c>          drop app frames <i>..<i+c-1> on the
//                                     src->dst channel (control frames pass)
//   delay:<src>-<dst>@<i>x<c>+<d>     add <d> to sends <i>..<i+c-1> on the
//                                     channel (applied before the FIFO
//                                     horizon; never reorders)
//   stale:<src>-<dst>@<i>+<d>         re-inject a copy of app frame <i> on
//                                     the channel, delivered <d> after the
//                                     original send (models the stale
//                                     straggler incvectors must reject)
//   sstall:<pid>@<i>x<c>+<d>          stall operations <i>..<i+c-1> of
//                                     <pid>'s stable-storage device by <d>
//                                     each (a retried seek / remapped
//                                     block; queued ops shift behind it)
//   loss:<src>-<dst>@<ppm>            make the src->dst channel lossy: each
//                                     send (any frame kind) dies with
//                                     probability <ppm>/1e6, drawn by a
//                                     stateless hash of the schedule seed
//                                     and the send index
//   lossburst:<src>-<dst>@<i>x<c>     drop sends <i>..<i+c-1> on the channel
//                                     outright — all frame kinds, unlike
//                                     drop: (a dead interval, not app-only)
//   dup:<src>-<dst>@<i>x<c>           re-deliver a copy of sends
//                                     <i>..<i+c-1> shortly after the
//                                     original (receive-side dedup must
//                                     suppress them)
//   partition:<pid>@<t>+<d>           bidirectionally isolate <pid> from
//                                     everyone at absolute time <t>, heal
//                                     at <t>+<d>
//   flap:<pid>@<t>+<d>x<c>            <c> cycles of [isolated <d>, healed
//                                     <d>] starting at <t> (a flapping link)
//   treecrash:<i>@<k>[+<d>]           crash the <i>-th (0-based) gather-tree
//                                     participant <d> after the k-th global
//                                     gather-started firing — addresses tree
//                                     positions (interior nodes, leaves)
//                                     without hardcoding pids; resolved
//                                     against the firing round's live set
//
// The loss/lossburst/dup/partition/flap coordinates degrade the fabric
// below the paper's reliable-FIFO assumption, so running them implies the
// reliable transport (FaultSchedule::needs_reliable(); the explorer enables
// net::TransportConfig automatically).
//
// Optional key=value fields besides the cluster shape: `arity=<k>` sets the
// gather-tree fan-out (0 = flat broadcast+collect); `restart=<ns>` sets
// the supervisor restart delay — stretch it past the failure-detector
// timeout and a crashed leader stays silent long enough to be suspected,
// which is what makes the next-ordinal failover reachable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "recovery/phase_hook.hpp"
#include "recovery/recovery_manager.hpp"

namespace rr::check {

/// One fault, addressable by a coordinate that is stable across re-runs.
struct Injection {
  enum class Kind : std::uint8_t {
    kCrashAt,
    kPhaseCrash,
    kDrop,
    kDelay,
    kStale,
    kStall,
    kLoss,       ///< probabilistic per-send loss on one channel (index = ppm)
    kLossBurst,  ///< deterministic dead interval on one channel (all kinds)
    kDup,        ///< duplicate sends i..i+c-1 on one channel
    kPartition,  ///< bidirectional isolation of victim over [at, at+delay)
    kFlap,       ///< count cycles of [isolated delay][healed delay] from at
    kTreeCrash,  ///< crash the index-th gather-tree participant at the
                 ///< occurrence-th gather-started firing (+delay)
  };

  /// Wildcard victim for kPhaseCrash: crash whichever process fired the
  /// phase event (printed as "L" — in practice the round leader).
  static constexpr ProcessId kFirer{};

  Kind kind{Kind::kCrashAt};

  ProcessId victim{0};    ///< kCrashAt / kPhaseCrash (kFirer = event source) / kStall /
                          ///< kPartition / kFlap
  Time at{0};             ///< kCrashAt / kPartition / kFlap: absolute time
  recovery::PhaseId phase{recovery::PhaseId::kLeaderElected};  ///< kPhaseCrash
  std::uint32_t occurrence{1};  ///< kPhaseCrash: 1-based k-th global firing
  Duration delay{0};      ///< kPhaseCrash/kStale/kDelay/kStall extra duration;
                          ///< kPartition/kFlap: isolation window length

  ProcessId src{0};       ///< kDrop/kDelay/kStale/kLoss/kLossBurst/kDup: channel source
  ProcessId dst{0};       ///< kDrop/kDelay/kStale/kLoss/kLossBurst/kDup: channel destination
  std::uint64_t index{0}; ///< first affected send (channel) or op (storage) index;
                          ///< kLoss: loss probability in parts per million (<= 1000000);
                          ///< kTreeCrash: 0-based participant index in the gather tree
  std::uint32_t count{1}; ///< kDrop/kDelay/kStall/kLossBurst/kDup: consecutive indices;
                          ///< kFlap: number of [down][up] cycles

  friend bool operator==(const Injection&, const Injection&) = default;
};

/// Renders the grammar above; parse_injection() inverts it exactly.
[[nodiscard]] std::string to_string(const Injection& inj);
[[nodiscard]] bool parse_injection(std::string_view text, Injection& out);

/// CLI token for an algorithm ("nonblocking" | "blocking" | "defer").
[[nodiscard]] const char* algorithm_token(recovery::Algorithm a);
[[nodiscard]] bool parse_algorithm(std::string_view token, recovery::Algorithm& out);

/// A complete, self-contained experiment description.
struct FaultSchedule {
  std::uint32_t n{4};
  std::uint32_t f{1};
  recovery::Algorithm algorithm{recovery::Algorithm::kNonBlocking};
  std::uint64_t seed{1};
  /// Minimum virtual time to simulate.
  Time horizon{seconds(6)};
  /// Give up on termination past this point (the run is then a failure).
  Time idle_deadline{seconds(40)};
  /// Supervisor restart delay (`restart=<ns>`, optional). A value above the
  /// failure-detector timeout keeps a crashed process silent long enough to
  /// be *suspected* — the only road to the paper's next-ordinal failover,
  /// since a restarting process re-announces itself immediately.
  Duration restart{milliseconds(600)};
  /// Gather-tree fan-out (`arity=<k>`, optional): RecoveryConfig::
  /// gather_arity. 0 = the flat broadcast+collect the paper describes.
  std::uint32_t arity{0};
  /// Sparse workload (`tokens=<k>`, optional): only the first k processes
  /// seed a gossip token, so large-n schedules keep the application load
  /// fixed instead of O(n). 0 = the historical one-token-per-process
  /// workload — every existing schedule line is unchanged.
  std::uint32_t tokens{0};
  /// Arms RecoveryConfig::bug_skip_gather_restart (the deliberately seeded
  /// protocol bug the explorer exists to catch).
  bool seeded_bug{false};
  std::vector<Injection> injections;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

  /// True when any injection degrades the fabric below reliable FIFO
  /// (loss / lossburst / dup / partition / flap) — such schedules are run
  /// with the reliable transport enabled.
  [[nodiscard]] bool needs_reliable() const;

  /// One-line key=value form; parse() inverts it exactly.
  [[nodiscard]] std::string format() const;
  /// format() prefixed with "--replay " — the shape rrcheck accepts back.
  [[nodiscard]] std::string replay_line() const;
  /// Accepts format() output, with or without a leading "--replay ".
  [[nodiscard]] static bool parse(std::string_view text, FaultSchedule& out);
};

}  // namespace rr::check
