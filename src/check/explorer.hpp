// Deterministic fault-schedule explorer.
//
// ScheduleExplorer::run() executes one FaultSchedule: it builds a
// compressed-timescale cluster (the same constants the test suite uses),
// arms the phase probe and the network fault hook with the schedule's
// injections, drives the simulation to idle (or the deadline), and feeds
// the full structured trace through the history checker — including the
// proof-derived V7 (stale rejection) and V8 (leader-ordinal monotonicity)
// oracles, plus V9 (exactly-once application delivery under
// retransmission) for schedules that degrade the network fabric; those
// auto-enable the reliable transport and additionally audit its channel
// counters after the run. Everything is a pure function of the schedule,
// so any failure is replayable from its one-line form.
//
// explore() enumerates a seeded matrix of schedules (grid × seeds × fault
// variants) and runs each; on the first failure it invokes shrink(), a
// greedy minimiser that drops injections, halves delays and reduces the
// cluster, re-running the candidate after every mutation so the result is
// a *still-failing* minimal repro, printed as a single `--replay` line.
//
// With ExploreOptions::jobs > 1 the matrix is swept by a work-stealing
// pool of fully independent simulation instances (exec::WorkStealingPool;
// one kernel, RNG stream, metrics registry and span arena per worker).
// Every run is a pure function of its schedule, so parallelism changes
// only wall-clock time: outcomes are merged by a single consumer in
// canonical matrix order, making run counts, on_run callbacks, failure
// selection, shrink decisions and `--replay` lines bit-identical to a
// jobs=1 sweep. Shrinking likewise evaluates its fixed-order candidate
// batches as parallel speculative jobs and applies verdicts serially.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "obs/ledger.hpp"
#include "trace/history_checker.hpp"

namespace rr::check {

/// Everything observed from one schedule execution.
struct RunOutcome {
  /// Cluster reached all-idle (every process alive, recovered, unblocked)
  /// before the schedule's idle deadline. A wedged recovery shows up here.
  bool terminated{false};
  /// History-checker verdict over the full structured trace (V1–V9; the
  /// explorer appends transport-audit violations to V9 for lossy runs).
  trace::CheckResult check;
  Time finished_at{0};
  std::uint64_t phase_events{0};
  /// Global occurrence count per PhaseId (index by the enum's value).
  std::array<std::uint32_t, 16> phase_count{};
  std::uint64_t injections_applied{0};
  std::uint64_t recoveries{0};
  std::uint64_t gather_restarts{0};
  std::uint64_t state_hash{0};
  /// Cost-ledger category totals (obs::CostCategory order). Every run
  /// carries the ledger (it arms the V10 conservation oracle inside
  /// check_history), and explore() folds these in canonical matrix order —
  /// the aggregate rrcheck --metrics-out reports is therefore bit-identical
  /// for every --jobs value.
  std::array<std::uint64_t, obs::kCostCategoryCount> ledger_bytes{};
  std::array<std::uint64_t, obs::kCostCategoryCount> ledger_frames{};
  /// Flight-recorder excerpt (last spans per involved node, still-open
  /// spans flagged), captured before the cluster is torn down. A wedged
  /// recovery shows up as spans that never closed.
  std::string flight_dump;

  [[nodiscard]] bool ok() const { return terminated && check.ok; }
  /// "ok", "did not terminate", or the first checker violation.
  [[nodiscard]] std::string brief() const;
};

struct ExploreOptions {
  /// Truncate the matrix to this many runs (0 = the full matrix).
  std::uint64_t max_runs{0};
  /// Seeds per (n, f) grid cell.
  std::uint64_t seeds_per_cell{64};
  /// Arm the seeded skip-gather-restart bug in every generated schedule
  /// (and bias the matrix toward concurrent-failure scenarios that expose
  /// it). The explorer must then find, shrink and report a failure.
  bool seed_bug{false};
  /// Restrict the matrix to unreliable-fabric schedules (loss / lossburst /
  /// dup / partition / flap coordinates) — the stratified CI slice that
  /// exercises the reliable transport and the V9 oracle.
  bool unreliable_only{false};
  /// Restrict the matrix to scale schedules (gather-tree arity set, with
  /// treecrash coordinates) — the slice that exercises k-ary gather
  /// relaying and subtree re-parenting.
  bool scale_only{false};
  bool stop_on_failure{true};
  /// Shrink budget: schedule re-executions the minimiser may spend.
  std::uint32_t shrink_budget{64};
  /// Worker threads for the sweep and speculative shrinking. 1 = serial,
  /// 0 = hardware concurrency. Results are bit-identical for every value;
  /// only wall-clock time changes.
  unsigned jobs{1};
  /// Progress tap, called after every run — always from the calling
  /// thread, in canonical matrix order, whatever `jobs` is.
  std::function<void(const FaultSchedule&, const RunOutcome&)> on_run;
};

struct ExploreResult {
  std::uint64_t runs{0};
  std::uint64_t failures{0};
  std::uint64_t injections_applied{0};
  /// Populated iff failures > 0.
  FaultSchedule first_failure;
  RunOutcome first_outcome;
  FaultSchedule shrunk;
  RunOutcome shrunk_outcome;
  /// Self-contained repro for `shrunk` ("--replay seed=..,schedule=..").
  std::string replay;

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Extra artifacts a caller may request from one run (the backing cluster
/// is destroyed before run() returns, so they must be captured inside).
struct RunCapture {
  /// Fill `trace_json` with the run's spans as Perfetto trace_event JSON.
  bool want_trace_json{false};
  std::string trace_json;
  /// Fill `metrics_json` with the run's counters + ledger breakdown
  /// (obs::export_metrics_json).
  bool want_metrics_json{false};
  std::string metrics_json;
};

class ScheduleExplorer {
 public:
  /// Execute one schedule; deterministic in the schedule alone.
  [[nodiscard]] static RunOutcome run(const FaultSchedule& schedule,
                                      RunCapture* capture = nullptr);

  /// Greedy minimisation of a failing schedule: try removing each
  /// injection, then halving/zeroing delays, then shrinking the cluster,
  /// keeping every mutation that still fails. Returns the smallest
  /// still-failing schedule found within the re-execution budget.
  ///
  /// Candidates are generated in a fixed order; with jobs > 1 each batch
  /// is evaluated as parallel speculative jobs whose verdicts are applied
  /// in that fixed order, with the budget charged only for the prefix a
  /// serial shrink would have consulted — the resulting minimal repro is
  /// therefore identical for every `jobs` value.
  [[nodiscard]] static FaultSchedule shrink(const FaultSchedule& schedule,
                                            std::uint32_t budget = 64,
                                            unsigned jobs = 1);

  /// The deterministic schedule matrix explore() runs.
  [[nodiscard]] static std::vector<FaultSchedule> matrix(const ExploreOptions& options);

  /// Run the matrix; shrink and report the first failure (if any).
  [[nodiscard]] static ExploreResult explore(const ExploreOptions& options);
};

}  // namespace rr::check
