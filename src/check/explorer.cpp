#include "check/explorer.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "app/workloads.hpp"
#include "common/hash.hpp"
#include "common/serde.hpp"
#include "exec/work_steal.hpp"
#include "fbl/frame.hpp"
#include "net/reliable.hpp"
#include "obs/perfetto.hpp"
#include "runtime/cluster.hpp"

namespace rr::check {

namespace {

/// Compressed-timescale cluster for exploration — the same constants the
/// test suite's fast_cluster() uses, so a repro line reproduces identical
/// timing whether replayed here or re-created in a test. Kept independent
/// of tests/ because the explorer is a library, not a test.
runtime::ClusterConfig explorer_cluster(const FaultSchedule& s) {
  runtime::ClusterConfig cfg;
  cfg.num_processes = s.n;
  cfg.f = s.f;
  cfg.algorithm = s.algorithm;
  cfg.seed = s.seed;
  cfg.net.base_latency = microseconds(200);
  cfg.net.jitter_max = microseconds(40);
  cfg.storage.seek_latency = milliseconds(2);
  cfg.storage.bytes_per_second = 8.0 * 1024 * 1024;
  cfg.detector.heartbeat_period = milliseconds(250);
  cfg.detector.timeout = milliseconds(1000);
  cfg.supervisor_restart_delay = s.restart;
  cfg.checkpoint_period = seconds(2);
  cfg.replay_delivery_cost = microseconds(10);
  cfg.recovery.progress_period = milliseconds(200);
  cfg.recovery.phase_timeout = milliseconds(2500);
  cfg.recovery.gather_arity = s.arity;
  cfg.recovery.bug_skip_gather_restart = s.seeded_bug;
  cfg.enable_trace = true;  // the checker needs the full structured history
  cfg.enable_spans = true;  // failure reports carry a flight-recorder dump
  // Every explored schedule arms the V10 cost-conservation oracle. The
  // timeline sampler stays off (sample_every = 0): the byte ledger adds no
  // sim events, so --replay lines recorded before it existed stay valid.
  cfg.enable_ledger = true;
  if (s.needs_reliable()) {
    // Lossy/partitioned schedules run over the reliable transport, retuned
    // to the compressed timescale: escalation to peer-unreachable lands at
    // roughly the failure-detector timeout (~1.1 s of backoff vs 1 s).
    cfg.transport.enabled = true;
    cfg.transport.rto_initial = milliseconds(20);
    cfg.transport.rto_max = milliseconds(500);
    cfg.transport.rto_jitter = milliseconds(2);
    cfg.transport.max_retries = 6;
    cfg.transport.probe_period = milliseconds(200);
  }
  return cfg;
}

app::AppFactory explorer_workload(const FaultSchedule& s) {
  // tokens=0 (every schedule line written before the key existed) keeps the
  // historical one-token-per-process workload bit-for-bit.
  const std::uint32_t seeded = s.tokens;
  return [seeded](ProcessId pid) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = (seeded == 0 || pid.value < seeded) ? 1 : 0;
    cfg.payload_pad = 32;
    cfg.seed = 100 + pid.value;
    return std::make_unique<app::GossipApp>(cfg);
  };
}

/// View of the fbl frame inside a wire payload. With the reliable transport
/// enabled, protocol frames travel behind its data header — injections that
/// target *application* frames must look through it, or their coordinates
/// would silently stop matching on lossy schedules. Empty when the payload
/// is a transport ack or malformed.
std::span<const std::byte> frame_view(const Bytes& payload) {
  if (payload.empty()) return {};
  if (std::to_integer<std::uint8_t>(payload[0]) != net::ReliableTransport::kDataByte) {
    return {payload.data(), payload.size()};
  }
  try {
    BufReader r(payload);
    (void)r.u8();      // data marker
    (void)r.u32();     // epoch
    (void)r.varint();  // stream
    (void)r.varint();  // seq
    return r.raw(r.remaining());
  } catch (const SerdeError&) {
    return {};
  }
}

bool is_app_frame(const Bytes& payload) {
  const auto frame = frame_view(payload);
  return !frame.empty() &&
         std::to_integer<std::uint8_t>(frame[0]) ==
             static_cast<std::uint8_t>(fbl::FrameKind::kApp);
}

/// Stateless loss draw for `loss:` coordinates: a pure function of the
/// schedule seed and the send's channel coordinate, so the verdict is
/// bit-identical across --jobs values and re-runs.
bool loss_draw(std::uint64_t seed, ProcessId src, ProcessId dst, std::uint64_t chan_index,
               std::uint64_t ppm) {
  Hasher h;
  h.mix_u64(0x73636865646c6f73ULL);  // domain tag: "schedlos"
  h.mix_u64(seed);
  h.mix_u64((static_cast<std::uint64_t>(src.value) << 32) | dst.value);
  h.mix_u64(chan_index);
  return h.digest() % 1'000'000 < ppm;
}

/// Injections that name processes outside the cluster are ignored (this is
/// what lets the shrinker reduce n without first rewriting the schedule).
bool in_cluster(const Injection& inj, std::uint32_t n) {
  switch (inj.kind) {
    case Injection::Kind::kCrashAt:
      return inj.victim.value < n;
    case Injection::Kind::kPhaseCrash:
      return inj.victim == Injection::kFirer || inj.victim.value < n;
    case Injection::Kind::kDrop:
    case Injection::Kind::kDelay:
    case Injection::Kind::kStale:
    case Injection::Kind::kLoss:
    case Injection::Kind::kLossBurst:
    case Injection::Kind::kDup:
      return inj.src.value < n && inj.dst.value < n;
    case Injection::Kind::kStall:
    case Injection::Kind::kPartition:
    case Injection::Kind::kFlap:
      return inj.victim.value < n;
    case Injection::Kind::kTreeCrash:
      // Participant index must be resolvable in *some* gather (at most n-1
      // participants); whether the firing round has that many is checked at
      // resolution time.
      return inj.index + 1 < n;
  }
  return false;
}

}  // namespace

std::string RunOutcome::brief() const {
  if (!terminated) return "did not terminate (wedged recovery or livelock)";
  if (!check.ok) return check.violations.empty() ? "checker failed" : check.violations.front();
  return "ok";
}

RunOutcome ScheduleExplorer::run(const FaultSchedule& schedule, RunCapture* capture) {
  runtime::Cluster cluster(explorer_cluster(schedule), explorer_workload(schedule));

  struct HookState {
    const FaultSchedule* schedule;
    runtime::Cluster* cluster;
    std::uint64_t phase_events{0};
    std::uint64_t applied{0};
    /// Global occurrence count per PhaseId (indexable, values 1..9).
    std::array<std::uint32_t, 16> phase_count{};
    std::vector<bool> fired;  // one per injection: phase crash already placed
  };
  HookState st;
  st.schedule = &schedule;
  st.cluster = &cluster;
  st.fired.assign(schedule.injections.size(), false);

  cluster.set_phase_probe([&st](const recovery::PhaseEventInfo& info) {
    ++st.phase_events;
    const auto slot = static_cast<std::size_t>(info.phase);
    if (slot < st.phase_count.size()) ++st.phase_count[slot];
    const std::uint32_t occurrence = st.phase_count[slot];
    const auto& sched = *st.schedule;
    for (std::size_t i = 0; i < sched.injections.size(); ++i) {
      const Injection& inj = sched.injections[i];
      if (st.fired[i] || !in_cluster(inj, sched.n)) continue;
      if (inj.kind == Injection::Kind::kPhaseCrash) {
        if (inj.phase != info.phase || inj.occurrence != occurrence) continue;
        const ProcessId victim = inj.victim == Injection::kFirer ? info.pid : inj.victim;
        if (victim.value >= sched.n) continue;
        st.fired[i] = true;
        ++st.applied;
        // schedule_at(now + delay): never re-enters the protocol state
        // machine synchronously, even with delay == 0.
        st.cluster->crash_at(victim, st.cluster->sim().now() + inj.delay);
      } else if (inj.kind == Injection::Kind::kTreeCrash) {
        if (info.phase != recovery::PhaseId::kGatherStarted) continue;
        if (inj.occurrence != occurrence) continue;
        // Resolve the tree position against this round's participant set:
        // every non-recovering pid in ascending order — the same sorted
        // (all − R) both the leader and the relays compute, so index i
        // here is exactly tree slot i+1 (the leader holds slot 0).
        // Crashed-but-unregistered processes are still participants.
        std::vector<ProcessId> participants;
        for (std::uint32_t p = 0; p < sched.n; ++p) {
          const ProcessId pid{p};
          if (st.cluster->node(pid).recovering()) continue;
          participants.push_back(pid);
        }
        if (inj.index >= participants.size()) continue;  // unresolvable this round
        st.fired[i] = true;
        ++st.applied;
        st.cluster->crash_at(participants[inj.index],
                             st.cluster->sim().now() + inj.delay);
      }
    }
  });

  cluster.network().set_fault_hook(
      [&st](ProcessId src, ProcessId dst, const Bytes& payload,
            std::uint64_t chan_index) -> net::FaultDecision {
        net::FaultDecision decision;
        const auto& sched = *st.schedule;
        for (const Injection& inj : sched.injections) {
          if (!in_cluster(inj, sched.n) || inj.src != src || inj.dst != dst) continue;
          switch (inj.kind) {
            case Injection::Kind::kDrop:
              // Only application frames: heartbeats and recovery control
              // are the protocol's own liveness machinery, and the paper's
              // transport is reliable — drops model lost *payload*.
              if (chan_index >= inj.index && chan_index < inj.index + inj.count &&
                  is_app_frame(payload)) {
                decision.drop = true;
                ++st.applied;
              }
              break;
            case Injection::Kind::kDelay:
              if (chan_index >= inj.index && chan_index < inj.index + inj.count) {
                decision.extra_delay += inj.delay;
                ++st.applied;
              }
              break;
            case Injection::Kind::kStale:
              // Duplicate this app frame out of band: the copy arrives
              // after `delay`, typically after its sender has crashed and
              // recovered — exactly the straggler incvectors must reject.
              // The *inner* frame is injected, stripped of any reliable-
              // transport header: the straggler models a late network
              // duplicate the transport no longer remembers, and must reach
              // the protocol layer rather than die in sequence dedup.
              if (chan_index == inj.index && is_app_frame(payload)) {
                st.cluster->network().inject(
                    src, dst, BufferPool::global().copy_of(frame_view(payload)),
                    inj.delay);
                ++st.applied;
              }
              break;
            case Injection::Kind::kLoss:
              // Probabilistic link loss, every frame kind — the reliable
              // transport (auto-enabled for this schedule) must recover.
              if (loss_draw(sched.seed, src, dst, chan_index, inj.index)) {
                decision.drop = true;
                ++st.applied;
              }
              break;
            case Injection::Kind::kLossBurst:
              // A dead interval: sends i..i+c-1 all die, any frame kind.
              if (chan_index >= inj.index && chan_index < inj.index + inj.count) {
                decision.drop = true;
                ++st.applied;
              }
              break;
            case Injection::Kind::kDup:
              // In-band duplicate: the copy carries the same transport
              // header, so receive-side dedup must suppress it (counted in
              // net.dup_suppressed; V9 fails if it reaches the app twice).
              if (chan_index >= inj.index && chan_index < inj.index + inj.count) {
                st.cluster->network().inject(src, dst,
                                             BufferPool::global().copy_of(payload),
                                             milliseconds(1));
                ++st.applied;
              }
              break;
            default:
              break;
          }
        }
        return decision;
      });

  // Storage-fault coordinates: each victim's stable-storage device gets a
  // hook mapping its device-wide op index onto the schedule's stall
  // windows. The device (and its op counter) survives crashes — storage is
  // stable by definition — so the coordinate is stable across re-runs.
  for (std::uint32_t pid = 0; pid < schedule.n; ++pid) {
    bool stalls_this_pid = false;
    for (const Injection& inj : schedule.injections) {
      if (inj.kind == Injection::Kind::kStall && inj.victim.value == pid) {
        stalls_this_pid = true;
        break;
      }
    }
    if (!stalls_this_pid) continue;
    cluster.node(pid).stable_storage().set_fault_hook(
        [&st, pid](std::uint64_t op_index) -> Duration {
          Duration extra = kDurationZero;
          for (const Injection& inj : st.schedule->injections) {
            if (inj.kind != Injection::Kind::kStall || inj.victim.value != pid) continue;
            if (op_index >= inj.index && op_index < inj.index + inj.count) {
              extra += inj.delay;
              ++st.applied;
            }
          }
          return extra;
        });
  }

  cluster.start();
  for (const Injection& inj : schedule.injections) {
    if (!in_cluster(inj, schedule.n)) continue;
    if (inj.kind == Injection::Kind::kCrashAt) {
      cluster.crash_at(inj.victim, inj.at);
      ++st.applied;
    } else if (inj.kind == Injection::Kind::kPartition ||
               inj.kind == Injection::Kind::kFlap) {
      // Partition windows are virtual-time driven: [at, at+delay) isolated,
      // repeated count times for flaps with a healed window of the same
      // length between cycles. Each toggle counts as one applied injection.
      const std::uint32_t cycles = inj.kind == Injection::Kind::kFlap ? inj.count : 1;
      const ProcessId victim = inj.victim;
      for (std::uint32_t k = 0; k < cycles; ++k) {
        const Time down_at = inj.at + static_cast<Duration>(2 * k) * inj.delay;
        cluster.sim().schedule_at(down_at, [&st, victim] {
          st.cluster->network().set_partitioned(victim, true);
          ++st.applied;
        });
        cluster.sim().schedule_at(down_at + inj.delay, [&st, victim] {
          st.cluster->network().set_partitioned(victim, false);
          ++st.applied;
        });
      }
    }
  }

  cluster.run_until(schedule.horizon);
  while (!cluster.all_idle() && cluster.sim().now() < schedule.idle_deadline) {
    cluster.run_for(milliseconds(250));
  }

  RunOutcome outcome;
  outcome.terminated = cluster.all_idle();
  outcome.check = cluster.check_history();
  if (schedule.needs_reliable() && outcome.terminated) {
    // V9, transport layer: for every channel whose endpoints agree on the
    // (epoch, stream) coordinate and whose receiver accepted the stream
    // from its first frame (baseline 0 — the exactly-once domain), every
    // message the sender saw acked must have been delivered. The history
    // checker's V9 pass covers the no-duplicate half per delivery record.
    for (const ProcessId s : cluster.pids()) {
      for (const ProcessId d : cluster.pids()) {
        if (s == d) continue;
        const auto sa = cluster.node(s).transport().send_audit(d);
        const auto ra = cluster.node(d).transport().recv_audit(s);
        if (!sa.exists || !ra.exists) continue;
        if (sa.epoch != ra.epoch || sa.stream != ra.stream) continue;
        if (ra.baseline_or_outstanding != 0) continue;  // resynced mid-stream
        if (ra.progress < sa.progress) {
          outcome.check.ok = false;
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "V9: transport audit: %u->%u acked %llu but delivered %llu",
                        s.value, d.value, static_cast<unsigned long long>(sa.progress),
                        static_cast<unsigned long long>(ra.progress));
          outcome.check.violations.emplace_back(buf);
        }
      }
    }
  }
  outcome.finished_at = cluster.sim().now();
  outcome.phase_events = st.phase_events;
  outcome.phase_count = st.phase_count;
  outcome.injections_applied = st.applied;
  outcome.recoveries = cluster.all_recoveries().size();
  outcome.gather_restarts = cluster.metrics().counter_value("recovery.gather_restarts");
  outcome.state_hash = cluster.state_hash();
  if (const obs::CostLedger* ledger = cluster.ledger()) {
    for (std::size_t i = 0; i < obs::kCostCategoryCount; ++i) {
      outcome.ledger_bytes[i] = ledger->bytes(static_cast<obs::CostCategory>(i));
      outcome.ledger_frames[i] = ledger->frames(static_cast<obs::CostCategory>(i));
    }
  }
  outcome.flight_dump = cluster.spans()->dump_all_flights();
  if (capture != nullptr && capture->want_trace_json) {
    capture->trace_json = obs::export_trace_event_json(*cluster.spans(), cluster.ledger());
  }
  if (capture != nullptr && capture->want_metrics_json) {
    capture->metrics_json = obs::export_metrics_json(cluster.metrics(), cluster.ledger());
  }
  return outcome;
}

namespace {

constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);

/// Index of the first candidate (in the given fixed order) that still
/// fails, spending the budget exactly as a serial greedy would: one run
/// per candidate consulted, stopping at the first failure. With jobs > 1
/// every candidate the budget could reach is evaluated speculatively in
/// parallel — ScheduleExplorer::run() is a pure function of the schedule,
/// so the verdicts are the same — but the budget is charged only for the
/// serial prefix. The shrink trajectory, including where the budget runs
/// out, is therefore bit-identical for every `jobs` value; speculative
/// runs past the first failure are simply wasted wall-clock the extra
/// cores paid for.
std::size_t first_failing(const std::vector<FaultSchedule>& candidates,
                          std::uint32_t& budget, unsigned jobs) {
  if (candidates.empty() || budget == 0) return kNoCandidate;
  const std::size_t limit = std::min<std::size_t>(candidates.size(), budget);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < limit; ++i) {
      --budget;
      if (!ScheduleExplorer::run(candidates[i]).ok()) return i;
    }
    return kNoCandidate;
  }
  std::vector<char> fails(limit, 0);
  exec::parallel_for(jobs, limit, [&](std::size_t i) {
    fails[i] = ScheduleExplorer::run(candidates[i]).ok() ? 0 : 1;
  });
  for (std::size_t i = 0; i < limit; ++i) {
    --budget;
    if (fails[i] != 0) return i;
  }
  return kNoCandidate;
}

}  // namespace

FaultSchedule ScheduleExplorer::shrink(const FaultSchedule& schedule, std::uint32_t budget,
                                       unsigned jobs) {
  if (jobs == 0) jobs = exec::default_jobs();
  FaultSchedule best = schedule;

  // 1. Drop injections, to a fixpoint: every removal candidate of the
  //    current best forms one speculative batch; the first (lowest-index)
  //    removal that still fails is committed and the batch is rebuilt.
  //    At the fixpoint each surviving injection is individually necessary.
  while (budget > 0 && !best.injections.empty()) {
    std::vector<FaultSchedule> candidates;
    candidates.reserve(best.injections.size());
    for (std::size_t i = 0; i < best.injections.size(); ++i) {
      FaultSchedule candidate = best;
      candidate.injections.erase(candidate.injections.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    const std::size_t hit = first_failing(candidates, budget, jobs);
    if (hit == kNoCandidate) break;
    best = std::move(candidates[hit]);
  }

  // 2. Simplify the survivors: zero (else halve) delays, single-index
  //    fault windows. Each decision is a tiny ordered batch — [zeroed,
  //    halved] — consulted serially, speculated in parallel.
  for (std::size_t i = 0; i < best.injections.size() && budget > 0; ++i) {
    if (best.injections[i].delay > 0) {
      std::vector<FaultSchedule> candidates(2, best);
      candidates[0].injections[i].delay = 0;
      candidates[1].injections[i].delay /= 2;
      const std::size_t hit = first_failing(candidates, budget, jobs);
      if (hit != kNoCandidate) best = std::move(candidates[hit]);
    }
    if (best.injections[i].count > 1 && budget > 0) {
      std::vector<FaultSchedule> candidates(1, best);
      candidates[0].injections[i].count = 1;
      const std::size_t hit = first_failing(candidates, budget, jobs);
      if (hit != kNoCandidate) best = std::move(candidates[hit]);
    }
  }

  // 3. Shrink the cluster. Out-of-cluster injections are ignored by run(),
  //    so the candidate filters them out explicitly to keep the repro tidy.
  while (best.n > best.f + 2 && budget > 0) {
    FaultSchedule candidate = best;
    candidate.n = std::max(best.f + 2, best.n / 2);
    std::erase_if(candidate.injections,
                  [&](const Injection& inj) { return !in_cluster(inj, candidate.n); });
    if (candidate.n == best.n || candidate.injections.empty()) break;
    std::vector<FaultSchedule> candidates{std::move(candidate)};
    const std::size_t hit = first_failing(candidates, budget, jobs);
    if (hit == kNoCandidate) break;
    best = std::move(candidates[hit]);
  }

  return best;
}

std::vector<FaultSchedule> ScheduleExplorer::matrix(const ExploreOptions& options) {
  struct Cell {
    std::uint32_t n, f;
  };
  auto crash = [](std::uint32_t pid, Time at) {
    Injection inj;
    inj.kind = Injection::Kind::kCrashAt;
    inj.victim = ProcessId{pid};
    inj.at = at;
    return inj;
  };
  auto pcrash = [](recovery::PhaseId phase, std::uint32_t k, Duration delay = kDurationZero) {
    Injection inj;
    inj.kind = Injection::Kind::kPhaseCrash;
    inj.victim = Injection::kFirer;
    inj.phase = phase;
    inj.occurrence = k;
    inj.delay = delay;
    return inj;
  };
  auto chan = [](Injection::Kind kind, std::uint32_t src, std::uint32_t dst,
                 std::uint64_t index, std::uint32_t count, Duration delay) {
    Injection inj;
    inj.kind = kind;
    inj.src = ProcessId{src};
    inj.dst = ProcessId{dst};
    inj.index = index;
    inj.count = count;
    inj.delay = delay;
    return inj;
  };
  auto sstall = [](std::uint32_t pid, std::uint64_t index, std::uint32_t count,
                   Duration delay) {
    Injection inj;
    inj.kind = Injection::Kind::kStall;
    inj.victim = ProcessId{pid};
    inj.index = index;
    inj.count = count;
    inj.delay = delay;
    return inj;
  };
  auto loss = [](std::uint32_t src, std::uint32_t dst, std::uint64_t ppm) {
    Injection inj;
    inj.kind = Injection::Kind::kLoss;
    inj.src = ProcessId{src};
    inj.dst = ProcessId{dst};
    inj.index = ppm;
    return inj;
  };
  auto window = [](Injection::Kind kind, std::uint32_t src, std::uint32_t dst,
                   std::uint64_t index, std::uint32_t count) {
    Injection inj;
    inj.kind = kind;  // kLossBurst or kDup
    inj.src = ProcessId{src};
    inj.dst = ProcessId{dst};
    inj.index = index;
    inj.count = count;
    return inj;
  };
  auto partition = [](std::uint32_t pid, Time at, Duration width) {
    Injection inj;
    inj.kind = Injection::Kind::kPartition;
    inj.victim = ProcessId{pid};
    inj.at = at;
    inj.delay = width;
    return inj;
  };
  auto flap = [](std::uint32_t pid, Time at, Duration width, std::uint32_t cycles) {
    Injection inj;
    inj.kind = Injection::Kind::kFlap;
    inj.victim = ProcessId{pid};
    inj.at = at;
    inj.delay = width;
    inj.count = cycles;
    return inj;
  };
  auto treecrash = [](std::uint64_t index, std::uint32_t k, Duration delay = kDurationZero) {
    Injection inj;
    inj.kind = Injection::Kind::kTreeCrash;
    inj.index = index;
    inj.occurrence = k;
    inj.delay = delay;
    return inj;
  };

  std::vector<FaultSchedule> out;
  const std::uint64_t seeds = options.seeds_per_cell == 0 ? 1 : options.seeds_per_cell;

  if (options.seed_bug) {
    // Concentrate on concurrent failures: the seeded bug skips the gather
    // restart, which only matters when a second process fails while a
    // round is in flight.
    const Cell cells[] = {{4, 2}, {8, 2}};
    for (const Cell cell : cells) {
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const std::uint32_t a = static_cast<std::uint32_t>(seed % cell.n);
        const std::uint32_t b = (a + 1) % cell.n;
        for (int variant = 0; variant < 2; ++variant) {
          FaultSchedule s;
          s.n = cell.n;
          s.f = cell.f;
          s.seed = seed;
          s.seeded_bug = true;
          s.injections = {crash(a, seconds(2)), crash(b, milliseconds(2300))};
          if (variant == 1) {
            s.injections.push_back(pcrash(recovery::PhaseId::kGatherStarted, 1));
          }
          out.push_back(std::move(s));
          if (options.max_runs != 0 && out.size() >= options.max_runs) return out;
        }
      }
    }
    return out;
  }

  // The sweep grid. Every variant family below applies to each (cell, seed)
  // coordinate it is legal for (correlated crashes need f >= victims), so
  // the matrix is cells × seeds × applicable variants: 306 variant rows
  // across these six cells at 64 seeds each = 19584 schedules.
  const Cell cells[] = {{4, 1}, {6, 1}, {4, 2}, {6, 2}, {8, 2}, {8, 3}};
  for (const Cell cell : cells) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const std::uint32_t a = static_cast<std::uint32_t>(seed % cell.n);
      const std::uint32_t b = (a + 1) % cell.n;
      const std::uint32_t c = (a + 2) % cell.n;

      std::vector<FaultSchedule> variants;
      // emit(): one variant with the default restart; emit_failover(): the
      // restart delay stretched past the detector timeout, so the crashed
      // process stays silent long enough to be suspected and next-ordinal
      // failover becomes reachable.
      auto emit = [&](std::vector<Injection> injections) {
        FaultSchedule s;
        s.n = cell.n;
        s.f = cell.f;
        s.seed = seed;
        s.injections = std::move(injections);
        variants.push_back(std::move(s));
      };
      auto emit_failover = [&](std::vector<Injection> injections) {
        emit(std::move(injections));
        variants.back().restart = milliseconds(2500);
      };

      // --- the original eleven (one crash, phase re-crashes, packet noise)
      emit({crash(a, seconds(2))});
      emit({crash(a, seconds(2)), pcrash(recovery::PhaseId::kLeaderElected, 1)});
      emit({crash(a, seconds(2)), pcrash(recovery::PhaseId::kGatherStarted, 1)});
      emit({crash(a, seconds(2)), pcrash(recovery::PhaseId::kIncVectorBuilt, 1)});
      emit({crash(a, seconds(2)), pcrash(recovery::PhaseId::kDepinfoCollected, 1)});
      emit({crash(a, seconds(2)), pcrash(recovery::PhaseId::kReplayStarted, 1)});
      if (cell.f >= 2) {  // leader failure during a concurrent round
        emit({crash(a, seconds(2)), crash(b, milliseconds(2300)),
              pcrash(recovery::PhaseId::kGatherStarted, 1)});
      } else {  // sequential re-crash after full recovery
        emit({crash(a, seconds(2)), crash(a, seconds(5))});
      }
      emit({crash(a, seconds(2)), chan(Injection::Kind::kDrop, b, c, 2, 3, 0),
            chan(Injection::Kind::kDrop, c, b, 1, 2, 0)});
      emit({crash(a, seconds(2)),
            chan(Injection::Kind::kDelay, b, c, 1, 3, milliseconds(400))});
      emit({crash(a, seconds(2)), chan(Injection::Kind::kStale, a, b, 1, 1, seconds(3))});
      emit({chan(Injection::Kind::kDrop, b, c, 3, 2, 0),
            chan(Injection::Kind::kDelay, c, a, 2, 2, milliseconds(300)),
            chan(Injection::Kind::kStale, b, c, 0, 1, milliseconds(2500))});

      // --- delayed phase crashes: the victim dies shortly *after* the
      // phase boundary, mid-flight inside the follow-on work.
      for (const recovery::PhaseId phase :
           {recovery::PhaseId::kGatherStarted, recovery::PhaseId::kReplayStarted}) {
        for (const Duration d : {milliseconds(10), milliseconds(100)}) {
          emit({crash(a, seconds(2)), pcrash(phase, 1, d)});
        }
      }

      // --- cascading leader failovers: kill the leader at each successive
      // occurrence of the phase, so leadership hops ordinals repeatedly.
      for (const recovery::PhaseId phase :
           {recovery::PhaseId::kLeaderElected, recovery::PhaseId::kGatherStarted}) {
        for (const std::uint32_t depth : {2u, 3u}) {
          std::vector<Injection> cascade{crash(a, seconds(2))};
          for (std::uint32_t k = 1; k <= depth; ++k) cascade.push_back(pcrash(phase, k));
          emit_failover(std::move(cascade));
        }
      }

      // --- storage faults: mechanical stalls on the stable-storage device
      // (retried seeks / remapped blocks), addressed by device op index.
      emit({crash(a, seconds(2)), sstall(a, 0, 4, milliseconds(200))});
      emit({sstall(b, 2, 4, milliseconds(100))});
      emit({crash(a, seconds(2)), sstall(a, 1, 1, milliseconds(1500))});
      emit({sstall(a, 0, 8, milliseconds(50)), sstall(b, 0, 8, milliseconds(50))});

      // --- crash + noise combos
      emit({crash(a, seconds(2)), chan(Injection::Kind::kDrop, b, c, 2, 3, 0),
            chan(Injection::Kind::kStale, a, b, 1, 1, seconds(3))});
      emit({crash(a, seconds(2)),
            chan(Injection::Kind::kDelay, b, c, 1, 2, milliseconds(300)),
            sstall(a, 1, 2, milliseconds(150))});

      if (cell.f >= 2) {
        // --- correlated multi-node crashes: a rack/power-domain failure
        // takes two processes down together (or nearly so).
        for (const Duration gap : {kDurationZero, milliseconds(20), milliseconds(150)}) {
          emit({crash(a, seconds(2)), crash(b, seconds(2) + gap)});
        }
        // --- correlated crash meeting a stalled disk: the recovering pair
        // contends for a degraded device.
        emit({crash(a, seconds(2)), crash(b, milliseconds(2300)),
              sstall(a, 0, 4, milliseconds(200))});
        emit({crash(a, seconds(2)), crash(b, seconds(2)),
              sstall(b, 0, 3, milliseconds(300))});
        // --- correlated crash under packet noise
        emit({crash(a, seconds(2)), crash(b, milliseconds(2020)),
              chan(Injection::Kind::kDrop, c, a, 1, 2, 0)});
        emit({crash(a, seconds(2)), crash(b, milliseconds(2020)),
              chan(Injection::Kind::kStale, b, c, 1, 1, seconds(3))});
      }
      if (cell.f >= 3) {
        // --- triple correlated crash (needs f >= 3 concurrent tolerance)
        emit({crash(a, seconds(2)), crash(b, seconds(2)), crash(c, seconds(2))});
        emit({crash(a, seconds(2)), crash(b, milliseconds(2050)),
              crash(c, milliseconds(2100))});
      }

      // --- unreliable fabric (appended after the perfect-fabric families
      // so the canonical matrix prefix — and every repro line derived from
      // it — survives the growth). All of these auto-enable the reliable
      // transport; V1–V8 must still hold, and V9 checks exactly-once
      // delivery under retransmission. Partition windows are sized to heal
      // well inside the idle deadline — recovery stalls, then completes.
      emit({crash(a, seconds(2)), loss(b, c, 100000)});  // 10% bystander loss
      emit({crash(a, seconds(2)), loss(b, a, 200000)});  // lossy road to the victim
      emit({loss(a, b, 100000), loss(b, a, 100000)});    // symmetric loss, no crash
      emit({crash(a, seconds(2)), window(Injection::Kind::kLossBurst, b, c, 2, 5)});
      emit({window(Injection::Kind::kLossBurst, b, c, 1, 8)});
      emit({crash(a, seconds(2)), window(Injection::Kind::kDup, b, c, 1, 6)});
      emit({window(Injection::Kind::kDup, b, c, 0, 10),
            window(Injection::Kind::kDup, c, b, 2, 4)});
      emit({partition(b, seconds(1), milliseconds(1500))});  // clean partition + heal
      emit({crash(a, seconds(2)), partition(b, milliseconds(2200), milliseconds(1500))});
      emit({crash(a, seconds(2)), flap(b, milliseconds(1500), milliseconds(400), 3)});
      emit({crash(a, seconds(2)), loss(b, c, 100000),
            partition(c, milliseconds(2500), seconds(1))});
      if (cell.f >= 2) {
        // --- correlated crash while a third link is lossy
        emit({crash(a, seconds(2)), crash(b, milliseconds(2020)), loss(c, a, 100000)});
      }

      // --- gather-tree (scale) family, appended after the unreliable
      // fabric so the canonical matrix prefix survives the growth. The
      // same recoveries routed through a k-ary gather tree instead of the
      // flat broadcast+collect: interior relays must aggregate, and a
      // relay crash mid-gather must re-parent its subtree (or force a
      // round restart) without breaking V1–V8.
      for (const std::uint32_t arity : {2u, 3u}) {
        auto emit_tree = [&](std::vector<Injection> injections) {
          emit(std::move(injections));
          variants.back().arity = arity;
        };
        // Plain recovery through the tree (relay aggregation only).
        emit_tree({crash(a, seconds(2))});
        // The leader itself dies with the tree armed: failover must
        // rebuild the tree from the new leader.
        emit_tree({crash(a, seconds(2)), pcrash(recovery::PhaseId::kGatherStarted, 1)});
        if (cell.f >= 2) {
          // A relay crash is a second overlapping failure: the victim is
          // still recovering when the relay dies, and with pruning a
          // determinant stops circulating at exactly f+1 holders — so at
          // f = 1 this pair may legitimately lose determinants (same
          // budget rule as the correlated-crash family above).
          // First tree slot — an interior relay wherever n allows one —
          // dies mid-gather: subtree re-parent or restart.
          emit_tree({crash(a, seconds(2)), treecrash(0, 1)});
          // A deeper slot (a leaf at these n), shortly after the gather
          // starts, so the reply may already be in flight.
          emit_tree({crash(a, seconds(2)), treecrash(2, 1, milliseconds(10))});
        }
        if (cell.f >= 3) {
          // Concurrent recovery plus a relay crash in the same round:
          // three overlapping failures.
          emit_tree({crash(a, seconds(2)), crash(b, milliseconds(2300)), treecrash(0, 1)});
        }
      }

      for (FaultSchedule& s : variants) {
        if (options.unreliable_only && !s.needs_reliable()) continue;
        if (options.scale_only && s.arity == 0) continue;
        out.push_back(std::move(s));
        if (options.max_runs != 0 && out.size() >= options.max_runs) return out;
      }
    }
  }
  return out;
}

ExploreResult ScheduleExplorer::explore(const ExploreOptions& options) {
  const std::vector<FaultSchedule> schedules = matrix(options);
  const unsigned jobs = options.jobs == 0 ? exec::default_jobs() : options.jobs;

  ExploreResult result;
  // Single consumer: whatever thread a run executed on, its outcome is
  // accounted here in canonical matrix order, so run counts, injection
  // totals, on_run callbacks and first-failure selection are bit-identical
  // to a serial sweep. Returns false once the sweep should stop.
  auto consume = [&](const FaultSchedule& schedule, const RunOutcome& outcome) {
    ++result.runs;
    result.injections_applied += outcome.injections_applied;
    if (options.on_run) options.on_run(schedule, outcome);
    if (!outcome.ok()) {
      ++result.failures;
      if (result.failures == 1) {
        result.first_failure = schedule;
        result.first_outcome = outcome;
      }
      if (options.stop_on_failure) return false;
    }
    return true;
  };

  if (jobs <= 1 || schedules.size() <= 1) {
    for (const FaultSchedule& schedule : schedules) {
      if (!consume(schedule, run(schedule))) break;
    }
  } else {
    // Work-stealing sweep: one slot per schedule index, filled by whichever
    // worker drew the index; this thread drains slots in canonical order.
    // On early stop the pool is cancelled — results already computed past
    // the stop point are simply discarded (each run is pure, so discarding
    // cannot change any consumed outcome).
    struct Slot {
      RunOutcome outcome;
      bool ready{false};
    };
    std::vector<Slot> slots(schedules.size());
    std::mutex mu;
    std::condition_variable cv;
    exec::WorkStealingPool pool(jobs);
    pool.run(schedules.size(), [&](std::size_t i) {
      RunOutcome outcome = run(schedules[i]);
      {
        std::lock_guard<std::mutex> lock(mu);
        slots[i].outcome = std::move(outcome);
        slots[i].ready = true;
      }
      cv.notify_all();
    });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      RunOutcome outcome;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return slots[i].ready; });
        outcome = std::move(slots[i].outcome);
      }
      if (!consume(schedules[i], outcome)) {
        pool.cancel();
        break;
      }
    }
    pool.join();
  }

  if (result.failures > 0) {
    result.shrunk = shrink(result.first_failure, options.shrink_budget, jobs);
    result.shrunk_outcome = run(result.shrunk);
    result.replay = result.shrunk.replay_line();
  }
  return result;
}

}  // namespace rr::check
