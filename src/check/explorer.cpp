#include "check/explorer.hpp"

#include <array>
#include <memory>
#include <utility>

#include "app/workloads.hpp"
#include "fbl/frame.hpp"
#include "obs/perfetto.hpp"
#include "runtime/cluster.hpp"

namespace rr::check {

namespace {

/// Compressed-timescale cluster for exploration — the same constants the
/// test suite's fast_cluster() uses, so a repro line reproduces identical
/// timing whether replayed here or re-created in a test. Kept independent
/// of tests/ because the explorer is a library, not a test.
runtime::ClusterConfig explorer_cluster(const FaultSchedule& s) {
  runtime::ClusterConfig cfg;
  cfg.num_processes = s.n;
  cfg.f = s.f;
  cfg.algorithm = s.algorithm;
  cfg.seed = s.seed;
  cfg.net.base_latency = microseconds(200);
  cfg.net.jitter_max = microseconds(40);
  cfg.storage.seek_latency = milliseconds(2);
  cfg.storage.bytes_per_second = 8.0 * 1024 * 1024;
  cfg.detector.heartbeat_period = milliseconds(250);
  cfg.detector.timeout = milliseconds(1000);
  cfg.supervisor_restart_delay = s.restart;
  cfg.checkpoint_period = seconds(2);
  cfg.replay_delivery_cost = microseconds(10);
  cfg.recovery.progress_period = milliseconds(200);
  cfg.recovery.phase_timeout = milliseconds(2500);
  cfg.recovery.bug_skip_gather_restart = s.seeded_bug;
  cfg.enable_trace = true;  // the checker needs the full structured history
  cfg.enable_spans = true;  // failure reports carry a flight-recorder dump
  return cfg;
}

app::AppFactory explorer_workload() {
  return [](ProcessId pid) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = 1;
    cfg.payload_pad = 32;
    cfg.seed = 100 + pid.value;
    return std::make_unique<app::GossipApp>(cfg);
  };
}

bool is_app_frame(const Bytes& payload) {
  return !payload.empty() &&
         std::to_integer<std::uint8_t>(payload[0]) ==
             static_cast<std::uint8_t>(fbl::FrameKind::kApp);
}

/// Injections that name processes outside the cluster are ignored (this is
/// what lets the shrinker reduce n without first rewriting the schedule).
bool in_cluster(const Injection& inj, std::uint32_t n) {
  switch (inj.kind) {
    case Injection::Kind::kCrashAt:
      return inj.victim.value < n;
    case Injection::Kind::kPhaseCrash:
      return inj.victim == Injection::kFirer || inj.victim.value < n;
    case Injection::Kind::kDrop:
    case Injection::Kind::kDelay:
    case Injection::Kind::kStale:
      return inj.src.value < n && inj.dst.value < n;
  }
  return false;
}

}  // namespace

std::string RunOutcome::brief() const {
  if (!terminated) return "did not terminate (wedged recovery or livelock)";
  if (!check.ok) return check.violations.empty() ? "checker failed" : check.violations.front();
  return "ok";
}

RunOutcome ScheduleExplorer::run(const FaultSchedule& schedule, RunCapture* capture) {
  runtime::Cluster cluster(explorer_cluster(schedule), explorer_workload());

  struct HookState {
    const FaultSchedule* schedule;
    runtime::Cluster* cluster;
    std::uint64_t phase_events{0};
    std::uint64_t applied{0};
    /// Global occurrence count per PhaseId (indexable, values 1..9).
    std::array<std::uint32_t, 16> phase_count{};
    std::vector<bool> fired;  // one per injection: phase crash already placed
  };
  HookState st;
  st.schedule = &schedule;
  st.cluster = &cluster;
  st.fired.assign(schedule.injections.size(), false);

  cluster.set_phase_probe([&st](const recovery::PhaseEventInfo& info) {
    ++st.phase_events;
    const auto slot = static_cast<std::size_t>(info.phase);
    if (slot < st.phase_count.size()) ++st.phase_count[slot];
    const std::uint32_t occurrence = st.phase_count[slot];
    const auto& sched = *st.schedule;
    for (std::size_t i = 0; i < sched.injections.size(); ++i) {
      const Injection& inj = sched.injections[i];
      if (inj.kind != Injection::Kind::kPhaseCrash || st.fired[i]) continue;
      if (inj.phase != info.phase || inj.occurrence != occurrence) continue;
      if (!in_cluster(inj, sched.n)) continue;
      const ProcessId victim = inj.victim == Injection::kFirer ? info.pid : inj.victim;
      if (victim.value >= sched.n) continue;
      st.fired[i] = true;
      ++st.applied;
      // schedule_at(now + delay): never re-enters the protocol state
      // machine synchronously, even with delay == 0.
      st.cluster->crash_at(victim, st.cluster->sim().now() + inj.delay);
    }
  });

  cluster.network().set_fault_hook(
      [&st](ProcessId src, ProcessId dst, const Bytes& payload,
            std::uint64_t chan_index) -> net::FaultDecision {
        net::FaultDecision decision;
        const auto& sched = *st.schedule;
        for (const Injection& inj : sched.injections) {
          if (!in_cluster(inj, sched.n) || inj.src != src || inj.dst != dst) continue;
          switch (inj.kind) {
            case Injection::Kind::kDrop:
              // Only application frames: heartbeats and recovery control
              // are the protocol's own liveness machinery, and the paper's
              // transport is reliable — drops model lost *payload*.
              if (chan_index >= inj.index && chan_index < inj.index + inj.count &&
                  is_app_frame(payload)) {
                decision.drop = true;
                ++st.applied;
              }
              break;
            case Injection::Kind::kDelay:
              if (chan_index >= inj.index && chan_index < inj.index + inj.count) {
                decision.extra_delay += inj.delay;
                ++st.applied;
              }
              break;
            case Injection::Kind::kStale:
              // Duplicate this app frame out of band: the copy arrives
              // after `delay`, typically after its sender has crashed and
              // recovered — exactly the straggler incvectors must reject.
              if (chan_index == inj.index && is_app_frame(payload)) {
                st.cluster->network().inject(src, dst,
                                             BufferPool::global().copy_of(payload),
                                             inj.delay);
                ++st.applied;
              }
              break;
            default:
              break;
          }
        }
        return decision;
      });

  cluster.start();
  for (const Injection& inj : schedule.injections) {
    if (inj.kind == Injection::Kind::kCrashAt && in_cluster(inj, schedule.n)) {
      cluster.crash_at(inj.victim, inj.at);
      ++st.applied;
    }
  }

  cluster.run_until(schedule.horizon);
  while (!cluster.all_idle() && cluster.sim().now() < schedule.idle_deadline) {
    cluster.run_for(milliseconds(250));
  }

  RunOutcome outcome;
  outcome.terminated = cluster.all_idle();
  outcome.check = cluster.check_history();
  outcome.finished_at = cluster.sim().now();
  outcome.phase_events = st.phase_events;
  outcome.phase_count = st.phase_count;
  outcome.injections_applied = st.applied;
  outcome.recoveries = cluster.all_recoveries().size();
  outcome.gather_restarts = cluster.metrics().counter_value("recovery.gather_restarts");
  outcome.state_hash = cluster.state_hash();
  outcome.flight_dump = cluster.spans()->dump_all_flights();
  if (capture != nullptr && capture->want_trace_json) {
    capture->trace_json = obs::export_trace_event_json(*cluster.spans());
  }
  return outcome;
}

FaultSchedule ScheduleExplorer::shrink(const FaultSchedule& schedule, std::uint32_t budget) {
  FaultSchedule best = schedule;
  auto still_fails = [&budget](const FaultSchedule& candidate) {
    if (budget == 0) return false;
    --budget;
    return !run(candidate).ok();
  };

  // 1. Drop injections one at a time, to a fixpoint: each surviving
  //    injection is then individually necessary.
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (std::size_t i = 0; i < best.injections.size() && budget > 0;) {
      FaultSchedule candidate = best;
      candidate.injections.erase(candidate.injections.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
  }

  // 2. Simplify the survivors: zero (then halve) delays, single-packet
  //    fault windows.
  for (std::size_t i = 0; i < best.injections.size() && budget > 0; ++i) {
    if (best.injections[i].delay > 0) {
      FaultSchedule candidate = best;
      candidate.injections[i].delay = 0;
      if (still_fails(candidate)) {
        best = std::move(candidate);
      } else {
        candidate = best;
        candidate.injections[i].delay /= 2;
        if (budget > 0 && still_fails(candidate)) best = std::move(candidate);
      }
    }
    if (best.injections[i].count > 1 && budget > 0) {
      FaultSchedule candidate = best;
      candidate.injections[i].count = 1;
      if (still_fails(candidate)) best = std::move(candidate);
    }
  }

  // 3. Shrink the cluster. Out-of-cluster injections are ignored by run(),
  //    so the candidate filters them out explicitly to keep the repro tidy.
  while (best.n > best.f + 2 && budget > 0) {
    FaultSchedule candidate = best;
    candidate.n = std::max(best.f + 2, best.n / 2);
    std::erase_if(candidate.injections,
                  [&](const Injection& inj) { return !in_cluster(inj, candidate.n); });
    if (candidate.n == best.n || candidate.injections.empty() || !still_fails(candidate)) {
      break;
    }
    best = std::move(candidate);
  }

  return best;
}

std::vector<FaultSchedule> ScheduleExplorer::matrix(const ExploreOptions& options) {
  struct Cell {
    std::uint32_t n, f;
  };
  auto crash = [](std::uint32_t pid, Time at) {
    Injection inj;
    inj.kind = Injection::Kind::kCrashAt;
    inj.victim = ProcessId{pid};
    inj.at = at;
    return inj;
  };
  auto pcrash = [](recovery::PhaseId phase, std::uint32_t k) {
    Injection inj;
    inj.kind = Injection::Kind::kPhaseCrash;
    inj.victim = Injection::kFirer;
    inj.phase = phase;
    inj.occurrence = k;
    return inj;
  };
  auto chan = [](Injection::Kind kind, std::uint32_t src, std::uint32_t dst,
                 std::uint64_t index, std::uint32_t count, Duration delay) {
    Injection inj;
    inj.kind = kind;
    inj.src = ProcessId{src};
    inj.dst = ProcessId{dst};
    inj.index = index;
    inj.count = count;
    inj.delay = delay;
    return inj;
  };

  std::vector<FaultSchedule> out;
  const std::uint64_t seeds = options.seeds_per_cell == 0 ? 1 : options.seeds_per_cell;

  if (options.seed_bug) {
    // Concentrate on concurrent failures: the seeded bug skips the gather
    // restart, which only matters when a second process fails while a
    // round is in flight.
    const Cell cells[] = {{4, 2}, {8, 2}};
    for (const Cell cell : cells) {
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const std::uint32_t a = static_cast<std::uint32_t>(seed % cell.n);
        const std::uint32_t b = (a + 1) % cell.n;
        for (int variant = 0; variant < 2; ++variant) {
          FaultSchedule s;
          s.n = cell.n;
          s.f = cell.f;
          s.seed = seed;
          s.seeded_bug = true;
          s.injections = {crash(a, seconds(2)), crash(b, milliseconds(2300))};
          if (variant == 1) {
            s.injections.push_back(pcrash(recovery::PhaseId::kGatherStarted, 1));
          }
          out.push_back(std::move(s));
          if (options.max_runs != 0 && out.size() >= options.max_runs) return out;
        }
      }
    }
    return out;
  }

  const Cell cells[] = {{4, 1}, {4, 2}, {8, 2}};
  for (const Cell cell : cells) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const std::uint32_t a = static_cast<std::uint32_t>(seed % cell.n);
      const std::uint32_t b = (a + 1) % cell.n;
      const std::uint32_t c = (a + 2) % cell.n;
      for (int variant = 0; variant < 11; ++variant) {
        FaultSchedule s;
        s.n = cell.n;
        s.f = cell.f;
        s.seed = seed;
        switch (variant) {
          case 0:  // plain crash + recovery
            s.injections = {crash(a, seconds(2))};
            break;
          case 1:  // re-crash at each protocol phase boundary
            s.injections = {crash(a, seconds(2)),
                            pcrash(recovery::PhaseId::kLeaderElected, 1)};
            break;
          case 2:
            s.injections = {crash(a, seconds(2)),
                            pcrash(recovery::PhaseId::kGatherStarted, 1)};
            break;
          case 3:
            s.injections = {crash(a, seconds(2)),
                            pcrash(recovery::PhaseId::kIncVectorBuilt, 1)};
            break;
          case 4:
            s.injections = {crash(a, seconds(2)),
                            pcrash(recovery::PhaseId::kDepinfoCollected, 1)};
            break;
          case 5:
            s.injections = {crash(a, seconds(2)),
                            pcrash(recovery::PhaseId::kReplayStarted, 1)};
            break;
          case 6:  // leader failure during a concurrent round (f >= 2), or
                   // a sequential re-crash after full recovery (f == 1)
            if (cell.f >= 2) {
              s.injections = {crash(a, seconds(2)), crash(b, milliseconds(2300)),
                              pcrash(recovery::PhaseId::kGatherStarted, 1)};
            } else {
              s.injections = {crash(a, seconds(2)), crash(a, seconds(5))};
            }
            break;
          case 7:  // payload loss around a crash
            s.injections = {crash(a, seconds(2)),
                            chan(Injection::Kind::kDrop, b, c, 2, 3, 0),
                            chan(Injection::Kind::kDrop, c, b, 1, 2, 0)};
            break;
          case 8:  // delay below the detector timeout: no false suspicion
            s.injections = {crash(a, seconds(2)),
                            chan(Injection::Kind::kDelay, b, c, 1, 3, milliseconds(400))};
            break;
          case 9:  // stale straggler from the crashed incarnation
            s.injections = {crash(a, seconds(2)),
                            chan(Injection::Kind::kStale, a, b, 1, 1, seconds(3))};
            break;
          case 10:  // fault-free protocol under network noise
            s.injections = {chan(Injection::Kind::kDrop, b, c, 3, 2, 0),
                            chan(Injection::Kind::kDelay, c, a, 2, 2, milliseconds(300)),
                            chan(Injection::Kind::kStale, b, c, 0, 1, milliseconds(2500))};
            break;
        }
        out.push_back(std::move(s));
        if (options.max_runs != 0 && out.size() >= options.max_runs) return out;
      }
    }
  }
  return out;
}

ExploreResult ScheduleExplorer::explore(const ExploreOptions& options) {
  ExploreResult result;
  for (const FaultSchedule& schedule : matrix(options)) {
    const RunOutcome outcome = run(schedule);
    ++result.runs;
    result.injections_applied += outcome.injections_applied;
    if (options.on_run) options.on_run(schedule, outcome);
    if (!outcome.ok()) {
      ++result.failures;
      if (result.failures == 1) {
        result.first_failure = schedule;
        result.first_outcome = outcome;
        result.shrunk = shrink(schedule, options.shrink_budget);
        result.shrunk_outcome = run(result.shrunk);
        result.replay = result.shrunk.replay_line();
      }
      if (options.stop_on_failure) break;
    }
  }
  return result;
}

}  // namespace rr::check
