#include "detect/failure_detector.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rr::detect {

FailureDetector::FailureDetector(sim::Simulator& sim, ProcessId self, DetectorConfig config,
                                 SendHeartbeat send, SuspicionChanged on_change)
    : sim_(sim),
      self_(self),
      config_(config),
      send_(std::move(send)),
      on_change_(std::move(on_change)),
      beat_timer_(sim, config.heartbeat_period, [this] { send_(); }),
      sweep_timer_(sim, config.heartbeat_period, [this] { sweep(); }) {
  RR_CHECK(config_.heartbeat_period > 0);
  RR_CHECK_MSG(config_.timeout >= 2 * config_.heartbeat_period,
               "timeout must cover at least two heartbeat periods");
  RR_CHECK(send_ != nullptr);
}

void FailureDetector::set_peers(const std::vector<ProcessId>& peers) {
  peers_.clear();
  for (const ProcessId p : peers) {
    if (p != self_) peers_[p] = PeerState{sim_.now(), false};
  }
}

void FailureDetector::start() {
  for (auto& [id, st] : peers_) st.last_seen = sim_.now();
  // Send one immediate heartbeat so restarts announce themselves promptly.
  send_();
  beat_timer_.start();
  sweep_timer_.start();
}

void FailureDetector::stop() {
  beat_timer_.stop();
  sweep_timer_.stop();
}

void FailureDetector::on_heartbeat(ProcessId from) {
  const auto it = peers_.find(from);
  if (it == peers_.end()) return;
  it->second.last_seen = sim_.now();
  if (it->second.suspected) {
    it->second.suspected = false;
    RR_DEBUG("detect", "%s un-suspects %s", to_string(self_).c_str(), to_string(from).c_str());
    if (on_change_) on_change_(from, false);
  }
}

void FailureDetector::report_unreachable(ProcessId peer) {
  if (!beat_timer_.running()) return;
  const auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.suspected) return;
  it->second.suspected = true;
  RR_DEBUG("detect", "%s suspects %s (transport unreachable)", to_string(self_).c_str(),
           to_string(peer).c_str());
  if (on_change_) on_change_(peer, true);
}

void FailureDetector::sweep() {
  for (auto& [id, st] : peers_) {
    if (!st.suspected && sim_.now() - st.last_seen > config_.timeout) {
      st.suspected = true;
      RR_DEBUG("detect", "%s suspects %s", to_string(self_).c_str(), to_string(id).c_str());
      if (on_change_) on_change_(id, true);
    }
  }
}

bool FailureDetector::suspects(ProcessId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.suspected;
}

std::vector<ProcessId> FailureDetector::suspected() const {
  std::vector<ProcessId> out;
  for (const auto& [id, st] : peers_) {  // ordered map: out is sorted by id
    if (st.suspected) out.push_back(id);
  }
  return out;
}

}  // namespace rr::detect
