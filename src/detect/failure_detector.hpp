// Timeout-based heartbeat failure detector.
//
// Every process periodically broadcasts a heartbeat; a peer not heard from
// within `timeout` becomes *suspected*. This is the component that puts the
// multi-second "failure detection" term into recovery latency — the paper's
// experiment 2 attributes most of the ~5 s double-failure recovery time to
// detection plus state restore, and bench T2 reproduces that breakdown.
//
// The detector is transport-agnostic: the node runtime supplies the
// heartbeat send function and feeds received heartbeats back in. Crash-stop
// model: suspicion of a given incarnation is permanent (a restarted process
// announces a higher incarnation, which un-suspects it).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace rr::detect {

struct DetectorConfig {
  /// Heartbeat broadcast period.
  Duration heartbeat_period = milliseconds(500);
  /// Silence after which a peer is suspected. Several multiples of the
  /// period, mimicking the "timeouts and retrials" the paper describes.
  Duration timeout = seconds(3);
};

class FailureDetector {
 public:
  /// Send one heartbeat round (runtime broadcasts it on the wire).
  using SendHeartbeat = std::function<void()>;
  /// suspected=true: peer newly suspected; false: peer heard again.
  using SuspicionChanged = std::function<void(ProcessId peer, bool suspected)>;

  FailureDetector(sim::Simulator& sim, ProcessId self, DetectorConfig config,
                  SendHeartbeat send, SuspicionChanged on_change);

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Peers to monitor (self is ignored if present). Monitoring starts at
  /// start(); peers are considered alive as of that moment.
  void set_peers(const std::vector<ProcessId>& peers);

  void start();
  void stop();

  /// Feed in a heartbeat (or any liveness-proving message) from `from`.
  void on_heartbeat(ProcessId from);

  /// External evidence that `peer` cannot be reached (the reliable
  /// transport's bounded-retry escalation). Suspects the peer immediately
  /// through the normal change path instead of waiting out the heartbeat
  /// timeout; a later heartbeat un-suspects as usual. No-op while stopped.
  void report_unreachable(ProcessId peer);

  [[nodiscard]] bool suspects(ProcessId peer) const;
  [[nodiscard]] std::vector<ProcessId> suspected() const;
  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }

 private:
  void sweep();

  struct PeerState {
    Time last_seen{kTimeZero};
    bool suspected{false};
  };

  sim::Simulator& sim_;
  ProcessId self_;
  DetectorConfig config_;
  SendHeartbeat send_;
  SuspicionChanged on_change_;
  // Ordered map: sweep() fires suspicion callbacks while iterating, and the
  // callback order must be the peer-id order on every platform — an
  // unordered container would leak hash order into recovery leadership
  // races (rrlint D2).
  std::map<ProcessId, PeerState> peers_;
  sim::RepeatingTimer beat_timer_;
  sim::RepeatingTimer sweep_timer_;
};

}  // namespace rr::detect
