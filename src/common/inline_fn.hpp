// Small-buffer-optimized move-only `void()` callable.
//
// The simulation kernel schedules tens of millions of events per run; with
// std::function every scheduled lambda whose captures exceed the library's
// tiny SSO buffer costs a heap allocation on the hottest path in the system.
// InlineFn stores captures up to kInlineBytes directly inside the object,
// which covers every callback the kernel's clients build (network delivery:
// this + src + dst + Bytes = 40 bytes; storage completion, timer re-arm and
// supervisor restarts: <= 16 bytes). Larger or potentially-throwing-move
// callables transparently fall back to a single heap cell, so correctness
// never depends on the size budget — only speed does. The budget is a
// deliberate contract: see DESIGN.md "Kernel architecture & performance
// model" before growing a capture list past it.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rr {

class InlineFn {
 public:
  /// Captures up to this many bytes live inline (no allocation).
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVT<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVT<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      relocate_from(other);
      other.vt_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vt_ != nullptr) {
        vt_ = other.vt_;
        relocate_from(other);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Precondition: non-empty.
  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }
  friend bool operator==(const InlineFn& f, std::nullptr_t) noexcept {
    return f.vt_ == nullptr;
  }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (no heap cell).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->inline_storage;
  }

 private:
  // A null `relocate` means the storage bytes are position-independent and a
  // plain memcpy moves the callable (trivially-copyable inline captures, and
  // the heap case where storage holds only an owning pointer); that is the
  // overwhelmingly common case for kernel events, and it turns every move on
  // the schedule/dispatch path into a branch + memcpy instead of an indirect
  // call. A null `destroy` means destruction is a no-op.
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move src into raw dst, destroy src
    void (*destroy)(void*) noexcept;
    std::uint32_t size;  // bytes to memcpy when relocate == nullptr
    bool inline_storage;
  };

  // Inline storage demands a nothrow move so relocate() can be noexcept.
  template <typename F>
  static constexpr bool fits_inline = sizeof(F) <= kInlineBytes &&
                                      alignof(F) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static F* object(void* p) noexcept {
    return std::launder(reinterpret_cast<F*>(p));
  }
  template <typename F>
  static F* heap_cell(void* p) noexcept {
    return *std::launder(reinterpret_cast<F**>(p));
  }

  template <typename F>
  static constexpr VTable kInlineVT{
      [](void* p) { (*object<F>(p))(); },
      std::is_trivially_copyable_v<F>
          ? nullptr  // position-independent bytes: moved by memcpy
          : +[](void* src, void* dst) noexcept {
              ::new (dst) F(std::move(*object<F>(src)));
              object<F>(src)->~F();
            },
      std::is_trivially_destructible_v<F>
          ? nullptr
          : +[](void* p) noexcept { object<F>(p)->~F(); },
      /*size=*/sizeof(F),
      /*inline_storage=*/true,
  };

  template <typename F>
  static constexpr VTable kHeapVT{
      [](void* p) { (*heap_cell<F>(p))(); },
      nullptr,  // storage holds only the owning pointer: moved by memcpy
      [](void* p) noexcept { delete heap_cell<F>(p); },
      /*size=*/sizeof(F*),
      /*inline_storage=*/false,
  };

  /// Move `other`'s callable into this object's storage. Precondition:
  /// vt_ == other.vt_ != nullptr and this storage is raw.
  void relocate_from(InlineFn& other) noexcept {
    if (vt_->relocate != nullptr) {
      vt_->relocate(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, vt_->size);
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vt_{nullptr};
};

}  // namespace rr
