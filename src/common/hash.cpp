#include "common/hash.hpp"

namespace rr {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
}

Hasher& Hasher::mix(std::span<const std::byte> data) {
  for (const std::byte b : data) {
    h_ ^= std::to_integer<std::uint8_t>(b);
    h_ *= kPrime;
  }
  return *this;
}

Hasher& Hasher::mix(std::string_view s) {
  for (const char c : s) {
    h_ ^= static_cast<std::uint8_t>(c);
    h_ *= kPrime;
  }
  return *this;
}

Hasher& Hasher::mix_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xff;
    h_ *= kPrime;
  }
  return *this;
}

std::uint64_t hash_bytes(std::span<const std::byte> data) {
  return Hasher{}.mix(data).digest();
}

}  // namespace rr
