// Always-on invariant checks.
//
// RR_CHECK aborts with a message when an invariant is violated; it stays
// enabled in release builds because a rollback-recovery protocol that keeps
// running past a broken invariant silently corrupts recovery state. Use for
// internal invariants; user-facing argument validation should throw.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rr::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::fprintf(stderr, "RR_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace rr::detail

#define RR_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) ::rr::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define RR_CHECK_MSG(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) ::rr::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

namespace rr {

/// Thrown for recoverable, caller-visible errors (bad configuration,
/// malformed wire data).
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace rr
