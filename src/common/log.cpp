#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace rr::logging {

namespace {

// The level is process-wide (set once at startup, read everywhere) and
// atomic so concurrent simulation workers read it race-free. The clock is
// per-thread: each worker in a parallel sweep owns its Simulator, and its
// log lines must carry *that* simulation's virtual time.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
thread_local std::function<Time()> g_clock;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void set_clock(std::function<Time()> clock) { g_clock = std::move(clock); }

void write(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load(std::memory_order_relaxed))) return;
  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  if (g_clock) {
    std::fprintf(stderr, "[%12s] %s %-8s %s\n", format_duration(g_clock()).c_str(),
                 level_name(level), component, body);
  } else {
    std::fprintf(stderr, "[   --------] %s %-8s %s\n", level_name(level), component, body);
  }
}

}  // namespace rr::logging
