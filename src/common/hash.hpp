// Incremental 64-bit FNV-1a hashing.
//
// Used for application state digests (replay-fidelity checks compare the
// digest of a recovered process against the pre-crash execution) and for
// whole-trace determinism checks. Not cryptographic; collisions are
// acceptable for test oracles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace rr {

class Hasher {
 public:
  Hasher& mix(std::span<const std::byte> data);
  Hasher& mix(std::string_view s);
  Hasher& mix_u64(std::uint64_t v);
  Hasher& mix_i64(std::int64_t v) { return mix_u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_{0xcbf29ce484222325ULL};
};

[[nodiscard]] std::uint64_t hash_bytes(std::span<const std::byte> data);

}  // namespace rr
