#include "common/serde.hpp"

#include <cstring>

namespace rr {

namespace {

template <typename T>
void put_le(Bytes& buf, T v) {
  const auto off = buf.size();
  buf.resize(off + sizeof(T));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[off + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

template <typename T>
T get_le(std::span<const std::byte> b) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(std::to_integer<std::uint8_t>(b[i])) << (8 * i);
  }
  return v;
}

}  // namespace

BufferPool& BufferPool::global() noexcept {
  // One pool per thread, not per process: concurrent simulation instances
  // (the work-stealing schedule explorer, parallel bench sweeps) must never
  // share a free list. Pooling is capacity-only and invisible to encoded
  // content, so per-thread pools keep every run bit-identical to a serial
  // execution while making the hot path lock-free.
  thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::acquire(std::size_t reserve) {
  if (free_.empty()) {
    ++misses_;
    Bytes b;
    b.reserve(reserve);
    return b;
  }
  ++hits_;
  Bytes b = std::move(free_.back());
  free_.pop_back();
  if (b.capacity() < reserve) b.reserve(reserve);
  return b;
}

void BufferPool::release(Bytes&& buf) noexcept {
  const std::size_t cap = buf.capacity();
  if (cap < kMinRetainBytes || cap > kMaxRetainBytes || free_.size() >= kMaxBuffers) {
    return;  // let it free; pooling giant or trivial buffers is a net loss
  }
  buf.clear();
  free_.push_back(std::move(buf));
}

Bytes BufferPool::copy_of(std::span<const std::byte> src) {
  Bytes b = acquire(src.size());
  b.insert(b.end(), src.begin(), src.end());
  return b;
}

void BufWriter::u8(std::uint8_t v) { put_le(buf_, v); }
void BufWriter::u16(std::uint16_t v) { put_le(buf_, v); }
void BufWriter::u32(std::uint32_t v) { put_le(buf_, v); }
void BufWriter::u64(std::uint64_t v) { put_le(buf_, v); }

void BufWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BufWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void BufWriter::boolean(bool v) { u8(v ? 1 : 0); }

void BufWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void BufWriter::bytes(std::span<const std::byte> v) {
  varint(v.size());
  raw(v);
}

void BufWriter::str(std::string_view v) {
  varint(v.size());
  const auto off = buf_.size();
  buf_.resize(off + v.size());
  std::memcpy(buf_.data() + off, v.data(), v.size());
}

void BufWriter::raw(std::span<const std::byte> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

std::span<const std::byte> BufReader::take(std::size_t n) {
  if (n > remaining()) {
    throw SerdeError("truncated input: need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t BufReader::u8() { return get_le<std::uint8_t>(take(1)); }
std::uint16_t BufReader::u16() { return get_le<std::uint16_t>(take(2)); }
std::uint32_t BufReader::u32() { return get_le<std::uint32_t>(take(4)); }
std::uint64_t BufReader::u64() { return get_le<std::uint64_t>(take(8)); }

std::int64_t BufReader::i64() { return static_cast<std::int64_t>(u64()); }

double BufReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool BufReader::boolean() {
  const auto v = u8();
  if (v > 1) throw SerdeError("malformed boolean");
  return v == 1;
}

std::uint64_t BufReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const auto b = u8();
    if (shift == 63 && (b & 0x7e) != 0) throw SerdeError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw SerdeError("varint too long");
  }
}

std::uint64_t BufReader::count(std::size_t min_element_bytes) {
  const auto n = varint();
  const std::size_t min_bytes = min_element_bytes == 0 ? 1 : min_element_bytes;
  if (n > remaining() / min_bytes) {
    throw SerdeError("collection count " + std::to_string(n) + " exceeds the " +
                     std::to_string(remaining()) + " bytes remaining");
  }
  return n;
}

Bytes BufReader::bytes() {
  const auto n = varint();
  auto sp = take(n);
  return Bytes(sp.begin(), sp.end());
}

std::string BufReader::str() {
  const auto n = varint();
  auto sp = take(n);
  return std::string(reinterpret_cast<const char*>(sp.data()), sp.size());
}

std::span<const std::byte> BufReader::raw(std::size_t n) { return take(n); }

void BufReader::expect_done() const {
  if (!done()) {
    throw SerdeError("trailing garbage: " + std::to_string(remaining()) + " bytes");
  }
}

Bytes to_bytes(std::string_view s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string to_text(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace rr
