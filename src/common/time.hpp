// Virtual time for the simulation: signed 64-bit nanoseconds.
//
// Plain integral aliases (not std::chrono) keep event-queue keys, serde and
// arithmetic trivial; the helpers below are the only sanctioned way to spell
// durations, so call sites stay unit-explicit.
#pragma once

#include <cstdint>
#include <string>

namespace rr {

/// Absolute virtual time in nanoseconds since simulation start.
using Time = std::int64_t;

/// Relative time in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
inline constexpr Duration kDurationZero = 0;

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t n) { return n; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t n) { return n * 1'000; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t n) { return n * 1'000'000; }
[[nodiscard]] constexpr Duration seconds(std::int64_t n) { return n * 1'000'000'000; }

[[nodiscard]] constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }
[[nodiscard]] constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }
[[nodiscard]] constexpr double to_micros(Duration d) { return static_cast<double>(d) / 1e3; }

/// Human-readable rendering with an auto-selected unit ("1.234ms", "2.5s").
[[nodiscard]] inline std::string format_duration(Duration d) {
  const auto abs = d < 0 ? -d : d;
  char buf[64];
  if (abs >= seconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(d));
  } else if (abs >= milliseconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis(d));
  } else if (abs >= microseconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_micros(d));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace rr
