// Deterministic pseudo-random numbers for the simulation.
//
// xoshiro256** seeded through SplitMix64. Every component that needs
// randomness gets its own stream via fork(), keyed by a stable string, so
// adding a consumer never perturbs the numbers other consumers see — the
// property that keeps regression traces stable as the codebase evolves.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rr {

class Rng {
 public:
  /// Seed via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derive an independent stream keyed by `label`; deterministic in
  /// (parent seed, label) and independent of how often the parent is used.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Derive an independent stream keyed by a numeric id.
  [[nodiscard]] Rng fork(std::uint64_t id) const;

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;  // retained so fork() is use-independent
};

}  // namespace rr
