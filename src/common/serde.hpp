// Byte-buffer serialization used for every wire and stable-storage format.
//
// Encoding is little-endian fixed width for integers plus LEB128 varints
// for counts; it is deliberately simple, self-contained and deterministic
// (the same logical value always encodes to the same bytes) so that message
// sizes reported by the metrics layer are meaningful and simulation traces
// are reproducible.
//
// BufReader performs full bounds checking and throws rr::SerdeError on any
// malformed input; protocol code can therefore decode peer input without
// undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace rr {

/// Raw byte payload.
using Bytes = std::vector<std::byte>;

/// Thrown by BufReader on truncated or malformed input.
class SerdeError : public Error {
 public:
  using Error::Error;
};

/// Free-list of Bytes buffers that recycles capacity across the encode /
/// transmit / decode cycle: BufWriter acquires its backing buffer here, and
/// the delivery side (network, node runtime) releases wire buffers back once
/// decoded. On the failure-free hot path this makes per-packet buffer
/// allocation amortize to zero — every send reuses the capacity of an
/// already-delivered packet.
///
/// The pool is capacity-only: acquire() always returns an *empty* buffer, so
/// pooling is invisible to encoded content and simulation traces. Each
/// instance is single-threaded — a simulation never shares one across
/// threads; global() hands every thread its own.
class BufferPool {
 public:
  /// Thread-wide pool. A global (rather than per-Simulator) instance so the
  /// simulator-free protocol layers (fbl, recovery) share the same free
  /// list as the network and storage models; thread_local (rather than
  /// process-wide) so concurrent simulation instances — one per worker in
  /// the parallel schedule explorer — stay fully isolated.
  [[nodiscard]] static BufferPool& global() noexcept;

  /// An empty buffer with at least `reserve` capacity when one is pooled
  /// (largest-first); freshly reserved otherwise.
  [[nodiscard]] Bytes acquire(std::size_t reserve);

  /// Return a dead buffer's capacity to the pool. Oversized or tiny buffers
  /// and overflow beyond kMaxBuffers are simply freed.
  void release(Bytes&& buf) noexcept;

  /// Pool-backed copy (for fan-out paths that transmit one frame N times).
  [[nodiscard]] Bytes copy_of(std::span<const std::byte> src);

  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Buffers kept at most; beyond this, released buffers are freed.
  static constexpr std::size_t kMaxBuffers = 64;
  /// Largest capacity worth retaining (checkpoint blobs stay out).
  static constexpr std::size_t kMaxRetainBytes = std::size_t{1} << 20;
  /// Smallest capacity worth retaining.
  static constexpr std::size_t kMinRetainBytes = 16;

  BufferPool() { free_.reserve(kMaxBuffers); }  // keeps release() nonallocating

 private:
  std::vector<Bytes> free_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

/// Append-only encoder. The sized constructor draws its backing buffer from
/// BufferPool::global(), so encode paths recycle delivered packets' storage.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) : buf_(BufferPool::global().acquire(reserve)) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  /// LEB128 unsigned varint (1..10 bytes).
  void varint(std::uint64_t v);
  /// varint length prefix + raw bytes.
  void bytes(std::span<const std::byte> v);
  void str(std::string_view v);
  void process_id(ProcessId p) { u32(p.value); }

  /// Raw append without a length prefix (caller manages framing).
  void raw(std::span<const std::byte> v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& view() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a non-owning span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::byte> data) : data_(data) {}
  explicit BufReader(const Bytes& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::uint64_t varint();
  /// Varint element count, validated against the bytes actually left: a
  /// count that cannot possibly be satisfied (each element consumes at
  /// least `min_element_bytes`) is malformed input and throws SerdeError —
  /// never a reservation request. Decoders must use this before
  /// reserve()-ing, or a length-lying buffer turns into an allocation bomb.
  [[nodiscard]] std::uint64_t count(std::size_t min_element_bytes = 1);
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();
  [[nodiscard]] ProcessId process_id() { return ProcessId{u32()}; }

  /// Read exactly n raw bytes.
  [[nodiscard]] std::span<const std::byte> raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }
  /// Throws unless the whole buffer has been consumed.
  void expect_done() const;

 private:
  [[nodiscard]] std::span<const std::byte> take(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

/// Convenience: copy a string's characters into a Bytes payload.
[[nodiscard]] Bytes to_bytes(std::string_view s);
/// Convenience: interpret a Bytes payload as text (for tests/examples).
[[nodiscard]] std::string to_text(std::span<const std::byte> b);

}  // namespace rr
