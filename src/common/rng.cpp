#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  RR_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  RR_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(bounded(range));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  RR_CHECK(mean > 0);
  double u = uniform01();
  if (u == 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork(std::string_view label) const {
  return Rng(fnv1a(seed_ ^ 0xa5a5a5a5deadbeefULL, label));
}

Rng Rng::fork(std::uint64_t id) const {
  std::uint64_t x = seed_ ^ (id * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL);
  return Rng(splitmix64(x));
}

}  // namespace rr
