// Minimal leveled logging with simulation-time prefixes.
//
// The simulator installs a clock callback so every line carries virtual
// time, which is what makes protocol traces readable ("who knew what
// when"). Logging is off by default (kWarn) so tests and benches stay
// quiet; examples turn it up to narrate executions.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

#include "common/time.hpp"

namespace rr {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace logging {

/// Global threshold; lines below it are dropped before formatting.
void set_level(LogLevel level);
[[nodiscard]] LogLevel level();

/// Install a virtual-clock source for prefixes (nullptr to clear). The
/// clock is thread-local: each parallel-sweep worker's simulator stamps its
/// own lines with its own virtual time.
void set_clock(std::function<Time()> clock);

/// printf-style sink; prefer the RR_LOG_* macros.
void write(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace logging
}  // namespace rr

#define RR_LOG(lvl, component, ...)                            \
  do {                                                         \
    if (static_cast<int>(lvl) >= static_cast<int>(::rr::logging::level())) \
      ::rr::logging::write((lvl), (component), __VA_ARGS__);   \
  } while (false)

#define RR_TRACE(component, ...) RR_LOG(::rr::LogLevel::kTrace, component, __VA_ARGS__)
#define RR_DEBUG(component, ...) RR_LOG(::rr::LogLevel::kDebug, component, __VA_ARGS__)
#define RR_INFO(component, ...) RR_LOG(::rr::LogLevel::kInfo, component, __VA_ARGS__)
#define RR_WARN(component, ...) RR_LOG(::rr::LogLevel::kWarn, component, __VA_ARGS__)
#define RR_ERROR(component, ...) RR_LOG(::rr::LogLevel::kError, component, __VA_ARGS__)
