// Fundamental identifier types shared by every module.
//
// ProcessId identifies a logical process in the distributed system; a
// process keeps its id across crashes and restarts, but each restart bumps
// its Incarnation. Message streams are numbered per (sender, receiver) pair
// with send sequence numbers (Ssn) and per receiver with receipt sequence
// numbers (Rsn) — the pair (sender, ssn) names a message, and the
// receiver's rsn for it is its *receipt order*, the datum FBL protocols log.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace rr {

/// Identity of a logical process (stable across crash/restart).
struct ProcessId {
  std::uint32_t value{std::numeric_limits<std::uint32_t>::max()};

  constexpr ProcessId() = default;
  constexpr explicit ProcessId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  friend constexpr auto operator<=>(ProcessId, ProcessId) = default;
};

/// Sentinel "no process".
inline constexpr ProcessId kNoProcess{};

/// Number of times a process has recovered; starts at 0 and is incremented
/// by one on every restart (paper §3.2, `incarnation`).
using Incarnation = std::uint32_t;

/// Per (sender, receiver) channel send sequence number; first message on a
/// channel is 1. Consecutive per channel, so receivers can detect gaps.
using Ssn = std::uint64_t;

/// Per receiver receipt sequence number (the *receipt order*); first
/// delivery is 1.
using Rsn = std::uint64_t;

[[nodiscard]] inline std::string to_string(ProcessId p) {
  return p.valid() ? "p" + std::to_string(p.value) : "p?";
}

}  // namespace rr

template <>
struct std::hash<rr::ProcessId> {
  std::size_t operator()(rr::ProcessId p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value);
  }
};
