// Event queue: explicit 4-ary min-heap plus a monotone FIFO fast path.
//
// The kernel's queue discipline is a strict weak order on (time, seq); the
// queue stores only a 16-byte key — the event time plus a packed
// (seq, slot) word with seq in the high bits so key order IS seq order —
// never the callback.
//
// Discrete-event schedules are mostly time-monotone: the bulk of pushes
// (constant-delay network hops, periodic timers, completion events) carry a
// key >= the most recently pushed one. Those append to `fifo_`, a sorted
// ring, in O(1); only out-of-order pushes pay the heap. pop() takes the
// smaller of the two fronts, so the merged pop order is exactly the global
// (time, seq) order — the fast path changes constants, never semantics.
// On a fully monotone schedule both push and pop are O(1) and the heap
// stays empty; a worst-case adversarial schedule degrades to plain heap
// costs plus one predictable comparison.
//
// Sift operations move trivially-copyable values, each structure is one
// contiguous allocation, and four heap children share a single cache line.
// A 4-ary layout halves tree depth versus binary, which matters because
// pops dominate (every event is pushed once and popped once, but a pop
// does depth * 4 comparisons against cache-adjacent children while a push
// does depth comparisons up a hot path). Replaces std::priority_queue,
// whose const top() forced a const_cast to move the payload out.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace rr::sim {

class EventHeap {
 public:
  struct Entry {
    Time at;
    std::uint64_t key;  // (seq << slot-bits) | slot — caller-defined packing
  };

  [[nodiscard]] bool empty() const noexcept {
    return v_.empty() && fifo_head_ == fifo_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return v_.size() + (fifo_.size() - fifo_head_);
  }
  void reserve(std::size_t n) { fifo_.reserve(n); }
  void clear() noexcept {
    v_.clear();
    fifo_.clear();
    fifo_head_ = 0;
  }

  /// Precondition: !empty().
  [[nodiscard]] const Entry& top() const noexcept {
    if (v_.empty()) return fifo_[fifo_head_];
    if (fifo_head_ == fifo_.size()) return v_.front();
    return before(v_.front(), fifo_[fifo_head_]) ? v_.front() : fifo_[fifo_head_];
  }

  void push(const Entry& e) {
    // Monotone fast path: keeps `fifo_` sorted by construction.
    if (fifo_head_ == fifo_.size() || !before(e, fifo_.back())) {
      if (fifo_head_ == fifo_.size()) {  // drained: restart from index 0
        fifo_.clear();
        fifo_head_ = 0;
      }
      fifo_.push_back(e);
      return;
    }
    std::size_t i = v_.size();
    v_.push_back(e);
    // Sift the hole up; strictly fewer moves than repeated swaps.
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  /// Precondition: !empty().
  void pop() {
    if (!v_.empty() &&
        (fifo_head_ == fifo_.size() || before(v_.front(), fifo_[fifo_head_]))) {
      pop_heap();
    } else {
      ++fifo_head_;
      // Amortized compaction: once the dead prefix outweighs the live
      // suffix, memmove the suffix down so the ring never grows unbounded
      // in steady state (each erase is paid for by the pops that built the
      // prefix).
      if (fifo_head_ >= 64 && fifo_head_ * 2 >= fifo_.size()) {
        fifo_.erase(fifo_.begin(),
                    fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
        fifo_head_ = 0;
      }
    }
  }

 private:
  void pop_heap() {
    const Entry last = v_.back();
    v_.pop_back();
    if (v_.empty()) return;
    // Re-seat `last` starting from the root, pulling the smallest child up.
    // (A bottom-up hole-to-leaf variant was measured ~50% slower here: the
    // pop stream is dominated by full-depth descents where the extra
    // compare-against-last per level is cheaper than the leaf sift-up.)
    std::size_t i = 0;
    const std::size_t n = v_.size();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(v_[c], v_[best])) best = c;
      }
      if (!before(v_[best], last)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = last;
  }

  static bool before(const Entry& a, const Entry& b) noexcept {
    // Key order is seq order (seq occupies the high bits), so this realizes
    // the kernel's (time, insertion-seq) discipline exactly.
    return a.at != b.at ? a.at < b.at : a.key < b.key;
  }

  std::vector<Entry> v_;     // out-of-order arrivals (classic 4-ary heap)
  std::vector<Entry> fifo_;  // monotone arrivals, sorted by construction
  std::size_t fifo_head_{0};
};

}  // namespace rr::sim
