// Deterministic discrete-event simulation kernel.
//
// All of the system — network delivery, storage completion, timers, failure
// injection — runs as events on one queue ordered by (virtual time,
// insertion sequence). The insertion-sequence tie-break makes execution a
// pure function of the initial schedule and the seed: two runs with the
// same inputs produce bit-identical traces, which is what lets the test
// suite treat an entire distributed execution as a reproducible value.
//
// Hot-path design (see DESIGN.md "Kernel architecture & performance model"):
// callbacks are InlineFn (64-byte inline captures, no per-event allocation),
// scheduled events live in a generation-tagged slot arena so cancel is an
// O(1) array write and the pop loop does no hashing, and the ready queue is
// an explicit 4-ary heap over 16-byte (time, packed seq|slot) keys.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_fn.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_heap.hpp"

namespace rr::sim {

/// Handle for a scheduled event: an arena slot plus the generation the slot
/// carried when the event was scheduled. A handle goes stale the moment its
/// event runs or is cancelled — the slot's generation moves on, and every
/// later operation through the stale handle is rejected, so slot reuse is
/// invisible to callers. Generation 0 is "no event".
struct EventId {
  std::uint32_t slot{0};
  std::uint32_t gen{0};
  [[nodiscard]] constexpr bool valid() const noexcept { return gen != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

inline constexpr EventId kNoEvent{};

class Simulator {
 public:
  using EventFn = InlineFn;

  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  EventId schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `d` (>= 0) from now.
  EventId schedule_after(Duration d, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is invalid. O(1): the slot is disarmed and its
  /// generation bumped; the heap entry is skipped lazily at pop time.
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or stop() is called. Returns events run.
  /// Aborts (RR_CHECK) past `max_events` — a runaway-protocol backstop.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run every event with time <= t, then advance the clock to exactly t —
  /// also when stop() halts the run early. Events due at or before t that
  /// did not get to run stay pending and execute at the (later) current
  /// time; the clock never moves backwards.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultMaxEvents);

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }
  [[nodiscard]] std::size_t events_executed() const noexcept { return executed_; }

  /// Root RNG; components should fork() their own streams from it.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  static constexpr std::size_t kDefaultMaxEvents = 200'000'000;

 private:
  // Arena layout. The hot pop loop only needs "is heap entry e still live?",
  // answered by comparing e's packed seq against live_seq_[slot] — a dense
  // u64 array the CPU streams through without touching the 80-byte callback
  // cells. The callbacks themselves live in fixed-size chunks that are never
  // relocated: growing the arena allocates one new chunk and moves only the
  // chunk-pointer vector, instead of move-constructing every existing
  // InlineFn the way a flat std::vector would on reallocation. `gen_[slot]`
  // counts how many events have occupied the cell; it bumps whenever the
  // occupant leaves (ran or cancelled), which is what invalidates
  // outstanding EventIds.
  static constexpr std::uint32_t kSlotChunkShift = 8;  // 256 callbacks per chunk
  static constexpr std::uint32_t kSlotChunkCap = 1u << kSlotChunkShift;

  // Heap keys pack (seq << kSlotBits) | slot into one u64: seq in the high
  // bits makes key order the insertion order, and the slot rides along for
  // free. Bounds: 2^24 concurrently-pending events, 2^40 schedulings per
  // Simulator lifetime (checked).
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  static constexpr std::uint32_t key_slot(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key & kSlotMask);
  }
  static constexpr std::uint64_t key_seq(std::uint64_t key) noexcept {
    return key >> kSlotBits;
  }

  [[nodiscard]] InlineFn& fn_ref(std::uint32_t s) noexcept {
    return fn_chunks_[s >> kSlotChunkShift][s & (kSlotChunkCap - 1)];
  }

  /// Drop stale heap entries; returns the next live entry or nullptr.
  const EventHeap::Entry* peek();
  /// Extract the callback of the live top entry, free its slot, pop it.
  InlineFn take_top();
  void release(std::uint32_t slot);

  Time now_{kTimeZero};
  std::uint64_t next_seq_{1};
  std::size_t executed_{0};
  std::size_t live_{0};
  bool stopped_{false};
  EventHeap heap_;
  std::vector<std::unique_ptr<InlineFn[]>> fn_chunks_;
  std::vector<std::uint64_t> live_seq_;  // 0 = slot empty, else seq of occupant
  std::vector<std::uint32_t> gen_;       // EventId validity; bumps on release
  std::vector<std::uint32_t> free_slots_;
  Rng rng_;
};

/// Self-rescheduling periodic timer. Not started until start() is called;
/// stop() is idempotent; destruction cancels any pending tick. The period
/// may be changed between ticks via set_period(); it applies from the next
/// arm, so a set_period() inside the tick callback affects the tick after
/// the one already armed.
class RepeatingTimer {
 public:
  RepeatingTimer(Simulator& sim, Duration period, std::function<void()> on_tick);
  ~RepeatingTimer();

  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  /// First tick fires one period from now (or at `initial_delay` if given).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const noexcept { return pending_.valid(); }

  void set_period(Duration period);
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  std::function<void()> on_tick_;
  EventId pending_{kNoEvent};
};

}  // namespace rr::sim
