// Deterministic discrete-event simulation kernel.
//
// All of the system — network delivery, storage completion, timers, failure
// injection — runs as events on one queue ordered by (virtual time,
// insertion sequence). The insertion-sequence tie-break makes execution a
// pure function of the initial schedule and the seed: two runs with the
// same inputs produce bit-identical traces, which is what lets the test
// suite treat an entire distributed execution as a reproducible value.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace rr::sim {

/// Handle for a scheduled event; value 0 is "no event".
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

inline constexpr EventId kNoEvent{};

class Simulator {
 public:
  using EventFn = std::function<void()>;

  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  EventId schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `d` (>= 0) from now.
  EventId schedule_after(Duration d, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or stop() is called. Returns events run.
  /// Aborts (RR_CHECK) past `max_events` — a runaway-protocol backstop.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run every event with time <= t, then advance the clock to exactly t.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultMaxEvents);

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const noexcept { return pending_.size(); }
  [[nodiscard]] std::size_t events_executed() const noexcept { return executed_; }

  /// Root RNG; components should fork() their own streams from it.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  static constexpr std::size_t kDefaultMaxEvents = 200'000'000;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the next non-cancelled event, or returns false.
  bool pop_next(Event& out);

  Time now_{kTimeZero};
  std::uint64_t next_seq_{1};
  std::size_t executed_{0};
  bool stopped_{false};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;    // ids scheduled, not yet run
  std::unordered_set<std::uint64_t> cancelled_;  // ids to skip at pop time
  Rng rng_;
};

/// Self-rescheduling periodic timer. Not started until start() is called;
/// stop() is idempotent; destruction cancels any pending tick. The period
/// may be changed between ticks via set_period().
class RepeatingTimer {
 public:
  RepeatingTimer(Simulator& sim, Duration period, std::function<void()> on_tick);
  ~RepeatingTimer();

  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  /// First tick fires one period from now (or at `initial_delay` if given).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const noexcept { return pending_.valid(); }

  void set_period(Duration period);
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  std::function<void()> on_tick_;
  EventId pending_{kNoEvent};
};

}  // namespace rr::sim
