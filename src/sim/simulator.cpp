#include "sim/simulator.hpp"

#include <utility>

#include "common/log.hpp"

namespace rr::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  logging::set_clock([this] { return now_; });
}

Simulator::~Simulator() { logging::set_clock(nullptr); }

EventId Simulator::schedule_at(Time t, EventFn fn) {
  RR_CHECK_MSG(t >= now_, "cannot schedule in the past");
  RR_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(live_seq_.size());
    RR_CHECK_MSG(slot < kSlotMask, "too many concurrently pending events");
    if ((slot & (kSlotChunkCap - 1)) == 0) {
      fn_chunks_.push_back(std::make_unique<InlineFn[]>(kSlotChunkCap));
    }
    live_seq_.push_back(0);
    gen_.push_back(1);
  }
  const std::uint64_t seq = next_seq_++;
  RR_CHECK_MSG(seq >> (64 - kSlotBits) == 0, "event sequence space exhausted");
  fn_ref(slot) = std::move(fn);
  live_seq_[slot] = seq;
  heap_.push(EventHeap::Entry{t, (seq << kSlotBits) | slot});
  ++live_;
  return EventId{slot, gen_[slot]};
}

EventId Simulator::schedule_after(Duration d, EventFn fn) {
  RR_CHECK_MSG(d >= 0, "negative delay");
  return schedule_at(now_ + d, std::move(fn));
}

void Simulator::release(std::uint32_t slot) {
  fn_ref(slot).reset();
  live_seq_[slot] = 0;
  ++gen_[slot];  // invalidates the caller's EventId
  free_slots_.push_back(slot);
  --live_;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot >= gen_.size()) return false;
  if (live_seq_[id.slot] == 0 || gen_[id.slot] != id.gen) {
    return false;  // already ran / cancelled
  }
  release(id.slot);
  return true;
}

const EventHeap::Entry* Simulator::peek() {
  while (!heap_.empty()) {
    const EventHeap::Entry& e = heap_.top();
    if (live_seq_[key_slot(e.key)] == key_seq(e.key)) return &e;
    heap_.pop();  // cancelled: the slot moved on, drop the stale entry
  }
  return nullptr;
}

InlineFn Simulator::take_top() {
  const std::uint32_t slot = key_slot(heap_.top().key);
  InlineFn fn = std::move(fn_ref(slot));
  release(slot);
  heap_.pop();
  return fn;
}

bool Simulator::step() {
  const EventHeap::Entry* e = peek();
  if (e == nullptr) return false;
  const Time at = e->at;
  InlineFn fn = take_top();
  // An event can be overdue only after stop() halted a run_until() that
  // then advanced the clock past it; it runs late at the current time.
  if (at > now_) now_ = at;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) {
    ++n;
    RR_CHECK_MSG(n <= max_events, "event budget exhausted — runaway schedule?");
  }
  return n;
}

std::size_t Simulator::run_until(Time t, std::size_t max_events) {
  RR_CHECK(t >= now_);
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    const EventHeap::Entry* e = peek();
    if (e == nullptr || e->at > t) break;  // drained, or next event not due
    const Time at = e->at;
    InlineFn fn = take_top();
    if (at > now_) now_ = at;
    ++executed_;
    fn();
    ++n;
    RR_CHECK_MSG(n <= max_events, "event budget exhausted — runaway schedule?");
  }
  now_ = t;  // the clock lands on exactly t, also when stopped mid-run
  return n;
}

RepeatingTimer::RepeatingTimer(Simulator& sim, Duration period, std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  RR_CHECK(period_ > 0);
  RR_CHECK(on_tick_ != nullptr);
}

RepeatingTimer::~RepeatingTimer() { stop(); }

void RepeatingTimer::start() { start_after(period_); }

void RepeatingTimer::start_after(Duration initial_delay) {
  stop();
  arm(initial_delay);
}

void RepeatingTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = kNoEvent;
  }
}

void RepeatingTimer::set_period(Duration period) {
  RR_CHECK(period > 0);
  period_ = period;
}

void RepeatingTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kNoEvent;
    arm(period_);  // re-arm first so on_tick_ may call stop()
    on_tick_();
  });
}

}  // namespace rr::sim
