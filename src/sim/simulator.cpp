#include "sim/simulator.hpp"

#include <utility>

#include "common/log.hpp"

namespace rr::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  logging::set_clock([this] { return now_; });
}

Simulator::~Simulator() { logging::set_clock(nullptr); }

EventId Simulator::schedule_at(Time t, EventFn fn) {
  RR_CHECK_MSG(t >= now_, "cannot schedule in the past");
  RR_CHECK(fn != nullptr);
  const EventId id{next_seq_++};
  queue_.push(Event{t, id.value, std::move(fn)});
  pending_.insert(id.value);
  return id;
}

EventId Simulator::schedule_after(Duration d, EventFn fn) {
  RR_CHECK_MSG(d >= 0, "negative delay");
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Lazy deletion: mark and skip at pop time. Cancelling an event that
  // already ran (or was already cancelled) returns false.
  if (!id.valid() || pending_.erase(id.value) == 0) return false;
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; we move via const_cast after pop decision
    // is made — standard lazy-deletion idiom.
    const Event& top = queue_.top();
    if (cancelled_.erase(top.seq) > 0) {
      queue_.pop();
      continue;
    }
    out = std::move(const_cast<Event&>(top));
    queue_.pop();
    pending_.erase(out.seq);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  RR_CHECK(ev.at >= now_);
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) {
    ++n;
    RR_CHECK_MSG(n <= max_events, "event budget exhausted — runaway schedule?");
  }
  return n;
}

std::size_t Simulator::run_until(Time t, std::size_t max_events) {
  RR_CHECK(t >= now_);
  stopped_ = false;
  std::size_t n = 0;
  for (;;) {
    if (stopped_) break;
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.at > t) {
      // Not due yet: push back and finish.
      pending_.insert(ev.seq);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.at;
    ++executed_;
    ev.fn();
    ++n;
    RR_CHECK_MSG(n <= max_events, "event budget exhausted — runaway schedule?");
  }
  now_ = t;
  return n;
}

RepeatingTimer::RepeatingTimer(Simulator& sim, Duration period, std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  RR_CHECK(period_ > 0);
  RR_CHECK(on_tick_ != nullptr);
}

RepeatingTimer::~RepeatingTimer() { stop(); }

void RepeatingTimer::start() { start_after(period_); }

void RepeatingTimer::start_after(Duration initial_delay) {
  stop();
  arm(initial_delay);
}

void RepeatingTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = kNoEvent;
  }
}

void RepeatingTimer::set_period(Duration period) {
  RR_CHECK(period > 0);
  period_ = period;
}

void RepeatingTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kNoEvent;
    arm(period_);  // re-arm first so on_tick_ may call stop()
    on_tick_();
  });
}

}  // namespace rr::sim
