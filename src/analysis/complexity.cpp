#include "analysis/complexity.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace rr::analysis {

std::uint64_t MessageBreakdown::total() const {
  return ord_request + ord_reply + rset_request + rset_reply + inc_request + inc_reply +
         dep_request + dep_reply + dep_install + recovery_complete;
}

std::string MessageBreakdown::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "ord %llu/%llu rset %llu/%llu inc %llu/%llu dep %llu/%llu install %llu "
                "complete %llu (total %llu)",
                static_cast<unsigned long long>(ord_request),
                static_cast<unsigned long long>(ord_reply),
                static_cast<unsigned long long>(rset_request),
                static_cast<unsigned long long>(rset_reply),
                static_cast<unsigned long long>(inc_request),
                static_cast<unsigned long long>(inc_reply),
                static_cast<unsigned long long>(dep_request),
                static_cast<unsigned long long>(dep_reply),
                static_cast<unsigned long long>(dep_install),
                static_cast<unsigned long long>(recovery_complete),
                static_cast<unsigned long long>(total()));
  return buf;
}

MessageBreakdown predict_messages(const MessageModelInputs& in) {
  RR_CHECK(in.k >= 1 && in.k <= in.n);
  RR_CHECK(in.rounds >= 1);
  MessageBreakdown out;

  // Every recovering process acquires its ordinal exactly once.
  out.ord_request = in.k;
  out.ord_reply = in.k;

  // The leader refreshes R once per round; waiting members and the
  // mid-round failure watch add `progress_polls` more request/reply pairs.
  out.rset_request = in.rounds + in.progress_polls;
  out.rset_reply = in.rounds + in.progress_polls;

  // The paper's algorithm gathers the recovering incarnations every round
  // (step 4); the message-lean comparators skip the phase.
  if (in.algorithm == recovery::Algorithm::kNonBlocking) {
    out.inc_request = static_cast<std::uint64_t>(in.rounds) * (in.k - 1);
    out.inc_reply = out.inc_request;
  }

  // Depinfo gather targets every live process, every round (step 5).
  out.dep_request = static_cast<std::uint64_t>(in.rounds) * (in.n - in.k);
  out.dep_reply = out.dep_request;

  // Only the completing round installs; the leader self-installs locally.
  out.dep_install = in.k - 1;

  // Completion is broadcast to the n-1 other processes plus the ord
  // service — n transmissions per recovering process.
  out.recovery_complete = static_cast<std::uint64_t>(in.k) * in.n;

  return out;
}

double LatencyBreakdown::communication_share() const {
  const auto t = total();
  return t == 0 ? 0.0 : static_cast<double>(gather) / static_cast<double>(t);
}

std::string LatencyBreakdown::to_string() const {
  return "detect " + format_duration(detect) + " + restore " + format_duration(restore) +
         " + gather " + format_duration(gather) + " + replay " + format_duration(replay) +
         " = " + format_duration(total());
}

LatencyBreakdown predict_latency(const LatencyModelInputs& in) {
  LatencyBreakdown out;

  out.detect = in.supervisor_delay;

  // Restore: incarnation read + rewrite, checkpoint pointer read, image
  // read — four positioning operations plus the image transfer.
  out.restore = 4 * in.storage_seek +
                static_cast<Duration>(static_cast<double>(in.checkpoint_bytes) /
                                      in.storage_bytes_per_second * 1e9);

  // Gather: sequential round trips — ord acquisition, R refresh, the
  // incarnation phase (paper's algorithm with a batch), depinfo exchange.
  int round_trips = 3;  // ord, rset, dep
  if (in.algorithm == recovery::Algorithm::kNonBlocking && in.k > 1) ++round_trips;
  out.gather = round_trips * 2 * in.hop_latency;

  out.replay = static_cast<Duration>(in.replay_messages) * in.replay_cost_per_message;
  return out;
}

}  // namespace rr::analysis
