// Analytical cost models — the paper's closing wish made concrete.
//
// "It is hoped that theoretical formulations could be developed to
// precisely express the effects of these factors in the same way that
// message complexity became the yardstick for evaluating and comparing
// these protocols." (paper §7)
//
// Two models:
//
//  * MessageModel — the classic yardstick: exact control-message counts for
//    one recovery episode under each algorithm, as a per-kind breakdown.
//    The simulator's per-kind counters must match these exactly for clean
//    (restart-free) episodes; bench T5 verifies it.
//
//  * LatencyModel — the paper's proposed replacement yardstick: recovery
//    latency as the sum of detection, stable-storage, communication and
//    replay terms. Communication enters multiplied by per-hop latency,
//    storage by the restore volume — making "which factor dominates" a
//    computable question instead of a rhetorical one.
//
// Both models describe a *batch* episode: k processes crash closely
// together, one leader recovers them in a single round. Concurrent-failure
// restarts re-run the inc/dep phases; the models expose that as a
// parameter instead of hiding it.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "recovery/recovery_manager.hpp"

namespace rr::analysis {

/// Per-kind control-message counts for one recovery episode (counted as
/// transmissions, matching the "recovery.msg.*" metrics).
struct MessageBreakdown {
  std::uint64_t ord_request{0};
  std::uint64_t ord_reply{0};
  std::uint64_t rset_request{0};
  std::uint64_t rset_reply{0};
  std::uint64_t inc_request{0};
  std::uint64_t inc_reply{0};
  std::uint64_t dep_request{0};
  std::uint64_t dep_reply{0};
  std::uint64_t dep_install{0};
  std::uint64_t recovery_complete{0};

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::string to_string() const;
};

struct MessageModelInputs {
  recovery::Algorithm algorithm{recovery::Algorithm::kNonBlocking};
  std::uint32_t n{8};  ///< application processes
  std::uint32_t k{1};  ///< simultaneously recovering processes (one batch)
  /// Completed gather rounds (1 = clean episode; each concurrent-failure
  /// restart abandons a round's phases and re-runs them).
  std::uint32_t rounds{1};
  /// Leader-watch / new-failure RSet polls issued by recovering processes
  /// while waiting (time-dependent; measured, not predicted).
  std::uint32_t progress_polls{0};
};

/// Exact control-message counts for the episode. Excludes replay traffic
/// (ReplayRequest/Data, retransmissions), which is workload-dependent.
[[nodiscard]] MessageBreakdown predict_messages(const MessageModelInputs& in);

/// Latency model inputs: the four factors the paper weighs.
struct LatencyModelInputs {
  // Detection: local supervisor delay before the restart begins.
  Duration supervisor_delay{seconds(2)};

  // Stable storage: restore = incarnation read + write, checkpoint pointer
  // + block read (4 positioning operations + the image transfer).
  Duration storage_seek{milliseconds(12)};
  double storage_bytes_per_second{2.0 * 1024 * 1024};
  std::uint64_t checkpoint_bytes{1 << 20};

  // Communication: the gather's sequential round-trips.
  Duration hop_latency{microseconds(250)};
  recovery::Algorithm algorithm{recovery::Algorithm::kNonBlocking};
  std::uint32_t k{1};  ///< batch size (k > 1 adds the inc phase round trip)

  // Replay: logged receipts re-executed at a fixed CPU cost each.
  std::uint64_t replay_messages{1000};
  Duration replay_cost_per_message{microseconds(50)};
};

struct LatencyBreakdown {
  Duration detect{0};
  Duration restore{0};
  Duration gather{0};
  Duration replay{0};

  [[nodiscard]] Duration total() const { return detect + restore + gather + replay; }
  /// Fraction of total attributable to communication (the old yardstick).
  [[nodiscard]] double communication_share() const;
  [[nodiscard]] std::string to_string() const;
};

/// First-order recovery latency for a clean single-batch episode.
[[nodiscard]] LatencyBreakdown predict_latency(const LatencyModelInputs& in);

}  // namespace rr::analysis
