// Node — one process's full runtime.
//
// Glues every layer together around a single application instance:
//
//   network demux ─→ FBL logging engine ─→ application handlers
//         │                │
//         ├─→ heartbeat ─→ failure detector
//         ├─→ checkpoint notices ─→ log GC
//         └─→ control frames ─→ recovery manager / replay engine
//
// and owns the crash/restore lifecycle. A crash wipes everything volatile
// (engine, application, queues, timers) and goes network-dark; the local
// supervisor notices after `supervisor_restart_delay` (the paper's
// "timeouts and retrials" detection term), restores the incarnation
// counter and the latest checkpoint from stable storage, and hands control
// to the recovery manager. Every step is measured: the per-recovery phase
// timeline (detect / restore / gather / replay) is what benches T1/T2
// print against the paper's numbers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "app/application.hpp"
#include "common/types.hpp"
#include "detect/failure_detector.hpp"
#include "fbl/engine.hpp"
#include "metrics/counters.hpp"
#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "obs/span.hpp"
#include "recovery/output_commit.hpp"
#include "recovery/recovery_manager.hpp"
#include "recovery/replay.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"
#include "storage/checkpoint_store.hpp"
#include "storage/stable_storage.hpp"
#include "trace/trace.hpp"

namespace rr::runtime {

struct NodeConfig {
  ProcessId id;
  std::uint32_t num_processes{0};
  std::uint32_t f{1};
  ProcessId ord_service;
  /// Piggyback pruning (see fbl::EngineConfig): off = the un-pruned O(n)
  /// baseline for the scale bench and the equivalence property test.
  bool prune_piggyback{true};
  recovery::RecoveryConfig recovery;
  detect::DetectorConfig detector;
  storage::StorageConfig storage;
  /// Reliable-delivery transport between app processes (off = passthrough,
  /// the paper's perfect-fabric assumption). Enable alongside link faults.
  net::TransportConfig transport;
  /// Independent checkpoint cadence.
  Duration checkpoint_period = seconds(10);
  /// Crash-to-restore-start delay (local watchdog detection).
  Duration supervisor_restart_delay = seconds(2);
  /// CPU cost of re-executing one message during replay.
  Duration replay_delivery_cost = microseconds(50);
  /// Asynchronous determinant flush cadence for the f = n instance.
  Duration det_flush_period = milliseconds(250);
  /// Optional structured protocol trace (owned by the cluster).
  trace::TraceLog* trace{nullptr};
  /// Optional causal span tracer (owned by the cluster). The node reports
  /// its lifecycle edges (crash / restore / recovery-complete) and hands the
  /// tap to its stable-storage device.
  obs::SpanTracer* tracer{nullptr};
};

/// Completed-recovery measurement, one entry per recovery of this node.
struct RecoveryTimeline {
  Incarnation inc{0};
  Time crashed_at{0};
  Time restore_started{0};
  Time restored_at{0};
  Time installed_at{0};
  Time completed_at{0};
  std::size_t replayed{0};
  std::size_t gather_restarts_seen{0};

  [[nodiscard]] Duration detect() const { return restore_started - crashed_at; }
  [[nodiscard]] Duration restore() const { return restored_at - restore_started; }
  [[nodiscard]] Duration gather() const { return installed_at - restored_at; }
  [[nodiscard]] Duration replay() const { return completed_at - installed_at; }
  [[nodiscard]] Duration total() const { return completed_at - crashed_at; }
};

class Node : public net::Endpoint {
 public:
  Node(sim::Simulator& sim, net::Network& network, NodeConfig config,
       std::unique_ptr<app::Application> application, std::vector<ProcessId> processes,
       metrics::Registry& metrics);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Initial boot: persist incarnation 1 and a pre-start checkpoint, then
  /// run the application's on_start. Asynchronous (storage latency).
  void start();

  /// Failure injection: crash-stop now. Safe at any point in the lifecycle
  /// (including mid-restore); the supervisor restarts after the configured
  /// delay.
  void crash();

  // net::Endpoint
  void deliver(ProcessId src, Bytes payload) override;

  // --- introspection ----------------------------------------------------

  [[nodiscard]] ProcessId id() const noexcept { return config_.id; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] bool recovering() const noexcept { return recovering_; }
  [[nodiscard]] bool delivery_blocked() const noexcept { return delivery_blocked_; }
  [[nodiscard]] Incarnation incarnation() const noexcept { return inc_; }
  [[nodiscard]] const app::Application& application() const { return *app_; }
  [[nodiscard]] app::Application& application() { return *app_; }
  [[nodiscard]] const fbl::LoggingEngine& engine() const { return engine_; }
  [[nodiscard]] const recovery::RecoveryManager& recovery_manager() const { return recovery_; }
  [[nodiscard]] storage::StableStorage& stable_storage() { return storage_; }
  [[nodiscard]] const net::ReliableTransport& transport() const { return transport_; }

  /// Total time application delivery was blocked by the recovery protocol
  /// (the paper's live-process intrusion metric).
  [[nodiscard]] Duration blocked_time() const { return blocked_.total(sim_.now()); }
  [[nodiscard]] std::uint64_t blocked_episodes() const { return blocked_.episodes(); }

  [[nodiscard]] const std::vector<RecoveryTimeline>& recoveries() const { return timelines_; }

  /// Messages the application delivered (includes replayed deliveries).
  [[nodiscard]] std::uint64_t app_delivered() const noexcept { return app_delivered_; }

  /// Inject an application send from outside a handler (examples/tests).
  void app_send(ProcessId to, Bytes payload);

  /// Queue an external output through the output-commit barrier.
  std::uint64_t commit_output(Bytes payload);

  /// Initiate a Chandy-Lamport snapshot with the given unique id; poll
  /// take_completed_snapshot() for the assembled result.
  void start_snapshot(std::uint64_t id);
  [[nodiscard]] std::optional<snapshot::GlobalSnapshot> take_completed_snapshot() {
    return snapshot_.take_completed();
  }

  /// Outputs actually released to the external world (survives crashes —
  /// the world does not forget). Pairs of (output id, payload).
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, Bytes>>& released_outputs() const {
    return released_outputs_;
  }
  [[nodiscard]] std::size_t outputs_pending() const { return outputs_.pending(); }

 private:
  class Ctx;

  // Lifecycle.
  void begin_restore();
  void finish_restore(const fbl::Checkpoint& cp);
  void load_stable_dets(std::vector<std::string> keys, fbl::Checkpoint cp);
  void finish_recovery();

  // Receive path.
  void handle_wire(ProcessId src, std::span<const std::byte> payload);
  void handle_app_frame(ProcessId src, fbl::AppFrame frame);
  void try_deliver_app(ProcessId src, const fbl::AppFrame& frame);
  void drain_held(ProcessId src);
  void drain_blocked();
  void drain_pending_fresh();

  // Send path.
  void transmit_app_frame(ProcessId to, fbl::LoggingEngine::SendResult&& res);
  void confirm_piggyback_marks(ProcessId dst, std::uint64_t msg);

  // Control path.
  void send_control(ProcessId to, const recovery::ControlMessage& m);
  void broadcast_control(const recovery::ControlMessage& m);
  void handle_replay_request(ProcessId src, const recovery::ReplayRequest& req);
  void on_install(const recovery::DepInstall& install);
  void on_peer_recovered(ProcessId peer, const recovery::RecoveryComplete& m);
  void set_delivery_blocked(bool blocked);
  void set_defer_unsafe(const std::set<ProcessId>& rset);
  void sync_log_then_send(ProcessId to, const recovery::ControlMessage& m);
  [[nodiscard]] bool references_deferred(const fbl::AppFrame& frame) const;
  void drain_deferred();

  // Maintenance.
  void take_checkpoint();
  void flush_unstable_dets();
  void send_heartbeats();

  [[nodiscard]] std::string inc_key() const;
  [[nodiscard]] std::string det_block_key(std::uint64_t seq) const;
  [[nodiscard]] fbl::HolderMask mask_of(const std::vector<ProcessId>& pids) const;

  sim::Simulator& sim_;
  net::Network& network_;
  NodeConfig config_;
  metrics::Registry& metrics_;
  std::vector<ProcessId> processes_;  // app processes, sorted, incl. self
  net::ReliableTransport transport_;

  std::unique_ptr<app::Application> app_;
  std::unique_ptr<Ctx> ctx_;
  fbl::LoggingEngine engine_;
  storage::StableStorage storage_;
  storage::CheckpointStore ckpts_;
  detect::FailureDetector detector_;
  recovery::RecoveryManager recovery_;
  recovery::ReplayEngine replay_;
  recovery::OutputCommitManager outputs_;
  snapshot::SnapshotManager snapshot_;

  // Lifecycle state.
  std::uint64_t epoch_{0};  // bumped on crash; stale async callbacks bail
  bool alive_{false};
  bool started_{false};
  bool recovering_{false};
  bool needs_onstart_replay_{false};
  Incarnation inc_{0};

  // Delivery gating.
  bool delivery_blocked_{false};
  metrics::IntervalTracker blocked_;
  std::deque<std::pair<ProcessId, fbl::AppFrame>> blocked_queue_;
  std::deque<std::pair<ProcessId, fbl::AppFrame>> pending_fresh_;  // while recovering
  std::deque<std::pair<ProcessId, fbl::AppFrame>> pre_start_queue_;
  std::map<ProcessId, std::map<Ssn, fbl::AppFrame>> held_ooo_;

  // Defer-unsafe comparator (Algorithm::kDeferUnsafe): while non-empty,
  // application frames piggybacking determinants destined to these
  // recovering processes are held back.
  std::set<ProcessId> defer_rset_;
  struct DeferredFrame {
    ProcessId src;
    fbl::AppFrame frame;
    Time held_since{0};
  };
  std::deque<DeferredFrame> deferred_queue_;
  std::uint64_t sync_log_seq_{0};

  // Deferred holder marking (lossy fabric): determinants piggybacked on an
  // app frame are counted at the destination only once the transport's
  // cumulative ack covers the frame's message index. Per destination, in
  // send order; cleared with the transport's state on crash/restore.
  struct PendingMarks {
    std::uint64_t msg{0};
    std::vector<fbl::Determinant> dets;
  };
  std::map<ProcessId, std::deque<PendingMarks>> pending_marks_;

  // Replay-time send suppression: per live peer, the ssn it already
  // delivered from us (from DepInstall live_marks).
  fbl::Watermarks suppress_marks_;

  // Maintenance timers.
  sim::RepeatingTimer checkpoint_timer_;
  sim::RepeatingTimer det_flush_timer_;
  std::uint64_t det_block_seq_{0};
  std::vector<std::string> det_blocks_written_;
  bool det_flush_inflight_{false};

  // External world (never cleared by crashes).
  std::vector<std::pair<std::uint64_t, Bytes>> released_outputs_;
  std::uint64_t last_released_output_{0};

  // Measurement.
  std::uint64_t app_delivered_{0};
  std::optional<RecoveryTimeline> current_recovery_;
  std::vector<RecoveryTimeline> timelines_;
};

}  // namespace rr::runtime
