#include "runtime/cluster.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "fbl/frame.hpp"
#include "net/reliable.hpp"

namespace rr::runtime {

Cluster::Cluster(ClusterConfig config, const app::AppFactory& factory)
    : config_(config),
      sim_(config.seed),
      network_(sim_, config.net, metrics_),
      ord_(kOrdServiceId, network_, metrics_) {
  RR_CHECK_MSG(config_.num_processes >= 2, "need at least two processes");
  RR_CHECK_MSG(config_.num_processes <= fbl::kMaxProcesses,
               "holder masks support at most 1024 processes");
  RR_CHECK_MSG(config_.f >= 1 && config_.f <= config_.num_processes, "1 <= f <= n required");

  network_.attach(kOrdServiceId, ord_);
  // The ord service is infrastructure: its links never take the lossy
  // profile (partitions around an app process still cut them).
  network_.set_fault_exempt(kOrdServiceId);
  if (config_.enable_trace) trace_ = std::make_unique<trace::TraceLog>();
  if (config_.enable_spans) {
    obs::SpanTracerConfig sc;
    sc.num_nodes = config_.num_processes;
    sc.flight_capacity = config_.flight_capacity;
    // The fbl frame layer owns the wire format: control frames are the
    // recovery protocol's traffic, and their first byte is the FrameKind.
    sc.ctrl_frame_byte = static_cast<std::uint32_t>(fbl::FrameKind::kControl);
    tracer_ = std::make_unique<obs::SpanTracer>(sc, metrics_);
    network_.set_tracer(tracer_.get());
  }
  if (config_.enable_ledger) {
    obs::CostLedgerConfig lc;
    lc.num_nodes = config_.num_processes;
    lc.prune_piggyback = config_.prune_piggyback;
    lc.sample_every = config_.ledger_sample_every;
    // The transport's framing magic crosses the obs layering boundary as
    // plain config — obs must not include net (rrlint L1).
    lc.transport_data_byte = net::ReliableTransport::kDataByte;
    lc.transport_ack_byte = net::ReliableTransport::kAckByte;
    ledger_ = std::make_unique<obs::CostLedger>(lc, metrics_);
    network_.set_ledger(ledger_.get());
    if (config_.ledger_sample_every > 0) {
      ledger_timer_ = std::make_unique<sim::RepeatingTimer>(
          sim_, config_.ledger_sample_every, [this] { sample_ledger_now(); });
      ledger_timer_->start();
    }
  }

  pids_.reserve(config_.num_processes);
  for (std::uint32_t i = 0; i < config_.num_processes; ++i) pids_.push_back(ProcessId{i});

  config_.recovery.algorithm = config_.algorithm;
  // Every phase firing (nodes and ord service alike) is recorded on the
  // trace and forwarded to the settable probe. The user's own phase_hook,
  // if any, is chained in front.
  auto user_hook = config_.recovery.phase_hook;
  config_.recovery.phase_hook = [this, user_hook](const recovery::PhaseEventInfo& info) {
    if (user_hook) user_hook(info);
    if (trace_) {
      trace_->record(sim_.now(), trace::PhaseEvent{info.pid, info.phase, info.round, info.ord,
                                                   info.subject});
    }
    if (tracer_) tracer_->on_phase(sim_.now(), info);
    if (phase_probe_) phase_probe_(info);
  };
  ord_.set_phase_hook(config_.recovery.phase_hook);
  for (const ProcessId pid : pids_) {
    NodeConfig nc;
    nc.id = pid;
    nc.num_processes = config_.num_processes;
    nc.f = config_.f;
    nc.ord_service = kOrdServiceId;
    nc.prune_piggyback = config_.prune_piggyback;
    nc.recovery = config_.recovery;
    nc.detector = config_.detector;
    nc.storage = config_.storage;
    nc.transport = config_.transport;
    nc.checkpoint_period = config_.checkpoint_period;
    nc.supervisor_restart_delay = config_.supervisor_restart_delay;
    nc.replay_delivery_cost = config_.replay_delivery_cost;
    nc.det_flush_period = config_.det_flush_period;
    nc.trace = trace_.get();
    nc.tracer = tracer_.get();
    nodes_.push_back(
        std::make_unique<Node>(sim_, network_, nc, factory(pid), pids_, metrics_));
  }
}

void Cluster::start() {
  for (auto& n : nodes_) n->start();
}

Node& Cluster::node(ProcessId id) {
  RR_CHECK(id.value < nodes_.size());
  return *nodes_[id.value];
}

void Cluster::crash_at(ProcessId id, Time t) {
  RR_CHECK(id.value < nodes_.size());
  sim_.schedule_at(t, [this, id] { nodes_[id.value]->crash(); });
}

bool Cluster::all_idle() const {
  return std::all_of(nodes_.begin(), nodes_.end(), [](const auto& n) {
    return n->alive() && n->started() && !n->recovering() && !n->delivery_blocked();
  });
}

bool Cluster::any_recovering() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const auto& n) { return !n->alive() || n->recovering(); });
}

Duration Cluster::total_blocked_time() const {
  Duration total = 0;
  for (const auto& n : nodes_) total += n->blocked_time();
  return total;
}

Duration Cluster::max_blocked_time() const {
  Duration best = 0;
  for (const auto& n : nodes_) best = std::max(best, n->blocked_time());
  return best;
}

std::vector<RecoveryTimeline> Cluster::all_recoveries() const {
  std::vector<RecoveryTimeline> out;
  for (const auto& n : nodes_) {
    out.insert(out.end(), n->recoveries().begin(), n->recoveries().end());
  }
  std::sort(out.begin(), out.end(), [](const RecoveryTimeline& a, const RecoveryTimeline& b) {
    return a.completed_at < b.completed_at;
  });
  return out;
}

std::uint64_t Cluster::state_hash() const {
  Hasher h;
  for (const auto& n : nodes_) {
    h.mix_u64(n->id().value);
    h.mix_u64(n->application().state_hash());
  }
  return h.digest();
}

trace::CheckResult Cluster::check_history() const {
  RR_CHECK_MSG(trace_ != nullptr, "enable_trace must be set to check history");
  // The V9 exactly-once pass only holds when protocol traffic rode the
  // reliable transport — on the bare fabric, dropped frames stay lost.
  trace::CheckResult result = trace::check_history(*trace_, 16, config_.transport.enabled);
  // V10 cost conservation rides along whenever the ledger is armed: the
  // wire-side attribution must partition net.bytes and agree per control
  // kind with the recovery layer's own counters.
  if (ledger_ != nullptr) {
    for (std::string& v : ledger_->audit(metrics_)) {
      result.ok = false;
      result.violations.push_back(std::move(v));
    }
  }
  return result;
}

void Cluster::sample_ledger_now() {
  RR_CHECK_MSG(ledger_ != nullptr, "enable_ledger must be set to sample");
  std::vector<std::uint64_t> blocked;
  blocked.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    blocked.push_back(static_cast<std::uint64_t>(n->blocked_time()));
  }
  ledger_->take_sample(sim_.now(), blocked);
}

std::uint64_t Cluster::total_app_delivered() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->app_delivered();
  return total;
}

}  // namespace rr::runtime
