// Cluster — builds and drives a whole simulated system.
//
// Owns the simulator, the network, the never-failing ord service and one
// Node per process; provides failure injection and the query surface the
// tests and benches use (blocked time, recovery timelines, combined state
// hashes). Everything is deterministic in (config, seed).
#pragma once

#include <memory>
#include <vector>

#include "app/application.hpp"
#include "common/types.hpp"
#include "detect/failure_detector.hpp"
#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "obs/ledger.hpp"
#include "obs/span.hpp"
#include "recovery/ord_service.hpp"
#include "recovery/recovery_manager.hpp"
#include "runtime/node.hpp"
#include "sim/simulator.hpp"
#include "storage/stable_storage.hpp"
#include "trace/history_checker.hpp"
#include "trace/trace.hpp"

namespace rr::runtime {

struct ClusterConfig {
  std::uint32_t num_processes{8};
  /// Failures to tolerate (FBL parameter); f == num_processes selects the
  /// stable-storage (Manetho-style) instance.
  std::uint32_t f{2};
  recovery::Algorithm algorithm{recovery::Algorithm::kNonBlocking};
  std::uint64_t seed{1};
  /// Piggyback pruning (default on); off = the un-pruned baseline where
  /// every frame carries the sender's whole active determinant set.
  bool prune_piggyback{true};

  net::NetworkConfig net;
  /// Reliable transport between app processes; enable when net.faults (or a
  /// schedule's loss/partition coordinates) degrade the fabric.
  net::TransportConfig transport;
  storage::StorageConfig storage;
  detect::DetectorConfig detector;
  recovery::RecoveryConfig recovery;  // .algorithm is overridden by `algorithm`

  Duration checkpoint_period = seconds(10);
  Duration supervisor_restart_delay = seconds(2);
  Duration replay_delivery_cost = microseconds(50);
  Duration det_flush_period = milliseconds(250);
  /// Record a structured protocol trace (memory ∝ traffic; off by default).
  bool enable_trace{false};
  /// Record causal spans (recovery phases, control-packet transit,
  /// stable-storage intervals) into an obs::SpanTracer; off by default.
  bool enable_spans{false};
  /// Flight-recorder ring size per node when enable_spans is set.
  std::uint32_t flight_capacity{64};
  /// Attribute every wire byte to a cost category (obs::CostLedger) and arm
  /// the V10 cost-conservation oracle in check_history(); off by default.
  bool enable_ledger{false};
  /// Timeline sampling period for the ledger (sim-time driven); 0 keeps the
  /// byte ledger without a timeline — and without any extra sim events, so
  /// replay schedules recorded before the ledger existed stay valid.
  Duration ledger_sample_every{0};
};

class Cluster {
 public:
  Cluster(ClusterConfig config, const app::AppFactory& factory);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Boot every node (asynchronous; run the simulation to complete it).
  void start();

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] metrics::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const metrics::Registry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  [[nodiscard]] Node& node(ProcessId id);
  [[nodiscard]] Node& node(std::uint32_t index) { return node(ProcessId{index}); }
  [[nodiscard]] const std::vector<ProcessId>& pids() const noexcept { return pids_; }
  [[nodiscard]] const recovery::OrdService& ord_service() const noexcept { return ord_; }

  /// Schedule a crash of `id` at absolute time `t`. Crashing a process
  /// that is already down re-fails its restart machinery: any in-progress
  /// restore is abandoned and the supervisor delay starts over (this is
  /// how "the leader fails during recovery" scenarios are driven).
  void crash_at(ProcessId id, Time t);

  void run_until(Time t) { sim_.run_until(t); }
  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  // --- queries ------------------------------------------------------------

  /// Every process alive, started, not recovering, not blocked.
  [[nodiscard]] bool all_idle() const;
  [[nodiscard]] bool any_recovering() const;

  [[nodiscard]] Duration total_blocked_time() const;
  [[nodiscard]] Duration max_blocked_time() const;

  /// Completed recoveries across all nodes, ordered by completion time.
  [[nodiscard]] std::vector<RecoveryTimeline> all_recoveries() const;

  /// Combined digest of all application states (determinism oracle).
  [[nodiscard]] std::uint64_t state_hash() const;

  /// Total application messages delivered across the cluster.
  [[nodiscard]] std::uint64_t total_app_delivered() const;

  /// Structured protocol trace (nullptr unless enable_trace).
  [[nodiscard]] const trace::TraceLog* trace() const noexcept { return trace_.get(); }

  /// Causal span tracer (nullptr unless enable_spans).
  [[nodiscard]] const obs::SpanTracer* spans() const noexcept { return tracer_.get(); }

  /// Cost-attribution ledger (nullptr unless enable_ledger).
  [[nodiscard]] const obs::CostLedger* ledger() const noexcept { return ledger_.get(); }

  /// Append one timeline sample at the current sim time (requires
  /// enable_ledger). The sampler timer calls this on its cadence; callers
  /// invoke it once more after the run so the final sample's blocked-time
  /// column equals the scalar total_blocked_time() exactly.
  void sample_ledger_now();

  /// Run the global history checker on the recorded trace (requires
  /// enable_trace).
  [[nodiscard]] trace::CheckResult check_history() const;

  /// ProcessId of the never-failing ord/registry service — one past the
  /// holder-mask capacity so it can never collide with an app process
  /// (pids 0..fbl::kMaxProcesses-1; the service holds no determinants).
  static constexpr ProcessId kOrdServiceId{1025};

  /// Observe protocol phase boundaries (see recovery/phase_hook.hpp) from
  /// every node and the ord service. The probe runs in addition to trace
  /// recording; the fault-schedule explorer uses it to place crashes at
  /// exact protocol states. Settable any time, including before start().
  void set_phase_probe(recovery::PhaseHook probe) { phase_probe_ = std::move(probe); }

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  metrics::Registry metrics_;
  net::Network network_;
  recovery::OrdService ord_;
  std::unique_ptr<trace::TraceLog> trace_;
  std::unique_ptr<obs::SpanTracer> tracer_;
  std::unique_ptr<obs::CostLedger> ledger_;
  std::unique_ptr<sim::RepeatingTimer> ledger_timer_;
  std::vector<ProcessId> pids_;
  std::vector<std::unique_ptr<Node>> nodes_;
  recovery::PhaseHook phase_probe_;
};

}  // namespace rr::runtime
