#include "runtime/node.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "fbl/frame.hpp"

namespace rr::runtime {

using recovery::ControlMessage;

/// AppContext implementation handed to application handlers.
class Node::Ctx : public app::AppContext {
 public:
  explicit Ctx(Node& node) : node_(node) {}

  void send(ProcessId to, Bytes payload) override { node_.app_send(to, std::move(payload)); }
  std::uint64_t commit_output(Bytes payload) override {
    return node_.commit_output(std::move(payload));
  }
  [[nodiscard]] ProcessId self() const override { return node_.id(); }
  [[nodiscard]] const std::vector<ProcessId>& processes() const override {
    return node_.processes_;
  }

 private:
  Node& node_;
};

Node::Node(sim::Simulator& sim, net::Network& network, NodeConfig config,
           std::unique_ptr<app::Application> application, std::vector<ProcessId> processes,
           metrics::Registry& metrics)
    : sim_(sim),
      network_(network),
      config_(config),
      metrics_(metrics),
      processes_(std::move(processes)),
      transport_(sim, network, config.id, config.transport, metrics),
      app_(std::move(application)),
      ctx_(std::make_unique<Ctx>(*this)),
      engine_(fbl::EngineConfig{config.id, config.num_processes, config.f,
                                  config.prune_piggyback, config.transport.enabled}),
      storage_(sim, config.storage, metrics, "storage"),
      ckpts_(storage_, config.id),
      detector_(
          sim, config.id, config.detector, [this] { send_heartbeats(); },
          [this](ProcessId peer, bool suspected) {
            if (config_.trace != nullptr) {
              config_.trace->record(sim_.now(),
                                    trace::SuspectEvent{config_.id, peer, suspected});
            }
            recovery_.on_suspicion(peer, suspected);
          }),
      recovery_(
          sim, config.id, config.ord_service, config.recovery,
          recovery::RecoveryManager::Hooks{
              .send_ctrl = [this](ProcessId to,
                                  const ControlMessage& m) { send_control(to, m); },
              .broadcast_ctrl = [this](const ControlMessage& m) { broadcast_control(m); },
              .my_incarnation = [this] { return inc_; },
              .all_processes = [this] { return processes_; },
              .is_suspected = [this](ProcessId p) { return detector_.suspects(p); },
              .depinfo_slice =
                  [this](const std::vector<ProcessId>& rset) {
                    return engine_.det_log().slice_for(mask_of(rset));
                  },
              .marks_for =
                  [this](const std::vector<ProcessId>& rset) {
                    fbl::Watermarks out;
                    for (const ProcessId p : rset) {
                      out[p] = fbl::watermark_of(engine_.recv_marks(), p);
                    }
                    return out;
                  },
              .set_delivery_blocked = [this](bool b) { set_delivery_blocked(b); },
              .set_defer_unsafe =
                  [this](const std::set<ProcessId>& rset) { set_defer_unsafe(rset); },
              .sync_log_then_send =
                  [this](ProcessId to, const ControlMessage& m) {
                    sync_log_then_send(to, m);
                  },
              .install = [this](const recovery::DepInstall& i) { on_install(i); },
              .peer_recovered =
                  [this](ProcessId peer, const recovery::RecoveryComplete& m) {
                    on_peer_recovered(peer, m);
                  },
              .floor_raised =
                  [this](ProcessId about, Incarnation inc) {
                    if (config_.trace != nullptr) {
                      config_.trace->record(sim_.now(),
                                            trace::FloorEvent{config_.id, about, inc});
                    }
                  },
          },
          metrics),
      replay_(
          sim, config.id, config.replay_delivery_cost,
          recovery::ReplayEngine::Hooks{
              .deliver =
                  [this](const fbl::HeldDeterminant& h, const Bytes& payload) {
                    engine_.deliver_replayed(h.det, h.holders);
                    ++app_delivered_;
                    metrics_.counter("replay.delivered").add();
                    if (config_.trace != nullptr) {
                      config_.trace->record(
                          sim_.now(), trace::DeliverEvent{config_.id, h.det.source, h.det.ssn,
                                                          h.det.rsn, inc_, true});
                    }
                    app_->on_message(*ctx_, h.det.source, payload);
                  },
              .request_payloads =
                  [this](ProcessId source, std::vector<Ssn> ssns) {
                    send_control(source, recovery::ReplayRequest{std::move(ssns)});
                  },
              .on_complete = [this] { finish_recovery(); },
          }),
      outputs_(
          sim, config.id, config.f,
          config.f >= config.num_processes,
          recovery::OutputCommitManager::Hooks{
              .send_ctrl = [this](ProcessId to,
                                  const ControlMessage& m) { send_control(to, m); },
              .det_log = [this]() -> const fbl::DeterminantLog& { return engine_.det_log(); },
              .add_holders =
                  [this](const fbl::Determinant& d, fbl::HolderMask extra) {
                    engine_.det_log().add_holders(d, extra);
                  },
              .peers = [this] { return processes_; },
              .is_suspected = [this](ProcessId p) { return detector_.suspects(p); },
              .force_flush = [this] { flush_unstable_dets(); },
              .release =
                  [this](std::uint64_t id, const Bytes& payload) {
                    // The external world dedups regenerated outputs by id.
                    if (id <= last_released_output_) {
                      metrics_.counter("output.duplicates_suppressed").add();
                      return;
                    }
                    last_released_output_ = id;
                    released_outputs_.emplace_back(id, payload);
                  },
          },
          metrics),
      snapshot_(
          config.id,
          snapshot::SnapshotManager::Hooks{
              .send_frame =
                  [this](ProcessId to, Bytes frame) {
                    metrics_.counter("snapshot.frames").add();
                    transport_.send(to, std::move(frame));
                  },
              .peers =
                  [this] {
                    std::vector<ProcessId> out;
                    for (const ProcessId p : processes_) {
                      if (p != config_.id) out.push_back(p);
                    }
                    return out;
                  },
              .local_cut =
                  [this] {
                    snapshot::LocalCut cut;
                    cut.app_hash = app_->state_hash();
                    cut.rsn = engine_.rsn();
                    cut.send_seq = engine_.send_seq();
                    cut.recv_marks = engine_.recv_marks();
                    return cut;
                  },
          },
          metrics),
      checkpoint_timer_(sim, config.checkpoint_period, [this] { take_checkpoint(); }),
      det_flush_timer_(sim, config.det_flush_period, [this] { flush_unstable_dets(); }) {
  RR_CHECK(app_ != nullptr);
  RR_CHECK(std::is_sorted(processes_.begin(), processes_.end()));
  if (config_.tracer != nullptr) {
    storage_.set_tracer(config_.tracer, config_.id.value);
  }
  // The ordinal service speaks its own raw request/reply protocol and is
  // infrastructure, not a lossy hop — never wrap traffic toward it.
  transport_.set_raw_peer(config_.ord_service);
  transport_.set_deliver([this](ProcessId src, const Bytes& payload, std::size_t offset) {
    handle_wire(src, std::span<const std::byte>(payload).subspan(offset));
  });
  transport_.set_peer_signal([this](ProcessId peer, bool unreachable) {
    if (!unreachable) return;
    metrics_.counter("transport.peers_reported").add();
    detector_.report_unreachable(peer);
  });
  transport_.set_ack_signal([this](ProcessId dst, std::uint64_t msg) {
    confirm_piggyback_marks(dst, msg);
  });
  network_.attach(config_.id, *this);
  network_.set_up(config_.id, false);  // dark until start()
}

Node::~Node() { network_.detach(config_.id); }

std::string Node::inc_key() const { return "inc/" + std::to_string(config_.id.value); }

std::string Node::det_block_key(std::uint64_t seq) const {
  return "dets/" + std::to_string(config_.id.value) + "/" + std::to_string(seq);
}

fbl::HolderMask Node::mask_of(const std::vector<ProcessId>& pids) const {
  fbl::HolderMask m = 0;
  for (const ProcessId p : pids) m |= fbl::holder_bit(p);
  return m;
}

// --- lifecycle -----------------------------------------------------------

void Node::start() {
  RR_CHECK_MSG(!alive_, "start() is for the initial boot only");
  alive_ = true;
  inc_ = 1;
  network_.set_up(config_.id, true);
  transport_.reset(inc_);
  const auto epoch = epoch_;

  BufWriter w;
  w.u32(inc_);
  storage_.write(inc_key(), std::move(w).take(), [this, epoch] {
    if (epoch != epoch_) return;
    // Pre-start checkpoint: recovery from it re-executes on_start.
    fbl::Checkpoint cp = engine_.make_checkpoint(app_->snapshot());
    cp.app_started = false;
    const Time snapped_at = sim_.now();
    storage::CheckpointStore::SaveCallback done = [this, epoch, snapped_at](std::uint64_t) {
      if (config_.trace != nullptr) {
        config_.trace->record(snapped_at, trace::CheckpointEvent{config_.id, 0});
      }
      if (epoch != epoch_) return;
      started_ = true;
      detector_.set_peers(processes_);
      detector_.start();
      // Desynchronize checkpoint cadence across nodes deterministically.
      checkpoint_timer_.start_after(config_.checkpoint_period +
                                    milliseconds(37) * (config_.id.value + 1));
      if (engine_.stable_instance()) det_flush_timer_.start();
      app_->on_start(*ctx_);
      while (!pre_start_queue_.empty()) {
        auto [src, frame] = std::move(pre_start_queue_.front());
        pre_start_queue_.pop_front();
        handle_app_frame(src, std::move(frame));
      }
    };
    ckpts_.save(cp.encode(), std::move(done));
  });
}

void Node::crash() {
  metrics_.counter("node.crashes").add();
  if (config_.trace != nullptr) {
    config_.trace->record(sim_.now(), trace::CrashEvent{config_.id, inc_});
  }
  if (config_.tracer != nullptr) config_.tracer->on_crash(sim_.now(), config_.id.value, inc_);
  RR_INFO("node", "%s crashed (inc %u)", to_string(config_.id).c_str(), inc_);
  ++epoch_;
  alive_ = false;
  started_ = false;
  recovering_ = false;
  needs_onstart_replay_ = false;
  network_.set_up(config_.id, false);
  transport_.reset(0);  // a down node has no transport state
  detector_.stop();
  checkpoint_timer_.stop();
  det_flush_timer_.stop();
  det_flush_inflight_ = false;
  if (delivery_blocked_) blocked_.end(sim_.now());
  delivery_blocked_ = false;
  blocked_queue_.clear();
  pending_fresh_.clear();
  pre_start_queue_.clear();
  held_ooo_.clear();
  defer_rset_.clear();
  deferred_queue_.clear();
  suppress_marks_.clear();
  pending_marks_.clear();
  recovery_.reset_for_restart();
  replay_.reset();
  outputs_.reset();
  snapshot_.reset();
  engine_ = fbl::LoggingEngine(fbl::EngineConfig{config_.id, config_.num_processes, config_.f,
                                                 config_.prune_piggyback,
                                                 config_.transport.enabled});

  if (current_recovery_) metrics_.counter("recovery.abandoned").add();
  current_recovery_ = RecoveryTimeline{};
  current_recovery_->crashed_at = sim_.now();

  const auto epoch = epoch_;
  sim_.schedule_after(config_.supervisor_restart_delay, [this, epoch] {
    if (epoch == epoch_ && !alive_) begin_restore();
  });
}

void Node::begin_restore() {
  current_recovery_->restore_started = sim_.now();
  if (config_.tracer != nullptr) config_.tracer->on_restore_begin(sim_.now(), config_.id.value);
  const auto epoch = epoch_;
  storage_.read(inc_key(), [this, epoch](std::optional<Bytes> blk) {
    if (epoch != epoch_) return;
    RR_CHECK_MSG(blk.has_value(), "incarnation record missing from stable storage");
    BufReader r(*blk);
    inc_ = r.u32() + 1;  // paper §3.4 step 2: incarnation <- incarnation + 1
    BufWriter w;
    w.u32(inc_);
    storage_.write(inc_key(), std::move(w).take(), [this, epoch] {
      if (epoch != epoch_) return;
      ckpts_.load_latest([this, epoch](std::optional<Bytes> blk, std::uint64_t version) {
        if (epoch != epoch_) return;
        RR_CHECK_MSG(blk.has_value(), "no committed checkpoint to restore");
        (void)version;
        fbl::Checkpoint cp = fbl::Checkpoint::decode(*blk);
        if (engine_.stable_instance()) {
          auto keys = storage_.keys_with_prefix("dets/" + std::to_string(config_.id.value) + "/");
          load_stable_dets(std::move(keys), std::move(cp));
        } else {
          finish_restore(cp);
        }
      });
    });
  });
}

void Node::load_stable_dets(std::vector<std::string> keys, fbl::Checkpoint cp) {
  // Sequentially read the post-checkpoint determinant blocks (f = n
  // instance) and merge them into the restored determinant log.
  if (keys.empty()) {
    finish_restore(cp);
    return;
  }
  const std::string key = keys.back();
  keys.pop_back();
  // Resume the block sequence beyond anything on disk.
  const auto slash = key.rfind('/');
  const std::uint64_t seq = std::stoull(key.substr(slash + 1));
  det_block_seq_ = std::max(det_block_seq_, seq + 1);
  det_blocks_written_.push_back(key);

  const auto epoch = epoch_;
  storage_.read(key, [this, epoch, keys = std::move(keys),
                      cp = std::move(cp)](std::optional<Bytes> blk) mutable {
    if (epoch != epoch_) return;
    if (blk) {
      BufReader r(*blk);
      const auto n = r.varint();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto det = fbl::Determinant::decode(r);
        cp.det_log.record(fbl::HeldDeterminant{
            det, fbl::holder_bit(config_.id) | fbl::kStableHolder});
      }
    }
    load_stable_dets(std::move(keys), std::move(cp));
  });
}

void Node::finish_restore(const fbl::Checkpoint& cp) {
  engine_ = fbl::LoggingEngine(fbl::EngineConfig{config_.id, config_.num_processes, config_.f,
                                                 config_.prune_piggyback,
                                                 config_.transport.enabled});
  engine_.load(cp);
  app_->restore(cp.app_state);
  needs_onstart_replay_ = !cp.app_started;
  alive_ = true;
  started_ = true;
  recovering_ = true;
  network_.set_up(config_.id, true);
  // The incarnation bump is the transport epoch bump: peers seeing it reset
  // their channels toward us, closing the pre-crash sequence space.
  transport_.reset(inc_);
  detector_.set_peers(processes_);
  detector_.start();
  current_recovery_->restored_at = sim_.now();
  current_recovery_->inc = inc_;
  metrics_.counter("node.restores").add();
  if (config_.tracer != nullptr) config_.tracer->on_restored(sim_.now(), config_.id.value, inc_);
  if (config_.trace != nullptr) {
    config_.trace->record(sim_.now(), trace::RestoreEvent{config_.id, inc_, cp.rsn});
  }
  RR_INFO("node", "%s restored checkpoint rsn=%llu as inc %u", to_string(config_.id).c_str(),
          static_cast<unsigned long long>(cp.rsn), inc_);
  recovery_.begin_recovery();
}

void Node::finish_recovery() {
  RR_CHECK(recovering_);
  recovering_ = false;
  current_recovery_->completed_at = sim_.now();
  current_recovery_->replayed = replay_.delivered();
  if (replay_.gaps_detected() > 0) {
    metrics_.counter("recovery.det_gaps").add(replay_.gaps_detected());
  }
  metrics_.accum("recovery.detect_ns").record_duration(current_recovery_->detect());
  metrics_.accum("recovery.restore_ns").record_duration(current_recovery_->restore());
  metrics_.accum("recovery.gather_ns").record_duration(current_recovery_->gather());
  metrics_.accum("recovery.replay_ns").record_duration(current_recovery_->replay());
  metrics_.accum("recovery.total_ns").record_duration(current_recovery_->total());
  metrics_.accum("recovery.replayed_msgs").record(
      static_cast<double>(current_recovery_->replayed));
  timelines_.push_back(*current_recovery_);
  current_recovery_.reset();
  if (config_.tracer != nullptr) {
    config_.tracer->on_recovery_complete(sim_.now(), config_.id.value);
  }

  recovery_.on_replay_complete();
  if (config_.trace != nullptr) {
    config_.trace->record(sim_.now(), trace::CompleteEvent{config_.id, inc_, engine_.rsn()});
  }
  broadcast_control(recovery::RecoveryComplete{inc_, engine_.recv_marks(), engine_.rsn()});
  replay_.reset();
  RR_INFO("node", "%s recovery complete (inc %u, rsn %llu)", to_string(config_.id).c_str(),
          inc_, static_cast<unsigned long long>(engine_.rsn()));

  drain_pending_fresh();
  checkpoint_timer_.start();
  if (engine_.stable_instance()) det_flush_timer_.start();
}

// --- receive path ---------------------------------------------------------

void Node::deliver(ProcessId src, Bytes payload) {
  if (!alive_) {
    BufferPool::global().release(std::move(payload));
    return;
  }
  // The transport demuxes (resequences/dedups/acks its own frames, passes
  // raw ones through), upcalls handle_wire with the inner frame, and
  // recycles the wire buffer afterwards.
  transport_.on_wire(src, std::move(payload));
}

void Node::handle_wire(ProcessId src, std::span<const std::byte> payload) {
  try {
    BufReader r(payload);
    switch (fbl::decode_kind(r)) {
      case fbl::FrameKind::kHeartbeat: {
        (void)fbl::HeartbeatFrame::decode(r);
        detector_.on_heartbeat(src);
        return;
      }
      case fbl::FrameKind::kCkptNotice: {
        const auto notice = fbl::CkptNoticeFrame::decode(r);
        const auto gc = engine_.on_ckpt_notice(src, notice);
        metrics_.counter("fbl.gc.send_entries").add(gc.send_entries);
        metrics_.counter("fbl.gc.determinants").add(gc.determinants);
        return;
      }
      case fbl::FrameKind::kControl: {
        auto m = recovery::decode_control(r);
        if (const auto* req = std::get_if<recovery::ReplayRequest>(&m)) {
          handle_replay_request(src, *req);
        } else if (const auto* push = std::get_if<recovery::DetPush>(&m)) {
          // Output-commit stabilization: log the determinants durably-in-
          // volatile terms (we are now one of the f+1 holders) and confirm.
          for (const auto& h : push->dets) {
            fbl::HeldDeterminant mine{h.det, h.holders | fbl::holder_bit(config_.id)};
            if (!engine_.det_log().record(mine)) {
              engine_.det_log().add_holders(mine.det, mine.holders);
            }
          }
          metrics_.counter("output.det_pushes_served").add();
          send_control(src, recovery::DetAck{push->seq});
        } else if (const auto* ack = std::get_if<recovery::DetAck>(&m)) {
          outputs_.on_ack(src, *ack);
        } else if (auto* data = std::get_if<recovery::ReplayData>(&m)) {
          if (recovering_) {
            for (auto& item : data->items) {
              metrics_.counter("replay.payloads_from_log").add();
              replay_.offer(src, item.ssn, std::move(item.payload));
            }
          }
        } else {
          recovery_.on_control(src, m);
        }
        return;
      }
      case fbl::FrameKind::kSnapshot: {
        snapshot_.on_frame(src, r);
        return;
      }
      case fbl::FrameKind::kApp: {
        handle_app_frame(src, fbl::AppFrame::decode(r));
        return;
      }
    }
  } catch (const SerdeError& e) {
    metrics_.counter("node.malformed_frames").add();
    RR_WARN("node", "%s dropped malformed frame from %s: %s", to_string(config_.id).c_str(),
            to_string(src).c_str(), e.what());
  }
}

void Node::handle_app_frame(ProcessId src, fbl::AppFrame frame) {
  if (!started_) {
    pre_start_queue_.emplace_back(src, std::move(frame));
    return;
  }
  if (recovering_) {
    // Piggybacked knowledge is valid regardless of what happens to the
    // payload; absorb it so later gathers (and our own piggybacks) see it.
    for (const auto& h : frame.dets) {
      fbl::HeldDeterminant mine{h.det, h.holders | fbl::holder_bit(config_.id)};
      if (!engine_.det_log().record(mine)) engine_.det_log().add_holders(mine.det, mine.holders);
    }
    if (replay_.installed() && replay_.needs(src, frame.ssn)) {
      metrics_.counter("replay.payloads_from_wire").add();
      replay_.offer(src, frame.ssn, std::move(frame.payload));
    } else {
      pending_fresh_.emplace_back(src, std::move(frame));
    }
    return;
  }
  if (delivery_blocked_) {
    blocked_queue_.emplace_back(src, std::move(frame));
    metrics_.counter("node.frames_blocked").add();
    return;
  }
  if (!defer_rset_.empty() && references_deferred(frame)) {
    metrics_.counter("recovery.frames_deferred").add();
    deferred_queue_.push_back(DeferredFrame{src, std::move(frame), sim_.now()});
    return;
  }
  try_deliver_app(src, frame);
}

bool Node::references_deferred(const fbl::AppFrame& frame) const {
  // Manetho-style unsafety test: the frame carries a receipt order of a
  // process that is still recovering, so delivering it could create a
  // dependency inconsistent with our already-sent depinfo reply.
  for (const auto& h : frame.dets) {
    if (defer_rset_.contains(h.det.dest)) return true;
  }
  return false;
}

void Node::set_defer_unsafe(const std::set<ProcessId>& rset) {
  defer_rset_ = rset;
  if (defer_rset_.empty()) drain_deferred();
}

void Node::drain_deferred() {
  while (!deferred_queue_.empty() && defer_rset_.empty() && !delivery_blocked_) {
    DeferredFrame d = std::move(deferred_queue_.front());
    deferred_queue_.pop_front();
    metrics_.accum("recovery.deferred_hold_ns").record_duration(sim_.now() - d.held_since);
    try_deliver_app(d.src, d.frame);
  }
}

void Node::sync_log_then_send(ProcessId to, const ControlMessage& m) {
  // The reply is durably recorded before it leaves the host; the recovering
  // process can then safely depend on it even if we crash next. The seek +
  // transfer shows up directly in the leader's gather phase.
  metrics_.counter("recovery.live_sync_writes").add();
  const std::string key =
      "recovery/reply/" + std::to_string(config_.id.value) + "/" +
      std::to_string(sync_log_seq_++);
  const auto epoch = epoch_;
  Bytes blob = recovery::encode_control(m);
  storage_.write(key, blob, [this, epoch, to, m] {
    if (epoch != epoch_ || !alive_) return;
    send_control(to, m);
  });
}

void Node::try_deliver_app(ProcessId src, const fbl::AppFrame& frame) {
  const auto res = engine_.accept(src, frame, recovery_.incvector());
  switch (res.verdict) {
    case fbl::LoggingEngine::Verdict::kDeliver:
      ++app_delivered_;
      metrics_.counter("app.delivered").add();
      metrics_.counter("fbl.dets_learned").add(res.dets_learned);
      if (config_.trace != nullptr) {
        config_.trace->record(sim_.now(), trace::DeliverEvent{config_.id, src, frame.ssn,
                                                              res.rsn, inc_, false, frame.inc});
      }
      snapshot_.observe_delivery(src);
      app_->on_message(*ctx_, src, frame.payload);
      drain_held(src);
      return;
    case fbl::LoggingEngine::Verdict::kStale:
      metrics_.counter("app.stale_rejected").add();
      return;
    case fbl::LoggingEngine::Verdict::kDuplicate:
      metrics_.counter("app.duplicates").add();
      return;
    case fbl::LoggingEngine::Verdict::kOutOfOrder:
      metrics_.counter("app.held_out_of_order").add();
      held_ooo_[src][frame.ssn] = frame;
      return;
  }
}

void Node::drain_held(ProcessId src) {
  const auto chan = held_ooo_.find(src);
  if (chan == held_ooo_.end()) return;
  while (!chan->second.empty()) {
    const Ssn next = fbl::watermark_of(engine_.recv_marks(), src) + 1;
    const auto it = chan->second.find(next);
    if (it == chan->second.end()) break;
    fbl::AppFrame frame = std::move(it->second);
    chan->second.erase(it);
    const auto res = engine_.accept(src, frame, recovery_.incvector());
    if (res.verdict == fbl::LoggingEngine::Verdict::kDeliver) {
      ++app_delivered_;
      metrics_.counter("app.delivered").add();
      if (config_.trace != nullptr) {
        config_.trace->record(sim_.now(), trace::DeliverEvent{config_.id, src, frame.ssn,
                                                              res.rsn, inc_, false, frame.inc});
      }
      snapshot_.observe_delivery(src);
      app_->on_message(*ctx_, src, frame.payload);
    }
    // Stale/duplicate held frames just evaporate; out-of-order cannot
    // happen for exactly watermark+1.
  }
  if (chan->second.empty()) held_ooo_.erase(chan);
}

void Node::drain_blocked() {
  while (!delivery_blocked_ && !blocked_queue_.empty()) {
    auto [src, frame] = std::move(blocked_queue_.front());
    blocked_queue_.pop_front();
    try_deliver_app(src, frame);
  }
}

void Node::drain_pending_fresh() {
  while (!recovering_ && !pending_fresh_.empty()) {
    auto [src, frame] = std::move(pending_fresh_.front());
    pending_fresh_.pop_front();
    if (delivery_blocked_) {
      blocked_queue_.emplace_back(src, std::move(frame));
    } else {
      try_deliver_app(src, frame);
    }
  }
}

// --- send path -------------------------------------------------------------

void Node::app_send(ProcessId to, Bytes payload) {
  RR_CHECK_MSG(alive_ && started_, "application sends require a started process");
  const std::size_t payload_bytes = payload.size();
  auto res = engine_.make_frame(to, std::move(payload), inc_);
  metrics_.counter("app.sent").add();
  metrics_.counter("app.payload_bytes").add(payload_bytes);
  metrics_.counter("fbl.piggyback_dets").add(res.piggyback_count);
  metrics_.counter("fbl.piggyback_bytes").add(res.piggyback_bytes);

  const bool suppressed =
      recovering_ && res.ssn <= fbl::watermark_of(suppress_marks_, to);
  if (config_.trace != nullptr) {
    config_.trace->record(sim_.now(),
                          trace::SendEvent{config_.id, to, res.ssn, inc_, !suppressed});
  }
  if (suppressed) {
    // Regenerated send already delivered at `to` before our crash: the
    // send log is refilled, the wire stays quiet.
    metrics_.counter("replay.sends_suppressed").add();
    return;
  }
  if (recovering_) metrics_.counter("replay.sends_transmitted").add();
  transmit_app_frame(to, std::move(res));
}

void Node::transmit_app_frame(ProcessId to, fbl::LoggingEngine::SendResult&& res) {
  std::vector<fbl::Determinant> attached = std::move(res.attached);
  transport_.send(to, std::move(res.frame));
  if (attached.empty()) return;
  const std::uint64_t msg = transport_.last_sent_msg(to);
  if (msg == 0) {
    // The frame bypassed the channel machinery (raw peer): handover is
    // delivery again, as on the perfect fabric.
    engine_.confirm_piggyback(to, attached);
    return;
  }
  pending_marks_[to].push_back(PendingMarks{msg, std::move(attached)});
}

void Node::confirm_piggyback_marks(ProcessId dst, std::uint64_t msg) {
  const auto it = pending_marks_.find(dst);
  if (it == pending_marks_.end()) return;
  auto& queue = it->second;
  while (!queue.empty() && queue.front().msg <= msg) {
    engine_.confirm_piggyback(dst, queue.front().dets);
    metrics_.counter("fbl.piggyback_confirms").add(queue.front().dets.size());
    queue.pop_front();
  }
  if (queue.empty()) pending_marks_.erase(it);
}

void Node::start_snapshot(std::uint64_t id) {
  RR_CHECK_MSG(alive_ && started_ && !recovering_,
               "snapshots are a failure-free-operation facility");
  snapshot_.initiate(id);
}

std::uint64_t Node::commit_output(Bytes payload) {
  RR_CHECK_MSG(alive_ && started_, "output commit requires a started process");
  return outputs_.commit(std::move(payload));
}

void Node::send_control(ProcessId to, const ControlMessage& m) {
  const std::size_t bytes = transport_.send(to, recovery::encode_control(m));
  if (bytes == 0) return;
  metrics_.counter("recovery.ctrl_msgs").add();
  metrics_.counter("recovery.ctrl_bytes").add(bytes);
  metrics_.counter(std::string("recovery.msg.") + recovery::control_name(m)).add();
}

void Node::broadcast_control(const ControlMessage& m) {
  for (const ProcessId pid : network_.attached()) {
    if (pid != config_.id) send_control(pid, m);
  }
}

void Node::handle_replay_request(ProcessId src, const recovery::ReplayRequest& req) {
  recovery::ReplayData data;
  for (const Ssn ssn : req.ssns) {
    const Bytes* payload = engine_.send_log().find(src, ssn);
    if (payload == nullptr) {
      // Regenerates later (post-checkpoint send of ours) or lost beyond f.
      metrics_.counter("recovery.replay_misses").add();
      continue;
    }
    data.items.push_back(recovery::ReplayData::Item{ssn, *payload});
  }
  if (!data.items.empty()) send_control(src, data);
}

void Node::on_install(const recovery::DepInstall& install) {
  if (!recovering_) return;
  for (const auto& [pid, marks] : install.live_marks) {
    fbl::raise_watermark(suppress_marks_, pid, fbl::watermark_of(marks, config_.id));
  }
  for (const auto& h : install.dets) {
    fbl::HeldDeterminant mine{h.det, h.holders | fbl::holder_bit(config_.id)};
    if (!engine_.det_log().record(mine)) engine_.det_log().add_holders(mine.det, mine.holders);
  }
  if (current_recovery_ && current_recovery_->installed_at == 0) {
    current_recovery_->installed_at = sim_.now();
  }
  if (needs_onstart_replay_) {
    needs_onstart_replay_ = false;
    app_->on_start(*ctx_);
  }
  if (config_.recovery.phase_hook && !replay_.installed()) {
    recovery::PhaseEventInfo info;
    info.pid = config_.id;
    info.phase = recovery::PhaseId::kReplayStarted;
    info.round = install.round;
    info.ord = recovery_.ord();
    info.subject = config_.id;
    config_.recovery.phase_hook(info);
  }
  // Schedule = own receipts known post-merge; payload sources resolve via
  // ReplayRequest (live or restored senders answer; recovering senders'
  // regenerated traffic fills the rest).
  replay_.install(engine_.det_log().slice_for(fbl::holder_bit(config_.id)), engine_.rsn(), {});
  // A second install (fail-over leader) may have extended the schedule
  // after payloads already arrived buffered as fresh; recheck them.
  for (auto it = pending_fresh_.begin(); it != pending_fresh_.end();) {
    if (replay_.needs(it->first, it->second.ssn)) {
      replay_.offer(it->first, it->second.ssn, std::move(it->second.payload));
      it = pending_fresh_.erase(it);
    } else {
      ++it;
    }
  }
}

void Node::on_peer_recovered(ProcessId peer, const recovery::RecoveryComplete& m) {
  engine_.forget_holder(peer, m.rsn);
  if (recovering_ && replay_.installed()) replay_.on_source_recovered(peer);
  if (!alive_ || !started_) return;
  // Retransmit everything the recovered peer never delivered from us.
  const Ssn mark = fbl::watermark_of(m.recv_marks, config_.id);
  for (const auto& entry : engine_.send_log().entries_after(peer, mark)) {
    auto rt = engine_.retransmit_frame(peer, entry.ssn, inc_);
    if (!rt) continue;
    metrics_.counter("recovery.retransmits").add();
    transmit_app_frame(peer, std::move(*rt));
  }
}

void Node::set_delivery_blocked(bool blocked) {
  if (blocked == delivery_blocked_) return;
  delivery_blocked_ = blocked;
  if (blocked) {
    metrics_.counter("recovery.block_episodes").add();
    blocked_.begin(sim_.now());
  } else {
    blocked_.end(sim_.now());
    drain_blocked();
  }
}

// --- maintenance -----------------------------------------------------------

void Node::take_checkpoint() {
  if (!alive_ || !started_ || recovering_) return;
  fbl::Checkpoint cp = engine_.make_checkpoint(app_->snapshot());
  cp.app_started = true;
  const Rsn rsn = cp.rsn;
  const fbl::Watermarks marks = cp.recv_marks;
  Bytes blob = cp.encode();
  metrics_.counter("ckpt.taken").add();
  metrics_.counter("ckpt.bytes").add(blob.size());
  const auto epoch = epoch_;
  const Time snapped_at = sim_.now();
  // Determinant blocks written before this snapshot are now subsumed by it.
  std::vector<std::string> dead_blocks = det_blocks_written_;
  ckpts_.save(std::move(blob), [this, epoch, rsn, marks, dead_blocks,
                                snapped_at](std::uint64_t) {
    // The commit belongs to the stable medium: a write queued before a
    // crash still completes (and restores will find it), so the trace
    // records it regardless of the node's fate. Timestamped at the
    // snapshot cut — sends after it are not in the image.
    if (config_.trace != nullptr) {
      config_.trace->record(snapped_at, trace::CheckpointEvent{config_.id, rsn});
    }
    if (epoch != epoch_ || !alive_) return;
    fbl::CkptNoticeFrame notice{rsn, marks};
    const Bytes frame = notice.encode();
    for (const ProcessId pid : processes_) {
      if (pid != config_.id) transport_.send(pid, BufferPool::global().copy_of(frame));
    }
    // Self-GC: our own receipts up to rsn are subsumed by the checkpoint.
    engine_.det_log().prune_dest(config_.id, rsn);
    for (const auto& key : dead_blocks) {
      storage_.erase(key, nullptr);
      std::erase(det_blocks_written_, key);
    }
  });
}

void Node::flush_unstable_dets() {
  if (!alive_ || !started_ || recovering_ || det_flush_inflight_) return;
  const auto dets = engine_.det_log().unstable();
  if (dets.empty()) return;
  BufWriter w;
  w.varint(dets.size());
  for (const auto& d : dets) d.encode(w);
  const std::string key = det_block_key(det_block_seq_++);
  det_flush_inflight_ = true;
  const auto epoch = epoch_;
  storage_.write(key, std::move(w).take(), [this, epoch, key, dets] {
    if (epoch != epoch_) return;
    det_flush_inflight_ = false;
    det_blocks_written_.push_back(key);
    metrics_.counter("fbl.dets_flushed").add(dets.size());
    for (const auto& d : dets) engine_.det_log().add_holders(d, fbl::kStableHolder);
    outputs_.on_stability_changed();
  });
}

void Node::send_heartbeats() {
  if (!alive_) return;
  // Heartbeats stay raw: retransmitting a liveness proof after the silence
  // window would claim liveness for an interval the node never proved.
  const Bytes frame = fbl::HeartbeatFrame{inc_}.encode();
  for (const ProcessId pid : processes_) {
    if (pid != config_.id) transport_.send_raw(pid, BufferPool::global().copy_of(frame));
  }
}

}  // namespace rr::runtime
