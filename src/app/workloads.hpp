// Built-in piecewise-deterministic workloads.
//
// All traffic is message-driven (handlers may only react to deliveries), so
// every workload keeps a fixed population of circulating "tokens": each
// delivery triggers at most a bounded number of sends, and pseudo-random
// choices draw from a PRNG whose seed lives in the snapshot. That is what
// makes replay exact.
//
//  * RingTokenApp   — tokens around a ring; steady, fully ordered traffic.
//                     Oracle: per-token hop counts and order-sensitive state
//                     digests match a failure-free reference run.
//  * GossipApp      — tokens walk to deterministic pseudo-random peers with
//                     configurable payload size; the irregular traffic that
//                     exercises piggyback propagation.
//  * BankApp        — money transfers with a TTL; after all tokens expire
//                     the system is quiescent and sum(balances) must equal
//                     the initial total (conservation oracle for recovery).
//  * ChainApp       — the paper's Figure 1 (m, m', m'' across p, q, r),
//                     scripted for the double-failure scenario.
//  * PaddedApp      — decorator that inflates snapshot size to model the
//                     paper's ~1 MB process images (restore-cost knob).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/application.hpp"
#include "common/hash.hpp"
#include "common/serde.hpp"

namespace rr::app {

// --- RingTokenApp -----------------------------------------------------------

struct RingConfig {
  /// Tokens injected by the lowest pid at start.
  std::uint32_t tokens{4};
  /// Extra payload bytes carried by each token.
  std::uint32_t payload_pad{64};
};

class RingTokenApp : public Application {
 public:
  explicit RingTokenApp(RingConfig config) : config_(config) {}

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

  [[nodiscard]] std::uint64_t tokens_seen() const noexcept { return tokens_seen_; }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  void forward(AppContext& ctx, std::uint32_t token, std::uint64_t hops);

  RingConfig config_;
  std::uint64_t tokens_seen_{0};
  std::uint64_t digest_{0xabcdef0123456789ULL};
};

// --- GossipApp ---------------------------------------------------------------

struct GossipConfig {
  /// Tokens each process launches at start.
  std::uint32_t tokens_per_process{2};
  std::uint32_t payload_pad{128};
  std::uint64_t seed{42};
};

class GossipApp : public Application {
 public:
  explicit GossipApp(GossipConfig config) : config_(config), prng_(config.seed) {}

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  [[nodiscard]] ProcessId pick_peer(AppContext& ctx);
  void launch(AppContext& ctx, std::uint64_t token_id);

  GossipConfig config_;
  std::uint64_t prng_;  // xorshift state, part of the snapshot
  std::uint64_t received_{0};
  std::uint64_t digest_{0x1234fedcba987654ULL};
};

// --- BankApp -----------------------------------------------------------------

struct BankConfig {
  std::int64_t initial_balance{1'000'000};
  /// Transfers each process initiates at start.
  std::uint32_t tokens_per_process{2};
  /// Hops before a transfer token dies (bounds the run).
  std::uint32_t ttl{256};
  std::uint64_t seed{7};
};

class BankApp : public Application {
 public:
  explicit BankApp(BankConfig config)
      : config_(config), balance_(config.initial_balance), prng_(config.seed) {}

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

  [[nodiscard]] std::int64_t balance() const noexcept { return balance_; }
  [[nodiscard]] std::uint64_t transfers_seen() const noexcept { return transfers_seen_; }

 private:
  void transfer(AppContext& ctx, std::int64_t amount, std::uint32_t ttl);

  BankConfig config_;
  std::int64_t balance_;
  std::uint64_t prng_;
  std::uint64_t transfers_seen_{0};
};

// --- ChainApp (Figure 1) ------------------------------------------------------

/// Scripted p -> q -> r chain: the injector (highest pid) sends m to p0,
/// p0 sends m' to p1, p1 sends m'' to p2; each delivery appends to a log.
/// `rounds` chains run back to back so there is enough history to replay.
struct ChainConfig {
  std::uint32_t rounds{16};
};

class ChainApp : public Application {
 public:
  explicit ChainApp(ChainConfig config) : config_(config) {}

  void on_start(AppContext& ctx) override;
  void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

  [[nodiscard]] const std::vector<std::uint64_t>& log() const noexcept { return log_; }

 private:
  ChainConfig config_;
  std::vector<std::uint64_t> log_;
};

// --- PaddedApp ----------------------------------------------------------------

/// Wraps another application and pads its snapshot to at least `pad_bytes`
/// (the paper's processes were "about one Mbyte"; benches F3/F6 sweep this).
class PaddedApp : public Application {
 public:
  PaddedApp(std::unique_ptr<Application> inner, std::size_t pad_bytes);

  void on_start(AppContext& ctx) override { inner_->on_start(ctx); }
  void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) override {
    inner_->on_message(ctx, from, payload);
  }

  [[nodiscard]] Bytes snapshot() const override;
  void restore(const Bytes& state) override;
  [[nodiscard]] std::uint64_t state_hash() const override { return inner_->state_hash(); }

  [[nodiscard]] Application& inner() noexcept { return *inner_; }
  [[nodiscard]] const Application& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<Application> inner_;
  Bytes pad_;
};

/// Typed accessor through an optional PaddedApp wrapper.
template <typename T>
[[nodiscard]] T& unwrap(Application& a) {
  if (auto* padded = dynamic_cast<PaddedApp*>(&a)) return dynamic_cast<T&>(padded->inner());
  return dynamic_cast<T&>(a);
}

}  // namespace rr::app
