#include "app/workloads.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rr::app {

namespace {

/// xorshift64* step — deterministic PRNG whose whole state is one u64 that
/// lives in the application snapshot.
std::uint64_t prng_next(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dULL;
}

/// Position of self among the sorted process list.
std::size_t index_of(AppContext& ctx) {
  const auto& ps = ctx.processes();
  const auto it = std::find(ps.begin(), ps.end(), ctx.self());
  RR_CHECK(it != ps.end());
  return static_cast<std::size_t>(it - ps.begin());
}

void mix_into(std::uint64_t& digest, std::uint64_t v) {
  digest ^= v + 0x9e3779b97f4a7c15ULL + (digest << 6) + (digest >> 2);
}

}  // namespace

// --- RingTokenApp -----------------------------------------------------------

void RingTokenApp::on_start(AppContext& ctx) {
  if (ctx.self() != ctx.processes().front()) return;
  for (std::uint32_t t = 0; t < config_.tokens; ++t) forward(ctx, t, 0);
}

void RingTokenApp::forward(AppContext& ctx, std::uint32_t token, std::uint64_t hops) {
  const auto& ps = ctx.processes();
  const ProcessId next = ps[(index_of(ctx) + 1) % ps.size()];
  BufWriter w;
  w.u32(token);
  w.u64(hops);
  w.bytes(Bytes(config_.payload_pad));
  ctx.send(next, std::move(w).take());
}

void RingTokenApp::on_message(AppContext& ctx, ProcessId from, const Bytes& payload) {
  (void)from;
  BufReader r(payload);
  const std::uint32_t token = r.u32();
  const std::uint64_t hops = r.u64();
  ++tokens_seen_;
  mix_into(digest_, (static_cast<std::uint64_t>(token) << 32) ^ hops);
  forward(ctx, token, hops + 1);
}

Bytes RingTokenApp::snapshot() const {
  BufWriter w;
  w.u64(tokens_seen_);
  w.u64(digest_);
  return std::move(w).take();
}

void RingTokenApp::restore(const Bytes& state) {
  BufReader r(state);
  tokens_seen_ = r.u64();
  digest_ = r.u64();
  r.expect_done();
}

std::uint64_t RingTokenApp::state_hash() const {
  return Hasher{}.mix_u64(tokens_seen_).mix_u64(digest_).digest();
}

// --- GossipApp ---------------------------------------------------------------

ProcessId GossipApp::pick_peer(AppContext& ctx) {
  const auto& ps = ctx.processes();
  // Choose uniformly among the other processes, deterministically from the
  // snapshotted PRNG state.
  const std::size_t self = index_of(ctx);
  std::size_t k = prng_next(prng_) % (ps.size() - 1);
  if (k >= self) ++k;
  return ps[k];
}

void GossipApp::launch(AppContext& ctx, std::uint64_t token_id) {
  BufWriter w;
  w.u64(token_id);
  w.u64(prng_next(prng_));  // rumor content
  w.bytes(Bytes(config_.payload_pad));
  ctx.send(pick_peer(ctx), std::move(w).take());
}

void GossipApp::on_start(AppContext& ctx) {
  for (std::uint32_t t = 0; t < config_.tokens_per_process; ++t) {
    launch(ctx, (static_cast<std::uint64_t>(ctx.self().value) << 32) | t);
  }
}

void GossipApp::on_message(AppContext& ctx, ProcessId from, const Bytes& payload) {
  BufReader r(payload);
  const std::uint64_t token_id = r.u64();
  const std::uint64_t rumor = r.u64();
  ++received_;
  mix_into(digest_, rumor ^ (static_cast<std::uint64_t>(from.value) << 48));
  // Keep the token population constant: every delivery forwards once.
  BufWriter w;
  w.u64(token_id);
  w.u64(prng_next(prng_) ^ rumor);
  w.bytes(Bytes(config_.payload_pad));
  ctx.send(pick_peer(ctx), std::move(w).take());
}

Bytes GossipApp::snapshot() const {
  BufWriter w;
  w.u64(prng_);
  w.u64(received_);
  w.u64(digest_);
  return std::move(w).take();
}

void GossipApp::restore(const Bytes& state) {
  BufReader r(state);
  prng_ = r.u64();
  received_ = r.u64();
  digest_ = r.u64();
  r.expect_done();
}

std::uint64_t GossipApp::state_hash() const {
  return Hasher{}.mix_u64(prng_).mix_u64(received_).mix_u64(digest_).digest();
}

// --- BankApp -----------------------------------------------------------------

void BankApp::transfer(AppContext& ctx, std::int64_t amount, std::uint32_t ttl) {
  RR_CHECK(amount <= balance_);
  const auto& ps = ctx.processes();
  const std::size_t self = index_of(ctx);
  std::size_t k = prng_next(prng_) % (ps.size() - 1);
  if (k >= self) ++k;
  balance_ -= amount;
  BufWriter w;
  w.i64(amount);
  w.u32(ttl);
  ctx.send(ps[k], std::move(w).take());
}

void BankApp::on_start(AppContext& ctx) {
  for (std::uint32_t t = 0; t < config_.tokens_per_process; ++t) {
    const std::int64_t amount = 1 + static_cast<std::int64_t>(prng_next(prng_) % 1000);
    transfer(ctx, amount, config_.ttl);
  }
}

void BankApp::on_message(AppContext& ctx, ProcessId from, const Bytes& payload) {
  (void)from;
  BufReader r(payload);
  const std::int64_t amount = r.i64();
  const std::uint32_t ttl = r.u32();
  balance_ += amount;
  ++transfers_seen_;
  if (ttl == 0) return;  // token dies; system drains toward quiescence
  const std::int64_t next = 1 + static_cast<std::int64_t>(
                                    prng_next(prng_) %
                                    static_cast<std::uint64_t>(std::max<std::int64_t>(
                                        1, std::min<std::int64_t>(balance_, 1000))));
  transfer(ctx, next, ttl - 1);
}

Bytes BankApp::snapshot() const {
  BufWriter w;
  w.i64(balance_);
  w.u64(prng_);
  w.u64(transfers_seen_);
  return std::move(w).take();
}

void BankApp::restore(const Bytes& state) {
  BufReader r(state);
  balance_ = r.i64();
  prng_ = r.u64();
  transfers_seen_ = r.u64();
  r.expect_done();
}

std::uint64_t BankApp::state_hash() const {
  return Hasher{}
      .mix_u64(static_cast<std::uint64_t>(balance_))
      .mix_u64(prng_)
      .mix_u64(transfers_seen_)
      .digest();
}

// --- ChainApp ----------------------------------------------------------------

void ChainApp::on_start(AppContext& ctx) {
  // The injector (highest pid) plays the unnamed sender of m in Figure 1.
  if (ctx.self() != ctx.processes().back()) return;
  for (std::uint32_t round = 0; round < config_.rounds; ++round) {
    BufWriter w;
    w.u32(round);
    w.u32(0);  // position in the chain
    ctx.send(ctx.processes().front(), std::move(w).take());
  }
}

void ChainApp::on_message(AppContext& ctx, ProcessId from, const Bytes& payload) {
  (void)from;
  BufReader r(payload);
  const std::uint32_t round = r.u32();
  const std::uint32_t pos = r.u32();
  log_.push_back((static_cast<std::uint64_t>(round) << 32) | pos);
  const auto& ps = ctx.processes();
  const std::size_t self = index_of(ctx);
  // Forward m -> m' -> m'' down the chain p0, p1, p2, ... (the injector is
  // the last process and terminates the chain).
  if (self + 1 < ps.size() - 1) {
    BufWriter w;
    w.u32(round);
    w.u32(pos + 1);
    ctx.send(ps[self + 1], std::move(w).take());
  }
}

Bytes ChainApp::snapshot() const {
  BufWriter w;
  w.varint(log_.size());
  for (const auto v : log_) w.u64(v);
  return std::move(w).take();
}

void ChainApp::restore(const Bytes& state) {
  BufReader r(state);
  log_.clear();
  const auto n = r.varint();
  log_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) log_.push_back(r.u64());
  r.expect_done();
}

std::uint64_t ChainApp::state_hash() const {
  Hasher h;
  for (const auto v : log_) h.mix_u64(v);
  return h.digest();
}

// --- PaddedApp ---------------------------------------------------------------

PaddedApp::PaddedApp(std::unique_ptr<Application> inner, std::size_t pad_bytes)
    : inner_(std::move(inner)), pad_(pad_bytes) {
  RR_CHECK(inner_ != nullptr);
  // Deterministic filler so snapshots are value-stable.
  for (std::size_t i = 0; i < pad_.size(); ++i) pad_[i] = static_cast<std::byte>(i * 31 + 7);
}

Bytes PaddedApp::snapshot() const {
  BufWriter w(pad_.size() + 64);
  w.bytes(inner_->snapshot());
  w.bytes(pad_);
  return std::move(w).take();
}

void PaddedApp::restore(const Bytes& state) {
  BufReader r(state);
  inner_->restore(r.bytes());
  pad_ = r.bytes();
  r.expect_done();
}

}  // namespace rr::app
