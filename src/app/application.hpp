// Application programming model: piecewise-deterministic message handlers.
//
// This is the paper's system model made into an API contract: a process's
// execution is a deterministic function of its initial state and the
// sequence of messages delivered to it (identified by receipt order). The
// runtime relies on this for recovery — a restored process re-executes
// on_start/on_message against the logged receipt sequence and must
// regenerate exactly the sends of its pre-crash execution.
//
// Rules an Application must follow (enforced where cheap, trusted where
// not):
//  * All behaviour flows from on_start/on_message; no timers, no wall
//    clock, no external randomness. Pseudo-randomness is fine if the seed
//    lives in the snapshot.
//  * snapshot()/restore() round-trips the full state; state_hash() digests
//    everything snapshot() covers (test oracles compare hashes across
//    original and replayed executions).
//  * No sends to self.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace rr::app {

/// Runtime services available inside a handler.
class AppContext {
 public:
  virtual ~AppContext() = default;

  /// Send an application message (reliable FIFO; logged by the runtime).
  virtual void send(ProcessId to, Bytes payload) = 0;

  /// Queue an external output; the runtime releases it once the state that
  /// produced it is recoverable (output commit). Returns the output id —
  /// deterministic, so re-execution regenerates the same ids and the
  /// external world can deduplicate.
  virtual std::uint64_t commit_output(Bytes payload) = 0;

  [[nodiscard]] virtual ProcessId self() const = 0;

  /// All application processes, sorted, including self. Static membership.
  [[nodiscard]] virtual const std::vector<ProcessId>& processes() const = 0;
};

class Application {
 public:
  virtual ~Application() = default;

  /// Runs once at receipt order 0, before any delivery (re-executed on
  /// recovery from a pre-start checkpoint).
  virtual void on_start(AppContext& ctx) { (void)ctx; }

  /// Deterministic handler for one delivered message.
  virtual void on_message(AppContext& ctx, ProcessId from, const Bytes& payload) = 0;

  /// Full-state serialization for checkpoints.
  [[nodiscard]] virtual Bytes snapshot() const = 0;
  virtual void restore(const Bytes& state) = 0;

  /// Digest of the state snapshot() covers (test oracle).
  [[nodiscard]] virtual std::uint64_t state_hash() const = 0;
};

using AppFactory = std::function<std::unique_ptr<Application>(ProcessId self)>;

}  // namespace rr::app
