// rrlint rule table — the machine-checked half of the repo's determinism
// contract (DESIGN.md §10 is the prose half).
//
// Families:
//   D (determinism)   ambient nondeterminism must not reach sim-visible code
//   G (global state)  process-wide mutable state breaks parallel exploration
//   S (serde/codec)   wire codecs must be paired, bounds-guarded, cast-free
//   L (layering)      the module DAG is acyclic and includes point downward
//   A (analyzer)      suppression hygiene for rrlint itself
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rr::lint {

enum class RuleId : std::uint8_t {
  kD1BannedCall,          ///< rand/clock/env primitive outside the whitelist
  kD2UnorderedIteration,  ///< iterating an unordered container, sim-visible
  kD3PointerKeyedContainer,  ///< container ordered/hashed by pointer value
  kD4AddressAsValue,      ///< casting an address to an integer value
  kG1GlobalMutable,       ///< namespace-scope / static-member mutable state
  kG2LocalStaticMutable,  ///< function-local static mutable state
  kS1UnpairedCodec,       ///< encode_X without decode_X (or vice versa)
  kS2RawMemoryInCodec,    ///< memcpy/reinterpret_cast inside a codec body
  kS3UnguardedDecode,     ///< decode function that never touches BufReader
  kL1UpwardInclude,       ///< include against the module layering order
  kL2IncludeCycle,        ///< cycle in the file-level include graph
  kL3UnknownModule,       ///< include into a module missing from the table
  kA1BadSuppression,      ///< malformed / unknown-rule / unjustified rrlint:
};

inline constexpr std::size_t kRuleCount = 13;

struct RuleInfo {
  const char* id;     ///< short id used in diagnostics and allow(...)
  const char* title;  ///< one-line name
  const char* why;    ///< one-line rationale appended to diagnostics
};

/// Indexed by RuleId.
[[nodiscard]] const RuleInfo& rule_info(RuleId id);

/// Reverse lookup for allow(...) parsing; false on unknown id.
[[nodiscard]] bool parse_rule_id(const std::string& text, RuleId& out);

struct Diagnostic {
  std::string file;
  int line{0};
  RuleId rule{RuleId::kD1BannedCall};
  std::string message;  ///< site-specific detail ("iterates 'peers_'")
};

/// Layer rank for a module name; -1 when unknown. Higher ranks may include
/// lower ones, never the reverse. The table lives in rules.cpp.
[[nodiscard]] int module_rank(const std::string& module);

/// Modules whose behaviour feeds message contents / ordering / timing and
/// therefore replay. Harness-side modules (check, exec, harness, analysis,
/// lint, tools) reconcile results deterministically themselves and are out
/// of scope for D2.
[[nodiscard]] bool sim_visible(const std::string& module);

}  // namespace rr::lint
