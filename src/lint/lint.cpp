#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace rr::lint {
namespace {

// ---------------------------------------------------------------------------
// Token-stream helpers.

constexpr std::size_t npos = static_cast<std::size_t>(-1);

struct View {
  const std::vector<Token>& t;

  [[nodiscard]] std::size_t size() const { return t.size(); }
  [[nodiscard]] std::string_view text(std::size_t i) const {
    return i < t.size() ? t[i].text : std::string_view{};
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view s) const { return text(i) == s; }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < t.size() && t[i].kind == Tok::kIdent;
  }
  [[nodiscard]] int line(std::size_t i) const { return i < t.size() ? t[i].line : 0; }
};

/// True when tokens[i] is qualified as std:: (i.e. preceded by `std ::`).
bool std_qualified(const View& v, std::size_t i) {
  return i >= 3 && v.is(i - 1, ":") && v.is(i - 2, ":") && v.is(i - 3, "std");
}

/// tokens[i] == '<' : returns the index just past the balancing '>', or npos
/// when this is not a closed template argument list.
std::size_t skip_template_args(const View& v, std::size_t i) {
  if (!v.is(i, "<")) return npos;
  int depth = 0;
  for (std::size_t j = i; j < v.size(); ++j) {
    const std::string_view s = v.text(j);
    if (s == "<") ++depth;
    else if (s == ">") {
      if (--depth == 0) return j + 1;
    } else if (s == ";" || s == "{" || s == "}") {
      return npos;  // statement ended: was a comparison, not a template
    }
  }
  return npos;
}

bool contains_ident(const std::set<std::string, std::less<>>& set, std::string_view s) {
  return set.find(s) != set.end();
}

// ---------------------------------------------------------------------------
// D1 — banned nondeterminism primitives.

constexpr std::string_view kAlwaysBanned[] = {
    // randomness sources / engines / distributions
    "srand", "rand_r", "drand48", "lrand48", "mrand48", "erand48",
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
    "uniform_int_distribution", "uniform_real_distribution",
    "bernoulli_distribution", "normal_distribution", "poisson_distribution",
    "exponential_distribution", "random_shuffle",
    // wall clocks and calendar time
    "system_clock", "steady_clock", "high_resolution_clock", "clock_gettime",
    "gettimeofday", "timespec_get", "localtime", "localtime_r", "gmtime",
    "gmtime_r",
    // ambient process environment
    "getenv", "secure_getenv", "setenv", "putenv", "unsetenv",
};

/// Banned only in call form `name(` (the bare words are common identifiers).
constexpr std::string_view kCallFormBanned[] = {"rand", "time", "clock", "random",
                                                "shuffle"};

constexpr std::string_view kD1WhitelistFiles[] = {
    // The sanctioned randomness implementation itself.
    "src/common/rng.hpp",
    "src/common/rng.cpp",
};

bool d1_whitelisted(const std::string& path) {
  return std::any_of(std::begin(kD1WhitelistFiles), std::end(kD1WhitelistFiles),
                     [&](std::string_view w) { return path == w; });
}

void check_d1(const FileScan& f, std::vector<Diagnostic>& out) {
  if (d1_whitelisted(f.path)) return;
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v.ident(i)) continue;
    const std::string_view s = v.text(i);

    const bool always = std::find(std::begin(kAlwaysBanned), std::end(kAlwaysBanned),
                                  s) != std::end(kAlwaysBanned);
    const bool call_form = !always &&
                           std::find(std::begin(kCallFormBanned),
                                     std::end(kCallFormBanned),
                                     s) != std::end(kCallFormBanned);
    if (!always && !call_form) continue;

    if (call_form) {
      if (!v.is(i + 1, "(")) continue;  // not a call
      // Member access `x.time(...)` / `x->time(...)` is some other API.
      if (v.is(i - 1, ".")) continue;
      if (v.is(i - 1, ">") && v.is(i - 2, "-")) continue;
      // Qualified: only std:: (or the global namespace) is the libc symbol.
      if (v.is(i - 1, ":") && v.is(i - 2, ":") && v.ident(i - 3) &&
          !v.is(i - 3, "std")) {
        continue;  // SomeClass::time(...)
      }
    }
    out.push_back({f.path, v.line(i), RuleId::kD1BannedCall,
                   "'" + std::string(s) + "' is a banned nondeterminism primitive"});
  }
}

// ---------------------------------------------------------------------------
// D2 — unordered-container iteration (cross-file per module).

constexpr std::string_view kUnorderedHeads[] = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

bool is_unordered_head(std::string_view s) {
  return std::find(std::begin(kUnorderedHeads), std::end(kUnorderedHeads), s) !=
         std::end(kUnorderedHeads);
}

struct ModuleNames {
  std::set<std::string, std::less<>> unordered_vars;
  std::set<std::string, std::less<>> unordered_aliases;
};

/// Pass A: record variables (and type aliases) of unordered container type.
void collect_unordered_names(const FileScan& f, ModuleNames& names) {
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v.ident(i) || !is_unordered_head(v.text(i))) continue;
    // `using Alias = std::unordered_map<...>`
    if (i >= 5 && v.is(i - 1, ":") && v.is(i - 2, ":") && v.is(i - 3, "std") &&
        v.is(i - 4, "=") && v.ident(i - 5) && v.is(i - 6, "using")) {
      names.unordered_aliases.insert(std::string(v.text(i - 5)));
    }
    const std::size_t after = skip_template_args(v, i + 1);
    if (after == npos) continue;
    std::size_t j = after;
    while (v.is(j, "&") || v.is(j, "*") || v.is(j, "const")) ++j;
    if (v.ident(j) && (v.is(j + 1, ";") || v.is(j + 1, "=") || v.is(j + 1, "{") ||
                       v.is(j + 1, ",") || v.is(j + 1, ")"))) {
      names.unordered_vars.insert(std::string(v.text(j)));
    }
  }
  // Variables declared through an alias: `Alias name ;`
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (!v.ident(i) || !contains_ident(names.unordered_aliases, v.text(i))) continue;
    std::size_t j = i + 1;
    while (v.is(j, "&") || v.is(j, "*") || v.is(j, "const")) ++j;
    if (v.ident(j) && (v.is(j + 1, ";") || v.is(j + 1, "=") || v.is(j + 1, "{") ||
                       v.is(j + 1, ",") || v.is(j + 1, ")"))) {
      names.unordered_vars.insert(std::string(v.text(j)));
    }
  }
}

/// Pass B: flag range-for over, or .begin() on, a recorded unordered name.
void check_d2(const FileScan& f, const ModuleNames& names, std::vector<Diagnostic>& out) {
  if (!sim_visible(f.module)) return;
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.is(i, "for") && v.is(i + 1, "(")) {
      // Find the range-for ':' at parenthesis depth 1 (':' not part of '::').
      int depth = 0;
      std::size_t colon = npos, close = npos;
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        const std::string_view s = v.text(j);
        if (s == "(") ++depth;
        else if (s == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (s == ";") {
          break;  // classic for loop
        } else if (s == ":" && depth == 1 && !v.is(j + 1, ":") && !v.is(j - 1, ":") &&
                   colon == npos) {
          colon = j;
        }
      }
      if (colon == npos || close == npos) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (v.ident(j) && contains_ident(names.unordered_vars, v.text(j))) {
          out.push_back({f.path, v.line(j), RuleId::kD2UnorderedIteration,
                         "range-for over unordered container '" +
                             std::string(v.text(j)) + "'"});
          break;
        }
      }
      continue;
    }
    if (v.ident(i) && contains_ident(names.unordered_vars, v.text(i))) {
      std::size_t j = i + 1;
      if (v.is(j, ".")) ++j;
      else if (v.is(j, "-") && v.is(j + 1, ">")) j += 2;
      else continue;
      const std::string_view m = v.text(j);
      if ((m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") &&
          v.is(j + 1, "(")) {
        out.push_back({f.path, v.line(i), RuleId::kD2UnorderedIteration,
                       "iterator walk over unordered container '" +
                           std::string(v.text(i)) + "'"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D3 — pointer-keyed containers; D4 — address-as-value.

constexpr std::string_view kKeyedHeads[] = {
    "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "hash"};

void check_d3(const FileScan& f, std::vector<Diagnostic>& out) {
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v.ident(i)) continue;
    const std::string_view s = v.text(i);
    if (std::find(std::begin(kKeyedHeads), std::end(kKeyedHeads), s) ==
        std::end(kKeyedHeads)) {
      continue;
    }
    if (!std_qualified(v, i)) continue;  // only the std containers
    if (!v.is(i + 1, "<")) continue;
    // Scan the first template argument (the key / element type).
    int depth = 0;
    bool pointer = false;
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      const std::string_view w = v.text(j);
      if (w == "<") ++depth;
      else if (w == ">") {
        if (--depth == 0) break;
      } else if (w == "," && depth == 1) {
        break;  // end of the key type
      } else if (w == "*" && depth == 1) {
        pointer = true;
      } else if (w == ";" || w == "{" || w == "}") {
        break;  // not a template after all
      }
    }
    if (pointer) {
      out.push_back({f.path, v.line(i), RuleId::kD3PointerKeyedContainer,
                     "std::" + std::string(s) + " keyed/ordered by a pointer type"});
    }
  }
}

void check_d4(const FileScan& f, std::vector<Diagnostic>& out) {
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.ident(i) && (v.is(i, "uintptr_t") || v.is(i, "intptr_t"))) {
      std::string msg = "'";
      msg += v.text(i);
      msg += "' converts an address to a value";
      out.push_back({f.path, v.line(i), RuleId::kD4AddressAsValue, std::move(msg)});
    }
  }
}

// ---------------------------------------------------------------------------
// Scope walk shared by the G and S rules.

enum class Scope : std::uint8_t { kNamespace, kClass, kEnum, kFunction, kBlock, kInit };

struct ScopeFrame {
  Scope kind;
  std::string fn_name;     ///< kFunction only
  std::size_t sig_begin{npos};  ///< kFunction: index of the signature's '('
  std::size_t open{npos};       ///< index of the '{'
};

bool is_code(Scope s) { return s == Scope::kFunction || s == Scope::kBlock; }

bool codec_name(std::string_view n) {
  return n == "encode" || n == "decode" || n.substr(0, 7) == "encode_" ||
         n.substr(0, 7) == "decode_";
}

/// Walk back from the '{' at `i` and classify the scope it opens. When the
/// scope is a function definition, fills `name` and `sig_begin`.
Scope classify_brace(const View& v, std::size_t i, bool in_code, std::string& name,
                     std::size_t& sig_begin) {
  if (i == 0) return Scope::kNamespace;
  const std::string_view prev = v.text(i - 1);
  if (prev == "=" || prev == "," || prev == "(" || prev == "{" || prev == "[" ||
      prev == "]" || prev == "return") {
    return in_code ? Scope::kBlock : Scope::kInit;
  }
  // Collect the statement head: back to the previous ';', '{' or '}'.
  const std::size_t lo = i > 96 ? i - 96 : 0;
  std::size_t begin = lo;
  for (std::size_t j = i; j-- > lo;) {
    const std::string_view s = v.text(j);
    if (s == ";" || s == "{" || s == "}") {
      begin = j + 1;
      break;
    }
  }
  bool saw_close = false;
  std::size_t close_at = npos;
  bool saw_enum = false, saw_class = false, saw_namespace = false;
  for (std::size_t j = begin; j < i; ++j) {
    const std::string_view s = v.text(j);
    if (s == ")") {
      saw_close = true;
      close_at = j;
    } else if (s == "enum") {
      saw_enum = true;
    } else if (s == "class" || s == "struct" || s == "union") {
      saw_class = true;
    } else if (s == "namespace") {
      saw_namespace = true;
    }
  }
  if (saw_namespace) return Scope::kNamespace;
  if (saw_enum) return Scope::kEnum;
  if (saw_class) return Scope::kClass;
  if (saw_close) {
    if (in_code) return Scope::kBlock;
    // Function definition: find the matching '(' for the last ')'.
    int depth = 0;
    for (std::size_t j = close_at + 1; j-- > 0;) {
      const std::string_view s = v.text(j);
      if (s == ")") ++depth;
      else if (s == "(") {
        if (--depth == 0) {
          sig_begin = j;
          std::size_t k = j;  // token before '(' is the name (skip templates)
          if (k > 0 && v.is(k - 1, ">")) {
            int tdepth = 0;
            for (std::size_t m = k; m-- > 0;) {
              if (v.is(m, ">")) ++tdepth;
              else if (v.is(m, "<") && --tdepth == 0) {
                k = m;
                break;
              }
            }
          }
          if (k > 0 && v.ident(k - 1)) name = std::string(v.text(k - 1));
          break;
        }
      }
    }
    return Scope::kFunction;
  }
  return in_code ? Scope::kBlock : Scope::kInit;
}

constexpr std::string_view kDeclSkipKeywords[] = {
    "using", "typedef", "friend", "namespace", "template", "static_assert",
    "operator", "enum", "class", "struct", "union", "concept", "requires",
    "asm", "extern", "goto", "return", "if", "for", "while", "switch", "case",
    "delete", "new", "throw", "public", "protected", "private"};

/// Evaluate one namespace- or class-scope statement for G1.
void eval_global_statement(const FileScan& f, const View& v,
                           const std::vector<std::size_t>& stmt, Scope scope,
                           bool brace_init, std::vector<Diagnostic>& out) {
  if (stmt.size() < 2) return;
  bool exempt = false, is_static = false;
  for (const std::size_t i : stmt) {
    const std::string_view s = v.text(i);
    if (std::find(std::begin(kDeclSkipKeywords), std::end(kDeclSkipKeywords), s) !=
        std::end(kDeclSkipKeywords)) {
      return;  // not a plain variable definition
    }
    if (s == "const" || s == "constexpr" || s == "consteval" || s == "thread_local" ||
        s == "atomic" || s == "atomic_flag") {
      exempt = true;
    }
    if (s == "static") is_static = true;
  }
  if (scope == Scope::kClass && !is_static) return;  // instance members are fine
  if (exempt) return;
  // A '(' at template depth 0 before any '=' means a function declaration.
  int tdepth = 0;
  bool assigned = false, paren = false;
  for (const std::size_t i : stmt) {
    const std::string_view s = v.text(i);
    if (s == "<") ++tdepth;
    else if (s == ">") --tdepth;
    else if (s == "=" && tdepth == 0) {
      assigned = true;
      break;
    } else if (s == "(" && tdepth <= 0) {
      paren = true;
      break;
    }
  }
  if (paren) return;  // function declaration (or constructor-style init)
  // Plain declarations without initializer still default-construct mutable
  // state; require an identifier beyond the type to avoid flagging stray
  // expression statements.
  (void)assigned;
  (void)brace_init;
  out.push_back({f.path, v.line(stmt.front()), RuleId::kG1GlobalMutable,
                 scope == Scope::kClass ? "mutable static data member"
                                        : "mutable namespace-scope variable"});
}

void check_scoped_rules(const FileScan& f, std::vector<Diagnostic>& out) {
  const View v{f.tokens};
  const bool serde_core =
      f.path == "src/common/serde.hpp" || f.path == "src/common/serde.cpp";

  std::vector<ScopeFrame> stack;
  stack.push_back({Scope::kNamespace, "", npos, npos});
  // Statement accumulation for the innermost namespace/class scope.
  std::vector<std::size_t> stmt;
  bool stmt_brace_init = false;
  int codec_depth = 0;  // nesting inside a codec function body

  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::string_view s = v.text(i);
    const Scope top = stack.back().kind;

    if (s == "{") {
      std::string name;
      std::size_t sig = npos;
      Scope kind = classify_brace(v, i, is_code(top), name, sig);
      if (top == Scope::kEnum) kind = Scope::kInit;  // nothing nests in enums
      if (kind == Scope::kInit && !is_code(top)) {
        stmt_brace_init = true;
      } else if (!is_code(top) && kind != Scope::kInit) {
        stmt.clear();  // the statement head became a scope introducer
        stmt_brace_init = false;
      }
      stack.push_back({kind, name, sig, i});
      if (kind == Scope::kFunction && codec_name(name)) ++codec_depth;
      continue;
    }
    if (s == "}") {
      if (stack.size() > 1) {
        const ScopeFrame closing = stack.back();
        stack.pop_back();
        if (closing.kind == Scope::kFunction) {
          if (codec_name(closing.fn_name)) --codec_depth;
          // S3: a decode definition must touch BufReader somewhere between
          // its signature and its closing brace.
          if (!serde_core && (closing.fn_name == "decode" ||
                              closing.fn_name.substr(0, 7) == "decode_")) {
            const std::size_t from = closing.sig_begin == npos
                                         ? closing.open
                                         : closing.sig_begin;
            bool guarded = false;
            for (std::size_t j = from; j <= i && j < v.size(); ++j) {
              if (v.is(j, "BufReader")) {
                guarded = true;
                break;
              }
            }
            if (!guarded) {
              out.push_back({f.path, v.line(closing.open), RuleId::kS3UnguardedDecode,
                             "'" + closing.fn_name + "' decodes without BufReader"});
            }
          }
        }
        // Leaving a nested scope back into a declaration context ends the
        // pending statement (function/class bodies are self-contained).
        if (!is_code(stack.back().kind) && closing.kind != Scope::kInit) {
          stmt.clear();
          stmt_brace_init = false;
        }
      }
      continue;
    }

    if (top == Scope::kNamespace || top == Scope::kClass) {
      if (s == ";") {
        eval_global_statement(f, v, stmt, top, stmt_brace_init, out);
        stmt.clear();
        stmt_brace_init = false;
      } else {
        stmt.push_back(i);
      }
      continue;
    }

    if (is_code(top)) {
      // G2: function-local static (thread_local alone is the sanctioned form).
      if (s == "static") {
        bool exempt = false;
        bool function_decl = false;
        int tdepth = 0;
        for (std::size_t j = i + 1; j < v.size() && !v.is(j, ";") && !v.is(j, "{");
             ++j) {
          const std::string_view w = v.text(j);
          if (w == "const" || w == "constexpr" || w == "thread_local" ||
              w == "atomic" || w == "atomic_flag") {
            exempt = true;
            break;
          }
          if (w == "<") ++tdepth;
          else if (w == ">") --tdepth;
          else if (w == "=" && tdepth == 0) break;
          else if (w == "(" && tdepth <= 0) {
            function_decl = true;  // `static Foo make();` — not a variable
            break;
          }
        }
        if (!exempt && !function_decl) {
          out.push_back({f.path, v.line(i), RuleId::kG2LocalStaticMutable,
                         "mutable function-local static"});
        }
      }
      // S2: raw memory operations inside codec bodies.
      if (codec_depth > 0 && !serde_core &&
          (s == "memcpy" || s == "memmove" || s == "memset" ||
           s == "reinterpret_cast" || s == "const_cast")) {
        out.push_back({f.path, v.line(i), RuleId::kS2RawMemoryInCodec,
                       "'" + std::string(s) + "' inside a codec body"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// S1 — codec pairing (global).

struct CodecSeen {
  std::string file;
  int line{0};
};

void collect_codec_names(const FileScan& f,
                         std::map<std::string, CodecSeen>& encoders,
                         std::map<std::string, CodecSeen>& decoders) {
  if (f.module == "lint" || f.module == "tests") return;  // fixtures / own tables
  const View v{f.tokens};
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v.ident(i)) continue;
    const std::string_view s = v.text(i);
    if (s.size() <= 7) continue;
    const bool enc = s.substr(0, 7) == "encode_";
    const bool dec = s.substr(0, 7) == "decode_";
    if (!enc && !dec) continue;
    const std::string suffix(s.substr(7));
    auto& side = enc ? encoders : decoders;
    side.try_emplace(suffix, CodecSeen{f.path, v.line(i)});
  }
}

// ---------------------------------------------------------------------------
// L rules.

void check_l1_l3(const FileScan& f, std::vector<Diagnostic>& out) {
  const int own_rank = module_rank(f.module);
  for (const Include& inc : f.includes) {
    if (inc.angled) continue;  // system headers are not layered
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string dep = inc.path.substr(0, slash);
    if (dep == "tests" || dep == f.module) continue;
    const int dep_rank = module_rank(dep);
    if (dep_rank < 0) {
      out.push_back({f.path, inc.line, RuleId::kL3UnknownModule,
                     "include of '" + inc.path + "': module '" + dep +
                         "' is not in the layer table"});
      continue;
    }
    if (own_rank >= 0 && dep_rank >= own_rank) {
      out.push_back({f.path, inc.line, RuleId::kL1UpwardInclude,
                     "'" + f.module + "' (rank " + std::to_string(own_rank) +
                         ") must not include '" + inc.path + "' ('" + dep +
                         "' has rank " + std::to_string(dep_rank) + ")"});
    }
  }
}

/// Resolve a quoted include target to a scanned file's rel_path, if present.
std::size_t resolve_include(const std::vector<FileScan>& files, const FileScan& from,
                            const std::string& target) {
  auto find = [&](const std::string& p) -> std::size_t {
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (files[i].path == p) return i;
    }
    return npos;
  };
  std::size_t hit = find("src/" + target);
  if (hit != npos) return hit;
  hit = find(target);
  if (hit != npos) return hit;
  const std::size_t dir = from.path.rfind('/');
  if (dir != std::string::npos) {
    hit = find(from.path.substr(0, dir + 1) + target);
    if (hit != npos) return hit;
  }
  return npos;
}

void check_l2(const std::vector<FileScan>& files, std::vector<Diagnostic>& out) {
  const std::size_t n = files.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Include& inc : files[i].includes) {
      if (inc.angled) continue;
      const std::size_t j = resolve_include(files, files[i], inc.path);
      if (j != npos && j != i) adj[i].push_back(j);
    }
  }
  // Iterative Tarjan SCC.
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  int next_index = 0;
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> call{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      if (fr.edge < adj[fr.v].size()) {
        const std::size_t w = adj[fr.v][fr.edge++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        if (low[fr.v] == index[fr.v]) {
          std::vector<std::size_t> scc;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == fr.v) break;
          }
          if (scc.size() > 1) {
            std::vector<std::string> members;
            members.reserve(scc.size());
            for (const std::size_t w : scc) members.push_back(files[w].path);
            std::sort(members.begin(), members.end());
            std::string list;
            for (const std::string& m : members) {
              if (!list.empty()) list += " -> ";
              list += m;
            }
            out.push_back({members.front(), 1, RuleId::kL2IncludeCycle,
                           "include cycle: " + list});
          }
        }
        const std::size_t child = fr.v;
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[child]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A1 + suppression application.

void check_a1(const FileScan& f, std::vector<Diagnostic>& out) {
  for (const Suppression& sup : f.suppressions) {
    if (!sup.parsed) {
      out.push_back({f.path, sup.line, RuleId::kA1BadSuppression,
                     "malformed suppression '" + sup.raw +
                         "' (expected: rrlint: allow(<RULE>): <justification>)"});
      continue;
    }
    for (const std::string& r : sup.rules) {
      RuleId id;
      if (!parse_rule_id(r, id)) {
        out.push_back({f.path, sup.line, RuleId::kA1BadSuppression,
                       "suppression names unknown rule '" + r + "'"});
      }
    }
    if (!sup.justified) {
      out.push_back({f.path, sup.line, RuleId::kA1BadSuppression,
                     "suppression '" + sup.raw + "' carries no justification"});
    }
  }
}

bool suppressed(const FileScan& f, const Diagnostic& d) {
  if (d.rule == RuleId::kA1BadSuppression) return false;  // never silenceable
  const char* id = rule_info(d.rule).id;
  for (const Suppression& sup : f.suppressions) {
    if (!sup.parsed || !sup.justified) continue;
    const bool line_match =
        sup.line == d.line || (sup.own_line && sup.line + 1 == d.line);
    if (!line_match) continue;
    for (const std::string& r : sup.rules) {
      if (r == id) return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Linter.

void Linter::add_file(std::string rel_path, std::string content) {
  std::string module = module_of(rel_path);
  files_.push_back(scan_source(std::move(rel_path), std::move(module), std::move(content)));
}

bool Linter::add_tree(const std::string& root, const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  bool ok = true;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      io_errors_.push_back("not a directory: " + base.string());
      ok = false;
      continue;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(it->path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        io_errors_.push_back("unreadable: " + p.string());
        ok = false;
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      add_file(fs::path(fs::relative(p, root)).generic_string(), buf.str());
    }
  }
  return ok;
}

std::vector<Diagnostic> Linter::run() {
  // Pass A: unordered names per module (members are declared in headers but
  // iterated in .cpp files, so the name sets must span the module).
  std::map<std::string, ModuleNames> names;
  for (const FileScan& f : files_) collect_unordered_names(f, names[f.module]);

  std::vector<Diagnostic> all;
  std::map<std::string, CodecSeen> encoders, decoders;
  for (const FileScan& f : files_) {
    check_d1(f, all);
    check_d2(f, names[f.module], all);
    check_d3(f, all);
    check_d4(f, all);
    check_scoped_rules(f, all);
    check_l1_l3(f, all);
    check_a1(f, all);
    collect_codec_names(f, encoders, decoders);
    stats_.lines += static_cast<std::size_t>(
        f.tokens.empty() ? 0 : f.tokens.back().line);
  }
  for (const auto& [suffix, seen] : encoders) {
    if (decoders.find(suffix) == decoders.end()) {
      all.push_back({seen.file, seen.line, RuleId::kS1UnpairedCodec,
                     "'encode_" + suffix + "' has no matching 'decode_" + suffix + "'"});
    }
  }
  for (const auto& [suffix, seen] : decoders) {
    if (encoders.find(suffix) == encoders.end()) {
      all.push_back({seen.file, seen.line, RuleId::kS1UnpairedCodec,
                     "'decode_" + suffix + "' has no matching 'encode_" + suffix + "'"});
    }
  }
  check_l2(files_, all);

  // Apply suppressions.
  std::map<std::string, const FileScan*> by_path;
  for (const FileScan& f : files_) by_path[f.path] = &f;
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : all) {
    const auto it = by_path.find(d.file);
    if (it != by_path.end() && suppressed(*it->second, d)) {
      ++stats_.suppressed;
      continue;
    }
    kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return static_cast<int>(a.rule) < static_cast<int>(b.rule);
  });
  stats_.files = files_.size();
  stats_.diagnostics = kept.size();
  for (const Diagnostic& d : kept) ++stats_.per_rule[rule_info(d.rule).id];
  return kept;
}

std::string Linter::graph_dot() const {
  // module -> set of included modules, from the scanned include directives.
  std::map<std::string, std::set<std::string>> edges;
  for (const FileScan& f : files_) {
    if (module_rank(f.module) < 0) continue;
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      const std::string dep = inc.path.substr(0, slash);
      if (dep != f.module && module_rank(dep) >= 0) edges[f.module].insert(dep);
    }
  }
  std::ostringstream out;
  out << "// Module include DAG (generated by rrlint --graph-out).\n";
  out << "// Edge A -> B means: A includes headers of B. Legal iff rank(B) < rank(A).\n";
  out << "digraph layering {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  std::set<std::string> nodes;
  for (const FileScan& f : files_) {
    if (module_rank(f.module) >= 0) nodes.insert(f.module);
  }
  for (const std::string& n : nodes) {
    out << "  \"" << n << "\" [label=\"" << n << "\\nrank " << module_rank(n)
        << "\"];\n";
  }
  for (const auto& [from, deps] : edges) {
    for (const std::string& to : deps) {
      out << "  \"" << from << "\" -> \"" << to << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string format_diagnostic(const Diagnostic& d) {
  const RuleInfo& info = rule_info(d.rule);
  return d.file + ":" + std::to_string(d.line) + ": [" + info.id + "] " + d.message +
         " — " + info.why;
}

}  // namespace rr::lint
