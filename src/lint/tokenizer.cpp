#include "token.hpp"

#include <cctype>

namespace rr::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Cursor over the raw bytes; tracks the current line.
struct Cursor {
  std::string_view s;
  std::size_t i{0};
  int line{1};

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek(std::size_t k = 0) const {
    return i + k < s.size() ? s[i + k] : '\0';
  }
  void bump() {
    if (s[i] == '\n') ++line;
    ++i;
  }
  void bump(std::size_t n) {
    for (std::size_t k = 0; k < n && !done(); ++k) bump();
  }
};

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view v) {
  while (!v.empty() && std::isspace(static_cast<unsigned char>(v.front()))) v.remove_prefix(1);
  while (!v.empty() && std::isspace(static_cast<unsigned char>(v.back()))) v.remove_suffix(1);
  return v;
}

/// Parses the body of a comment that contains the suppression marker.
/// Expected shape: the marker, then allow(D2, D3): hash order never escapes.
/// Comments that merely *mention* the marker in prose (no "allow" after it)
/// are ignored rather than reported, so documentation can talk about the
/// syntax without tripping A1.
void parse_suppression(std::string_view comment, int line, bool own_line, FileScan& out) {
  const std::size_t at = comment.find("rrlint:");
  Suppression sup;
  sup.line = line;
  sup.own_line = own_line;
  sup.raw = std::string(trim(comment.substr(at)));

  std::string_view rest = trim(comment.substr(at + 7));
  if (rest.substr(0, 5) != "allow") return;  // prose mention, not a suppression
  {
    rest = trim(rest.substr(5));
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      if (close != std::string_view::npos) {
        std::string_view list = rest.substr(1, close - 1);
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          std::string_view one = trim(list.substr(0, comma));
          if (!one.empty()) sup.rules.emplace_back(one);
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
        std::string_view tail = trim(rest.substr(close + 1));
        if (!tail.empty() && tail.front() == ':') {
          sup.parsed = !sup.rules.empty();
          sup.justified = !trim(tail.substr(1)).empty();
        }
      }
    }
  }
  out.suppressions.push_back(std::move(sup));
}

}  // namespace

std::string module_of(std::string_view rel_path) {
  if (rel_path.substr(0, 4) == "src/") {
    const std::string_view rest = rel_path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) return std::string(rest.substr(0, slash));
    return "src";  // loose file directly under src/
  }
  for (const std::string_view top : {"tools", "tests", "bench", "examples"}) {
    if (rel_path.substr(0, top.size()) == top &&
        (rel_path.size() == top.size() || rel_path[top.size()] == '/')) {
      return std::string(top);
    }
  }
  return {};
}

FileScan scan_source(std::string path, std::string module, std::string content) {
  FileScan out;
  out.path = std::move(path);
  out.module = std::move(module);
  out.content = std::move(content);

  Cursor c{out.content};
  // Line numbers of lines that already carry a non-comment token — used to
  // decide whether a suppression comment sits on its own line.
  int last_code_line = 0;

  auto push = [&](Tok kind, std::size_t begin, std::size_t end, int line) {
    out.tokens.push_back(Token{
        kind, std::string_view(out.content).substr(begin, end - begin), line});
    last_code_line = line;
  };

  while (!c.done()) {
    const char ch = c.peek();

    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.bump();
      continue;
    }

    // Line comment.
    if (ch == '/' && c.peek(1) == '/') {
      const int line = c.line;
      const std::size_t begin = c.i;
      while (!c.done() && c.peek() != '\n') c.bump();
      const std::string_view body =
          std::string_view(out.content).substr(begin, c.i - begin);
      if (body.find("rrlint:") != std::string_view::npos) {
        parse_suppression(body, line, last_code_line != line, out);
      }
      continue;
    }

    // Block comment.
    if (ch == '/' && c.peek(1) == '*') {
      const int line = c.line;
      const bool own = last_code_line != line;
      const std::size_t begin = c.i;
      c.bump(2);
      bool closed = false;
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          c.bump(2);
          closed = true;
          break;
        }
        c.bump();
      }
      if (!closed) {
        out.errors.push_back("line " + std::to_string(line) + ": unterminated block comment");
      }
      const std::string_view body =
          std::string_view(out.content).substr(begin, c.i - begin);
      if (body.find("rrlint:") != std::string_view::npos) {
        parse_suppression(body, line, own, out);
      }
      continue;
    }

    // Preprocessor directive: capture #include targets; tokenize everything
    // else on the line normally (a #define body can hide a banned call).
    if (ch == '#' && (out.tokens.empty() || out.tokens.back().line != c.line ||
                      out.tokens.back().text != "\\")) {
      const int line = c.line;
      c.bump();  // '#'
      while (!c.done() && (c.peek() == ' ' || c.peek() == '\t')) c.bump();
      std::size_t dbegin = c.i;
      while (!c.done() && ident_char(c.peek())) c.bump();
      const std::string_view directive =
          std::string_view(out.content).substr(dbegin, c.i - dbegin);
      if (directive == "include") {
        while (!c.done() && (c.peek() == ' ' || c.peek() == '\t')) c.bump();
        const char open = c.peek();
        const char close = open == '<' ? '>' : '"';
        if (open == '<' || open == '"') {
          c.bump();
          const std::size_t tbegin = c.i;
          while (!c.done() && c.peek() != close && c.peek() != '\n') c.bump();
          if (c.peek() == close) {
            out.includes.push_back(Include{
                std::string(std::string_view(out.content).substr(tbegin, c.i - tbegin)),
                open == '<', line});
            c.bump();
          } else {
            out.errors.push_back("line " + std::to_string(line) +
                                 ": unterminated #include target");
          }
        }
        // Drop the rest of the line (comments after the target are handled
        // by the main loop on the next iteration only if we keep them —
        // simplest is to scan on; trailing // comments may carry rrlint:).
        continue;
      }
      // Non-include directive: fall through; its tokens are scanned by the
      // main loop (identifiers in #define bodies stay visible to rules).
      continue;
    }

    // Raw string literal: R"tag( ... )tag"
    if (ch == 'R' && c.peek(1) == '"') {
      const int line = c.line;
      const std::size_t begin = c.i;
      c.bump(2);
      std::string tag;
      while (!c.done() && c.peek() != '(' && c.peek() != '\n' && tag.size() <= 16) {
        tag.push_back(c.peek());
        c.bump();
      }
      if (c.peek() != '(') {
        out.errors.push_back("line " + std::to_string(line) + ": malformed raw string");
        continue;
      }
      c.bump();  // '('
      const std::string terminator = ")" + tag + "\"";
      bool closed = false;
      while (!c.done()) {
        if (c.peek() == ')' &&
            std::string_view(out.content).substr(c.i, terminator.size()) == terminator) {
          c.bump(terminator.size());
          closed = true;
          break;
        }
        c.bump();
      }
      if (!closed) {
        out.errors.push_back("line " + std::to_string(line) + ": unterminated raw string");
      }
      push(Tok::kString, begin, begin, line);  // contents dropped
      continue;
    }

    // String / char literal (with escapes). Prefixes (u8, L, ...) tokenize
    // as a preceding identifier, which is harmless.
    if (ch == '"' || ch == '\'') {
      const int line = c.line;
      const char quote = ch;
      c.bump();
      bool closed = false;
      while (!c.done()) {
        if (c.peek() == '\\') {
          c.bump(2);
          continue;
        }
        if (c.peek() == quote) {
          c.bump();
          closed = true;
          break;
        }
        if (c.peek() == '\n') break;  // runaway literal: stop at EOL
        c.bump();
      }
      if (!closed) {
        out.errors.push_back("line " + std::to_string(line) + ": unterminated " +
                             (quote == '"' ? std::string("string") : std::string("char")) +
                             " literal");
      }
      push(quote == '"' ? Tok::kString : Tok::kChar, c.i, c.i, line);
      continue;
    }

    // Identifier / keyword.
    if (ident_start(ch)) {
      const int line = c.line;
      const std::size_t begin = c.i;
      while (!c.done() && ident_char(c.peek())) c.bump();
      push(Tok::kIdent, begin, c.i, line);
      continue;
    }

    // Number (incl. hex/bin/float/digit separators — never inspected).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      const int line = c.line;
      const std::size_t begin = c.i;
      while (!c.done()) {
        const char p = c.peek();
        if (ident_char(p) || p == '.' || p == '\'') {
          c.bump();
          continue;
        }
        if ((p == '+' || p == '-') && c.i > begin) {
          const char prev = out.content[c.i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.bump();
            continue;
          }
        }
        break;
      }
      push(Tok::kNumber, begin, c.i, line);
      continue;
    }

    // Single punctuation character.
    push(Tok::kPunct, c.i, c.i + 1, c.line);
    c.bump();
  }

  return out;
}

}  // namespace rr::lint
