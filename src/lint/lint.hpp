// rrlint driver: feed it files (from disk or inline, for tests), run the
// rule passes, collect diagnostics with suppressions applied.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rules.hpp"
#include "token.hpp"

namespace rr::lint {

struct Stats {
  std::size_t files{0};
  std::size_t lines{0};
  std::size_t rules{kRuleCount};
  std::size_t diagnostics{0};      ///< unsuppressed, i.e. what run() returned
  std::size_t suppressed{0};       ///< silenced by a justified allow(...)
  std::map<std::string, std::size_t> per_rule;  ///< unsuppressed, by rule id
};

class Linter {
 public:
  /// Registers one source file. `rel_path` is repo-relative with forward
  /// slashes; the layering module is derived from it.
  void add_file(std::string rel_path, std::string content);

  /// Walks `root`/<dir> for each dir and add_file()s every *.hpp / *.cpp.
  /// Returns false (with a message in io_errors()) when a dir is missing.
  bool add_tree(const std::string& root, const std::vector<std::string>& dirs);

  /// Runs every rule over everything added so far. Diagnostics are sorted
  /// (file, line, rule) and deterministic. Callable once per Linter.
  [[nodiscard]] std::vector<Diagnostic> run();

  /// DOT rendering of the module include graph (stable ordering), for
  /// --graph-out and the DESIGN.md layering figure.
  [[nodiscard]] std::string graph_dot() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::string>& io_errors() const { return io_errors_; }
  [[nodiscard]] const std::vector<FileScan>& files() const { return files_; }

 private:
  std::vector<FileScan> files_;
  std::vector<std::string> io_errors_;
  Stats stats_;
};

/// Formats one diagnostic as "path:line: [ID] message — why".
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

}  // namespace rr::lint
