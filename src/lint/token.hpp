// rrlint token model.
//
// The analyzer never parses C++ — it works on a comment- and
// string-stripped token stream per file, which is exactly enough to check
// the determinism contract (banned identifiers, container iteration,
// static-variable qualifiers, codec pairing, include layering) without
// dragging in a real frontend. Deliberately dependency-free: the lint
// layer sits below everything, including common/, so it can gate the whole
// tree without participating in the graph it checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rr::lint {

enum class Tok : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (value never inspected)
  kString,  ///< string literal, contents dropped ("" placeholder)
  kChar,    ///< character literal, contents dropped
  kPunct,   ///< single punctuation character
};

struct Token {
  Tok kind{Tok::kPunct};
  std::string_view text;  ///< view into FileScan::content
  int line{0};
};

/// One #include directive.
struct Include {
  std::string path;  ///< target exactly as written between the delimiters
  bool angled{false};
  int line{0};
};

/// One suppression comment: the `rrlint:` marker followed by
/// "allow(" + one or more rule ids + ")" + ":" + a justification.
/// The justification is mandatory; an unjustified or malformed suppression
/// never silences anything (and is itself reported as A1).
struct Suppression {
  int line{0};                      ///< line the comment starts on
  bool own_line{false};             ///< no code before it on that line
  bool parsed{false};               ///< grammar matched
  bool justified{false};            ///< non-empty reason after the colon
  std::vector<std::string> rules;   ///< rule ids inside allow(...)
  std::string raw;                  ///< comment text, for diagnostics
};

/// Tokenized view of one translation unit (or header).
struct FileScan {
  std::string path;    ///< repo-relative, '/'-separated (e.g. "src/net/network.cpp")
  std::string module;  ///< layering unit: "net", "tools", ... (see rules.cpp)
  std::string content; ///< owned; every Token::text points into it
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
  std::vector<std::string> errors;  ///< tokenizer-level problems (unterminated literal, ...)
};

/// Tokenizes `content`. Never throws; malformed input is reported through
/// FileScan::errors and tokenization resumes on the next line.
[[nodiscard]] FileScan scan_source(std::string path, std::string module, std::string content);

/// Layering unit for a repo-relative path: "src/net/x.cpp" -> "net",
/// "tools/rrlint.cpp" -> "tools". Empty when the path is outside the known
/// roots (caller decides whether to skip or treat as top-of-stack).
[[nodiscard]] std::string module_of(std::string_view rel_path);

}  // namespace rr::lint
