#include "rules.hpp"

#include <algorithm>
#include <array>

namespace rr::lint {
namespace {

constexpr std::array<RuleInfo, kRuleCount> kRules = {{
    {"D1", "banned nondeterminism primitive",
     "randomness must flow through common/rng forked streams and time through the "
     "simulator clock, or --replay and --jobs parity break"},
    {"D2", "iteration over an unordered container in sim-visible code",
     "hash-table iteration order is implementation-defined and leaks into message, "
     "callback and trace order"},
    {"D3", "pointer-keyed container",
     "allocator addresses differ run to run, so key order (or hash order) is not "
     "reproducible"},
    {"D4", "address converted to an integer value",
     "pointer values are not stable across runs; an address that reaches a key, "
     "hash or trace breaks replay"},
    {"G1", "mutable namespace-scope or static-member state",
     "parallel schedule exploration runs one sim per worker; process-wide mutable "
     "state couples them (must be const, thread_local or std::atomic)"},
    {"G2", "mutable function-local static",
     "hidden cross-instance coupling; must be const, thread_local or std::atomic"},
    {"S1", "unpaired codec function",
     "every encode_X needs a decode_X twin (and vice versa) so wire formats stay "
     "round-trippable and fuzzable"},
    {"S2", "raw memory operation inside a codec body",
     "codecs must speak BufWriter/BufReader only; raw memcpy/casts bypass the "
     "bounds-guarded core in common/serde"},
    {"S3", "decode path that never touches BufReader",
     "peer input must go through the bounds-checked reader or malformed frames "
     "become undefined behaviour"},
    {"L1", "include against the module layering order",
     "upward includes re-tangle the DAG that keeps protocol layers independently "
     "testable and cycle-free"},
    {"L2", "include cycle",
     "cyclic headers make build order and layer ownership ambiguous"},
    {"L3", "include into a module absent from the layer table",
     "new modules must be ranked in src/lint/rules.cpp before code can depend on "
     "them"},
    {"A1", "malformed or unjustified rrlint suppression",
     "suppressions require a known rule id and a written justification; anything "
     "else silences nothing"},
}};

/// Module layering ranks. An include from module A into module B is legal
/// iff rank(B) < rank(A) (or A == B). Keep in sync with DESIGN.md §10.
constexpr std::pair<const char*, int> kLayers[] = {
    {"common", 0},
    {"lint", 1},  // std-only; ranked above common so it may adopt it later
    {"metrics", 1},
    {"sim", 1},
    {"exec", 1},
    {"trace", 2},
    {"app", 2},
    {"fbl", 2},
    {"detect", 2},
    {"obs", 3},
    {"snapshot", 3},
    {"net", 4},
    {"storage", 4},
    {"recovery", 5},
    {"runtime", 6},
    {"analysis", 6},
    {"check", 7},
    {"harness", 7},
    {"tools", 8},
    {"bench", 8},
    {"tests", 8},
    {"examples", 8},
};

constexpr const char* kSimVisible[] = {
    "common", "sim",      "metrics",  "trace",   "obs",  "net", "storage",
    "detect", "fbl",      "snapshot", "recovery", "runtime", "app",
};

}  // namespace

const RuleInfo& rule_info(RuleId id) { return kRules[static_cast<std::size_t>(id)]; }

bool parse_rule_id(const std::string& text, RuleId& out) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (text == kRules[i].id) {
      out = static_cast<RuleId>(i);
      return true;
    }
  }
  return false;
}

int module_rank(const std::string& module) {
  for (const auto& [name, rank] : kLayers) {
    if (module == name) return rank;
  }
  return -1;
}

bool sim_visible(const std::string& module) {
  return std::any_of(std::begin(kSimVisible), std::end(kSimVisible),
                     [&](const char* m) { return module == m; });
}

}  // namespace rr::lint
