#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "fbl/frame.hpp"

namespace rr::snapshot {

namespace {

enum class SnapKind : std::uint8_t { kMarker = 1, kReport = 2 };

struct MarkerMsg {
  std::uint64_t id{0};
  ProcessId initiator;
};

struct ReportMsg {
  std::uint64_t id{0};
  LocalCut cut;
  std::map<ProcessId, std::uint64_t> channels;
};

Bytes encode_marker(std::uint64_t id, ProcessId initiator) {
  BufWriter w(32);
  fbl::encode_kind(w, fbl::FrameKind::kSnapshot);
  w.u8(static_cast<std::uint8_t>(SnapKind::kMarker));
  w.u64(id);
  w.process_id(initiator);
  return std::move(w).take();
}

// Body after the frame-kind and SnapKind bytes.
MarkerMsg decode_marker(BufReader& r) {
  MarkerMsg m;
  m.id = r.u64();
  m.initiator = r.process_id();
  return m;
}

Bytes encode_report(std::uint64_t id, const LocalCut& cut,
                    const std::map<ProcessId, std::uint64_t>& channels) {
  BufWriter w(128);
  fbl::encode_kind(w, fbl::FrameKind::kSnapshot);
  w.u8(static_cast<std::uint8_t>(SnapKind::kReport));
  w.u64(id);
  cut.encode(w);
  w.varint(channels.size());
  for (const auto& [src, count] : channels) {
    w.process_id(src);
    w.u64(count);
  }
  return std::move(w).take();
}

// Body after the frame-kind and SnapKind bytes.
ReportMsg decode_report(BufReader& r) {
  ReportMsg m;
  m.id = r.u64();
  m.cut = LocalCut::decode(r);
  const auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ProcessId from = r.process_id();
    m.channels[from] = r.u64();
  }
  return m;
}

}  // namespace

void LocalCut::encode(BufWriter& w) const {
  w.u64(app_hash);
  w.u64(rsn);
  fbl::encode_watermarks(w, send_seq);
  fbl::encode_watermarks(w, recv_marks);
}

LocalCut LocalCut::decode(BufReader& r) {
  LocalCut cut;
  cut.app_hash = r.u64();
  cut.rsn = r.u64();
  cut.send_seq = fbl::decode_watermarks(r);
  cut.recv_marks = fbl::decode_watermarks(r);
  return cut;
}

std::vector<std::string> GlobalSnapshot::violations() const {
  std::vector<std::string> out;
  for (const auto& [p, p_cut] : cuts) {
    for (const auto& [q, q_cut] : cuts) {
      if (p == q) continue;
      const std::uint64_t sent = fbl::watermark_of(p_cut.send_seq, q);
      const std::uint64_t delivered = fbl::watermark_of(q_cut.recv_marks, p);
      std::uint64_t channel = 0;
      const auto it = channels.find({p, q});
      if (it != channels.end()) channel = it->second;
      if (sent != delivered + channel) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "channel %s->%s: sent %llu != delivered %llu + in-flight %llu",
                      rr::to_string(p).c_str(), rr::to_string(q).c_str(),
                      static_cast<unsigned long long>(sent),
                      static_cast<unsigned long long>(delivered),
                      static_cast<unsigned long long>(channel));
        out.emplace_back(buf);
      }
    }
  }
  return out;
}

std::uint64_t GlobalSnapshot::in_flight() const {
  std::uint64_t total = 0;
  for (const auto& [channel, count] : channels) total += count;
  return total;
}

SnapshotManager::SnapshotManager(ProcessId self, Hooks hooks, metrics::Registry& metrics)
    : self_(self), hooks_(std::move(hooks)), metrics_(metrics) {
  RR_CHECK(hooks_.send_frame && hooks_.peers && hooks_.local_cut);
}

void SnapshotManager::initiate(std::uint64_t id) {
  RR_CHECK(id != 0);
  if (recording_ || assembling_) {
    // A previous snapshot stalled (typically a participant crashed while
    // markers or reports were in flight). Snapshots are best-effort:
    // discard it and start over; stragglers are dropped by their stale id.
    metrics_.counter("snapshot.aborted").add();
    recording_ = false;
    assembling_ = false;
    awaiting_marker_.clear();
    channel_counts_.clear();
    awaiting_report_.clear();
    assembly_ = GlobalSnapshot{};
  }
  metrics_.counter("snapshot.initiated").add();
  assembling_ = true;
  assembly_ = GlobalSnapshot{};
  assembly_.id = id;
  assembly_.initiator = self_;
  awaiting_report_ = {};
  for (const ProcessId p : hooks_.peers()) awaiting_report_.insert(p);
  initiator_ = self_;
  record_cut_and_emit_markers(id);
}

void SnapshotManager::record_cut_and_emit_markers(std::uint64_t id) {
  recording_ = true;
  current_id_ = id;
  my_cut_ = hooks_.local_cut();
  channel_counts_.clear();
  awaiting_marker_.clear();
  for (const ProcessId p : hooks_.peers()) {
    awaiting_marker_.insert(p);
    channel_counts_[p] = 0;
    hooks_.send_frame(p, encode_marker(id, initiator_));
    metrics_.counter("snapshot.markers_sent").add();
  }
  maybe_finish_recording();  // degenerate two-process systems finish fast
}

void SnapshotManager::on_frame(ProcessId src, BufReader& r) {
  const auto kind = static_cast<SnapKind>(r.u8());
  if (kind == SnapKind::kMarker) {
    const MarkerMsg m = decode_marker(r);
    // Ids must be system-wide unique and increasing: a higher id supersedes
    // a recording that stalled because a participant crashed (best-effort
    // semantics — the stalled snapshot is abandoned everywhere it touched).
    if (recording_ && m.id > current_id_) {
      metrics_.counter("snapshot.aborted").add();
      recording_ = false;
    }
    if (!recording_) {
      initiator_ = m.initiator;
      record_cut_and_emit_markers(m.id);
    }
    if (m.id != current_id_) {
      metrics_.counter("snapshot.stale_markers").add();
      return;
    }
    // The channel from src holds nothing beyond what we counted.
    awaiting_marker_.erase(src);
    maybe_finish_recording();
  } else if (kind == SnapKind::kReport) {
    ReportMsg m = decode_report(r);
    if (!assembling_ || m.id != assembly_.id) {
      metrics_.counter("snapshot.stale_reports").add();
      return;
    }
    assembly_.cuts[src] = std::move(m.cut);
    for (const auto& [from, count] : m.channels) assembly_.channels[{from, src}] = count;
    awaiting_report_.erase(src);
    maybe_complete_assembly();
  } else {
    throw SerdeError("unknown snapshot frame kind");
  }
}

void SnapshotManager::observe_delivery(ProcessId src) {
  if (!recording_) return;
  const auto it = channel_counts_.find(src);
  // Channels whose marker already arrived are sealed.
  if (it != channel_counts_.end() && awaiting_marker_.contains(src)) ++it->second;
}

void SnapshotManager::maybe_finish_recording() {
  if (!recording_ || !awaiting_marker_.empty()) return;
  recording_ = false;
  metrics_.counter("snapshot.cuts_recorded").add();
  if (initiator_ == self_) {
    // Fold our own contribution straight into the assembly.
    assembly_.cuts[self_] = my_cut_;
    for (const auto& [from, count] : channel_counts_) assembly_.channels[{from, self_}] = count;
    maybe_complete_assembly();
  } else {
    hooks_.send_frame(initiator_, encode_report(current_id_, my_cut_, channel_counts_));
    metrics_.counter("snapshot.reports_sent").add();
  }
}

void SnapshotManager::maybe_complete_assembly() {
  if (!assembling_ || recording_ || !awaiting_report_.empty()) return;
  assembling_ = false;
  metrics_.counter("snapshot.completed").add();
  RR_DEBUG("snap", "%s assembled snapshot %llu (%llu in flight)", to_string(self_).c_str(),
           static_cast<unsigned long long>(assembly_.id),
           static_cast<unsigned long long>(assembly_.in_flight()));
  completed_ = std::move(assembly_);
  assembly_ = GlobalSnapshot{};
}

std::optional<GlobalSnapshot> SnapshotManager::take_completed() {
  auto out = std::move(completed_);
  completed_.reset();
  return out;
}

void SnapshotManager::reset() {
  recording_ = false;
  assembling_ = false;
  current_id_ = 0;
  awaiting_marker_.clear();
  channel_counts_.clear();
  awaiting_report_.clear();
  assembly_ = GlobalSnapshot{};
  completed_.reset();
}

}  // namespace rr::snapshot
