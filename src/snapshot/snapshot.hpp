// Chandy–Lamport distributed snapshots (the paper's reference [6]).
//
// The recovery leader's depinfo gather is a *specialized* consistent
// snapshot — "a consistent snapshot of the message receipt order
// information that is scattered throughout the system" (paper §3.1). This
// module implements the general algorithm over the same FIFO channels and
// uses it as an online validator: a completed snapshot must satisfy, for
// every ordered pair (p, q),
//
//     sent(p→q at p's cut) = delivered(q←p at q's cut) + in-channel(p→q)
//
// which our per-channel ssn watermarks make directly checkable.
//
// Protocol (classic, FIFO channels):
//  * the initiator records its local cut and emits a marker on every
//    channel;
//  * on the first marker, a process records its cut, emits markers, and
//    starts counting per-channel deliveries;
//  * a channel's state is the deliveries counted until its marker arrives;
//  * when all channels have delivered their markers, the process reports
//    its cut + channel counts to the initiator, which assembles the global
//    snapshot once every report is in.
//
// Scope: failure-free operation. A crash wipes in-progress snapshot state
// (reset()); the initiator's assembly simply never completes, which
// callers observe and discard.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "fbl/watermarks.hpp"
#include "metrics/registry.hpp"

namespace rr::snapshot {

/// One process's recorded cut.
struct LocalCut {
  std::uint64_t app_hash{0};
  Rsn rsn{0};
  fbl::Watermarks send_seq;    ///< per destination: app messages sent
  fbl::Watermarks recv_marks;  ///< per source: app messages delivered

  void encode(BufWriter& w) const;
  [[nodiscard]] static LocalCut decode(BufReader& r);
};

/// Assembled global snapshot (initiator side).
struct GlobalSnapshot {
  std::uint64_t id{0};
  ProcessId initiator;
  std::map<ProcessId, LocalCut> cuts;
  /// (sender, receiver) -> messages captured in the channel.
  std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> channels;

  /// The flow-conservation consistency check described above. Returns an
  /// empty vector when consistent; otherwise one line per violated channel.
  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] bool consistent() const { return violations().empty(); }

  /// Total messages captured inside channels.
  [[nodiscard]] std::uint64_t in_flight() const;
};

class SnapshotManager {
 public:
  struct Hooks {
    /// Transmit an encoded snapshot frame to a peer.
    std::function<void(ProcessId, Bytes)> send_frame;
    /// All application processes except self, sorted.
    std::function<std::vector<ProcessId>()> peers;
    /// Record this process's cut right now.
    std::function<LocalCut()> local_cut;
  };

  SnapshotManager(ProcessId self, Hooks hooks, metrics::Registry& metrics);

  /// Initiate a snapshot with a caller-chosen unique id.
  void initiate(std::uint64_t id);

  /// Handle an incoming snapshot frame (reader positioned after the
  /// FrameKind byte).
  void on_frame(ProcessId src, BufReader& r);

  /// Node calls this for every application delivery, before the handler:
  /// channels being recorded count it.
  void observe_delivery(ProcessId src);

  /// A completed snapshot this process initiated, if any (consumed).
  [[nodiscard]] std::optional<GlobalSnapshot> take_completed();

  [[nodiscard]] bool recording() const noexcept { return recording_; }

  /// Crash: all in-progress snapshot state is volatile.
  void reset();

 private:
  void record_cut_and_emit_markers(std::uint64_t id);
  void maybe_finish_recording();
  void maybe_complete_assembly();

  ProcessId self_;
  Hooks hooks_;
  metrics::Registry& metrics_;

  // Participant state (one snapshot at a time; ids must be unique).
  bool recording_{false};
  std::uint64_t current_id_{0};
  ProcessId initiator_;
  LocalCut my_cut_;
  std::set<ProcessId> awaiting_marker_;
  std::map<ProcessId, std::uint64_t> channel_counts_;

  // Initiator state.
  bool assembling_{false};
  GlobalSnapshot assembly_;
  std::set<ProcessId> awaiting_report_;
  std::optional<GlobalSnapshot> completed_;
};

}  // namespace rr::snapshot
