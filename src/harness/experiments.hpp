// Calibrated "paper testbed" configuration.
//
// The paper's prototype ran on eight DEC 5000/200 workstations (25 MHz
// MIPS, 32 MB RAM, ~1 MB process images) over a 155 Mb/s ATM LAN, with
// checkpoints on local disks. These helpers encode that environment for
// the simulator:
//
//   network    250 us base one-way latency, 155 Mb/s, 50 us jitter
//   storage    12 ms positioning + 2 MB/s (mid-90s SCSI disk)
//   detection  500 ms heartbeats, 3 s suspicion timeout; the local
//              supervisor notices a crash after 2 s ("timeouts and
//              retrials")
//   processes  ~1 MB restorable image (padded snapshot + send log)
//   replay     50 us of CPU per re-executed message (25 MHz-era handler)
//   workload   two gossip tokens circulating among n processes
//              (~800 deliveries/s per process)
//
// Experiment timings below place the first crash ~1.2 s after the first
// checkpoint commits, which leaves roughly a thousand messages to replay —
// the regime where the paper measured ~50 ms of live-process blocking
// under the blocking algorithm.
#pragma once

#include "app/workloads.hpp"
#include "harness/scenario.hpp"
#include "recovery/recovery_manager.hpp"
#include "runtime/cluster.hpp"

namespace rr::harness {

struct PaperSetup {
  /// Cluster configuration matching the paper's testbed.
  [[nodiscard]] static runtime::ClusterConfig testbed(recovery::Algorithm algorithm,
                                                      std::uint32_t n = 8,
                                                      std::uint32_t f = 2);

  /// Gossip workload with `sources` token launchers and ~`pad_bytes` of
  /// process image.
  [[nodiscard]] static app::AppFactory workload(std::size_t pad_bytes = 512 * 1024,
                                                std::uint32_t sources = 2);

  /// First crash: ~1.2 s after the first checkpoints commit.
  static constexpr Time kFirstCrash = milliseconds(6'500);
  /// Second crash: while the first process is restoring its checkpoint.
  static constexpr Time kSecondCrash = milliseconds(8'900);
  /// Default horizon leaving room for double-failure recoveries.
  static constexpr Time kHorizon = seconds(20);
};

/// Mean over completed recoveries of a timeline field.
template <typename Fn>
[[nodiscard]] double mean_over(const std::vector<runtime::RecoveryTimeline>& ts, Fn fn) {
  if (ts.empty()) return 0.0;
  double sum = 0;
  for (const auto& t : ts) sum += static_cast<double>(fn(t));
  return sum / static_cast<double>(ts.size());
}

}  // namespace rr::harness
