#include "harness/experiments.hpp"

namespace rr::harness {

runtime::ClusterConfig PaperSetup::testbed(recovery::Algorithm algorithm, std::uint32_t n,
                                           std::uint32_t f) {
  runtime::ClusterConfig cfg;
  cfg.num_processes = n;
  cfg.f = f;
  cfg.algorithm = algorithm;
  cfg.seed = 1995;

  cfg.net.base_latency = microseconds(250);
  cfg.net.bytes_per_second = 155e6 / 8.0;  // 155 Mb/s ATM
  cfg.net.jitter_max = microseconds(50);

  cfg.storage.seek_latency = milliseconds(12);
  cfg.storage.bytes_per_second = 2.0 * 1024 * 1024;

  cfg.detector.heartbeat_period = milliseconds(500);
  cfg.detector.timeout = seconds(3);

  cfg.supervisor_restart_delay = seconds(2);
  cfg.checkpoint_period = seconds(5);
  cfg.replay_delivery_cost = microseconds(50);

  cfg.recovery.progress_period = milliseconds(500);
  cfg.recovery.phase_timeout = seconds(5);
  return cfg;
}

app::AppFactory PaperSetup::workload(std::size_t pad_bytes, std::uint32_t sources) {
  return [pad_bytes, sources](ProcessId pid) -> std::unique_ptr<app::Application> {
    app::GossipConfig cfg;
    cfg.tokens_per_process = pid.value < sources ? 1 : 0;
    cfg.payload_pad = 96;
    cfg.seed = 42 + pid.value;
    auto inner = std::make_unique<app::GossipApp>(cfg);
    if (pad_bytes == 0) return inner;
    return std::make_unique<app::PaddedApp>(std::move(inner), pad_bytes);
  };
}

}  // namespace rr::harness
