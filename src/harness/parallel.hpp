// Parallel scenario execution for the bench runners.
//
// A scenario run is a pure function of its ScenarioConfig (the simulation
// kernel, RNG streams, metrics registry and span arena all live inside the
// per-run Cluster), so a sweep of independent configs can be fanned out on
// the work-stealing pool with results collected back in input order —
// tables, BENCHJSON marker lines and error checks printed afterwards are
// bit-identical to a serial run; only wall-clock time changes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"

namespace rr::harness {

/// Run every config as a fully independent simulation instance on a
/// work-stealing pool of `jobs` threads (<= 1 runs inline, 0 = hardware
/// concurrency). results[i] always corresponds to configs[i].
[[nodiscard]] std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioConfig>& configs, unsigned jobs = 1);

/// Combine the per-run "span.<name>" histogram snapshots of a sweep into
/// one distribution per phase, matched by phase name. Results are folded in
/// input-index order — the canonical order metrics::Histogram::merge
/// documents — so sweep-level quantiles are bit-identical however the runs
/// themselves were scheduled across workers. Row order is first-seen order,
/// which for span histograms is the span taxonomy's declaration order.
[[nodiscard]] std::vector<std::pair<std::string, metrics::Histogram>> merge_histograms(
    const std::vector<ScenarioResult>& results);

/// Parse the bench runners' shared `--jobs N` / `--jobs=N` flag from the
/// raw argv. Absent = 1 (serial, the historical behaviour); an explicit 0
/// = hardware concurrency. Unknown arguments are ignored — each bench owns
/// the rest of its command line.
[[nodiscard]] unsigned bench_jobs(int argc, char** argv);

}  // namespace rr::harness
