// Per-phase recovery-latency breakdown shared by the T-series benches.
//
// Renders ScenarioResult::span_latency (the SpanTracer's "span.<name>"
// distributions) two ways: a human-readable p50/p95/max table with one row
// per (algorithm, phase), and a machine-readable "BENCHJSON {...}" marker
// line that tools/bench_report.py scrapes into BENCH_recovery.json.
#pragma once

#include <string>

#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace rr::harness {

/// Empty table with the standard phase-breakdown columns.
[[nodiscard]] Table phase_breakdown_table(const std::string& bench);

/// One row per phase of `r.span_latency`, labelled with `algorithm`.
void add_phase_rows(Table& table, const std::string& algorithm, const ScenarioResult& r);

/// Print `r.span_latency` as a single self-identifying marker line:
///   BENCHJSON {"bench":"t1","algorithm":"nonblocking","phases":{...}}
/// Durations in milliseconds. Scraped by tools/bench_report.py; keep the
/// shape in sync with BENCH_recovery.json.
void print_bench_json(const std::string& bench, const std::string& algorithm,
                      const ScenarioResult& r);

}  // namespace rr::harness
