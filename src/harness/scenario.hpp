// Scenario runner shared by benches, examples and integration tests.
//
// A scenario = cluster configuration + workload + crash schedule + horizon.
// run_scenario() executes it deterministically and distills the metrics the
// paper's evaluation talks about: per-recovery timelines (detect / restore
// / gather / replay), live-process blocked time, and control-message
// accounting split by recovery phase.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "app/application.hpp"
#include "app/workloads.hpp"
#include "metrics/counters.hpp"
#include "runtime/cluster.hpp"

namespace rr::harness {

struct CrashEvent {
  ProcessId pid;
  Time at{0};
};

struct ScenarioConfig {
  runtime::ClusterConfig cluster;
  /// Workload; defaults to GossipApp if not set.
  app::AppFactory factory;
  std::vector<CrashEvent> crashes;
  /// Minimum virtual time to simulate.
  Time horizon = seconds(30);
  /// Keep running past the horizon (in steps) until the cluster is idle,
  /// up to this cap. 0 disables the extension.
  Time idle_deadline = seconds(120);
};

struct BlockedStat {
  ProcessId pid;
  Duration blocked{0};
  std::uint64_t episodes{0};
};

/// One row of the per-phase span-latency breakdown, distilled from the
/// registry's "span.<name>" histogram + accumulator pairs the SpanTracer
/// feeds (requires cluster.enable_spans). Durations in nanoseconds;
/// p50/p95/p99 carry the histogram's power-of-two bucket resolution, max is
/// exact.
struct PhaseLatency {
  std::string name;  ///< span name: "gather", "regather", "replay", ...
  std::uint64_t count{0};
  double p50_ns{0};
  double p95_ns{0};
  double p99_ns{0};
  double max_ns{0};
};

struct ScenarioResult {
  bool idle{false};
  Time finished_at{0};
  std::uint64_t state_hash{0};
  std::uint64_t app_delivered{0};
  std::uint64_t app_sent{0};

  std::vector<runtime::RecoveryTimeline> recoveries;
  std::vector<BlockedStat> blocked;  // one per process
  /// Per-phase latency rows (empty unless cluster.enable_spans), sorted by
  /// the span taxonomy's declaration order (protocol phases first).
  std::vector<PhaseLatency> span_latency;
  /// Raw "span.<name>" histogram snapshots, index-aligned with
  /// span_latency, so sweeps can combine distributions across runs with
  /// merge_histograms() instead of re-deriving quantiles per run.
  std::vector<metrics::Histogram> span_histograms;

  std::uint64_t ctrl_msgs{0};
  std::uint64_t ctrl_bytes{0};
  std::uint64_t gather_restarts{0};
  std::uint64_t rounds{0};
  std::uint64_t retransmits{0};
  std::uint64_t det_gaps{0};
  std::uint64_t stale_rejected{0};
  std::uint64_t duplicates{0};

  std::uint64_t storage_reads{0};
  std::uint64_t storage_writes{0};
  std::uint64_t storage_bytes_read{0};
  std::uint64_t storage_bytes_written{0};

  std::uint64_t piggyback_dets{0};
  std::uint64_t piggyback_bytes{0};

  /// Counter value by full name, for anything not broken out above.
  std::function<std::uint64_t(const std::string&)> counter;

  [[nodiscard]] Duration total_blocked() const;
  [[nodiscard]] Duration max_blocked() const;
  /// Mean blocked time over processes that never crashed in the scenario
  /// (the paper reports "each live process blocked for about 50 ms").
  [[nodiscard]] Duration mean_live_blocked(const std::vector<CrashEvent>& crashes) const;
};

/// Run to at least `horizon`, then (optionally) until idle. The Cluster is
/// destroyed before returning; everything relevant is copied into the
/// result. `inspect`, if given, runs against the live cluster at the end.
ScenarioResult run_scenario(const ScenarioConfig& config,
                            const std::function<void(runtime::Cluster&)>& inspect = nullptr);

/// Default workload for experiments: gossip with modest token count.
[[nodiscard]] app::AppFactory default_factory();

}  // namespace rr::harness
