#include "harness/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/work_steal.hpp"

namespace rr::harness {

std::vector<ScenarioResult> run_scenarios(const std::vector<ScenarioConfig>& configs,
                                          unsigned jobs) {
  std::vector<ScenarioResult> results(configs.size());
  exec::parallel_for(jobs, configs.size(),
                     [&](std::size_t i) { results[i] = run_scenario(configs[i]); });
  return results;
}

std::vector<std::pair<std::string, metrics::Histogram>> merge_histograms(
    const std::vector<ScenarioResult>& results) {
  std::vector<std::pair<std::string, metrics::Histogram>> merged;
  for (const ScenarioResult& r : results) {
    for (std::size_t i = 0; i < r.span_histograms.size(); ++i) {
      const std::string& name = r.span_latency[i].name;
      auto it = std::find_if(merged.begin(), merged.end(),
                             [&](const auto& row) { return row.first == name; });
      if (it == merged.end()) {
        merged.emplace_back(name, r.span_histograms[i]);
      } else {
        it->second.merge(r.span_histograms[i]);
      }
    }
  }
  return merged;
}

unsigned bench_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    }
    if (value != nullptr) {
      const unsigned jobs = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
      return jobs == 0 ? exec::default_jobs() : jobs;
    }
  }
  return 1;
}

}  // namespace rr::harness
