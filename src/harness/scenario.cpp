#include "harness/scenario.hpp"

#include <algorithm>
#include <memory>

#include "obs/span.hpp"

namespace rr::harness {

Duration ScenarioResult::total_blocked() const {
  Duration t = 0;
  for (const auto& b : blocked) t += b.blocked;
  return t;
}

Duration ScenarioResult::max_blocked() const {
  Duration t = 0;
  for (const auto& b : blocked) t = std::max(t, b.blocked);
  return t;
}

Duration ScenarioResult::mean_live_blocked(const std::vector<CrashEvent>& crashes) const {
  Duration total = 0;
  std::size_t count = 0;
  for (const auto& b : blocked) {
    const bool crashed = std::any_of(crashes.begin(), crashes.end(),
                                     [&](const CrashEvent& c) { return c.pid == b.pid; });
    if (crashed) continue;
    total += b.blocked;
    ++count;
  }
  return count == 0 ? 0 : total / static_cast<Duration>(count);
}

app::AppFactory default_factory() {
  return [](ProcessId) {
    app::GossipConfig cfg;
    cfg.tokens_per_process = 1;
    cfg.payload_pad = 96;
    return std::make_unique<app::GossipApp>(cfg);
  };
}

ScenarioResult run_scenario(const ScenarioConfig& config,
                            const std::function<void(runtime::Cluster&)>& inspect) {
  runtime::Cluster cluster(config.cluster, config.factory ? config.factory : default_factory());
  cluster.start();
  for (const auto& crash : config.crashes) cluster.crash_at(crash.pid, crash.at);

  cluster.run_until(config.horizon);
  if (config.idle_deadline > 0) {
    while (!cluster.all_idle() && cluster.sim().now() < config.idle_deadline) {
      cluster.run_for(milliseconds(250));
    }
  }

  ScenarioResult r;
  r.idle = cluster.all_idle();
  r.finished_at = cluster.sim().now();
  r.state_hash = cluster.state_hash();
  r.app_delivered = cluster.total_app_delivered();
  r.recoveries = cluster.all_recoveries();
  for (const ProcessId pid : cluster.pids()) {
    auto& node = cluster.node(pid);
    r.blocked.push_back(BlockedStat{pid, node.blocked_time(), node.blocked_episodes()});
  }

  const auto& m = cluster.metrics();
  r.app_sent = m.counter_value("app.sent");
  r.ctrl_msgs = m.counter_value("recovery.ctrl_msgs");
  r.ctrl_bytes = m.counter_value("recovery.ctrl_bytes");
  r.gather_restarts = m.counter_value("recovery.gather_restarts");
  r.rounds = m.counter_value("recovery.rounds");
  r.retransmits = m.counter_value("recovery.retransmits");
  r.det_gaps = m.counter_value("recovery.det_gaps");
  r.stale_rejected = m.counter_value("app.stale_rejected");
  r.duplicates = m.counter_value("app.duplicates");
  r.storage_reads = m.counter_value("storage.reads");
  r.storage_writes = m.counter_value("storage.writes");
  r.storage_bytes_read = m.counter_value("storage.bytes_read");
  r.storage_bytes_written = m.counter_value("storage.bytes_written");
  r.piggyback_dets = m.counter_value("fbl.piggyback_dets");
  r.piggyback_bytes = m.counter_value("fbl.piggyback_bytes");

  // Distill the span tracer's per-phase latency distributions before the
  // cluster (and with it the registry) is torn down. Taxonomy order keeps
  // the printed breakdown stable across runs and algorithms.
  for (std::size_t i = 0; i < obs::kSpanNameCount; ++i) {
    const auto name = static_cast<obs::SpanName>(i);
    const std::string metric = std::string("span.") + obs::to_string(name);
    const metrics::Histogram* h = m.find_histogram(metric);
    const metrics::Accumulator* a = m.find_accum(metric);
    if (h == nullptr || h->count() == 0) continue;
    // Histogram quantiles are pow-of-2 bucket upper bounds; cap them at the
    // exact max so p50/p95 never print above the true maximum.
    const double max = a == nullptr ? 0.0 : a->max();
    const double cap = a == nullptr ? h->quantile(1.0) : max;
    r.span_latency.push_back(PhaseLatency{obs::to_string(name), h->count(),
                                          std::min(h->quantile(0.50), cap),
                                          std::min(h->quantile(0.95), cap),
                                          std::min(h->quantile(0.99), cap), max});
    r.span_histograms.push_back(*h);
  }

  // Copy the registry's counters so the accessor outlives the cluster.
  auto counters = std::make_shared<std::map<std::string, std::uint64_t>>();
  for (const auto& name : m.counter_names()) (*counters)[name] = m.counter_value(name);
  r.counter = [counters](const std::string& name) {
    const auto it = counters->find(name);
    return it == counters->end() ? 0ull : it->second;
  };

  if (inspect) inspect(cluster);
  return r;
}

}  // namespace rr::harness
