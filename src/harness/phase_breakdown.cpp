#include "harness/phase_breakdown.hpp"

#include <cstdio>

namespace rr::harness {

Table phase_breakdown_table(const std::string& bench) {
  return Table(bench + " — phase latency breakdown (per completed span)",
               {"algorithm", "phase", "count", "p50", "p95", "p99", "max"});
}

void add_phase_rows(Table& table, const std::string& algorithm, const ScenarioResult& r) {
  for (const PhaseLatency& p : r.span_latency) {
    table.add_row({algorithm, p.name, Table::integer(p.count),
                   Table::ms(static_cast<Duration>(p.p50_ns)),
                   Table::ms(static_cast<Duration>(p.p95_ns)),
                   Table::ms(static_cast<Duration>(p.p99_ns)),
                   Table::ms(static_cast<Duration>(p.max_ns))});
  }
}

void print_bench_json(const std::string& bench, const std::string& algorithm,
                      const ScenarioResult& r) {
  std::string out = "BENCHJSON {\"bench\":\"" + bench + "\",\"algorithm\":\"" + algorithm +
                    "\",\"phases\":{";
  bool first = true;
  char buf[192];
  for (const PhaseLatency& p : r.span_latency) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"count\":%llu,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"max_ms\":%.3f}",
                  p.name.c_str(), static_cast<unsigned long long>(p.count), p.p50_ns / 1e6,
                  p.p95_ns / 1e6, p.p99_ns / 1e6, p.max_ns / 1e6);
    out += buf;
  }
  out += "}}";
  std::printf("%s\n", out.c_str());
}

}  // namespace rr::harness
