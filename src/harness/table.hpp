// Plain-text table output for experiment results.
//
// Every bench prints the rows the paper reports (or the sweep series our
// ablations add) through this one formatter, so EXPERIMENTS.md and the
// bench output stay visually comparable.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rr::harness {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  Table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os = std::cout) const;

  // Formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string integer(std::uint64_t v);
  [[nodiscard]] static std::string ms(Duration d, int precision = 2);
  [[nodiscard]] static std::string secs(Duration d, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rr::harness
