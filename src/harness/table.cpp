#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace rr::harness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  RR_CHECK(!columns_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  RR_CHECK_MSG(cells.size() == columns_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }

  const auto rule = [&] {
    std::string s = "+";
    for (const auto w : widths) s += std::string(w + 2, '-') + "+";
    return s;
  }();

  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i] << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    os << "\n";
  };

  os << "\n== " << title_ << " ==\n" << rule << "\n";
  emit(columns_);
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  os << rule << "\n";
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

std::string Table::ms(Duration d, int precision) {
  return num(to_millis(d), precision) + " ms";
}

std::string Table::secs(Duration d, int precision) {
  return num(to_seconds(d), precision) + " s";
}

}  // namespace rr::harness
