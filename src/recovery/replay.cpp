#include "recovery/replay.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rr::recovery {

ReplayEngine::ReplayEngine(sim::Simulator& sim, ProcessId self, Duration per_delivery,
                           Hooks hooks)
    : sim_(sim), self_(self), per_delivery_(per_delivery), hooks_(std::move(hooks)) {
  RR_CHECK(per_delivery_ >= 0);
  RR_CHECK(hooks_.deliver != nullptr);
  RR_CHECK(hooks_.request_payloads != nullptr);
  RR_CHECK(hooks_.on_complete != nullptr);
}

void ReplayEngine::install(const std::vector<fbl::HeldDeterminant>& dets, Rsn current_rsn,
                           const std::set<ProcessId>& recovering_sources) {
  if (!installed_) {
    installed_ = true;
    next_rsn_ = current_rsn + 1;
  }
  for (const auto& h : dets) {
    if (h.det.dest != self_ || h.det.rsn < next_rsn_) continue;
    auto [it, inserted] = pending_.try_emplace(h.det.rsn, h);
    if (!inserted) {
      RR_CHECK_MSG(it->second.det == h.det, "conflicting determinants in install");
      it->second.holders |= h.holders;
    } else {
      pending_index_[{h.det.source, h.det.ssn}] = h.det.rsn;
    }
  }

  // Truncate at the first rsn gap: everything past it belongs to an
  // execution prefix we cannot reproduce (only possible past f failures).
  Rsn expect = next_rsn_;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == expect) {
    ++it;
    ++expect;
  }
  if (it != pending_.end()) {
    ++gaps_;
    RR_WARN("replay", "%s: receipt-order gap at rsn %llu — truncating %zu determinants",
            to_string(self_).c_str(), static_cast<unsigned long long>(expect),
            static_cast<std::size_t>(std::distance(it, pending_.end())));
    for (auto cut = it; cut != pending_.end(); ++cut) {
      pending_index_.erase({cut->second.det.source, cut->second.det.ssn});
    }
    pending_.erase(it, pending_.end());
  }

  request_missing(recovering_sources);
  pump();
  maybe_complete();
}

void ReplayEngine::request_missing(const std::set<ProcessId>& recovering_sources) {
  std::map<ProcessId, std::vector<Ssn>> wanted;
  for (const auto& [rsn, h] : pending_) {
    const std::pair<ProcessId, Ssn> key{h.det.source, h.det.ssn};
    if (payloads_.contains(key) || requested_.contains(key)) continue;
    if (recovering_sources.contains(h.det.source)) continue;  // will regenerate
    wanted[h.det.source].push_back(h.det.ssn);
    requested_.insert(key);
  }
  for (auto& [source, ssns] : wanted) hooks_.request_payloads(source, std::move(ssns));
}

void ReplayEngine::offer(ProcessId source, Ssn ssn, Bytes payload) {
  if (!needs(source, ssn)) return;
  payloads_.try_emplace(std::pair{source, ssn}, std::move(payload));
  pump();
}

void ReplayEngine::on_source_recovered(ProcessId source) {
  if (!installed_ || complete()) return;
  // Anything still pending from this source sits in its restored send log;
  // it will not be regenerated (it predates the source's checkpoint), so
  // ask for it explicitly now that the source can answer again.
  std::vector<Ssn> ssns;
  for (const auto& [rsn, h] : pending_) {
    const std::pair<ProcessId, Ssn> key{h.det.source, h.det.ssn};
    if (h.det.source == source && !payloads_.contains(key)) {
      ssns.push_back(h.det.ssn);
      requested_.insert(key);
    }
  }
  if (!ssns.empty()) hooks_.request_payloads(source, std::move(ssns));
}

bool ReplayEngine::needs(ProcessId source, Ssn ssn) const {
  return pending_index_.contains({source, ssn});
}

void ReplayEngine::pump() {
  if (!installed_ || delivering_.valid() || pending_.empty()) return;
  const auto& front = pending_.begin()->second;
  if (!payloads_.contains(std::pair{front.det.source, front.det.ssn})) return;  // wait
  // One virtual-time slot of re-execution CPU per replayed message.
  delivering_ = sim_.schedule_after(per_delivery_, [this] { deliver_front(); });
}

void ReplayEngine::deliver_front() {
  delivering_ = sim::kNoEvent;
  if (pending_.empty()) return;
  const auto it = pending_.begin();
  RR_CHECK(it->first == next_rsn_);
  const auto key = std::pair{it->second.det.source, it->second.det.ssn};
  const auto pay = payloads_.find(key);
  RR_CHECK(pay != payloads_.end());
  const fbl::HeldDeterminant h = it->second;
  const Bytes payload = std::move(pay->second);
  payloads_.erase(pay);
  pending_index_.erase(key);
  pending_.erase(it);
  ++next_rsn_;
  ++delivered_;
  hooks_.deliver(h, payload);
  pump();
  maybe_complete();
}

void ReplayEngine::maybe_complete() {
  if (installed_ && pending_.empty() && !completed_signalled_) {
    completed_signalled_ = true;
    hooks_.on_complete();
  }
}

void ReplayEngine::reset() {
  if (delivering_.valid()) {
    sim_.cancel(delivering_);
    delivering_ = sim::kNoEvent;
  }
  installed_ = false;
  completed_signalled_ = false;
  next_rsn_ = 0;
  delivered_ = 0;
  gaps_ = 0;
  pending_.clear();
  pending_index_.clear();
  payloads_.clear();
  requested_.clear();
}

}  // namespace rr::recovery
