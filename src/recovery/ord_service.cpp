#include "recovery/ord_service.hpp"

#include <utility>

#include "common/log.hpp"
#include "fbl/frame.hpp"

namespace rr::recovery {

OrdService::OrdService(ProcessId self, net::Network& network, metrics::Registry& metrics)
    : self_(self), network_(network), metrics_(metrics) {}

void OrdService::deliver(ProcessId src, Bytes payload) {
  BufReader r(payload);
  if (fbl::decode_kind(r) == fbl::FrameKind::kControl) {  // heartbeats etc. skip
    handle(src, decode_control(r));
  }
  BufferPool::global().release(std::move(payload));
}

void OrdService::handle(ProcessId src, const ControlMessage& m) {
  if (const auto* req = std::get_if<OrdRequest>(&m)) {
    // Re-registration (the process crashed again mid-recovery) supersedes
    // the old entry; the fresh, higher ordinal demotes a dead leader.
    RMember member{src, next_ord_++, req->inc};
    registry_[src] = member;
    metrics_.counter("ord.registrations").add();
    RR_DEBUG("ord", "%s registered ord=%llu inc=%u", to_string(src).c_str(),
             static_cast<unsigned long long>(member.ord), member.inc);
    phase(PhaseId::kOrdAssigned, src, member.ord);
    reply(src, OrdReply{member.ord, rset()});
  } else if (std::holds_alternative<RSetRequest>(m)) {
    reply(src, RSetReply{rset()});
  } else if (const auto* done = std::get_if<RecoveryComplete>(&m)) {
    const auto it = registry_.find(src);
    if (it != registry_.end()) {
      const Ord ord = it->second.ord;
      registry_.erase(it);
      metrics_.counter("ord.completions").add();
      RR_DEBUG("ord", "%s completed recovery inc=%u", to_string(src).c_str(), done->inc);
      phase(PhaseId::kOrdRetired, src, ord);
    }
  }
  // Everything else (gather traffic broadcast wide) is none of our business.
}

void OrdService::phase(PhaseId id, ProcessId subject, Ord ord) {
  if (!phase_hook_) return;
  PhaseEventInfo info;
  info.pid = self_;
  info.phase = id;
  info.round = 0;
  info.ord = ord;
  info.subject = subject;
  phase_hook_(info);
}

void OrdService::reply(ProcessId to, const ControlMessage& m) {
  // Count only actual transmissions (bytes > 0), matching Node::send_control
  // and the MessageBreakdown model's "counted as transmissions" contract —
  // a reply toward a just-crashed requester charges nothing anywhere, which
  // is what keeps the wire-side ledger (V10) in exact agreement.
  const std::size_t bytes = network_.send(self_, to, encode_control(m));
  if (bytes == 0) return;
  metrics_.counter("recovery.ctrl_msgs").add();
  metrics_.counter(std::string("recovery.msg.") + control_name(m)).add();
  metrics_.counter("recovery.ctrl_bytes").add(bytes);
}

std::vector<RMember> OrdService::rset() const {
  std::vector<RMember> out;
  out.reserve(registry_.size());
  for (const auto& [pid, m] : registry_) out.push_back(m);
  std::sort(out.begin(), out.end(),
            [](const RMember& a, const RMember& b) { return a.ord < b.ord; });
  return out;
}

}  // namespace rr::recovery
