#include "recovery/output_commit.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rr::recovery {

OutputCommitManager::OutputCommitManager(sim::Simulator& sim, ProcessId self, std::uint32_t f,
                                         bool stable_instance, Hooks hooks,
                                         metrics::Registry& metrics)
    : sim_(sim),
      self_(self),
      f_(f),
      stable_instance_(stable_instance),
      hooks_(std::move(hooks)),
      metrics_(metrics),
      retry_(sim, milliseconds(100), [this] {
        if (queue_.empty()) {
          retry_.stop();
          return;
        }
        stabilize();
        pump();
      }) {
  RR_CHECK(hooks_.send_ctrl && hooks_.det_log && hooks_.add_holders && hooks_.peers &&
           hooks_.is_suspected && hooks_.force_flush && hooks_.release);
}

bool OutputCommitManager::satisfied(const fbl::Determinant& det) const {
  const auto* h = hooks_.det_log().find(det.dest, det.rsn);
  // Pruned from the log = the destination checkpointed past it: the
  // receipt order is preserved forever inside a stable checkpoint.
  if (h == nullptr || h->det != det) return true;
  if ((h->holders & fbl::kStableHolder) != 0) return true;
  return fbl::holder_count(h->holders) >= static_cast<int>(f_) + 1;
}

std::uint64_t OutputCommitManager::commit(Bytes payload) {
  Pending p;
  p.id = next_id_++;
  p.payload = std::move(payload);
  p.committed_at = sim_.now();
  // Barrier: everything currently un-recoverable in our causal past. The
  // active set is exactly the determinants below f+1 holders and off
  // stable storage.
  for (const auto& h : hooks_.det_log().slice_for(~fbl::HolderMask{0})) {
    if (!satisfied(h.det)) p.barrier.push_back(h.det);
  }
  metrics_.counter("output.committed").add();
  queue_.push_back(std::move(p));
  stabilize();
  pump();
  if (!queue_.empty() && !retry_.running()) retry_.start();
  return next_id_ - 1;
}

void OutputCommitManager::stabilize() {
  if (queue_.empty()) return;
  if (stable_instance_) {
    hooks_.force_flush();
    return;
  }
  // Push every still-unsatisfied barrier determinant to enough additional
  // peers to reach f+1 confirmed holders, skipping peers already pushed to
  // (awaiting ack) or suspected.
  std::map<ProcessId, std::vector<fbl::HeldDeterminant>> outgoing;
  std::map<std::pair<ProcessId, Rsn>, std::set<ProcessId>> in_flight;
  for (const auto& [seq, push] : pushes_) {
    // Outstanding pushes to a peer now suspected of having crashed count
    // for nothing; the retry must recruit replacements (a late ack from a
    // falsely-suspected peer still lands as a bonus holder).
    if (hooks_.is_suspected(push.first)) continue;
    for (const auto& det : push.second) in_flight[{det.dest, det.rsn}].insert(push.first);
  }
  for (const auto& pending : queue_) {
    for (const auto& det : pending.barrier) {
      const auto* h = hooks_.det_log().find(det.dest, det.rsn);
      if (h == nullptr || h->det != det || satisfied(det)) continue;
      const auto& flying = in_flight[{det.dest, det.rsn}];
      int missing = static_cast<int>(f_) + 1 - fbl::holder_count(h->holders) -
                    static_cast<int>(flying.size());
      if (missing <= 0) continue;
      for (const ProcessId peer : hooks_.peers()) {
        if (missing <= 0) break;
        if (peer == self_ || fbl::holds(h->holders, peer) || flying.contains(peer) ||
            hooks_.is_suspected(peer)) {
          continue;
        }
        outgoing[peer].push_back(*h);
        in_flight[{det.dest, det.rsn}].insert(peer);
        --missing;
      }
    }
  }
  for (auto& [peer, dets] : outgoing) {
    const std::uint64_t seq = next_push_seq_++;
    std::vector<fbl::Determinant> bare;
    bare.reserve(dets.size());
    for (const auto& h : dets) bare.push_back(h.det);
    pushes_[seq] = {peer, std::move(bare)};
    metrics_.counter("output.det_pushes").add();
    hooks_.send_ctrl(peer, DetPush{seq, std::move(dets)});
  }
}

void OutputCommitManager::on_ack(ProcessId from, const DetAck& ack) {
  const auto it = pushes_.find(ack.seq);
  if (it == pushes_.end() || it->second.first != from) return;
  for (const auto& det : it->second.second) {
    hooks_.add_holders(det, fbl::holder_bit(from));
  }
  pushes_.erase(it);
  pump();
}

void OutputCommitManager::pump() {
  while (!queue_.empty()) {
    auto& front = queue_.front();
    const bool ready = std::all_of(front.barrier.begin(), front.barrier.end(),
                                   [this](const fbl::Determinant& d) { return satisfied(d); });
    if (!ready) return;
    metrics_.counter("output.released").add();
    metrics_.accum("output.latency_ns").record_duration(sim_.now() - front.committed_at);
    metrics_.histogram("output.latency_hist_ns").record_duration(sim_.now() -
                                                                 front.committed_at);
    ++released_;
    hooks_.release(front.id, front.payload);
    queue_.pop_front();
  }
  if (queue_.empty()) retry_.stop();
}

void OutputCommitManager::reset() {
  metrics_.counter("output.lost_to_crash").add(queue_.size());
  queue_.clear();
  pushes_.clear();
  retry_.stop();
  // Output numbering restarts so a deterministic re-execution assigns the
  // same ids to regenerated outputs — the external world dedups by id.
  next_id_ = 1;
}

}  // namespace rr::recovery
