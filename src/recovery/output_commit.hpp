// Output commit — releasing state to the outside world safely.
//
// A message-logging system may only release an external output (print,
// actuate, reply to a client) when the state that produced it is
// recoverable: every determinant in the process's causal past must survive
// any f failures, or a crash could roll the process back behind the output
// it already showed the world. Manetho made "fast output commit" a
// headline feature; in FBL terms the commit barrier is simply "all known
// determinants at f+1 holders or on stable storage".
//
// The manager queues outputs in order and releases each once its barrier
// (a snapshot of the then-unstable determinants) clears. Two stabilization
// paths, by instance:
//   f < n : push the barrier determinants to enough peers to reach f+1
//           holders and wait for acknowledgements (DetPush / DetAck) —
//           unlike the failure-free piggyback path, output commit must not
//           count an unacknowledged recipient;
//   f = n : force the asynchronous stable-storage flush and wait for it.
// A retry timer re-drives stabilization if a pushed-to peer crashes.
//
// Pending outputs are volatile: a crash before release discards them,
// which is exactly the correct external semantics (the world never saw
// them, and the recovered execution will regenerate them).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "fbl/determinant_log.hpp"
#include "metrics/registry.hpp"
#include "recovery/messages.hpp"
#include "sim/simulator.hpp"

namespace rr::recovery {

class OutputCommitManager {
 public:
  struct Hooks {
    std::function<void(ProcessId, const ControlMessage&)> send_ctrl;
    /// The process's current determinant log (barrier source of truth).
    std::function<const fbl::DeterminantLog&()> det_log;
    /// Confirm holders after an acknowledged push.
    std::function<void(const fbl::Determinant&, fbl::HolderMask)> add_holders;
    /// Push candidates (all processes except self, sorted).
    std::function<std::vector<ProcessId>()> peers;
    std::function<bool(ProcessId)> is_suspected;
    /// f = n path: force the stable determinant flush.
    std::function<void()> force_flush;
    /// Deliver the output to the external world.
    std::function<void(std::uint64_t id, const Bytes& payload)> release;
  };

  OutputCommitManager(sim::Simulator& sim, ProcessId self, std::uint32_t f,
                      bool stable_instance, Hooks hooks, metrics::Registry& metrics);

  /// Queue an output; returns its id. Released (in order) once every
  /// determinant known at commit time is recoverable.
  std::uint64_t commit(Bytes payload);

  /// A pushed peer acknowledged: its copies are confirmed.
  void on_ack(ProcessId from, const DetAck& ack);

  /// Holder knowledge changed (flush completed, piggyback returns, …);
  /// re-evaluate the queue.
  void on_stability_changed() { pump(); }

  /// Crash: drop everything volatile (pending outputs die unreleased).
  void reset();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }

 private:
  struct Pending {
    std::uint64_t id{0};
    Bytes payload;
    std::vector<fbl::Determinant> barrier;
    Time committed_at{0};
  };

  [[nodiscard]] bool satisfied(const fbl::Determinant& det) const;
  void pump();
  void stabilize();

  sim::Simulator& sim_;
  ProcessId self_;
  std::uint32_t f_;
  bool stable_instance_;
  Hooks hooks_;
  metrics::Registry& metrics_;

  std::uint64_t next_id_{1};
  std::uint64_t next_push_seq_{1};
  std::uint64_t released_{0};
  std::deque<Pending> queue_;
  /// push seq -> (peer, determinants awaiting its ack)
  std::map<std::uint64_t, std::pair<ProcessId, std::vector<fbl::Determinant>>> pushes_;
  sim::RepeatingTimer retry_;
};

}  // namespace rr::recovery
