#include "recovery/recovery_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rr::recovery {

namespace {

// Gather tree (RecoveryConfig::gather_arity): a BFS-complete k-ary tree over
// the array [leader] + participants, where `participants` is the sorted
// live set every side derives identically from (all processes − R). Node j's
// children sit at indices j*k+1 .. j*k+k. Index 0 is the leader; participant
// i sits at index i+1.

std::size_t tree_index_of(const std::vector<ProcessId>& participants, ProcessId pid) {
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i] == pid) return i + 1;
  }
  return 0;  // not a participant (caller treats as "no tree position")
}

std::vector<ProcessId> tree_children(const std::vector<ProcessId>& participants,
                                     std::size_t node_index, std::uint32_t arity) {
  std::vector<ProcessId> kids;
  const std::size_t total = participants.size() + 1;
  for (std::size_t c = node_index * arity + 1; c <= node_index * arity + arity && c < total;
       ++c) {
    kids.push_back(participants[c - 1]);
  }
  return kids;
}

/// Every participant in the subtree rooted at `root` (inclusive).
std::vector<ProcessId> tree_subtree(const std::vector<ProcessId>& participants, ProcessId root,
                                    std::uint32_t arity) {
  std::vector<ProcessId> out;
  const std::size_t r = tree_index_of(participants, root);
  if (r == 0) return out;
  const std::size_t total = participants.size() + 1;
  std::vector<std::size_t> queue{r};
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t j = queue[qi];
    out.push_back(participants[j - 1]);
    for (std::size_t c = j * arity + 1; c <= j * arity + arity && c < total; ++c) {
      queue.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kNonBlocking: return "non-blocking";
    case Algorithm::kBlocking: return "blocking";
    case Algorithm::kDeferUnsafe: return "defer-unsafe";
  }
  return "?";
}

RecoveryManager::RecoveryManager(sim::Simulator& sim, ProcessId self, ProcessId ord_service,
                                 RecoveryConfig config, Hooks hooks,
                                 metrics::Registry& metrics)
    : sim_(sim),
      self_(self),
      ord_service_(ord_service),
      config_(config),
      hooks_(std::move(hooks)),
      metrics_(metrics),
      progress_timer_(sim, config.progress_period, [this] { progress_tick(); }) {
  RR_CHECK(hooks_.send_ctrl && hooks_.broadcast_ctrl && hooks_.my_incarnation &&
           hooks_.all_processes && hooks_.is_suspected && hooks_.depinfo_slice &&
           hooks_.marks_for && hooks_.set_delivery_blocked && hooks_.set_defer_unsafe &&
           hooks_.sync_log_then_send && hooks_.install && hooks_.peer_recovered);
}

void RecoveryManager::reset_for_restart() {
  progress_timer_.stop();
  incvector_.clear();
  blocked_on_.clear();
  defer_on_.clear();
  recovering_ = false;
  ord_requested_ = false;
  installed_ = false;
  ord_ = 0;
  round_.reset();
  covered_.clear();
  // Delta-versioning state is volatile on both sides: our version counter
  // restarts at 0 and peers' stale confirmations are invalidated by the
  // incarnation bump (leader_inc mismatch forces full snapshots).
  incv_version_ = 0;
  incv_changed_at_.clear();
  leader_incv_seen_.clear();
  confirmed_.clear();
  relay_.reset();
}

void RecoveryManager::begin_recovery() {
  RR_CHECK(!recovering_);
  recovering_ = true;
  installed_ = false;
  ord_ = 0;
  // Own floor: everyone must reject our previous incarnation's frames.
  raise_floor(self_, hooks_.my_incarnation());
  RR_CHECK_MSG(!ord_requested_, "ord must be acquired exactly once per incarnation");
  ord_requested_ = true;
  send(ord_service_, OrdRequest{hooks_.my_incarnation()});
  progress_timer_.start();
  metrics_.counter("recovery.started").add();
}

void RecoveryManager::on_replay_complete() {
  RR_CHECK(recovering_);
  recovering_ = false;
  installed_ = false;
  round_.reset();
  // Keep ticking while an interior-relay watchdog still needs us.
  if (!relay_) progress_timer_.stop();
  metrics_.counter("recovery.completed").add();
  // Built by the node from the logging engine (post-replay watermarks).
  // RecoveryComplete retires us at the ord service, raises everyone's
  // incvector floor for us, and triggers retransmission of what we missed.
}

void RecoveryManager::on_control(ProcessId src, const ControlMessage& m) {
  if (const auto* reply = std::get_if<OrdReply>(&m)) {
    if (recovering_ && ord_ == 0) {
      ord_ = reply->ord;
      RR_DEBUG("recov", "%s acquired ord %llu", to_string(self_).c_str(),
               static_cast<unsigned long long>(ord_));
      evaluate_leadership(reply->rset);
    }
  } else if (const auto* reply = std::get_if<RSetReply>(&m)) {
    if (round_ && round_->phase == Phase::kRefreshR) {
      on_rset(reply->rset);
    } else if (round_) {
      // Mid-gather R refresh: a process we are waiting on has crashed and
      // re-registered as recovering — it will never answer this round.
      // This is the paper's "if a live process fails before replying,
      // restart the gathering" trigger, caught at registration time (the
      // failure detector alone can miss it when the process restores and
      // resumes heartbeating before the suspicion timeout).
      for (const auto& member : reply->rset) {
        const bool awaited = round_->expect_inc.contains(member.pid) ||
                             round_->expect_dep.contains(member.pid);
        if (awaited && !covered_.contains({member.pid, member.inc})) {
          restart_round("gather target re-registered as recovering");
          return;
        }
      }
    } else if (recovering_) {
      evaluate_leadership(reply->rset);
    }
  } else if (std::holds_alternative<IncRequest>(m)) {
    // Answer in any state: if we already completed, our current incarnation
    // is exactly what the leader should put in its incvector.
    send(src, IncReply{std::get<IncRequest>(m).round, hooks_.my_incarnation()});
  } else if (const auto* reply = std::get_if<IncReply>(&m)) {
    if (round_ && round_->phase == Phase::kGatherInc && reply->round == round_->id &&
        round_->expect_inc.erase(src) > 0) {
      round_->got_inc[src] = reply->inc;
      if (round_->expect_inc.empty()) begin_gather_dep();
    }
  } else if (const auto* req = std::get_if<DepRequest>(&m)) {
    handle_dep_request(src, *req);
  } else if (const auto* reply = std::get_if<DepReply>(&m)) {
    // Round ids are per-leader counters, so a relayed round can collide
    // with our own leader round's id: an awaited child is the tiebreak.
    if (relay_ && reply->round == relay_->round && relay_->await.contains(src)) {
      absorb_relay_reply(src, *reply);
    } else if (round_ && round_->phase == Phase::kGatherDep && reply->round == round_->id) {
      // Determinants merge as a set; contributions are deduplicated per pid
      // (a re-parented participant may answer both directly and through its
      // old relay — expect_dep.erase returning 0 drops the duplicate).
      for (const auto& h : reply->dets) round_->gathered.record(h);
      for (const auto& c : reply->contribs) absorb_contribution(c);
      if (round_->expect_dep.empty()) finish_round();
    } else if (relay_ && reply->round == relay_->round) {
      absorb_relay_reply(src, *reply);
    }
  } else if (const auto* install = std::get_if<DepInstall>(&m)) {
    if (recovering_) {
      merge_floors(install->incvector);
      installed_ = true;
      metrics_.counter("recovery.installs_received").add();
      hooks_.install(*install);
    }
  } else if (const auto* done = std::get_if<RecoveryComplete>(&m)) {
    handle_recovery_complete(src, *done);
  }
  // OrdRequest / RSetRequest are for the ord service; ReplayRequest /
  // ReplayData are handled by the node (they touch the send log / replay
  // engine directly).
}

void RecoveryManager::evaluate_leadership(const std::vector<RMember>& rset) {
  if (!recovering_ || ord_ == 0) return;
  // Leader = lowest unfinished ordinal whose process is not suspected
  // (paper: "the next process in ordinal number becomes a recovery leader").
  const RMember* leader = nullptr;
  bool covered_all = true;
  for (const auto& member : rset) {
    if (leader == nullptr && (member.pid == self_ || !hooks_.is_suspected(member.pid))) {
      leader = &member;
    }
    if (!covered_.contains({member.pid, member.inc})) covered_all = false;
  }
  if (leader == nullptr || leader->pid != self_) {
    // Someone else leads; if we were mid-round (e.g. a lower-ord member
    // resurfaced), stand down — installs merge, so duplicated leadership is
    // safe but wasteful.
    if (round_) {
      RR_DEBUG("recov", "%s stands down as leader", to_string(self_).c_str());
      round_.reset();
    }
    return;
  }
  if (round_) return;          // already leading a round
  if (covered_all) return;     // nothing new to recover
  // Leading despite a lower ordinal in R means that ordinal's process is
  // suspected dead: this is the paper's next-ordinal failover.
  bool failover = false;
  for (const auto& member : rset) {
    if (member.pid != self_ && member.ord < ord_) failover = true;
  }
  start_round(failover);
}

void RecoveryManager::start_round(bool failover) {
  Round r;
  r.id = next_round_id_++;
  r.phase = Phase::kRefreshR;
  r.phase_started = sim_.now();
  round_ = std::move(r);
  metrics_.counter("recovery.rounds").add();
  RR_DEBUG("recov", "%s leads round %llu", to_string(self_).c_str(),
           static_cast<unsigned long long>(round_->id));
  phase(failover ? PhaseId::kLeaderFailover : PhaseId::kLeaderElected);
  send(ord_service_, RSetRequest{});
}

void RecoveryManager::restart_round(const char* why) {
  RR_CHECK(round_);
  if (config_.bug_skip_gather_restart) {
    // Seeded bug (see RecoveryConfig): leave the round wedged on a reply
    // that will never come. The explorer must catch the non-termination.
    metrics_.counter("recovery.bug_restart_skipped").add();
    return;
  }
  metrics_.counter("recovery.gather_restarts").add();
  RR_INFO("recov", "%s restarts gather round %llu (%s)", to_string(self_).c_str(),
          static_cast<unsigned long long>(round_->id), why);
  phase(PhaseId::kGatherRestarted);
  round_.reset();
  start_round();
}

void RecoveryManager::on_rset(const std::vector<RMember>& rset) {
  RR_CHECK(round_ && round_->phase == Phase::kRefreshR);
  // Abandon if our registration vanished (we completed concurrently) or a
  // lower-ord live member should lead instead.
  bool self_in = false;
  for (const auto& m : rset) {
    if (m.pid == self_) self_in = true;
  }
  if (!self_in) {
    round_.reset();
    return;
  }
  round_->rset = rset;
  for (const auto& m : rset) {
    if (m.ord < ord_ && !hooks_.is_suspected(m.pid)) {
      RR_DEBUG("recov", "%s defers to lower ord %llu (%s)", to_string(self_).c_str(),
               static_cast<unsigned long long>(m.ord), to_string(m.pid).c_str());
      round_.reset();
      return;
    }
  }
  phase(PhaseId::kGatherStarted);
  if (config_.algorithm == Algorithm::kNonBlocking) {
    begin_gather_inc();
  } else {
    // The comparators skip the incarnation round (fewer messages); the
    // registry-reported incarnations fill the install's incvector.
    begin_gather_dep();
  }
}

void RecoveryManager::begin_gather_inc() {
  RR_CHECK(round_);
  round_->phase = Phase::kGatherInc;
  round_->phase_started = sim_.now();
  round_->expect_inc.clear();
  round_->got_inc.clear();
  for (const auto& m : round_->rset) {
    if (m.pid == self_) continue;
    round_->expect_inc.insert(m.pid);
    send(m.pid, IncRequest{round_->id});
  }
  if (round_->expect_inc.empty()) begin_gather_dep();
}

fbl::IncVector RecoveryManager::build_incvector() const {
  RR_CHECK(round_);
  fbl::IncVector v = incvector_;
  for (const auto& m : round_->rset) fbl::raise_incarnation(v, m.pid, m.inc);
  for (const auto& [pid, inc] : round_->got_inc) fbl::raise_incarnation(v, pid, inc);
  fbl::raise_incarnation(v, self_, hooks_.my_incarnation());
  return v;
}

void RecoveryManager::begin_gather_dep() {
  RR_CHECK(round_);
  // The incarnation round (or, for the comparators, the registry snapshot)
  // is complete: the incvector this round will distribute is now fixed.
  phase(PhaseId::kIncVectorBuilt);
  round_->phase = Phase::kGatherDep;
  round_->phase_started = sim_.now();
  round_->expect_dep.clear();
  round_->gathered.clear();
  round_->live_marks.clear();
  round_->participants.clear();
  round_->direct.clear();

  std::set<ProcessId> recovering_pids;
  std::vector<ProcessId> rset_pids;
  for (const auto& m : round_->rset) {
    recovering_pids.insert(m.pid);
    rset_pids.push_back(m.pid);
  }

  for (const ProcessId pid : hooks_.all_processes()) {
    if (pid == self_ || recovering_pids.contains(pid)) continue;
    round_->participants.push_back(pid);
  }
  std::sort(round_->participants.begin(), round_->participants.end());
  for (const ProcessId pid : round_->participants) round_->expect_dep.insert(pid);

  DepRequest req;
  req.round = round_->id;
  req.block = config_.algorithm == Algorithm::kBlocking;
  req.defer = config_.algorithm == Algorithm::kDeferUnsafe;
  req.leader = self_;
  req.leader_inc = hooks_.my_incarnation();
  req.arity = config_.gather_arity;
  // The blocking baseline relies on stillness for safety; both running
  // comparators need the incvector floor to reject stale messages.
  if (!req.block) req.delta = build_delta(round_->participants);
  req.recovering = rset_pids;
  round_->req = req;

  if (req.arity == 0) {
    // Flat broadcast+collect: every participant answers the leader.
    for (const ProcessId pid : round_->participants) send(pid, req);
  } else {
    // Tree gather: contact only the root's children; interior nodes
    // forward and merge. expect_dep still lists everyone — contributions
    // arrive aggregated.
    for (const ProcessId pid :
         tree_children(round_->participants, 0, req.arity)) {
      round_->direct.insert(pid);
      send(pid, req);
    }
  }

  // The leader's own restored knowledge (checkpointed determinant log,
  // receive watermarks) joins the gather for free.
  for (const auto& h : hooks_.depinfo_slice(rset_pids)) round_->gathered.record(h);
  round_->live_marks[self_] = hooks_.marks_for(rset_pids);

  if (round_->expect_dep.empty()) finish_round();
}

fbl::IncDelta RecoveryManager::build_delta(const std::vector<ProcessId>& participants) {
  // Fold the round's floors into our own vector first; the wire delta is
  // then a pure slice of incvector_ by version.
  merge_floors(build_incvector());
  fbl::IncDelta d;
  d.version = incv_version_;
  const Incarnation my_inc = hooks_.my_incarnation();
  std::uint64_t base = UINT64_MAX;
  bool full = participants.empty();
  for (const ProcessId pid : participants) {
    const auto it = confirmed_.find(pid);
    if (it == confirmed_.end() || it->second.first != my_inc) {
      full = true;
      break;
    }
    base = std::min(base, it->second.second);
  }
  d.full = full;
  if (full) {
    d.base_version = 0;
    d.entries = incvector_;
    metrics_.counter("recovery.incv_full_sent").add();
  } else {
    d.base_version = base;
    for (const auto& [pid, at] : incv_changed_at_) {
      if (at > base) d.entries[pid] = incvector_.at(pid);
    }
    metrics_.counter("recovery.incv_delta_sent").add();
  }
  return d;
}

void RecoveryManager::absorb_contribution(const DepContribution& c) {
  RR_CHECK(round_);
  if (round_->expect_dep.erase(c.pid) == 0) return;  // duplicate or unknown
  round_->live_marks[c.pid] = c.marks;
  if (c.incv_resync) {
    // The participant missed our delta baseline (first contact after a
    // crash on either side); it applied the entries anyway — merge-max is
    // safe — but only a full snapshot restores version agreement.
    confirmed_.erase(c.pid);
    metrics_.counter("recovery.incv_resyncs").add();
  } else {
    confirmed_[c.pid] = {hooks_.my_incarnation(), c.incv_version};
  }
}

void RecoveryManager::reparent_leader(ProcessId child) {
  RR_CHECK(round_ && round_->phase == Phase::kGatherDep);
  metrics_.counter("recovery.subtree_reparents").add();
  RR_INFO("recov", "%s (leader) re-parents subtree of suspected %s (round %llu)",
          to_string(self_).c_str(), to_string(child).c_str(),
          static_cast<unsigned long long>(round_->id));
  phase_at(PhaseId::kSubtreeReparented, child, round_->id);
  DepRequest direct = round_->req;
  direct.arity = 0;
  for (const ProcessId m : tree_subtree(round_->participants, child, round_->req.arity)) {
    if (m == child || !round_->expect_dep.contains(m)) continue;
    send(m, direct);
  }
}

void RecoveryManager::finish_round() {
  RR_CHECK(round_);
  phase(PhaseId::kDepinfoCollected);
  DepInstall install;
  install.round = round_->id;
  install.incvector = build_incvector();
  install.dets = round_->gathered.slice_for(~fbl::HolderMask{0});
  install.live_marks = round_->live_marks;

  for (const auto& m : round_->rset) {
    covered_.insert({m.pid, m.inc});
    if (m.pid == self_) continue;
    send(m.pid, install);
  }
  metrics_.counter("recovery.installs_sent").add();

  // Self-install.
  merge_floors(install.incvector);
  installed_ = true;
  round_.reset();
  hooks_.install(install);
}

void RecoveryManager::progress_tick() {
  if (relay_) {
    // Relay watchdog (live side): a child that went quiet without tripping
    // the failure detector must not wedge the subtree. After half the
    // phase timeout, re-parent whatever is still awaited (once); after the
    // full timeout, forward the partial aggregate and let the leader's
    // restart triggers own the round's fate.
    if (sim_.now() - relay_->started > config_.phase_timeout) {
      metrics_.counter("recovery.relay_flush_partial").add();
      flush_relay();
    } else if (!relay_->swept && sim_.now() - relay_->started > config_.phase_timeout / 2) {
      relay_->swept = true;
      const std::set<ProcessId> stuck = relay_->await;
      for (const ProcessId pid : stuck) {
        if (relay_ && relay_->await.contains(pid)) reparent_relay(pid);
      }
    }
  }
  if (!recovering_) {
    if (!relay_ && progress_timer_.running()) progress_timer_.stop();
    return;
  }
  if (round_) {
    if (sim_.now() - round_->phase_started > config_.phase_timeout) {
      restart_round("phase timeout");
      return;
    }
    // Watch for gather targets that crashed into R mid-round (see the
    // RSetReply handler). Skip while the round is itself refreshing R.
    if (round_->phase != Phase::kRefreshR) send(ord_service_, RSetRequest{});
    return;
  }
  if (ord_ == 0) return;  // OrdReply still in flight (reliable network)
  // Member leader-watch / new-failure watch: refresh R and re-evaluate.
  send(ord_service_, RSetRequest{});
}

void RecoveryManager::handle_dep_request(ProcessId from, const DepRequest& req) {
  // Apply the incvector delta. merge-max is always safe to apply; the
  // version bookkeeping only decides whether we can *confirm* holding the
  // leader's vector (and thus keep its deltas small) or must ask for a
  // full snapshot.
  bool resync = false;
  std::uint64_t version_held = 0;
  merge_floors(req.delta.entries);
  if (req.delta.full) {
    leader_incv_seen_[req.leader] = {req.leader_inc, req.delta.version};
    version_held = req.delta.version;
  } else {
    const auto it = leader_incv_seen_.find(req.leader);
    if (it == leader_incv_seen_.end() || it->second.first != req.leader_inc ||
        it->second.second < req.delta.base_version) {
      resync = true;  // baseline gap: entries between it and us are unknown
    } else {
      it->second.second = std::max(it->second.second, req.delta.version);
      version_held = it->second.second;
    }
  }

  if (req.block && !recovering_) {
    for (const ProcessId pid : req.recovering) blocked_on_.insert(pid);
    hooks_.set_delivery_blocked(true);
  }
  if (req.defer && !recovering_) {
    for (const ProcessId pid : req.recovering) defer_on_.insert(pid);
    hooks_.set_defer_unsafe(defer_on_);
  }

  DepContribution me;
  me.pid = self_;
  me.inc = hooks_.my_incarnation();
  me.incv_version = version_held;
  me.incv_resync = resync;
  me.marks = hooks_.marks_for(req.recovering);

  if (req.arity > 0) {
    // Tree gather: work out our children and relay the request. The
    // participant list is derived exactly as the leader derived it (the
    // leader itself is in R, so "all − R" excludes it on both sides).
    std::set<ProcessId> recovering_pids(req.recovering.begin(), req.recovering.end());
    std::vector<ProcessId> participants;
    for (const ProcessId pid : hooks_.all_processes()) {
      if (!recovering_pids.contains(pid)) participants.push_back(pid);
    }
    std::sort(participants.begin(), participants.end());
    const std::size_t my_index = tree_index_of(participants, self_);
    std::vector<ProcessId> kids =
        my_index == 0 ? std::vector<ProcessId>{}
                      : tree_children(participants, my_index, req.arity);
    if (!kids.empty()) {
      Relay rel;
      rel.round = req.round;
      rel.reply_to = from;
      rel.defer = req.defer;
      rel.started = sim_.now();
      rel.participants = std::move(participants);
      rel.req = req;
      for (const ProcessId pid : kids) rel.await.insert(pid);
      rel.got.insert(self_);
      rel.contribs.push_back(me);
      for (const auto& h : hooks_.depinfo_slice(req.recovering)) rel.dets.record(h);
      relay_ = std::move(rel);
      metrics_.counter("recovery.relays").add();
      for (const ProcessId pid : kids) send(pid, req);
      // Watch the subtree: the progress timer doubles as the relay's
      // suspicion/timeout sweep on live processes.
      if (!progress_timer_.running()) progress_timer_.start();
      return;
    }
  }

  // Leaf (or flat gather): answer `from` — the leader, or the interior
  // node that forwarded the request — directly.
  DepReply reply;
  reply.round = req.round;
  reply.dets = hooks_.depinfo_slice(req.recovering);
  reply.contribs = {me};
  if (req.defer) {
    // Manetho-style: the reply must survive our own crash before the
    // recovering process can depend on it — synchronous stable write.
    hooks_.sync_log_then_send(from, reply);
  } else {
    send(from, reply);
  }
}

void RecoveryManager::absorb_relay_reply(ProcessId child, const DepReply& reply) {
  RR_CHECK(relay_);
  relay_->await.erase(child);
  for (const auto& h : reply.dets) relay_->dets.record(h);
  for (const auto& c : reply.contribs) {
    if (relay_->got.insert(c.pid).second) relay_->contribs.push_back(c);
  }
  if (relay_->await.empty()) flush_relay();
}

void RecoveryManager::reparent_relay(ProcessId child) {
  RR_CHECK(relay_);
  relay_->await.erase(child);
  metrics_.counter("recovery.subtree_reparents").add();
  RR_INFO("recov", "%s re-parents subtree of suspected %s (round %llu)",
          to_string(self_).c_str(), to_string(child).c_str(),
          static_cast<unsigned long long>(relay_->round));
  phase_at(PhaseId::kSubtreeReparented, child, relay_->round);
  // Reach the orphaned subtree directly: its members answer us as leaves
  // (arity 0 stops them from re-relaying). The suspected child itself is
  // left to the leader's restart triggers.
  DepRequest direct = relay_->req;
  direct.arity = 0;
  for (const ProcessId m : tree_subtree(relay_->participants, child, relay_->req.arity)) {
    if (m == child || relay_->got.contains(m)) continue;
    relay_->await.insert(m);
    send(m, direct);
  }
  if (relay_->await.empty()) flush_relay();
}

void RecoveryManager::flush_relay() {
  RR_CHECK(relay_);
  DepReply reply;
  reply.round = relay_->round;
  reply.dets = relay_->dets.slice_for(~fbl::HolderMask{0});
  reply.contribs = std::move(relay_->contribs);
  const ProcessId to = relay_->reply_to;
  const bool defer = relay_->defer;
  relay_.reset();
  if (defer) {
    hooks_.sync_log_then_send(to, reply);
  } else {
    send(to, reply);
  }
  if (!recovering_ && progress_timer_.running()) progress_timer_.stop();
}

void RecoveryManager::handle_recovery_complete(ProcessId peer, const RecoveryComplete& m) {
  raise_floor(peer, m.inc);
  if (!blocked_on_.empty()) {
    blocked_on_.erase(peer);
    if (blocked_on_.empty()) hooks_.set_delivery_blocked(false);
  }
  if (!defer_on_.empty()) {
    defer_on_.erase(peer);
    hooks_.set_defer_unsafe(defer_on_);
  }
  hooks_.peer_recovered(peer, m);
}

void RecoveryManager::on_suspicion(ProcessId peer, bool suspected) {
  if (!suspected) return;
  if (relay_ && relay_->await.contains(peer)) {
    reparent_relay(peer);
    return;
  }
  if (round_) {
    if (round_->phase == Phase::kGatherDep && round_->direct.erase(peer) > 0) {
      // Tree gather: a direct child fell — adopt its subtree instead of
      // tearing the round down. If the suspicion was real, the child will
      // re-register as recovering and the mid-gather RSet check restarts
      // the round; if it was false, its (now duplicate) reply just drops.
      reparent_leader(peer);
      return;
    }
    const bool awaiting =
        (round_->phase == Phase::kGatherInc && round_->expect_inc.contains(peer)) ||
        (round_->phase == Phase::kGatherDep && round_->req.arity == 0 &&
         round_->expect_dep.contains(peer));
    if (awaiting) restart_round("target suspected");
    return;
  }
  if (recovering_ && ord_ != 0 && !installed_) {
    // Our leader may be the suspect; refresh R now instead of waiting for
    // the next tick.
    send(ord_service_, RSetRequest{});
  }
}

void RecoveryManager::send(ProcessId to, const ControlMessage& m) { hooks_.send_ctrl(to, m); }

void RecoveryManager::broadcast(const ControlMessage& m) { hooks_.broadcast_ctrl(m); }

void RecoveryManager::phase(PhaseId id) {
  phase_at(id, self_, round_ ? round_->id : 0);
}

void RecoveryManager::phase_at(PhaseId id, ProcessId subject, std::uint64_t round_id) {
  if (!config_.phase_hook) return;
  PhaseEventInfo info;
  info.pid = self_;
  info.phase = id;
  info.round = round_id;
  info.ord = ord_;
  info.subject = subject;
  config_.phase_hook(info);
}

void RecoveryManager::raise_floor(ProcessId about, Incarnation inc) {
  if (inc <= fbl::incarnation_of(incvector_, about)) {
    fbl::raise_incarnation(incvector_, about, inc);  // materialize the entry
    return;
  }
  fbl::raise_incarnation(incvector_, about, inc);
  incv_changed_at_[about] = ++incv_version_;
  if (hooks_.floor_raised) hooks_.floor_raised(about, inc);
}

void RecoveryManager::merge_floors(const fbl::IncVector& from) {
  for (const auto& [pid, inc] : from) raise_floor(pid, inc);
}

}  // namespace rr::recovery
