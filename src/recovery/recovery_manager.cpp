#include "recovery/recovery_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rr::recovery {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kNonBlocking: return "non-blocking";
    case Algorithm::kBlocking: return "blocking";
    case Algorithm::kDeferUnsafe: return "defer-unsafe";
  }
  return "?";
}

RecoveryManager::RecoveryManager(sim::Simulator& sim, ProcessId self, ProcessId ord_service,
                                 RecoveryConfig config, Hooks hooks,
                                 metrics::Registry& metrics)
    : sim_(sim),
      self_(self),
      ord_service_(ord_service),
      config_(config),
      hooks_(std::move(hooks)),
      metrics_(metrics),
      progress_timer_(sim, config.progress_period, [this] { progress_tick(); }) {
  RR_CHECK(hooks_.send_ctrl && hooks_.broadcast_ctrl && hooks_.my_incarnation &&
           hooks_.all_processes && hooks_.is_suspected && hooks_.depinfo_slice &&
           hooks_.marks_for && hooks_.set_delivery_blocked && hooks_.set_defer_unsafe &&
           hooks_.sync_log_then_send && hooks_.install && hooks_.peer_recovered);
}

void RecoveryManager::reset_for_restart() {
  progress_timer_.stop();
  incvector_.clear();
  blocked_on_.clear();
  defer_on_.clear();
  recovering_ = false;
  ord_requested_ = false;
  installed_ = false;
  ord_ = 0;
  round_.reset();
  covered_.clear();
}

void RecoveryManager::begin_recovery() {
  RR_CHECK(!recovering_);
  recovering_ = true;
  installed_ = false;
  ord_ = 0;
  // Own floor: everyone must reject our previous incarnation's frames.
  raise_floor(self_, hooks_.my_incarnation());
  RR_CHECK_MSG(!ord_requested_, "ord must be acquired exactly once per incarnation");
  ord_requested_ = true;
  send(ord_service_, OrdRequest{hooks_.my_incarnation()});
  progress_timer_.start();
  metrics_.counter("recovery.started").add();
}

void RecoveryManager::on_replay_complete() {
  RR_CHECK(recovering_);
  recovering_ = false;
  installed_ = false;
  round_.reset();
  progress_timer_.stop();
  metrics_.counter("recovery.completed").add();
  // Built by the node from the logging engine (post-replay watermarks).
  // RecoveryComplete retires us at the ord service, raises everyone's
  // incvector floor for us, and triggers retransmission of what we missed.
}

void RecoveryManager::on_control(ProcessId src, const ControlMessage& m) {
  if (const auto* reply = std::get_if<OrdReply>(&m)) {
    if (recovering_ && ord_ == 0) {
      ord_ = reply->ord;
      RR_DEBUG("recov", "%s acquired ord %llu", to_string(self_).c_str(),
               static_cast<unsigned long long>(ord_));
      evaluate_leadership(reply->rset);
    }
  } else if (const auto* reply = std::get_if<RSetReply>(&m)) {
    if (round_ && round_->phase == Phase::kRefreshR) {
      on_rset(reply->rset);
    } else if (round_) {
      // Mid-gather R refresh: a process we are waiting on has crashed and
      // re-registered as recovering — it will never answer this round.
      // This is the paper's "if a live process fails before replying,
      // restart the gathering" trigger, caught at registration time (the
      // failure detector alone can miss it when the process restores and
      // resumes heartbeating before the suspicion timeout).
      for (const auto& member : reply->rset) {
        const bool awaited = round_->expect_inc.contains(member.pid) ||
                             round_->expect_dep.contains(member.pid);
        if (awaited && !covered_.contains({member.pid, member.inc})) {
          restart_round("gather target re-registered as recovering");
          return;
        }
      }
    } else if (recovering_) {
      evaluate_leadership(reply->rset);
    }
  } else if (std::holds_alternative<IncRequest>(m)) {
    // Answer in any state: if we already completed, our current incarnation
    // is exactly what the leader should put in its incvector.
    send(src, IncReply{std::get<IncRequest>(m).round, hooks_.my_incarnation()});
  } else if (const auto* reply = std::get_if<IncReply>(&m)) {
    if (round_ && round_->phase == Phase::kGatherInc && reply->round == round_->id &&
        round_->expect_inc.erase(src) > 0) {
      round_->got_inc[src] = reply->inc;
      if (round_->expect_inc.empty()) begin_gather_dep();
    }
  } else if (const auto* req = std::get_if<DepRequest>(&m)) {
    handle_dep_request(src, *req);
  } else if (const auto* reply = std::get_if<DepReply>(&m)) {
    if (round_ && round_->phase == Phase::kGatherDep && reply->round == round_->id &&
        round_->expect_dep.erase(src) > 0) {
      for (const auto& h : reply->dets) round_->gathered.record(h);
      round_->live_marks[src] = reply->marks_for_r;
      if (round_->expect_dep.empty()) finish_round();
    }
  } else if (const auto* install = std::get_if<DepInstall>(&m)) {
    if (recovering_) {
      merge_floors(install->incvector);
      installed_ = true;
      metrics_.counter("recovery.installs_received").add();
      hooks_.install(*install);
    }
  } else if (const auto* done = std::get_if<RecoveryComplete>(&m)) {
    handle_recovery_complete(src, *done);
  }
  // OrdRequest / RSetRequest are for the ord service; ReplayRequest /
  // ReplayData are handled by the node (they touch the send log / replay
  // engine directly).
}

void RecoveryManager::evaluate_leadership(const std::vector<RMember>& rset) {
  if (!recovering_ || ord_ == 0) return;
  // Leader = lowest unfinished ordinal whose process is not suspected
  // (paper: "the next process in ordinal number becomes a recovery leader").
  const RMember* leader = nullptr;
  bool covered_all = true;
  for (const auto& member : rset) {
    if (leader == nullptr && (member.pid == self_ || !hooks_.is_suspected(member.pid))) {
      leader = &member;
    }
    if (!covered_.contains({member.pid, member.inc})) covered_all = false;
  }
  if (leader == nullptr || leader->pid != self_) {
    // Someone else leads; if we were mid-round (e.g. a lower-ord member
    // resurfaced), stand down — installs merge, so duplicated leadership is
    // safe but wasteful.
    if (round_) {
      RR_DEBUG("recov", "%s stands down as leader", to_string(self_).c_str());
      round_.reset();
    }
    return;
  }
  if (round_) return;          // already leading a round
  if (covered_all) return;     // nothing new to recover
  // Leading despite a lower ordinal in R means that ordinal's process is
  // suspected dead: this is the paper's next-ordinal failover.
  bool failover = false;
  for (const auto& member : rset) {
    if (member.pid != self_ && member.ord < ord_) failover = true;
  }
  start_round(failover);
}

void RecoveryManager::start_round(bool failover) {
  Round r;
  r.id = next_round_id_++;
  r.phase = Phase::kRefreshR;
  r.phase_started = sim_.now();
  round_ = std::move(r);
  metrics_.counter("recovery.rounds").add();
  RR_DEBUG("recov", "%s leads round %llu", to_string(self_).c_str(),
           static_cast<unsigned long long>(round_->id));
  phase(failover ? PhaseId::kLeaderFailover : PhaseId::kLeaderElected);
  send(ord_service_, RSetRequest{});
}

void RecoveryManager::restart_round(const char* why) {
  RR_CHECK(round_);
  if (config_.bug_skip_gather_restart) {
    // Seeded bug (see RecoveryConfig): leave the round wedged on a reply
    // that will never come. The explorer must catch the non-termination.
    metrics_.counter("recovery.bug_restart_skipped").add();
    return;
  }
  metrics_.counter("recovery.gather_restarts").add();
  RR_INFO("recov", "%s restarts gather round %llu (%s)", to_string(self_).c_str(),
          static_cast<unsigned long long>(round_->id), why);
  phase(PhaseId::kGatherRestarted);
  round_.reset();
  start_round();
}

void RecoveryManager::on_rset(const std::vector<RMember>& rset) {
  RR_CHECK(round_ && round_->phase == Phase::kRefreshR);
  // Abandon if our registration vanished (we completed concurrently) or a
  // lower-ord live member should lead instead.
  bool self_in = false;
  for (const auto& m : rset) {
    if (m.pid == self_) self_in = true;
  }
  if (!self_in) {
    round_.reset();
    return;
  }
  round_->rset = rset;
  for (const auto& m : rset) {
    if (m.ord < ord_ && !hooks_.is_suspected(m.pid)) {
      RR_DEBUG("recov", "%s defers to lower ord %llu (%s)", to_string(self_).c_str(),
               static_cast<unsigned long long>(m.ord), to_string(m.pid).c_str());
      round_.reset();
      return;
    }
  }
  phase(PhaseId::kGatherStarted);
  if (config_.algorithm == Algorithm::kNonBlocking) {
    begin_gather_inc();
  } else {
    // The comparators skip the incarnation round (fewer messages); the
    // registry-reported incarnations fill the install's incvector.
    begin_gather_dep();
  }
}

void RecoveryManager::begin_gather_inc() {
  RR_CHECK(round_);
  round_->phase = Phase::kGatherInc;
  round_->phase_started = sim_.now();
  round_->expect_inc.clear();
  round_->got_inc.clear();
  for (const auto& m : round_->rset) {
    if (m.pid == self_) continue;
    round_->expect_inc.insert(m.pid);
    send(m.pid, IncRequest{round_->id});
  }
  if (round_->expect_inc.empty()) begin_gather_dep();
}

fbl::IncVector RecoveryManager::build_incvector() const {
  RR_CHECK(round_);
  fbl::IncVector v = incvector_;
  for (const auto& m : round_->rset) fbl::raise_incarnation(v, m.pid, m.inc);
  for (const auto& [pid, inc] : round_->got_inc) fbl::raise_incarnation(v, pid, inc);
  fbl::raise_incarnation(v, self_, hooks_.my_incarnation());
  return v;
}

void RecoveryManager::begin_gather_dep() {
  RR_CHECK(round_);
  // The incarnation round (or, for the comparators, the registry snapshot)
  // is complete: the incvector this round will distribute is now fixed.
  phase(PhaseId::kIncVectorBuilt);
  round_->phase = Phase::kGatherDep;
  round_->phase_started = sim_.now();
  round_->expect_dep.clear();
  round_->gathered.clear();
  round_->live_marks.clear();

  std::set<ProcessId> recovering_pids;
  std::vector<ProcessId> rset_pids;
  for (const auto& m : round_->rset) {
    recovering_pids.insert(m.pid);
    rset_pids.push_back(m.pid);
  }

  DepRequest req;
  req.round = round_->id;
  req.block = config_.algorithm == Algorithm::kBlocking;
  req.defer = config_.algorithm == Algorithm::kDeferUnsafe;
  // The blocking baseline relies on stillness for safety; both running
  // comparators need the incvector floor to reject stale messages.
  if (!req.block) req.incvector = build_incvector();
  req.recovering = rset_pids;

  for (const ProcessId pid : hooks_.all_processes()) {
    if (pid == self_ || recovering_pids.contains(pid)) continue;
    round_->expect_dep.insert(pid);
    send(pid, req);
  }

  // The leader's own restored knowledge (checkpointed determinant log,
  // receive watermarks) joins the gather for free.
  for (const auto& h : hooks_.depinfo_slice(rset_pids)) round_->gathered.record(h);
  round_->live_marks[self_] = hooks_.marks_for(rset_pids);

  if (round_->expect_dep.empty()) finish_round();
}

void RecoveryManager::finish_round() {
  RR_CHECK(round_);
  phase(PhaseId::kDepinfoCollected);
  DepInstall install;
  install.round = round_->id;
  install.incvector = build_incvector();
  install.dets = round_->gathered.slice_for(~fbl::HolderMask{0});
  install.live_marks = round_->live_marks;

  for (const auto& m : round_->rset) {
    covered_.insert({m.pid, m.inc});
    if (m.pid == self_) continue;
    send(m.pid, install);
  }
  metrics_.counter("recovery.installs_sent").add();

  // Self-install.
  merge_floors(install.incvector);
  installed_ = true;
  round_.reset();
  hooks_.install(install);
}

void RecoveryManager::progress_tick() {
  if (!recovering_) return;
  if (round_) {
    if (sim_.now() - round_->phase_started > config_.phase_timeout) {
      restart_round("phase timeout");
      return;
    }
    // Watch for gather targets that crashed into R mid-round (see the
    // RSetReply handler). Skip while the round is itself refreshing R.
    if (round_->phase != Phase::kRefreshR) send(ord_service_, RSetRequest{});
    return;
  }
  if (ord_ == 0) return;  // OrdReply still in flight (reliable network)
  // Member leader-watch / new-failure watch: refresh R and re-evaluate.
  send(ord_service_, RSetRequest{});
}

void RecoveryManager::handle_dep_request(ProcessId leader, const DepRequest& req) {
  merge_floors(req.incvector);
  if (req.block && !recovering_) {
    for (const ProcessId pid : req.recovering) blocked_on_.insert(pid);
    hooks_.set_delivery_blocked(true);
  }
  if (req.defer && !recovering_) {
    for (const ProcessId pid : req.recovering) defer_on_.insert(pid);
    hooks_.set_defer_unsafe(defer_on_);
  }
  DepReply reply;
  reply.round = req.round;
  reply.dets = hooks_.depinfo_slice(req.recovering);
  reply.marks_for_r = hooks_.marks_for(req.recovering);
  if (req.defer) {
    // Manetho-style: the reply must survive our own crash before the
    // recovering process can depend on it — synchronous stable write.
    hooks_.sync_log_then_send(leader, reply);
  } else {
    send(leader, reply);
  }
}

void RecoveryManager::handle_recovery_complete(ProcessId peer, const RecoveryComplete& m) {
  raise_floor(peer, m.inc);
  if (!blocked_on_.empty()) {
    blocked_on_.erase(peer);
    if (blocked_on_.empty()) hooks_.set_delivery_blocked(false);
  }
  if (!defer_on_.empty()) {
    defer_on_.erase(peer);
    hooks_.set_defer_unsafe(defer_on_);
  }
  hooks_.peer_recovered(peer, m);
}

void RecoveryManager::on_suspicion(ProcessId peer, bool suspected) {
  if (!suspected) return;
  if (round_) {
    const bool awaiting =
        (round_->phase == Phase::kGatherInc && round_->expect_inc.contains(peer)) ||
        (round_->phase == Phase::kGatherDep && round_->expect_dep.contains(peer));
    if (awaiting) restart_round("target suspected");
    return;
  }
  if (recovering_ && ord_ != 0 && !installed_) {
    // Our leader may be the suspect; refresh R now instead of waiting for
    // the next tick.
    send(ord_service_, RSetRequest{});
  }
}

void RecoveryManager::send(ProcessId to, const ControlMessage& m) { hooks_.send_ctrl(to, m); }

void RecoveryManager::broadcast(const ControlMessage& m) { hooks_.broadcast_ctrl(m); }

void RecoveryManager::phase(PhaseId id) {
  if (!config_.phase_hook) return;
  PhaseEventInfo info;
  info.pid = self_;
  info.phase = id;
  info.round = round_ ? round_->id : 0;
  info.ord = ord_;
  info.subject = self_;
  config_.phase_hook(info);
}

void RecoveryManager::raise_floor(ProcessId about, Incarnation inc) {
  if (inc <= fbl::incarnation_of(incvector_, about)) {
    fbl::raise_incarnation(incvector_, about, inc);  // materialize the entry
    return;
  }
  fbl::raise_incarnation(incvector_, about, inc);
  if (hooks_.floor_raised) hooks_.floor_raised(about, inc);
}

void RecoveryManager::merge_floors(const fbl::IncVector& from) {
  for (const auto& [pid, inc] : from) raise_floor(pid, inc);
}

}  // namespace rr::recovery
