// Recovery control messages (paper §3.3–3.4).
//
// All control traffic rides frames whose leading byte is
// fbl::FrameKind::kControl followed by a CtrlKind byte. The std::variant
// ControlMessage is the decoded form the recovery state machines exchange.
//
// Message roles:
//   OrdRequest/OrdReply      acquire the system-wide monotonic ord number
//                            and learn the current recovering set R
//   RSetRequest/RSetReply    leader refreshes R before (re)starting a round
//   IncRequest/IncReply      leader gathers recovering incarnations (step 4)
//   DepRequest/DepReply      leader gathers depinfo from live processes
//                            (step 5); carries incvector so live processes
//                            start rejecting stale messages, and `block`
//                            when running the blocking baseline
//   DepInstall               leader hands merged depinfo to each recovering
//                            process (step 6)
//   RecoveryComplete         broadcast by a process that finished replay;
//                            unregisters it from R, raises everyone's
//                            incvector, and triggers retransmission of
//                            messages it never received
//   ReplayRequest/ReplayData recovering process fetches logged payloads
//                            from live senders' send logs
#pragma once

#include <cstdint>
#include <map>
#include <variant>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "fbl/determinant.hpp"
#include "fbl/inc_vector.hpp"
#include "fbl/watermarks.hpp"

namespace rr::recovery {

/// Recovery ordinal (paper §3.2, `ord`): system-wide monotonic, lowest
/// unfinished ordinal is the recovery leader.
using Ord = std::uint64_t;

struct RMember {
  ProcessId pid;
  Ord ord{0};
  Incarnation inc{0};
  friend constexpr auto operator<=>(const RMember&, const RMember&) = default;
};

struct OrdRequest {
  Incarnation inc{0};
};

struct OrdReply {
  Ord ord{0};
  std::vector<RMember> rset;  ///< registered, unfinished recoveries (sorted by ord)
};

struct RSetRequest {};

struct RSetReply {
  std::vector<RMember> rset;
};

struct IncRequest {
  std::uint64_t round{0};
};

struct IncReply {
  std::uint64_t round{0};
  Incarnation inc{0};
};

struct DepRequest {
  std::uint64_t round{0};
  bool block{false};  ///< blocking baseline: stall app delivery until R drains
  /// Manetho-style comparator: hold back only application messages that
  /// reference receipt orders of recovering processes, and write the
  /// DepReply to stable storage before sending it (paper §2.2).
  bool defer{false};
  ProcessId leader;         ///< round leader (tree root; relays forward for it)
  Incarnation leader_inc{0};  ///< scopes delta versions; a restarted leader resyncs
  /// Gather-tree fan-out: receivers compute the tree over the sorted live
  /// participants and forward the request to their children. 0 = flat
  /// broadcast+collect (every participant replies straight to the leader).
  std::uint32_t arity{0};
  /// Incvector as a versioned delta against what this leader last had the
  /// receiver confirm (full snapshot on first contact or after a resync).
  /// The blocking baseline sends an empty full delta — stillness, not
  /// floors, is its safety argument.
  fbl::IncDelta delta;
  std::vector<ProcessId> recovering;  ///< R members this round covers
};

/// One participant's share of a DepReply. The tree gather aggregates many
/// contributions into a single reply per subtree; determinants merge at the
/// message level (they are a set), while the per-participant fields ride in
/// the contribution list so the leader still sees every replier.
struct DepContribution {
  ProcessId pid;
  Incarnation inc{0};             ///< contributor's own incarnation
  std::uint64_t incv_version{0};  ///< leader-incvector version now held
  bool incv_resync{false};        ///< delta baseline missed; leader must send full
  /// Contributor's receive watermarks restricted to sources in R (what it
  /// has already delivered from each recovering process).
  fbl::Watermarks marks;
  friend bool operator==(const DepContribution&, const DepContribution&) = default;
};

struct DepReply {
  std::uint64_t round{0};
  std::vector<fbl::HeldDeterminant> dets;  ///< depinfo merged across the subtree
  std::vector<DepContribution> contribs;   ///< one per participant reached
};

struct DepInstall {
  std::uint64_t round{0};
  fbl::IncVector incvector;
  std::vector<fbl::HeldDeterminant> dets;  ///< merged depinfo, dest ∈ R
  /// live process -> (recovering source -> delivered ssn); recovering
  /// processes suppress regenerated sends already delivered at the target.
  std::map<ProcessId, fbl::Watermarks> live_marks;
};

struct RecoveryComplete {
  Incarnation inc{0};
  fbl::Watermarks recv_marks;  ///< post-replay delivery watermarks
  Rsn rsn{0};                  ///< post-replay receipt order reached
};

/// Output-commit stabilization: push determinants to a peer so they reach
/// f+1 holders before an external output is released (Manetho's output
/// commit, expressible in any FBL instance).
struct DetPush {
  std::uint64_t seq{0};
  std::vector<fbl::HeldDeterminant> dets;
};

struct DetAck {
  std::uint64_t seq{0};
};

struct ReplayRequest {
  std::vector<Ssn> ssns;  ///< payloads wanted from the addressee's send log
};

struct ReplayData {
  struct Item {
    Ssn ssn{0};
    Bytes payload;
  };
  std::vector<Item> items;
};

using ControlMessage =
    std::variant<OrdRequest, OrdReply, RSetRequest, RSetReply, IncRequest, IncReply, DepRequest,
                 DepReply, DepInstall, RecoveryComplete, ReplayRequest, ReplayData, DetPush,
                 DetAck>;

/// Short stable name for metrics ("recovery.msg.<name>").
[[nodiscard]] const char* control_name(const ControlMessage& m);

/// Full wire frame: FrameKind::kControl + CtrlKind + body.
[[nodiscard]] Bytes encode_control(const ControlMessage& m);

/// Decode after the FrameKind byte has been consumed.
[[nodiscard]] ControlMessage decode_control(BufReader& r);

}  // namespace rr::recovery
