#include "recovery/messages.hpp"

#include "common/assert.hpp"
#include "fbl/frame.hpp"

namespace rr::recovery {

namespace {

enum class CtrlKind : std::uint8_t {
  kOrdRequest = 1,
  kOrdReply = 2,
  kRSetRequest = 3,
  kRSetReply = 4,
  kIncRequest = 5,
  kIncReply = 6,
  kDepRequest = 7,
  kDepReply = 8,
  kDepInstall = 9,
  kRecoveryComplete = 10,
  kReplayRequest = 11,
  kReplayData = 12,
  kDetPush = 13,
  kDetAck = 14,
};

void encode_rset(BufWriter& w, const std::vector<RMember>& rset) {
  w.varint(rset.size());
  for (const auto& m : rset) {
    w.process_id(m.pid);
    w.u64(m.ord);
    w.u32(m.inc);
  }
}

std::vector<RMember> decode_rset(BufReader& r) {
  std::vector<RMember> rset;
  const auto n = r.count(4 + 8 + 4);  // pid + ord + inc
  rset.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RMember m;
    m.pid = r.process_id();
    m.ord = r.u64();
    m.inc = r.u32();
    rset.push_back(m);
  }
  return rset;
}

void encode_dets(BufWriter& w, const std::vector<fbl::HeldDeterminant>& dets) {
  w.varint(dets.size());
  for (const auto& d : dets) d.encode(w);
}

std::vector<fbl::HeldDeterminant> decode_dets(BufReader& r) {
  std::vector<fbl::HeldDeterminant> dets;
  const auto n = r.count(fbl::HeldDeterminant::kMinWireBytes);
  dets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) dets.push_back(fbl::HeldDeterminant::decode(r));
  return dets;
}

void encode_contribs(BufWriter& w, const std::vector<DepContribution>& contribs) {
  w.varint(contribs.size());
  for (const auto& c : contribs) {
    w.process_id(c.pid);
    w.u32(c.inc);
    w.varint(c.incv_version);
    w.boolean(c.incv_resync);
    fbl::encode_watermarks(w, c.marks);
  }
}

std::vector<DepContribution> decode_contribs(BufReader& r) {
  std::vector<DepContribution> contribs;
  // pid + inc + version varint + resync flag + watermark count varint
  const auto n = r.count(4 + 4 + 1 + 1 + 1);
  contribs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    DepContribution c;
    c.pid = r.process_id();
    c.inc = r.u32();
    c.incv_version = r.varint();
    c.incv_resync = r.boolean();
    c.marks = fbl::decode_watermarks(r);
    contribs.push_back(std::move(c));
  }
  return contribs;
}

struct Encoder {
  BufWriter& w;

  void tag(CtrlKind k) { w.u8(static_cast<std::uint8_t>(k)); }

  void operator()(const OrdRequest& m) {
    tag(CtrlKind::kOrdRequest);
    w.u32(m.inc);
  }
  void operator()(const OrdReply& m) {
    tag(CtrlKind::kOrdReply);
    w.u64(m.ord);
    encode_rset(w, m.rset);
  }
  void operator()(const RSetRequest&) { tag(CtrlKind::kRSetRequest); }
  void operator()(const RSetReply& m) {
    tag(CtrlKind::kRSetReply);
    encode_rset(w, m.rset);
  }
  void operator()(const IncRequest& m) {
    tag(CtrlKind::kIncRequest);
    w.u64(m.round);
  }
  void operator()(const IncReply& m) {
    tag(CtrlKind::kIncReply);
    w.u64(m.round);
    w.u32(m.inc);
  }
  void operator()(const DepRequest& m) {
    tag(CtrlKind::kDepRequest);
    w.u64(m.round);
    w.boolean(m.block);
    w.boolean(m.defer);
    w.process_id(m.leader);
    w.u32(m.leader_inc);
    w.varint(m.arity);
    fbl::encode_inc_delta(w, m.delta);
    w.varint(m.recovering.size());
    for (const ProcessId p : m.recovering) w.process_id(p);
  }
  void operator()(const DepReply& m) {
    tag(CtrlKind::kDepReply);
    w.u64(m.round);
    encode_dets(w, m.dets);
    encode_contribs(w, m.contribs);
  }
  void operator()(const DepInstall& m) {
    tag(CtrlKind::kDepInstall);
    w.u64(m.round);
    fbl::encode_inc_vector(w, m.incvector);
    encode_dets(w, m.dets);
    w.varint(m.live_marks.size());
    for (const auto& [pid, marks] : m.live_marks) {
      w.process_id(pid);
      fbl::encode_watermarks(w, marks);
    }
  }
  void operator()(const RecoveryComplete& m) {
    tag(CtrlKind::kRecoveryComplete);
    w.u32(m.inc);
    fbl::encode_watermarks(w, m.recv_marks);
    w.u64(m.rsn);
  }
  void operator()(const DetPush& m) {
    tag(CtrlKind::kDetPush);
    w.u64(m.seq);
    encode_dets(w, m.dets);
  }
  void operator()(const DetAck& m) {
    tag(CtrlKind::kDetAck);
    w.u64(m.seq);
  }
  void operator()(const ReplayRequest& m) {
    tag(CtrlKind::kReplayRequest);
    w.varint(m.ssns.size());
    for (const Ssn s : m.ssns) w.u64(s);
  }
  void operator()(const ReplayData& m) {
    tag(CtrlKind::kReplayData);
    w.varint(m.items.size());
    for (const auto& it : m.items) {
      w.u64(it.ssn);
      w.bytes(it.payload);
    }
  }
};

}  // namespace

const char* control_name(const ControlMessage& m) {
  static constexpr const char* kNames[] = {
      "ord_request", "ord_reply",   "rset_request", "rset_reply",
      "inc_request", "inc_reply",   "dep_request",  "dep_reply",
      "dep_install", "recovery_complete", "replay_request", "replay_data",
      "det_push",    "det_ack"};
  return kNames[m.index()];
}

Bytes encode_control(const ControlMessage& m) {
  BufWriter w(128);
  w.u8(static_cast<std::uint8_t>(fbl::FrameKind::kControl));
  std::visit(Encoder{w}, m);
  return std::move(w).take();
}

ControlMessage decode_control(BufReader& r) {
  const auto kind = static_cast<CtrlKind>(r.u8());
  switch (kind) {
    case CtrlKind::kOrdRequest: {
      OrdRequest m;
      m.inc = r.u32();
      return m;
    }
    case CtrlKind::kOrdReply: {
      OrdReply m;
      m.ord = r.u64();
      m.rset = decode_rset(r);
      return m;
    }
    case CtrlKind::kRSetRequest:
      return RSetRequest{};
    case CtrlKind::kRSetReply: {
      RSetReply m;
      m.rset = decode_rset(r);
      return m;
    }
    case CtrlKind::kIncRequest: {
      IncRequest m;
      m.round = r.u64();
      return m;
    }
    case CtrlKind::kIncReply: {
      IncReply m;
      m.round = r.u64();
      m.inc = r.u32();
      return m;
    }
    case CtrlKind::kDepRequest: {
      DepRequest m;
      m.round = r.u64();
      m.block = r.boolean();
      m.defer = r.boolean();
      m.leader = r.process_id();
      m.leader_inc = r.u32();
      m.arity = static_cast<std::uint32_t>(r.varint());
      m.delta = fbl::decode_inc_delta(r);
      const auto n = r.count(4);  // one pid each
      m.recovering.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.recovering.push_back(r.process_id());
      return m;
    }
    case CtrlKind::kDepReply: {
      DepReply m;
      m.round = r.u64();
      m.dets = decode_dets(r);
      m.contribs = decode_contribs(r);
      return m;
    }
    case CtrlKind::kDepInstall: {
      DepInstall m;
      m.round = r.u64();
      m.incvector = fbl::decode_inc_vector(r);
      m.dets = decode_dets(r);
      const auto n = r.varint();
      for (std::uint64_t i = 0; i < n; ++i) {
        const ProcessId pid = r.process_id();
        m.live_marks[pid] = fbl::decode_watermarks(r);
      }
      return m;
    }
    case CtrlKind::kRecoveryComplete: {
      RecoveryComplete m;
      m.inc = r.u32();
      m.recv_marks = fbl::decode_watermarks(r);
      m.rsn = r.u64();
      return m;
    }
    case CtrlKind::kDetPush: {
      DetPush m;
      m.seq = r.u64();
      m.dets = decode_dets(r);
      return m;
    }
    case CtrlKind::kDetAck: {
      DetAck m;
      m.seq = r.u64();
      return m;
    }
    case CtrlKind::kReplayRequest: {
      ReplayRequest m;
      const auto n = r.count(8);  // one ssn each
      m.ssns.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.ssns.push_back(r.u64());
      return m;
    }
    case CtrlKind::kReplayData: {
      ReplayData m;
      const auto n = r.count(8 + 1);  // ssn + length byte
      m.items.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        ReplayData::Item it;
        it.ssn = r.u64();
        it.payload = r.bytes();
        m.items.push_back(std::move(it));
      }
      return m;
    }
  }
  throw SerdeError("unknown control kind " + std::to_string(static_cast<int>(kind)));
}

}  // namespace rr::recovery
