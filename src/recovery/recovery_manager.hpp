// The recovery state machine — the paper's contribution (§3) plus the
// blocking baseline it is evaluated against (§5).
//
// One RecoveryManager runs inside every process and plays three roles:
//
//  * live participant: answers depinfo requests, applies incvector floors,
//    reacts to RecoveryComplete broadcasts — and, under the blocking
//    baseline only, stalls application delivery while any recovery is in
//    flight;
//  * recovering member: acquires an ord, waits for the leader, applies the
//    DepInstall, and announces completion after replay;
//  * recovery leader (lowest unfinished ord): refreshes R, gathers the
//    recovering incarnations (new algorithm), gathers depinfo from every
//    live process, restarts the gather whenever a targeted live process is
//    suspected or the phase times out, and installs the merged depinfo.
//
// Algorithm::kNonBlocking is the paper's new algorithm: live processes
// never stop delivering; safety comes from the incvector distributed with
// each DepRequest. Algorithm::kBlocking is the comparator "optimized for
// low communication overhead": it skips the incarnation-gather round and
// the incvector distribution, and instead stalls live application delivery
// from the moment a DepRequest arrives until every recovering process has
// announced completion.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "fbl/determinant_log.hpp"
#include "fbl/inc_vector.hpp"
#include "fbl/watermarks.hpp"
#include "metrics/registry.hpp"
#include "recovery/messages.hpp"
#include "recovery/phase_hook.hpp"
#include "sim/simulator.hpp"

namespace rr::recovery {

enum class Algorithm {
  kNonBlocking,  ///< the paper's new algorithm
  kBlocking,     ///< message-lean baseline that stalls live processes
  /// Manetho-style comparator the paper describes in §2.2 but does not
  /// measure: live processes keep running but (a) refrain from delivering
  /// application messages that reference recovering processes' receipt
  /// orders until recovery completes, and (b) synchronously record their
  /// depinfo replies on stable storage before sending them.
  kDeferUnsafe,
};

[[nodiscard]] const char* to_string(Algorithm a);

struct RecoveryConfig {
  Algorithm algorithm{Algorithm::kNonBlocking};
  /// Leader-watch / leadership re-evaluation cadence while recovering.
  Duration progress_period = milliseconds(500);
  /// A gather phase stuck longer than this restarts the round (covers
  /// targets that crashed without being detected yet).
  Duration phase_timeout = seconds(5);
  /// Depinfo gather fan-out. 0 = flat: the leader contacts every live
  /// process and collects n-1 direct replies, which is the paper's shape
  /// and fine at n≈16 but makes the leader an O(n) hot spot at n≈1024.
  /// k >= 2 builds a k-ary gather/scatter tree over the sorted live
  /// participants (leader at the root): requests fan out edge-by-edge and
  /// each interior node merges its subtree's replies into one, so the
  /// leader handles O(k) messages per round instead of O(n). Suspicion of
  /// an interior node re-parents its subtree (kSubtreeReparented) so the
  /// partial gather keeps flowing while the usual restart triggers decide
  /// the round's fate.
  std::uint32_t gather_arity{0};
  /// Optional tap fired at named protocol phase boundaries (see
  /// phase_hook.hpp). Must not re-enter the manager synchronously.
  PhaseHook phase_hook;
  /// Deliberately seeded bug for the fault-schedule explorer's
  /// self-test: suppress every gather-restart trigger (concurrent failure,
  /// suspicion, phase timeout), so a leader whose gather target dies hangs
  /// forever. Never enable outside explorer/verification runs.
  bool bug_skip_gather_restart{false};
};

class RecoveryManager {
 public:
  struct Hooks {
    /// Transport (the node counts control messages and bytes).
    std::function<void(ProcessId, const ControlMessage&)> send_ctrl;
    std::function<void(const ControlMessage&)> broadcast_ctrl;

    /// Identity and membership.
    std::function<Incarnation()> my_incarnation;
    std::function<std::vector<ProcessId>()> all_processes;  // app processes only
    std::function<bool(ProcessId)> is_suspected;

    /// Depinfo from the local logging engine: determinants destined to any
    /// pid in `rset`, and our delivered-ssn watermarks for those sources.
    std::function<std::vector<fbl::HeldDeterminant>(const std::vector<ProcessId>&)>
        depinfo_slice;
    std::function<fbl::Watermarks(const std::vector<ProcessId>&)> marks_for;

    /// Blocking baseline: stall/resume application delivery at a live
    /// process.
    std::function<void(bool)> set_delivery_blocked;

    /// Defer-unsafe comparator: hold back application messages referencing
    /// receipt orders of the given recovering set (empty set = resume).
    std::function<void(const std::set<ProcessId>&)> set_defer_unsafe;

    /// Defer-unsafe comparator: durably record a control reply on stable
    /// storage, then transmit it (the synchronous-logging delay §2.2
    /// criticizes).
    std::function<void(ProcessId, const ControlMessage&)> sync_log_then_send;

    /// Recovering side: apply an install (merge determinants, feed the
    /// replay engine).
    std::function<void(const DepInstall&)> install;

    /// A peer finished recovery: retransmit what it missed, fix holder
    /// masks, nudge our replay engine.
    std::function<void(ProcessId, const RecoveryComplete&)> peer_recovered;

    /// Optional: our incvector floor for `about` was raised to `inc`
    /// (trace/V7 instrumentation; fires only on an actual increase).
    std::function<void(ProcessId, Incarnation)> floor_raised;
  };

  RecoveryManager(sim::Simulator& sim, ProcessId self, ProcessId ord_service,
                  RecoveryConfig config, Hooks hooks, metrics::Registry& metrics);

  /// Crash: wipe all volatile recovery state (called by the node before
  /// restart; the manager is reused across incarnations).
  void reset_for_restart();

  /// Restore finished — acquire an ord and join/lead recovery.
  void begin_recovery();

  /// The node's replay engine drained its schedule; announce completion.
  void on_replay_complete();

  /// Demuxed control frame.
  void on_control(ProcessId src, const ControlMessage& m);

  /// Failure-detector edge (suspected went up or down).
  void on_suspicion(ProcessId peer, bool suspected);

  [[nodiscard]] bool recovering() const noexcept { return recovering_; }
  [[nodiscard]] bool leading() const noexcept { return round_.has_value(); }
  [[nodiscard]] bool install_received() const noexcept { return installed_; }
  [[nodiscard]] Ord ord() const noexcept { return ord_; }
  [[nodiscard]] const fbl::IncVector& incvector() const noexcept { return incvector_; }
  [[nodiscard]] const std::set<ProcessId>& blocked_on() const noexcept { return blocked_on_; }
  [[nodiscard]] const RecoveryConfig& config() const noexcept { return config_; }

 private:
  enum class Phase { kRefreshR, kGatherInc, kGatherDep };

  struct Round {
    std::uint64_t id{0};
    Phase phase{Phase::kRefreshR};
    Time phase_started{0};
    std::vector<RMember> rset;
    std::set<ProcessId> expect_inc;
    std::map<ProcessId, Incarnation> got_inc;
    std::set<ProcessId> expect_dep;
    fbl::DeterminantLog gathered;
    std::map<ProcessId, fbl::Watermarks> live_marks;
    // Tree gather (arity > 0): sorted live participants (the BFS array is
    // [leader] + participants), the leader's direct children, and the
    // request to re-send with arity 0 when a child subtree is re-parented.
    std::vector<ProcessId> participants;
    std::set<ProcessId> direct;
    DepRequest req;
  };

  /// Interior-node state of a tree gather: this (live) process forwarded a
  /// DepRequest to its children and owes `reply_to` one merged reply.
  struct Relay {
    std::uint64_t round{0};
    ProcessId reply_to;  ///< parent that forwarded the request to us
    bool defer{false};
    bool swept{false};  ///< half-timeout re-parent sweep already ran
    Time started{0};
    std::vector<ProcessId> participants;
    std::set<ProcessId> await;  ///< children (plus re-parented descendants)
    std::set<ProcessId> got;    ///< contributor pids already merged (dedup)
    fbl::DeterminantLog dets;
    std::vector<DepContribution> contribs;
    DepRequest req;  ///< for direct re-sends on re-parent
  };

  // Leader machinery.
  void start_round(bool failover = false);
  void restart_round(const char* why);
  void on_rset(const std::vector<RMember>& rset);
  void begin_gather_inc();
  void begin_gather_dep();
  void finish_round();
  [[nodiscard]] fbl::IncVector build_incvector() const;
  /// Fold this round's floors into incvector_ and slice the delta against
  /// the lowest version every participant has confirmed (full on any
  /// unconfirmed participant or leader-incarnation mismatch).
  [[nodiscard]] fbl::IncDelta build_delta(const std::vector<ProcessId>& participants);
  void absorb_contribution(const DepContribution& c);
  void reparent_leader(ProcessId child);

  // Member machinery.
  void evaluate_leadership(const std::vector<RMember>& rset);
  void progress_tick();

  // Live-side handlers.
  void handle_dep_request(ProcessId from, const DepRequest& req);
  void handle_recovery_complete(ProcessId peer, const RecoveryComplete& m);
  void absorb_relay_reply(ProcessId child, const DepReply& reply);
  void reparent_relay(ProcessId child);
  void flush_relay();

  void send(ProcessId to, const ControlMessage& m);
  void broadcast(const ControlMessage& m);

  /// Fire the configured phase hook (no-op when unset).
  void phase(PhaseId id);
  void phase_at(PhaseId id, ProcessId subject, std::uint64_t round_id);
  /// Raise incvector_[about] to `inc`, firing floor_raised on an increase.
  void raise_floor(ProcessId about, Incarnation inc);
  /// merge_max into incvector_ through raise_floor.
  void merge_floors(const fbl::IncVector& from);

  sim::Simulator& sim_;
  ProcessId self_;
  ProcessId ord_service_;
  RecoveryConfig config_;
  Hooks hooks_;
  metrics::Registry& metrics_;

  // Live-side state.
  fbl::IncVector incvector_;
  std::set<ProcessId> blocked_on_;  // blocking baseline: R pids awaited
  std::set<ProcessId> defer_on_;    // defer-unsafe comparator: R pids awaited
  /// Incvector versioning for delta distribution: incv_version_ bumps on
  /// every actual floor raise, incv_changed_at_[p] remembers the version at
  /// which p's floor last moved (the delta since V is exactly the entries
  /// with changed_at > V).
  std::uint64_t incv_version_{0};
  std::map<ProcessId, std::uint64_t> incv_changed_at_;
  /// Receiver side: per leader, the (leader incarnation, version) of that
  /// leader's incvector we last held completely. A delta whose baseline is
  /// beyond this is still applied (merge-max is safe) but flagged for
  /// resync.
  std::map<ProcessId, std::pair<Incarnation, std::uint64_t>> leader_incv_seen_;
  /// Leader side: per participant, the (our incarnation, version) it last
  /// confirmed — the delta baseline pool. Erased on a reported resync.
  std::map<ProcessId, std::pair<Incarnation, std::uint64_t>> confirmed_;
  /// Interior-node tree-gather relay (live side; at most one at a time —
  /// a newer round from any leader supersedes it).
  std::optional<Relay> relay_;

  // Recovering-side state.
  bool recovering_{false};
  bool ord_requested_{false};
  bool installed_{false};
  Ord ord_{0};
  std::uint64_t next_round_id_{1};
  std::optional<Round> round_;
  /// (pid, inc) pairs already covered by an install this manager issued.
  std::set<std::pair<ProcessId, Incarnation>> covered_;
  sim::RepeatingTimer progress_timer_;
};

}  // namespace rr::recovery
