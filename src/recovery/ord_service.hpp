// The ord/registry service (paper §3.2, `ord`).
//
// The paper requires "a system-wide monotonic number that is incremented
// whenever a process starts recovery"; the process with the lowest
// unfinished ordinal is the recovery leader. The mechanism is left
// unspecified, so we use the same modeling device the paper applies to
// stable storage in the f = n case: an additional process that never fails
// and sends no spontaneous messages. It hands out ordinals (OrdRequest →
// OrdReply), reports the current recovering set R (RSetRequest →
// RSetReply) and retires entries when it observes RecoveryComplete
// broadcasts. A process that crashes again while recovering simply
// re-registers and receives a fresh, higher ordinal — which is what makes
// a dead leader lose its leadership.
#pragma once

#include <map>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "recovery/messages.hpp"
#include "recovery/phase_hook.hpp"

namespace rr::recovery {

class OrdService : public net::Endpoint {
 public:
  OrdService(ProcessId self, net::Network& network, metrics::Registry& metrics);

  void deliver(ProcessId src, Bytes payload) override;

  /// Current recovering set, sorted by ordinal.
  [[nodiscard]] std::vector<RMember> rset() const;
  [[nodiscard]] Ord last_ord() const noexcept { return next_ord_ - 1; }
  [[nodiscard]] ProcessId id() const noexcept { return self_; }

  /// Tap fired on ordinal assignment/retirement (kOrdAssigned/kOrdRetired;
  /// `subject` = the registering/retiring process).
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

 private:
  void handle(ProcessId src, const ControlMessage& m);
  void reply(ProcessId to, const ControlMessage& m);
  void phase(PhaseId id, ProcessId subject, Ord ord);

  ProcessId self_;
  net::Network& network_;
  metrics::Registry& metrics_;
  Ord next_ord_{1};
  std::map<ProcessId, RMember> registry_;
  PhaseHook phase_hook_;
};

}  // namespace rr::recovery
