// Re-export of the protocol phase taxonomy into rr::recovery.
//
// The types live in trace/phase_hook.hpp (the lowest layer that consumes
// them — see the layering rationale there); the recovery state machines
// that *fire* the hooks, and everything above them, keep addressing the
// names as rr::recovery::PhaseId etc. through this header.
#pragma once

#include "trace/phase_hook.hpp"

namespace rr::recovery {

using trace::parse_phase;
using trace::PhaseEventInfo;
using trace::PhaseHook;
using trace::PhaseId;
using trace::to_string;

}  // namespace rr::recovery
