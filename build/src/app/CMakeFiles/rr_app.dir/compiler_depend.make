# Empty compiler generated dependencies file for rr_app.
# This may be replaced when dependencies are built.
