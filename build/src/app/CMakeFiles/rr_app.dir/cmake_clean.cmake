file(REMOVE_RECURSE
  "CMakeFiles/rr_app.dir/workloads.cpp.o"
  "CMakeFiles/rr_app.dir/workloads.cpp.o.d"
  "librr_app.a"
  "librr_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
