file(REMOVE_RECURSE
  "librr_app.a"
)
