file(REMOVE_RECURSE
  "CMakeFiles/rr_common.dir/hash.cpp.o"
  "CMakeFiles/rr_common.dir/hash.cpp.o.d"
  "CMakeFiles/rr_common.dir/log.cpp.o"
  "CMakeFiles/rr_common.dir/log.cpp.o.d"
  "CMakeFiles/rr_common.dir/rng.cpp.o"
  "CMakeFiles/rr_common.dir/rng.cpp.o.d"
  "CMakeFiles/rr_common.dir/serde.cpp.o"
  "CMakeFiles/rr_common.dir/serde.cpp.o.d"
  "librr_common.a"
  "librr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
