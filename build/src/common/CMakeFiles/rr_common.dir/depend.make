# Empty dependencies file for rr_common.
# This may be replaced when dependencies are built.
