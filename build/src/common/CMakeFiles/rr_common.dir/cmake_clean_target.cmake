file(REMOVE_RECURSE
  "librr_common.a"
)
