file(REMOVE_RECURSE
  "librr_harness.a"
)
