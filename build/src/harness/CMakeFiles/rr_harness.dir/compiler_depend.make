# Empty compiler generated dependencies file for rr_harness.
# This may be replaced when dependencies are built.
