file(REMOVE_RECURSE
  "CMakeFiles/rr_harness.dir/experiments.cpp.o"
  "CMakeFiles/rr_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/rr_harness.dir/scenario.cpp.o"
  "CMakeFiles/rr_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/rr_harness.dir/table.cpp.o"
  "CMakeFiles/rr_harness.dir/table.cpp.o.d"
  "librr_harness.a"
  "librr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
