file(REMOVE_RECURSE
  "CMakeFiles/rr_net.dir/network.cpp.o"
  "CMakeFiles/rr_net.dir/network.cpp.o.d"
  "librr_net.a"
  "librr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
