file(REMOVE_RECURSE
  "librr_net.a"
)
