# Empty dependencies file for rr_net.
# This may be replaced when dependencies are built.
