file(REMOVE_RECURSE
  "librr_snapshot.a"
)
