# Empty dependencies file for rr_snapshot.
# This may be replaced when dependencies are built.
