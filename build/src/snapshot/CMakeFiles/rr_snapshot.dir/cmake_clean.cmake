file(REMOVE_RECURSE
  "CMakeFiles/rr_snapshot.dir/snapshot.cpp.o"
  "CMakeFiles/rr_snapshot.dir/snapshot.cpp.o.d"
  "librr_snapshot.a"
  "librr_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
