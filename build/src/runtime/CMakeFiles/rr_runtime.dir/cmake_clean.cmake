file(REMOVE_RECURSE
  "CMakeFiles/rr_runtime.dir/cluster.cpp.o"
  "CMakeFiles/rr_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/rr_runtime.dir/node.cpp.o"
  "CMakeFiles/rr_runtime.dir/node.cpp.o.d"
  "librr_runtime.a"
  "librr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
