# Empty dependencies file for rr_runtime.
# This may be replaced when dependencies are built.
