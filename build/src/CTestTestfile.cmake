# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("metrics")
subdirs("net")
subdirs("storage")
subdirs("detect")
subdirs("trace")
subdirs("snapshot")
subdirs("fbl")
subdirs("recovery")
subdirs("runtime")
subdirs("app")
subdirs("harness")
subdirs("analysis")
