file(REMOVE_RECURSE
  "CMakeFiles/rr_trace.dir/history_checker.cpp.o"
  "CMakeFiles/rr_trace.dir/history_checker.cpp.o.d"
  "CMakeFiles/rr_trace.dir/trace.cpp.o"
  "CMakeFiles/rr_trace.dir/trace.cpp.o.d"
  "librr_trace.a"
  "librr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
