# Empty dependencies file for rr_trace.
# This may be replaced when dependencies are built.
