
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint_store.cpp" "src/storage/CMakeFiles/rr_storage.dir/checkpoint_store.cpp.o" "gcc" "src/storage/CMakeFiles/rr_storage.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/storage/stable_storage.cpp" "src/storage/CMakeFiles/rr_storage.dir/stable_storage.cpp.o" "gcc" "src/storage/CMakeFiles/rr_storage.dir/stable_storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
