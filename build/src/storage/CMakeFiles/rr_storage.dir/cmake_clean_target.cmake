file(REMOVE_RECURSE
  "librr_storage.a"
)
