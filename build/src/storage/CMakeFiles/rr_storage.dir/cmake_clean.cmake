file(REMOVE_RECURSE
  "CMakeFiles/rr_storage.dir/checkpoint_store.cpp.o"
  "CMakeFiles/rr_storage.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/rr_storage.dir/stable_storage.cpp.o"
  "CMakeFiles/rr_storage.dir/stable_storage.cpp.o.d"
  "librr_storage.a"
  "librr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
