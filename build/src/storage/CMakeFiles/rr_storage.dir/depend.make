# Empty dependencies file for rr_storage.
# This may be replaced when dependencies are built.
