
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/complexity.cpp" "src/analysis/CMakeFiles/rr_analysis.dir/complexity.cpp.o" "gcc" "src/analysis/CMakeFiles/rr_analysis.dir/complexity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/rr_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fbl/CMakeFiles/rr_fbl.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/rr_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
