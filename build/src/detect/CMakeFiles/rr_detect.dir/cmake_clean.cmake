file(REMOVE_RECURSE
  "CMakeFiles/rr_detect.dir/failure_detector.cpp.o"
  "CMakeFiles/rr_detect.dir/failure_detector.cpp.o.d"
  "librr_detect.a"
  "librr_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
