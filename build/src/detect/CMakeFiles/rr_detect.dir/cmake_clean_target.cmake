file(REMOVE_RECURSE
  "librr_detect.a"
)
