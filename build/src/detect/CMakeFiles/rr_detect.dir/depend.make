# Empty dependencies file for rr_detect.
# This may be replaced when dependencies are built.
