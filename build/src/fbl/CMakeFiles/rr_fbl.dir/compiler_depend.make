# Empty compiler generated dependencies file for rr_fbl.
# This may be replaced when dependencies are built.
