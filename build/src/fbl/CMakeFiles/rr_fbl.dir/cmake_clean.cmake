file(REMOVE_RECURSE
  "CMakeFiles/rr_fbl.dir/checkpoint.cpp.o"
  "CMakeFiles/rr_fbl.dir/checkpoint.cpp.o.d"
  "CMakeFiles/rr_fbl.dir/determinant.cpp.o"
  "CMakeFiles/rr_fbl.dir/determinant.cpp.o.d"
  "CMakeFiles/rr_fbl.dir/determinant_log.cpp.o"
  "CMakeFiles/rr_fbl.dir/determinant_log.cpp.o.d"
  "CMakeFiles/rr_fbl.dir/engine.cpp.o"
  "CMakeFiles/rr_fbl.dir/engine.cpp.o.d"
  "CMakeFiles/rr_fbl.dir/frame.cpp.o"
  "CMakeFiles/rr_fbl.dir/frame.cpp.o.d"
  "CMakeFiles/rr_fbl.dir/send_log.cpp.o"
  "CMakeFiles/rr_fbl.dir/send_log.cpp.o.d"
  "librr_fbl.a"
  "librr_fbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_fbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
