file(REMOVE_RECURSE
  "librr_fbl.a"
)
